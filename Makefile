# Convenience targets; `make ci` is what the CI workflow runs.

.PHONY: all build test bench fmt parity regress explain-smoke timeline-smoke engine-smoke gc-smoke trend-smoke why-smoke perfgate ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Format check. Gated: the check only runs where ocamlformat is
# installed (dev boxes / CI); .ocamlformat currently disables
# reformatting, so the check is a no-op scaffold for incremental
# adoption.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# Multicore smoke: the same artefact rendered serially and on 2
# domains must be byte-identical (see docs/parallelism.md).
parity: build
	dune exec bin/rfh.exe -- fig13 --warps 8 --jobs 1 > _build/parity-serial.txt
	dune exec bin/rfh.exe -- fig13 --warps 8 --jobs 2 > _build/parity-jobs2.txt
	diff -u _build/parity-serial.txt _build/parity-jobs2.txt
	@echo "parity OK: fig13 --jobs 2 is byte-identical to serial"

# Regression gate (see docs/observability.md): check the fresh run
# manifest against the committed golden one, recording it first if it
# does not exist yet.  The check also leaves the manifest and the HTML
# report under _build/ for CI to upload.
regress: build
	@if [ -f baselines/default.json ]; then \
	  dune exec bin/rfh.exe -- baseline check \
	    --manifest-out _build/run-manifest.json \
	    --report-out _build/run-report.html; \
	else \
	  echo "no baseline recorded yet; recording baselines/default.json"; \
	  dune exec bin/rfh.exe -- baseline record \
	    --manifest-out _build/run-manifest.json \
	    --report-out _build/run-report.html; \
	fi

# Allocation-explainer smoke (see docs/observability.md): the decision
# stream must cross-check against the manifest's allocator stats, and
# the JSONL + HTML outputs land under _build/ for CI to upload.
explain-smoke: build
	dune exec bin/rfh.exe -- explain mm --top 10 --warps 8 \
	  --jsonl-out _build/explain-mm.jsonl \
	  --report-out _build/explain-mm.html > _build/explain-mm.txt
	@echo "explain smoke OK: decision stream matches the manifest allocator stats"

# Warp-timeline smoke (see docs/observability.md): every warp-cycle
# must be attributed to a stall cause (the command exits 1 if the
# breakdown does not sum to cycles x warps, or if the recorded interval
# stream disagrees with it), and the JSONL + Perfetto trace land under
# _build/ for CI to upload.
timeline-smoke: build
	dune exec bin/rfh.exe -- timeline mm --warps 16 --mrf-banks 8 --top 5 \
	  --jsonl-out _build/timeline-mm.jsonl \
	  --trace-out _build/timeline-mm-trace.json > _build/timeline-mm.txt
	@echo "timeline smoke OK: stall breakdown sums to cycles x warps in every config"

# Engine-profiler smoke (see docs/observability.md): profile the fig13
# rendering at jobs 1 and 2; the command exits 1 if any region's
# overhead categories fail to sum to wall x domains, or if the rendered
# tables are not byte-identical across jobs settings.  The JSON report
# and HTML page land under _build/ for CI to upload.
engine-smoke: build
	dune exec bin/rfh.exe -- engine fig13 --warps 8 --jobs 1,2 \
	  -b VectorAdd,MatrixMul,Reduction,cp \
	  --json-out _build/engine-fig13.json \
	  --report-out _build/engine-fig13.html > _build/engine-fig13.txt
	@echo "engine smoke OK: categories sum to wall x domains; output parity holds"

# GC-profiler smoke (see docs/observability.md): same window as the
# engine smoke with the Runtime_events GC capture on; the command exits
# 1 if any region's gc time exceeds its useful time, the 7-way budget
# sum breaks, or output parity across jobs fails.  Tables, JSON, HTML
# and the Perfetto trace (engine pid 4 + gc pid 5) land under _build/.
gc-smoke: build
	dune exec bin/rfh.exe -- gc fig13 --warps 8 --jobs 1,2 \
	  -b VectorAdd,MatrixMul,Reduction,cp \
	  --json-out _build/gc-fig13.json \
	  --report-out _build/gc-fig13.html \
	  --trace-out _build/gc-trace.json > _build/gc-fig13.txt
	@echo "gc smoke OK: 0 <= gc <= useful in every region; output parity holds"

# Trend smoke (see docs/observability.md): append three deterministic
# history records from the same tree, then gate on them.  Identical
# runs must classify as stable on every gated series (trend --check
# exits 0); the self-contained dashboard lands under _build/ for CI to
# upload.
trend-smoke: build
	rm -f _build/trend-history.jsonl
	dune exec bin/rfh.exe -- fig13 --warps 8 -b VectorAdd,MatrixMul,Reduction,cp \
	  --history-out _build/trend-history.jsonl > /dev/null
	dune exec bin/rfh.exe -- fig13 --warps 8 -b VectorAdd,MatrixMul,Reduction,cp \
	  --history-out _build/trend-history.jsonl > /dev/null
	dune exec bin/rfh.exe -- fig13 --warps 8 -b VectorAdd,MatrixMul,Reduction,cp \
	  --history-out _build/trend-history.jsonl > /dev/null
	dune exec bin/rfh.exe -- trend --history _build/trend-history.jsonl --check \
	  --html-out _build/trend-dashboard.html > _build/trend.txt
	@echo "trend smoke OK: three identical runs classify stable; gate exit 0"

# Root-cause smoke (see docs/observability.md): record a manifest +
# explain stream, copy them, flip exactly one allocation decision in
# the copy (first ORF placement -> MRF), and `rfh why` must name that
# move as the #1 cause with its attribution self-check passing —
# byte-identically across two runs.  The JSON and HTML analyses land
# under _build/ for CI to upload.
why-smoke: build
	dune exec bin/rfh.exe -- baseline record --warps 8 -b mm,cp \
	  --baseline _build/why-base.json > /dev/null
	dune exec bin/rfh.exe -- explain mm --warps 8 \
	  --jsonl-out _build/why-base.jsonl > /dev/null
	sed -E '0,/"to":"orf"/s//"to":"mrf"/' _build/why-base.jsonl > _build/why-cand.jsonl
	dune exec bin/rfh.exe -- why _build/why-base.json _build/why-base.json \
	  --explain-a _build/why-base.jsonl --explain-b _build/why-cand.jsonl \
	  --json-out _build/why.json --report-out _build/why.html > _build/why.txt
	dune exec bin/rfh.exe -- why _build/why-base.json _build/why-base.json \
	  --explain-a _build/why-base.jsonl --explain-b _build/why-cand.jsonl \
	  --json-out _build/why-rerun.json > /dev/null
	cmp _build/why.json _build/why-rerun.json
	grep -q 'top cause — MatrixMul: moved orf -> mrf' _build/why.txt
	@echo "why smoke OK: the flipped decision ranks #1; analysis is byte-deterministic"

# Performance gate (see docs/performance.md): time the
# sim:perf-two-level microbenchmark and measure its steady-state
# allocation, failing if ns_per_run regresses >2x over the committed
# threshold in baselines/perfgate.json or if the cycle loop allocates
# again.  The measurement lands in _build/perfgate.json for CI to
# upload.
perfgate: build
	dune exec bench/perfgate.exe

ci: fmt build test parity regress explain-smoke timeline-smoke engine-smoke gc-smoke trend-smoke why-smoke perfgate

clean:
	dune clean
