# Convenience targets; `make ci` is what the CI workflow runs.

.PHONY: all build test bench fmt ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Format check. Gated: the check only runs where ocamlformat is
# installed (dev boxes / CI); .ocamlformat currently disables
# reformatting, so the check is a no-op scaffold for incremental
# adoption.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

ci: fmt build test

clean:
	dune clean
