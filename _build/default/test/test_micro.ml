(* Micro-pattern tests: each isolated register-usage pattern must get
   the allocation the design intends. *)

let check = Alcotest.check

let compile ?(config = Alloc.Config.make ()) k =
  let ctx = Alloc.Context.create k in
  let placement, stats = Alloc.Allocator.run config ctx in
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> ()
   | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  (ctx, placement, stats)

let counts_of ?(config = Alloc.Config.make ()) k =
  let ctx, placement, _ = compile ~config k in
  (Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Sw { config; placement })).Sim.Traffic.counts

let test_chain_lives_in_lrf () =
  (* A pure dependence chain: half-open intervals let every link share
     LRF banks; the only MRF traffic is the input read + store. *)
  let k = Workloads.Micro.chain 8 in
  let _, _, stats = compile k in
  check Alcotest.bool "most links in the LRF" true (stats.Alloc.Allocator.lrf_allocated >= 6);
  let c = counts_of k in
  check Alcotest.bool "LRF carries the chain" true
    (Energy.Counts.reads c Energy.Model.Lrf >= 6)

let test_fanout_one_orf_entry () =
  (* A burst-read value occupies one ORF entry covering many reads. *)
  let k = Workloads.Micro.fanout 6 in
  let c = counts_of k in
  check Alcotest.bool "burst served above the MRF" true
    (Energy.Counts.reads c Energy.Model.Orf + Energy.Counts.reads c Energy.Model.Lrf >= 6)

let test_hammock_single_entry () =
  let k = Workloads.Micro.hammock_merge () in
  let _, placement, _ = compile ~config:(Alloc.Config.make ~lrf:Alloc.Config.No_lrf ()) k
  in
  (* Both defs of the merged register write the same ORF entry. *)
  let entries =
    Ir.Kernel.fold_instrs k ~init:[] ~f:(fun acc _ i ->
        match Alloc.Placement.dest placement ~instr:i.Ir.Instr.id with
        | Some { Alloc.Placement.to_orf = Some e; _ } -> e :: acc
        | _ -> acc)
  in
  match List.sort_uniq compare entries with
  | [ _ ] | [] -> ()  (* shared entry (or judged unprofitable) *)
  | es -> Alcotest.failf "expected one shared entry, got %d" (List.length es)

let test_loop_carried_goes_through_mrf () =
  let k = Workloads.Micro.loop_carried 8 in
  let config = Alloc.Config.make () in
  let ctx, placement, _ = compile ~config k in
  (* The accumulator's loop-body def must keep an MRF copy. *)
  let ok = ref false in
  Ir.Kernel.iter_instrs k (fun _ i ->
      match i.Ir.Instr.dst, Alloc.Placement.dest placement ~instr:i.Ir.Instr.id with
      | Some d, Some dest ->
        (* the in-loop accumulator def: reads itself *)
        if List.mem d i.Ir.Instr.srcs && Strand.Partition.strand_of_instr
             ctx.Alloc.Context.partition i.Ir.Instr.id > 0
        then if dest.Alloc.Placement.to_mrf then ok := true
      | _ -> ());
  check Alcotest.bool "accumulator reaches the MRF" true !ok

let test_wide_needs_two_entries () =
  let k = Workloads.Micro.wide_values 3 in
  let wide_defs_in_orf config =
    let _, placement, _ = compile ~config k in
    Ir.Kernel.fold_instrs k ~init:0 ~f:(fun acc _ i ->
        if i.Ir.Instr.width = Ir.Width.W64 then
          match Alloc.Placement.dest placement ~instr:i.Ir.Instr.id with
          | Some { Alloc.Placement.to_orf = Some _; _ } -> acc + 1
          | _ -> acc
        else acc)
  in
  check Alcotest.int "1-entry ORF holds no wide values" 0
    (wide_defs_in_orf (Alloc.Config.make ~orf_entries:1 ~lrf:Alloc.Config.No_lrf ()));
  check Alcotest.bool "2-entry ORF holds them" true
    (wide_defs_in_orf (Alloc.Config.make ~orf_entries:2 ~lrf:Alloc.Config.No_lrf ()) > 0)

let test_shared_consumers_never_lrf () =
  let k = Workloads.Micro.shared_consumers 4 in
  let c = counts_of k in
  check Alcotest.int "no LRF traffic" 0
    (Energy.Counts.reads c Energy.Model.Lrf + Energy.Counts.writes c Energy.Model.Lrf)

let test_sfu_values_avoid_lrf () =
  (* SFU results may use the ORF but never the LRF. *)
  let k = Workloads.Micro.sfu_pipeline 4 in
  let _, placement, _ = compile k in
  Ir.Kernel.iter_instrs k (fun _ i ->
      if Ir.Op.is_shared_datapath i.Ir.Instr.op then
        match Alloc.Placement.dest placement ~instr:i.Ir.Instr.id with
        | Some { Alloc.Placement.to_lrf = Some _; _ } ->
          Alcotest.fail "SFU result placed in the LRF"
        | _ -> ())

let test_spiller_respects_capacity () =
  (* 10 fully-overlapping live ranges, 2-entry ORF: at most 2 of the
     values can hold entries over the common interval. *)
  let k = Workloads.Micro.spiller 10 in
  let config = Alloc.Config.make ~orf_entries:2 ~lrf:Alloc.Config.No_lrf ~read_operands:false () in
  let _, placement, _ = compile ~config k in
  (* Count distinct producing instructions whose interval covers the
     final reduction start and sit in the ORF; capacity bounds it. *)
  let orf_defs =
    Ir.Kernel.fold_instrs k ~init:0 ~f:(fun acc _ i ->
        match Alloc.Placement.dest placement ~instr:i.Ir.Instr.id with
        | Some { Alloc.Placement.to_orf = Some _; _ } -> acc + 1
        | _ -> acc)
  in
  check Alcotest.bool "capacity respected but used" true (orf_defs >= 2);
  (* And the verifier (run inside compile) guarantees no double-booking. *)
  ()

let test_all_micro_verify_everywhere () =
  List.iter
    (fun (name, k) ->
      List.iter
        (fun config ->
          let ctx = Alloc.Context.create k in
          let placement = Alloc.Allocator.place config ctx in
          match Alloc.Verify.check config ctx placement with
          | Ok () -> ()
          | Error errs ->
            Alcotest.failf "%s: %s" name (String.concat "; " errs))
        [
          Alloc.Config.make ~orf_entries:1 ~lrf:Alloc.Config.No_lrf ();
          Alloc.Config.make ~orf_entries:8 ~lrf:Alloc.Config.Split ();
          Alloc.Config.make ~orf_entries:4 ~lrf:Alloc.Config.Unified ();
        ])
    (Workloads.Micro.all ())

let suite =
  [
    Alcotest.test_case "chain lives in LRF" `Quick test_chain_lives_in_lrf;
    Alcotest.test_case "fanout uses one entry" `Quick test_fanout_one_orf_entry;
    Alcotest.test_case "hammock shares entry" `Quick test_hammock_single_entry;
    Alcotest.test_case "loop-carried via MRF" `Quick test_loop_carried_goes_through_mrf;
    Alcotest.test_case "wide needs 2 entries" `Quick test_wide_needs_two_entries;
    Alcotest.test_case "shared consumers never LRF" `Quick test_shared_consumers_never_lrf;
    Alcotest.test_case "SFU values avoid LRF" `Quick test_sfu_values_avoid_lrf;
    Alcotest.test_case "spiller respects capacity" `Quick test_spiller_respects_capacity;
    Alcotest.test_case "all micros verify" `Quick test_all_micro_verify_everywhere;
  ]
