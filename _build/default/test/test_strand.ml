(* Strand partitioning tests, including the paper's Figure 5 examples
   and the must-defined analysis behind Figure 10. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

let partition_of k = (Alloc.Context.create k).Alloc.Context.partition

(* Straight line with a load and its consumer: the consumer must begin
   a new strand (Fig. 5(a)'s Strand 1 / Strand 2 split). *)
let test_long_latency_boundary () =
  let b = B.create "t" in
  let a = B.op0 b Op.Mov () in
  let x = B.op1 b Op.Ld_global a in
  let y = B.op2 b Op.Iadd a a in
  let z = B.op2 b Op.Fadd x y in
  B.store b Op.St_global ~addr:a ~value:z;
  let k = B.finalize b in
  let p = partition_of k in
  check Alcotest.int "two strands" 2 (Strand.Partition.num_strands p);
  (* Instr 3 (the fadd consuming the load) starts the second strand;
     the independent add (instr 2) stays in the first. *)
  check Alcotest.int "independent add in strand 0" 0 (Strand.Partition.strand_of_instr p 2);
  check Alcotest.bool "consumer starts strand" true (Strand.Partition.starts_strand p 3);
  check Alcotest.int "consumer strand 1" 1 (Strand.Partition.strand_of_instr p 3)

(* A shared-memory load is short-latency: no boundary. *)
let test_short_latency_no_boundary () =
  let b = B.create "t" in
  let a = B.op0 b Op.Mov () in
  let x = B.op1 b Op.Ld_shared a in
  let z = B.op2 b Op.Fadd x a in
  B.store b Op.St_shared ~addr:a ~value:z;
  let k = B.finalize b in
  check Alcotest.int "one strand" 1 (Strand.Partition.num_strands (partition_of k))

(* Backward branches end strands even without long-latency ops. *)
let test_backward_branch_boundary () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let head = B.here b in
  B.op2_into b Op.Iadd ~dst:x x x;
  let p = B.op1 b Op.Setp x in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop 2);
  let (_ : B.label) = B.here b in
  B.store b Op.St_global ~addr:x ~value:x;
  let k = B.finalize b in
  let part = partition_of k in
  (* preamble / loop body / exit *)
  check Alcotest.int "three strands" 3 (Strand.Partition.num_strands part);
  let body_first = k.Ir.Kernel.blocks.(1).Ir.Block.instrs.(0).Ir.Instr.id in
  check Alcotest.bool "loop head starts strand" true (Strand.Partition.starts_strand part body_first)

(* Fig. 5(b): a load on only one side of a hammock makes the pending set
   uncertain at the merge -> an extra strand endpoint there. *)
let test_merge_uncertainty () =
  let b = B.create "t" in
  let a = B.op0 b Op.Mov () in
  let p = B.op1 b Op.Setp a in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:join (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  let loaded = B.op1 b Op.Ld_global a in
  ignore loaded;  (* pending at the block's end: not consumed here *)
  B.store b Op.St_shared ~addr:a ~value:a;
  B.start_block b join;
  let tail = B.op2 b Op.Iadd a a in
  B.store b Op.St_global ~addr:a ~value:tail;
  let k = B.finalize b in
  let part = partition_of k in
  let join_first = k.Ir.Kernel.blocks.(2).Ir.Block.instrs.(0).Ir.Instr.id in
  check Alcotest.bool "merge starts strand" true (Strand.Partition.starts_strand part join_first)

(* Merge with the load on BOTH sides: pending sets still differ (each
   side has a distinct definition site), so the endpoint stays. *)
let test_merge_certain_when_no_pending () =
  let b = B.create "t" in
  let a = B.op0 b Op.Mov () in
  let p = B.op1 b Op.Setp a in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:join (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  ignore (B.op2 b Op.Iadd a a);
  B.start_block b join;
  ignore (B.op2 b Op.Iadd a a);
  let k = B.finalize b in
  let part = partition_of k in
  (* No long-latency operations anywhere: a single strand. *)
  check Alcotest.int "one strand" 1 (Strand.Partition.num_strands part)

let test_strand_intervals_partition () =
  let e = Option.get (Workloads.Registry.find "MatrixMul") in
  let k = Lazy.force e.Workloads.Registry.kernel in
  let part = partition_of k in
  let n = Strand.Partition.num_strands part in
  (* Intervals tile the instruction space in order. *)
  let expected_start = ref 0 in
  List.iter
    (fun s ->
      let first, last = Strand.Partition.strand_interval part s in
      check Alcotest.int "contiguous" !expected_start first;
      check Alcotest.bool "non-empty" true (last >= first);
      for id = first to last do
        check Alcotest.int "membership" s (Strand.Partition.strand_of_instr part id)
      done;
      check Alcotest.bool "starts_strand at first" true (Strand.Partition.starts_strand part first);
      expected_start := last + 1)
    (Strand.Partition.strand_ids part);
  check Alcotest.int "covers all instrs" (Ir.Kernel.instr_count k) !expected_start;
  check Alcotest.int "ids list length" n (List.length (Strand.Partition.strand_ids part))

let test_boundary_kinds_relaxations () =
  let e = Option.get (Workloads.Registry.find "Reduction") in
  let k = Lazy.force e.Workloads.Registry.kernel in
  let cfg = Analysis.Cfg.of_kernel k in
  let reaching = Analysis.Reaching.compute k cfg in
  let full = Strand.Partition.compute k cfg reaching in
  let none =
    Strand.Partition.compute
      ~kinds:{ Strand.Partition.long_latency = false; backward = false; merge = false }
      k cfg reaching
  in
  let no_backward =
    Strand.Partition.compute
      ~kinds:{ Strand.Partition.long_latency = true; backward = false; merge = true }
      k cfg reaching
  in
  check Alcotest.int "no boundaries = one strand" 1 (Strand.Partition.num_strands none);
  check Alcotest.bool "relaxing reduces strands" true
    (Strand.Partition.num_strands no_backward <= Strand.Partition.num_strands full);
  check Alcotest.bool "full has several" true (Strand.Partition.num_strands full > 2)

(* Fig. 10 via must-defined: (a) one-sided write is not must-defined at
   the join; (c) both-sided write is. *)
let fig10_kernel ~both_sides =
  let b = B.create "fig10" in
  let p = B.op0 b Op.Mov () in
  let r1 = B.fresh b in
  (* r1 models a value written by a previous strand (Fig. 10 reads it
     from the MRF); keep everything here short-latency. *)
  let else_l = B.new_label b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:else_l (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  B.op1_into b Op.Mov ~dst:r1 p;
  B.jump b join;
  B.start_block b else_l;
  if both_sides then B.op1_into b Op.Mov ~dst:r1 p
  else ignore (B.op1 b Op.Mov p);
  B.start_block b join;
  B.store b Op.St_shared ~addr:p ~value:r1;
  (B.finalize b, r1)

let test_must_defined_fig10a () =
  let k, r1 = fig10_kernel ~both_sides:false in
  let ctx = Alloc.Context.create k in
  let store_id = Ir.Kernel.instr_count k - 1 in
  check Alcotest.bool "one-sided: not must-defined" false
    (Strand.Must_defined.must_defined_before ctx.Alloc.Context.must_defined ~instr_id:store_id r1)

let test_must_defined_fig10c () =
  let k, r1 = fig10_kernel ~both_sides:true in
  let ctx = Alloc.Context.create k in
  let store_id = Ir.Kernel.instr_count k - 1 in
  check Alcotest.bool "both-sided: must-defined" true
    (Strand.Must_defined.must_defined_before ctx.Alloc.Context.must_defined ~instr_id:store_id r1)

let test_must_defined_resets_at_boundary () =
  let b = B.create "t" in
  let a = B.op0 b Op.Mov () in
  let v = B.op2 b Op.Iadd a a in
  let x = B.op1 b Op.Ld_global a in
  let consumer = B.op2 b Op.Fadd x v in
  B.store b Op.St_global ~addr:a ~value:consumer;
  let k = B.finalize b in
  let ctx = Alloc.Context.create k in
  let md = ctx.Alloc.Context.must_defined in
  (* v is must-defined just before the load (same strand)... *)
  check Alcotest.bool "before boundary" true
    (Strand.Must_defined.must_defined_before md ~instr_id:2 v);
  (* ...but not at the consumer, which starts a new strand. *)
  check Alcotest.bool "after boundary" false
    (Strand.Must_defined.must_defined_before md ~instr_id:3 v)

let suite =
  [
    Alcotest.test_case "long-latency boundary" `Quick test_long_latency_boundary;
    Alcotest.test_case "short-latency no boundary" `Quick test_short_latency_no_boundary;
    Alcotest.test_case "backward-branch boundary" `Quick test_backward_branch_boundary;
    Alcotest.test_case "merge uncertainty (Fig 5b)" `Quick test_merge_uncertainty;
    Alcotest.test_case "no-pending merge" `Quick test_merge_certain_when_no_pending;
    Alcotest.test_case "intervals partition" `Quick test_strand_intervals_partition;
    Alcotest.test_case "boundary-kind relaxations" `Quick test_boundary_kinds_relaxations;
    Alcotest.test_case "must-defined Fig 10(a)" `Quick test_must_defined_fig10a;
    Alcotest.test_case "must-defined Fig 10(c)" `Quick test_must_defined_fig10c;
    Alcotest.test_case "must-defined resets at boundary" `Quick test_must_defined_resets_at_boundary;
  ]
