(* Unit tests for the util library: PRNG, priority queue, statistics,
   bitsets and the table renderer. *)

let check = Alcotest.check

(* --- Prng --------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Util.Prng.next_int64 a) (Util.Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  check Alcotest.bool "different seeds diverge" false
    (Util.Prng.next_int64 a = Util.Prng.next_int64 b)

let test_prng_int_bounds () =
  let g = Util.Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Util.Prng.int g 13 in
    check Alcotest.bool "in [0,13)" true (x >= 0 && x < 13)
  done

let test_prng_int_invalid () =
  let g = Util.Prng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Util.Prng.int g 0))

let test_prng_float_bounds () =
  let g = Util.Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Util.Prng.float g 2.5 in
    check Alcotest.bool "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_prng_bernoulli_extremes () =
  let g = Util.Prng.create 11 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=1 always true" true (Util.Prng.bernoulli g 1.0);
    check Alcotest.bool "p=0 always false" false (Util.Prng.bernoulli g 0.0)
  done

let test_prng_split_independent () =
  let g = Util.Prng.create 5 in
  let h = Util.Prng.split g in
  (* The split stream must not simply mirror the parent. *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Util.Prng.next_int64 g = Util.Prng.next_int64 h then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 3)

let test_prng_copy () =
  let g = Util.Prng.create 123 in
  ignore (Util.Prng.next_int64 g);
  let h = Util.Prng.copy g in
  check Alcotest.int64 "copy continues identically" (Util.Prng.next_int64 g)
    (Util.Prng.next_int64 h)

let test_prng_pick () =
  let g = Util.Prng.create 3 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check Alcotest.bool "picks member" true (Array.mem (Util.Prng.pick g arr) arr)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Util.Prng.pick g [||]))

let test_prng_weighted_pick () =
  let g = Util.Prng.create 17 in
  (* Zero-weight choices must never be selected. *)
  for _ = 1 to 200 do
    let v = Util.Prng.weighted_pick g [ (0.0, `Never); (1.0, `Always) ] in
    check Alcotest.bool "never zero-weight" true (v = `Always)
  done

let test_hash2_deterministic () =
  check Alcotest.int "stable" (Util.Prng.hash2 3 4) (Util.Prng.hash2 3 4);
  check Alcotest.bool "nonneg" true (Util.Prng.hash2 (-5) 7 >= 0);
  check Alcotest.bool "order matters" true (Util.Prng.hash2 1 2 <> Util.Prng.hash2 2 1)

(* --- Pqueue ------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Util.Pqueue.of_list ~cmp:compare [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  check
    Alcotest.(list int)
    "descending drain" [ 9; 6; 5; 4; 3; 2; 1; 1 ]
    (Util.Pqueue.to_sorted_list q)

let test_pqueue_fifo_ties () =
  (* Equal priorities must pop in insertion order (determinism). *)
  let q = Util.Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Util.Pqueue.push q) [ (1, "a"); (1, "b"); (1, "c") ];
  check
    Alcotest.(list string)
    "insertion order on ties" [ "a"; "b"; "c" ]
    (List.map snd (Util.Pqueue.to_sorted_list q))

let test_pqueue_mixed_ops () =
  let q = Util.Pqueue.create ~cmp:compare in
  check Alcotest.bool "empty" true (Util.Pqueue.is_empty q);
  check (Alcotest.option Alcotest.int) "pop empty" None (Util.Pqueue.pop q);
  Util.Pqueue.push q 5;
  Util.Pqueue.push q 10;
  check (Alcotest.option Alcotest.int) "peek" (Some 10) (Util.Pqueue.peek q);
  check Alcotest.int "length" 2 (Util.Pqueue.length q);
  check (Alcotest.option Alcotest.int) "pop max" (Some 10) (Util.Pqueue.pop q);
  Util.Pqueue.push q 1;
  check (Alcotest.option Alcotest.int) "pop" (Some 5) (Util.Pqueue.pop q);
  check (Alcotest.option Alcotest.int) "pop" (Some 1) (Util.Pqueue.pop q);
  check Alcotest.bool "empty again" true (Util.Pqueue.is_empty q)

(* --- Stats -------------------------------------------------------- *)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  check feq "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "empty" 0.0 (Util.Stats.mean [])

let test_stats_geomean () =
  check (Alcotest.float 1e-9) "geomean" 2.0 (Util.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check feq "empty" 0.0 (Util.Stats.geomean [])

let test_stats_percent_ratio () =
  check feq "percent" 50.0 (Util.Stats.percent 1.0 2.0);
  check feq "percent zero" 0.0 (Util.Stats.percent 1.0 0.0);
  check feq "ratio" 0.5 (Util.Stats.ratio 1.0 2.0);
  check feq "ratio zero" 0.0 (Util.Stats.ratio 1.0 0.0)

let test_stats_clamp_round () =
  check feq "clamp low" 0.0 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check feq "clamp high" 1.0 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 5.0);
  check feq "clamp mid" 0.5 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 0.5);
  check feq "round" 3.14 (Util.Stats.round_to 2 3.14159)

let test_stats_histogram () =
  let h = Util.Stats.histogram () in
  Util.Stats.hincr h 1;
  Util.Stats.hincr h 1;
  Util.Stats.hincr h ~by:3 2;
  check Alcotest.int "count 1" 2 (Util.Stats.hcount h 1);
  check Alcotest.int "count 2" 3 (Util.Stats.hcount h 2);
  check Alcotest.int "count missing" 0 (Util.Stats.hcount h 99);
  check Alcotest.int "total" 5 (Util.Stats.htotal h);
  check Alcotest.(list (pair int int)) "bins sorted" [ (1, 2); (2, 3) ] (Util.Stats.hbins h);
  check feq "fraction" 0.4 (Util.Stats.hfraction h (fun k -> k = 1))

(* --- Bitset ------------------------------------------------------- *)

let test_bitset_basic () =
  let b = Util.Bitset.create 20 in
  check Alcotest.bool "initially empty" true (Util.Bitset.is_empty b);
  Util.Bitset.set b 0;
  Util.Bitset.set b 19;
  Util.Bitset.set b 7;
  check Alcotest.bool "mem 19" true (Util.Bitset.mem b 19);
  check Alcotest.bool "not mem 8" false (Util.Bitset.mem b 8);
  check Alcotest.(list int) "elements" [ 0; 7; 19 ] (Util.Bitset.elements b);
  check Alcotest.int "count" 3 (Util.Bitset.count b);
  Util.Bitset.clear b 7;
  check Alcotest.bool "cleared" false (Util.Bitset.mem b 7)

let test_bitset_bounds () =
  let b = Util.Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index 8 out of [0, 8)")
    (fun () -> Util.Bitset.set b 8)

let test_bitset_ops () =
  let a = Util.Bitset.create 10 and b = Util.Bitset.create 10 in
  Util.Bitset.set a 1;
  Util.Bitset.set a 2;
  Util.Bitset.set b 2;
  Util.Bitset.set b 3;
  let u = Util.Bitset.copy a in
  check Alcotest.bool "union changed" true (Util.Bitset.union_into ~dst:u b);
  check Alcotest.(list int) "union" [ 1; 2; 3 ] (Util.Bitset.elements u);
  check Alcotest.bool "union idempotent" false (Util.Bitset.union_into ~dst:u b);
  let i = Util.Bitset.copy a in
  ignore (Util.Bitset.inter_into ~dst:i b);
  check Alcotest.(list int) "inter" [ 2 ] (Util.Bitset.elements i);
  let d = Util.Bitset.copy a in
  ignore (Util.Bitset.diff_into ~dst:d b);
  check Alcotest.(list int) "diff" [ 1 ] (Util.Bitset.elements d)

let test_bitset_fill_all () =
  let b = Util.Bitset.create 11 in
  Util.Bitset.fill_all b;
  check Alcotest.int "count = capacity" 11 (Util.Bitset.count b);
  let empty = Util.Bitset.create 11 in
  check Alcotest.bool "not equal to empty" false (Util.Bitset.equal b empty);
  Util.Bitset.clear_all b;
  check Alcotest.bool "equal after clear" true (Util.Bitset.equal b empty)

let test_bitset_capacity_mismatch () =
  let a = Util.Bitset.create 4 and b = Util.Bitset.create 5 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      ignore (Util.Bitset.union_into ~dst:a b))

(* --- Table -------------------------------------------------------- *)

let test_table_render () =
  let t = Util.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Util.Table.add_row t [ "x"; "y" ];
  Util.Table.add_row t [ "long" ];
  let rendered = Util.Table.render t in
  check Alcotest.bool "title present" true (String.length rendered > 0);
  let lines = String.split_on_char '\n' rendered in
  check Alcotest.int "5 lines" 5 (List.length lines);
  check Alcotest.string "title line" "T" (List.hd lines)

let test_table_row_too_long () =
  let t = Util.Table.create ~title:"T" ~columns:[ "a" ] in
  Alcotest.check_raises "too long" (Invalid_argument "Table.add_row: row longer than header")
    (fun () -> Util.Table.add_row t [ "1"; "2" ])

let test_table_csv () =
  let t = Util.Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Util.Table.add_row t [ "x,y"; "z" ];
  check Alcotest.string "csv escaping" "a,b\n\"x,y\",z" (Util.Table.csv t)

let test_table_float_row () =
  let t = Util.Table.create ~title:"T" ~columns:[ "n"; "v" ] in
  Util.Table.add_float_row t "r" ~decimals:2 [ 1.005 ];
  check Alcotest.bool "formatted" true
    (String.length (Util.Table.csv t) > 0)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int invalid" `Quick test_prng_int_invalid;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng bernoulli extremes" `Quick test_prng_bernoulli_extremes;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng pick" `Quick test_prng_pick;
    Alcotest.test_case "prng weighted pick" `Quick test_prng_weighted_pick;
    Alcotest.test_case "hash2" `Quick test_hash2_deterministic;
    Alcotest.test_case "pqueue order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
    Alcotest.test_case "pqueue mixed ops" `Quick test_pqueue_mixed_ops;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats percent/ratio" `Quick test_stats_percent_ratio;
    Alcotest.test_case "stats clamp/round" `Quick test_stats_clamp_round;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset ops" `Quick test_bitset_ops;
    Alcotest.test_case "bitset fill-all" `Quick test_bitset_fill_all;
    Alcotest.test_case "bitset capacity mismatch" `Quick test_bitset_capacity_mismatch;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table row too long" `Quick test_table_row_too_long;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "table float row" `Quick test_table_float_row;
  ]
