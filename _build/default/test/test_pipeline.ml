(* End-to-end smoke tests: build a kernel, allocate, verify, count. *)

let check = Alcotest.check

(* saxpy-like kernel: load x and y, fma, store; loop over 8 elements. *)
let saxpy () =
  let b = Ir.Builder.create "saxpy" in
  let a = Ir.Builder.op0 b Ir.Op.Mov () in
  let base_x = Ir.Builder.op0 b Ir.Op.Mov () in
  let base_y = Ir.Builder.op0 b Ir.Op.Mov () in
  let i = Ir.Builder.op0 b Ir.Op.Mov () in
  let head = Ir.Builder.here b in
  let addr_x = Ir.Builder.op2 b Ir.Op.Iadd base_x i in
  let addr_y = Ir.Builder.op2 b Ir.Op.Iadd base_y i in
  let x = Ir.Builder.op1 b Ir.Op.Ld_global addr_x in
  let y = Ir.Builder.op1 b Ir.Op.Ld_global addr_y in
  let r = Ir.Builder.op3 b Ir.Op.Ffma a x y in
  Ir.Builder.store b Ir.Op.St_global ~addr:addr_y ~value:r;
  Ir.Builder.op2_into b Ir.Op.Iadd ~dst:i i i;
  let p = Ir.Builder.op2 b Ir.Op.Setp i a in
  Ir.Builder.branch b ~pred:p ~target:head (Ir.Terminator.Loop 8);
  let (_ : Ir.Builder.label) = Ir.Builder.here b in
  Ir.Builder.ret b;
  Ir.Builder.finalize b

let test_build () =
  let k = saxpy () in
  check Alcotest.int "blocks" 3 (Ir.Kernel.block_count k);
  check Alcotest.bool "has instrs" true (Ir.Kernel.instr_count k > 8)

let test_strands () =
  let k = saxpy () in
  let ctx = Alloc.Context.create k in
  let n = Strand.Partition.num_strands ctx.Alloc.Context.partition in
  (* At least: preamble strand, loop-head strand, post-load strand. *)
  check Alcotest.bool "several strands" true (n >= 3)

let alloc_and_verify config k =
  let ctx = Alloc.Context.create k in
  let placement, stats = Alloc.Allocator.run config ctx in
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> ()
   | Error errs -> Alcotest.failf "verification failed:\n%s" (String.concat "\n" errs));
  (ctx, placement, stats)

let test_alloc_two_level () =
  let config = Alloc.Config.make ~orf_entries:3 ~lrf:Alloc.Config.No_lrf () in
  let _, _, stats = alloc_and_verify config (saxpy ()) in
  check Alcotest.bool "some ORF allocations" true (stats.Alloc.Allocator.orf_allocated > 0)

let test_alloc_three_level_split () =
  let config = Alloc.Config.make ~orf_entries:3 ~lrf:Alloc.Config.Split () in
  let _, _, stats = alloc_and_verify config (saxpy ()) in
  check Alcotest.bool "some LRF allocations" true (stats.Alloc.Allocator.lrf_allocated > 0)

let test_traffic_energy_ordering () =
  let k = saxpy () in
  let ctx = Alloc.Context.create k in
  let params = Energy.Params.default in
  let energy_of scheme entries =
    let r = Sim.Traffic.run ~warps:8 ctx scheme in
    (Energy.Counts.energy params ~orf_entries:entries r.Sim.Traffic.counts).Energy.Counts.total
  in
  let base = energy_of Sim.Traffic.Baseline 3 in
  let config = Alloc.Config.make ~orf_entries:3 ~lrf:Alloc.Config.Split () in
  let placement = Alloc.Allocator.place config ctx in
  let sw = energy_of (Sim.Traffic.Sw { config; placement }) 3 in
  let hw = energy_of (Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:3)) 3 in
  check Alcotest.bool "baseline positive" true (base > 0.0);
  check Alcotest.bool "SW beats baseline" true (sw < base);
  check Alcotest.bool "HW beats baseline" true (hw < base);
  check Alcotest.bool "SW beats HW" true (sw < hw)

let test_perf_two_level () =
  let k = saxpy () in
  let ctx = Alloc.Context.create k in
  let single =
    Sim.Perf.run ~warps:32 ~scheduler:Sim.Perf.Single_level ~policy:Sim.Perf.On_dependence ctx
  in
  let two =
    Sim.Perf.run ~warps:32 ~scheduler:(Sim.Perf.Two_level 8) ~policy:Sim.Perf.On_dependence ctx
  in
  check Alcotest.bool "ipc positive" true (two.Sim.Perf.ipc > 0.0);
  check Alcotest.bool "two-level within 5% of single-level" true
    (two.Sim.Perf.ipc >= 0.95 *. single.Sim.Perf.ipc)

let suite =
  [
    Alcotest.test_case "build saxpy" `Quick test_build;
    Alcotest.test_case "strand partition" `Quick test_strands;
    Alcotest.test_case "allocate 2-level" `Quick test_alloc_two_level;
    Alcotest.test_case "allocate 3-level split" `Quick test_alloc_three_level_split;
    Alcotest.test_case "energy ordering" `Quick test_traffic_energy_ordering;
    Alcotest.test_case "two-level scheduler IPC" `Quick test_perf_two_level;
  ]
