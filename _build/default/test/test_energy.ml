(* Energy model tests: the Table 3/4 constants and the access/wire
   arithmetic, checked against hand-computed values. *)

let check = Alcotest.check
let feq = Alcotest.float 1e-9

let p = Energy.Params.default

let test_table3_values () =
  check feq "1-entry read" 0.7 (Energy.Params.orf_read_energy p ~entries:1);
  check feq "3-entry read" 1.2 (Energy.Params.orf_read_energy p ~entries:3);
  check feq "8-entry read" 3.4 (Energy.Params.orf_read_energy p ~entries:8);
  check feq "3-entry write" 4.4 (Energy.Params.orf_write_energy p ~entries:3);
  check feq "8-entry write" 10.9 (Energy.Params.orf_write_energy p ~entries:8)

let test_table3_clamping () =
  check feq "below range clamps" 0.7 (Energy.Params.orf_read_energy p ~entries:0);
  check feq "above range clamps" 3.4 (Energy.Params.orf_read_energy p ~entries:12)

let test_wire_energy () =
  (* 4 lanes x 1.9 pJ/mm x 1 mm = 7.6 pJ per 128-bit access. *)
  check feq "1mm" 7.6 (Energy.Params.wire_energy_128 p ~mm:1.0);
  check feq "0.2mm" 1.52 (Energy.Params.wire_energy_128 p ~mm:0.2)

let test_model_read_energies () =
  (* MRF private read: 8 + 7.6. *)
  check feq "mrf private" 15.6
    (Energy.Model.read_energy p ~orf_entries:3 Energy.Model.Mrf Energy.Model.Private);
  (* ORF private read at 3 entries: 1.2 + 0.2mm wire = 1.2 + 1.52. *)
  check feq "orf private" 2.72
    (Energy.Model.read_energy p ~orf_entries:3 Energy.Model.Orf Energy.Model.Private);
  (* ORF shared read: 1.2 + 0.4mm wire. *)
  check feq "orf shared" (1.2 +. 3.04)
    (Energy.Model.read_energy p ~orf_entries:3 Energy.Model.Orf Energy.Model.Shared);
  (* LRF read: 0.7 + 0.05mm wire. *)
  check feq "lrf" (0.7 +. 0.38)
    (Energy.Model.read_energy p ~orf_entries:3 Energy.Model.Lrf Energy.Model.Private);
  (* RFC adds tag energy over the ORF. *)
  check feq "rfc = orf + tag" 0.2
    (Energy.Model.read_energy p ~orf_entries:3 Energy.Model.Rfc Energy.Model.Private
     -. Energy.Model.read_energy p ~orf_entries:3 Energy.Model.Orf Energy.Model.Private)

let test_model_write_energies () =
  check feq "mrf write private" (11.0 +. 7.6)
    (Energy.Model.write_energy p ~orf_entries:3 Energy.Model.Mrf Energy.Model.Private);
  check feq "lrf write" (2.0 +. 0.38)
    (Energy.Model.write_energy p ~orf_entries:1 Energy.Model.Lrf Energy.Model.Private)

let test_model_lrf_shared_rejected () =
  Alcotest.check_raises "lrf shared"
    (Invalid_argument "Energy.Model: the LRF is not wired to the shared datapath") (fun () ->
      ignore (Energy.Model.read_energy p ~orf_entries:1 Energy.Model.Lrf Energy.Model.Shared))

let test_model_probe () =
  check feq "probe = tag read" 0.2 (Energy.Model.rfc_probe_energy p);
  check feq "tagless probe" 0.0 (Energy.Model.rfc_probe_energy Energy.Params.tagless)

let test_counts_accumulate () =
  let c = Energy.Counts.create () in
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~n:3 ();
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Shared ();
  Energy.Counts.add_write c Energy.Model.Orf Energy.Model.Private ~n:2 ();
  check Alcotest.int "mrf reads" 4 (Energy.Counts.reads c Energy.Model.Mrf);
  check Alcotest.int "per dp" 3 (Energy.Counts.reads_dp c Energy.Model.Mrf Energy.Model.Private);
  check Alcotest.int "orf writes" 2 (Energy.Counts.writes c Energy.Model.Orf);
  check Alcotest.int "total reads" 4 (Energy.Counts.total_reads c);
  check Alcotest.int "total writes" 2 (Energy.Counts.total_writes c)

let test_counts_merge_copy () =
  let a = Energy.Counts.create () in
  Energy.Counts.add_read a Energy.Model.Lrf Energy.Model.Private ();
  let b = Energy.Counts.copy a in
  Energy.Counts.add_read b Energy.Model.Lrf Energy.Model.Private ();
  check Alcotest.int "copy independent" 1 (Energy.Counts.reads a Energy.Model.Lrf);
  Energy.Counts.merge_into ~dst:a b;
  check Alcotest.int "merged" 3 (Energy.Counts.reads a Energy.Model.Lrf)

let test_counts_energy_exact () =
  let c = Energy.Counts.create () in
  Energy.Counts.add_read c Energy.Model.Mrf Energy.Model.Private ~n:10 ();
  Energy.Counts.add_write c Energy.Model.Mrf Energy.Model.Private ~n:5 ();
  let bd = Energy.Counts.energy p ~orf_entries:3 c in
  (* 10 reads * (8 + 7.6) + 5 writes * (11 + 7.6) = 156 + 93 = 249. *)
  check feq "total" 249.0 bd.Energy.Counts.total;
  let mrf =
    List.find (fun (le : Energy.Counts.level_energy) -> le.Energy.Counts.level = Energy.Model.Mrf)
      bd.Energy.Counts.levels
  in
  check feq "access part" (80.0 +. 55.0) mrf.Energy.Counts.access;
  check feq "wire part" (76.0 +. 38.0) mrf.Energy.Counts.wire

let test_counts_probe_energy () =
  let c = Energy.Counts.create () in
  Energy.Counts.add_rfc_probe c ~n:10 ();
  let bd = Energy.Counts.energy p ~orf_entries:3 c in
  check feq "probes cost tag energy" 2.0 bd.Energy.Counts.total

let test_counts_lrf_shared_rejected () =
  let c = Energy.Counts.create () in
  Energy.Counts.add_read c Energy.Model.Lrf Energy.Model.Shared ();
  Alcotest.check_raises "rejected at pricing"
    (Invalid_argument "Energy.Counts: LRF accessed from the shared datapath") (fun () ->
      ignore (Energy.Counts.energy p ~orf_entries:3 c))

let test_chip_model () =
  let m = Energy.Chip.paper in
  (* The paper's published correspondences: 54% RF = 8.3% SM = 5.8% chip. *)
  check (Alcotest.float 1e-6) "SM saving" 0.083 (Energy.Chip.sm_saving m ~rf_saving:0.54);
  check (Alcotest.float 1e-6) "chip saving" 0.058 (Energy.Chip.chip_saving m ~rf_saving:0.54);
  (* 1 extra bit on a 32-bit encoding at 10% fetch/decode = 0.3125%. *)
  check (Alcotest.float 1e-6) "1-bit overhead" (0.10 /. 32.0)
    (Energy.Chip.encoding_overhead m ~extra_bits:1);
  check (Alcotest.float 1e-6) "net" (0.058 -. (0.5 /. 32.0))
    (Energy.Chip.net_chip_saving m ~rf_saving:0.54 ~extra_bits:5)

let suite =
  [
    Alcotest.test_case "chip model" `Quick test_chip_model;
    Alcotest.test_case "table 3 values" `Quick test_table3_values;
    Alcotest.test_case "table 3 clamping" `Quick test_table3_clamping;
    Alcotest.test_case "wire energy" `Quick test_wire_energy;
    Alcotest.test_case "model read energies" `Quick test_model_read_energies;
    Alcotest.test_case "model write energies" `Quick test_model_write_energies;
    Alcotest.test_case "LRF shared rejected" `Quick test_model_lrf_shared_rejected;
    Alcotest.test_case "probe energy" `Quick test_model_probe;
    Alcotest.test_case "counts accumulate" `Quick test_counts_accumulate;
    Alcotest.test_case "counts merge/copy" `Quick test_counts_merge_copy;
    Alcotest.test_case "counts energy exact" `Quick test_counts_energy_exact;
    Alcotest.test_case "probe pricing" `Quick test_counts_probe_energy;
    Alcotest.test_case "counts LRF shared rejected" `Quick test_counts_lrf_shared_rejected;
  ]
