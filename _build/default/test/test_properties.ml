(* Property-based tests over randomly generated kernels: the allocator
   must produce verifiable placements for every kernel shape and
   configuration, and the core invariants must hold universally. *)

let kernel_of_seed ?(size = 10) seed = Workloads.Generator.kernel ~size ~seed ()

let seed_arb = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

let config_of_seed seed =
  let lrf =
    match seed mod 3 with
    | 0 -> Alloc.Config.No_lrf
    | 1 -> Alloc.Config.Unified
    | _ -> Alloc.Config.Split
  in
  Alloc.Config.make
    ~orf_entries:(1 + (seed / 3 mod 8))
    ~lrf
    ~partial_ranges:(seed mod 2 = 0)
    ~read_operands:(seed mod 5 <> 0)
    ()

let prop_allocator_sound =
  QCheck.Test.make ~count:150 ~name:"allocator placements verify on random kernels" seed_arb
    (fun seed ->
      let k = kernel_of_seed seed in
      let ctx = Alloc.Context.create k in
      let config = config_of_seed seed in
      let placement = Alloc.Allocator.place config ctx in
      match Alloc.Verify.check config ctx placement with
      | Ok () -> true
      | Error errs ->
        QCheck.Test.fail_reportf "seed %d: %s" seed (String.concat "; " errs))

let prop_strands_tile =
  QCheck.Test.make ~count:100 ~name:"strand intervals tile the kernel" seed_arb (fun seed ->
      let k = kernel_of_seed seed in
      let ctx = Alloc.Context.create k in
      let part = ctx.Alloc.Context.partition in
      let n = Ir.Kernel.instr_count k in
      let ok = ref true in
      let prev = ref (-1) in
      for id = 0 to n - 1 do
        let s = Strand.Partition.strand_of_instr part id in
        (* Strand ids are monotone and change exactly at starts. *)
        if Strand.Partition.starts_strand part id then begin
          if s <> !prev + 1 then ok := false
        end
        else if s <> !prev then ok := false;
        prev := s
      done;
      !ok && (n = 0 || !prev = Strand.Partition.num_strands part - 1))

let prop_sw_energy_never_worse =
  QCheck.Test.make ~count:60 ~name:"SW hierarchy never exceeds baseline energy" seed_arb
    (fun seed ->
      let k = kernel_of_seed ~size:6 seed in
      let ctx = Alloc.Context.create k in
      let config = Alloc.Config.make () in
      let placement = Alloc.Allocator.place config ctx in
      let base = Sim.Traffic.run ~warps:2 ctx Sim.Traffic.Baseline in
      let sw = Sim.Traffic.run ~warps:2 ctx (Sim.Traffic.Sw { config; placement }) in
      let energy c =
        (Energy.Counts.energy Energy.Params.default ~orf_entries:3 c).Energy.Counts.total
      in
      (* The allocator only moves a value off the MRF when it saves
         energy, so the total can never exceed the baseline. *)
      energy sw.Sim.Traffic.counts <= energy base.Sim.Traffic.counts +. 1e-6)

let prop_sw_preserves_read_count =
  QCheck.Test.make ~count:60 ~name:"SW scheme preserves total operand reads" seed_arb
    (fun seed ->
      let k = kernel_of_seed ~size:6 seed in
      let ctx = Alloc.Context.create k in
      let config = config_of_seed seed in
      let placement = Alloc.Allocator.place config ctx in
      let base = Sim.Traffic.run ~warps:2 ctx Sim.Traffic.Baseline in
      let sw = Sim.Traffic.run ~warps:2 ctx (Sim.Traffic.Sw { config; placement }) in
      (* Unlike the HW cache (writeback reads), the SW scheme performs
         exactly one read per source operand. *)
      Energy.Counts.total_reads sw.Sim.Traffic.counts
      = Energy.Counts.total_reads base.Sim.Traffic.counts)

let prop_hw_reads_at_least_baseline =
  QCheck.Test.make ~count:40 ~name:"HW cache reads >= baseline reads (writebacks)" seed_arb
    (fun seed ->
      let k = kernel_of_seed ~size:6 seed in
      let ctx = Alloc.Context.create k in
      let base = Sim.Traffic.run ~warps:2 ctx Sim.Traffic.Baseline in
      let hw =
        Sim.Traffic.run ~warps:2 ctx (Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:3))
      in
      Energy.Counts.total_reads hw.Sim.Traffic.counts
      >= Energy.Counts.total_reads base.Sim.Traffic.counts)

let prop_traffic_deterministic =
  QCheck.Test.make ~count:40 ~name:"traffic accounting is deterministic" seed_arb (fun seed ->
      let k = kernel_of_seed ~size:5 seed in
      let ctx = Alloc.Context.create k in
      let r1 = Sim.Traffic.run ~warps:3 ~seed ctx Sim.Traffic.Baseline in
      let r2 = Sim.Traffic.run ~warps:3 ~seed ctx Sim.Traffic.Baseline in
      Energy.Counts.total_reads r1.Sim.Traffic.counts
      = Energy.Counts.total_reads r2.Sim.Traffic.counts
      && r1.Sim.Traffic.dynamic_instrs = r2.Sim.Traffic.dynamic_instrs)

let prop_generator_valid =
  QCheck.Test.make ~count:100 ~name:"generated kernels validate" seed_arb (fun seed ->
      let k = kernel_of_seed seed in
      match
        Ir.Kernel.validate ~name:k.Ir.Kernel.name ~blocks:k.Ir.Kernel.blocks
          ~num_regs:k.Ir.Kernel.num_regs
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

let prop_perf_conservation =
  QCheck.Test.make ~count:20 ~name:"perf sim executes every dynamic instruction" seed_arb
    (fun seed ->
      let k = kernel_of_seed ~size:4 seed in
      let ctx = Alloc.Context.create k in
      let traffic = Sim.Traffic.run ~warps:4 ~seed ctx Sim.Traffic.Baseline in
      let perf =
        Sim.Perf.run ~warps:4 ~seed ~scheduler:Sim.Perf.Single_level
          ~policy:Sim.Perf.On_dependence ctx
      in
      perf.Sim.Perf.instructions = traffic.Sim.Traffic.dynamic_instrs)

let prop_occupancy_no_double_booking =
  QCheck.Test.make ~count:100 ~name:"occupancy never double-books" seed_arb (fun seed ->
      let prng = Util.Prng.create seed in
      let o = Alloc.Occupancy.create ~entries:4 in
      let reserved = ref [] in
      for _ = 1 to 30 do
        let first = Util.Prng.int prng 40 in
        let last = first + 1 + Util.Prng.int prng 10 in
        match Alloc.Occupancy.find_free o ~width:1 ~first ~last with
        | Some e ->
          Alloc.Occupancy.reserve o ~entry:e ~first ~last;
          reserved := (e, first, last) :: !reserved
        | None -> ()
      done;
      (* No two reservations on the same entry overlap. *)
      List.for_all
        (fun (e1, f1, l1) ->
          List.for_all
            (fun (e2, f2, l2) ->
              (e1, f1, l1) = (e2, f2, l2) || e1 <> e2 || f1 >= l2 || f2 >= l1)
            !reserved)
        !reserved)

let prop_limit_relaxations_monotone =
  QCheck.Test.make ~count:25 ~name:"relaxed strand boundaries never add strands" seed_arb
    (fun seed ->
      let k = kernel_of_seed ~size:8 seed in
      let cfg = Analysis.Cfg.of_kernel k in
      let reaching = Analysis.Reaching.compute k cfg in
      let full = Strand.Partition.compute k cfg reaching in
      let relaxed =
        Strand.Partition.compute
          ~kinds:{ Strand.Partition.long_latency = false; backward = true; merge = false }
          k cfg reaching
      in
      Strand.Partition.num_strands relaxed <= Strand.Partition.num_strands full)

let prop_simt_matches_cf_when_uniform =
  QCheck.Test.make ~count:40 ~name:"SIMT executor = warp-uniform walker on uniform kernels"
    seed_arb
    (fun seed ->
      let k = Workloads.Generator.kernel ~size:6 ~prob_branches:false ~seed () in
      let cf_count =
        let cf = Sim.Cf.create k ~warp:1 ~seed in
        let rec go n =
          match Sim.Cf.peek cf with None -> n | Some _ -> Sim.Cf.advance cf; go (n + 1)
        in
        go 0
      in
      let simt = Sim.Simt.run_warp k ~warp:1 ~seed ~on_instr:(fun _ ~active:_ ~clusters:_ -> ()) in
      simt.Sim.Simt.warp_instructions = cf_count
      && simt.Sim.Simt.divergent_branches = 0
      && simt.Sim.Simt.simd_efficiency = 1.0)

let dynamic_work k =
  (* Count non-control dynamic instructions across a few warps. *)
  let total = ref 0 in
  for w = 0 to 2 do
    let cf = Sim.Cf.create k ~warp:w ~seed:77 in
    let rec go () =
      match Sim.Cf.peek cf with
      | None -> ()
      | Some i ->
        (match i.Ir.Instr.op with Ir.Op.Bra | Ir.Op.Setp -> () | _ -> incr total);
        Sim.Cf.advance cf;
        go ()
    in
    go ()
  done;
  !total

let prop_transforms_preserve_work =
  QCheck.Test.make ~count:40 ~name:"reschedule/unroll preserve dynamic work" seed_arb
    (fun seed ->
      let k = kernel_of_seed ~size:6 seed in
      let w = dynamic_work k in
      dynamic_work (Workloads.Generator.kernel ~size:6 ~seed () |> Transform.Reschedule.kernel) = w
      && dynamic_work (Transform.Unroll.kernel ~factor:2 k) = w)

let prop_transformed_kernels_verify =
  QCheck.Test.make ~count:60 ~name:"transformed random kernels still verify" seed_arb
    (fun seed ->
      let k =
        Transform.Reschedule.kernel
          (Transform.Unroll.kernel ~factor:2 (kernel_of_seed ~size:6 seed))
      in
      let ctx = Alloc.Context.create k in
      let config = config_of_seed seed in
      let placement = Alloc.Allocator.place config ctx in
      match Alloc.Verify.check config ctx placement with
      | Ok () -> true
      | Error errs -> QCheck.Test.fail_reportf "seed %d: %s" seed (String.concat "; " errs))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generator_valid;
      prop_simt_matches_cf_when_uniform;
      prop_transforms_preserve_work;
      prop_transformed_kernels_verify;
      prop_allocator_sound;
      prop_strands_tile;
      prop_sw_energy_never_worse;
      prop_sw_preserves_read_count;
      prop_hw_reads_at_least_baseline;
      prop_traffic_deterministic;
      prop_perf_conservation;
      prop_occupancy_no_double_booking;
      prop_limit_relaxations_monotone;
    ]
