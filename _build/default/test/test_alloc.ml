(* Allocator tests: occupancy semantics, the Fig. 6/9 savings formulas,
   and the placement decisions of Sec. 4 on crafted kernels. *)

let check = Alcotest.check
let feq = Alcotest.float 1e-9

module B = Ir.Builder
module Op = Ir.Op

(* --- Occupancy ---------------------------------------------------- *)

let test_occupancy_basic () =
  let o = Alloc.Occupancy.create ~entries:2 in
  check Alcotest.int "entries" 2 (Alloc.Occupancy.entries o);
  check Alcotest.bool "fresh available" true (Alloc.Occupancy.available o ~entry:0 ~first:0 ~last:5);
  Alloc.Occupancy.reserve o ~entry:0 ~first:0 ~last:5;
  check Alcotest.bool "overlap rejected" false
    (Alloc.Occupancy.available o ~entry:0 ~first:4 ~last:6);
  check Alcotest.bool "other entry free" true
    (Alloc.Occupancy.available o ~entry:1 ~first:4 ~last:6)

let test_occupancy_half_open () =
  (* [0,5) and [5,8) touch but do not overlap: a chained value can
     reuse the entry at the instruction that reads its predecessor. *)
  let o = Alloc.Occupancy.create ~entries:1 in
  Alloc.Occupancy.reserve o ~entry:0 ~first:0 ~last:5;
  check Alcotest.bool "touching ok" true (Alloc.Occupancy.available o ~entry:0 ~first:5 ~last:8);
  Alloc.Occupancy.reserve o ~entry:0 ~first:5 ~last:8;
  check Alcotest.bool "inside rejected" false
    (Alloc.Occupancy.available o ~entry:0 ~first:6 ~last:7)

let test_occupancy_empty_interval () =
  let o = Alloc.Occupancy.create ~entries:1 in
  check Alcotest.bool "empty interval unavailable" false
    (Alloc.Occupancy.available o ~entry:0 ~first:3 ~last:3)

let test_occupancy_find_free () =
  let o = Alloc.Occupancy.create ~entries:3 in
  Alloc.Occupancy.reserve o ~entry:0 ~first:0 ~last:10;
  check (Alcotest.option Alcotest.int) "skips busy entry" (Some 1)
    (Alloc.Occupancy.find_free o ~width:1 ~first:2 ~last:4);
  (* Width-2 values need consecutive free entries. *)
  check (Alcotest.option Alcotest.int) "wide placement" (Some 1)
    (Alloc.Occupancy.find_free o ~width:2 ~first:2 ~last:4);
  Alloc.Occupancy.reserve_range o ~entry:1 ~width:2 ~first:2 ~last:4;
  check (Alcotest.option Alcotest.int) "no room for width 2" None
    (Alloc.Occupancy.find_free o ~width:2 ~first:3 ~last:5);
  (* Width larger than the remaining free entries never fits. *)
  check (Alcotest.option Alcotest.int) "width 3 blocked by busy entry" None
    (Alloc.Occupancy.find_free o ~width:3 ~first:5 ~last:6)

let test_occupancy_reserve_conflict () =
  let o = Alloc.Occupancy.create ~entries:1 in
  Alloc.Occupancy.reserve o ~entry:0 ~first:0 ~last:5;
  Alcotest.check_raises "double reserve"
    (Invalid_argument "Occupancy.reserve: entry 0 interval [2, 4] unavailable") (fun () ->
      Alloc.Occupancy.reserve o ~entry:0 ~first:2 ~last:4)

(* --- Savings (Fig. 6 / Fig. 9) ------------------------------------ *)

let config2 = Alloc.Config.make ~orf_entries:3 ~lrf:Alloc.Config.No_lrf ()

let test_savings_write_unit_dead () =
  (* No reads, not live out: save the MRF write, pay the ORF write.
     (11 + 7.6) - (4.4 + 1.52) = 12.68. *)
  let s =
    Alloc.Savings.write_unit config2 ~target:`Orf ~producer_dp:Energy.Model.Private ~reads:[]
      ~mrf_write_required:false
  in
  check feq "dead value" 12.68 s

let test_savings_write_unit_reads () =
  (* One private read: (15.6 - 2.72) - 5.92 + 18.6 = 25.56. *)
  let s =
    Alloc.Savings.write_unit config2 ~target:`Orf ~producer_dp:Energy.Model.Private
      ~reads:[ Energy.Model.Private ] ~mrf_write_required:false
  in
  check feq "one read" 25.56 s;
  (* Same but live out: no MRF-write saving: 12.88 - 5.92 = 6.96. *)
  let s2 =
    Alloc.Savings.write_unit config2 ~target:`Orf ~producer_dp:Energy.Model.Private
      ~reads:[ Energy.Model.Private ] ~mrf_write_required:true
  in
  check feq "live out" 6.96 s2

let test_savings_lrf_beats_orf () =
  let lrf =
    Alloc.Savings.write_unit config2 ~target:`Lrf ~producer_dp:Energy.Model.Private
      ~reads:[ Energy.Model.Private ] ~mrf_write_required:true
  in
  let orf =
    Alloc.Savings.write_unit config2 ~target:`Orf ~producer_dp:Energy.Model.Private
      ~reads:[ Energy.Model.Private ] ~mrf_write_required:true
  in
  check Alcotest.bool "LRF saves more" true (lrf > orf)

let test_savings_read_unit () =
  (* Fig. 9: first read stays MRF; only later reads save.
     2 extra private reads: 2 * (15.6 - 2.72) - 5.92 = 19.84. *)
  let s =
    Alloc.Savings.read_unit config2
      ~reads:[ Energy.Model.Private; Energy.Model.Private; Energy.Model.Private ]
  in
  check feq "3 reads" 19.84 s;
  check Alcotest.bool "single read never profitable" true
    (Alloc.Savings.read_unit config2 ~reads:[ Energy.Model.Private ] = neg_infinity)

let test_savings_priority () =
  let p = Alloc.Savings.priority ~savings:10.0 ~first:5 ~last:10 in
  check feq "per slot" 2.0 p;
  check feq "min one slot" 10.0 (Alloc.Savings.priority ~savings:10.0 ~first:5 ~last:5)

let test_savings_cost_entries_override () =
  let cfg8at3 = Alloc.Config.make ~orf_entries:8 ~orf_cost_entries:3 ~lrf:Alloc.Config.No_lrf () in
  check Alcotest.int "cost entries" 3 (Alloc.Config.cost_entries cfg8at3);
  let s8at3 =
    Alloc.Savings.write_unit cfg8at3 ~target:`Orf ~producer_dp:Energy.Model.Private
      ~reads:[ Energy.Model.Private ] ~mrf_write_required:false
  in
  let s3 =
    Alloc.Savings.write_unit config2 ~target:`Orf ~producer_dp:Energy.Model.Private
      ~reads:[ Energy.Model.Private ] ~mrf_write_required:false
  in
  check feq "priced as 3-entry" s3 s8at3

(* --- Config ------------------------------------------------------- *)

let test_config_validation () =
  Alcotest.check_raises "entries 0" (Invalid_argument "Alloc.Config.make: orf_entries = 0")
    (fun () -> ignore (Alloc.Config.make ~orf_entries:0 ()));
  Alcotest.check_raises "entries 9" (Invalid_argument "Alloc.Config.make: orf_entries = 9")
    (fun () -> ignore (Alloc.Config.make ~orf_entries:9 ()));
  check Alcotest.int "split banks" 3 (Alloc.Config.lrf_banks (Alloc.Config.make ~lrf:Alloc.Config.Split ()));
  check Alcotest.int "unified banks" 1 (Alloc.Config.lrf_banks (Alloc.Config.make ~lrf:Alloc.Config.Unified ()));
  check Alcotest.int "no banks" 0 (Alloc.Config.lrf_banks (Alloc.Config.make ~lrf:Alloc.Config.No_lrf ()))

(* --- Allocator decisions ------------------------------------------ *)

let compile config k =
  let ctx = Alloc.Context.create k in
  let placement, stats = Alloc.Allocator.run config ctx in
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> ()
   | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  (ctx, placement, stats)

let dest_of placement id = Option.get (Alloc.Placement.dest placement ~instr:id)

(* A chain of ALU values, each read once by the next instruction: every
   link should land in the LRF, with no MRF traffic at all. *)
let test_alloc_lrf_chain () =
  let b = B.create "chain" in
  let a = B.fresh b in
  let v1 = B.op2 b Op.Iadd a a in
  let v2 = B.op1 b Op.Mov v1 in
  let v3 = B.op1 b Op.Mov v2 in
  B.store b Op.St_global ~addr:a ~value:v3;
  let k = B.finalize b in
  let config = Alloc.Config.make ~lrf:Alloc.Config.Unified () in
  let _, placement, stats = compile config k in
  ignore (v1, v2, v3);
  (* v1 (instr 0) and v2 (instr 1) are LRF-eligible; v3 (instr 2) is
     read by a store, i.e. the shared datapath. *)
  check Alcotest.bool "at least 2 LRF" true (stats.Alloc.Allocator.lrf_allocated >= 2);
  let d1 = dest_of placement 0 in
  check Alcotest.bool "v1 in LRF" true (d1.Alloc.Placement.to_lrf <> None);
  check Alcotest.bool "v1 not in MRF" false d1.Alloc.Placement.to_mrf;
  let d3 = dest_of placement 2 in
  check Alcotest.bool "v3 not in LRF" true (d3.Alloc.Placement.to_lrf = None)

(* Long-latency results must go to the MRF only. *)
let test_alloc_long_latency_mrf_only () =
  let b = B.create "ll" in
  let a = B.fresh b in
  let x = B.op1 b Op.Ld_global a in
  let y = B.op1 b Op.Mov x in
  B.store b Op.St_global ~addr:a ~value:y;
  let k = B.finalize b in
  let _, placement, _ = compile (Alloc.Config.make ()) k in
  let d = dest_of placement 0 in
  check Alcotest.bool "no LRF" true (d.Alloc.Placement.to_lrf = None);
  check Alcotest.bool "no ORF" true (d.Alloc.Placement.to_orf = None);
  check Alcotest.bool "MRF" true d.Alloc.Placement.to_mrf;
  (* Its consumer reads from the MRF. *)
  check Alcotest.bool "read from MRF" true
    (Alloc.Placement.src placement ~instr:1 ~pos:0 = Alloc.Placement.From_mrf)

(* Dead values are written to the cheapest level and never to the MRF. *)
let test_alloc_dead_value_elision () =
  let b = B.create "dead" in
  let a = B.fresh b in
  ignore (B.op2 b Op.Iand a a);
  B.store b Op.St_global ~addr:a ~value:a;
  let k = B.finalize b in
  let _, placement, _ = compile (Alloc.Config.make ()) k in
  let d = dest_of placement 0 in
  check Alcotest.bool "dead value avoids the MRF" false d.Alloc.Placement.to_mrf

(* Read-operand allocation (Fig. 8(b)): a parameter read repeatedly in
   one strand is filled into the ORF once. *)
let test_alloc_read_operand () =
  let b = B.create "ro" in
  let param = B.fresh b in
  let v1 = B.op2 b Op.Iadd param param in
  let v2 = B.op2 b Op.Iadd v1 param in
  let v3 = B.op2 b Op.Iadd v2 param in
  B.store b Op.St_global ~addr:param ~value:v3;
  let k = B.finalize b in
  let config = Alloc.Config.make ~lrf:Alloc.Config.No_lrf () in
  let _, placement, stats = compile config k in
  check Alcotest.bool "read unit built" true (stats.Alloc.Allocator.read_units >= 1);
  (* First read from MRF with a fill; at least one later read from ORF. *)
  check Alcotest.bool "fill present" true (Alloc.Placement.fills_of placement ~instr:0 <> []);
  let later_orf =
    List.exists
      (fun (instr, pos) ->
        match Alloc.Placement.src placement ~instr ~pos with
        | Alloc.Placement.From_orf _ -> true
        | _ -> false)
      [ (1, 1); (2, 1) ]
  in
  check Alcotest.bool "later read from ORF" true later_orf

(* With read-operand allocation disabled those reads stay in the MRF. *)
let test_alloc_read_operand_disabled () =
  let b = B.create "ro-off" in
  let param = B.fresh b in
  let v1 = B.op2 b Op.Iadd param param in
  B.store b Op.St_global ~addr:param ~value:v1;
  let k = B.finalize b in
  let config = Alloc.Config.make ~read_operands:false () in
  let _, placement, stats = compile config k in
  check Alcotest.int "no read units" 0 stats.Alloc.Allocator.read_units;
  check Alcotest.bool "no fill" true (Alloc.Placement.fills_of placement ~instr:0 = [])

(* Partial ranges (Fig. 8(a)): with a 1-entry ORF and two competing
   values, the allocator shortens ranges instead of giving up. *)
let test_alloc_partial_range () =
  let b = B.create "partial" in
  let a = B.fresh b in
  let long_lived = B.op2 b Op.Iadd a a in
  let r1 = B.op1 b Op.Mov long_lived in
  let r2 = B.op1 b Op.Mov long_lived in
  let r3 = B.op1 b Op.Mov long_lived in
  let sum = B.op2 b Op.Iadd r1 r2 in
  let sum2 = B.op2 b Op.Iadd sum r3 in
  (* a second value competing for the single entry *)
  let late = B.op2 b Op.Iadd sum2 sum2 in
  let use = B.op1 b Op.Mov late in
  B.store b Op.St_global ~addr:a ~value:use;
  B.store b Op.St_global ~addr:a ~value:long_lived;
  let k = B.finalize b in
  let with_partial = Alloc.Config.make ~orf_entries:1 ~lrf:Alloc.Config.No_lrf () in
  let without =
    Alloc.Config.make ~orf_entries:1 ~lrf:Alloc.Config.No_lrf ~partial_ranges:false ()
  in
  let _, _, s1 = compile with_partial k in
  let _, _, s2 = compile without k in
  check Alcotest.bool "partial ranges used" true (s1.Alloc.Allocator.partial_allocated >= 1);
  check Alcotest.int "disabled: none" 0 s2.Alloc.Allocator.partial_allocated;
  check Alcotest.bool "partial covers more" true
    (s1.Alloc.Allocator.orf_allocated >= s2.Alloc.Allocator.orf_allocated)

(* Fig. 10(c): both-sided hammock definitions share one ORF entry and
   serve the merge read from it. *)
let test_alloc_fig10c_shared_entry () =
  let b = B.create "f10c" in
  let p = B.op0 b Op.Mov () in
  let r = B.fresh b in
  let else_l = B.new_label b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:else_l (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  B.op1_into b Op.Mov ~dst:r p;
  B.jump b join;
  B.start_block b else_l;
  B.op1_into b Op.Mov ~dst:r p;
  B.start_block b join;
  let use = B.op1 b Op.Mov r in
  B.store b Op.St_shared ~addr:p ~value:use;
  let k = B.finalize b in
  let _, placement, _ = compile (Alloc.Config.make ~lrf:Alloc.Config.No_lrf ()) k in
  (* The two defs of r are instrs 2 and 4 (bra is 1, jump closes bb1). *)
  let def_ids =
    Ir.Kernel.fold_instrs k ~init:[] ~f:(fun acc _ i ->
        if i.Ir.Instr.dst = Some r then i.Ir.Instr.id :: acc else acc)
  in
  check Alcotest.int "two defs" 2 (List.length def_ids);
  let entries =
    List.map (fun id -> (dest_of placement id).Alloc.Placement.to_orf) def_ids
  in
  (match entries with
   | [ Some e1; Some e2 ] ->
     check Alcotest.int "same entry" e1 e2;
     ignore use;
     (* The merge read comes from that entry. *)
     let merge_read =
       Ir.Kernel.fold_instrs k ~init:None ~f:(fun acc _ i ->
           match acc with
           | Some _ -> acc
           | None ->
             List.fold_left
               (fun acc (pos, src) -> if src = r then Some (i.Ir.Instr.id, pos) else acc)
               None
               (List.mapi (fun pos src -> (pos, src)) i.Ir.Instr.srcs))
     in
     (match merge_read with
      | Some (instr, pos) ->
        (match Alloc.Placement.src placement ~instr ~pos with
         | Alloc.Placement.From_orf e -> check Alcotest.int "read from shared entry" e1 e
         | other -> Alcotest.failf "expected ORF read, got %s" (Alloc.Placement.level_name other))
      | None -> Alcotest.fail "no read of r found")
   | _ -> Alcotest.fail "both defs should be ORF-allocated")

(* Fig. 10(a): one-sided definition cannot serve the merge read. *)
let test_alloc_fig10a_merge_from_mrf () =
  let b = B.create "f10a" in
  let p = B.op0 b Op.Mov () in
  let r = B.fresh b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:join (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  B.op1_into b Op.Mov ~dst:r p;
  B.start_block b join;
  let use = B.op1 b Op.Mov r in
  B.store b Op.St_shared ~addr:p ~value:use;
  let k = B.finalize b in
  let _, placement, _ = compile (Alloc.Config.make ()) k in
  let use_id = 3 in
  (* bb2's first instruction: mov use, r *)
  let read_level = Alloc.Placement.src placement ~instr:use_id ~pos:0 in
  check Alcotest.string "merge read from MRF" "MRF" (Alloc.Placement.level_name read_level);
  (* And the one-sided def keeps an MRF copy for it. *)
  let d = dest_of placement 2 in
  check Alcotest.bool "def writes MRF" true d.Alloc.Placement.to_mrf

(* Split LRF: a value read in two different operand slots must not use
   the LRF (Sec. 3.2). *)
let test_alloc_split_lrf_slot_constraint () =
  let b = B.create "split" in
  let a = B.fresh b in
  let v = B.op2 b Op.Iadd a a in
  (* v read at slot A of one instr and slot B of another *)
  let u1 = B.op2 b Op.Iadd v a in
  let u2 = B.op2 b Op.Iadd a v in
  B.store b Op.St_global ~addr:u1 ~value:u2;
  let k = B.finalize b in
  let _, placement, _ = compile (Alloc.Config.make ~lrf:Alloc.Config.Split ()) k in
  let d = dest_of placement 0 in
  check Alcotest.bool "cross-slot value not in split LRF" true (d.Alloc.Placement.to_lrf = None);
  (* Under a unified LRF the same value is allowed in. *)
  let _, placement_u, _ = compile (Alloc.Config.make ~lrf:Alloc.Config.Unified ()) k in
  let du = dest_of placement_u 0 in
  check Alcotest.bool "unified LRF accepts it" true (du.Alloc.Placement.to_lrf <> None)

(* Wide (64-bit) values occupy two consecutive ORF entries; with a
   single-entry ORF they cannot be allocated at all. *)
let test_alloc_wide_values () =
  let b = B.create "wide" in
  let a = B.fresh b in
  let w = B.op1 b Op.Ld_shared ~width:Ir.Width.W64 a in
  let u = B.op2 b Op.Fadd w w in
  B.store b Op.St_global ~addr:a ~value:u;
  let k = B.finalize b in
  let one = Alloc.Config.make ~orf_entries:1 ~lrf:Alloc.Config.No_lrf () in
  let _, placement1, _ = compile one k in
  let d1 = dest_of placement1 0 in
  check Alcotest.bool "1-entry ORF cannot hold w64" true (d1.Alloc.Placement.to_orf = None);
  let two = Alloc.Config.make ~orf_entries:2 ~lrf:Alloc.Config.No_lrf () in
  let _, placement2, _ = compile two k in
  let d2 = dest_of placement2 0 in
  check Alcotest.bool "2-entry ORF holds w64" true (d2.Alloc.Placement.to_orf <> None)

(* Values crossing a strand boundary must come back from the MRF. *)
let test_alloc_strand_crossing () =
  let b = B.create "cross" in
  let a = B.fresh b in
  let v = B.op2 b Op.Iadd a a in
  let x = B.op1 b Op.Ld_global a in
  let consumer = B.op3 b Op.Ffma x v v in
  B.store b Op.St_global ~addr:a ~value:consumer;
  let k = B.finalize b in
  let _, placement, _ = compile (Alloc.Config.make ()) k in
  (* v (instr 0) is read only by the ffma, which starts a new strand:
     the read must be MRF and v must be written to the MRF. *)
  let d = dest_of placement 0 in
  check Alcotest.bool "v reaches MRF" true d.Alloc.Placement.to_mrf;
  check Alcotest.string "cross-strand read from MRF" "MRF"
    (Alloc.Placement.level_name (Alloc.Placement.src placement ~instr:2 ~pos:1))

(* --- Verifier negative tests --------------------------------------- *)

let test_verify_catches_bad_src () =
  let b = B.create "bad" in
  let a = B.fresh b in
  let v = B.op2 b Op.Iadd a a in
  let u = B.op1 b Op.Mov v in
  B.store b Op.St_global ~addr:a ~value:u;
  let k = B.finalize b in
  let config = Alloc.Config.make () in
  let ctx = Alloc.Context.create k in
  let placement = Alloc.Allocator.place config ctx in
  (* Corrupt: claim instr 1 reads ORF entry 2 which nobody wrote. *)
  Alloc.Placement.set_src placement ~instr:1 ~pos:0 (Alloc.Placement.From_orf 2);
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> Alcotest.fail "verifier accepted a stale ORF read"
   | Error _ -> ())

let test_verify_catches_missing_mrf_copy () =
  let b = B.create "bad2" in
  let a = B.fresh b in
  let v = B.op2 b Op.Iadd a a in
  let u = B.op1 b Op.Mov v in
  B.store b Op.St_global ~addr:a ~value:u;
  let k = B.finalize b in
  let config = Alloc.Config.make () in
  let ctx = Alloc.Context.create k in
  let placement = Alloc.Allocator.place config ctx in
  (* Corrupt: v written nowhere near the MRF but read from it. *)
  Alloc.Placement.set_dest placement ~instr:0
    { Alloc.Placement.to_lrf = None; to_orf = Some 0; to_mrf = false };
  Alloc.Placement.set_src placement ~instr:1 ~pos:0 Alloc.Placement.From_mrf;
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> Alcotest.fail "verifier accepted a stale MRF read"
   | Error _ -> ())

let test_verify_catches_shared_lrf () =
  let b = B.create "bad3" in
  let a = B.fresh b in
  let v = B.op2 b Op.Iadd a a in
  B.store b Op.St_global ~addr:a ~value:v;
  let k = B.finalize b in
  let config = Alloc.Config.make ~lrf:Alloc.Config.Unified () in
  let ctx = Alloc.Context.create k in
  let placement = Alloc.Allocator.place config ctx in
  Alloc.Placement.set_dest placement ~instr:0
    { Alloc.Placement.to_lrf = Some 0; to_orf = None; to_mrf = true };
  (* The store (shared datapath) must not read the LRF. *)
  Alloc.Placement.set_src placement ~instr:1 ~pos:1 (Alloc.Placement.From_lrf 0);
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> Alcotest.fail "verifier accepted a shared-datapath LRF read"
   | Error _ -> ())

let suite =
  [
    Alcotest.test_case "occupancy basic" `Quick test_occupancy_basic;
    Alcotest.test_case "occupancy half-open" `Quick test_occupancy_half_open;
    Alcotest.test_case "occupancy empty interval" `Quick test_occupancy_empty_interval;
    Alcotest.test_case "occupancy find_free" `Quick test_occupancy_find_free;
    Alcotest.test_case "occupancy reserve conflict" `Quick test_occupancy_reserve_conflict;
    Alcotest.test_case "savings: dead value (Fig 6)" `Quick test_savings_write_unit_dead;
    Alcotest.test_case "savings: reads (Fig 6)" `Quick test_savings_write_unit_reads;
    Alcotest.test_case "savings: LRF beats ORF" `Quick test_savings_lrf_beats_orf;
    Alcotest.test_case "savings: read unit (Fig 9)" `Quick test_savings_read_unit;
    Alcotest.test_case "savings: priority" `Quick test_savings_priority;
    Alcotest.test_case "savings: cost override" `Quick test_savings_cost_entries_override;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "alloc: LRF chain" `Quick test_alloc_lrf_chain;
    Alcotest.test_case "alloc: long-latency MRF only" `Quick test_alloc_long_latency_mrf_only;
    Alcotest.test_case "alloc: dead value elision" `Quick test_alloc_dead_value_elision;
    Alcotest.test_case "alloc: read operand (4.4)" `Quick test_alloc_read_operand;
    Alcotest.test_case "alloc: read operand disabled" `Quick test_alloc_read_operand_disabled;
    Alcotest.test_case "alloc: partial range (4.3)" `Quick test_alloc_partial_range;
    Alcotest.test_case "alloc: Fig 10(c) shared entry" `Quick test_alloc_fig10c_shared_entry;
    Alcotest.test_case "alloc: Fig 10(a) MRF merge" `Quick test_alloc_fig10a_merge_from_mrf;
    Alcotest.test_case "alloc: split LRF slots" `Quick test_alloc_split_lrf_slot_constraint;
    Alcotest.test_case "alloc: wide values" `Quick test_alloc_wide_values;
    Alcotest.test_case "alloc: strand crossing" `Quick test_alloc_strand_crossing;
    Alcotest.test_case "verify: stale ORF read" `Quick test_verify_catches_bad_src;
    Alcotest.test_case "verify: stale MRF read" `Quick test_verify_catches_missing_mrf_copy;
    Alcotest.test_case "verify: shared LRF read" `Quick test_verify_catches_shared_lrf;
  ]
