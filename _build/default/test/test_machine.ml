(* Tagged FIFO cache tests (the hardware RFC / HW LRF model). *)

let check = Alcotest.check

let test_create_invalid () =
  Alcotest.check_raises "zero entries" (Invalid_argument "Tagged_cache.create: entries < 1")
    (fun () -> ignore (Machine.Tagged_cache.create ~entries:0))

let test_insert_and_lookup () =
  let c = Machine.Tagged_cache.create ~entries:2 in
  check Alcotest.bool "miss" false (Machine.Tagged_cache.contains c 1);
  check (Alcotest.option Alcotest.int) "no evict" None (Machine.Tagged_cache.insert c 1);
  check Alcotest.bool "hit" true (Machine.Tagged_cache.contains c 1);
  check Alcotest.int "occupancy" 1 (Machine.Tagged_cache.occupancy c)

let test_fifo_eviction () =
  let c = Machine.Tagged_cache.create ~entries:2 in
  ignore (Machine.Tagged_cache.insert c 1);
  ignore (Machine.Tagged_cache.insert c 2);
  (* Full: inserting 3 evicts the oldest (1). *)
  check (Alcotest.option Alcotest.int) "evicts oldest" (Some 1) (Machine.Tagged_cache.insert c 3);
  check Alcotest.bool "1 gone" false (Machine.Tagged_cache.contains c 1);
  check Alcotest.bool "2 stays" true (Machine.Tagged_cache.contains c 2);
  check Alcotest.bool "3 present" true (Machine.Tagged_cache.contains c 3)

let test_overwrite_in_place () =
  let c = Machine.Tagged_cache.create ~entries:2 in
  ignore (Machine.Tagged_cache.insert c 1);
  ignore (Machine.Tagged_cache.insert c 2);
  (* Rewriting a resident register neither evicts nor reorders. *)
  check (Alcotest.option Alcotest.int) "no eviction" None (Machine.Tagged_cache.insert c 1);
  check (Alcotest.option Alcotest.int) "1 still oldest" (Some 1) (Machine.Tagged_cache.insert c 3)

let test_remove () =
  let c = Machine.Tagged_cache.create ~entries:2 in
  ignore (Machine.Tagged_cache.insert c 1);
  Machine.Tagged_cache.remove c 1;
  check Alcotest.bool "removed" false (Machine.Tagged_cache.contains c 1);
  Machine.Tagged_cache.remove c 99 (* removing an absent entry is a no-op *)

let test_flush () =
  let c = Machine.Tagged_cache.create ~entries:3 in
  ignore (Machine.Tagged_cache.insert c 5);
  ignore (Machine.Tagged_cache.insert c 7);
  check Alcotest.(list int) "flush returns fifo order" [ 5; 7 ] (Machine.Tagged_cache.flush c);
  check Alcotest.int "empty after flush" 0 (Machine.Tagged_cache.occupancy c);
  check Alcotest.(list int) "second flush empty" [] (Machine.Tagged_cache.flush c)

let test_single_entry_lrf () =
  (* A 1-entry instance behaves as a last-result file. *)
  let c = Machine.Tagged_cache.create ~entries:1 in
  check (Alcotest.option Alcotest.int) "first" None (Machine.Tagged_cache.insert c 1);
  check (Alcotest.option Alcotest.int) "replaces" (Some 1) (Machine.Tagged_cache.insert c 2);
  check Alcotest.bool "only last" true
    (Machine.Tagged_cache.contains c 2 && not (Machine.Tagged_cache.contains c 1))

let suite =
  [
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "insert/lookup" `Quick test_insert_and_lookup;
    Alcotest.test_case "fifo eviction" `Quick test_fifo_eviction;
    Alcotest.test_case "overwrite in place" `Quick test_overwrite_in_place;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "single entry = LRF" `Quick test_single_entry_lrf;
  ]
