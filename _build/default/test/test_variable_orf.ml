(* Variable-ORF runtime tests (Sec. 7's dynamic scheme, realistic
   scheduler). *)

let check = Alcotest.check

let setup name =
  let e = Option.get (Workloads.Registry.find name) in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let config =
    Alloc.Config.make ~orf_entries:8 ~lrf:Alloc.Config.Split ~orf_cost_entries:3
      ~mirror_mrf:true ()
  in
  let placement = Alloc.Allocator.place config ctx in
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> ()
   | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  (ctx, config, placement)

let energy c = (Energy.Counts.energy Energy.Params.default ~orf_entries:3 c).Energy.Counts.total

let test_requires_mirror () =
  let e = Option.get (Workloads.Registry.find "MatrixMul") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let config = Alloc.Config.make () in
  let placement = Alloc.Allocator.place config ctx in
  Alcotest.check_raises "mirror required"
    (Invalid_argument "Variable_orf.run: the placement must be compiled with mirror_mrf")
    (fun () -> ignore (Sim.Variable_orf.run ~pool_entries:24 ~config ~placement ctx))

let test_mirror_keeps_mrf_copies () =
  (* Under mirror_mrf every ORF destination also writes the MRF. *)
  let ctx, _, placement = setup "MatrixMul" in
  Ir.Kernel.iter_instrs ctx.Alloc.Context.kernel (fun _ i ->
      match Alloc.Placement.dest placement ~instr:i.Ir.Instr.id with
      | Some { Alloc.Placement.to_orf = Some _; to_mrf; _ } ->
        check Alcotest.bool "ORF value mirrored" true to_mrf
      | _ -> ())

let test_requests_bounded () =
  let ctx, _, placement = setup "Mandelbrot" in
  let requests = Sim.Variable_orf.strand_requests ctx placement in
  Array.iter (fun r -> check Alcotest.bool "0..8" true (r >= 0 && r <= 8)) requests;
  check Alcotest.bool "some strand wants entries" true (Array.exists (fun r -> r > 0) requests)

let test_zero_pool_all_mrf () =
  let ctx, config, placement = setup "MatrixMul" in
  let r = Sim.Variable_orf.run ~warps:4 ~pool_entries:0 ~config ~placement ctx in
  check Alcotest.int "no ORF reads" 0 (Energy.Counts.reads r.Sim.Variable_orf.counts Energy.Model.Orf);
  check Alcotest.int "no ORF writes" 0
    (Energy.Counts.writes r.Sim.Variable_orf.counts Energy.Model.Orf);
  check Alcotest.bool "denials counted" true (r.Sim.Variable_orf.entries_denied > 0)

let test_large_pool_no_denials () =
  let ctx, config, placement = setup "MatrixMul" in
  let r = Sim.Variable_orf.run ~warps:4 ~active:4 ~pool_entries:(4 * 8) ~config ~placement ctx in
  check Alcotest.int "no denials" 0 r.Sim.Variable_orf.entries_denied;
  check Alcotest.int "no partial grants" 0 r.Sim.Variable_orf.partial_grants;
  check Alcotest.bool "ORF used" true
    (Energy.Counts.reads r.Sim.Variable_orf.counts Energy.Model.Orf > 0)

let test_monotone_in_pool () =
  let ctx, config, placement = setup "Mandelbrot" in
  let e pool =
    energy (Sim.Variable_orf.run ~warps:4 ~pool_entries:pool ~config ~placement ctx).Sim.Variable_orf.counts
  in
  check Alcotest.bool "more pool never hurts" true (e 32 <= e 8 +. 1e-6);
  check Alcotest.bool "some pool beats none" true (e 32 < e 0)

let test_deterministic () =
  let ctx, config, placement = setup "needle" in
  let run () =
    energy (Sim.Variable_orf.run ~warps:4 ~pool_entries:12 ~config ~placement ctx).Sim.Variable_orf.counts
  in
  check (Alcotest.float 1e-9) "deterministic" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "requires mirror" `Quick test_requires_mirror;
    Alcotest.test_case "mirror keeps MRF copies" `Quick test_mirror_keeps_mrf_copies;
    Alcotest.test_case "requests bounded" `Quick test_requests_bounded;
    Alcotest.test_case "zero pool = all MRF" `Quick test_zero_pool_all_mrf;
    Alcotest.test_case "large pool = no denials" `Quick test_large_pool_no_denials;
    Alcotest.test_case "monotone in pool" `Quick test_monotone_in_pool;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
