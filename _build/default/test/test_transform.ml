(* Tests for the code-motion passes: dependence graphs, rescheduling
   and loop unrolling. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

let block_of_kernel (k : Ir.Kernel.t) i = k.Ir.Kernel.blocks.(i)

let test_depgraph_edges () =
  (* 0: x = mov; 1: y = add x x; 2: x = mov (WAR on 1, WAW on 0);
     3: st x y (RAW on 2 and 1). *)
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op2 b Op.Iadd x x in
  B.op0_into b Op.Mov ~dst:x ();
  B.store b Op.St_global ~addr:x ~value:y;
  let k = B.finalize b in
  let g = Transform.Depgraph.build (block_of_kernel k 0) in
  check Alcotest.(list int) "RAW: add depends on def" [ 0 ] (Transform.Depgraph.preds g 1);
  check Alcotest.(list int) "WAR+WAW: redef after reader and def" [ 0; 1 ]
    (Transform.Depgraph.preds g 2);
  check Alcotest.(list int) "store reads both" [ 1; 2 ] (Transform.Depgraph.preds g 3)

let test_depgraph_memory_barrier () =
  (* Loads may pass loads but not stores. *)
  let b = B.create "t" in
  let a = B.fresh b in
  let l1 = B.op1 b Op.Ld_shared a in
  B.store b Op.St_shared ~addr:a ~value:l1;
  let l2 = B.op1 b Op.Ld_shared a in
  ignore l2;
  let k = B.finalize b in
  let g = Transform.Depgraph.build (block_of_kernel k 0) in
  (* The second load depends on the store (index 1). *)
  check Alcotest.bool "load ordered after store" true
    (List.mem 1 (Transform.Depgraph.preds g 2))

let test_depgraph_loads_reorder () =
  let b = B.create "t" in
  let a = B.fresh b in
  ignore (B.op1 b Op.Ld_shared a);
  ignore (B.op1 b Op.Ld_shared a);
  let k = B.finalize b in
  let g = Transform.Depgraph.build (block_of_kernel k 0) in
  check Alcotest.(list int) "no load-load edge" [] (Transform.Depgraph.preds g 1)

let test_reschedule_topological () =
  (* Every schedule respects the dependence graph (random kernels). *)
  for seed = 0 to 30 do
    let k = Workloads.Generator.kernel ~size:6 ~seed () in
    Array.iter
      (fun (blk : Ir.Block.t) ->
        let g = Transform.Depgraph.build blk in
        List.iter
          (fun hoist ->
            let order = Transform.Reschedule.block ~hoist_loads:hoist blk in
            if not (Transform.Depgraph.respects g ~order) then
              Alcotest.failf "seed %d block %d: schedule violates dependences" seed
                blk.Ir.Block.label)
          [ true; false ])
      k.Ir.Kernel.blocks
  done

let test_reschedule_bra_stays_last () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let head = B.here b in
  let v = B.op2 b Op.Iadd x x in
  ignore (B.op1 b Op.Ld_global v);
  let p = B.op1 b Op.Setp x in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop 2);
  let (_ : B.label) = B.here b in
  B.ret b;
  let k = B.finalize b in
  let k' = Transform.Reschedule.kernel k in
  Array.iter
    (fun (blk : Ir.Block.t) ->
      match blk.Ir.Block.term with
      | Ir.Terminator.Branch _ ->
        let n = Array.length blk.Ir.Block.instrs in
        check Alcotest.bool "bra last" true ((blk.Ir.Block.instrs.(n - 1)).Ir.Instr.op = Op.Bra)
      | _ -> ())
    k'.Ir.Kernel.blocks

let test_reschedule_hoists_loads () =
  (* ALU work before a load with no dependence: hoisting brings the
     load (and its address) to the front. *)
  let b = B.create "t" in
  let a = B.fresh b in
  let t1 = B.op2 b Op.Fadd a a in
  let t2 = B.op2 b Op.Fmul t1 t1 in
  let x = B.op1 b Op.Ld_global a in
  B.store b Op.St_global ~addr:t2 ~value:x;
  let k = B.finalize b in
  let order = Transform.Reschedule.block ~hoist_loads:true (block_of_kernel k 0) in
  check Alcotest.int "load scheduled first" 2 order.(0)

let test_reschedule_packs_chains () =
  (* Two independent chains interleaved: chain packing groups them. *)
  let b = B.create "t" in
  let a = B.fresh b in
  let a1 = B.op1 b Op.Mov a in
  let b1 = B.op1 b Op.Cvt a in
  let a2 = B.op1 b Op.Mov a1 in
  let b2 = B.op1 b Op.Cvt b1 in
  B.store b Op.St_global ~addr:a2 ~value:b2;
  let k = B.finalize b in
  let order = Transform.Reschedule.block ~hoist_loads:false (block_of_kernel k 0) in
  let pos = Array.make 5 0 in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  (* Each consumer directly follows its producer. *)
  check Alcotest.bool "a-chain adjacent" true (abs (pos.(2) - pos.(0)) = 1 || abs (pos.(2) - pos.(0)) = 2);
  check Alcotest.bool "b-chain adjacent" true (abs (pos.(3) - pos.(1)) <= 2)

let test_unroll_candidates () =
  let k = Workloads.Micro.loop_carried 8 in
  match Transform.Unroll.candidates k with
  | [ (_, 8) ] -> ()
  | other -> Alcotest.failf "expected one 8-trip candidate, got %d" (List.length other)

let test_unroll_preserves_work () =
  (* The unrolled loop performs the same productive work: identical
     dynamic store count and identical non-control work, with fewer
     exit tests. *)
  let k = Workloads.Micro.loop_carried 8 in
  let k4 = Transform.Unroll.kernel ~factor:4 k in
  let count pred kernel =
    let cf = Sim.Cf.create kernel ~warp:0 ~seed:1 in
    let n = ref 0 in
    let rec go () =
      match Sim.Cf.peek cf with
      | None -> ()
      | Some i ->
        if pred i then incr n;
        Sim.Cf.advance cf;
        go ()
    in
    go ();
    !n
  in
  let is_work (i : Ir.Instr.t) =
    match i.Ir.Instr.op with Op.Bra | Op.Setp -> false | _ -> true
  in
  check Alcotest.int "same productive instructions" (count is_work k) (count is_work k4);
  check Alcotest.bool "fewer exit tests" true
    (count (fun i -> i.Ir.Instr.op = Op.Bra) k4 < count (fun i -> i.Ir.Instr.op = Op.Bra) k)

let test_unroll_non_dividing_factor () =
  let k = Workloads.Micro.loop_carried 8 in
  let k3 = Transform.Unroll.kernel ~factor:3 k in
  (* 3 does not divide 8: structure unchanged. *)
  check Alcotest.int "same instrs" (Ir.Kernel.instr_count k) (Ir.Kernel.instr_count k3)

let test_unroll_invalid_factor () =
  Alcotest.check_raises "factor 0" (Invalid_argument "Unroll.kernel: factor < 1") (fun () ->
      ignore (Transform.Unroll.kernel ~factor:0 (Workloads.Micro.loop_carried 8)))

let test_transformed_kernels_still_verify () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let k = Lazy.force e.Workloads.Registry.kernel in
      List.iter
        (fun kernel ->
          let ctx = Alloc.Context.create kernel in
          let config = Alloc.Config.make () in
          let placement = Alloc.Allocator.place config ctx in
          match Alloc.Verify.check config ctx placement with
          | Ok () -> ()
          | Error errs ->
            Alcotest.failf "%s (%s): %s" e.Workloads.Registry.name kernel.Ir.Kernel.name
              (String.concat "; " errs))
        [ Transform.Reschedule.kernel k; Transform.Unroll.kernel ~factor:4 k;
          Transform.Reschedule.kernel (Transform.Unroll.kernel ~factor:4 k) ])
    (Workloads.Registry.all ())

let suite =
  [
    Alcotest.test_case "depgraph edges" `Quick test_depgraph_edges;
    Alcotest.test_case "depgraph memory barrier" `Quick test_depgraph_memory_barrier;
    Alcotest.test_case "depgraph loads reorder" `Quick test_depgraph_loads_reorder;
    Alcotest.test_case "reschedule topological" `Quick test_reschedule_topological;
    Alcotest.test_case "reschedule bra last" `Quick test_reschedule_bra_stays_last;
    Alcotest.test_case "reschedule hoists loads" `Quick test_reschedule_hoists_loads;
    Alcotest.test_case "reschedule packs chains" `Quick test_reschedule_packs_chains;
    Alcotest.test_case "unroll candidates" `Quick test_unroll_candidates;
    Alcotest.test_case "unroll preserves work" `Quick test_unroll_preserves_work;
    Alcotest.test_case "unroll non-dividing" `Quick test_unroll_non_dividing_factor;
    Alcotest.test_case "unroll invalid factor" `Quick test_unroll_invalid_factor;
    Alcotest.test_case "transformed kernels verify" `Quick test_transformed_kernels_still_verify;
  ]
