(* SIMT divergence executor and post-dominance tests. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

let diamond () =
  let b = B.create "diamond" in
  let p = B.op0 b Op.Mov () in
  let else_l = B.new_label b in
  let join = B.new_label b in
  B.branch b ~pred:p ~target:else_l (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  ignore (B.op1 b Op.Mov p);
  B.jump b join;
  B.start_block b else_l;
  ignore (B.op1 b Op.Mov p);
  B.start_block b join;
  ignore (B.op1 b Op.Mov p);
  B.finalize b

let test_postdom_diamond () =
  let k = diamond () in
  let cfg = Analysis.Cfg.of_kernel k in
  let pd = Analysis.Postdom.compute k cfg in
  (* The join (block 3) post-dominates everything. *)
  check (Alcotest.option Alcotest.int) "ipdom of branch block" (Some 3)
    (Analysis.Postdom.ipdom pd 0);
  check (Alcotest.option Alcotest.int) "ipdom of then" (Some 3) (Analysis.Postdom.ipdom pd 1);
  check Alcotest.bool "join postdominates entry" true (Analysis.Postdom.postdominates pd 3 0);
  check Alcotest.bool "then does not postdominate entry" false
    (Analysis.Postdom.postdominates pd 1 0);
  check Alcotest.bool "reflexive" true (Analysis.Postdom.postdominates pd 2 2);
  (* The exit block post-dominates directly into the virtual exit. *)
  check (Alcotest.option Alcotest.int) "exit has no ipdom block" None
    (Analysis.Postdom.ipdom pd 3)

let count_instrs k ~warp ~seed =
  let n = ref 0 and threads = ref 0 in
  let stats =
    Sim.Simt.run_warp k ~warp ~seed ~on_instr:(fun _ ~active ~clusters:_ ->
        incr n;
        threads := !threads + active)
  in
  check Alcotest.int "callback count matches" !n stats.Sim.Simt.warp_instructions;
  check Alcotest.int "thread count matches" !threads stats.Sim.Simt.thread_instructions;
  stats

let test_simt_uniform_kernel () =
  (* A straight-line kernel never diverges: efficiency 1. *)
  let b = B.create "s" in
  let x = B.op0 b Op.Mov () in
  ignore (B.op1 b Op.Mov x);
  let k = B.finalize b in
  let stats = count_instrs k ~warp:0 ~seed:1 in
  check (Alcotest.float 1e-9) "full efficiency" 1.0 stats.Sim.Simt.simd_efficiency;
  check Alcotest.int "no divergence" 0 stats.Sim.Simt.divergent_branches;
  check Alcotest.int "2 instructions" 2 stats.Sim.Simt.warp_instructions

let test_simt_divergent_diamond () =
  let k = diamond () in
  let stats = count_instrs k ~warp:0 ~seed:42 in
  (* With p = 0.5 over 32 threads the branch almost surely splits. *)
  check Alcotest.int "one divergent branch" 1 stats.Sim.Simt.divergent_branches;
  (* Both sides execute under partial masks: efficiency drops below 1
     but stays above 1/2 + overhead bound. *)
  check Alcotest.bool "efficiency in (0.5, 1)" true
    (stats.Sim.Simt.simd_efficiency > 0.5 && stats.Sim.Simt.simd_efficiency < 1.0);
  (* Dynamic warp instructions: mov p + bra + then mov + else mov +
     join mov = 5 (both sides execute). *)
  check Alcotest.int "5 warp instructions" 5 stats.Sim.Simt.warp_instructions;
  check Alcotest.bool "stack depth grew" true (stats.Sim.Simt.max_stack_depth >= 3)

let test_simt_reconvergence () =
  (* After the hammock, the join executes with the full mask again:
     total thread-instructions = bra(32) + then(t) + else(32-t) + join(32). *)
  let k = diamond () in
  let joins = ref [] in
  ignore
    (Sim.Simt.run_warp k ~warp:0 ~seed:42 ~on_instr:(fun i ~active ~clusters:_ ->
         if Ir.Kernel.block_of k i.Ir.Instr.id = 3 then joins := active :: !joins));
  check Alcotest.(list int) "join at full mask" [ 32 ] !joins

let test_simt_loop_uniform () =
  let b = B.create "loop" in
  let x = B.op0 b Op.Mov () in
  let head = B.here b in
  B.op2_into b Op.Iadd ~dst:x x x;
  let p = B.op1 b Op.Setp x in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop 5);
  let (_ : B.label) = B.here b in
  B.store b Op.St_global ~addr:x ~value:x;
  let k = B.finalize b in
  let stats = count_instrs k ~warp:0 ~seed:1 in
  check Alcotest.int "no divergence on counted loops" 0 stats.Sim.Simt.divergent_branches;
  (* Same dynamic count as the warp-uniform walker. *)
  let cf = Sim.Cf.create k ~warp:0 ~seed:1 in
  let rec drain n = match Sim.Cf.peek cf with None -> n | Some _ -> Sim.Cf.advance cf; drain (n + 1) in
  check Alcotest.int "matches Cf stream length" (drain 0) stats.Sim.Simt.warp_instructions

let test_simt_clusters () =
  (* clusters_of is exposed indirectly: a fully active warp reports 8
     clusters per operand in the traffic weighting. *)
  let b = B.create "s" in
  let x = B.op0 b Op.Mov () in
  ignore (B.op1 b Op.Mov x);
  let k = B.finalize b in
  let max_clusters = ref 0 in
  ignore
    (Sim.Simt.run_warp k ~warp:0 ~seed:1 ~on_instr:(fun _ ~active:_ ~clusters ->
         max_clusters := max !max_clusters clusters));
  check Alcotest.int "8 clusters when uniform" 8 !max_clusters

let test_simt_traffic_savings_hold () =
  (* Divergence-aware accounting preserves the SW advantage. *)
  let e = Option.get (Workloads.Registry.find "Mandelbrot") in
  let ctx = Alloc.Context.create (Lazy.force e.Workloads.Registry.kernel) in
  let config = Alloc.Config.make () in
  let placement = Alloc.Allocator.place config ctx in
  let base = Sim.Simt.traffic ~warps:4 ctx ~scheme:`Baseline in
  let sw = Sim.Simt.traffic ~warps:4 ctx ~scheme:(`Sw (config, placement)) in
  let energy c = (Energy.Counts.energy Energy.Params.default ~orf_entries:3 c).Energy.Counts.total in
  check Alcotest.bool "diverged somewhere" true (base.Sim.Simt.stats.Sim.Simt.divergent_branches > 0);
  check Alcotest.bool "SW still saves energy" true
    (energy sw.Sim.Simt.counts < energy base.Sim.Simt.counts);
  check Alcotest.bool "efficiency below 1 under divergence" true
    (base.Sim.Simt.stats.Sim.Simt.simd_efficiency < 1.0)

let test_simt_deterministic () =
  let k = diamond () in
  let s1 = count_instrs k ~warp:3 ~seed:11 in
  let s2 = count_instrs k ~warp:3 ~seed:11 in
  check Alcotest.int "same stream" s1.Sim.Simt.thread_instructions s2.Sim.Simt.thread_instructions

let suite =
  [
    Alcotest.test_case "postdom diamond" `Quick test_postdom_diamond;
    Alcotest.test_case "uniform kernel" `Quick test_simt_uniform_kernel;
    Alcotest.test_case "divergent diamond" `Quick test_simt_divergent_diamond;
    Alcotest.test_case "reconvergence at ipdom" `Quick test_simt_reconvergence;
    Alcotest.test_case "counted loop uniform" `Quick test_simt_loop_uniform;
    Alcotest.test_case "cluster weighting" `Quick test_simt_clusters;
    Alcotest.test_case "divergent traffic savings" `Quick test_simt_traffic_savings_hold;
    Alcotest.test_case "deterministic" `Quick test_simt_deterministic;
  ]
