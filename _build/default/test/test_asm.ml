(* Assembly front-end tests: parsing, error reporting, and printer
   round-trips. *)

let check = Alcotest.check

let saxpy_src =
  {|
.kernel saxpy
// kernel parameters: %a %base (never written)
entry:
  mov        %i
loop:
  shl.b32    %off, %i
  add.s32    %addr, %base, %off
  ld.global  %x, %addr
  fma.f32    %acc, %a, %x, %acc   # accumulate
  st.global  %addr, %acc
  setp       %p, %i
  br %p, loop, loop=8
exit:
  ret
|}

let test_parse_saxpy () =
  match Ir.Asm.parse ~name:"t" saxpy_src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok k ->
    check Alcotest.string "name from directive" "saxpy" k.Ir.Kernel.name;
    check Alcotest.int "3 blocks" 3 (Ir.Kernel.block_count k);
    check Alcotest.int "8 instructions" 8 (Ir.Kernel.instr_count k);
    (* The loop branch resolves backwards to block 1. *)
    (match k.Ir.Kernel.blocks.(1).Ir.Block.term with
     | Ir.Terminator.Branch { target = 1; behavior = Ir.Terminator.Loop 8 } -> ()
     | _ -> Alcotest.fail "loop terminator mismatch")

let test_parse_pipeline () =
  (* The parsed kernel flows through the whole pipeline. *)
  let k = Ir.Asm.parse_exn ~name:"t" saxpy_src in
  let ctx = Alloc.Context.create k in
  let config = Alloc.Config.make () in
  let placement = Alloc.Allocator.place config ctx in
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> ()
   | Error e -> Alcotest.failf "verify: %s" (String.concat "; " e));
  let r = Sim.Traffic.run ~warps:2 ctx (Sim.Traffic.Sw { config; placement }) in
  check Alcotest.bool "executes" true (r.Sim.Traffic.dynamic_instrs > 0)

let test_parse_wide () =
  let k =
    Ir.Asm.parse_exn ~name:"t"
      {|
  ld.global.wide64 %v, %addr
  st.global %addr, %v
|}
  in
  check Alcotest.bool "wide width" true
    ((Ir.Kernel.instr k 0).Ir.Instr.width = Ir.Width.W64)

let test_parse_errors () =
  let is_error src =
    match Ir.Asm.parse ~name:"t" src with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "unknown mnemonic" true (is_error "frobnicate %a, %b");
  check Alcotest.bool "missing dst" true (is_error "add.s32");
  check Alcotest.bool "bad operand" true (is_error "add.s32 r1, r2, r3");
  check Alcotest.bool "bad store arity" true (is_error "st.global %a");
  check Alcotest.bool "code after ret" true (is_error "ret\nmov %x");
  check Alcotest.bool "unplaced label" true (is_error "mov %p\nbr %p, nowhere, always\nend:\nret");
  check Alcotest.bool "bad branch attr" true (is_error "mov %p\nbr %p, end, sometimes\nend:\nret");
  check Alcotest.bool "forward loop branch" true
    (is_error "mov %p\nbr %p, end, loop=4\nend:\nret")

let test_parse_line_numbers () =
  match Ir.Asm.parse ~name:"t" "mov %x\nmov %y\nbogus %z" with
  | Ok _ -> Alcotest.fail "accepted bogus"
  | Error msg ->
    check Alcotest.bool "line 3 reported" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")

let test_roundtrip_idempotent () =
  (* Parsing renumbers registers by first appearance, so one
     parse/print pass normalizes; after that the representation is a
     fixpoint, and structure is always preserved. *)
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let k = Lazy.force e.Workloads.Registry.kernel in
      let src = Ir.Asm.to_source k in
      match Ir.Asm.parse ~name:k.Ir.Kernel.name src with
      | Error msg -> Alcotest.failf "%s: reparse failed: %s" e.Workloads.Registry.name msg
      | Ok k2 ->
        check Alcotest.int
          (e.Workloads.Registry.name ^ " instr count")
          (Ir.Kernel.instr_count k) (Ir.Kernel.instr_count k2);
        check Alcotest.int
          (e.Workloads.Registry.name ^ " block count")
          (Ir.Kernel.block_count k) (Ir.Kernel.block_count k2);
        let normalized = Ir.Asm.to_source k2 in
        let k3 = Ir.Asm.parse_exn ~name:k.Ir.Kernel.name normalized in
        check Alcotest.string
          (e.Workloads.Registry.name ^ " fixpoint")
          normalized (Ir.Asm.to_source k3))
    (Workloads.Registry.all ())

let prop_roundtrip_random =
  QCheck.Test.make ~count:80 ~name:"asm round-trip on random kernels"
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 50_000))
    (fun seed ->
      let k = Workloads.Generator.kernel ~size:8 ~seed () in
      let src = Ir.Asm.to_source k in
      match Ir.Asm.parse ~name:k.Ir.Kernel.name src with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg
      | Ok k2 ->
        let normalized = Ir.Asm.to_source k2 in
        let k3 = Ir.Asm.parse_exn ~name:k.Ir.Kernel.name normalized in
        Ir.Kernel.instr_count k = Ir.Kernel.instr_count k2
        && Ir.Kernel.block_count k = Ir.Kernel.block_count k2
        && Ir.Asm.to_source k3 = normalized)

let suite =
  [
    Alcotest.test_case "parse saxpy" `Quick test_parse_saxpy;
    Alcotest.test_case "parsed kernel compiles" `Quick test_parse_pipeline;
    Alcotest.test_case "wide loads" `Quick test_parse_wide;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "line numbers" `Quick test_parse_line_numbers;
    Alcotest.test_case "round-trip benchmarks" `Quick test_roundtrip_idempotent;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
