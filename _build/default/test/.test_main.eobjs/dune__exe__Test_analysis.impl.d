test/test_analysis.ml: Alcotest Alloc Analysis Array Fun Ir List Option
