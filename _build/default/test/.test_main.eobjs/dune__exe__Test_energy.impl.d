test/test_energy.ml: Alcotest Energy List
