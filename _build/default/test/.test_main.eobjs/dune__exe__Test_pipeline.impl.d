test/test_pipeline.ml: Alcotest Alloc Energy Ir Sim Strand String
