test/test_workloads.ml: Alcotest Alloc Ir Lazy List Option Sim String Util Workloads
