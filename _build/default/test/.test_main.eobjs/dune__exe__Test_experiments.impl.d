test/test_experiments.ml: Alcotest Experiments Lazy List Sim String Util
