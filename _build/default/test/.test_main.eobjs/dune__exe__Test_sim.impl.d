test/test_sim.ml: Alcotest Alloc Array Energy Ir Lazy List Option Sim Util Workloads
