test/test_properties.ml: Alloc Analysis Energy Ir List QCheck QCheck_alcotest Sim Strand String Transform Util Workloads
