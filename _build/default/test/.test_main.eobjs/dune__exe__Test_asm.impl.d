test/test_asm.ml: Alcotest Alloc Array Ir Lazy List QCheck QCheck_alcotest Sim String Workloads
