test/test_extra.ml: Alcotest Alloc Array Energy Experiments Ir List Rfh Sim
