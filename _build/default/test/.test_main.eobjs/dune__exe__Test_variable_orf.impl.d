test/test_variable_orf.ml: Alcotest Alloc Array Energy Ir Lazy Option Sim String Workloads
