test/test_alloc.ml: Alcotest Alloc Energy Ir List Option String
