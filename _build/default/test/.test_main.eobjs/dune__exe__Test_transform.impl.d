test/test_transform.ml: Alcotest Alloc Array Ir Lazy List Sim String Transform Workloads
