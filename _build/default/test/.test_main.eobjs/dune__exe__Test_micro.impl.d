test/test_micro.ml: Alcotest Alloc Energy Ir List Sim Strand String Workloads
