test/test_trace.ml: Alcotest Array Ir List Printf Rfh Sim Workloads
