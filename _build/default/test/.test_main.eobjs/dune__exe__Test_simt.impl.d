test/test_simt.ml: Alcotest Alloc Analysis Energy Ir Lazy Option Sim Workloads
