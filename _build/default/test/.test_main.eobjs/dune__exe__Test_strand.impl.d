test/test_strand.ml: Alcotest Alloc Analysis Array Ir Lazy List Option Strand Workloads
