(* Cross-cutting tests filling remaining coverage gaps: HW ablation
   flags, SIMT warp sizing, assembly entry loops, the Rfh façade and
   sweep cache behaviour. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

(* A loop whose body loads and immediately consumes: deschedules every
   iteration under the HW policy. *)
let desched_kernel () =
  let b = B.create "t" in
  let a = B.fresh b in
  let head = B.here b in
  let x = B.op1 b Op.Ld_global a in
  let y = B.op2 b Op.Fadd x a in
  B.store b Op.St_shared ~addr:a ~value:y;
  let p = B.op1 b Op.Setp y in
  B.branch b ~pred:p ~target:head (Ir.Terminator.Loop 6);
  let (_ : B.label) = B.here b in
  B.ret b;
  B.finalize b

let hw_counts ?(opts = Sim.Traffic.hw_defaults ~rfc_entries:3) k =
  let ctx = Alloc.Context.create k in
  Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Hw opts)

let test_hw_never_flush () =
  let k = desched_kernel () in
  let normal = hw_counts k in
  let never =
    hw_counts ~opts:{ (Sim.Traffic.hw_defaults ~rfc_entries:3) with Sim.Traffic.never_flush = true } k
  in
  (* Both deschedule, but never_flush skips the writeback traffic. *)
  check Alcotest.bool "both deschedule" true
    (normal.Sim.Traffic.desched_events > 0
     && normal.Sim.Traffic.desched_events = never.Sim.Traffic.desched_events);
  check Alcotest.bool "never_flush writes less MRF" true
    (Energy.Counts.writes never.Sim.Traffic.counts Energy.Model.Mrf
     <= Energy.Counts.writes normal.Sim.Traffic.counts Energy.Model.Mrf);
  check Alcotest.bool "never_flush reads RFC no less" true
    (Energy.Counts.reads never.Sim.Traffic.counts Energy.Model.Rfc
     >= Energy.Counts.reads normal.Sim.Traffic.counts Energy.Model.Rfc)

let test_hw_flush_on_backward () =
  let k = desched_kernel () in
  let normal = hw_counts k in
  let flushing =
    hw_counts
      ~opts:
        { (Sim.Traffic.hw_defaults ~rfc_entries:3) with
          Sim.Traffic.flush_on_backward_branch = true }
      k
  in
  check Alcotest.bool "backward flushes add MRF writes" true
    (Energy.Counts.writes flushing.Sim.Traffic.counts Energy.Model.Mrf
     >= Energy.Counts.writes normal.Sim.Traffic.counts Energy.Model.Mrf)

let test_simt_narrow_warp () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  ignore (B.op1 b Op.Mov x);
  let k = B.finalize b in
  let clusters = ref 0 in
  let stats =
    Sim.Simt.run_warp ~threads_per_warp:4 k ~warp:0 ~seed:1
      ~on_instr:(fun _ ~active ~clusters:c ->
        clusters := max !clusters c;
        check Alcotest.int "4 active threads" 4 active)
  in
  check Alcotest.int "one cluster for 4 threads" 1 !clusters;
  check (Alcotest.float 1e-9) "efficiency 1" 1.0 stats.Sim.Simt.simd_efficiency

let test_asm_entry_loop () =
  (* A backward branch to the entry label round-trips. *)
  let src =
    {|
top:
  add.s32 %x, %x, %x
  setp %p, %x
  br %p, top, loop=3
exit:
  ret
|}
  in
  let k = Ir.Asm.parse_exn ~name:"t" src in
  check Alcotest.int "two blocks" 2 (Ir.Kernel.block_count k);
  (match k.Ir.Kernel.blocks.(0).Ir.Block.term with
   | Ir.Terminator.Branch { target = 0; behavior = Ir.Terminator.Loop 3 } -> ()
   | _ -> Alcotest.fail "self-loop expected");
  (* And it executes the expected number of dynamic instructions. *)
  let cf = Sim.Cf.create k ~warp:0 ~seed:1 in
  let rec drain n = match Sim.Cf.peek cf with None -> n | Some _ -> Sim.Cf.advance cf; drain (n + 1) in
  check Alcotest.int "3 trips x 3 instrs" 9 (drain 0)

let test_facade () =
  let compiled = Rfh.compile (Rfh.benchmark "hotspot") in
  let m = Rfh.measure ~warps:4 compiled in
  check Alcotest.bool "saves energy" true (m.Rfh.savings_percent > 0.0);
  check Alcotest.bool "normalized < 1" true (m.Rfh.normalized_energy < 1.0);
  check (Alcotest.float 1e-6) "ratio consistency" m.Rfh.normalized_energy
    (m.Rfh.total_energy_pj /. m.Rfh.baseline_energy_pj);
  (try
     ignore (Rfh.benchmark "no-such-benchmark");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_sweep_cache_stability () =
  let opts =
    Experiments.Options.with_benchmarks
      { (Experiments.Options.default ()) with Experiments.Options.warps = 2 }
      [ "VectorAdd" ]
  in
  let e = List.hd opts.Experiments.Options.benchmarks in
  let before = Experiments.Sweep.energy_ratio opts e Experiments.Sweep.Sw_two ~entries:3 in
  Experiments.Sweep.clear_caches ();
  let after = Experiments.Sweep.energy_ratio opts e Experiments.Sweep.Sw_two ~entries:3 in
  check (Alcotest.float 1e-12) "cold = warm" before after

let test_mirror_config_disables_dead_elision () =
  (* Under mirror_mrf even ORF-allocated values write the MRF, so total
     MRF writes never drop below the baseline's. *)
  let k = Rfh.benchmark "MatrixMul" in
  let ctx = Alloc.Context.create k in
  let config = Alloc.Config.make ~mirror_mrf:true () in
  let placement = Alloc.Allocator.place config ctx in
  let sw = Sim.Traffic.run ~warps:1 ctx (Sim.Traffic.Sw { config; placement }) in
  let base = Sim.Traffic.run ~warps:1 ctx Sim.Traffic.Baseline in
  (* LRF-resident values are exempt from mirroring (dedicated banks),
     so MRF writes may only drop by the LRF-absorbed share. *)
  let mrf_sw = Energy.Counts.writes sw.Sim.Traffic.counts Energy.Model.Mrf in
  let mrf_base = Energy.Counts.writes base.Sim.Traffic.counts Energy.Model.Mrf in
  let lrf_sw = Energy.Counts.writes sw.Sim.Traffic.counts Energy.Model.Lrf in
  check Alcotest.bool "MRF writes cover ORF-resident values" true
    (mrf_sw >= mrf_base - lrf_sw)

let suite =
  [
    Alcotest.test_case "hw never_flush" `Quick test_hw_never_flush;
    Alcotest.test_case "hw flush on backward" `Quick test_hw_flush_on_backward;
    Alcotest.test_case "simt narrow warp" `Quick test_simt_narrow_warp;
    Alcotest.test_case "asm entry loop" `Quick test_asm_entry_loop;
    Alcotest.test_case "facade compile/measure" `Quick test_facade;
    Alcotest.test_case "sweep cache stability" `Quick test_sweep_cache_stability;
    Alcotest.test_case "mirror covers ORF writes" `Quick test_mirror_config_disables_dead_elision;
  ]
