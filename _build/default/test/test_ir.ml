(* Unit tests for the IR: widths, opcodes, instructions, terminators,
   kernel validation and the builder. *)

let check = Alcotest.check

module B = Ir.Builder
module Op = Ir.Op

(* --- Width / Op --------------------------------------------------- *)

let test_width () =
  check Alcotest.int "w32" 1 (Ir.Width.words Ir.Width.W32);
  check Alcotest.int "w64" 2 (Ir.Width.words Ir.Width.W64);
  check Alcotest.int "w128" 4 (Ir.Width.words Ir.Width.W128);
  check Alcotest.string "name" "b64" (Ir.Width.to_string Ir.Width.W64)

let test_op_unit_class () =
  check Alcotest.bool "add is alu" true (Op.unit_class Op.Fadd = Op.Alu);
  check Alcotest.bool "sqrt is sfu" true (Op.unit_class Op.Sqrt = Op.Sfu);
  check Alcotest.bool "ld is mem" true (Op.unit_class Op.Ld_global = Op.Mem);
  check Alcotest.bool "tex is tex" true (Op.unit_class Op.Tex_fetch = Op.Tex);
  check Alcotest.bool "bra is alu" true (Op.unit_class Op.Bra = Op.Alu)

let test_op_long_latency () =
  check Alcotest.bool "global load" true (Op.is_long_latency Op.Ld_global);
  check Alcotest.bool "atomic" true (Op.is_long_latency Op.Atom_global);
  check Alcotest.bool "texture" true (Op.is_long_latency Op.Tex_fetch);
  check Alcotest.bool "shared load short" false (Op.is_long_latency Op.Ld_shared);
  check Alcotest.bool "global store short" false (Op.is_long_latency Op.St_global);
  check Alcotest.bool "sfu short" false (Op.is_long_latency Op.Rcp)

let test_op_latencies () =
  (* Table 2 *)
  check Alcotest.int "alu" 8 (Op.latency Op.Imad);
  check Alcotest.int "sfu" 20 (Op.latency Op.Sin);
  check Alcotest.int "shared" 20 (Op.latency Op.St_shared);
  check Alcotest.int "dram" 400 (Op.latency Op.Ld_global);
  check Alcotest.int "tex" 400 (Op.latency Op.Tex_fetch)

let test_op_issue_cycles () =
  check Alcotest.int "alu full throughput" 1 (Op.issue_cycles Op.Fadd);
  check Alcotest.int "shared datapath reduced" 4 (Op.issue_cycles Op.Cos);
  check Alcotest.int "mem reduced" 4 (Op.issue_cycles Op.Ld_global)

let test_op_has_result () =
  check Alcotest.bool "store" false (Op.has_result Op.St_global);
  check Alcotest.bool "bra" false (Op.has_result Op.Bra);
  check Alcotest.bool "load" true (Op.has_result Op.Ld_global);
  check Alcotest.bool "atom returns old value" true (Op.has_result Op.Atom_global)

let test_op_shared_datapath () =
  check Alcotest.bool "alu private" false (Op.is_shared_datapath Op.Iadd);
  check Alcotest.bool "sfu shared" true (Op.is_shared_datapath Op.Ex2);
  check Alcotest.bool "mem shared" true (Op.is_shared_datapath Op.St_shared)

(* --- Instr -------------------------------------------------------- *)

let test_instr_make_valid () =
  let i = Ir.Instr.make ~id:0 ~op:Op.Ffma ~dst:(Some 3) ~srcs:[ 0; 1; 2 ] ~width:Ir.Width.W32 in
  check Alcotest.(list int) "reads" [ 0; 1; 2 ] (Ir.Instr.reads i);
  check (Alcotest.option Alcotest.int) "defines" (Some 3) (Ir.Instr.defines i)

let test_instr_make_invalid () =
  let mk op dst srcs () =
    ignore (Ir.Instr.make ~id:0 ~op ~dst ~srcs ~width:Ir.Width.W32)
  in
  Alcotest.check_raises "4 srcs"
    (Invalid_argument "Instr.make: more than 3 source operands")
    (mk Op.Ffma (Some 9) [ 0; 1; 2; 3 ]);
  Alcotest.check_raises "store with dst"
    (Invalid_argument "Instr.make: st.global carries a destination")
    (mk Op.St_global (Some 9) [ 0; 1 ]);
  Alcotest.check_raises "add without dst"
    (Invalid_argument "Instr.make: add.s32 lacks a destination")
    (mk Op.Iadd None [ 0; 1 ])

let test_slot_names () =
  check Alcotest.string "A" "A" (Ir.Instr.slot_name 0);
  check Alcotest.string "C" "C" (Ir.Instr.slot_name 2);
  Alcotest.check_raises "bad slot" (Invalid_argument "Instr.slot_name: 3") (fun () ->
      ignore (Ir.Instr.slot_name 3))

(* --- Terminator --------------------------------------------------- *)

let test_terminator_successors () =
  let succs t at = Ir.Terminator.successors t ~at ~num_blocks:5 in
  check Alcotest.(list int) "fallthrough" [ 3 ] (succs Ir.Terminator.Fallthrough 2);
  check Alcotest.(list int) "jump" [ 0 ] (succs (Ir.Terminator.Jump 0) 2);
  check Alcotest.(list int) "branch" [ 4; 3 ]
    (succs (Ir.Terminator.Branch { target = 4; behavior = Ir.Terminator.Always_taken }) 2);
  check Alcotest.(list int) "ret" [] (succs Ir.Terminator.Ret 2)

let test_terminator_backward () =
  let backward t at = Ir.Terminator.is_backward t ~at in
  check Alcotest.bool "self loop" true (backward (Ir.Terminator.Jump 2) 2);
  check Alcotest.bool "backward branch" true
    (backward (Ir.Terminator.Branch { target = 1; behavior = Ir.Terminator.Loop 4 }) 3);
  check Alcotest.bool "forward branch" false
    (backward (Ir.Terminator.Branch { target = 4; behavior = Ir.Terminator.Never_taken }) 3);
  check Alcotest.bool "fallthrough" false (backward Ir.Terminator.Fallthrough 3)

(* --- Builder / Kernel --------------------------------------------- *)

let test_builder_simple () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  let y = B.op1 b Op.Mov x in
  let z = B.op2 b Op.Iadd x y in
  B.store b Op.St_global ~addr:x ~value:z;
  let k = B.finalize b in
  check Alcotest.int "instrs" 4 (Ir.Kernel.instr_count k);
  check Alcotest.int "blocks" 1 (Ir.Kernel.block_count k);
  check Alcotest.int "regs" 3 k.Ir.Kernel.num_regs;
  (* ids dense in layout order *)
  Ir.Kernel.iter_instrs k (fun _ i ->
      check Alcotest.int "id = position" i.Ir.Instr.id (Ir.Kernel.instr k i.Ir.Instr.id).Ir.Instr.id)

let test_builder_auto_ret () =
  let b = B.create "t" in
  ignore (B.op0 b Op.Mov ());
  let k = B.finalize b in
  match k.Ir.Kernel.blocks.(0).Ir.Block.term with
  | Ir.Terminator.Ret -> ()
  | _ -> Alcotest.fail "expected implicit Ret"

let test_builder_forward_label () =
  let b = B.create "t" in
  let p = B.op0 b Op.Mov () in
  let target = B.new_label b in
  B.branch b ~pred:p ~target (Ir.Terminator.Taken_with_prob 0.5);
  let (_ : B.label) = B.here b in
  ignore (B.op0 b Op.Mov ());
  B.start_block b target;
  B.ret b;
  let k = B.finalize b in
  check Alcotest.int "3 blocks" 3 (Ir.Kernel.block_count k);
  match k.Ir.Kernel.blocks.(0).Ir.Block.term with
  | Ir.Terminator.Branch { target = 2; _ } -> ()
  | _ -> Alcotest.fail "branch should resolve to block 2"

let test_builder_unplaced_label () =
  let b = B.create "t" in
  let p = B.op0 b Op.Mov () in
  let ghost = B.new_label b in
  B.branch b ~pred:p ~target:ghost (Ir.Terminator.Always_taken);
  let (_ : B.label) = B.here b in
  B.ret b;
  Alcotest.check_raises "unplaced" (Invalid_argument "Builder.finalize: label 1 never placed")
    (fun () -> ignore (B.finalize b))

let test_builder_emit_after_term () =
  let b = B.create "t" in
  B.ret b;
  Alcotest.check_raises "closed block"
    (Invalid_argument "Builder: emitting after a terminator; start a new block first")
    (fun () -> ignore (B.op0 b Op.Mov ()))

let test_builder_double_place () =
  let b = B.create "t" in
  let l = B.new_label b in
  B.start_block b l;
  Alcotest.check_raises "double placement"
    (Invalid_argument "Builder.start_block: label 1 already placed") (fun () ->
      B.start_block b l)

let test_builder_store_requires_store_op () =
  let b = B.create "t" in
  let x = B.op0 b Op.Mov () in
  Alcotest.check_raises "not a store" (Invalid_argument "Builder.store: not a store opcode")
    (fun () -> B.store b Op.Iadd ~addr:x ~value:x)

let test_kernel_validate_loop_forward () =
  (* A Loop behaviour on a forward branch must be rejected. *)
  let blocks =
    [|
      {
        Ir.Block.label = 0;
        instrs =
          [| Ir.Instr.make ~id:0 ~op:Op.Bra ~dst:None ~srcs:[] ~width:Ir.Width.W32 |];
        term = Ir.Terminator.Branch { target = 1; behavior = Ir.Terminator.Loop 2 };
      };
      { Ir.Block.label = 1; instrs = [||]; term = Ir.Terminator.Ret };
    |]
  in
  match Ir.Kernel.validate ~name:"bad" ~blocks ~num_regs:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forward Loop accepted"

let test_kernel_validate_target_range () =
  let blocks =
    [| { Ir.Block.label = 0; instrs = [||]; term = Ir.Terminator.Jump 7 } |]
  in
  match Ir.Kernel.validate ~name:"bad" ~blocks ~num_regs:0 with
  | Error msg -> check Alcotest.bool "mentions range" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "out-of-range target accepted"

let test_kernel_validate_last_fallthrough () =
  let blocks =
    [| { Ir.Block.label = 0; instrs = [||]; term = Ir.Terminator.Fallthrough } |]
  in
  match Ir.Kernel.validate ~name:"bad" ~blocks ~num_regs:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "trailing fallthrough accepted"

let test_kernel_validate_register_range () =
  let blocks =
    [|
      {
        Ir.Block.label = 0;
        instrs = [| Ir.Instr.make ~id:0 ~op:Op.Mov ~dst:(Some 5) ~srcs:[] ~width:Ir.Width.W32 |];
        term = Ir.Terminator.Ret;
      };
    |]
  in
  match Ir.Kernel.validate ~name:"bad" ~blocks ~num_regs:3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range register accepted"

let test_kernel_block_of () =
  let b = B.create "t" in
  ignore (B.op0 b Op.Mov ());
  let (_ : B.label) = B.here b in
  ignore (B.op0 b Op.Mov ());
  ignore (B.op0 b Op.Mov ());
  let k = B.finalize b in
  check Alcotest.int "instr 0 in block 0" 0 (Ir.Kernel.block_of k 0);
  check Alcotest.int "instr 2 in block 1" 1 (Ir.Kernel.block_of k 2)

let test_kernel_fold_and_pp () =
  let b = B.create "t" in
  ignore (B.op0 b Op.Mov ());
  ignore (B.op0 b Op.Mov ());
  let k = B.finalize b in
  let n = Ir.Kernel.fold_instrs k ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  check Alcotest.int "fold counts" 2 n;
  check Alcotest.bool "pp nonempty" true (String.length (Ir.Kernel.to_string k) > 10)

let suite =
  [
    Alcotest.test_case "width words" `Quick test_width;
    Alcotest.test_case "op unit class" `Quick test_op_unit_class;
    Alcotest.test_case "op long latency" `Quick test_op_long_latency;
    Alcotest.test_case "op latencies (Table 2)" `Quick test_op_latencies;
    Alcotest.test_case "op issue cycles" `Quick test_op_issue_cycles;
    Alcotest.test_case "op has result" `Quick test_op_has_result;
    Alcotest.test_case "op shared datapath" `Quick test_op_shared_datapath;
    Alcotest.test_case "instr make valid" `Quick test_instr_make_valid;
    Alcotest.test_case "instr make invalid" `Quick test_instr_make_invalid;
    Alcotest.test_case "slot names" `Quick test_slot_names;
    Alcotest.test_case "terminator successors" `Quick test_terminator_successors;
    Alcotest.test_case "terminator backward" `Quick test_terminator_backward;
    Alcotest.test_case "builder simple" `Quick test_builder_simple;
    Alcotest.test_case "builder auto ret" `Quick test_builder_auto_ret;
    Alcotest.test_case "builder forward label" `Quick test_builder_forward_label;
    Alcotest.test_case "builder unplaced label" `Quick test_builder_unplaced_label;
    Alcotest.test_case "builder emit after term" `Quick test_builder_emit_after_term;
    Alcotest.test_case "builder double place" `Quick test_builder_double_place;
    Alcotest.test_case "builder store op check" `Quick test_builder_store_requires_store_op;
    Alcotest.test_case "validate: forward Loop" `Quick test_kernel_validate_loop_forward;
    Alcotest.test_case "validate: target range" `Quick test_kernel_validate_target_range;
    Alcotest.test_case "validate: last fallthrough" `Quick test_kernel_validate_last_fallthrough;
    Alcotest.test_case "validate: register range" `Quick test_kernel_validate_register_range;
    Alcotest.test_case "kernel block_of" `Quick test_kernel_block_of;
    Alcotest.test_case "kernel fold/pp" `Quick test_kernel_fold_and_pp;
  ]
