(* Trace capture / replay / serialization tests (paper Sec. 5.1
   methodology substrate). *)

let check = Alcotest.check

let live_stream k ~warp ~seed =
  let cf = Sim.Cf.create k ~warp ~seed in
  let acc = ref [] in
  let rec go () =
    match Sim.Cf.peek cf with
    | None -> List.rev !acc
    | Some i ->
      acc := i.Ir.Instr.id :: !acc;
      Sim.Cf.advance cf;
      go ()
  in
  go ()

let traced_stream trace k ~warp =
  let acc = ref [] in
  Sim.Trace.replay trace k ~warp (fun i -> acc := i.Ir.Instr.id :: !acc);
  List.rev !acc

let test_replay_matches_live () =
  List.iter
    (fun name ->
      let k = Rfh.benchmark name in
      let trace = Sim.Trace.capture ~warps:3 ~seed:9 k in
      for w = 0 to 2 do
        check Alcotest.(list int)
          (Printf.sprintf "%s warp %d" name w)
          (live_stream k ~warp:w ~seed:9)
          (traced_stream trace k ~warp:w)
      done)
    [ "VectorAdd"; "Mandelbrot"; "MatrixMul"; "needle" ]

let test_serialization_roundtrip () =
  let k = Rfh.benchmark "EigenValues" in
  let trace = Sim.Trace.capture ~warps:4 ~seed:5 k in
  let text = Sim.Trace.to_string trace in
  match Sim.Trace.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok trace2 ->
    check Alcotest.int "warps preserved" (Sim.Trace.warps trace) (Sim.Trace.warps trace2);
    for w = 0 to 3 do
      check Alcotest.(list int) "sequence preserved"
        (Sim.Trace.block_sequence trace ~warp:w)
        (Sim.Trace.block_sequence trace2 ~warp:w)
    done;
    check Alcotest.string "fixpoint" text (Sim.Trace.to_string trace2)

let test_of_string_errors () =
  (match Sim.Trace.of_string "garbage" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted garbage");
  match Sim.Trace.of_string "trace v1 warps=1\nwarp 7: 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted out-of-range warp"

let test_edge_profile_loop () =
  (* An 8-trip self loop: the backedge fires 7 times per warp. *)
  let k = Workloads.Micro.loop_carried 8 in
  let trace = Sim.Trace.capture ~warps:2 ~seed:1 k in
  let profile = Sim.Trace.edge_profile trace in
  let backedge_count =
    List.fold_left
      (fun acc ((a, b), n) -> if a = b && a >= 0 then acc + n else acc)
      0 profile
  in
  check Alcotest.int "2 warps x 7 backedges" 14 backedge_count;
  let starts = List.assoc_opt (-1, 0) profile in
  check (Alcotest.option Alcotest.int) "2 warp starts" (Some 2) starts

let test_synthesize_plausible () =
  let k = Workloads.Micro.loop_carried 8 in
  let trace = Sim.Trace.capture ~warps:4 ~seed:2 k in
  let walk = Sim.Trace.synthesize trace k ~seed:3 in
  (* The synthetic walk follows real CFG edges... *)
  let nb = Ir.Kernel.block_count k in
  let rec ok = function
    | a :: (b :: _ as rest) ->
      List.mem b (Ir.Terminator.successors k.Ir.Kernel.blocks.(a).Ir.Block.term ~at:a ~num_blocks:nb)
      && ok rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "walk follows CFG" true (ok walk);
  (* ...visits the loop (the dominant path) and stays within the edge
     budget of the 4 captured warps. *)
  let budget =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Sim.Trace.edge_profile trace)
  in
  check Alcotest.bool "walk loops at least once" true (List.length walk >= 4);
  check Alcotest.bool "walk within budget" true (List.length walk <= budget + 1)

let test_capture_deterministic () =
  let k = Rfh.benchmark "Mandelbrot" in
  let t1 = Sim.Trace.capture ~warps:2 ~seed:4 k in
  let t2 = Sim.Trace.capture ~warps:2 ~seed:4 k in
  check Alcotest.string "same trace" (Sim.Trace.to_string t1) (Sim.Trace.to_string t2)

let suite =
  [
    Alcotest.test_case "replay matches live" `Quick test_replay_matches_live;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
    Alcotest.test_case "edge profile loop" `Quick test_edge_profile_loop;
    Alcotest.test_case "synthesize plausible" `Quick test_synthesize_plausible;
    Alcotest.test_case "capture deterministic" `Quick test_capture_deterministic;
  ]
