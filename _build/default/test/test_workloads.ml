(* Every Table-1 benchmark must build, allocate and verify under every
   hierarchy configuration, and produce sane dynamic behaviour. *)

let configs =
  [
    ("2-level", Alloc.Config.make ~lrf:Alloc.Config.No_lrf ());
    ("3-level unified", Alloc.Config.make ~lrf:Alloc.Config.Unified ());
    ("3-level split", Alloc.Config.make ~lrf:Alloc.Config.Split ());
    ("1-entry", Alloc.Config.make ~orf_entries:1 ~lrf:Alloc.Config.No_lrf ());
    ("8-entry", Alloc.Config.make ~orf_entries:8 ~lrf:Alloc.Config.Split ());
    ("no-opts", Alloc.Config.make ~partial_ranges:false ~read_operands:false ());
  ]

let test_benchmark (e : Workloads.Registry.entry) () =
  List.iter
    (fun k ->
      let ctx = Alloc.Context.create k in
      List.iter
        (fun (cname, config) ->
          let placement = Alloc.Allocator.place config ctx in
          match Alloc.Verify.check config ctx placement with
          | Ok () -> ()
          | Error errs ->
            Alcotest.failf "%s/%s under %s:\n%s" e.Workloads.Registry.name k.Ir.Kernel.name
              cname
              (String.concat "\n" (List.filteri (fun i _ -> i < 5) errs)))
        configs;
      (* The dynamic stream must terminate without hitting the cap. *)
      let r = Sim.Traffic.run ~warps:2 ctx Sim.Traffic.Baseline in
      Alcotest.(check int) "no capped warps" 0 r.Sim.Traffic.capped_warps;
      Alcotest.(check bool) "executes instructions" true (r.Sim.Traffic.dynamic_instrs > 0))
    (Lazy.force e.Workloads.Registry.kernels)

let test_registry_complete () =
  let all = Workloads.Registry.all () in
  Alcotest.(check int) "36 benchmarks" 36 (List.length all);
  Alcotest.(check int) "25 CUDA SDK" 25
    (List.length (Workloads.Registry.by_suite Workloads.Suite.Cuda_sdk));
  Alcotest.(check int) "5 Parboil" 5
    (List.length (Workloads.Registry.by_suite Workloads.Suite.Parboil));
  Alcotest.(check int) "6 Rodinia" 6
    (List.length (Workloads.Registry.by_suite Workloads.Suite.Rodinia));
  (* Unique names, and find works case-insensitively. *)
  let names = Workloads.Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "find reduction" true
    (Option.is_some (Workloads.Registry.find "reduction"));
  (* Multi-kernel applications expose their secondary kernels. *)
  let multi =
    List.filter
      (fun (e : Workloads.Registry.entry) ->
        List.length (Lazy.force e.Workloads.Registry.kernels) > 1)
      all
  in
  Alcotest.(check bool) "several multi-kernel apps" true (List.length multi >= 8);
  let reduction = Option.get (Workloads.Registry.find "Reduction") in
  Alcotest.(check int) "Reduction has 2 kernels" 2
    (List.length (Lazy.force reduction.Workloads.Registry.kernels))

let test_usage_patterns () =
  (* Fig. 2's headline: a large share of values is read at most once,
     and read-once values mostly die within a few instructions. *)
  let stats =
    Sim.Value_trace.merge
      (List.map
         (fun (e : Workloads.Registry.entry) ->
           Sim.Value_trace.collect ~warps:2 (Lazy.force e.Workloads.Registry.kernel))
         (Workloads.Registry.all ()))
  in
  let frac = Util.Stats.hfraction stats.Sim.Value_trace.read_counts in
  let read01 = frac (fun n -> n <= 1) in
  Alcotest.(check bool) "most values read <= 1 time (paper: up to ~70% read once)" true
    (read01 > 0.5);
  let lt = Util.Stats.hfraction stats.Sim.Value_trace.lifetimes_read_once in
  Alcotest.(check bool) "read-once values are mostly short-lived" true (lt (fun d -> d <= 3) > 0.5)

let suite =
  Alcotest.test_case "registry complete" `Quick test_registry_complete
  :: Alcotest.test_case "usage patterns (Fig 2)" `Quick test_usage_patterns
  :: List.map
       (fun (e : Workloads.Registry.entry) ->
         Alcotest.test_case e.Workloads.Registry.name `Quick (test_benchmark e))
       (Workloads.Registry.all ())
