(* rfh — command-line driver regenerating every table and figure of the
   paper's evaluation, plus kernel/placement inspection commands. *)

open Cmdliner

let opts_of ~warps ~seed ~benchmarks =
  let base = { (Experiments.Options.default ()) with Experiments.Options.warps; seed } in
  match benchmarks with
  | [] -> base
  | names -> Experiments.Options.with_benchmarks base names

let warps_arg =
  let doc = "Machine-resident warps to simulate per kernel." in
  Arg.(value & opt int 32 & info [ "warps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Deterministic seed for data-dependent branch behaviour." in
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED" ~doc)

let benchmarks_arg =
  let doc = "Restrict to the named benchmarks (default: all 36)." in
  Arg.(value & opt (list string) [] & info [ "benchmarks"; "b" ] ~docv:"NAMES" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of aligned text tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let verbose_arg =
  let doc = "Log allocator decisions to stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let print_tables csv tables =
  List.iter
    (fun t ->
      if csv then (print_endline (Util.Table.csv t); print_newline ())
      else Util.Table.print t)
    tables

let artefact_cmd (name, artefact) =
  let doc =
    match name with
    | "fig2" -> "Register-value usage patterns per suite (Figure 2)."
    | "fig11" -> "Two-level read/write breakdown, HW vs SW (Figure 11)."
    | "fig12" -> "Three-level read/write breakdown, HW vs SW (Figure 12)."
    | "fig13" -> "Normalized energy vs entries for every organisation (Figure 13)."
    | "fig14" -> "Energy breakdown of the most efficient design (Figure 14)."
    | "fig15" -> "Per-benchmark normalized energy (Figure 15)."
    | "perf" -> "Two-level warp scheduler IPC study (Sec. 6)."
    | "encoding" -> "Instruction-encoding overhead (Sec. 6.5)."
    | "limit" -> "Register-hierarchy limit study (Sec. 7)."
    | "ablation" -> "Per-optimization allocator ablation (Secs. 4.3/4.4/6.3)."
    | "divergence" -> "SIMT divergence sensitivity of the energy result (extension)."
    | "pressure" -> "Register pressure and MRF occupancy per benchmark."
    | "scheduling" -> "Real rescheduling/unrolling passes re-measured (extension)."
    | "tables" -> "Echo the configuration tables 2-4."
    | _ -> "Experiment."
  in
  let run warps seed benchmarks csv =
    let opts = opts_of ~warps ~seed ~benchmarks in
    print_tables csv (Experiments.Report.tables_of opts artefact)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ warps_arg $ seed_arg $ benchmarks_arg $ csv_arg)

let all_cmd =
  let doc = "Regenerate every table and figure." in
  let run warps seed benchmarks csv =
    let opts = opts_of ~warps ~seed ~benchmarks in
    List.iter
      (fun (_, a) -> print_tables csv (Experiments.Report.tables_of opts a))
      Experiments.Report.artefact_names
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run $ warps_arg $ seed_arg $ benchmarks_arg $ csv_arg)

let kernels_cmd =
  let doc = "List the benchmarks, or print one kernel's PTX-like code." in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark to print.")
  in
  let run = function
    | None ->
      let t =
        Util.Table.create ~title:"Benchmarks (paper Table 1)"
          ~columns:[ "Name"; "Suite"; "Kernels"; "Static instrs"; "Blocks"; "Description" ]
      in
      List.iter
        (fun (e : Workloads.Registry.entry) ->
          let ks = Lazy.force e.Workloads.Registry.kernels in
          let sum f = List.fold_left (fun acc k -> acc + f k) 0 ks in
          Util.Table.add_row t
            [
              e.Workloads.Registry.name;
              Workloads.Suite.name e.Workloads.Registry.suite;
              string_of_int (List.length ks);
              string_of_int (sum Ir.Kernel.instr_count);
              string_of_int (sum Ir.Kernel.block_count);
              e.Workloads.Registry.description;
            ])
        (Workloads.Registry.all ());
      Util.Table.print t
    | Some name ->
      (match Workloads.Registry.find name with
       | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
       | Some e -> print_string (Ir.Kernel.to_string (Lazy.force e.Workloads.Registry.kernel)))
  in
  Cmd.v (Cmd.info "kernels" ~doc) Term.(const run $ name_arg)

let lrf_conv =
  let parse = function
    | "none" -> Ok Alloc.Config.No_lrf
    | "unified" -> Ok Alloc.Config.Unified
    | "split" -> Ok Alloc.Config.Split
    | s -> Error (`Msg (Printf.sprintf "unknown LRF mode %S (none|unified|split)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with Alloc.Config.No_lrf -> "none" | Alloc.Config.Unified -> "unified" | Alloc.Config.Split -> "split")
  in
  Arg.conv (parse, print)

let allocate_cmd =
  let doc = "Run the allocator on one benchmark and print the operand placements." in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let entries_arg =
    Arg.(value & opt int 3 & info [ "entries" ] ~docv:"N" ~doc:"ORF entries per thread (1-8).")
  in
  let lrf_arg =
    Arg.(value & opt lrf_conv Alloc.Config.Split & info [ "lrf" ] ~docv:"MODE" ~doc:"LRF mode.")
  in
  let run name entries lrf verbose =
    setup_logging verbose;
    match Workloads.Registry.find name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some e ->
      let k = Lazy.force e.Workloads.Registry.kernel in
      let ctx = Alloc.Context.create k in
      let config = Alloc.Config.make ~orf_entries:entries ~lrf () in
      let placement, stats = Alloc.Allocator.run config ctx in
      (match Alloc.Verify.check config ctx placement with
       | Ok () -> ()
       | Error errs ->
         prerr_endline "PLACEMENT FAILED VERIFICATION:";
         List.iter prerr_endline errs);
      Printf.printf "%s: %d strands; %d write units, %d read units; %d LRF + %d ORF allocations (%d partial)\n\n"
        e.Workloads.Registry.name
        (Strand.Partition.num_strands ctx.Alloc.Context.partition)
        stats.Alloc.Allocator.write_units stats.Alloc.Allocator.read_units
        stats.Alloc.Allocator.lrf_allocated stats.Alloc.Allocator.orf_allocated
        stats.Alloc.Allocator.partial_allocated;
      Ir.Kernel.iter_instrs k (fun _ i ->
          let id = i.Ir.Instr.id in
          let strand = Strand.Partition.strand_of_instr ctx.Alloc.Context.partition id in
          let boundary =
            if Strand.Partition.starts_strand ctx.Alloc.Context.partition id then "*" else " "
          in
          let dst =
            match Alloc.Placement.dest placement ~instr:id with
            | None -> "-"
            | Some d ->
              String.concat ""
                [
                  (match d.Alloc.Placement.to_lrf with Some bk -> Printf.sprintf "LRF[%d] " bk | None -> "");
                  (match d.Alloc.Placement.to_orf with Some en -> Printf.sprintf "ORF[%d] " en | None -> "");
                  (if d.Alloc.Placement.to_mrf then "MRF" else "");
                ]
          in
          let srcs =
            List.mapi
              (fun pos _ ->
                Alloc.Placement.level_name (Alloc.Placement.src placement ~instr:id ~pos))
              i.Ir.Instr.srcs
            |> String.concat ","
          in
          let fills =
            Alloc.Placement.fills_of placement ~instr:id
            |> List.map (fun (p, en) -> Printf.sprintf "fill(slot %d -> ORF[%d])" p en)
            |> String.concat " "
          in
          Printf.printf "s%-3d%s %-40s dst: %-18s srcs: %-24s %s\n" strand boundary
            (Ir.Instr.to_string i) dst srcs fills)
  in
  Cmd.v (Cmd.info "allocate" ~doc)
    Term.(const run $ name_arg $ entries_arg $ lrf_arg $ verbose_arg)

let selfcheck_cmd =
  let doc =
    "Run the allocator and verifier over every benchmark and hierarchy configuration."
  in
  let run () =
    let configs =
      List.concat_map
        (fun entries ->
          List.map
            (fun lrf -> Alloc.Config.make ~orf_entries:entries ~lrf ())
            [ Alloc.Config.No_lrf; Alloc.Config.Unified; Alloc.Config.Split ])
        [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    in
    let checked = ref 0 in
    let failed = ref 0 in
    List.iter
      (fun (e : Workloads.Registry.entry) ->
        List.iter
          (fun kernel ->
            let ctx = Alloc.Context.create kernel in
            List.iter
              (fun config ->
                incr checked;
                let placement = Alloc.Allocator.place config ctx in
                match Alloc.Verify.check config ctx placement with
                | Ok () -> ()
                | Error errs ->
                  incr failed;
                  Printf.printf "FAIL %s/%s under %s:\n  %s\n" e.Workloads.Registry.name
                    kernel.Ir.Kernel.name
                    (Format.asprintf "%a" Alloc.Config.pp config)
                    (String.concat "\n  " errs))
              configs)
          (Lazy.force e.Workloads.Registry.kernels))
      (Workloads.Registry.all ());
    Printf.printf "selfcheck: %d placements verified, %d failures\n" !checked !failed;
    if !failed > 0 then exit 1
  in
  Cmd.v (Cmd.info "selfcheck" ~doc) Term.(const run $ const ())

let trace_cmd =
  let doc =
    "Capture a benchmark's execution trace (Sec. 5.1 methodology): dynamic block sequences \
     per warp plus the control-flow-edge frequency profile."
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let run name warps seed =
    match Workloads.Registry.find name with
    | None -> prerr_endline ("unknown benchmark: " ^ name); exit 1
    | Some e ->
      let k = Lazy.force e.Workloads.Registry.kernel in
      let trace = Sim.Trace.capture ~warps ~seed k in
      print_string (Sim.Trace.to_string trace);
      print_newline ();
      let t =
        Util.Table.create ~title:"Control-flow edge frequencies"
          ~columns:[ "Edge"; "Executions" ]
      in
      List.iter
        (fun ((a, b), n) ->
          let from_ = if a < 0 then "entry" else Printf.sprintf "BB%d" a in
          Util.Table.add_row t [ Printf.sprintf "%s -> BB%d" from_ b; string_of_int n ])
        (Sim.Trace.edge_profile trace);
      Util.Table.print t
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ name_arg $ warps_arg $ seed_arg)

let compile_cmd =
  let doc =
    "Compile a PTX-flavoured assembly file (see Ir.Asm) onto the hierarchy: print strands, \
     operand placements and the measured energy saving."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly source file.")
  in
  let entries_arg =
    Arg.(value & opt int 3 & info [ "entries" ] ~docv:"N" ~doc:"ORF entries per thread (1-8).")
  in
  let lrf_arg =
    Arg.(value & opt lrf_conv Alloc.Config.Split & info [ "lrf" ] ~docv:"MODE" ~doc:"LRF mode.")
  in
  let run file entries lrf warps seed verbose =
    setup_logging verbose;
    let ic = open_in file in
    let len = in_channel_length ic in
    let source = really_input_string ic len in
    close_in ic;
    match Ir.Asm.parse ~name:(Filename.remove_extension (Filename.basename file)) source with
    | Error msg -> prerr_endline ("parse error: " ^ msg); exit 1
    | Ok kernel ->
      let ctx = Alloc.Context.create kernel in
      let config = Alloc.Config.make ~orf_entries:entries ~lrf () in
      let placement = Alloc.Allocator.place config ctx in
      (match Alloc.Verify.check config ctx placement with
       | Ok () -> ()
       | Error errs ->
         prerr_endline "PLACEMENT FAILED VERIFICATION:";
         List.iter prerr_endline errs;
         exit 1);
      Ir.Kernel.iter_instrs kernel (fun _ i ->
          let id = i.Ir.Instr.id in
          let strand = Strand.Partition.strand_of_instr ctx.Alloc.Context.partition id in
          let boundary =
            if Strand.Partition.starts_strand ctx.Alloc.Context.partition id then "*" else " "
          in
          let dst =
            match Alloc.Placement.dest placement ~instr:id with
            | None -> "-"
            | Some d ->
              String.concat ""
                [
                  (match d.Alloc.Placement.to_lrf with Some bk -> Printf.sprintf "LRF[%d] " bk | None -> "");
                  (match d.Alloc.Placement.to_orf with Some en -> Printf.sprintf "ORF[%d] " en | None -> "");
                  (if d.Alloc.Placement.to_mrf then "MRF" else "");
                ]
          in
          let srcs =
            List.mapi
              (fun pos _ ->
                Alloc.Placement.level_name (Alloc.Placement.src placement ~instr:id ~pos))
              i.Ir.Instr.srcs
            |> String.concat ","
          in
          Printf.printf "s%-3d%s %-40s dst: %-18s srcs: %s\n" strand boundary
            (Ir.Instr.to_string i) dst srcs);
      let traffic =
        Sim.Traffic.run ~warps ~seed ctx (Sim.Traffic.Sw { config; placement })
      in
      let baseline = Sim.Traffic.run ~warps ~seed ctx Sim.Traffic.Baseline in
      let energy c =
        (Energy.Counts.energy config.Alloc.Config.params ~orf_entries:entries c)
          .Energy.Counts.total
      in
      let ratio =
        Util.Stats.ratio (energy traffic.Sim.Traffic.counts) (energy baseline.Sim.Traffic.counts)
      in
      Printf.printf "\nnormalized register-file energy: %.3f (%.1f%% saved)\n" ratio
        (100.0 *. (1.0 -. ratio))
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ file_arg $ entries_arg $ lrf_arg $ warps_arg $ seed_arg $ verbose_arg)

let () =
  let doc = "compile-time managed multi-level register file hierarchy (MICRO 2011) reproduction" in
  let info = Cmd.info "rfh" ~version:"1.0.0" ~doc in
  let cmds =
    List.map artefact_cmd Experiments.Report.artefact_names
    @ [ all_cmd; kernels_cmd; allocate_cmd; compile_cmd; selfcheck_cmd; trace_cmd ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
