(* Design-space exploration for a 2D stencil kernel: how many ORF
   entries per thread, and which LRF organisation, minimize register
   file energy?  This is the workflow of Sec. 6.4, applied to a single
   application the way an SoC architect would.

   Run with: dune exec examples/stencil_designer.exe *)

module B = Rfh.Ir.Builder
module Op = Rfh.Ir.Op
module Cfg = Rfh.Alloc.Config

(* A 9-point weighted stencil: load a 3x3 neighbourhood from shared
   memory, combine with re-read coefficient parameters, apply an SFU
   reciprocal normalization, write back. *)
let stencil_kernel () =
  let b = B.create "stencil9" in
  let smem = B.fresh b and out = B.fresh b and tid = B.fresh b in
  let w0 = B.fresh b and w1 = B.fresh b and w2 = B.fresh b in
  let head = B.here b in
  let acc0 = B.op0 b Op.Mov () in
  let acc =
    List.fold_left
      (fun acc w ->
        (* three neighbours per coefficient row *)
        List.fold_left
          (fun acc _ ->
            let addr = B.op2 b Op.Iadd smem tid in
            let v = B.op1 b Op.Ld_shared addr in
            B.op3 b Op.Ffma v w acc)
          acc [ 0; 1; 2 ])
      acc0 [ w0; w1; w2 ]
  in
  let norm = B.op1 b Op.Rcp acc in
  let v = B.op2 b Op.Fmul acc norm in
  let out_addr = B.op2 b Op.Iadd out tid in
  B.store b Op.St_global ~addr:out_addr ~value:v;
  let p = B.op1 b Op.Setp v in
  B.branch b ~pred:p ~target:head (Rfh.Ir.Terminator.Loop 16);
  let (_ : B.label) = B.here b in
  B.ret b;
  B.finalize b

let () =
  let kernel = stencil_kernel () in
  let modes = [ ("no LRF", Cfg.No_lrf); ("unified LRF", Cfg.Unified); ("split LRF", Cfg.Split) ] in
  let table =
    Rfh.Util.Table.create ~title:"stencil9: normalized RF energy by hierarchy shape"
      ~columns:("Entries" :: List.map fst modes)
  in
  let best = ref (infinity, 0, "") in
  for entries = 1 to 8 do
    let row =
      List.map
        (fun (name, lrf) ->
          let config = Cfg.make ~orf_entries:entries ~lrf () in
          let m = Rfh.measure ~warps:8 (Rfh.compile ~config kernel) in
          if m.Rfh.normalized_energy < (let e, _, _ = !best in e) then
            best := (m.Rfh.normalized_energy, entries, name);
          m.Rfh.normalized_energy)
        modes
    in
    Rfh.Util.Table.add_float_row table (string_of_int entries) row
  done;
  Rfh.Util.Table.print table;
  let e, entries, name = !best in
  Format.printf "best design: %d ORF entries with %s -> %.3f (%.1f%% saved)@." entries name e
    (100.0 *. (1.0 -. e))
