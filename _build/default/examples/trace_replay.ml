(* Trace-driven methodology (paper Sec. 5.1): capture a benchmark's
   execution once, save the trace, reload it, and drive the energy
   accounting from the replay — no branch evaluation the second time.

   Run with: dune exec examples/trace_replay.exe *)

let () =
  let name = "Mandelbrot" in
  let kernel = Rfh.benchmark name in

  (* 1. Capture: run 8 warps, record their dynamic block sequences. *)
  let trace = Rfh.Sim.Trace.capture ~warps:8 ~seed:0x5eed kernel in
  let serialized = Rfh.Sim.Trace.to_string trace in
  Format.printf "captured %s: %d warps, %d bytes serialized@." name
    (Rfh.Sim.Trace.warps trace) (String.length serialized);

  (* 2. The edge-frequency profile — what the paper's traces record. *)
  let profile = Rfh.Sim.Trace.edge_profile trace in
  Format.printf "control-flow edges: %d distinct, %d executions total@."
    (List.length profile)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 profile);

  (* 3. Reload and replay: count baseline MRF traffic from the trace
        alone, then compare with live execution. *)
  let reloaded =
    match Rfh.Sim.Trace.of_string serialized with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  let replay_reads = ref 0 in
  for w = 0 to Rfh.Sim.Trace.warps reloaded - 1 do
    Rfh.Sim.Trace.replay reloaded kernel ~warp:w (fun i ->
        replay_reads := !replay_reads + List.length i.Rfh.Ir.Instr.srcs)
  done;
  let ctx = Rfh.Alloc.Context.create kernel in
  let live = Rfh.Sim.Traffic.run ~warps:8 ~seed:0x5eed ctx Rfh.Sim.Traffic.Baseline in
  Format.printf "operand reads — replayed: %d, live: %d (%s)@." !replay_reads
    (Rfh.Energy.Counts.total_reads live.Rfh.Sim.Traffic.counts)
    (if !replay_reads = Rfh.Energy.Counts.total_reads live.Rfh.Sim.Traffic.counts then
       "identical" else "MISMATCH");

  (* 4. Synthesize a plausible walk from the profile alone. *)
  let walk = Rfh.Sim.Trace.synthesize trace kernel ~seed:42 in
  Format.printf "synthesized walk from the profile: %d block visits@." (List.length walk)
