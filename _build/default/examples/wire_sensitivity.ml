(* Sensitivity of the paper's conclusion to the wire model: as wire
   energy grows relative to bank access energy (the expected trend in
   scaled process nodes), how do the hardware-cache and
   compiler-managed organisations separate?

   The experiment scales Table 4's pJ/mm constant and recomputes the
   Fig. 13 optimum for each scheme over the full benchmark suite.

   Run with: dune exec examples/wire_sensitivity.exe *)

module Options = Rfh.Experiments.Options
module Sweep = Rfh.Experiments.Sweep

let wire_scales = [ 0.5; 1.0; 2.0; 4.0 ]

let () =
  let table =
    Rfh.Util.Table.create
      ~title:"Best normalized energy (any entry count 1-8) as wire energy scales"
      ~columns:[ "Wire scale"; "HW RFC"; "HW LRF"; "SW ORF"; "SW LRF split"; "SW advantage %" ]
  in
  List.iter
    (fun scale ->
      let params =
        { Rfh.Energy.Params.default with
          Rfh.Energy.Params.wire_pj_per_mm_32b =
            Rfh.Energy.Params.default.Rfh.Energy.Params.wire_pj_per_mm_32b *. scale }
      in
      let opts = { (Options.quick ()) with Options.params } in
      let best scheme =
        List.fold_left
          (fun acc entries -> min acc (Sweep.mean_energy_ratio opts scheme ~entries))
          infinity [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      let hw = best Sweep.Hw_two in
      let hw3 = best Sweep.Hw_three in
      let sw = best Sweep.Sw_two in
      let sw3 = best Sweep.Sw_three_split in
      Rfh.Util.Table.add_row table
        [
          Printf.sprintf "%.1fx" scale;
          Printf.sprintf "%.3f" hw;
          Printf.sprintf "%.3f" hw3;
          Printf.sprintf "%.3f" sw;
          Printf.sprintf "%.3f" sw3;
          Printf.sprintf "%.1f" (100.0 *. (hw3 -. sw3) /. hw3);
        ])
    wire_scales;
  Rfh.Util.Table.print table;
  print_endline
    "As wire energy grows, every hierarchy gains against the single-level RF\n\
     (upper levels sit far closer to the ALUs), and the compiler-managed\n\
     design stays ahead of the hardware cache across the whole sweep."
