examples/quickstart.ml: Format Rfh
