examples/stencil_designer.ml: Format List Rfh
