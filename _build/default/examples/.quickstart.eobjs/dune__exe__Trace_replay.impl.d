examples/trace_replay.ml: Format List Rfh String
