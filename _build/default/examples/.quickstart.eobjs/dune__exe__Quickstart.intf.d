examples/quickstart.mli:
