examples/assembly_kernel.mli:
