examples/stencil_designer.mli:
