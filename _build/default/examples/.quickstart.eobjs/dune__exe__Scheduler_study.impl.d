examples/scheduler_study.ml: List Rfh
