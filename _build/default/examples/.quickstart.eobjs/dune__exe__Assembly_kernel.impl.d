examples/assembly_kernel.ml: Format List Printf Rfh String
