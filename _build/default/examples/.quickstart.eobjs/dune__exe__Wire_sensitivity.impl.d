examples/wire_sensitivity.ml: List Printf Rfh
