examples/worst_case_tuning.mli:
