examples/worst_case_tuning.ml: List Printf Rfh
