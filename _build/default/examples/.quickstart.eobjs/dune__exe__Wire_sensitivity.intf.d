examples/wire_sensitivity.mli:
