(* How many active warps does the two-level scheduler need?  Replays
   the Sec. 6 experiment on three benchmarks with very different
   latency profiles: a memory-bound streaming kernel, an SFU-heavy
   compute kernel and a shared-memory kernel.

   Run with: dune exec examples/scheduler_study.exe *)

let benchmarks = [ "VectorAdd"; "MonteCarlo"; "MatrixMul" ]

let () =
  let table =
    Rfh.Util.Table.create
      ~title:"IPC by active-warp count (two-level scheduler, deschedule on dependence)"
      ~columns:("Active warps" :: benchmarks @ [ "mean vs single-level" ])
  in
  let contexts =
    List.map
      (fun name -> Rfh.Alloc.Context.create (Rfh.benchmark name))
      benchmarks
  in
  let ipc scheduler ctx =
    (Rfh.Sim.Perf.run ~warps:32 ~scheduler ~policy:Rfh.Sim.Perf.On_dependence ctx)
      .Rfh.Sim.Perf.ipc
  in
  let single = List.map (ipc Rfh.Sim.Perf.Single_level) contexts in
  List.iter
    (fun active ->
      let scheduler =
        if active >= 32 then Rfh.Sim.Perf.Single_level else Rfh.Sim.Perf.Two_level active
      in
      let ipcs = List.map (ipc scheduler) contexts in
      let rel =
        Rfh.Util.Stats.mean (List.map2 (fun a s -> Rfh.Util.Stats.ratio a s) ipcs single)
      in
      Rfh.Util.Table.add_float_row table (string_of_int active) (ipcs @ [ rel ]))
    [ 1; 2; 4; 6; 8; 16; 32 ];
  Rfh.Util.Table.print table;
  print_endline
    "The paper's claim: with 8 active warps the two-level scheduler matches the\n\
     single-level scheduler, while only 8 warps' worth of ORF/LRF entries exist."
