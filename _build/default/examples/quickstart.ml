(* Quickstart: build a small kernel with the IR builder, compile it
   onto the three-level register file hierarchy, and measure the
   register-file energy saved against a single-level register file.

   Run with: dune exec examples/quickstart.exe *)

module B = Rfh.Ir.Builder
module Op = Rfh.Ir.Op

(* A tiny "axpy then normalize" kernel:
     for i in 0..7: y[i] = (a * x[i] + y[i]) * rsqrt(a)            *)
let build_kernel () =
  let b = B.create "quickstart" in
  (* Kernel parameters live in the MRF and are never written. *)
  let a = B.fresh b in
  let x_base = B.fresh b in
  let y_base = B.fresh b in
  let scale = B.op1 b Op.Rsqrt a in
  let head = B.here b in
  let x_addr = B.op2 b Op.Iadd x_base scale in
  let y_addr = B.op2 b Op.Iadd y_base scale in
  let x = B.op1 b Op.Ld_global x_addr in
  let y = B.op1 b Op.Ld_global y_addr in
  let axpy = B.op3 b Op.Ffma a x y in
  let result = B.op2 b Op.Fmul axpy scale in
  B.store b Op.St_global ~addr:y_addr ~value:result;
  let p = B.op1 b Op.Setp result in
  B.branch b ~pred:p ~target:head (Rfh.Ir.Terminator.Loop 8);
  let (_ : B.label) = B.here b in
  B.ret b;
  B.finalize b

let () =
  let kernel = build_kernel () in
  Format.printf "%s@." (Rfh.Ir.Kernel.to_string kernel);

  (* Compile with the paper's best configuration: 3 ORF entries per
     thread and a split LRF. *)
  let compiled = Rfh.compile kernel in
  let stats = compiled.Rfh.stats in
  Format.printf
    "allocator: %d write units, %d read units -> %d LRF + %d ORF allocations (%d partial)@."
    stats.Rfh.Alloc.Allocator.write_units stats.Rfh.Alloc.Allocator.read_units
    stats.Rfh.Alloc.Allocator.lrf_allocated stats.Rfh.Alloc.Allocator.orf_allocated
    stats.Rfh.Alloc.Allocator.partial_allocated;

  (* Execute 32 warps and convert hierarchy traffic to energy. *)
  let m = Rfh.measure compiled in
  let counts = m.Rfh.traffic.Rfh.Sim.Traffic.counts in
  Format.printf "traffic: %a@." Rfh.Energy.Counts.pp counts;
  Format.printf "normalized register-file energy: %.3f (%.1f%% saved)@."
    m.Rfh.normalized_energy m.Rfh.savings_percent
