(* Writing a kernel as PTX-flavoured assembly text instead of through
   the OCaml builder: parse, compile onto the hierarchy, inspect the
   operand placements the compiler chose.

   Run with: dune exec examples/assembly_kernel.exe *)

let source =
  {|
.kernel dot3
// inputs: %ax %ay %az  %bx %by %bz  (vector components in the MRF)
//         %out %tid
entry:
  mul.f32    %t0, %ax, %bx
  fma.f32    %t1, %ay, %by, %t0
  fma.f32    %dot, %az, %bz, %t1
  rsqrt.f32  %inv, %dot
  mul.f32    %n, %dot, %inv
  shl.b32    %off, %tid
  add.s32    %addr, %out, %off
  st.global  %addr, %n
  ret
|}

let () =
  let kernel = Rfh.Ir.Asm.parse_exn ~name:"dot3" source in
  Format.printf "parsed:@.%s@." (Rfh.Ir.Asm.to_source kernel);
  let compiled = Rfh.compile kernel in
  let placement = compiled.Rfh.placement in
  print_endline "operand placements:";
  Rfh.Ir.Kernel.iter_instrs kernel (fun _ i ->
      let id = i.Rfh.Ir.Instr.id in
      let dst =
        match Rfh.Alloc.Placement.dest placement ~instr:id with
        | None -> "-"
        | Some d ->
          String.concat ""
            [
              (match d.Rfh.Alloc.Placement.to_lrf with
               | Some bank -> Printf.sprintf "LRF[%d] " bank
               | None -> "");
              (match d.Rfh.Alloc.Placement.to_orf with
               | Some entry -> Printf.sprintf "ORF[%d] " entry
               | None -> "");
              (if d.Rfh.Alloc.Placement.to_mrf then "MRF" else "");
            ]
      in
      let srcs =
        List.mapi
          (fun pos _ ->
            Rfh.Alloc.Placement.level_name (Rfh.Alloc.Placement.src placement ~instr:id ~pos))
          i.Rfh.Ir.Instr.srcs
        |> String.concat ", "
      in
      Printf.printf "  %-28s -> dst: %-12s srcs: %s\n"
        (Rfh.Ir.Op.mnemonic i.Rfh.Ir.Instr.op)
        dst srcs);
  let m = Rfh.measure ~warps:8 compiled in
  Format.printf "normalized energy: %.3f (%.1f%% saved)@." m.Rfh.normalized_energy
    m.Rfh.savings_percent
