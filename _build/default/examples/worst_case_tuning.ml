(* Fixing the paper's worst cases.

   Fig. 15 singles out Reduction and ScalarProd: tight global-load
   loops whose warps are constantly swapped out, flushing the LRF/ORF.
   The paper's prescription (Sec. 6.4): "unroll the inner loop and
   issue all of the long latency instructions at the beginning of the
   loop".  This example applies exactly that — Transform.Unroll then
   Transform.Reschedule with load hoisting — and re-measures.

   Run with: dune exec examples/worst_case_tuning.exe *)

let measure kernel =
  let compiled = Rfh.compile kernel in
  let m = Rfh.measure ~warps:8 compiled in
  (m.Rfh.normalized_energy, m.Rfh.traffic.Rfh.Sim.Traffic.desched_events)

let () =
  let table =
    Rfh.Util.Table.create
      ~title:"Worst-case benchmarks under the paper's unroll+hoist prescription"
      ~columns:
        [ "Benchmark"; "Energy before"; "Deschedules"; "Energy after"; "Deschedules after" ]
  in
  List.iter
    (fun name ->
      let k = Rfh.benchmark name in
      let tuned =
        Rfh.Transform.Reschedule.kernel ~hoist_loads:true
          (Rfh.Transform.Unroll.kernel ~factor:4 k)
      in
      let before, desched_before = measure k in
      let after, desched_after = measure tuned in
      Rfh.Util.Table.add_row table
        [
          name;
          Printf.sprintf "%.3f" before;
          string_of_int desched_before;
          Printf.sprintf "%.3f" after;
          string_of_int desched_after;
        ])
    [ "Reduction"; "ScalarProd"; "VectorAdd"; "cp" ];
  Rfh.Util.Table.print table;
  print_endline
    "Unrolling multiplies the loads per strand; hoisting clusters them so their\n\
     consumers share one deschedule point instead of one per load. Fewer\n\
     active-set swaps leave the LRF/ORF resident longer, exactly as Sec. 6.4\n\
     predicts for these kernels."
