(** Compile-time managed multi-level register file hierarchy
    (Gebhart, Keckler & Dally, MICRO 2011) — public façade.

    The typical flow:

    {[
      let kernel = (* build with Rfh.Ir.Builder or pick a benchmark *) in
      let compiled = Rfh.compile kernel in
      let report = Rfh.measure compiled in
      Format.printf "normalized energy: %.3f@." report.Rfh.normalized_energy
    ]}

    The submodules expose the full system:
    - {!Ir}: the PTX-like IR and kernel builder;
    - {!Analysis}: CFG, dominance, liveness, reaching defs, du-chains;
    - {!Strand}: strand partitioning (Sec. 4.1);
    - {!Alloc}: the energy-driven allocator (Sec. 4) and its verifier;
    - {!Energy}: the Table 3/4 energy model;
    - {!Machine}: the hardware RFC baseline structures;
    - {!Sim}: traffic accounting and the SM timing simulator;
    - {!Workloads}: the 36 Table-1 benchmarks and a random generator;
    - {!Experiments}: drivers regenerating every paper table/figure. *)

module Util = Util
module Ir = Ir
module Analysis = Analysis
module Strand = Strand
module Energy = Energy
module Alloc = Alloc
module Machine = Machine
module Transform = Transform
module Sim = Sim
module Workloads = Workloads
module Experiments = Experiments

type compiled = {
  context : Alloc.Context.t;
  config : Alloc.Config.t;
  placement : Alloc.Placement.t;
  stats : Alloc.Allocator.stats;
}

val compile : ?config:Alloc.Config.t -> Ir.Kernel.t -> compiled
(** Analyse the kernel, partition it into strands and run the
    allocator.  The default configuration is the paper's most
    efficient: 3 ORF entries per thread, split LRF, partial-range and
    read-operand allocation enabled.
    @raise Failure if the resulting placement fails verification —
    this indicates a library bug, not a user error. *)

type measurement = {
  traffic : Sim.Traffic.result;
  baseline : Sim.Traffic.result;
  total_energy_pj : float;     (** per-128-bit-access units, see Energy.Counts *)
  baseline_energy_pj : float;
  normalized_energy : float;   (** 1.0 = single-level register file *)
  savings_percent : float;
}

val measure : ?warps:int -> ?seed:int -> compiled -> measurement
(** Execute the kernel's warps, count hierarchy traffic and convert it
    to energy using the compile configuration's parameters. *)

val benchmark : string -> Ir.Kernel.t
(** Look up a Table-1 benchmark kernel by name.
    @raise Not_found on unknown names (see
    {!Workloads.Registry.names}). *)
