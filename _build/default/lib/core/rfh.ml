module Util = Util
module Ir = Ir
module Analysis = Analysis
module Strand = Strand
module Energy = Energy
module Alloc = Alloc
module Machine = Machine
module Transform = Transform
module Sim = Sim
module Workloads = Workloads
module Experiments = Experiments

type compiled = {
  context : Alloc.Context.t;
  config : Alloc.Config.t;
  placement : Alloc.Placement.t;
  stats : Alloc.Allocator.stats;
}

let compile ?(config = Alloc.Config.make ()) kernel =
  let context = Alloc.Context.create kernel in
  let placement, stats = Alloc.Allocator.run config context in
  (match Alloc.Verify.check config context placement with
   | Ok () -> ()
   | Error errs ->
     failwith
       (Printf.sprintf "Rfh.compile: placement verification failed (library bug):\n%s"
          (String.concat "\n" errs)));
  { context; config; placement; stats }

type measurement = {
  traffic : Sim.Traffic.result;
  baseline : Sim.Traffic.result;
  total_energy_pj : float;
  baseline_energy_pj : float;
  normalized_energy : float;
  savings_percent : float;
}

let measure ?(warps = 32) ?(seed = 0x5eed) compiled =
  let { context; config; placement; _ } = compiled in
  let traffic =
    Sim.Traffic.run ~warps ~seed context (Sim.Traffic.Sw { config; placement })
  in
  let baseline = Sim.Traffic.run ~warps ~seed context Sim.Traffic.Baseline in
  let params = config.Alloc.Config.params in
  let entries = config.Alloc.Config.orf_entries in
  let total_energy_pj =
    (Energy.Counts.energy params ~orf_entries:entries traffic.Sim.Traffic.counts)
      .Energy.Counts.total
  in
  let baseline_energy_pj =
    (Energy.Counts.energy params ~orf_entries:entries baseline.Sim.Traffic.counts)
      .Energy.Counts.total
  in
  let normalized_energy = Util.Stats.ratio total_energy_pj baseline_energy_pj in
  {
    traffic;
    baseline;
    total_energy_pj;
    baseline_energy_pj;
    normalized_energy;
    savings_percent = 100.0 *. (1.0 -. normalized_energy);
  }

let benchmark name =
  match Workloads.Registry.find name with
  | Some e -> Lazy.force e.Workloads.Registry.kernel
  | None -> raise Not_found
