type t = {
  idom : int array;       (* -1 = undefined (entry / unreachable) *)
  rpo_index : int array;  (* -1 = unreachable *)
}

let compute (cfg : Cfg.t) =
  let n = cfg.Cfg.num_blocks in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_index = Cfg.rpo_index cfg in
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    (* Intersect walking up the (partially built) dominator tree. *)
    let rec intersect a b =
      if a = b then a
      else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let processed_preds =
              List.filter (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0) cfg.Cfg.preds.(b)
            in
            match processed_preds with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
          end)
        rpo
    done
  end;
  { idom; rpo_index }

let idom t b =
  if b = 0 || t.idom.(b) < 0 then None else Some t.idom.(b)

let dominates t a b =
  if t.rpo_index.(a) < 0 || t.rpo_index.(b) < 0 then false
  else begin
    (* Walk b's dominator chain upwards; rpo index strictly decreases. *)
    let rec walk x = if x = a then true else if x = 0 then a = 0 else walk t.idom.(x) in
    walk b
  end

let instr_dominates (k : Ir.Kernel.t) t i j =
  let bi = Ir.Kernel.block_of k i and bj = Ir.Kernel.block_of k j in
  if bi = bj then i <= j else dominates t bi bj
