type t = {
  kernel : Ir.Kernel.t;
  def_sites : int list array;              (* per register, layout order *)
  block_in : Util.Bitset.t array;          (* def-site sets at block entry *)
  block_out : Util.Bitset.t array;
  def_index : int array;                   (* instr id -> dense def index, or -1 *)
  def_by_index : int array;                (* dense def index -> instr id *)
}

let compute (k : Ir.Kernel.t) (cfg : Cfg.t) =
  let nb = Ir.Kernel.block_count k in
  let nr = k.Ir.Kernel.num_regs in
  (* Dense numbering of definition sites. *)
  let def_index = Array.make (Ir.Kernel.instr_count k) (-1) in
  let defs = ref [] in
  let ndefs = ref 0 in
  Ir.Kernel.iter_instrs k (fun _ i ->
      if Option.is_some i.Ir.Instr.dst then begin
        def_index.(i.Ir.Instr.id) <- !ndefs;
        defs := i.Ir.Instr.id :: !defs;
        incr ndefs
      end);
  let def_by_index = Array.of_list (List.rev !defs) in
  let nd = !ndefs in
  let def_sites = Array.make nr [] in
  Ir.Kernel.iter_instrs k (fun _ i ->
      Option.iter (fun r -> def_sites.(r) <- i.Ir.Instr.id :: def_sites.(r)) i.Ir.Instr.dst);
  Array.iteri (fun r l -> def_sites.(r) <- List.rev l) def_sites;
  (* gen/kill per block. *)
  let gen = Array.init nb (fun _ -> Util.Bitset.create nd) in
  let kill = Array.init nb (fun _ -> Util.Bitset.create nd) in
  Array.iter
    (fun (b : Ir.Block.t) ->
      let l = b.Ir.Block.label in
      Array.iter
        (fun (i : Ir.Instr.t) ->
          Option.iter
            (fun r ->
              (* This def kills all other defs of r and generates itself. *)
              List.iter
                (fun d ->
                  let di = def_index.(d) in
                  if d <> i.Ir.Instr.id then begin
                    Util.Bitset.set kill.(l) di;
                    Util.Bitset.clear gen.(l) di
                  end)
                def_sites.(r);
              Util.Bitset.set gen.(l) def_index.(i.Ir.Instr.id);
              Util.Bitset.clear kill.(l) def_index.(i.Ir.Instr.id))
            i.Ir.Instr.dst)
        b.Ir.Block.instrs)
    k.Ir.Kernel.blocks;
  let block_in = Array.init nb (fun _ -> Util.Bitset.create nd) in
  let block_out = Array.init nb (fun _ -> Util.Bitset.create nd) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nb - 1 do
      let inb = Util.Bitset.create nd in
      List.iter (fun p -> ignore (Util.Bitset.union_into ~dst:inb block_out.(p))) cfg.Cfg.preds.(b);
      if not (Util.Bitset.equal inb block_in.(b)) then begin
        changed := true;
        block_in.(b) <- inb
      end;
      let out = Util.Bitset.copy block_in.(b) in
      ignore (Util.Bitset.diff_into ~dst:out kill.(b));
      ignore (Util.Bitset.union_into ~dst:out gen.(b));
      if not (Util.Bitset.equal out block_out.(b)) then begin
        changed := true;
        block_out.(b) <- out
      end
    done
  done;
  { kernel = k; def_sites; block_in; block_out; def_index; def_by_index }

let defs_of_reg t r = t.def_sites.(r)

let reaching_before t ~instr_id r =
  let k = t.kernel in
  let block = Ir.Kernel.block_of k instr_id in
  (* Walk the block from its top, tracking the last in-block def of r. *)
  let b = k.Ir.Kernel.blocks.(block) in
  let last_def = ref None in
  (try
     Array.iter
       (fun (i : Ir.Instr.t) ->
         if i.Ir.Instr.id >= instr_id then raise Exit;
         if i.Ir.Instr.dst = Some r then last_def := Some i.Ir.Instr.id)
       b.Ir.Block.instrs
   with Exit -> ());
  match !last_def with
  | Some d -> [ d ]
  | None ->
    List.filter (fun d -> Util.Bitset.mem t.block_in.(block) t.def_index.(d)) t.def_sites.(r)

let reaches_block_end t ~block ~def =
  let di = t.def_index.(def) in
  di >= 0 && Util.Bitset.mem t.block_out.(block) di
