(** Reaching definitions.

    A definition site is the id of an instruction that writes a
    register.  The kernel's code is pseudo-SSA PTX (paper Sec. 4.2):
    most registers have one definition, but hammocks and loop-carried
    updates redefine, so reads can be reached by several definitions —
    the allocator's forward-branch cases (Fig. 10). *)

type t

val compute : Ir.Kernel.t -> Cfg.t -> t

val defs_of_reg : t -> Ir.Reg.t -> int list
(** All definition sites of a register, in layout order. *)

val reaching_before : t -> instr_id:int -> Ir.Reg.t -> int list
(** Definition sites of the register that reach the program point just
    before the instruction.  The empty list means the register is a
    kernel input (pre-loaded in the MRF) on at least every path —
    callers treat "no in-kernel def reaches" as an input read. *)

val reaches_block_end : t -> block:int -> def:int -> bool
(** Does the definition reach the exit of the given block? *)
