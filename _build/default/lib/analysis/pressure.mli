(** Register pressure: how many values are simultaneously live.

    The paper's motivation is MRF capacity — 128 KB buys 32 registers
    per thread for 1024 resident threads (Sec. 2).  This analysis
    reports the pressure a kernel actually exerts, and the number of
    machine-resident warps an MRF budget supports (the standard GPU
    occupancy computation). *)

type t = {
  registers_used : int;   (** distinct architectural registers *)
  max_live : int;         (** peak simultaneously-live registers *)
  max_live_instr : int;   (** instruction id where the peak occurs *)
}

val compute : Ir.Kernel.t -> Cfg.t -> Liveness.t -> t

val resident_warps : ?mrf_bytes:int -> ?threads_per_warp:int -> ?bytes_per_reg:int -> int -> int
(** [resident_warps registers] is the warp count a register file can
    hold at the given per-thread register count.  Defaults: 128 KB
    MRF, 32 threads/warp, 4 bytes/register — 32 registers/thread
    supports 32 warps (Table 2's machine). *)
