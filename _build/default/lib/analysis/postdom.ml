type t = {
  ipdom : int array;      (* -1 = none; indices < n are blocks, n = virtual exit *)
  num_blocks : int;
}

let compute (k : Ir.Kernel.t) (cfg : Cfg.t) =
  let n = cfg.Cfg.num_blocks in
  (* Reversed graph over n + 1 nodes; node n is the virtual exit, an
     edge exit -> b for every Ret block b. *)
  let rsuccs = Array.make (n + 1) [] in
  let rpreds = Array.make (n + 1) [] in
  Array.iter
    (fun (b : Ir.Block.t) ->
      let l = b.Ir.Block.label in
      List.iter
        (fun s ->
          (* Reverse each CFG edge l -> s. *)
          rsuccs.(s) <- l :: rsuccs.(s);
          rpreds.(l) <- s :: rpreds.(l))
        cfg.Cfg.succs.(l);
      match b.Ir.Block.term with
      | Ir.Terminator.Ret ->
        rsuccs.(n) <- l :: rsuccs.(n);
        rpreds.(l) <- n :: rpreds.(l)
      | Ir.Terminator.Fallthrough | Ir.Terminator.Jump _ | Ir.Terminator.Branch _ -> ())
    k.Ir.Kernel.blocks;
  (* Run the CHK algorithm directly with entry = the virtual exit n:
     reverse postorder from it, then iterate. *)
  let seen = Array.make (n + 1) false in
  let order = ref [] in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter visit rsuccs.(b);
      order := b :: !order
    end
  in
  visit n;
  let rpo = Array.of_list !order in
  let rpo_index = Array.make (n + 1) (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let ipdom = Array.make (n + 1) (-1) in
  ipdom.(n) <- n;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect ipdom.(a) b
    else intersect a ipdom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> n then begin
          let processed =
            List.filter (fun p -> rpo_index.(p) >= 0 && ipdom.(p) >= 0) rpreds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let nd = List.fold_left intersect first rest in
            if ipdom.(b) <> nd then begin
              ipdom.(b) <- nd;
              changed := true
            end
        end)
      rpo
  done;
  { ipdom; num_blocks = n }

let ipdom t b =
  let p = t.ipdom.(b) in
  if p < 0 || p >= t.num_blocks then None else Some p

let postdominates t a b =
  if t.ipdom.(b) < 0 then false
  else begin
    let rec walk x steps =
      if steps > t.num_blocks + 2 then false
      else if x = a then true
      else if x = t.num_blocks || t.ipdom.(x) < 0 then false
      else walk t.ipdom.(x) (steps + 1)
    in
    walk b 0
  end
