(** Def-use chains over register instances.

    An {e instance} is one definition site together with every read it
    reaches — the paper's "register instance" that the allocator places
    in the hierarchy (Fig. 7).  Reads reached by several definitions
    (values merged at hammock join points, Fig. 10(c)) link those
    definitions into a shared {e group}: either every definition of the
    group targets the same ORF entry, or the merged reads fall back to
    the MRF. *)

type read = {
  read_instr : int;  (** reading instruction id *)
  slot : int;        (** operand slot index: 0 = A, 1 = B, 2 = C *)
}

type instance = {
  def : int;            (** defining instruction id *)
  reg : Ir.Reg.t;
  reads : read list;    (** layout order; may be empty (dead value) *)
  group : int;          (** instances sharing any read share a group id *)
}

type t

val compute : Ir.Kernel.t -> Reaching.t -> t

val instances : t -> instance list
(** All instances in layout order of their definitions. *)

val instance_of_def : t -> int -> instance option
(** Look up by defining instruction id. *)

val group_members : t -> int -> instance list
(** All instances in the given group. *)

val input_reads : t -> (Ir.Reg.t * read list) list
(** Reads with no reaching in-kernel definition, grouped by register:
    kernel inputs pre-loaded in the MRF.  These are candidates for
    read-operand allocation (paper Sec. 4.4). *)

val reads_of_instance_multi : t -> instance -> bool
(** [true] iff some read of this instance is also reached by another
    definition (i.e. the group is non-trivial for that read). *)
