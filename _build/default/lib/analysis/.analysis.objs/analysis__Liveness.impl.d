lib/analysis/liveness.ml: Array Cfg Ir List Option Util
