lib/analysis/liveness.mli: Cfg Ir
