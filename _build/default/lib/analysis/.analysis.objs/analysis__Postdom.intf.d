lib/analysis/postdom.mli: Cfg Ir
