lib/analysis/duchain.ml: Hashtbl Ir List Option Reaching
