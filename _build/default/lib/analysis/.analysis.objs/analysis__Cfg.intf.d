lib/analysis/cfg.mli: Ir
