lib/analysis/duchain.mli: Ir Reaching
