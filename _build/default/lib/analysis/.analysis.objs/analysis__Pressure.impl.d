lib/analysis/pressure.ml: Cfg Hashtbl Ir List Liveness Option
