lib/analysis/reaching.mli: Cfg Ir
