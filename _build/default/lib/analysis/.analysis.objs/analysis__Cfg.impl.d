lib/analysis/cfg.ml: Array Ir List
