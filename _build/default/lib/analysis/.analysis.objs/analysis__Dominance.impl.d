lib/analysis/dominance.ml: Array Cfg Ir List
