lib/analysis/dominance.mli: Cfg Ir
