lib/analysis/pressure.mli: Cfg Ir Liveness
