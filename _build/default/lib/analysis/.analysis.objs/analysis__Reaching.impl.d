lib/analysis/reaching.ml: Array Cfg Ir List Option Util
