lib/analysis/postdom.ml: Array Cfg Ir List
