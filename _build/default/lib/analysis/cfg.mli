(** Control-flow graph over a kernel's basic blocks. *)

type t = {
  num_blocks : int;
  succs : int list array;
  preds : int list array;
}

val of_kernel : Ir.Kernel.t -> t

val reachable : t -> bool array
(** Reachability from the entry (block 0). *)

val reverse_postorder : t -> int array
(** Reverse postorder of the blocks reachable from the entry. *)

val rpo_index : t -> int array
(** [rpo_index.(b)] is the position of block [b] in reverse postorder;
    [-1] for unreachable blocks. *)

val backward_edges : t -> (int * int) list
(** Layout-order backward edges [(src, dst)] with [dst <= src] — the
    paper's "backwards branch" notion (Sec. 4.1), which is defined on
    code layout, not on dominance. *)

val backward_targets : t -> bool array
(** [backward_targets.(b)] iff some backward edge targets [b]; such
    blocks must begin a new strand. *)
