(** Post-dominator tree, computed as dominance over the reversed CFG
    with a virtual exit joining all [Ret] blocks.

    Used by the SIMT divergence executor: a divergent branch's
    reconvergence point is the branch block's immediate post-dominator
    (the standard stack-based reconvergence of GPU hardware, implied by
    the paper's baseline SM of Sec. 2). *)

type t

val compute : Ir.Kernel.t -> Cfg.t -> t

val ipdom : t -> int -> int option
(** Immediate post-dominator block; [None] when the block exits the
    kernel directly or cannot reach an exit. *)

val postdominates : t -> int -> int -> bool
(** [postdominates t a b]: every path from [b] to the kernel exit
    passes through [a].  Reflexive. *)
