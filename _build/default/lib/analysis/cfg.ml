type t = {
  num_blocks : int;
  succs : int list array;
  preds : int list array;
}

let of_kernel (k : Ir.Kernel.t) =
  let num_blocks = Ir.Kernel.block_count k in
  let succs = Array.make num_blocks [] in
  let preds = Array.make num_blocks [] in
  Array.iter
    (fun (b : Ir.Block.t) ->
      let ss = Ir.Terminator.successors b.Ir.Block.term ~at:b.Ir.Block.label ~num_blocks in
      succs.(b.Ir.Block.label) <- ss;
      List.iter (fun s -> preds.(s) <- b.Ir.Block.label :: preds.(s)) ss)
    k.Ir.Kernel.blocks;
  Array.iteri (fun i ps -> preds.(i) <- List.rev ps) preds;
  { num_blocks; succs; preds }

let reachable t =
  let seen = Array.make t.num_blocks false in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter visit t.succs.(b)
    end
  in
  if t.num_blocks > 0 then visit 0;
  seen

let postorder t =
  let seen = Array.make t.num_blocks false in
  let order = ref [] in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter visit t.succs.(b);
      order := b :: !order
    end
  in
  if t.num_blocks > 0 then visit 0;
  (* [order] currently holds reverse postorder (last finished first). *)
  List.rev !order

let reverse_postorder t = Array.of_list (List.rev (postorder t))

let rpo_index t =
  let rpo = reverse_postorder t in
  let index = Array.make t.num_blocks (-1) in
  Array.iteri (fun i b -> index.(b) <- i) rpo;
  index

let backward_edges t =
  let acc = ref [] in
  for src = t.num_blocks - 1 downto 0 do
    List.iter (fun dst -> if dst <= src then acc := (src, dst) :: !acc) t.succs.(src)
  done;
  !acc

let backward_targets t =
  let targets = Array.make t.num_blocks false in
  List.iter (fun (_, dst) -> targets.(dst) <- true) (backward_edges t);
  targets
