(** Backward liveness over architectural registers.

    The RFC baseline uses this as the "static liveness information
    encoded in the program binary" that elides writebacks of dead
    values (paper Sec. 2.2); the allocator uses it for live-out tests
    at strand boundaries. *)

type t

val compute : Ir.Kernel.t -> Cfg.t -> t

val live_in : t -> int -> Ir.Reg.Set.t
(** Live registers at block entry. *)

val live_out : t -> int -> Ir.Reg.Set.t
(** Live registers at block exit. *)

val live_after_instr : t -> instr_id:int -> Ir.Reg.t -> bool
(** Is the register live immediately after the given instruction
    (i.e. might some path still read the value it holds)?  O(1):
    per-instruction sets are precomputed. *)
