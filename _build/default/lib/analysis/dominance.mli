(** Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

    Used by the allocator to decide read-operand safety: a later read
    may be served from the ORF only if the first read of the range
    dominates it, so the ORF copy is guaranteed to exist on every path
    (paper Sec. 4.4/4.5). *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry and unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive.
    [false] when either block is unreachable. *)

val instr_dominates : Ir.Kernel.t -> t -> int -> int -> bool
(** [instr_dominates k t i j]: does instruction [i] dominate
    instruction [j]?  Same block: layout order; otherwise block
    dominance. *)
