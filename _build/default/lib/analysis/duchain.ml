type read = { read_instr : int; slot : int }

type instance = {
  def : int;
  reg : Ir.Reg.t;
  reads : read list;
  group : int;
}

type t = {
  instance_list : instance list;
  by_def : (int, instance) Hashtbl.t;
  by_group : (int, instance list) Hashtbl.t;
  inputs : (Ir.Reg.t * read list) list;
  multi_read_defs : (int, unit) Hashtbl.t;  (* defs with a shared read *)
}

(* Union-find over definition ids. *)
module Uf = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find t x =
    match Hashtbl.find_opt t x with
    | None ->
      Hashtbl.add t x x;
      x
    | Some p when p = x -> x
    | Some p ->
      let root = find t p in
      Hashtbl.replace t x root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t rb ra
end

let compute (k : Ir.Kernel.t) (reaching : Reaching.t) =
  let reads_of_def : (int, read list) Hashtbl.t = Hashtbl.create 64 in
  let input_reads : (Ir.Reg.t, read list) Hashtbl.t = Hashtbl.create 16 in
  let uf = Uf.create () in
  let multi = Hashtbl.create 16 in
  Ir.Kernel.iter_instrs k (fun _ i ->
      List.iteri
        (fun slot r ->
          let read = { read_instr = i.Ir.Instr.id; slot } in
          match Reaching.reaching_before reaching ~instr_id:i.Ir.Instr.id r with
          | [] ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt input_reads r) in
            Hashtbl.replace input_reads r (read :: prev)
          | [ d ] ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt reads_of_def d) in
            Hashtbl.replace reads_of_def d (read :: prev)
          | d :: rest ->
            List.iter
              (fun d' ->
                Uf.union uf d d';
                Hashtbl.replace multi d' ())
              (d :: rest);
            Hashtbl.replace multi d ();
            List.iter
              (fun d' ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt reads_of_def d') in
                Hashtbl.replace reads_of_def d' (read :: prev))
              (d :: rest))
        i.Ir.Instr.srcs);
  let by_def = Hashtbl.create 64 in
  let by_group = Hashtbl.create 64 in
  let instance_list = ref [] in
  Ir.Kernel.iter_instrs k (fun _ i ->
      Option.iter
        (fun reg ->
          let def = i.Ir.Instr.id in
          let reads =
            Option.value ~default:[] (Hashtbl.find_opt reads_of_def def) |> List.rev
          in
          let group = Uf.find uf def in
          let inst = { def; reg; reads; group } in
          Hashtbl.add by_def def inst;
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_group group) in
          Hashtbl.replace by_group group (inst :: prev);
          instance_list := inst :: !instance_list)
        i.Ir.Instr.dst);
  Hashtbl.iter (fun g insts -> Hashtbl.replace by_group g (List.rev insts)) by_group;
  let inputs =
    Hashtbl.fold (fun r reads acc -> (r, List.rev reads) :: acc) input_reads []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    instance_list = List.rev !instance_list;
    by_def;
    by_group;
    inputs;
    multi_read_defs = multi;
  }

let instances t = t.instance_list
let instance_of_def t d = Hashtbl.find_opt t.by_def d
let group_members t g = Option.value ~default:[] (Hashtbl.find_opt t.by_group g)
let input_reads t = t.inputs
let reads_of_instance_multi t inst = Hashtbl.mem t.multi_read_defs inst.def
