(** Allocator configuration: hierarchy shape and enabled optimizations. *)

type lrf_mode =
  | No_lrf   (** two-level hierarchy: ORF + MRF *)
  | Unified  (** one LRF entry per thread (Sec. 3.2) *)
  | Split    (** one LRF bank per operand slot A/B/C (Sec. 3.2) *)

type t = {
  orf_entries : int;    (** ORF entries per thread, 1..8 (Table 3) *)
  lrf : lrf_mode;
  partial_ranges : bool;   (** Sec. 4.3 optimization *)
  read_operands : bool;    (** Sec. 4.4 optimization *)
  params : Energy.Params.t;
  orf_cost_entries : int option;
      (** When set, energy-savings decisions price ORF accesses as if
          the ORF had this many entries — used by the Sec. 7
          instruction-scheduling limit study ("an 8-entry ORF at
          3-entry cost"). *)
  mirror_mrf : bool;
      (** Force an MRF copy of every upper-level value.  Required by
          the Sec. 7 variable-ORF scheme: "there is always a MRF entry
          reserved for each ORF value", so a warp granted fewer entries
          than requested can fall back to the MRF. *)
}

val make :
  ?orf_entries:int ->
  ?lrf:lrf_mode ->
  ?partial_ranges:bool ->
  ?read_operands:bool ->
  ?params:Energy.Params.t ->
  ?orf_cost_entries:int ->
  ?mirror_mrf:bool ->
  unit ->
  t
(** Defaults: 3 ORF entries, split LRF, both optimizations on, paper
    parameters — the paper's most energy-efficient configuration
    (Sec. 6.4).
    @raise Invalid_argument if [orf_entries] is outside [1, 8]. *)

val cost_entries : t -> int
(** The Table-3 row used to price ORF accesses. *)

val lrf_banks : t -> int
(** 0, 1 or 3. *)

val pp : Format.formatter -> t -> unit
