lib/alloc/placement.mli: Ir
