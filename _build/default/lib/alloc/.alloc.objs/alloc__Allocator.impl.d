lib/alloc/allocator.ml: Analysis Array Config Context Energy Hashtbl Int Ir List Logs Occupancy Option Placement Savings Strand Util
