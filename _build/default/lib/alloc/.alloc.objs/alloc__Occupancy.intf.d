lib/alloc/occupancy.mli:
