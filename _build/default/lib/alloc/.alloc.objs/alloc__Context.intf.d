lib/alloc/context.mli: Analysis Ir Strand
