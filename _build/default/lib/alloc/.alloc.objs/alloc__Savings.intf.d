lib/alloc/savings.mli: Config Energy
