lib/alloc/config.mli: Energy Format
