lib/alloc/occupancy.ml: Array List Printf
