lib/alloc/config.ml: Energy Format Ir Option Printf
