lib/alloc/verify.ml: Analysis Array Config Context Ir List Placement Printf Strand
