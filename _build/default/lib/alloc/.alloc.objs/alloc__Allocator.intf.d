lib/alloc/allocator.mli: Config Context Placement
