lib/alloc/placement.ml: Array Ir List Option Printf
