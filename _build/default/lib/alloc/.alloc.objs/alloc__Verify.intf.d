lib/alloc/verify.mli: Config Context Placement
