lib/alloc/savings.ml: Config Energy List
