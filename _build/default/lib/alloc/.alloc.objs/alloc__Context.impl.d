lib/alloc/context.ml: Analysis Ir Strand
