(** The greedy energy-driven allocator (paper Sec. 4).

    Pipeline, per strand:

    + Build {e write units} from def-use instances: the value produced
      by a definition (or by a group of definitions merged at a join,
      Fig. 10(c)) together with the subset of its reads that are safe
      to serve from an upper level — same strand and must-defined on
      every path.  Unsafe reads stay in the MRF and force an MRF copy.
      Long-latency producers are excluded: their results go straight to
      the MRF (their consumers begin a new strand).
    + Build {e read units} (Sec. 4.4) from registers read in the strand
      whose reaching definitions all lie outside it (including kernel
      inputs): the first read stays in the MRF and fills an ORF entry;
      later reads that the first read dominates are served by the ORF.
    + Phase 1 (Sec. 4.6): allocate LRF-eligible write units to the LRF
      greedily by savings per occupied issue slot.  Eligibility:
      private producer, private covered consumers, 32-bit, and — in
      split mode — a single operand slot across all covered reads.
    + Phase 2: allocate the rest to the ORF by the same priority,
      iteratively shortening ranges that do not fit when partial-range
      allocation (Sec. 4.3) is enabled.

    The result is a {!Placement.t} mapping every operand to a level. *)

type stats = {
  write_units : int;      (** candidates considered *)
  read_units : int;
  lrf_allocated : int;
  orf_allocated : int;    (** full ranges (write + read units) *)
  partial_allocated : int;  (** ranges shortened before fitting *)
}

val run : Config.t -> Context.t -> Placement.t * stats

val place : Config.t -> Context.t -> Placement.t
(** [run] without the statistics. *)
