type t = {
  kernel : Ir.Kernel.t;
  cfg : Analysis.Cfg.t;
  dominance : Analysis.Dominance.t;
  liveness : Analysis.Liveness.t;
  reaching : Analysis.Reaching.t;
  duchain : Analysis.Duchain.t;
  partition : Strand.Partition.t;
  must_defined : Strand.Must_defined.t;
}

let create ?boundary_kinds kernel =
  let cfg = Analysis.Cfg.of_kernel kernel in
  let dominance = Analysis.Dominance.compute cfg in
  let liveness = Analysis.Liveness.compute kernel cfg in
  let reaching = Analysis.Reaching.compute kernel cfg in
  let duchain = Analysis.Duchain.compute kernel reaching in
  let partition = Strand.Partition.compute ?kinds:boundary_kinds kernel cfg reaching in
  let must_defined = Strand.Must_defined.compute kernel cfg partition in
  { kernel; cfg; dominance; liveness; reaching; duchain; partition; must_defined }
