(** Interval reservation over the entries of one upper-level structure
    (ORF or LRF) within one strand — the [orfEntry.available(begin,
    end)] test of paper Fig. 7.

    Positions are instruction ids (static issue slots).  Intervals are
    half-open [[first, last)]: operands are read before results are
    written within an instruction, so a value written at the slot where
    another value is last read may reuse its entry — this is what lets
    a dependence chain flow through a single LRF bank.  A write always
    occupies at least its own slot, so callers pass
    [last = max (last_read, first + 1)]. *)

type t

val create : entries:int -> t
(** @raise Invalid_argument if [entries < 0]. *)

val entries : t -> int

val available : t -> entry:int -> first:int -> last:int -> bool
(** Is [[first, last)] free on the entry?  [last] must be > [first]. *)

val reserve : t -> entry:int -> first:int -> last:int -> unit
(** @raise Invalid_argument if the interval overlaps an existing
    reservation on the entry or is empty. *)

val find_free : t -> width:int -> first:int -> last:int -> int option
(** Lowest entry index [e] such that entries [e .. e + width - 1] are
    all available over the interval (wide values occupy consecutive
    entries, Sec. 3.2). *)

val reserve_range : t -> entry:int -> width:int -> first:int -> last:int -> unit
