type t = {
  num_entries : int;
  reservations : (int * int) list array;  (* per entry, unordered disjoint intervals *)
}

let create ~entries =
  if entries < 0 then invalid_arg "Occupancy.create";
  { num_entries = entries; reservations = Array.make (max entries 1) [] }

let entries t = t.num_entries

(* Half-open interval overlap. *)
let overlaps (a1, a2) (b1, b2) = a1 < b2 && b1 < a2

let available t ~entry ~first ~last =
  entry >= 0 && entry < t.num_entries && first < last
  && List.for_all (fun iv -> not (overlaps (first, last) iv)) t.reservations.(entry)

let reserve t ~entry ~first ~last =
  if not (available t ~entry ~first ~last) then
    invalid_arg
      (Printf.sprintf "Occupancy.reserve: entry %d interval [%d, %d] unavailable" entry first last);
  t.reservations.(entry) <- (first, last) :: t.reservations.(entry)

let find_free t ~width ~first ~last =
  if width < 1 then invalid_arg "Occupancy.find_free: width < 1";
  let fits e =
    let rec all w = w = width || (available t ~entry:(e + w) ~first ~last && all (w + 1)) in
    all 0
  in
  let rec search e = if e + width > t.num_entries then None else if fits e then Some e else search (e + 1) in
  search 0

let reserve_range t ~entry ~width ~first ~last =
  for w = 0 to width - 1 do
    reserve t ~entry:(entry + w) ~first ~last
  done
