type level =
  | From_lrf of int
  | From_orf of int
  | From_mrf

type dest = {
  to_lrf : int option;
  to_orf : int option;
  to_mrf : bool;
}

type t = {
  dsts : dest option array;
  srcs : level array array;
  fills : (int * int) list array;
}

let mrf_only = { to_lrf = None; to_orf = None; to_mrf = true }

let baseline (k : Ir.Kernel.t) =
  let n = Ir.Kernel.instr_count k in
  let dsts = Array.make n None in
  let srcs = Array.make n [||] in
  let fills = Array.make n [] in
  Ir.Kernel.iter_instrs k (fun _ i ->
      let id = i.Ir.Instr.id in
      if Option.is_some i.Ir.Instr.dst then dsts.(id) <- Some mrf_only;
      srcs.(id) <- Array.make (List.length i.Ir.Instr.srcs) From_mrf);
  { dsts; srcs; fills }

let dest t ~instr = t.dsts.(instr)
let src t ~instr ~pos = t.srcs.(instr).(pos)
let fills_of t ~instr = t.fills.(instr)

let set_dest t ~instr d = t.dsts.(instr) <- Some d
let set_src t ~instr ~pos level = t.srcs.(instr).(pos) <- level
let add_fill t ~instr ~pos ~entry = t.fills.(instr) <- (pos, entry) :: t.fills.(instr)

let level_name = function
  | From_lrf b -> Printf.sprintf "LRF[%d]" b
  | From_orf e -> Printf.sprintf "ORF[%d]" e
  | From_mrf -> "MRF"

let check_shape (k : Ir.Kernel.t) t =
  let n = Ir.Kernel.instr_count k in
  if Array.length t.dsts <> n || Array.length t.srcs <> n || Array.length t.fills <> n then
    Error "placement arrays do not match the kernel"
  else begin
    let problem = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
    Ir.Kernel.iter_instrs k (fun _ i ->
        let id = i.Ir.Instr.id in
        (match t.dsts.(id), i.Ir.Instr.dst with
         | None, Some _ -> fail "instr %d: result without destination placement" id
         | Some _, None -> fail "instr %d: destination placement without result" id
         | None, None -> ()
         | Some d, Some _ ->
           if d.to_lrf = None && d.to_orf = None && not d.to_mrf then
             fail "instr %d: destination written nowhere" id;
           if d.to_lrf <> None && d.to_orf <> None then
             fail "instr %d: destination written to both LRF and ORF" id);
        if Array.length t.srcs.(id) <> List.length i.Ir.Instr.srcs then
          fail "instr %d: source placement arity mismatch" id);
    match !problem with None -> Ok () | Some msg -> Error msg
  end
