let upper_read_energy (cfg : Config.t) target dp =
  match target with
  | `Orf -> Energy.Model.read_energy cfg.Config.params ~orf_entries:(Config.cost_entries cfg) Energy.Model.Orf dp
  | `Lrf -> Energy.Model.read_energy cfg.Config.params ~orf_entries:1 Energy.Model.Lrf dp

let upper_write_energy (cfg : Config.t) target dp =
  match target with
  | `Orf -> Energy.Model.write_energy cfg.Config.params ~orf_entries:(Config.cost_entries cfg) Energy.Model.Orf dp
  | `Lrf -> Energy.Model.write_energy cfg.Config.params ~orf_entries:1 Energy.Model.Lrf dp

let mrf_read_energy (cfg : Config.t) dp =
  Energy.Model.read_energy cfg.Config.params ~orf_entries:1 Energy.Model.Mrf dp

let mrf_write_energy (cfg : Config.t) dp =
  Energy.Model.write_energy cfg.Config.params ~orf_entries:1 Energy.Model.Mrf dp

let write_unit cfg ~target ~producer_dp ~reads ~mrf_write_required =
  let read_savings =
    List.fold_left
      (fun acc dp -> acc +. (mrf_read_energy cfg dp -. upper_read_energy cfg target dp))
      0.0 reads
  in
  let savings = read_savings -. upper_write_energy cfg target producer_dp in
  if mrf_write_required then savings else savings +. mrf_write_energy cfg producer_dp

let read_unit cfg ~reads =
  match reads with
  | [] | [ _ ] -> neg_infinity
  | first_dp :: rest ->
    let read_savings =
      List.fold_left
        (fun acc dp -> acc +. (mrf_read_energy cfg dp -. upper_read_energy cfg `Orf dp))
        0.0 rest
    in
    (* The fill write is charged at the first consumer's datapath. *)
    read_savings -. upper_write_energy cfg `Orf first_dp

let priority ~savings ~first ~last = savings /. float_of_int (max 1 (last - first))
