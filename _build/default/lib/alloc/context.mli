(** All compiler analyses of one kernel, computed once and shared by
    the allocator, the verifier and the simulator. *)

type t = {
  kernel : Ir.Kernel.t;
  cfg : Analysis.Cfg.t;
  dominance : Analysis.Dominance.t;
  liveness : Analysis.Liveness.t;
  reaching : Analysis.Reaching.t;
  duchain : Analysis.Duchain.t;
  partition : Strand.Partition.t;
  must_defined : Strand.Must_defined.t;
}

val create : ?boundary_kinds:Strand.Partition.boundary_kinds -> Ir.Kernel.t -> t
(** [boundary_kinds] selects the strand-boundary model (default: the
    paper's full definition); the Sec. 7 limit studies relax it. *)
