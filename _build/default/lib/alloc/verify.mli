(** Placement soundness checker.

    Replays a {!Placement.t} abstractly over the CFG and verifies the
    compiler's contract:

    - an ORF/LRF source always reads an entry that holds the current
      value of that register on {e every} incoming path;
    - an MRF source always reads an up-to-date MRF copy (or a kernel
      input never written by the kernel);
    - ORF/LRF contents never survive a strand boundary;
    - the LRF is produced and consumed only by the private datapath,
      and in split mode only through the bank matching the operand
      slot;
    - long-latency results go to the MRF only;
    - fills read the filled register from the MRF in the same slot.

    Used both as a unit-test oracle and as a qcheck property over
    randomly generated kernels. *)

val check : Config.t -> Context.t -> Placement.t -> (unit, string list) result
