type lrf_mode = No_lrf | Unified | Split

type t = {
  orf_entries : int;
  lrf : lrf_mode;
  partial_ranges : bool;
  read_operands : bool;
  params : Energy.Params.t;
  orf_cost_entries : int option;
  mirror_mrf : bool;
}

let make ?(orf_entries = 3) ?(lrf = Split) ?(partial_ranges = true) ?(read_operands = true)
    ?(params = Energy.Params.default) ?orf_cost_entries ?(mirror_mrf = false) () =
  if orf_entries < 1 || orf_entries > Energy.Params.max_orf_entries then
    invalid_arg (Printf.sprintf "Alloc.Config.make: orf_entries = %d" orf_entries);
  { orf_entries; lrf; partial_ranges; read_operands; params; orf_cost_entries; mirror_mrf }

let cost_entries t = Option.value ~default:t.orf_entries t.orf_cost_entries

let lrf_banks t = match t.lrf with No_lrf -> 0 | Unified -> 1 | Split -> Ir.Instr.num_slots

let pp fmt t =
  let lrf = match t.lrf with No_lrf -> "none" | Unified -> "unified" | Split -> "split" in
  Format.fprintf fmt "orf=%d lrf=%s partial=%b read-op=%b" t.orf_entries lrf t.partial_ranges
    t.read_operands
