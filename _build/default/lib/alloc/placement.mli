(** Per-instruction operand placement annotations — the compiler's
    output, corresponding to the level bits the paper encodes in the
    register namespace (Sec. 3.1).

    A destination may be written to the LRF {e or} the ORF (never
    both, Sec. 4.6), optionally combined with an MRF write for
    persistent values.  A source names the level (and bank/entry, kept
    for verification) it reads from.  Read-operand allocation
    (Sec. 4.4) additionally records {e fills}: a source read from the
    MRF whose value is simultaneously written into an ORF entry for
    later reads. *)

type level =
  | From_lrf of int  (** LRF bank (0 unified; operand slot when split) *)
  | From_orf of int  (** ORF entry index *)
  | From_mrf

type dest = {
  to_lrf : int option;  (** LRF bank *)
  to_orf : int option;  (** ORF entry *)
  to_mrf : bool;
}

type t = {
  dsts : dest option array;        (** by instr id; [None] iff no result *)
  srcs : level array array;        (** by instr id, per source position *)
  fills : (int * int) list array;  (** by instr id: (source position, ORF entry) *)
}

val mrf_only : dest

val baseline : Ir.Kernel.t -> t
(** Everything in the MRF — the paper's single-level baseline. *)

val dest : t -> instr:int -> dest option
val src : t -> instr:int -> pos:int -> level
val fills_of : t -> instr:int -> (int * int) list

val set_dest : t -> instr:int -> dest -> unit
val set_src : t -> instr:int -> pos:int -> level -> unit
val add_fill : t -> instr:int -> pos:int -> entry:int -> unit

val check_shape : Ir.Kernel.t -> t -> (unit, string) result
(** Structural checks only (verification proper is {!Verify}): array
    shapes match the kernel; every result has a destination with at
    least one target and not LRF+ORF together. *)

val level_name : level -> string
