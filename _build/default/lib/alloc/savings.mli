(** Energy-savings functions driving allocation priorities.

    [write_unit] is paper Fig. 6 (generalized to the LRF and to
    per-consumer wire energies): moving a produced value's covered
    reads from the MRF to the upper level saves the read-energy delta
    per read, costs one upper-level write, and — when the value is not
    needed from the MRF — additionally saves the MRF write.

    [read_unit] is paper Fig. 9: for a value that already lives in the
    MRF, the first read still comes from the MRF (and fills the ORF),
    so only the remaining reads save energy, and the ORF write is pure
    overhead. *)

val write_unit :
  Config.t ->
  target:[ `Orf | `Lrf ] ->
  producer_dp:Energy.Model.datapath ->
  reads:Energy.Model.datapath list ->
  mrf_write_required:bool ->
  float
(** [reads] lists the consuming datapath of each read that the upper
    level would serve. *)

val read_unit : Config.t -> reads:Energy.Model.datapath list -> float
(** [reads] lists every read of the range including the first
    (MRF-served) one; callers guarantee at least two. *)

val priority : savings:float -> first:int -> last:int -> float
(** Savings divided by the static issue slots the value would occupy
    (Fig. 7's weighting). *)
