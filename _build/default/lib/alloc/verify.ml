(* Abstract cell contents: Bottom = unknown/stale. *)
type cell = Bottom | Holds of Ir.Reg.t

type state = {
  orf : cell array;
  lrf : cell array;
  mrf_ok : bool array;  (* per register: MRF copy is current *)
}

let equal_state a b = a.orf = b.orf && a.lrf = b.lrf && a.mrf_ok = b.mrf_ok

let copy_state s = { orf = Array.copy s.orf; lrf = Array.copy s.lrf; mrf_ok = Array.copy s.mrf_ok }

let meet_into ~dst src =
  let meet_cells d s = Array.iteri (fun i c -> if d.(i) <> c then d.(i) <- Bottom) s in
  meet_cells dst.orf src.orf;
  meet_cells dst.lrf src.lrf;
  Array.iteri (fun i ok -> if not ok then dst.mrf_ok.(i) <- false) src.mrf_ok

let check (config : Config.t) (ctx : Context.t) (placement : Placement.t) =
  let k = ctx.Context.kernel in
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match Placement.check_shape k placement with
   | Ok () -> ()
   | Error msg -> error "%s" msg);
  let nb = Ir.Kernel.block_count k in
  let nr = k.Ir.Kernel.num_regs in
  let orf_entries = config.Config.orf_entries in
  let lrf_banks = Config.lrf_banks config in
  let fresh_state () =
    {
      orf = Array.make (max orf_entries 1) Bottom;
      lrf = Array.make (max lrf_banks 1) Bottom;
      mrf_ok = Array.make nr true;  (* kernel inputs live in the MRF *)
    }
  in
  let entry_states : state option array = Array.make nb None in
  entry_states.(0) <- Some (fresh_state ());
  let invalidate_holding cells r =
    Array.iteri (fun i c -> if c = Holds r then cells.(i) <- Bottom) cells
  in
  let clear cells = Array.fill cells 0 (Array.length cells) Bottom in
  (* Transfer one instruction; [report] enables error emission (only on
     the final pass so the fixpoint iterations stay silent). *)
  let transfer ~report st (i : Ir.Instr.t) =
    let id = i.Ir.Instr.id in
    if Strand.Partition.starts_strand ctx.Context.partition id then begin
      clear st.orf;
      clear st.lrf
    end;
    let fills = Placement.fills_of placement ~instr:id in
    List.iteri
      (fun pos r ->
        match Placement.src placement ~instr:id ~pos with
        | Placement.From_mrf ->
          if report && not st.mrf_ok.(r) then
            error "instr %d slot %d: MRF read of %s but the MRF copy is stale" id pos
              (Ir.Reg.to_string r)
        | Placement.From_orf e ->
          if e < 0 || e >= orf_entries then begin
            if report then error "instr %d slot %d: ORF entry %d out of range" id pos e
          end
          else if st.orf.(e) <> Holds r && report then
            error "instr %d slot %d: ORF[%d] does not hold %s on every path" id pos e
              (Ir.Reg.to_string r)
        | Placement.From_lrf b ->
          if Ir.Op.is_shared_datapath i.Ir.Instr.op && report then
            error "instr %d slot %d: shared-datapath LRF read" id pos;
          if b < 0 || b >= lrf_banks then begin
            if report then error "instr %d slot %d: LRF bank %d out of range" id pos b
          end
          else begin
            if config.Config.lrf = Config.Split && b <> pos && report then
              error "instr %d slot %d: split LRF read from bank %d" id pos b;
            if st.lrf.(b) <> Holds r && report then
              error "instr %d slot %d: LRF[%d] does not hold %s on every path" id pos b
                (Ir.Reg.to_string r)
          end)
      i.Ir.Instr.srcs;
    (* Fills execute with the instruction's MRF reads. *)
    List.iter
      (fun (pos, e) ->
        match List.nth_opt i.Ir.Instr.srcs pos with
        | None -> if report then error "instr %d: fill on missing slot %d" id pos
        | Some r ->
          (match Placement.src placement ~instr:id ~pos with
           | Placement.From_mrf -> ()
           | Placement.From_orf _ | Placement.From_lrf _ ->
             if report then error "instr %d slot %d: fill source is not an MRF read" id pos);
          if report && not st.mrf_ok.(r) then
            error "instr %d slot %d: fill of %s from a stale MRF copy" id pos (Ir.Reg.to_string r);
          if e >= 0 && e < orf_entries then st.orf.(e) <- Holds r
          else if report then error "instr %d: fill into ORF entry %d out of range" id e)
      fills;
    (* Destination. *)
    match i.Ir.Instr.dst, Placement.dest placement ~instr:id with
    | None, _ -> ()
    | Some _, None -> if report then error "instr %d: missing destination placement" id
    | Some d, Some dest ->
      invalidate_holding st.orf d;
      invalidate_holding st.lrf d;
      st.mrf_ok.(d) <- dest.Placement.to_mrf;
      if Ir.Instr.is_long_latency i
         && (dest.Placement.to_lrf <> None || dest.Placement.to_orf <> None || not dest.Placement.to_mrf)
         && report
      then error "instr %d: long-latency result must be written to the MRF only" id;
      (match dest.Placement.to_orf with
       | Some e when e >= 0 && e < orf_entries -> st.orf.(e) <- Holds d
       | Some e -> if report then error "instr %d: destination ORF entry %d out of range" id e
       | None -> ());
      (match dest.Placement.to_lrf with
       | Some b when b >= 0 && b < lrf_banks ->
         if Ir.Op.is_shared_datapath i.Ir.Instr.op && report then
           error "instr %d: shared-datapath LRF write" id;
         st.lrf.(b) <- Holds d
       | Some b -> if report then error "instr %d: destination LRF bank %d out of range" id b
       | None -> ())
  in
  let transfer_block ~report l st =
    Array.iter (fun i -> transfer ~report st i) k.Ir.Kernel.blocks.(l).Ir.Block.instrs;
    st
  in
  (* Fixpoint over block-entry states. *)
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < 10 * (nb + 1) do
    changed := false;
    incr guard;
    for l = 0 to nb - 1 do
      match entry_states.(l) with
      | None -> ()
      | Some entry ->
        let out = transfer_block ~report:false l (copy_state entry) in
        List.iter
          (fun s ->
            match entry_states.(s) with
            | None ->
              entry_states.(s) <- Some (copy_state out);
              changed := true
            | Some prev ->
              let merged = copy_state prev in
              meet_into ~dst:merged out;
              if not (equal_state merged prev) then begin
                entry_states.(s) <- Some merged;
                changed := true
              end)
          ctx.Context.cfg.Analysis.Cfg.succs.(l)
    done
  done;
  (* Final reporting pass. *)
  for l = 0 to nb - 1 do
    match entry_states.(l) with
    | None -> ()  (* unreachable *)
    | Some entry -> ignore (transfer_block ~report:true l (copy_state entry))
  done;
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)
