(** Deterministic splittable pseudo-random number generator.

    All stochastic behaviour in the library (branch outcomes, random
    kernel generation) flows through this module so that every
    experiment is exactly reproducible from a seed.  The generator is
    SplitMix64, which is adequate for workload synthesis and has a
    trivially splittable state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val weighted_pick : t -> (float * 'a) list -> 'a
(** Choice proportional to the given non-negative weights.
    @raise Invalid_argument if all weights are zero or the list is
    empty. *)

val hash2 : int -> int -> int
(** [hash2 a b] is a deterministic non-negative hash of the pair, used
    for stateless per-(warp, site) branch decisions. *)
