type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row > List.length t.columns then
    invalid_arg "Table.add_row: row longer than header";
  t.rows <- row :: t.rows

let add_float_row t label ?(decimals = 3) xs =
  add_row t (label :: List.map (fun x -> Printf.sprintf "%.*f" decimals x) xs)

let rows_in_order t = List.rev t.rows

let pad s width = s ^ String.make (max 0 (width - String.length s)) ' '

let render t =
  let ncols = List.length t.columns in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    let rows = t.columns :: rows_in_order t in
    List.fold_left (fun acc row -> max acc (String.length (cell row i))) 0 rows
  in
  let widths = List.init ncols width in
  let render_row row =
    List.mapi (fun i w -> pad (cell row i) w) widths |> String.concat "  "
  in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    String.sub s 0 !n
  in
  let header = rtrim (render_row t.columns) in
  let sep = String.make (String.length header) '-' in
  let body = List.map (fun r -> rtrim (render_row r)) (rows_in_order t) in
  String.concat "\n" ((t.title :: header :: sep :: body) @ [])

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv t =
  let line row = String.concat "," (List.map escape_csv row) in
  String.concat "\n" (line t.columns :: List.map line (rows_in_order t))
