type t = { bits : Bytes.t; capacity : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity

let copy t = { bits = Bytes.copy t.bits; capacity = t.capacity }

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0, %d)" i t.capacity)

let set t i =
  check t i;
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl bit)))

let clear t i =
  check t i;
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl bit) land 0xff))

let mem t i =
  check t i;
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl bit) <> 0

let check_same a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let binop_into f ~dst src =
  check_same dst src;
  let changed = ref false in
  for byte = 0 to Bytes.length dst.bits - 1 do
    let d = Char.code (Bytes.unsafe_get dst.bits byte) in
    let s = Char.code (Bytes.unsafe_get src.bits byte) in
    let r = f d s land 0xff in
    if r <> d then begin
      changed := true;
      Bytes.unsafe_set dst.bits byte (Char.chr r)
    end
  done;
  !changed

let union_into ~dst src = binop_into (fun d s -> d lor s) ~dst src
let inter_into ~dst src = binop_into (fun d s -> d land s) ~dst src
let diff_into ~dst src = binop_into (fun d s -> d land lnot s) ~dst src

let equal a b = a.capacity = b.capacity && Bytes.equal a.bits b.bits

let is_empty t = Bytes.for_all (fun c -> c = '\000') t.bits

let fill_all t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\255';
  (* Zero the bits beyond capacity so equal/is_empty stay meaningful. *)
  for i = t.capacity to (Bytes.length t.bits * 8) - 1 do
    let byte = i lsr 3 and bit = i land 7 in
    Bytes.unsafe_set t.bits byte
      (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl bit) land 0xff))
  done

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let iter t f =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let count t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n
