(** Mutable binary max-heap priority queue.

    The allocator (paper Fig. 7) pops register instances in decreasing
    order of energy savings per occupied issue slot; this heap provides
    that ordering.  Ties are broken by insertion order so allocation is
    deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty queue.  [cmp a b > 0] means [a] has higher
    priority than [b]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the highest-priority element. *)

val peek : 'a t -> 'a option

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Destructive: drains the queue in priority order. *)
