type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Higher cmp first; on ties, earlier insertion first. *)
let higher t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c > 0 else a.seq < b.seq

let grow t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = max 8 (2 * cap) in
    let fresh = Array.make ncap t.data.(0) in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if higher t t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && higher t t.data.(l) t.data.(!best) then best := l;
  if r < t.size && higher t t.data.(r) t.data.(!best) then best := r;
  if !best <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!best);
    t.data.(!best) <- tmp;
    sift_down t !best
  end

let push t v =
  let e = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 8 e else grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top.value
  end

let peek t = if t.size = 0 then None else Some t.data.(0).value

let of_list ~cmp xs =
  let t = create ~cmp in
  List.iter (push t) xs;
  t

let to_sorted_list t =
  let rec go acc = match pop t with None -> List.rev acc | Some v -> go (v :: acc) in
  go []
