type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, as in the standard doubles-from-int64 recipe. *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted_pick t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted_pick: no positive weight";
  let x = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted_pick: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 choices

let hash2 a b =
  let h = mix64 (Int64.add (Int64.of_int a) (Int64.mul (Int64.of_int b) golden_gamma)) in
  Int64.to_int (Int64.shift_right_logical h 2)
