lib/util/stats.ml: Float Hashtbl List
