lib/util/prng.mli:
