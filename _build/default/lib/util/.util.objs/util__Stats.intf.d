lib/util/stats.mli:
