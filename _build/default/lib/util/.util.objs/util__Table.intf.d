lib/util/table.mli:
