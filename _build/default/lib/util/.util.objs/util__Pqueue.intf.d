lib/util/pqueue.mli:
