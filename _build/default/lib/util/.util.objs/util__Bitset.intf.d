lib/util/bitset.mli:
