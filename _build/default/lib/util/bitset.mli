(** Fixed-size mutable bitsets for dataflow analyses. *)

type t

val create : int -> t
(** All-zero bitset of the given capacity. *)

val capacity : t -> int
val copy : t -> t
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val union_into : dst:t -> t -> bool
(** [union_into ~dst src] ors [src] into [dst]; returns [true] if [dst]
    changed.  Capacities must match. *)

val inter_into : dst:t -> t -> bool
(** Ands [src] into [dst]; returns [true] if [dst] changed. *)

val diff_into : dst:t -> t -> bool
(** Removes [src]'s bits from [dst]; returns [true] if [dst] changed. *)

val equal : t -> t -> bool
val is_empty : t -> bool
val fill_all : t -> unit
val clear_all : t -> unit
val iter : t -> (int -> unit) -> unit
val elements : t -> int list
val count : t -> int
