(** Plain-text table renderer for experiment reports.

    Every experiment driver renders its paper table/figure through this
    module so that `rfh <figure>` output is uniform and diffable. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption line and column headers. *)

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty.
    @raise Invalid_argument if longer than the header. *)

val add_float_row : t -> string -> ?decimals:int -> float list -> unit
(** [add_float_row t label xs] renders [label] then each float. *)

val render : t -> string
(** Render with aligned columns and a separator under the header. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val csv : t -> string
(** Comma-separated rendering (header + rows, no title). *)
