type t = {
  name : string;
  blocks : Block.t array;
  num_regs : int;
  instrs : Instr.t array;
  block_of_instr : int array;
}

let validate ~name ~blocks ~num_regs =
  let err fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "kernel %s: %s" name s)) fmt in
  let num_blocks = Array.length blocks in
  if num_blocks = 0 then err "no blocks"
  else begin
    let next_id = ref 0 in
    let problem = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
    Array.iteri
      (fun bi (b : Block.t) ->
        if b.Block.label <> bi then fail "block %d has label %d" bi b.Block.label;
        Array.iter
          (fun (i : Instr.t) ->
            if i.Instr.id <> !next_id then
              fail "instruction id %d out of order (expected %d)" i.Instr.id !next_id;
            incr next_id;
            let check_reg r =
              if r < 0 || r >= num_regs then fail "instr %d: register %d out of range" i.Instr.id r
            in
            List.iter check_reg i.Instr.srcs;
            Option.iter check_reg i.Instr.dst)
          b.Block.instrs;
        let check_target l =
          if l < 0 || l >= num_blocks then fail "block %d: branch target BB%d out of range" bi l
        in
        (match b.Block.term with
         | Terminator.Fallthrough ->
           if bi = num_blocks - 1 then fail "last block falls through"
         | Terminator.Jump l -> check_target l
         | Terminator.Branch { target; behavior } ->
           check_target target;
           if bi = num_blocks - 1 then fail "last block's branch falls through";
           (match behavior with
            | Terminator.Loop n ->
              if n < 1 then fail "block %d: loop trip count %d < 1" bi n;
              if target > bi then fail "block %d: Loop behaviour on a forward branch" bi
            | Terminator.Taken_with_prob p ->
              if p < 0.0 || p > 1.0 then fail "block %d: branch probability %f" bi p
            | Terminator.Always_taken | Terminator.Never_taken -> ());
           let n = Array.length b.Block.instrs in
           let ends_with_bra =
             n > 0 && (b.Block.instrs.(n - 1)).Instr.op = Op.Bra
           in
           if not ends_with_bra then fail "block %d: conditional branch without a Bra instruction" bi
         | Terminator.Ret -> ()))
      blocks;
    match !problem with None -> Ok () | Some msg -> err "%s" msg
  end

let make ~name ~blocks ~num_regs =
  (match validate ~name ~blocks ~num_regs with
   | Ok () -> ()
   | Error msg -> invalid_arg msg);
  let instrs =
    Array.concat (Array.to_list (Array.map (fun (b : Block.t) -> b.Block.instrs) blocks))
  in
  let block_of_instr = Array.make (Array.length instrs) 0 in
  Array.iter
    (fun (b : Block.t) ->
      Array.iter (fun (i : Instr.t) -> block_of_instr.(i.Instr.id) <- b.Block.label) b.Block.instrs)
    blocks;
  { name; blocks; num_regs; instrs; block_of_instr }

let instr_count t = Array.length t.instrs
let block_count t = Array.length t.blocks
let instr t id = t.instrs.(id)
let block_of t id = t.block_of_instr.(id)

let iter_instrs t f =
  Array.iter (fun b -> Array.iter (fun i -> f b i) b.Block.instrs) t.blocks

let fold_instrs t ~init ~f =
  Array.fold_left
    (fun acc b -> Array.fold_left (fun acc i -> f acc b i) acc b.Block.instrs)
    init t.blocks

let pp fmt t =
  Format.fprintf fmt ".kernel %s  (%d regs, %d instrs)@\n" t.name t.num_regs
    (Array.length t.instrs);
  Array.iter (fun b -> Block.pp fmt b) t.blocks

let to_string t = Format.asprintf "%a" pp t
