(** Opcodes of the PTX subset.

    Each opcode executes on one of the SM's function-unit classes
    (paper Fig. 1(c)): the per-lane private ALUs, or the shared
    datapath (SFU for transcendentals, MEM port, TEX unit).  The unit
    class determines operand wire distances in the energy model and
    whether results may live in the LRF (private datapath only,
    Sec. 3.2). *)

type unit_class =
  | Alu  (** private per-lane ALU: full warp-wide throughput *)
  | Sfu  (** special function unit (shared datapath) *)
  | Mem  (** load/store port, incl. shared memory (shared datapath) *)
  | Tex  (** texture unit (shared datapath) *)

type t =
  (* integer ALU *)
  | Iadd | Isub | Imul | Imad | Iand | Ior | Ixor | Ishl | Ishr
  | Imin | Imax | Setp | Sel | Cvt | Mov | Bra
  (* floating-point ALU *)
  | Fadd | Fsub | Fmul | Ffma | Fmin | Fmax
  (* SFU transcendentals *)
  | Rcp | Sqrt | Rsqrt | Sin | Cos | Lg2 | Ex2
  (* memory *)
  | Ld_global | St_global | Ld_shared | St_shared | Atom_global
  (* texture *)
  | Tex_fetch

val unit_class : t -> unit_class

val is_long_latency : t -> bool
(** Long-latency operations (global/texture memory, Table 2's 400-cycle
    classes).  Their consumers terminate strands (Sec. 4.1) and their
    results are written directly to the MRF, never to the ORF/LRF. *)

val has_result : t -> bool
(** [false] for stores and branches. *)

val latency : t -> int
(** Pipeline latency in cycles, Table 2. *)

val issue_cycles : t -> int
(** Cycles the unit is busy issuing one warp instruction.  The private
    ALUs run at full warp-wide throughput (1); the shared datapath runs
    at reduced throughput (4), matching Table 2's 32 bytes/cycle shared
    bandwidth for 128-byte warp accesses. *)

val mnemonic : t -> string
val pp : Format.formatter -> t -> unit
val is_shared_datapath : t -> bool
(** [true] iff the unit class is SFU, MEM or TEX. *)
