let all_ops =
  [
    Op.Iadd; Op.Isub; Op.Imul; Op.Imad; Op.Iand; Op.Ior; Op.Ixor; Op.Ishl; Op.Ishr;
    Op.Imin; Op.Imax; Op.Setp; Op.Sel; Op.Cvt; Op.Mov; Op.Bra;
    Op.Fadd; Op.Fsub; Op.Fmul; Op.Ffma; Op.Fmin; Op.Fmax;
    Op.Rcp; Op.Sqrt; Op.Rsqrt; Op.Sin; Op.Cos; Op.Lg2; Op.Ex2;
    Op.Ld_global; Op.St_global; Op.Ld_shared; Op.St_shared; Op.Atom_global;
    Op.Tex_fetch;
  ]

let op_of_mnemonic =
  let table = Hashtbl.create 64 in
  List.iter (fun op -> Hashtbl.replace table (Op.mnemonic op) op) all_ops;
  fun m -> Hashtbl.find_opt table m

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type line =
  | L_kernel of string
  | L_label of string
  | L_instr of Op.t * Width.t * string option * string list  (* dst, srcs *)
  | L_ret
  | L_jmp of string
  | L_br of string * string * Terminator.behavior  (* pred, target, behavior *)

let strip_comment s =
  let cut_at s pat =
    match String.index_opt s pat.[0] with
    | None -> s
    | Some _ ->
      (* find the first occurrence of the 1- or 2-char pattern *)
      let len = String.length s in
      let plen = String.length pat in
      let rec go i =
        if i + plen > len then s
        else if String.sub s i plen = pat then String.sub s 0 i
        else go (i + 1)
      in
      go 0
  in
  cut_at (cut_at s "//") "#"

let tokens_of s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun t -> t <> "")

let parse_behavior line = function
  | "always" -> Terminator.Always_taken
  | "never" -> Terminator.Never_taken
  | tok ->
    (match String.index_opt tok '=' with
     | Some i ->
       let key = String.sub tok 0 i in
       let value = String.sub tok (i + 1) (String.length tok - i - 1) in
       (match key with
        | "loop" ->
          (match int_of_string_opt value with
           | Some n when n >= 1 -> Terminator.Loop n
           | Some _ | None -> fail line "invalid loop trip count %S" value)
        | "p" ->
          (match float_of_string_opt value with
           | Some p when p >= 0.0 && p <= 1.0 -> Terminator.Taken_with_prob p
           | Some _ | None -> fail line "invalid branch probability %S" value)
        | _ -> fail line "unknown branch attribute %S" key)
     | None -> fail line "expected loop=N, p=F, always or never; got %S" tok)

let parse_mnemonic line m =
  let op_name, width =
    if Filename.check_suffix m ".wide64" then (Filename.chop_suffix m ".wide64", Width.W64)
    else if Filename.check_suffix m ".wide128" then (Filename.chop_suffix m ".wide128", Width.W128)
    else (m, Width.W32)
  in
  match op_of_mnemonic op_name with
  | Some op -> (op, width)
  | None -> fail line "unknown mnemonic %S" op_name

let classify_line lineno raw =
  let s = String.trim (strip_comment raw) in
  if s = "" then None
  else if String.length s > 8 && String.sub s 0 8 = ".kernel " then
    Some (L_kernel (String.trim (String.sub s 8 (String.length s - 8))))
  else if String.length s > 1 && s.[String.length s - 1] = ':' then begin
    let name = String.trim (String.sub s 0 (String.length s - 1)) in
    if name = "" then fail lineno "empty label";
    Some (L_label name)
  end
  else begin
    match tokens_of s with
    | [] -> None
    | [ "ret" ] -> Some L_ret
    | [ "jmp"; target ] -> Some (L_jmp target)
    | "jmp" :: _ -> fail lineno "jmp takes exactly one label"
    | [ "br"; pred; target; attr ] -> Some (L_br (pred, target, parse_behavior lineno attr))
    | "br" :: _ -> fail lineno "expected: br %%pred, label, (loop=N | p=F | always | never)"
    | mnemonic :: operands ->
      let op, width = parse_mnemonic lineno mnemonic in
      List.iter
        (fun o ->
          if String.length o < 2 || o.[0] <> '%' then
            fail lineno "operand %S is not a register (%%name)" o)
        operands;
      if Op.has_result op then begin
        match operands with
        | dst :: srcs -> Some (L_instr (op, width, Some dst, srcs))
        | [] -> fail lineno "%s needs a destination" (Op.mnemonic op)
      end
      else Some (L_instr (op, width, None, operands))
  end

let parse ~name text =
  try
    let lines = String.split_on_char '\n' text in
    let b = Builder.create name in
    let kernel_name = ref name in
    let regs : (string, Reg.t) Hashtbl.t = Hashtbl.create 32 in
    let labels : (string, Builder.label) Hashtbl.t = Hashtbl.create 16 in
    let reg_of r =
      match Hashtbl.find_opt regs r with
      | Some x -> x
      | None ->
        let x = Builder.fresh b in
        Hashtbl.add regs r x;
        x
    in
    let label_of l =
      match Hashtbl.find_opt labels l with
      | Some x -> x
      | None ->
        let x = Builder.new_label b in
        Hashtbl.add labels l x;
        x
    in
    (* The builder auto-opens an entry block; track whether the current
       block has been terminated so labels insert fallthroughs. *)
    let block_open = ref true in
    let emitted_anything = ref false in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        match classify_line lineno raw with
        | None -> ()
        | Some (L_kernel n) ->
          if !emitted_anything then fail lineno ".kernel must precede all code";
          kernel_name := n
        | Some (L_label l) ->
          if not !emitted_anything && not (Hashtbl.mem labels l) then
            (* A leading label names the entry block itself. *)
            Hashtbl.add labels l (Builder.entry_label b)
          else Builder.start_block b (label_of l);
          block_open := true;
          emitted_anything := true
        | Some line_content ->
          if not !block_open then
            fail lineno "code after a terminator; add a label to start a new block";
          emitted_anything := true;
          (match line_content with
           | L_kernel _ | L_label _ -> assert false
           | L_instr (op, width, dst, srcs) ->
             let srcs = List.map reg_of srcs in
             (match dst with
              | Some d ->
                (match srcs with
                 | [] -> Builder.op0_into b op ~width ~dst:(reg_of d) ()
                 | [ x ] -> Builder.op1_into b op ~width ~dst:(reg_of d) x
                 | [ x; y ] -> Builder.op2_into b op ~width ~dst:(reg_of d) x y
                 | [ x; y; z ] -> Builder.op3_into b op ~width ~dst:(reg_of d) x y z
                 | _ -> fail lineno "too many source operands")
              | None ->
                (match op, srcs with
                 | (Op.St_global | Op.St_shared), [ addr; value ] ->
                   Builder.store b op ~addr ~value
                 | (Op.St_global | Op.St_shared), _ -> fail lineno "stores take addr, value"
                 | Op.Bra, _ -> fail lineno "write bra as: br %%pred, label, attr"
                 | _, _ -> fail lineno "%s cannot be used here" (Op.mnemonic op)))
           | L_ret ->
             Builder.ret b;
             block_open := false
           | L_jmp target ->
             Builder.jump b (label_of target);
             block_open := false
           | L_br (pred, target, behavior) ->
             Builder.branch b ~pred:(reg_of pred) ~target:(label_of target) behavior;
             block_open := false))
      lines;
    (* Rebuild under the directive-provided name if it differs. *)
    let k = Builder.finalize b in
    if !kernel_name = name then Ok k
    else Ok (Kernel.make ~name:!kernel_name ~blocks:k.Kernel.blocks ~num_regs:k.Kernel.num_regs)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let parse_exn ~name text =
  match parse ~name text with Ok k -> k | Error msg -> invalid_arg ("Asm.parse: " ^ msg)

let to_source (k : Kernel.t) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf ".kernel %s\n" k.Kernel.name;
  let label l = Printf.sprintf "bb%d" l in
  let reg r = Printf.sprintf "%%r%d" r in
  Array.iter
    (fun (blk : Block.t) ->
      Printf.bprintf buf "%s:\n" (label blk.Block.label);
      let n = Array.length blk.Block.instrs in
      let emit_instr (i : Instr.t) =
        let width_suffix =
          match i.Instr.width with
          | Width.W32 -> ""
          | Width.W64 -> ".wide64"
          | Width.W128 -> ".wide128"
        in
        let operands =
          (match i.Instr.dst with Some d -> [ reg d ] | None -> [])
          @ List.map reg i.Instr.srcs
        in
        Printf.bprintf buf "  %-12s %s\n"
          (Op.mnemonic i.Instr.op ^ width_suffix)
          (String.concat ", " operands)
      in
      let body, bra_pred =
        match blk.Block.term with
        | Terminator.Branch _ when n > 0 && (blk.Block.instrs.(n - 1)).Instr.op = Op.Bra ->
          ( Array.sub blk.Block.instrs 0 (n - 1),
            match (blk.Block.instrs.(n - 1)).Instr.srcs with
            | [ p ] -> Some p
            | _ -> None )
        | _ -> (blk.Block.instrs, None)
      in
      Array.iter emit_instr body;
      (match blk.Block.term with
       | Terminator.Fallthrough -> ()
       | Terminator.Ret -> Buffer.add_string buf "  ret\n"
       | Terminator.Jump l -> Printf.bprintf buf "  jmp %s\n" (label l)
       | Terminator.Branch { target; behavior } ->
         let attr =
           match behavior with
           | Terminator.Always_taken -> "always"
           | Terminator.Never_taken -> "never"
           | Terminator.Loop t -> Printf.sprintf "loop=%d" t
           | Terminator.Taken_with_prob p -> Printf.sprintf "p=%g" p
         in
         let pred = match bra_pred with Some p -> reg p | None -> "%r0" in
         Printf.bprintf buf "  br %s, %s, %s\n" pred (label target) attr))
    k.Kernel.blocks;
  Buffer.contents buf
