type t = {
  id : int;
  op : Op.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  width : Width.t;
}

let num_slots = 3

let slot_name = function
  | 0 -> "A"
  | 1 -> "B"
  | 2 -> "C"
  | n -> invalid_arg (Printf.sprintf "Instr.slot_name: %d" n)

let make ~id ~op ~dst ~srcs ~width =
  if List.length srcs > num_slots then
    invalid_arg "Instr.make: more than 3 source operands";
  (match dst, Op.has_result op with
   | Some _, false ->
     invalid_arg (Printf.sprintf "Instr.make: %s carries a destination" (Op.mnemonic op))
   | None, true ->
     invalid_arg (Printf.sprintf "Instr.make: %s lacks a destination" (Op.mnemonic op))
   | Some _, true | None, false -> ());
  { id; op; dst; srcs; width }

let reads t = t.srcs
let defines t = t.dst
let is_long_latency t = Op.is_long_latency t.op

let pp fmt t =
  let pp_dst fmt = function
    | Some d -> Format.fprintf fmt "%a, " Reg.pp d
    | None -> ()
  in
  Format.fprintf fmt "[%3d] %-10s %a%a" t.id (Op.mnemonic t.op) pp_dst t.dst
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") Reg.pp)
    t.srcs

let to_string t = Format.asprintf "%a" pp t
