(** Block terminators and deterministic branch behaviours.

    The paper reconstructs warp interleavings from execution-frequency
    traces of the real applications (Sec. 5.1).  Our substitute attaches
    a deterministic behaviour to every conditional branch so the
    simulator replays the same control-flow stream for a given seed:
    loops run a fixed trip count, data-dependent branches draw from a
    per-(warp, site, visit) hash.

    A conditional branch's predicate read is modelled as an explicit
    [Bra] instruction at the end of the block (so it participates in
    liveness, allocation and register-file traffic like any other
    operand); the terminator itself only describes the CFG shape. *)

type behavior =
  | Always_taken
  | Never_taken
  | Loop of int
      (** [Loop n] on a backward branch: taken [n - 1] consecutive
          times, then falls through (and the trip counter resets, so
          re-entering the loop repeats the pattern).  [n >= 1]. *)
  | Taken_with_prob of float
      (** Taken with this probability, decided by a deterministic hash
          of (warp seed, site, visit count). *)

type t =
  | Fallthrough           (** continue to the next block in layout *)
  | Jump of int           (** unconditional jump to block label *)
  | Branch of { target : int; behavior : behavior }
      (** conditional: taken -> [target], else fall through *)
  | Ret                   (** kernel exit *)

val successors : t -> at:int -> num_blocks:int -> int list
(** Successor block labels of a block labelled [at]. *)

val is_backward : t -> at:int -> bool
(** [true] iff some successor label is [<= at] (a backward branch in
    layout order — the strand-ending condition of Sec. 4.1). *)

val pp : Format.formatter -> t -> unit
