lib/ir/instr.mli: Format Op Reg Width
