lib/ir/builder.ml: Array Block Hashtbl Instr Kernel List Op Printf Reg Terminator Width
