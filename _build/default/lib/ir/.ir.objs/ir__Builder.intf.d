lib/ir/builder.mli: Kernel Op Reg Terminator Width
