lib/ir/asm.ml: Array Block Buffer Builder Filename Hashtbl Instr Kernel List Op Printf Reg String Terminator Width
