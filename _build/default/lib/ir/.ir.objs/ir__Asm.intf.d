lib/ir/asm.mli: Kernel
