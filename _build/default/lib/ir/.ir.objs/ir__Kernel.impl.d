lib/ir/kernel.ml: Array Block Format Instr List Op Option Printf Terminator
