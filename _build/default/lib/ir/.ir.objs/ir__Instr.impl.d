lib/ir/instr.ml: Format List Op Printf Reg Width
