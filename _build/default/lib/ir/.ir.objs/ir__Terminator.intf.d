lib/ir/terminator.mli: Format
