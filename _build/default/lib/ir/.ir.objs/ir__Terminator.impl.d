lib/ir/terminator.ml: Format
