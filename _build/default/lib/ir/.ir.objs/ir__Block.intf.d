lib/ir/block.mli: Format Instr Terminator
