lib/ir/reg.mli: Format Map Set
