lib/ir/kernel.mli: Block Format Instr
