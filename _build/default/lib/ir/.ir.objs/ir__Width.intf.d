lib/ir/width.mli: Format
