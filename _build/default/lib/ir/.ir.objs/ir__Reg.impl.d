lib/ir/reg.ml: Format Int Map Printf Set
