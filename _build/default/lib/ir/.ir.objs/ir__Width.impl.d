lib/ir/width.ml: Format
