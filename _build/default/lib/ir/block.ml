type t = {
  label : int;
  instrs : Instr.t array;
  term : Terminator.t;
}

let first_id t = if Array.length t.instrs = 0 then None else Some t.instrs.(0).Instr.id

let last_id t =
  let n = Array.length t.instrs in
  if n = 0 then None else Some t.instrs.(n - 1).Instr.id

let pp fmt t =
  Format.fprintf fmt "BB%d:@\n" t.label;
  Array.iter (fun i -> Format.fprintf fmt "  %a@\n" Instr.pp i) t.instrs;
  Format.fprintf fmt "  %a@\n" Terminator.pp t.term
