(** Instructions.

    [id] is the instruction's position in kernel layout order (assigned
    by {!Builder.finalize}); it doubles as the "static instruction issue
    slot" used by the allocator's occupancy intervals (paper Fig. 7).

    Source registers are listed in operand-slot order A, B, C — the
    slot matters for the split-LRF design, which has one bank per slot
    (Sec. 3.2). *)

type t = {
  id : int;             (** dense layout position within the kernel *)
  op : Op.t;
  dst : Reg.t option;   (** at most one result register (value base) *)
  srcs : Reg.t list;    (** operand slots A, B, C in order; length <= 3 *)
  width : Width.t;      (** width of the result value *)
}

val make : id:int -> op:Op.t -> dst:Reg.t option -> srcs:Reg.t list -> width:Width.t -> t
(** @raise Invalid_argument if more than 3 sources, or a store/branch
    carries a destination, or a result-producing opcode lacks one. *)

val reads : t -> Reg.t list
(** Alias for [srcs]. *)

val defines : t -> Reg.t option

val num_slots : int
(** Number of operand slots (3: A, B, C). *)

val slot_name : int -> string
(** ["A"], ["B"], ["C"]. *)

val is_long_latency : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
