type behavior =
  | Always_taken
  | Never_taken
  | Loop of int
  | Taken_with_prob of float

type t =
  | Fallthrough
  | Jump of int
  | Branch of { target : int; behavior : behavior }
  | Ret

let successors t ~at ~num_blocks =
  let next = if at + 1 < num_blocks then [ at + 1 ] else [] in
  match t with
  | Fallthrough -> next
  | Jump l -> [ l ]
  | Branch { target; _ } -> target :: next
  | Ret -> []

let is_backward t ~at =
  match t with
  | Fallthrough | Ret -> false
  | Jump l -> l <= at
  | Branch { target; _ } -> target <= at

let pp_behavior fmt = function
  | Always_taken -> Format.pp_print_string fmt "always"
  | Never_taken -> Format.pp_print_string fmt "never"
  | Loop n -> Format.fprintf fmt "loop(%d)" n
  | Taken_with_prob p -> Format.fprintf fmt "p=%.2f" p

let pp fmt = function
  | Fallthrough -> Format.pp_print_string fmt "fallthrough"
  | Jump l -> Format.fprintf fmt "jmp BB%d" l
  | Branch { target; behavior } -> Format.fprintf fmt "br BB%d [%a]" target pp_behavior behavior
  | Ret -> Format.pp_print_string fmt "ret"
