(** Textual kernel syntax: a PTX-flavoured assembly for writing
    kernels without the OCaml builder, plus a round-trippable printer.

    {v
    .kernel saxpy
    entry:
      mov        %i
      shl.b32    %off, %i
      add.s32    %addr, %base, %off
      ld.global  %x, %addr
      fma.f32    %acc, %a, %x, %acc
      st.global  %addr, %acc
      setp       %p, %i
      br %p, entry, loop=8
    exit:
      ret
    v}

    - Lines hold one directive, label, instruction or terminator;
      [//] and [#] start comments.
    - Registers are [%name]; names map to dense ids in order of first
      appearance.  Registers read before any write are kernel inputs.
    - Mnemonics are {!Op.mnemonic} spellings; append [.wide64] /
      [.wide128] for 64/128-bit results.
    - Terminators: [ret], [jmp label], and
      [br %pred, label, (loop=N | p=F | always | never)] — the latter
      emits the predicate-reading [bra] instruction and the conditional
      terminator together.
    - A label line ([name:]) starts a new block; falling into a label
      without a terminator is an implicit fallthrough. *)

val parse : name:string -> string -> (Kernel.t, string) result
(** Errors carry 1-based line numbers. *)

val parse_exn : name:string -> string -> Kernel.t
(** @raise Invalid_argument on parse errors. *)

val to_source : Kernel.t -> string
(** Print in the syntax accepted by {!parse}; [parse (to_source k)]
    yields a kernel with identical structure. *)
