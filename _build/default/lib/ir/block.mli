(** Basic blocks: a label (= index in the kernel's block array), a
    straight-line instruction sequence and a terminator. *)

type t = {
  label : int;
  instrs : Instr.t array;
  term : Terminator.t;
}

val first_id : t -> int option
(** Id of the first instruction, if any. *)

val last_id : t -> int option

val pp : Format.formatter -> t -> unit
