(** Operand widths of the PTX subset.

    PTX supports 64- and 128-bit values stored across multiple 32-bit
    architectural registers (paper Sec. 3.2); wide values occupy
    [words] consecutive ORF entries when allocated. *)

type t = W32 | W64 | W128

val words : t -> int
(** Number of 32-bit registers a value of this width occupies. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
