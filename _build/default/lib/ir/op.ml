type unit_class = Alu | Sfu | Mem | Tex

type t =
  | Iadd | Isub | Imul | Imad | Iand | Ior | Ixor | Ishl | Ishr
  | Imin | Imax | Setp | Sel | Cvt | Mov | Bra
  | Fadd | Fsub | Fmul | Ffma | Fmin | Fmax
  | Rcp | Sqrt | Rsqrt | Sin | Cos | Lg2 | Ex2
  | Ld_global | St_global | Ld_shared | St_shared | Atom_global
  | Tex_fetch

let unit_class = function
  | Iadd | Isub | Imul | Imad | Iand | Ior | Ixor | Ishl | Ishr
  | Imin | Imax | Setp | Sel | Cvt | Mov | Bra
  | Fadd | Fsub | Fmul | Ffma | Fmin | Fmax -> Alu
  | Rcp | Sqrt | Rsqrt | Sin | Cos | Lg2 | Ex2 -> Sfu
  | Ld_global | St_global | Ld_shared | St_shared | Atom_global -> Mem
  | Tex_fetch -> Tex

let is_long_latency = function
  | Ld_global | Atom_global | Tex_fetch -> true
  | Iadd | Isub | Imul | Imad | Iand | Ior | Ixor | Ishl | Ishr
  | Imin | Imax | Setp | Sel | Cvt | Mov | Bra
  | Fadd | Fsub | Fmul | Ffma | Fmin | Fmax
  | Rcp | Sqrt | Rsqrt | Sin | Cos | Lg2 | Ex2
  | St_global | Ld_shared | St_shared -> false

let has_result = function
  | St_global | St_shared | Bra -> false
  | _ -> true

(* Table 2: ALU 8, SFU 20, shared memory 20, DRAM 400, texture 400. *)
let latency op =
  match unit_class op with
  | Alu -> 8
  | Sfu -> 20
  | Mem -> (match op with Ld_global | St_global | Atom_global -> 400 | _ -> 20)
  | Tex -> 400

let issue_cycles op = match unit_class op with Alu -> 1 | Sfu | Mem | Tex -> 4

let mnemonic = function
  | Iadd -> "add.s32" | Isub -> "sub.s32" | Imul -> "mul.s32" | Imad -> "mad.s32"
  | Iand -> "and.b32" | Ior -> "or.b32" | Ixor -> "xor.b32"
  | Ishl -> "shl.b32" | Ishr -> "shr.b32"
  | Imin -> "min.s32" | Imax -> "max.s32"
  | Setp -> "setp" | Sel -> "selp" | Cvt -> "cvt" | Mov -> "mov" | Bra -> "bra"
  | Fadd -> "add.f32" | Fsub -> "sub.f32" | Fmul -> "mul.f32" | Ffma -> "fma.f32"
  | Fmin -> "min.f32" | Fmax -> "max.f32"
  | Rcp -> "rcp.f32" | Sqrt -> "sqrt.f32" | Rsqrt -> "rsqrt.f32"
  | Sin -> "sin.f32" | Cos -> "cos.f32" | Lg2 -> "lg2.f32" | Ex2 -> "ex2.f32"
  | Ld_global -> "ld.global" | St_global -> "st.global"
  | Ld_shared -> "ld.shared" | St_shared -> "st.shared"
  | Atom_global -> "atom.global" | Tex_fetch -> "tex"

let pp fmt t = Format.pp_print_string fmt (mnemonic t)

let is_shared_datapath op = match unit_class op with Alu -> false | Sfu | Mem | Tex -> true
