(** Imperative kernel builder.

    Typical use:
    {[
      let b = Builder.create "saxpy" in
      let x = Builder.op1 b Op.Ld_global addr in        (* entry block is open *)
      let head = Builder.new_label b in
      Builder.start_block b head;
      ...
      Builder.branch b ~pred ~target:head (Terminator.Loop 16);
      ...
      Builder.ret b;
      Builder.finalize b
    ]}

    Blocks are laid out in the order they are started; labels may be
    created ahead of placement for forward branches.  Instruction ids
    are assigned in layout order by {!finalize}. *)

type t

type label
(** Abstract block label, resolved at {!finalize} time. *)

val create : string -> t
(** New builder with the entry block already open. *)

val fresh : t -> Reg.t
(** Fresh 32-bit virtual register. *)

val new_label : t -> label
(** Allocate a label to be placed later (forward-branch targets). *)

val entry_label : t -> label
(** The label of the entry block the builder opened at {!create}
    (lets a textual front-end name the entry block). *)

val start_block : t -> label -> unit
(** Close the current block (implicit fallthrough if it has no
    terminator yet) and start emitting into a new block placed here.
    @raise Invalid_argument if the label was already placed. *)

val here : t -> label
(** [new_label] + [start_block] in one step. *)

(** {2 Instruction emission}

    The [opN] emitters create and return a fresh destination register;
    the [_into] variants write an existing register (needed for hammock
    both-sides definitions and loop-carried updates). *)

val op0 : t -> Op.t -> ?width:Width.t -> unit -> Reg.t
val op1 : t -> Op.t -> ?width:Width.t -> Reg.t -> Reg.t
val op2 : t -> Op.t -> ?width:Width.t -> Reg.t -> Reg.t -> Reg.t
val op3 : t -> Op.t -> ?width:Width.t -> Reg.t -> Reg.t -> Reg.t -> Reg.t

val op0_into : t -> Op.t -> ?width:Width.t -> dst:Reg.t -> unit -> unit
val op1_into : t -> Op.t -> ?width:Width.t -> dst:Reg.t -> Reg.t -> unit
val op2_into : t -> Op.t -> ?width:Width.t -> dst:Reg.t -> Reg.t -> Reg.t -> unit
val op3_into : t -> Op.t -> ?width:Width.t -> dst:Reg.t -> Reg.t -> Reg.t -> Reg.t -> unit

val store : t -> Op.t -> addr:Reg.t -> value:Reg.t -> unit
(** Emit a store ([St_global]/[St_shared]): reads, no destination. *)

(** {2 Terminators} — each closes the current block. *)

val jump : t -> label -> unit

val branch : t -> pred:Reg.t -> target:label -> Terminator.behavior -> unit
(** Emits the predicate-reading [Bra] instruction then the conditional
    terminator. *)

val ret : t -> unit

val finalize : t -> Kernel.t
(** Closes the current block with [Ret] if it has no terminator,
    resolves labels and validates.
    @raise Invalid_argument if a label was never placed or the kernel
    is malformed. *)
