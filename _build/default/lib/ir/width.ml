type t = W32 | W64 | W128

let words = function W32 -> 1 | W64 -> 2 | W128 -> 4

let to_string = function W32 -> "b32" | W64 -> "b64" | W128 -> "b128"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal a b = a = b
