(** Kernels: a named array of basic blocks in layout order.

    Instruction ids are dense and increase in layout order across the
    whole kernel, so [instrs.(id)] and interval arithmetic over ids are
    both valid.  Block 0 is the entry. *)

type t = private {
  name : string;
  blocks : Block.t array;
  num_regs : int;          (** registers are [0 .. num_regs - 1] *)
  instrs : Instr.t array;  (** flattened, indexed by instruction id *)
  block_of_instr : int array;  (** block label of each instruction id *)
}

val make : name:string -> blocks:Block.t array -> num_regs:int -> t
(** Flattens, checks well-formedness and builds the id maps.
    @raise Invalid_argument on malformed kernels (see {!validate}). *)

val validate : name:string -> blocks:Block.t array -> num_regs:int -> (unit, string) result
(** Checks: non-empty; instruction ids dense in layout order; register
    operands within range; branch/jump targets within range; the last
    block does not fall through; a [Branch] terminator with a [Loop]
    behaviour is a backward branch; every [Branch]-terminated block ends
    with a [Bra] instruction. *)

val instr_count : t -> int
val block_count : t -> int

val instr : t -> int -> Instr.t
(** By id. *)

val block_of : t -> int -> int
(** Block label containing the given instruction id. *)

val iter_instrs : t -> (Block.t -> Instr.t -> unit) -> unit
(** Layout order. *)

val fold_instrs : t -> init:'a -> f:('a -> Block.t -> Instr.t -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string
