(** Architectural (virtual) registers.

    The code reaching the allocator is pseudo-SSA PTX: registers are
    usually defined once but may be redefined on both sides of hammocks
    and around loops (paper Sec. 4.2, Fig. 10).  Register identity is a
    dense integer so analyses can use arrays. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
(** Rendered PTX-style, e.g. ["%r12"]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
