type label = int

(* A block under construction: terminators still reference label handles. *)
type proto_term =
  | P_fallthrough
  | P_jump of label
  | P_branch of { target : label; behavior : Terminator.behavior }
  | P_ret

type proto_block = {
  handle : label;
  mutable rev_instrs : (Op.t * Reg.t option * Reg.t list * Width.t) list;
  mutable term : proto_term option;
}

type t = {
  name : string;
  mutable next_reg : int;
  mutable next_label : int;
  mutable placed : proto_block list;  (* reverse placement order *)
  mutable current : proto_block option;
}

let create name =
  let entry = { handle = 0; rev_instrs = []; term = None } in
  { name; next_reg = 0; next_label = 1; placed = [ entry ]; current = Some entry }

let fresh t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let new_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let entry_label (_ : t) = 0

let start_block t handle =
  if List.exists (fun b -> b.handle = handle) t.placed then
    invalid_arg (Printf.sprintf "Builder.start_block: label %d already placed" handle);
  (match t.current with
   | Some b when b.term = None -> b.term <- Some P_fallthrough
   | Some _ | None -> ());
  let b = { handle; rev_instrs = []; term = None } in
  t.placed <- b :: t.placed;
  t.current <- Some b

let here t =
  let l = new_label t in
  start_block t l;
  l

let current_open t =
  match t.current with
  | Some b when b.term = None -> b
  | Some _ -> invalid_arg "Builder: emitting after a terminator; start a new block first"
  | None -> invalid_arg "Builder: no open block"

let emit t op dst srcs width =
  let b = current_open t in
  b.rev_instrs <- (op, dst, srcs, width) :: b.rev_instrs

let with_dst t op ?(width = Width.W32) srcs =
  let d = fresh t in
  emit t op (Some d) srcs width;
  d

let op0 t op ?width () = with_dst t op ?width []
let op1 t op ?width a = with_dst t op ?width [ a ]
let op2 t op ?width a b = with_dst t op ?width [ a; b ]
let op3 t op ?width a b c = with_dst t op ?width [ a; b; c ]

let op0_into t op ?(width = Width.W32) ~dst () = emit t op (Some dst) [] width
let op1_into t op ?(width = Width.W32) ~dst a = emit t op (Some dst) [ a ] width
let op2_into t op ?(width = Width.W32) ~dst a b = emit t op (Some dst) [ a; b ] width
let op3_into t op ?(width = Width.W32) ~dst a b c = emit t op (Some dst) [ a; b; c ] width

let store t op ~addr ~value =
  (match op with
   | Op.St_global | Op.St_shared -> ()
   | _ -> invalid_arg "Builder.store: not a store opcode");
  emit t op None [ addr; value ] Width.W32

let close_with t pterm =
  let b = current_open t in
  b.term <- Some pterm

let jump t target = close_with t (P_jump target)

let branch t ~pred ~target behavior =
  emit t Op.Bra None [ pred ] Width.W32;
  close_with t (P_branch { target; behavior })

let ret t = close_with t P_ret

let finalize t =
  (match t.current with
   | Some b when b.term = None -> b.term <- Some P_ret
   | Some _ | None -> ());
  let blocks_in_order = List.rev t.placed in
  let index_of_handle = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.add index_of_handle b.handle i) blocks_in_order;
  let resolve handle =
    match Hashtbl.find_opt index_of_handle handle with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Builder.finalize: label %d never placed" handle)
  in
  let next_id = ref 0 in
  let build_block i (pb : proto_block) : Block.t =
    let instrs =
      List.rev pb.rev_instrs
      |> List.map (fun (op, dst, srcs, width) ->
             let id = !next_id in
             incr next_id;
             Instr.make ~id ~op ~dst ~srcs ~width)
      |> Array.of_list
    in
    let term =
      match pb.term with
      | None -> assert false
      | Some P_fallthrough -> Terminator.Fallthrough
      | Some (P_jump l) -> Terminator.Jump (resolve l)
      | Some (P_branch { target; behavior }) ->
        Terminator.Branch { target = resolve target; behavior }
      | Some P_ret -> Terminator.Ret
    in
    { Block.label = i; instrs; term }
  in
  let blocks = Array.of_list (List.mapi build_block blocks_in_order) in
  Kernel.make ~name:t.name ~blocks ~num_regs:t.next_reg
