(** Chip-level dynamic-power arithmetic (paper Secs. 6.4 and 6.5).

    The paper maps register-file energy savings to SM- and chip-level
    numbers with the high-level GPU power model of its prior work: the
    register file system is 15–20% of SM dynamic power, and a 54% RF
    saving corresponds to 8.3% of SM dynamic power and 5.8% of
    chip-wide dynamic power; instruction fetch/decode is ~10% of
    chip-wide dynamic power and scales linearly with instruction
    bits. *)

type model = {
  rf_fraction_of_sm : float;     (** RF system share of SM dynamic power *)
  sm_fraction_of_chip : float;   (** SM share of chip dynamic power *)
  fetch_decode_fraction : float; (** fetch+decode share of chip power *)
  baseline_instruction_bits : int;
}

val paper : model
(** Calibrated so the paper's published correspondences hold:
    54% RF saving = 8.3% SM = 5.8% chip; fetch/decode 10% of chip. *)

val sm_saving : model -> rf_saving:float -> float
(** SM-level dynamic-power saving for a given RF-energy saving. *)

val chip_saving : model -> rf_saving:float -> float

val encoding_overhead : model -> extra_bits:int -> float
(** Chip-level cost of widening every instruction by [extra_bits]
    (linear fetch/decode growth). *)

val net_chip_saving : model -> rf_saving:float -> extra_bits:int -> float
