type t = {
  mrf_read : float;
  mrf_write : float;
  orf_read : float array;
  orf_write : float array;
  lrf_read : float;
  lrf_write : float;
  wire_pj_per_mm_32b : float;
  lanes_per_access : int;
  dist_mrf_private : float;
  dist_orf_private : float;
  dist_lrf_private : float;
  dist_mrf_shared : float;
  dist_orf_shared : float;
  rfc_tag_read : float;
  rfc_tag_write : float;
}

let max_orf_entries = 8

let default =
  {
    mrf_read = 8.0;
    mrf_write = 11.0;
    (* Table 3: per-128-bit ORF access energy for 1..8 entries/thread. *)
    orf_read = [| 0.7; 1.2; 1.2; 1.9; 2.0; 2.0; 2.4; 3.4 |];
    orf_write = [| 2.0; 3.8; 4.4; 6.1; 6.0; 6.7; 7.7; 10.9 |];
    lrf_read = 0.7;
    lrf_write = 2.0;
    wire_pj_per_mm_32b = 1.9;
    lanes_per_access = 4;
    (* Table 4 distances in mm. *)
    dist_mrf_private = 1.0;
    dist_orf_private = 0.2;
    dist_lrf_private = 0.05;
    dist_mrf_shared = 1.0;
    dist_orf_shared = 0.4;
    rfc_tag_read = 0.2;
    rfc_tag_write = 0.2;
  }

let tagless = { default with rfc_tag_read = 0.0; rfc_tag_write = 0.0 }

let clamp_entries entries =
  if entries < 1 then 1 else if entries > max_orf_entries then max_orf_entries else entries

let orf_read_energy t ~entries = t.orf_read.(clamp_entries entries - 1)
let orf_write_energy t ~entries = t.orf_write.(clamp_entries entries - 1)

let wire_energy_128 t ~mm = float_of_int t.lanes_per_access *. t.wire_pj_per_mm_32b *. mm
