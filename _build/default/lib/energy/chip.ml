type model = {
  rf_fraction_of_sm : float;
  sm_fraction_of_chip : float;
  fetch_decode_fraction : float;
  baseline_instruction_bits : int;
}

(* 54% RF saving = 8.3% of SM dynamic power => RF is 8.3/54 = 15.4% of
   the SM, the middle of the paper's "15-20%" range; 8.3% SM = 5.8%
   chip => SMs are 5.8/8.3 = 70% of chip dynamic power. *)
let paper =
  {
    rf_fraction_of_sm = 0.083 /. 0.54;
    sm_fraction_of_chip = 0.058 /. 0.083;
    fetch_decode_fraction = 0.10;
    baseline_instruction_bits = 32;
  }

let sm_saving m ~rf_saving = rf_saving *. m.rf_fraction_of_sm

let chip_saving m ~rf_saving = sm_saving m ~rf_saving *. m.sm_fraction_of_chip

let encoding_overhead m ~extra_bits =
  m.fetch_decode_fraction
  *. (float_of_int extra_bits /. float_of_int m.baseline_instruction_bits)

let net_chip_saving m ~rf_saving ~extra_bits =
  chip_saving m ~rf_saving -. encoding_overhead m ~extra_bits
