(** Energy-model parameters: the paper's Tables 3 and 4.

    All access energies are per 128-bit access (one 4-thread bank
    operation); wire energy is per 32-bit value and millimetre, so a
    128-bit access moving to the 4 lanes of a cluster pays
    [lanes_per_access] times the per-32-bit wire energy.

    The RFC tag energies are not in the paper's tables (its RFC numbers
    come from the same synthesis flow); we charge a small per-access
    tag overhead on the hardware cache to reflect the tag storage and
    comparison the software scheme elides (Sec. 6.4 credits the SW
    scheme for exactly this).  Setting them to 0 recovers a
    tag-free RFC. *)

type t = {
  mrf_read : float;   (** 8 pJ / 128-bit read (Table 4) *)
  mrf_write : float;  (** 11 pJ / 128-bit write (Table 4) *)
  orf_read : float array;   (** Table 3, indexed by entries-per-thread - 1 (1..8) *)
  orf_write : float array;  (** Table 3 *)
  lrf_read : float;   (** 0.7 pJ (Table 4) *)
  lrf_write : float;  (** 2.0 pJ (Table 4) *)
  wire_pj_per_mm_32b : float;   (** 1.9 pJ/mm for 32 bits (Table 4) *)
  lanes_per_access : int;       (** 4 lanes share a 128-bit bank entry *)
  dist_mrf_private : float;     (** mm, Table 4 *)
  dist_orf_private : float;
  dist_lrf_private : float;
  dist_mrf_shared : float;
  dist_orf_shared : float;
  rfc_tag_read : float;   (** pJ per RFC lookup (hit or miss) *)
  rfc_tag_write : float;  (** pJ per RFC fill *)
}

val default : t
(** The paper's published values; RFC tag overhead 0.2/0.2 pJ. *)

val tagless : t
(** [default] with zero RFC tag overhead (for ablation). *)

val orf_read_energy : t -> entries:int -> float
(** Clamps entries to [1, 8] (Table 3's range). *)

val orf_write_energy : t -> entries:int -> float

val wire_energy_128 : t -> mm:float -> float
(** Wire energy for distributing one 128-bit access over [mm]. *)

val max_orf_entries : int
