(** Per-access energy, combining bank access energy with operand wire
    energy (Sec. 5.2).

    Reads pay the wire from the structure to the consuming datapath;
    writes pay the wire from the producing datapath to the structure.
    The LRF is wired only to the private ALUs (Sec. 3.2), so a
    shared-datapath LRF access is a programming error here. *)

type datapath = Private | Shared

type level =
  | Mrf
  | Orf  (** software-managed; energy depends on the configured size *)
  | Rfc  (** hardware cache: ORF-sized banks plus tag overhead *)
  | Lrf

val read_energy : Params.t -> orf_entries:int -> level -> datapath -> float
(** @raise Invalid_argument for [Lrf, Shared]. *)

val write_energy : Params.t -> orf_entries:int -> level -> datapath -> float
(** @raise Invalid_argument for [Lrf, Shared]. *)

val rfc_probe_energy : Params.t -> float
(** Tag-check energy of an RFC lookup that misses (no data read). *)

val access_only_read : Params.t -> orf_entries:int -> level -> float
(** Bank access energy without wire (for Fig. 14's access/wire split). *)

val access_only_write : Params.t -> orf_entries:int -> level -> float

val wire_only_read : Params.t -> level -> datapath -> float
val wire_only_write : Params.t -> level -> datapath -> float

val pp_level : Format.formatter -> level -> unit
val level_name : level -> string
