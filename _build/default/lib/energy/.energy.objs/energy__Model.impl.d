lib/energy/model.ml: Format Params
