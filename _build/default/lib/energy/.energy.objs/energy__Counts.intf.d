lib/energy/counts.mli: Format Model Params
