lib/energy/chip.ml:
