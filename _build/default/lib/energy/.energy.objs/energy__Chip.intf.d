lib/energy/chip.mli:
