lib/energy/model.mli: Format Params
