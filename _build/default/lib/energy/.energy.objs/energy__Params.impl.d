lib/energy/params.ml: Array
