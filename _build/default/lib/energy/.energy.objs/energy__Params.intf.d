lib/energy/params.mli:
