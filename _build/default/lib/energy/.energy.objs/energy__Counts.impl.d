lib/energy/counts.ml: Array Format List Model
