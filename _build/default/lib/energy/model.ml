type datapath = Private | Shared

type level = Mrf | Orf | Rfc | Lrf

let level_name = function Mrf -> "MRF" | Orf -> "ORF" | Rfc -> "RFC" | Lrf -> "LRF"

let pp_level fmt l = Format.pp_print_string fmt (level_name l)

let distance (p : Params.t) level datapath =
  match level, datapath with
  | Mrf, Private -> p.Params.dist_mrf_private
  | Mrf, Shared -> p.Params.dist_mrf_shared
  | (Orf | Rfc), Private -> p.Params.dist_orf_private
  | (Orf | Rfc), Shared -> p.Params.dist_orf_shared
  | Lrf, Private -> p.Params.dist_lrf_private
  | Lrf, Shared -> invalid_arg "Energy.Model: the LRF is not wired to the shared datapath"

let access_only_read (p : Params.t) ~orf_entries = function
  | Mrf -> p.Params.mrf_read
  | Orf -> Params.orf_read_energy p ~entries:orf_entries
  | Rfc -> Params.orf_read_energy p ~entries:orf_entries +. p.Params.rfc_tag_read
  | Lrf -> p.Params.lrf_read

let access_only_write (p : Params.t) ~orf_entries = function
  | Mrf -> p.Params.mrf_write
  | Orf -> Params.orf_write_energy p ~entries:orf_entries
  | Rfc -> Params.orf_write_energy p ~entries:orf_entries +. p.Params.rfc_tag_write
  | Lrf -> p.Params.lrf_write

let wire_only_read p level datapath = Params.wire_energy_128 p ~mm:(distance p level datapath)
let wire_only_write p level datapath = Params.wire_energy_128 p ~mm:(distance p level datapath)

let read_energy p ~orf_entries level datapath =
  access_only_read p ~orf_entries level +. wire_only_read p level datapath

let write_energy p ~orf_entries level datapath =
  access_only_write p ~orf_entries level +. wire_only_write p level datapath

let rfc_probe_energy (p : Params.t) = p.Params.rfc_tag_read
