let levels = [| Model.Mrf; Model.Orf; Model.Rfc; Model.Lrf |]
let num_levels = Array.length levels

let level_index = function Model.Mrf -> 0 | Model.Orf -> 1 | Model.Rfc -> 2 | Model.Lrf -> 3
let dp_index = function Model.Private -> 0 | Model.Shared -> 1

type t = {
  reads : int array;   (* level * datapath *)
  writes : int array;
  mutable probes : int;
}

let cell level dp = (level_index level * 2) + dp_index dp

let create () = { reads = Array.make (num_levels * 2) 0; writes = Array.make (num_levels * 2) 0; probes = 0 }

let copy t = { reads = Array.copy t.reads; writes = Array.copy t.writes; probes = t.probes }

let merge_into ~dst src =
  Array.iteri (fun i v -> dst.reads.(i) <- dst.reads.(i) + v) src.reads;
  Array.iteri (fun i v -> dst.writes.(i) <- dst.writes.(i) + v) src.writes;
  dst.probes <- dst.probes + src.probes

let add_read t level dp ?(n = 1) () = t.reads.(cell level dp) <- t.reads.(cell level dp) + n
let add_write t level dp ?(n = 1) () = t.writes.(cell level dp) <- t.writes.(cell level dp) + n
let add_rfc_probe t ?(n = 1) () = t.probes <- t.probes + n

let reads t level = t.reads.(cell level Model.Private) + t.reads.(cell level Model.Shared)
let writes t level = t.writes.(cell level Model.Private) + t.writes.(cell level Model.Shared)
let reads_dp t level dp = t.reads.(cell level dp)
let writes_dp t level dp = t.writes.(cell level dp)
let rfc_probes t = t.probes

let total_reads t = Array.fold_left ( + ) 0 t.reads
let total_writes t = Array.fold_left ( + ) 0 t.writes

type level_energy = { level : Model.level; access : float; wire : float }

type breakdown = { levels : level_energy list; total : float }

let energy params ~orf_entries t =
  let level_breakdown level =
    let acc = ref 0.0 and wire = ref 0.0 in
    List.iter
      (fun dp ->
        let r = float_of_int t.reads.(cell level dp) in
        let w = float_of_int t.writes.(cell level dp) in
        acc := !acc +. (r *. Model.access_only_read params ~orf_entries level)
               +. (w *. Model.access_only_write params ~orf_entries level);
        wire := !wire +. (r *. Model.wire_only_read params level dp)
                +. (w *. Model.wire_only_write params level dp))
      (match level with
       | Model.Lrf ->
         if t.reads.(cell Model.Lrf Model.Shared) <> 0
            || t.writes.(cell Model.Lrf Model.Shared) <> 0
         then invalid_arg "Energy.Counts: LRF accessed from the shared datapath";
         [ Model.Private ]
       | _ -> [ Model.Private; Model.Shared ]);
    if level = Model.Rfc then
      acc := !acc +. (float_of_int t.probes *. Model.rfc_probe_energy params);
    { level; access = !acc; wire = !wire }
  in
  let per_level = Array.to_list (Array.map level_breakdown levels) in
  let total = List.fold_left (fun s le -> s +. le.access +. le.wire) 0.0 per_level in
  { levels = per_level; total }

let pp fmt t =
  Array.iter
    (fun level ->
      let r = reads t level and w = writes t level in
      if r <> 0 || w <> 0 then
        Format.fprintf fmt "%s: %dR/%dW  " (Model.level_name level) r w)
    levels;
  if t.probes <> 0 then Format.fprintf fmt "RFC-probes: %d" t.probes
