lib/strand/must_defined.ml: Analysis Array Ir List Option Partition Util
