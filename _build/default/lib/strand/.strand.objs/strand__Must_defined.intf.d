lib/strand/must_defined.mli: Analysis Ir Partition
