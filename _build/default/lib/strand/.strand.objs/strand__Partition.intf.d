lib/strand/partition.mli: Analysis Ir
