lib/strand/partition.ml: Analysis Array Fun Ir List Option Util
