(** Must-defined-since-strand-start analysis.

    Decides the forward-branch cases of paper Fig. 10: a read may be
    served from the ORF/LRF only if, on {e every} within-strand path
    from the strand's start to the read, the register was written in
    the strand (so the upper-level copy is guaranteed to exist).  In
    Fig. 10(a) the value is written on one hammock side only — not
    must-defined at the merge, so the merge read goes to the MRF; in
    Fig. 10(c) both sides write it — must-defined, so the merge read
    can use the ORF entry shared by both definitions.

    The set of must-defined registers resets at every strand boundary.
    Like the pending analysis, a single pass in layout order is exact
    because all cycles pass through cleared backward-branch targets. *)

type t

val compute : Ir.Kernel.t -> Analysis.Cfg.t -> Partition.t -> t

val must_defined_before : t -> instr_id:int -> Ir.Reg.t -> bool
(** Was the register definitely written between the current strand's
    start and this instruction, on every path? *)
