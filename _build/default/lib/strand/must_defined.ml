type t = {
  kernel : Ir.Kernel.t;
  partition : Partition.t;
  entry_sets : Util.Bitset.t array;  (* per block: must-defined at block entry *)
}

let compute (k : Ir.Kernel.t) (cfg : Analysis.Cfg.t) (partition : Partition.t) =
  let nb = Ir.Kernel.block_count k in
  let nr = k.Ir.Kernel.num_regs in
  let reachable = Analysis.Cfg.reachable cfg in
  let entry_sets = Array.init nb (fun _ -> Util.Bitset.create nr) in
  let out_sets = Array.init nb (fun _ -> Util.Bitset.create nr) in
  let first_strand_instr b =
    (* Strand context entering block b: does its first instruction start
       a strand?  Empty blocks inherit the incoming context. *)
    match Ir.Block.first_id k.Ir.Kernel.blocks.(b) with
    | Some id -> Some id
    | None -> None
  in
  for l = 0 to nb - 1 do
    let b = k.Ir.Kernel.blocks.(l) in
    let entry = Util.Bitset.create nr in
    let boundary_at_start =
      match first_strand_instr l with
      | Some id -> Partition.starts_strand partition id
      | None -> false
    in
    if l > 0 && not boundary_at_start then begin
      let preds = List.filter (fun p -> reachable.(p)) cfg.Analysis.Cfg.preds.(l) in
      match preds with
      | [] -> ()
      | first :: rest ->
        ignore (Util.Bitset.union_into ~dst:entry out_sets.(first));
        List.iter (fun p -> ignore (Util.Bitset.inter_into ~dst:entry out_sets.(p))) rest
    end;
    entry_sets.(l) <- Util.Bitset.copy entry;
    let cur = entry in
    Array.iter
      (fun (i : Ir.Instr.t) ->
        if Partition.starts_strand partition i.Ir.Instr.id then Util.Bitset.clear_all cur;
        Option.iter (fun r -> Util.Bitset.set cur r) i.Ir.Instr.dst)
      b.Ir.Block.instrs;
    out_sets.(l) <- cur
  done;
  { kernel = k; partition; entry_sets }

let must_defined_before t ~instr_id r =
  let k = t.kernel in
  let block = Ir.Kernel.block_of k instr_id in
  let b = k.Ir.Kernel.blocks.(block) in
  let cur = Util.Bitset.copy t.entry_sets.(block) in
  let result = ref false in
  (try
     Array.iter
       (fun (i : Ir.Instr.t) ->
         if Partition.starts_strand t.partition i.Ir.Instr.id then Util.Bitset.clear_all cur;
         if i.Ir.Instr.id = instr_id then begin
           result := Util.Bitset.mem cur r;
           raise Exit
         end;
         Option.iter (fun x -> Util.Bitset.set cur x) i.Ir.Instr.dst)
       b.Ir.Block.instrs
   with Exit -> ());
  !result
