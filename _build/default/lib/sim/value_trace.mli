(** Dynamic register-value usage statistics (paper Fig. 2).

    Tracks every dynamic value written to the register file: how many
    times it is read before being overwritten (or the kernel ends), and
    — for values read exactly once — the dynamic instruction distance
    between production and that read. *)

type stats = {
  values_produced : int;
  read_counts : Util.Stats.histogram;
  (** key = number of reads of the dynamic value (0, 1, 2, ...) *)
  lifetimes_read_once : Util.Stats.histogram;
  (** key = dynamic instruction distance def->read, for read-once values *)
}

val collect :
  ?warps:int -> ?seed:int -> ?max_dynamic_per_warp:int -> Ir.Kernel.t -> stats

val merge : stats list -> stats
(** Pool statistics across kernels (per-suite aggregation). *)
