type position =
  | At of { block : int; index : int }
  | Done of { capped : bool }

type t = {
  kernel : Ir.Kernel.t;
  warp : int;
  seed : int;
  max_dynamic : int;
  trip_counts : int array;    (* per block: consecutive taken count of its Loop branch *)
  visit_counts : int array;   (* per block: terminator resolutions so far *)
  mutable pos : position;
  mutable executed : int;
}

(* Land on the first block at or after [block] that has instructions,
   following fallthrough/jump chains of empty blocks. *)
let rec settle t block steps =
  if steps > Ir.Kernel.block_count t.kernel * 2 then t.pos <- Done { capped = true }
  else begin
    let b = t.kernel.Ir.Kernel.blocks.(block) in
    if Array.length b.Ir.Block.instrs > 0 then t.pos <- At { block; index = 0 }
    else resolve_terminator t block (steps + 1)
  end

and resolve_terminator t block steps =
  let b = t.kernel.Ir.Kernel.blocks.(block) in
  let taken_to target = settle t target steps in
  let fall () =
    if block + 1 < Ir.Kernel.block_count t.kernel then settle t (block + 1) steps
    else t.pos <- Done { capped = false }
  in
  t.visit_counts.(block) <- t.visit_counts.(block) + 1;
  match b.Ir.Block.term with
  | Ir.Terminator.Fallthrough -> fall ()
  | Ir.Terminator.Jump l -> taken_to l
  | Ir.Terminator.Ret -> t.pos <- Done { capped = false }
  | Ir.Terminator.Branch { target; behavior } ->
    let taken =
      match behavior with
      | Ir.Terminator.Always_taken -> true
      | Ir.Terminator.Never_taken -> false
      | Ir.Terminator.Loop n ->
        if t.trip_counts.(block) < n - 1 then begin
          t.trip_counts.(block) <- t.trip_counts.(block) + 1;
          true
        end
        else begin
          t.trip_counts.(block) <- 0;
          false
        end
      | Ir.Terminator.Taken_with_prob p ->
        let h =
          Util.Prng.hash2 (Util.Prng.hash2 t.seed t.warp)
            (Util.Prng.hash2 block t.visit_counts.(block))
        in
        float_of_int (h land 0xFFFFFF) /. 16777216.0 < p
    in
    if taken then taken_to target else fall ()

let create ?(max_dynamic = 100_000) kernel ~warp ~seed =
  let nb = Ir.Kernel.block_count kernel in
  let t =
    {
      kernel;
      warp;
      seed;
      max_dynamic;
      trip_counts = Array.make nb 0;
      visit_counts = Array.make nb 0;
      pos = Done { capped = false };
      executed = 0;
    }
  in
  settle t 0 0;
  t

let peek t =
  match t.pos with
  | Done _ -> None
  | At { block; index } -> Some t.kernel.Ir.Kernel.blocks.(block).Ir.Block.instrs.(index)

let advance t =
  match t.pos with
  | Done _ -> ()
  | At { block; index } ->
    t.executed <- t.executed + 1;
    if t.executed >= t.max_dynamic then t.pos <- Done { capped = true }
    else begin
      let b = t.kernel.Ir.Kernel.blocks.(block) in
      if index + 1 < Array.length b.Ir.Block.instrs then
        t.pos <- At { block; index = index + 1 }
      else resolve_terminator t block 0
    end

let finished t = match t.pos with Done _ -> true | At _ -> false
let dynamic_count t = t.executed
let hit_cap t = match t.pos with Done { capped } -> capped | At _ -> false
