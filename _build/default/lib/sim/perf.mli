(** Cycle-level performance simulation of one SM (Table 2 parameters).

    In-order, one warp instruction issued per cycle, function-unit
    latencies and shared-datapath issue rates from {!Ir.Op}.  Used to
    verify the paper's scheduling claim: a two-level warp scheduler
    with 8 active warps (out of 32) matches the single-level
    scheduler's IPC (Sec. 6).

    Two descheduling policies are modelled:
    - [On_dependence]: the hardware RFC policy — a warp leaves the
      active set when its next instruction waits on a long-latency
      result (Sec. 2.2);
    - [At_strand_boundaries]: the software policy — a warp leaves the
      active set at a compiler-marked strand boundary while
      long-latency operations are outstanding (Sec. 4.1). *)

type scheduler =
  | Single_level            (** all warps schedulable every cycle *)
  | Two_level of int        (** active-set size *)

type policy = On_dependence | At_strand_boundaries

type result = {
  cycles : int;
  instructions : int;
  ipc : float;
  desched_events : int;
}

val run :
  ?warps:int ->
  ?seed:int ->
  ?max_dynamic_per_warp:int ->
  ?max_cycles:int ->
  ?mrf_banks:int ->
  scheduler:scheduler ->
  policy:policy ->
  Alloc.Context.t ->
  result
(** Defaults: 32 warps, 2_000 dynamic instructions per warp,
    10_000_000-cycle guard.

    [mrf_banks] enables the banked-MRF refinement: the MRF is split
    into that many banks (Table 2: 32) and an instruction whose source
    operands collide on a bank takes extra operand-fetch cycles — the
    operand buffering of Fig. 1(c) hides the base multi-cycle fetch,
    but same-bank operands serialize.  Omitted = ideal operand fetch
    (the paper's performance model). *)
