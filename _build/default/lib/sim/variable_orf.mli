(** Variable ORF allocation with a {e realistic} scheduler (Sec. 7).

    The paper evaluates per-strand ORF sizing only under an oracle that
    knows which warps will run.  This module implements the mechanism
    the paper sketches and rejects as hard: strands carry an
    entry-count request (here: the distinct ORF entries their placement
    uses); at runtime the active warps share a fixed pool of physical
    entries; a strand's grant is whatever is free when it starts, and
    accesses to entries beyond the grant fall back to the MRF — legal
    because the compiler ran with {!Alloc.Config.mirror_mrf}, keeping
    an MRF copy of every upper-level value ("there is always a MRF
    entry reserved for each ORF value").

    Warps interleave round-robin at instruction granularity (the
    active set holds [active] warps; finished warps are replaced), so
    grant contention reflects genuinely concurrent strands — no oracle
    knowledge of future warps. *)

type result = {
  counts : Energy.Counts.t;
  strand_executions : int;
  full_grants : int;      (** request fully satisfied *)
  partial_grants : int;   (** granted less than requested *)
  entries_denied : int;   (** total requested-but-denied entries *)
}

val run :
  ?active:int ->          (* default 8: the two-level scheduler's active set *)
  ?warps:int ->
  ?seed:int ->
  ?max_dynamic_per_warp:int ->
  pool_entries:int ->
  config:Alloc.Config.t ->
  placement:Alloc.Placement.t ->
  Alloc.Context.t ->
  result
(** @raise Invalid_argument unless [config.mirror_mrf] is set. *)

val strand_requests : Alloc.Context.t -> Alloc.Placement.t -> int array
(** Per strand: distinct ORF entries its placement touches — the
    request the compiler would encode in the strand header. *)
