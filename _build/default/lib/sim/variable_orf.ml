type result = {
  counts : Energy.Counts.t;
  strand_executions : int;
  full_grants : int;
  partial_grants : int;
  entries_denied : int;
}

let strand_requests (ctx : Alloc.Context.t) (placement : Alloc.Placement.t) =
  let k = ctx.Alloc.Context.kernel in
  let partition = ctx.Alloc.Context.partition in
  let n = max 1 (Strand.Partition.num_strands partition) in
  let used = Array.init n (fun _ -> Hashtbl.create 4) in
  Ir.Kernel.iter_instrs k (fun _ i ->
      let id = i.Ir.Instr.id in
      let s = Strand.Partition.strand_of_instr partition id in
      let touch e = Hashtbl.replace used.(s) e () in
      List.iteri
        (fun pos _ ->
          match Alloc.Placement.src placement ~instr:id ~pos with
          | Alloc.Placement.From_orf e -> touch e
          | Alloc.Placement.From_mrf | Alloc.Placement.From_lrf _ -> ())
        i.Ir.Instr.srcs;
      List.iter (fun (_, e) -> touch e) (Alloc.Placement.fills_of placement ~instr:id);
      match Alloc.Placement.dest placement ~instr:id with
      | Some { Alloc.Placement.to_orf = Some e; _ } -> touch e
      | Some _ | None -> ());
  Array.map Hashtbl.length used

let datapath_of_op op =
  if Ir.Op.is_shared_datapath op then Energy.Model.Shared else Energy.Model.Private

type warp_state = {
  cf : Cf.t;
  mutable grant : int;  (* entries this warp's current strand holds *)
}

let run ?(active = 8) ?(warps = 32) ?(seed = 0x5eed) ?max_dynamic_per_warp ~pool_entries
    ~(config : Alloc.Config.t) ~placement (ctx : Alloc.Context.t) =
  if not config.Alloc.Config.mirror_mrf then
    invalid_arg "Variable_orf.run: the placement must be compiled with mirror_mrf";
  let k = ctx.Alloc.Context.kernel in
  let partition = ctx.Alloc.Context.partition in
  let requests = strand_requests ctx placement in
  let counts = Energy.Counts.create () in
  let pool_free = ref pool_entries in
  let strand_executions = ref 0 in
  let full_grants = ref 0 in
  let partial_grants = ref 0 in
  let entries_denied = ref 0 in
  let mk_warp w = { cf = Cf.create ?max_dynamic:max_dynamic_per_warp k ~warp:w ~seed; grant = 0 } in
  let next_warp = ref (min active warps) in
  let active_set = Queue.create () in
  for w = 0 to min active warps - 1 do
    Queue.add (mk_warp w) active_set
  done;
  let release st =
    pool_free := !pool_free + st.grant;
    st.grant <- 0
  in
  let acquire st strand =
    release st;
    incr strand_executions;
    let want = requests.(strand) in
    let got = min want !pool_free in
    pool_free := !pool_free - got;
    st.grant <- got;
    if got >= want then incr full_grants else incr partial_grants;
    entries_denied := !entries_denied + (want - got)
  in
  let execute st (i : Ir.Instr.t) =
    let id = i.Ir.Instr.id in
    let dp = datapath_of_op i.Ir.Instr.op in
    let in_grant e = e < st.grant in
    List.iteri
      (fun pos _ ->
        match Alloc.Placement.src placement ~instr:id ~pos with
        | Alloc.Placement.From_mrf -> Energy.Counts.add_read counts Energy.Model.Mrf dp ()
        | Alloc.Placement.From_orf e ->
          if in_grant e then Energy.Counts.add_read counts Energy.Model.Orf dp ()
          else Energy.Counts.add_read counts Energy.Model.Mrf dp ()
        | Alloc.Placement.From_lrf _ ->
          Energy.Counts.add_read counts Energy.Model.Lrf Energy.Model.Private ())
      i.Ir.Instr.srcs;
    List.iter
      (fun (_pos, e) ->
        if in_grant e then Energy.Counts.add_write counts Energy.Model.Orf dp ())
      (Alloc.Placement.fills_of placement ~instr:id);
    match i.Ir.Instr.dst, Alloc.Placement.dest placement ~instr:id with
    | Some _, Some dest ->
      if dest.Alloc.Placement.to_mrf then Energy.Counts.add_write counts Energy.Model.Mrf dp ();
      (match dest.Alloc.Placement.to_orf with
       | Some e when in_grant e -> Energy.Counts.add_write counts Energy.Model.Orf dp ()
       | Some _ | None -> ());
      if Option.is_some dest.Alloc.Placement.to_lrf then
        Energy.Counts.add_write counts Energy.Model.Lrf Energy.Model.Private ()
    | _, _ -> ()
  in
  (* Round-robin, one instruction per turn: concurrent strands compete
     for the pool exactly as concurrently-active warps would. *)
  while not (Queue.is_empty active_set) do
    let st = Queue.pop active_set in
    (match Cf.peek st.cf with
     | None ->
       release st;
       if !next_warp < warps then begin
         Queue.add (mk_warp !next_warp) active_set;
         incr next_warp
       end
     | Some i ->
       if Strand.Partition.starts_strand partition i.Ir.Instr.id then
         acquire st (Strand.Partition.strand_of_instr partition i.Ir.Instr.id);
       execute st i;
       Cf.advance st.cf;
       Queue.add st active_set)
  done;
  {
    counts;
    strand_executions = !strand_executions;
    full_grants = !full_grants;
    partial_grants = !partial_grants;
    entries_denied = !entries_denied;
  }
