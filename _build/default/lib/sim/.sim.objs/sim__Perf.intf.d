lib/sim/perf.mli: Alloc
