lib/sim/traffic.mli: Alloc Energy
