lib/sim/value_trace.ml: Array Cf Ir List Option Util
