lib/sim/trace.mli: Ir
