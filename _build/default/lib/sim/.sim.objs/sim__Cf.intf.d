lib/sim/cf.mli: Ir
