lib/sim/variable_orf.mli: Alloc Energy
