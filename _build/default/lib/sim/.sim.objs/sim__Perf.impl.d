lib/sim/perf.ml: Alloc Array Cf Fun Hashtbl Ir List Option Strand
