lib/sim/variable_orf.ml: Alloc Array Cf Energy Hashtbl Ir List Option Queue Strand
