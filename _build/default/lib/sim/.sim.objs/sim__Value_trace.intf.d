lib/sim/value_trace.mli: Ir Util
