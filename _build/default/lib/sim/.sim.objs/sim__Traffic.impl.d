lib/sim/traffic.ml: Alloc Analysis Array Cf Energy Hashtbl Ir List Machine Option Strand
