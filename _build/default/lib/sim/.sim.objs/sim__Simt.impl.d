lib/sim/simt.ml: Alloc Analysis Array Energy Ir List Option Util
