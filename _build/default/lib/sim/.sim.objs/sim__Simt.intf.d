lib/sim/simt.mli: Alloc Energy Ir
