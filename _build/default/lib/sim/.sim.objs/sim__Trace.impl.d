lib/sim/trace.ml: Array Buffer Cf Hashtbl Ir List Option Printf String Util
