lib/sim/cf.ml: Array Ir Util
