type stats = {
  values_produced : int;
  read_counts : Util.Stats.histogram;
  lifetimes_read_once : Util.Stats.histogram;
}

type live_value = {
  born : int;            (* dynamic index of the producing instruction *)
  mutable reads : int;
  mutable first_read : int;
}

let collect ?(warps = 4) ?(seed = 0x5eed) ?max_dynamic_per_warp (k : Ir.Kernel.t) =
  let read_counts = Util.Stats.histogram () in
  let lifetimes = Util.Stats.histogram () in
  let produced = ref 0 in
  let nr = max 1 k.Ir.Kernel.num_regs in
  for w = 0 to warps - 1 do
    let current : live_value option array = Array.make nr None in
    let finalize v =
      incr produced;
      Util.Stats.hincr read_counts v.reads;
      if v.reads = 1 then Util.Stats.hincr lifetimes (max 1 (v.first_read - v.born))
    in
    let cf = Cf.create ?max_dynamic:max_dynamic_per_warp k ~warp:w ~seed in
    let rec step () =
      match Cf.peek cf with
      | None -> ()
      | Some i ->
        let now = Cf.dynamic_count cf in
        List.iter
          (fun r ->
            match current.(r) with
            | None -> ()  (* kernel input: not a value produced by the kernel *)
            | Some v ->
              v.reads <- v.reads + 1;
              if v.reads = 1 then v.first_read <- now)
          i.Ir.Instr.srcs;
        Option.iter
          (fun d ->
            Option.iter finalize current.(d);
            current.(d) <- Some { born = now; reads = 0; first_read = now })
          i.Ir.Instr.dst;
        Cf.advance cf;
        step ()
    in
    step ();
    Array.iter (fun v -> Option.iter finalize v) current
  done;
  { values_produced = !produced; read_counts; lifetimes_read_once = lifetimes }

let merge stats_list =
  let read_counts = Util.Stats.histogram () in
  let lifetimes = Util.Stats.histogram () in
  let produced = ref 0 in
  List.iter
    (fun s ->
      produced := !produced + s.values_produced;
      List.iter (fun (k, n) -> Util.Stats.hincr read_counts ~by:n k) (Util.Stats.hbins s.read_counts);
      List.iter
        (fun (k, n) -> Util.Stats.hincr lifetimes ~by:n k)
        (Util.Stats.hbins s.lifetimes_read_once))
    stats_list;
  { values_produced = !produced; read_counts; lifetimes_read_once = lifetimes }
