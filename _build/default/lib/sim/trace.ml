(* Per warp: run-length-encoded block sequence. *)
type t = {
  sequences : (int * int) list array;  (* per warp: (block, consecutive repeats) *)
}

let warps t = Array.length t.sequences

let rle_push acc block =
  match acc with
  | (b, n) :: rest when b = block -> (b, n + 1) :: rest
  | _ -> (block, 1) :: acc

let capture ?(warps = 32) ?(seed = 0x5eed) ?max_dynamic_per_warp (k : Ir.Kernel.t) =
  let sequences =
    Array.init warps (fun w ->
        let cf = Cf.create ?max_dynamic:max_dynamic_per_warp k ~warp:w ~seed in
        let acc = ref [] in
        let last_block = ref (-1) in
        let last_idx = ref (-1) in
        let rec go () =
          match Cf.peek cf with
          | None -> ()
          | Some i ->
            let blk = Ir.Kernel.block_of k i.Ir.Instr.id in
            let idx = i.Ir.Instr.id in
            (* A new block visit starts when the block changes OR when
               we re-enter the same block (id not the successor of the
               previous one). *)
            if blk <> !last_block || idx <= !last_idx then acc := rle_push !acc blk;
            last_block := blk;
            last_idx := idx;
            Cf.advance cf;
            go ()
        in
        go ();
        List.rev !acc)
  in
  { sequences }

let block_sequence t ~warp =
  List.concat_map (fun (b, n) -> List.init n (fun _ -> b)) t.sequences.(warp)

let replay t (k : Ir.Kernel.t) ~warp f =
  List.iter
    (fun b ->
      if b < 0 || b >= Ir.Kernel.block_count k then
        invalid_arg "Trace.replay: block out of range for this kernel";
      Array.iter f k.Ir.Kernel.blocks.(b).Ir.Block.instrs)
    (block_sequence t ~warp)

let edge_profile t =
  let counts = Hashtbl.create 64 in
  let bump e = Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)) in
  Array.iter
    (fun seq ->
      let expanded = List.concat_map (fun (b, n) -> List.init n (fun _ -> b)) seq in
      (match expanded with
       | first :: _ -> bump (-1, first)
       | [] -> ());
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          bump (a, b);
          pairs rest
        | [ _ ] | [] -> ()
      in
      pairs expanded)
    t.sequences;
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) counts [] |> List.sort compare

let synthesize t (k : Ir.Kernel.t) ~seed =
  let profile = edge_profile t in
  let remaining = Hashtbl.create 64 in
  List.iter (fun (e, n) -> Hashtbl.replace remaining e n) profile;
  let prng = Util.Prng.create seed in
  let nb = Ir.Kernel.block_count k in
  let successors b =
    Ir.Terminator.successors k.Ir.Kernel.blocks.(b).Ir.Block.term ~at:b ~num_blocks:nb
  in
  let rec walk acc b steps =
    if steps > 1_000_000 then List.rev acc
    else begin
      let choices =
        List.filter_map
          (fun s ->
            match Hashtbl.find_opt remaining (b, s) with
            | Some n when n > 0 -> Some (float_of_int n, s)
            | Some _ | None -> None)
          (successors b)
      in
      match choices with
      | [] -> List.rev acc
      | _ ->
        let next = Util.Prng.weighted_pick prng choices in
        Hashtbl.replace remaining (b, next) (Hashtbl.find remaining (b, next) - 1);
        walk (next :: acc) next (steps + 1)
    end
  in
  if nb = 0 then [] else walk [ 0 ] 0 0

let to_string t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "trace v1 warps=%d\n" (warps t);
  Array.iteri
    (fun w seq ->
      Printf.bprintf buf "warp %d:" w;
      List.iter
        (fun (b, n) ->
          if n = 1 then Printf.bprintf buf " %d" b else Printf.bprintf buf " %dx%d" b n)
        seq;
      Buffer.add_char buf '\n')
    t.sequences;
  Buffer.contents buf

let of_string s =
  try
    match String.split_on_char '\n' (String.trim s) with
    | [] -> Error "empty trace"
    | header :: rest ->
      let nwarps =
        match String.split_on_char '=' header with
        | [ _; n ] when String.length header > 6 && String.sub header 0 5 = "trace" ->
          int_of_string (String.trim n)
        | _ -> failwith "bad header"
      in
      let sequences = Array.make nwarps [] in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" then begin
            match String.index_opt line ':' with
            | None -> failwith ("bad line: " ^ line)
            | Some colon ->
              let w =
                int_of_string
                  (String.trim (String.sub line 5 (colon - 5)))
              in
              if w < 0 || w >= nwarps then failwith "warp out of range";
              let body = String.sub line (colon + 1) (String.length line - colon - 1) in
              let entries =
                String.split_on_char ' ' body
                |> List.filter (fun x -> x <> "")
                |> List.map (fun tok ->
                       match String.index_opt tok 'x' with
                       | Some i ->
                         ( int_of_string (String.sub tok 0 i),
                           int_of_string (String.sub tok (i + 1) (String.length tok - i - 1)) )
                       | None -> (int_of_string tok, 1))
              in
              sequences.(w) <- entries
          end)
        rest;
      Ok { sequences }
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
