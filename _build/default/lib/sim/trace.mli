(** Execution traces: the paper's methodology substrate (Sec. 5.1).

    The authors run each application to completion under Ocelot,
    record "the execution frequency of each dynamic control flow
    path", and feed a custom trace-driven simulator that reconstructs
    likely warp interleavings.  This module provides the same
    separation for our kernels:

    - {!capture} runs the warps once and records each warp's dynamic
      basic-block sequence (run-length encoded — self-loops compress
      to a single entry);
    - {!replay} re-produces a warp's exact instruction stream from the
      trace, with no branch evaluation — a trace-driven walker;
    - {!edge_profile} aggregates control-flow-edge frequencies;
    - {!synthesize} reconstructs a plausible block walk from the edge
      profile alone (a weighted walk that consumes edge counts), which
      is how frequency profiles stand in for full traces;
    - {!to_string} / {!of_string} give a stable text format so traces
      can be saved beside a benchmark and replayed later. *)

type t

val capture :
  ?warps:int -> ?seed:int -> ?max_dynamic_per_warp:int -> Ir.Kernel.t -> t
(** Execute (via {!Cf}) and record. *)

val warps : t -> int

val block_sequence : t -> warp:int -> int list
(** The warp's executed blocks, expanded. *)

val replay : t -> Ir.Kernel.t -> warp:int -> (Ir.Instr.t -> unit) -> unit
(** Drive the callback through the warp's exact dynamic instruction
    stream.  @raise Invalid_argument if the kernel's shape does not
    match the trace (wrong kernel). *)

val edge_profile : t -> ((int * int) * int) list
(** Control-flow edges [(from, to)] with their total execution counts,
    sorted; the [(-1, entry)] pseudo-edge counts warp starts. *)

val synthesize : t -> Ir.Kernel.t -> seed:int -> int list
(** One plausible block walk drawn from the edge profile: start at the
    entry, repeatedly pick a successor with probability proportional
    to the remaining count of that edge, consuming it.  Reproduces the
    relative path frequencies without per-warp sequences. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Round-trips [to_string]. *)
