(** Echoes of the paper's configuration tables: Table 2 (simulation
    parameters as wired into the simulator), Table 3 (ORF energy by
    size) and Table 4 (wire and MRF/LRF model parameters). *)

val table2 : unit -> Util.Table.t
val table3 : Energy.Params.t -> Util.Table.t
val table4 : Energy.Params.t -> Util.Table.t
