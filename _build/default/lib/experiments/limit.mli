(** Sec. 7: the register-hierarchy limit study.

    All results are normalized energies (1.0 = single-level baseline):

    - [ideal_all_lrf]: every operand served by the LRF (paper: 0.13x) —
      an unreachable bound since the LRF is tiny and flushed at
      strand boundaries;
    - [ideal_all_orf]: every operand served by a 5-entry ORF
      (paper: 0.39x);
    - [variable_orf_oracle]: per-strand oracle choice of ORF size
      against the fixed 3-entry design (paper: ~6% better);
    - [variable_orf_realistic]: the same idea under a realistic
      round-robin scheduler with a shared physical pool and MRF
      mirroring ({!Sim.Variable_orf}) — the paper predicts "a realistic
      scheduler would perform worse than our oracle scheduler";
    - [hw_backward_flush_delta]: hardware RFC flushed at backward
      branches vs values persisting across them (paper: ~5%);
    - [sw_past_backward]: software allocation allowed to keep values in
      the ORF across backward branches;
    - [sw_never_flush]: deschedules do not invalidate the ORF/LRF and
      every resident warp keeps entries (paper: ~8% better, ignoring
      the larger structures this would need);
    - [scheduling_ideal]: an 8-entry ORF priced at 3-entry cost — the
      upper bound for intra-block rescheduling (paper: ~9% better) —
      plus the realistic 5-entries-at-3-entry-cost variant
      (paper: ~6%). *)

type result = {
  fixed_best : float;            (** SW split LRF, 3 entries *)
  ideal_all_lrf : float;
  ideal_all_orf : float;
  variable_orf_oracle : float;
  variable_orf_realistic : float;
  hw_flush_backward : float;     (** HW RFC, flush at backward branches *)
  hw_keep_backward : float;      (** HW RFC, values persist (default) *)
  sw_past_backward : float;
  sw_never_flush : float;
  scheduling_ideal_8at3 : float;
  scheduling_real_5at5 : float;
}

val compute : Options.t -> result
val table : Options.t -> Util.Table.t
