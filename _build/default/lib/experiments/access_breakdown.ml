let entries_range = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let level_pct rows level =
  match List.assoc_opt level rows with Some v -> 100.0 *. v | None -> 0.0

(* One table: rows = entry counts, columns = per-level percentages for
   the HW and SW schemes being compared. *)
let breakdown_table opts ~title ~hw ~sw ~with_lrf direction =
  let columns =
    [ "Entries" ]
    @ (if with_lrf then [ "HW LRF%" ] else [])
    @ [ "HW RFC%"; "HW MRF%" ]
    @ (if with_lrf then [ "SW LRF%" ] else [])
    @ [ "SW ORF%"; "SW MRF%"; "HW total%"; "SW total%" ]
  in
  let t = Util.Table.create ~title ~columns in
  List.iter
    (fun entries ->
      let hw_rows = Sweep.mean_access_ratio opts hw ~entries direction in
      let sw_rows = Sweep.mean_access_ratio opts sw ~entries direction in
      let hw_cells =
        (if with_lrf then [ level_pct hw_rows Energy.Model.Lrf ] else [])
        @ [ level_pct hw_rows Energy.Model.Rfc; level_pct hw_rows Energy.Model.Mrf ]
      in
      let sw_cells =
        (if with_lrf then [ level_pct sw_rows Energy.Model.Lrf ] else [])
        @ [ level_pct sw_rows Energy.Model.Orf; level_pct sw_rows Energy.Model.Mrf ]
      in
      let total rows = List.fold_left (fun acc (_, v) -> acc +. (100.0 *. v)) 0.0 rows in
      Util.Table.add_float_row t (string_of_int entries) ~decimals:1
        (hw_cells @ sw_cells @ [ total hw_rows; total sw_rows ]))
    entries_range;
  t

let fig11_tables opts =
  [
    breakdown_table opts
      ~title:"Figure 11(a): two-level hierarchy reads (% of baseline reads)"
      ~hw:Sweep.Hw_two ~sw:Sweep.Sw_two ~with_lrf:false `Reads;
    breakdown_table opts
      ~title:"Figure 11(b): two-level hierarchy writes (% of baseline writes)"
      ~hw:Sweep.Hw_two ~sw:Sweep.Sw_two ~with_lrf:false `Writes;
  ]

let fig12_tables opts =
  [
    breakdown_table opts
      ~title:"Figure 12(a): three-level hierarchy reads (% of baseline reads)"
      ~hw:Sweep.Hw_three ~sw:Sweep.Sw_three_split ~with_lrf:true `Reads;
    breakdown_table opts
      ~title:"Figure 12(b): three-level hierarchy writes (% of baseline writes)"
      ~hw:Sweep.Hw_three ~sw:Sweep.Sw_three_split ~with_lrf:true `Writes;
  ]
