type variant = {
  label : string;
  normalized_energy : float;
  delta_vs_full : float;
}

let sw_ratio (opts : Options.t) e config =
  let energy =
    List.fold_left
      (fun acc ctx ->
        let placement = Alloc.Allocator.place config ctx in
        let traffic =
          Sim.Traffic.run ~warps:opts.Options.warps ~seed:opts.Options.seed ctx
            (Sim.Traffic.Sw { config; placement })
        in
        acc
        +. (Energy.Counts.energy opts.Options.params ~orf_entries:config.Alloc.Config.orf_entries
              traffic.Sim.Traffic.counts)
             .Energy.Counts.total)
      0.0 (Sweep.contexts e)
  in
  let base =
    (Sweep.run opts e Sweep.Baseline ~entries:1).Sweep.energy.Energy.Counts.total
  in
  Util.Stats.ratio energy base

let mean_sw (opts : Options.t) config =
  Util.Stats.mean (List.map (fun e -> sw_ratio opts e config) opts.Options.benchmarks)

let hw_tagless_ratio (opts : Options.t) ~entries =
  let tagless = Energy.Params.tagless in
  Util.Stats.mean
    (List.map
       (fun e ->
         let r = Sweep.run opts e Sweep.Hw_two ~entries in
         let energy =
           (Energy.Counts.energy tagless ~orf_entries:entries
              r.Sweep.traffic.Sim.Traffic.counts)
             .Energy.Counts.total
         in
         let base = (Sweep.run opts e Sweep.Baseline ~entries:1).Sweep.energy.Energy.Counts.total in
         Util.Stats.ratio energy base)
       opts.Options.benchmarks)

let compute ?(entries = 3) (opts : Options.t) =
  let cfg ~lrf ~partial ~read_op =
    Alloc.Config.make ~orf_entries:entries ~lrf ~partial_ranges:partial ~read_operands:read_op
      ~params:opts.Options.params ()
  in
  let full = mean_sw opts (cfg ~lrf:Alloc.Config.Split ~partial:true ~read_op:true) in
  let mk label v = { label; normalized_energy = v; delta_vs_full = 100.0 *. (v -. full) } in
  [
    mk "full design (split LRF, partial ranges, read operands)" full;
    mk "baseline algorithm only (Sec. 4.2)"
      (mean_sw opts (cfg ~lrf:Alloc.Config.Split ~partial:false ~read_op:false));
    mk "+ partial ranges only (Sec. 4.3)"
      (mean_sw opts (cfg ~lrf:Alloc.Config.Split ~partial:true ~read_op:false));
    mk "+ read operands only (Sec. 4.4)"
      (mean_sw opts (cfg ~lrf:Alloc.Config.Split ~partial:false ~read_op:true));
    mk "unified LRF instead of split (Sec. 6.3)"
      (mean_sw opts (cfg ~lrf:Alloc.Config.Unified ~partial:true ~read_op:true));
    mk "no LRF (two-level)"
      (mean_sw opts (cfg ~lrf:Alloc.Config.No_lrf ~partial:true ~read_op:true));
    mk "HW RFC with free tags (tag-energy ablation)" (hw_tagless_ratio opts ~entries);
    mk "HW RFC with tag energy" (Sweep.mean_energy_ratio opts Sweep.Hw_two ~entries);
  ]

let table ?entries opts =
  let t =
    Util.Table.create
      ~title:"Allocator ablation (3-entry configurations; 1.0 = single-level RF)"
      ~columns:[ "Variant"; "Normalized energy"; "Points vs full design" ]
  in
  List.iter
    (fun v ->
      Util.Table.add_row t
        [
          v.label;
          Printf.sprintf "%.3f" v.normalized_energy;
          Printf.sprintf "%+.1f" v.delta_vs_full;
        ])
    (compute ?entries opts);
  t
