(** Figure 13: normalized register-file access + wire energy of each
    organisation as a function of upper-level entries per thread. *)

val table : Options.t -> Util.Table.t

val best : Options.t -> Sweep.scheme -> int * float
(** Best entry count and its normalized energy for a scheme — the
    paper's headline points (SW split LRF at 3 entries: 0.46x; HW at
    3: 0.66x; HW LRF at 6: 0.59x). *)
