type result = {
  fixed_best : float;
  ideal_all_lrf : float;
  ideal_all_orf : float;
  variable_orf_oracle : float;
  variable_orf_realistic : float;
  hw_flush_backward : float;
  hw_keep_backward : float;
  sw_past_backward : float;
  sw_never_flush : float;
  scheduling_ideal_8at3 : float;
  scheduling_real_5at5 : float;
}

let mean_over opts f = Util.Stats.mean (List.map f opts.Options.benchmarks)

let baseline_energy opts e =
  (Sweep.run opts e Sweep.Baseline ~entries:1).Sweep.energy.Energy.Counts.total

(* Re-price the baseline's access counts as if every operand lived at
   the given level (the idealized bounds). *)
let repriced_ratio (opts : Options.t) e ~level ~entries =
  let params = opts.Options.params in
  let counts = (Sweep.run opts e Sweep.Baseline ~entries:1).Sweep.traffic.Sim.Traffic.counts in
  let dp_list = match level with Energy.Model.Lrf -> [ Energy.Model.Private ] | _ -> [ Energy.Model.Private; Energy.Model.Shared ] in
  let total = ref 0.0 in
  List.iter
    (fun dp ->
      (* The LRF bound charges even shared-datapath operands at the
         private LRF wire distance: it is an unreachable lower bound. *)
      let r =
        Energy.Counts.reads_dp counts Energy.Model.Mrf dp
        + (if dp = Energy.Model.Private && level = Energy.Model.Lrf then
             Energy.Counts.reads_dp counts Energy.Model.Mrf Energy.Model.Shared
           else 0)
      in
      let w =
        Energy.Counts.writes_dp counts Energy.Model.Mrf dp
        + (if dp = Energy.Model.Private && level = Energy.Model.Lrf then
             Energy.Counts.writes_dp counts Energy.Model.Mrf Energy.Model.Shared
           else 0)
      in
      total :=
        !total
        +. (float_of_int r *. Energy.Model.read_energy params ~orf_entries:entries level dp)
        +. (float_of_int w *. Energy.Model.write_energy params ~orf_entries:entries level dp))
    dp_list;
  Util.Stats.ratio !total (baseline_energy opts e)

(* Oracle per-strand ORF sizing: for each strand pick the entry count
   that minimizes that strand's energy. *)
let variable_orf_ratio (opts : Options.t) e =
  let params = opts.Options.params in
  let runs =
    List.map (fun entries -> (entries, Sweep.run opts e Sweep.Sw_three_split ~entries))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let num_strands =
    match runs with
    | (_, r) :: _ -> Array.length r.Sweep.traffic.Sim.Traffic.per_strand
    | [] -> 0
  in
  let oracle_total = ref 0.0 in
  for s = 0 to num_strands - 1 do
    let best =
      List.fold_left
        (fun acc (entries, r) ->
          let c = r.Sweep.traffic.Sim.Traffic.per_strand.(s) in
          let energy = (Energy.Counts.energy params ~orf_entries:entries c).Energy.Counts.total in
          min acc energy)
        infinity runs
    in
    if best < infinity then oracle_total := !oracle_total +. best
  done;
  Util.Stats.ratio !oracle_total (baseline_energy opts e)

(* Sec. 7's variable scheme under a realistic scheduler: compile for
   the full 8-entry namespace with MRF mirroring; 8 active warps share
   a pool sized like the fixed design's 8 x 3 entries; accesses priced
   at the 3-entry row, as in the oracle comparison. *)
let variable_realistic_ratio (opts : Options.t) e =
  let config =
    Alloc.Config.make ~orf_entries:8 ~lrf:Alloc.Config.Split ~params:opts.Options.params
      ~orf_cost_entries:3 ~mirror_mrf:true ()
  in
  let energy =
    List.fold_left
      (fun acc ctx ->
        let placement = Alloc.Allocator.place config ctx in
        let r =
          Sim.Variable_orf.run ~active:8 ~warps:opts.Options.warps ~seed:opts.Options.seed
            ~pool_entries:24 ~config ~placement ctx
        in
        acc
        +. (Energy.Counts.energy opts.Options.params ~orf_entries:3 r.Sim.Variable_orf.counts)
             .Energy.Counts.total)
      0.0 (Sweep.contexts e)
  in
  Util.Stats.ratio energy (baseline_energy opts e)

let custom_sw_ratio (opts : Options.t) e ~boundary_kinds ~orf_entries ~cost_entries =
  let config =
    Alloc.Config.make ~orf_entries ~lrf:Alloc.Config.Split ~params:opts.Options.params
      ~orf_cost_entries:cost_entries ()
  in
  let energy =
    List.fold_left
      (fun acc kernel ->
        let ctx = Alloc.Context.create ?boundary_kinds kernel in
        let placement = Alloc.Allocator.place config ctx in
        let traffic =
          Sim.Traffic.run ~warps:opts.Options.warps ~seed:opts.Options.seed ctx
            (Sim.Traffic.Sw { config; placement })
        in
        acc
        +. (Energy.Counts.energy opts.Options.params ~orf_entries:cost_entries
              traffic.Sim.Traffic.counts)
             .Energy.Counts.total)
      0.0
      (Lazy.force e.Workloads.Registry.kernels)
  in
  Util.Stats.ratio energy (baseline_energy opts e)

let hw_ratio (opts : Options.t) e ~flush_on_backward =
  let energy =
    List.fold_left
      (fun acc ctx ->
        let traffic =
          Sim.Traffic.run ~warps:opts.Options.warps ~seed:opts.Options.seed ctx
            (Sim.Traffic.Hw
               { (Sim.Traffic.hw_defaults ~rfc_entries:3) with
                 Sim.Traffic.flush_on_backward_branch = flush_on_backward })
        in
        acc
        +. (Energy.Counts.energy opts.Options.params ~orf_entries:3 traffic.Sim.Traffic.counts)
             .Energy.Counts.total)
      0.0 (Sweep.contexts e)
  in
  Util.Stats.ratio energy (baseline_energy opts e)

let compute (opts : Options.t) =
  let fixed_best = Sweep.mean_energy_ratio opts Sweep.Sw_three_split ~entries:3 in
  {
    fixed_best;
    ideal_all_lrf = mean_over opts (fun e -> repriced_ratio opts e ~level:Energy.Model.Lrf ~entries:1);
    ideal_all_orf = mean_over opts (fun e -> repriced_ratio opts e ~level:Energy.Model.Orf ~entries:5);
    variable_orf_oracle = mean_over opts (variable_orf_ratio opts);
    variable_orf_realistic = mean_over opts (variable_realistic_ratio opts);
    hw_flush_backward = mean_over opts (hw_ratio opts ~flush_on_backward:true);
    hw_keep_backward = mean_over opts (hw_ratio opts ~flush_on_backward:false);
    sw_past_backward =
      mean_over opts
        (custom_sw_ratio opts
           ~boundary_kinds:
             (Some { Strand.Partition.long_latency = true; backward = false; merge = true })
           ~orf_entries:3 ~cost_entries:3);
    sw_never_flush =
      mean_over opts
        (custom_sw_ratio opts
           ~boundary_kinds:
             (Some { Strand.Partition.long_latency = false; backward = true; merge = false })
           ~orf_entries:3 ~cost_entries:3);
    scheduling_ideal_8at3 =
      mean_over opts (custom_sw_ratio opts ~boundary_kinds:None ~orf_entries:8 ~cost_entries:3);
    scheduling_real_5at5 =
      mean_over opts (custom_sw_ratio opts ~boundary_kinds:None ~orf_entries:5 ~cost_entries:3);
  }

let table opts =
  let r = compute opts in
  let t =
    Util.Table.create ~title:"Sec. 7: limit study (normalized energy; 1.0 = single-level RF)"
      ~columns:[ "Configuration"; "Normalized energy"; "Savings %" ]
  in
  let row name v =
    Util.Table.add_row t [ name; Printf.sprintf "%.3f" v; Printf.sprintf "%.1f" (100.0 *. (1.0 -. v)) ]
  in
  row "fixed 3-entry ORF, split LRF (shipping design)" r.fixed_best;
  row "ideal: every access at LRF cost" r.ideal_all_lrf;
  row "ideal: every access at 5-entry ORF cost" r.ideal_all_orf;
  row "oracle variable per-strand ORF sizing" r.variable_orf_oracle;
  row "variable ORF, realistic scheduler (8x3 pool, MRF mirrors)" r.variable_orf_realistic;
  row "HW RFC, flush at backward branches" r.hw_flush_backward;
  row "HW RFC, values persist past backward branches" r.hw_keep_backward;
  row "SW allocation past backward branches" r.sw_past_backward;
  row "SW never-flush idealization" r.sw_never_flush;
  row "scheduling ideal: 8-entry ORF at 3-entry cost" r.scheduling_ideal_8at3;
  row "scheduling realistic: 5-entry effective ORF at 3-entry cost" r.scheduling_real_5at5;
  t
