let table2 () =
  let t =
    Util.Table.create ~title:"Table 2: simulation parameters" ~columns:[ "Parameter"; "Value" ]
  in
  let row p v = Util.Table.add_row t [ p; v ] in
  row "Execution model" "in-order";
  row "Execution width" "32-wide SIMT (1 warp instruction/cycle)";
  row "Machine-resident warps" "32";
  row "ALU latency" (Printf.sprintf "%d cycles" (Ir.Op.latency Ir.Op.Fadd));
  row "Special function latency" (Printf.sprintf "%d cycles" (Ir.Op.latency Ir.Op.Sqrt));
  row "Shared memory latency" (Printf.sprintf "%d cycles" (Ir.Op.latency Ir.Op.Ld_shared));
  row "Texture latency" (Printf.sprintf "%d cycles" (Ir.Op.latency Ir.Op.Tex_fetch));
  row "DRAM latency" (Printf.sprintf "%d cycles" (Ir.Op.latency Ir.Op.Ld_global));
  row "Shared-datapath issue rate" (Printf.sprintf "1 per %d cycles" (Ir.Op.issue_cycles Ir.Op.Sqrt));
  t

let table3 (p : Energy.Params.t) =
  let t =
    Util.Table.create ~title:"Table 3: ORF access energy per 128 bits (pJ)"
      ~columns:[ "Entries"; "Read"; "Write" ]
  in
  for entries = 1 to Energy.Params.max_orf_entries do
    Util.Table.add_row t
      [
        string_of_int entries;
        Printf.sprintf "%.1f" (Energy.Params.orf_read_energy p ~entries);
        Printf.sprintf "%.1f" (Energy.Params.orf_write_energy p ~entries);
      ]
  done;
  t

let table4 (p : Energy.Params.t) =
  let t =
    Util.Table.create ~title:"Table 4: energy-model parameters" ~columns:[ "Parameter"; "Value" ]
  in
  let row n v = Util.Table.add_row t [ n; v ] in
  row "MRF read / write energy" (Printf.sprintf "%.0f / %.0f pJ" p.Energy.Params.mrf_read p.Energy.Params.mrf_write);
  row "LRF read / write energy" (Printf.sprintf "%.1f / %.0f pJ" p.Energy.Params.lrf_read p.Energy.Params.lrf_write);
  row "MRF distance to private" (Printf.sprintf "%.2f mm" p.Energy.Params.dist_mrf_private);
  row "ORF distance to private" (Printf.sprintf "%.2f mm" p.Energy.Params.dist_orf_private);
  row "LRF distance to private" (Printf.sprintf "%.2f mm" p.Energy.Params.dist_lrf_private);
  row "MRF distance to shared" (Printf.sprintf "%.2f mm" p.Energy.Params.dist_mrf_shared);
  row "ORF distance to shared" (Printf.sprintf "%.2f mm" p.Energy.Params.dist_orf_shared);
  row "Wire energy (32 bits)" (Printf.sprintf "%.1f pJ/mm" p.Energy.Params.wire_pj_per_mm_32b);
  row "RFC tag read / write overhead"
    (Printf.sprintf "%.1f / %.1f pJ" p.Energy.Params.rfc_tag_read p.Energy.Params.rfc_tag_write);
  t
