let table (opts : Options.t) =
  let t =
    Util.Table.create ~title:"Register pressure and MRF occupancy (128 KB MRF, Table 2)"
      ~columns:[ "Benchmark"; "Registers"; "Peak live"; "Resident warps" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let ctx = Sweep.context e in
      let p =
        Analysis.Pressure.compute ctx.Alloc.Context.kernel ctx.Alloc.Context.cfg
          ctx.Alloc.Context.liveness
      in
      Util.Table.add_row t
        [
          e.Workloads.Registry.name;
          string_of_int p.Analysis.Pressure.registers_used;
          string_of_int p.Analysis.Pressure.max_live;
          string_of_int
            (min 32 (Analysis.Pressure.resident_warps p.Analysis.Pressure.max_live));
        ])
    opts.Options.benchmarks;
  t
