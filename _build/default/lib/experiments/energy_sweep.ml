let entries_range = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let schemes = [ Sweep.Hw_two; Sweep.Hw_three; Sweep.Sw_two; Sweep.Sw_three_unified; Sweep.Sw_three_split ]

let table opts =
  let t =
    Util.Table.create
      ~title:"Figure 13: normalized access+wire energy vs entries per thread (1.0 = single-level RF)"
      ~columns:("Entries" :: List.map Sweep.scheme_name schemes)
  in
  List.iter
    (fun entries ->
      let row = List.map (fun s -> Sweep.mean_energy_ratio opts s ~entries) schemes in
      Util.Table.add_float_row t (string_of_int entries) ~decimals:3 row)
    entries_range;
  t

let best opts scheme =
  List.fold_left
    (fun (be, bv) entries ->
      let v = Sweep.mean_energy_ratio opts scheme ~entries in
      if v < bv then (entries, v) else (be, bv))
    (0, infinity) entries_range
