(** Shared experiment options. *)

type t = {
  warps : int;       (** machine-resident warps simulated per kernel *)
  seed : int;        (** branch-behaviour seed *)
  params : Energy.Params.t;
  benchmarks : Workloads.Registry.entry list;  (** workload selection *)
}

val default : unit -> t
(** 32 warps, the paper's energy parameters, all 36 benchmarks. *)

val quick : unit -> t
(** 8 warps — same normalized results for warp-uniform kernels, used by
    the benchmark harness. *)

val with_benchmarks : t -> string list -> t
(** Restrict to the named benchmarks.
    @raise Invalid_argument on an unknown name. *)
