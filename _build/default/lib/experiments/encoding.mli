(** Sec. 6.5: instruction-encoding energy overhead.

    The software scheme adds (a) operand-level bits and (b) one
    end-of-strand bit per instruction.  Following the paper's
    high-level model: instruction fetch+decode is ~10% of chip dynamic
    power and grows linearly with instruction bits; the register file
    is ~10.7% of chip dynamic power (54% RF savings = 5.8% chip-wide in
    the paper).  The best case hides the level bits in the unused
    register namespace (1 extra bit); the worst case spends 4 namespace
    bits + 1 strand bit (a 15% fetch/decode increase). *)

type result = {
  rf_saving : float;           (** measured RF energy saving, 0..1 *)
  chip_saving : float;         (** chip-level saving before overhead *)
  best_case_overhead : float;  (** chip-level, 1 extra bit *)
  worst_case_overhead : float; (** chip-level, 5 extra bits *)
  net_best : float;
  net_worst : float;
  strand_bits_per_instr : float;  (** measured strands / static instrs *)
}

val compute : ?entries:int -> Options.t -> result
val table : ?entries:int -> Options.t -> Util.Table.t
