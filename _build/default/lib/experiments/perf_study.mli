(** The scheduling claim of Sec. 6: a two-level warp scheduler with 8
    active warps (of 32) loses no IPC against the single-level
    scheduler, under both descheduling policies (the hardware RFC's
    deschedule-on-dependence and the software scheme's
    deschedule-at-strand-boundaries). *)

val table : Options.t -> Util.Table.t

val relative_ipc : Options.t -> policy:Sim.Perf.policy -> active:int -> float
(** Mean over benchmarks of IPC(two-level with [active]) /
    IPC(single-level). *)

val clear_cache : unit -> unit
