type result = {
  rf_saving : float;
  chip_saving : float;
  best_case_overhead : float;
  worst_case_overhead : float;
  net_best : float;
  net_worst : float;
  strand_bits_per_instr : float;
}

let compute ?(entries = 3) (opts : Options.t) =
  let model = Energy.Chip.paper in
  let rf_saving = 1.0 -. Sweep.mean_energy_ratio opts Sweep.Sw_three_split ~entries in
  let chip_saving = Energy.Chip.chip_saving model ~rf_saving in
  let best = Energy.Chip.encoding_overhead model ~extra_bits:1 in
  let worst = Energy.Chip.encoding_overhead model ~extra_bits:5 in
  let strands, instrs =
    List.fold_left
      (fun acc (e : Workloads.Registry.entry) ->
        List.fold_left
          (fun (s, n) ctx ->
            ( s + Strand.Partition.num_strands ctx.Alloc.Context.partition,
              n + Ir.Kernel.instr_count ctx.Alloc.Context.kernel ))
          acc (Sweep.contexts e))
      (0, 0) opts.Options.benchmarks
  in
  {
    rf_saving;
    chip_saving;
    best_case_overhead = best;
    worst_case_overhead = worst;
    net_best = chip_saving -. best;
    net_worst = chip_saving -. worst;
    strand_bits_per_instr = Util.Stats.ratio (float_of_int strands) (float_of_int instrs);
  }

let table ?entries opts =
  let r = compute ?entries opts in
  let t =
    Util.Table.create ~title:"Sec. 6.5: instruction-encoding overhead (chip-level fractions)"
      ~columns:[ "Quantity"; "Value" ]
  in
  let pct x = Printf.sprintf "%.2f%%" (100.0 *. x) in
  Util.Table.add_row t [ "register-file energy saving"; pct r.rf_saving ];
  Util.Table.add_row t [ "chip-level saving before overhead"; pct r.chip_saving ];
  Util.Table.add_row t [ "encoding overhead, best case (1 bit)"; pct r.best_case_overhead ];
  Util.Table.add_row t [ "encoding overhead, worst case (5 bits)"; pct r.worst_case_overhead ];
  Util.Table.add_row t [ "net chip saving, best case"; pct r.net_best ];
  Util.Table.add_row t [ "net chip saving, worst case"; pct r.net_worst ];
  Util.Table.add_row t
    [ "strand boundaries per static instruction"; Printf.sprintf "%.3f" r.strand_bits_per_instr ];
  t
