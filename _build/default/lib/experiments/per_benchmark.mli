(** Figure 15: per-benchmark normalized energy of the most efficient
    configuration (3-entry ORF, split LRF, both allocator
    optimizations), sorted by savings. *)

val table : ?entries:int -> Options.t -> Util.Table.t

val ratios : ?entries:int -> Options.t -> (string * float) list
(** (benchmark, normalized energy), sorted best (lowest) first. *)
