type t = {
  warps : int;
  seed : int;
  params : Energy.Params.t;
  benchmarks : Workloads.Registry.entry list;
}

let default () =
  { warps = 32; seed = 0x5eed; params = Energy.Params.default; benchmarks = Workloads.Registry.all () }

let quick () = { (default ()) with warps = 8 }

let with_benchmarks t names =
  let entries =
    List.map
      (fun n ->
        match Workloads.Registry.find n with
        | Some e -> e
        | None -> invalid_arg (Printf.sprintf "unknown benchmark %S" n))
      names
  in
  { t with benchmarks = entries }
