let suite_stats (opts : Options.t) suite =
  let entries =
    List.filter (fun (e : Workloads.Registry.entry) -> e.Workloads.Registry.suite = suite)
      opts.Options.benchmarks
  in
  Sim.Value_trace.merge
    (List.concat_map
       (fun (e : Workloads.Registry.entry) ->
         List.map
           (Sim.Value_trace.collect ~warps:(min 4 opts.Options.warps) ~seed:opts.Options.seed)
           (Lazy.force e.Workloads.Registry.kernels))
       entries)

let suites_of (opts : Options.t) =
  List.filter
    (fun s ->
      List.exists (fun (e : Workloads.Registry.entry) -> e.Workloads.Registry.suite = s)
        opts.Options.benchmarks)
    Workloads.Suite.all

let percent_row stats bucket_of buckets =
  let h = bucket_of stats in
  List.map (fun pred -> 100.0 *. Util.Stats.hfraction h pred) buckets

let tables opts =
  let suites = suites_of opts in
  let reads_table =
    let t =
      Util.Table.create ~title:"Figure 2(a): percent of all values, by times read"
        ~columns:[ "Suite"; "Read 0"; "Read 1"; "Read 2"; "Read >2" ]
    in
    List.iter
      (fun s ->
        let stats = suite_stats opts s in
        let row =
          percent_row stats
            (fun st -> st.Sim.Value_trace.read_counts)
            [ (fun n -> n = 0); (fun n -> n = 1); (fun n -> n = 2); (fun n -> n > 2) ]
        in
        Util.Table.add_float_row t (Workloads.Suite.name s) ~decimals:1 row)
      suites;
    t
  in
  let lifetime_table =
    let t =
      Util.Table.create
        ~title:"Figure 2(b): lifetime (instructions) of values read exactly once (percent)"
        ~columns:[ "Suite"; "Lifetime 1"; "Lifetime 2"; "Lifetime 3"; "Lifetime >3" ]
    in
    List.iter
      (fun s ->
        let stats = suite_stats opts s in
        let row =
          percent_row stats
            (fun st -> st.Sim.Value_trace.lifetimes_read_once)
            [ (fun n -> n = 1); (fun n -> n = 2); (fun n -> n = 3); (fun n -> n > 3) ]
        in
        Util.Table.add_float_row t (Workloads.Suite.name s) ~decimals:1 row)
      suites;
    t
  in
  [ reads_table; lifetime_table ]

let read_once_fraction (opts : Options.t) =
  let stats =
    Sim.Value_trace.merge
      (List.concat_map
         (fun (e : Workloads.Registry.entry) ->
           List.map
             (Sim.Value_trace.collect ~warps:(min 4 opts.Options.warps) ~seed:opts.Options.seed)
             (Lazy.force e.Workloads.Registry.kernels))
         opts.Options.benchmarks)
  in
  Util.Stats.hfraction stats.Sim.Value_trace.read_counts (fun n -> n = 1)
