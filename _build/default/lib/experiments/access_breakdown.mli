(** Figures 11 and 12: reads and writes to each level of the hierarchy,
    normalized to the single-level baseline, for 1-8 upper-level
    entries per thread.

    Figure 11 compares the two-level organisations (HW RFC vs SW ORF);
    Figure 12 the three-level ones (HW LRF+RFC vs SW split LRF+ORF).
    HW read bars above 100% are the writeback reads the hardware cache
    performs on eviction and flush — the overhead the software scheme
    eliminates. *)

val fig11_tables : Options.t -> Util.Table.t list
val fig12_tables : Options.t -> Util.Table.t list
