(** Real code-motion results (extension): the paper's Sec. 7 estimates
    what instruction scheduling could buy by idealizing the ORF; this
    driver runs the actual passes ({!Transform.Reschedule},
    {!Transform.Unroll}) and re-measures.

    Columns, all normalized SW split-LRF energy (3 entries):
    original / rescheduled (chain packing + load hoisting) /
    unrolled x4 / unrolled then rescheduled — the last being the
    paper's full prescription for its worst-case benchmarks. *)

type row = {
  name : string;
  original : float;
  rescheduled : float;
  unrolled : float;
  unrolled_rescheduled : float;
  best : float;
      (** the JIT's choice: the energy model is static, so the compiler
          evaluates each variant and keeps a pass only when it wins
          (chip-specific JIT code generation, paper Sec. 3.1) *)
}

val compute : ?entries:int -> ?factor:int -> Options.t -> row list
val table : ?entries:int -> ?factor:int -> Options.t -> Util.Table.t
