(** Allocator ablation: the contribution of each Sec. 4 optimization.

    The paper attributes a 3–4 point efficiency improvement to
    partial-range (4.3) plus read-operand (4.4) allocation over the
    baseline greedy algorithm (Sec. 6.4).  This driver measures each
    optimization in isolation and combined, for both the two-level and
    the best three-level configuration, plus the split-vs-unified LRF
    choice (Sec. 6.3) and the RFC tag-energy assumption. *)

type variant = {
  label : string;
  normalized_energy : float;
  delta_vs_full : float;  (** percentage points lost vs. the full design *)
}

val compute : ?entries:int -> Options.t -> variant list
val table : ?entries:int -> Options.t -> Util.Table.t
