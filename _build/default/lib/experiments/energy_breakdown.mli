(** Figure 14: where the remaining energy goes in the most efficient
    configuration (3-entry ORF, split LRF): per-level access vs wire
    energy, normalized to the single-level baseline. *)

val table : ?entries:int -> Options.t -> Util.Table.t

val mrf_share : ?entries:int -> Options.t -> float
(** Fraction of the remaining energy spent on the MRF — the paper
    observes roughly two thirds. *)
