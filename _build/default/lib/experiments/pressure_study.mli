(** Register-pressure report: the MRF-capacity motivation of Sec. 1–2.

    Per benchmark: distinct registers, peak simultaneously-live
    registers, and the machine-resident warp count a 128 KB MRF
    supports at that register budget (32 registers/thread = the full
    32 warps of Table 2). *)

val table : Options.t -> Util.Table.t
