lib/experiments/perf_study.mli: Options Sim Util
