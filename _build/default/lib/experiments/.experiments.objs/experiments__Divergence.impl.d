lib/experiments/divergence.ml: Alloc Energy List Options Printf Sim Sweep Util Workloads
