lib/experiments/energy_breakdown.ml: Energy List Options Sweep Util Workloads
