lib/experiments/perf_study.ml: Hashtbl List Options Sim Sweep Util Workloads
