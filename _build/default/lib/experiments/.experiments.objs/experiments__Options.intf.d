lib/experiments/options.mli: Energy Workloads
