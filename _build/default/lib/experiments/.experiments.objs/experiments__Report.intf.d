lib/experiments/report.mli: Options Util
