lib/experiments/per_benchmark.ml: List Options Printf Sweep Util Workloads
