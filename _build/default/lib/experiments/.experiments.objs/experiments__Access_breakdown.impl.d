lib/experiments/access_breakdown.ml: Energy List Sweep Util
