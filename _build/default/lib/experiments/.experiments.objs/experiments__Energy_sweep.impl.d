lib/experiments/energy_sweep.ml: List Sweep Util
