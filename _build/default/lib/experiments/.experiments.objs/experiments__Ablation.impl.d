lib/experiments/ablation.ml: Alloc Energy List Options Printf Sim Sweep Util
