lib/experiments/per_benchmark.mli: Options Util
