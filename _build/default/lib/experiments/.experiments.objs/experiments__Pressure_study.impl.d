lib/experiments/pressure_study.ml: Alloc Analysis List Options Sweep Util Workloads
