lib/experiments/sweep.mli: Alloc Energy Options Sim Workloads
