lib/experiments/access_breakdown.mli: Options Util
