lib/experiments/limit.mli: Options Util
