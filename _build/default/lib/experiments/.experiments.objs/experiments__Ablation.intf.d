lib/experiments/ablation.mli: Options Util
