lib/experiments/energy_sweep.mli: Options Sweep Util
