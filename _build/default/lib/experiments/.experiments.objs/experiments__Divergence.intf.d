lib/experiments/divergence.mli: Options Util
