lib/experiments/sweep.ml: Alloc Array Energy Hashtbl Lazy List Marshal Options Sim Util Workloads
