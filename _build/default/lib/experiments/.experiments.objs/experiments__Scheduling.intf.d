lib/experiments/scheduling.mli: Options Util
