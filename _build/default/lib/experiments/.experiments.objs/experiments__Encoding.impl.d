lib/experiments/encoding.ml: Alloc Energy Ir List Options Printf Strand Sweep Util Workloads
