lib/experiments/scheduling.ml: Alloc Energy Fun Ir Lazy List Options Printf Sim String Transform Util Workloads
