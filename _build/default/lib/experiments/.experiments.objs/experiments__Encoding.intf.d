lib/experiments/encoding.mli: Options Util
