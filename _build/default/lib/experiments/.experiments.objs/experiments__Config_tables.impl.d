lib/experiments/config_tables.ml: Energy Ir Printf Util
