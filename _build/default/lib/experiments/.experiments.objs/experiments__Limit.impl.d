lib/experiments/limit.ml: Alloc Array Energy Lazy List Options Printf Sim Strand Sweep Util Workloads
