lib/experiments/pressure_study.mli: Options Util
