lib/experiments/options.ml: Energy List Printf Workloads
