lib/experiments/fig2.ml: Lazy List Options Sim Util Workloads
