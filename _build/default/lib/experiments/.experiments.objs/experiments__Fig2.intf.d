lib/experiments/fig2.mli: Options Util
