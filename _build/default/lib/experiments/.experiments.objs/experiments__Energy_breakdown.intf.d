lib/experiments/energy_breakdown.mli: Options Util
