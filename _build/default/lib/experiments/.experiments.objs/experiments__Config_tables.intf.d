lib/experiments/config_tables.mli: Energy Util
