type row = {
  name : string;
  original : float;
  rescheduled : float;
  unrolled : float;
  unrolled_rescheduled : float;
  best : float;
}

let sw_energy (opts : Options.t) ~entries kernel =
  let ctx = Alloc.Context.create kernel in
  let config =
    Alloc.Config.make ~orf_entries:entries ~lrf:Alloc.Config.Split ~params:opts.Options.params ()
  in
  let placement = Alloc.Allocator.place config ctx in
  (match Alloc.Verify.check config ctx placement with
   | Ok () -> ()
   | Error errs ->
     failwith
       (Printf.sprintf "scheduling study: %s failed verification: %s" kernel.Ir.Kernel.name
          (String.concat "; " errs)));
  let traffic =
    Sim.Traffic.run ~warps:opts.Options.warps ~seed:opts.Options.seed ctx
      (Sim.Traffic.Sw { config; placement })
  in
  (Energy.Counts.energy opts.Options.params ~orf_entries:entries traffic.Sim.Traffic.counts)
    .Energy.Counts.total

let baseline_energy (opts : Options.t) kernel =
  let ctx = Alloc.Context.create kernel in
  let traffic =
    Sim.Traffic.run ~warps:opts.Options.warps ~seed:opts.Options.seed ctx Sim.Traffic.Baseline
  in
  (Energy.Counts.energy opts.Options.params ~orf_entries:1 traffic.Sim.Traffic.counts)
    .Energy.Counts.total

let compute ?(entries = 3) ?(factor = 4) (opts : Options.t) =
  List.map
    (fun (e : Workloads.Registry.entry) ->
      let ks = Lazy.force e.Workloads.Registry.kernels in
      (* Every variant is normalized to ITS OWN single-level baseline:
         unrolling changes the dynamic instruction count, so absolute
         energies are not comparable, ratios are. *)
      let ratio transform =
        let sum f = List.fold_left (fun acc k -> acc +. f (transform k)) 0.0 ks in
        Util.Stats.ratio (sum (sw_energy opts ~entries)) (sum (baseline_energy opts))
      in
      let original = ratio Fun.id in
      let rescheduled = ratio Transform.Reschedule.kernel in
      let unrolled = ratio (Transform.Unroll.kernel ~factor) in
      let unrolled_rescheduled =
        ratio (fun k -> Transform.Reschedule.kernel (Transform.Unroll.kernel ~factor k))
      in
      {
        name = e.Workloads.Registry.name;
        original;
        rescheduled;
        unrolled;
        unrolled_rescheduled;
        best = List.fold_left min original [ rescheduled; unrolled; unrolled_rescheduled ];
      })
    opts.Options.benchmarks

let table ?entries ?factor opts =
  let rows = compute ?entries ?factor opts in
  let t =
    Util.Table.create
      ~title:
        "Code motion (extension): normalized SW energy after real rescheduling / unrolling passes"
      ~columns:[ "Benchmark"; "Original"; "Rescheduled"; "Unrolled x4"; "Unroll+resched"; "JIT best" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_float_row t r.name
        [ r.original; r.rescheduled; r.unrolled; r.unrolled_rescheduled; r.best ])
    rows;
  let mean f = Util.Stats.mean (List.map f rows) in
  Util.Table.add_float_row t "MEAN"
    [
      mean (fun r -> r.original);
      mean (fun r -> r.rescheduled);
      mean (fun r -> r.unrolled);
      mean (fun r -> r.unrolled_rescheduled);
      mean (fun r -> r.best);
    ];
  t
