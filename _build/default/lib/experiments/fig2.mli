(** Figure 2: register-value usage patterns per suite.

    (a) how many times each dynamic value written to the register file
    is read (0 / 1 / 2 / more); (b) the lifetime, in instructions, of
    values read exactly once. *)

val tables : Options.t -> Util.Table.t list

val read_once_fraction : Options.t -> float
(** Fraction of all values (across the workload set) read exactly
    once — the paper reports up to ~70%. *)
