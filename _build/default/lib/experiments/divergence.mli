(** Divergence sensitivity (extension beyond the paper).

    The paper counts register-file traffic per warp instruction, which
    is exact for convergent execution.  Under thread divergence an
    operand access only activates the 4-lane clusters holding live
    threads, so both the baseline and the hierarchy see fewer bank
    accesses.  This experiment replays each benchmark through the SIMT
    executor with per-thread branch outcomes and asks whether the
    paper's headline ratio survives: it does, because divergence scales
    the numerator and denominator almost uniformly. *)

type row = {
  name : string;
  simd_efficiency : float;
  divergent_branches : int;
  uniform_ratio : float;    (** SW/baseline energy, warp-uniform accounting *)
  divergent_ratio : float;  (** same, cluster-weighted divergent accounting *)
}

val compute : ?entries:int -> Options.t -> row list
val table : ?entries:int -> Options.t -> Util.Table.t
