type row = {
  name : string;
  simd_efficiency : float;
  divergent_branches : int;
  uniform_ratio : float;
  divergent_ratio : float;
}

let compute ?(entries = 3) (opts : Options.t) =
  List.map
    (fun (e : Workloads.Registry.entry) ->
      let config =
        Alloc.Config.make ~orf_entries:entries ~lrf:Alloc.Config.Split ~params:opts.Options.params ()
      in
      let energy c =
        (Energy.Counts.energy opts.Options.params ~orf_entries:entries c).Energy.Counts.total
      in
      let uniform_ratio = Sweep.energy_ratio opts e Sweep.Sw_three_split ~entries in
      let warps = min 8 opts.Options.warps in
      let base_e = ref 0.0 and sw_e = ref 0.0 in
      let eff = ref [] and div = ref 0 in
      List.iter
        (fun ctx ->
          let placement = Alloc.Allocator.place config ctx in
          let base = Sim.Simt.traffic ~warps ~seed:opts.Options.seed ctx ~scheme:`Baseline in
          let sw =
            Sim.Simt.traffic ~warps ~seed:opts.Options.seed ctx ~scheme:(`Sw (config, placement))
          in
          base_e := !base_e +. energy base.Sim.Simt.counts;
          sw_e := !sw_e +. energy sw.Sim.Simt.counts;
          eff := base.Sim.Simt.stats.Sim.Simt.simd_efficiency :: !eff;
          div := !div + base.Sim.Simt.stats.Sim.Simt.divergent_branches)
        (Sweep.contexts e);
      {
        name = e.Workloads.Registry.name;
        simd_efficiency = Util.Stats.mean !eff;
        divergent_branches = !div;
        uniform_ratio;
        divergent_ratio = Util.Stats.ratio !sw_e !base_e;
      })
    opts.Options.benchmarks

let table ?entries opts =
  let rows = compute ?entries opts in
  let t =
    Util.Table.create
      ~title:"Divergence sensitivity: SW/baseline energy under SIMT divergence (extension)"
      ~columns:
        [ "Benchmark"; "SIMD efficiency"; "Divergent branches"; "Uniform ratio"; "Divergent ratio" ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row t
        [
          r.name;
          Printf.sprintf "%.3f" r.simd_efficiency;
          string_of_int r.divergent_branches;
          Printf.sprintf "%.3f" r.uniform_ratio;
          Printf.sprintf "%.3f" r.divergent_ratio;
        ])
    rows;
  let mean f = Util.Stats.mean (List.map f rows) in
  Util.Table.add_row t
    [
      "MEAN";
      Printf.sprintf "%.3f" (mean (fun r -> r.simd_efficiency));
      "";
      Printf.sprintf "%.3f" (mean (fun r -> r.uniform_ratio));
      Printf.sprintf "%.3f" (mean (fun r -> r.divergent_ratio));
    ];
  t
