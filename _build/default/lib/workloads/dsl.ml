type reg = Ir.Reg.t

let inputs b n = List.init n (fun _ -> Ir.Builder.fresh b)
let input b = Ir.Builder.fresh b

let iadd b x y = Ir.Builder.op2 b Ir.Op.Iadd x y
let isub b x y = Ir.Builder.op2 b Ir.Op.Isub x y
let imul b x y = Ir.Builder.op2 b Ir.Op.Imul x y
let imad b x y z = Ir.Builder.op3 b Ir.Op.Imad x y z
let iand b x y = Ir.Builder.op2 b Ir.Op.Iand x y
let ior b x y = Ir.Builder.op2 b Ir.Op.Ior x y
let ixor b x y = Ir.Builder.op2 b Ir.Op.Ixor x y
let ishl b x y = Ir.Builder.op2 b Ir.Op.Ishl x y
let ishr b x y = Ir.Builder.op2 b Ir.Op.Ishr x y
let imin b x y = Ir.Builder.op2 b Ir.Op.Imin x y
let imax b x y = Ir.Builder.op2 b Ir.Op.Imax x y
let fadd b x y = Ir.Builder.op2 b Ir.Op.Fadd x y
let fsub b x y = Ir.Builder.op2 b Ir.Op.Fsub x y
let fmul b x y = Ir.Builder.op2 b Ir.Op.Fmul x y
let ffma b x y z = Ir.Builder.op3 b Ir.Op.Ffma x y z
let fmin b x y = Ir.Builder.op2 b Ir.Op.Fmin x y
let fmax b x y = Ir.Builder.op2 b Ir.Op.Fmax x y
let mov b x = Ir.Builder.op1 b Ir.Op.Mov x
let mov0 b = Ir.Builder.op0 b Ir.Op.Mov ()
let setp b x y = Ir.Builder.op2 b Ir.Op.Setp x y
let sel b p x y = Ir.Builder.op3 b Ir.Op.Sel p x y
let cvt b x = Ir.Builder.op1 b Ir.Op.Cvt x

let rcp b x = Ir.Builder.op1 b Ir.Op.Rcp x
let sqrt b x = Ir.Builder.op1 b Ir.Op.Sqrt x
let rsqrt b x = Ir.Builder.op1 b Ir.Op.Rsqrt x
let sin b x = Ir.Builder.op1 b Ir.Op.Sin x
let cos b x = Ir.Builder.op1 b Ir.Op.Cos x
let ex2 b x = Ir.Builder.op1 b Ir.Op.Ex2 x
let lg2 b x = Ir.Builder.op1 b Ir.Op.Lg2 x

let ld_global b a = Ir.Builder.op1 b Ir.Op.Ld_global a
let ld_global64 b a = Ir.Builder.op1 b Ir.Op.Ld_global ~width:Ir.Width.W64 a
let st_global b ~addr ~value = Ir.Builder.store b Ir.Op.St_global ~addr ~value
let ld_shared b a = Ir.Builder.op1 b Ir.Op.Ld_shared a
let st_shared b ~addr ~value = Ir.Builder.store b Ir.Op.St_shared ~addr ~value
let atom_global b a v = Ir.Builder.op2 b Ir.Op.Atom_global a v
let tex b a = Ir.Builder.op1 b Ir.Op.Tex_fetch a

(* Real codegen scales the element index to a byte offset before the
   add: one shift-by-immediate and one add of short-lived values per
   access. *)
let addr2 b ~base ~idx =
  let byte_offset = Ir.Builder.op1 b Ir.Op.Ishl idx in
  iadd b base byte_offset

let addr3 b ~base ~row ~col =
  let scaled = imad b row row col in
  iadd b base scaled

let counted_loop b ~trips body =
  let i = mov0 b in
  let head = Ir.Builder.here b in
  body i;
  Ir.Builder.op2_into b Ir.Op.Iadd ~dst:i i i;
  (* Compare against an immediate bound: a single-source setp. *)
  let p = Ir.Builder.op1 b Ir.Op.Setp i in
  Ir.Builder.branch b ~pred:p ~target:head (Ir.Terminator.Loop trips);
  let (_ : Ir.Builder.label) = Ir.Builder.here b in
  ()

let if_then b ~pred ~taken_prob body =
  let join = Ir.Builder.new_label b in
  Ir.Builder.branch b ~pred ~target:join (Ir.Terminator.Taken_with_prob taken_prob);
  let (_ : Ir.Builder.label) = Ir.Builder.here b in
  body ();
  Ir.Builder.start_block b join

let if_then_else b ~pred ~taken_prob then_side else_side =
  let else_l = Ir.Builder.new_label b in
  let join = Ir.Builder.new_label b in
  Ir.Builder.branch b ~pred ~target:else_l (Ir.Terminator.Taken_with_prob taken_prob);
  let (_ : Ir.Builder.label) = Ir.Builder.here b in
  then_side ();
  Ir.Builder.jump b join;
  Ir.Builder.start_block b else_l;
  else_side ();
  Ir.Builder.start_block b join

let fma_chain b ~init ~coeffs =
  List.fold_left (fun acc (c, x) -> ffma b acc c x) init coeffs

let rec reduce_tree b = function
  | [] -> invalid_arg "Dsl.reduce_tree: empty"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: c :: rest -> fadd b a c :: pair rest
      | [ a ] -> [ a ]
      | [] -> []
    in
    reduce_tree b (pair xs)

let load_stream b ~base ~idx ~n =
  List.init n (fun _ ->
      let a = addr2 b ~base ~idx in
      ld_global b a)

let dead_store_value b x y = ignore (iand b x y)
