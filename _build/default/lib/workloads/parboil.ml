(* The 5 Parboil applications of paper Table 1.  These have the longest
   execution times of the paper's benchmarks; their kernels are deep
   arithmetic loops over loaded data. *)

module B = Ir.Builder
module D = Dsl

let entry = Bench.make Suite.Parboil

(* Coulombic potential: for each grid point, accumulate the potential
   contributed by a list of atoms: dx/dy deltas, r^2, rsqrt, FMA. *)
let cp () =
  let b = B.create "cp" in
  let atoms = D.input b and gx = D.input b and gy = D.input b and out = D.input b in
  let tid = D.input b in
  let energy = D.mov0 b in
  D.counted_loop b ~trips:32 (fun j ->
      let ax = D.ld_shared b (D.addr2 b ~base:atoms ~idx:j) in
      let ay = D.ld_shared b (D.addr2 b ~base:atoms ~idx:j) in
      let aq = D.ld_shared b (D.addr2 b ~base:atoms ~idx:j) in
      let dx = D.fsub b ax gx in
      let dy = D.fsub b ay gy in
      let r2 = D.ffma b dx dx (D.fmul b dy dy) in
      let inv = D.rsqrt b r2 in
      B.op3_into b Ir.Op.Ffma ~dst:energy aq inv energy);
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:energy;
  B.finalize b

(* MRI gridding FHD: per-sample sin/cos phase rotation into real and
   imaginary accumulators; kx/ky/kz sample coordinates loaded. *)
let mri_fhd () =
  let b = B.create "mri-fhd" in
  let kspace = D.input b and x = D.input b and y = D.input b and z = D.input b in
  let out = D.input b and tid = D.input b in
  let r_acc = D.mov0 b in
  let i_acc = D.mov0 b in
  D.counted_loop b ~trips:24 (fun s ->
      let kx = D.ld_global b (D.addr2 b ~base:kspace ~idx:s) in
      let ky = D.ld_global b (D.addr2 b ~base:kspace ~idx:s) in
      let kz = D.ld_global b (D.addr2 b ~base:kspace ~idx:tid) in
      let phase = D.ffma b kx x (D.ffma b ky y (D.fmul b kz z)) in
      let c = D.cos b phase in
      let si = D.sin b phase in
      B.op3_into b Ir.Op.Ffma ~dst:r_acc c c r_acc;
      B.op3_into b Ir.Op.Ffma ~dst:i_acc si si i_acc);
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:(D.fadd b r_acc i_acc);
  B.finalize b

(* MRI Q computation: like FHD but the trajectory data is staged in
   shared memory and the phase magnitude is re-read. *)
let mri_q () =
  let b = B.create "mri-q" in
  let traj = D.input b and x = D.input b and y = D.input b and out = D.input b in
  let tid = D.input b in
  let q_r = D.mov0 b in
  let q_i = D.mov0 b in
  D.counted_loop b ~trips:24 (fun s ->
      let kx = D.ld_shared b (D.addr2 b ~base:traj ~idx:s) in
      let ky = D.ld_shared b (D.addr2 b ~base:traj ~idx:s) in
      let mag = D.ld_shared b (D.addr2 b ~base:traj ~idx:tid) in
      let phase = D.ffma b kx x (D.fmul b ky y) in
      let c = D.fmul b (D.cos b phase) mag in
      let si = D.fmul b (D.sin b phase) mag in
      B.op2_into b Ir.Op.Fadd ~dst:q_r q_r c;
      B.op2_into b Ir.Op.Fadd ~dst:q_i q_i si);
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:(D.ffma b q_r q_r q_i);
  B.finalize b

(* RPES quantum-chemistry kernel: nested loops of polynomial terms and
   SFU exponentials with several medium-lived intermediates. *)
let rpes () =
  let b = B.create "rpes" in
  let coeff = D.input b and dist = D.input b and out = D.input b and tid = D.input b in
  let total = D.mov0 b in
  D.counted_loop b ~trips:8 (fun i ->
      let base_c = D.ld_global b (D.addr2 b ~base:coeff ~idx:i) in
      D.counted_loop b ~trips:6 (fun j ->
          let d = D.ld_shared b (D.addr2 b ~base:dist ~idx:j) in
          let d2 = D.fmul b d d in
          let arg = D.fmul b d2 base_c in
          let e = D.ex2 b arg in
          let poly = D.ffma b d2 base_c (D.ffma b d base_c d2) in
          B.op3_into b Ir.Op.Ffma ~dst:total poly e total));
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:total;
  B.finalize b

(* Sum of absolute differences for motion estimation: 16 texture
   samples against 16 frame samples per candidate block. *)
let sad () =
  let b = B.create "sad" in
  let frame = D.input b and out = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun cand ->
      let acc = D.mov0 b in
      let base_idx = D.iadd b tid cand in
      for _px = 1 to 8 do
        let cur = D.ld_global b (D.addr2 b ~base:frame ~idx:base_idx) in
        let ref_px = D.tex b base_idx in
        let diff = D.fsub b cur ref_px in
        let mag = D.fmax b diff (D.fsub b ref_px cur) in
        B.op2_into b Ir.Op.Fadd ~dst:acc acc mag
      done;
      D.st_global b ~addr:(D.addr2 b ~base:out ~idx:base_idx) ~value:acc);
  B.finalize b


(* Secondary kernel: mri-fhd's rho-phi precomputation (pure ALU/SFU
   transform of the sample data). *)
let mri_fhd_rhophi () =
  let b = B.create "mri-fhd.rhoPhi"  in
  let phi_r = D.input b and phi_i = D.input b and d_r = D.input b and d_i = D.input b in
  let out = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let pr = D.ld_global b (D.addr2 b ~base:phi_r ~idx) in
      let pi = D.ld_global b (D.addr2 b ~base:phi_i ~idx) in
      let dr = D.ld_global b (D.addr2 b ~base:d_r ~idx) in
      let di = D.ld_global b (D.addr2 b ~base:d_i ~idx) in
      let real = D.ffma b pr dr (D.fmul b pi di) in
      let imag = D.fsub b (D.fmul b pr di) (D.fmul b pi dr) in
      D.st_global b ~addr:(D.addr2 b ~base:out ~idx) ~value:(D.fadd b real imag));
  B.finalize b


(* mri-q's phiMag precomputation: |phi|^2 per sample, pure ALU. *)
let mri_q_phimag () =
  let b = B.create "mri-q.phiMag" in
  let phi_r = D.input b and phi_i = D.input b and out = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let r = D.ld_global b (D.addr2 b ~base:phi_r ~idx) in
      let im = D.ld_global b (D.addr2 b ~base:phi_i ~idx) in
      let mag = D.ffma b r r (D.fmul b im im) in
      D.st_global b ~addr:(D.addr2 b ~base:out ~idx) ~value:mag);
  B.finalize b

(* cp's energy-grid accumulation epilogue: add the per-block partial
   potentials into the global grid. *)
let cp_grid_sum () =
  let b = B.create "cp.gridSum" in
  let partials = D.input b and grid = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun blk ->
      let idx = D.iadd b tid blk in
      let p = D.ld_global b (D.addr2 b ~base:partials ~idx) in
      let g = D.ld_global b (D.addr2 b ~base:grid ~idx:tid) in
      D.st_global b ~addr:(D.addr2 b ~base:grid ~idx:tid) ~value:(D.fadd b g p));
  B.finalize b

let benchmarks =
  [
    entry "cp" ~description:"coulombic potential: distance + rsqrt accumulation"
      ~extras:[ cp_grid_sum ] cp;
    entry "mri-fhd" ~description:"sin/cos phase rotation into complex accumulators"
      ~extras:[ mri_fhd_rhophi ] mri_fhd;
    entry "mri-q" ~description:"Q matrix: shared-memory trajectory, sin/cos"
      ~extras:[ mri_q_phimag ] mri_q;
    entry "rpes" ~description:"nested polynomial + exponential evaluation" rpes;
    entry "sad" ~description:"4x4 block sum of absolute differences" sad;
  ]
