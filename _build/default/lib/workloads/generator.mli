(** Seeded random structured-kernel generator.

    Produces arbitrary (but always well-formed) kernels — nested
    counted loops, one- and two-sided hammocks, every opcode class,
    in-place register updates, dead values, wide loads — used by the
    qcheck properties to exercise the allocator and verifier on shapes
    the hand-written benchmarks do not cover. *)

val kernel : ?size:int -> ?prob_branches:bool -> seed:int -> unit -> Ir.Kernel.t
(** [size] scales the number of generated segments (default 12).
    [prob_branches:false] replaces data-dependent branch behaviours
    with warp-uniform ones (used to cross-check the SIMT executor
    against the warp-uniform walker).  Deterministic in
    [(seed, size, prob_branches)]. *)
