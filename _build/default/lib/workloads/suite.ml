type t = Cuda_sdk | Parboil | Rodinia

let name = function Cuda_sdk -> "CUDA SDK" | Parboil -> "Parboil" | Rodinia -> "Rodinia"

let all = [ Cuda_sdk; Parboil; Rodinia ]

let pp fmt t = Format.pp_print_string fmt (name t)
