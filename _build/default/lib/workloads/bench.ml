type entry = {
  name : string;
  suite : Suite.t;
  description : string;
  kernel : Ir.Kernel.t Lazy.t;
  kernels : Ir.Kernel.t list Lazy.t;
}

let make suite name ~description ?(extras = []) build =
  let kernel = lazy (build ()) in
  {
    name;
    suite;
    description;
    kernel;
    kernels = lazy (Lazy.force kernel :: List.map (fun f -> f ()) extras);
  }
