module B = Ir.Builder

let chain n =
  let b = B.create (Printf.sprintf "micro-chain-%d" n) in
  let x0 = Dsl.input b in
  (* Each link reads its predecessor once, in operand slot A, so the
     whole chain can flow through a single split-LRF bank. *)
  let rec go v i = if i = 0 then v else go (Dsl.iadd b v x0) (i - 1) in
  let last = go (Dsl.iadd b x0 x0) n in
  Dsl.st_global b ~addr:x0 ~value:last;
  B.finalize b

let fanout n =
  let b = B.create (Printf.sprintf "micro-fanout-%d" n) in
  let base = Dsl.input b in
  let v = Dsl.iadd b base base in
  let uses = List.init n (fun _ -> Dsl.imul b v v) in
  Dsl.st_global b ~addr:base ~value:(Dsl.reduce_tree b (List.map (Dsl.cvt b) uses));
  B.finalize b

let hammock_merge () =
  let b = B.create "micro-hammock" in
  let p = Dsl.input b in
  let r = B.fresh b in
  Dsl.if_then_else b ~pred:p ~taken_prob:0.5
    (fun () -> B.op2_into b Ir.Op.Iadd ~dst:r p p)
    (fun () -> B.op2_into b Ir.Op.Imul ~dst:r p p);
  let use = Dsl.mov b r in
  Dsl.st_global b ~addr:p ~value:use;
  B.finalize b

let loop_carried trips =
  let b = B.create (Printf.sprintf "micro-loop-%d" trips) in
  let base = Dsl.input b in
  let acc = Dsl.mov0 b in
  Dsl.counted_loop b ~trips (fun i ->
      let t = Dsl.iadd b i i in
      B.op2_into b Ir.Op.Iadd ~dst:acc acc t);
  Dsl.st_global b ~addr:base ~value:acc;
  B.finalize b

let wide_values n =
  let b = B.create (Printf.sprintf "micro-wide-%d" n) in
  let base = Dsl.input b in
  for _ = 1 to n do
    (* Short-latency wide loads: eligible for the ORF, where each
       occupies two consecutive entries. *)
    let w = B.op1 b Ir.Op.Ld_shared ~width:Ir.Width.W64 base in
    let lo = Dsl.cvt b w in
    Dsl.st_shared b ~addr:base ~value:lo
  done;
  B.finalize b

let shared_consumers n =
  let b = B.create (Printf.sprintf "micro-shared-%d" n) in
  let base = Dsl.input b in
  for _ = 1 to n do
    let v = Dsl.iadd b base base in
    Dsl.st_shared b ~addr:base ~value:v
  done;
  B.finalize b

let sfu_pipeline n =
  let b = B.create (Printf.sprintf "micro-sfu-%d" n) in
  let x0 = Dsl.input b in
  let rec go v i = if i = 0 then v else go (Dsl.rcp b (Dsl.fadd b v v)) (i - 1) in
  Dsl.st_global b ~addr:x0 ~value:(go x0 n);
  B.finalize b

let spiller n =
  let b = B.create (Printf.sprintf "micro-spill-%d" n) in
  let base = Dsl.input b in
  (* n values born together, all consumed at the end: live ranges
     overlap completely, so at most orf_entries of them fit. *)
  let vs = List.init n (fun _ -> Dsl.iadd b base base) in
  let sum = Dsl.reduce_tree b vs in
  Dsl.st_global b ~addr:base ~value:sum;
  B.finalize b

let all () =
  [
    ("chain", chain 8);
    ("fanout", fanout 6);
    ("hammock", hammock_merge ());
    ("loop-carried", loop_carried 8);
    ("wide", wide_values 3);
    ("shared-consumers", shared_consumers 4);
    ("sfu-pipeline", sfu_pipeline 4);
    ("spiller", spiller 10);
  ]
