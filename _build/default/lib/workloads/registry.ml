type entry = Bench.entry = {
  name : string;
  suite : Suite.t;
  description : string;
  kernel : Ir.Kernel.t Lazy.t;
  kernels : Ir.Kernel.t list Lazy.t;
}

let all () = Cuda_sdk.benchmarks @ Parboil.benchmarks @ Rodinia.benchmarks

let by_suite s = List.filter (fun e -> e.suite = s) (all ())

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = lower) (all ())

let names () = List.map (fun e -> e.name) (all ())
