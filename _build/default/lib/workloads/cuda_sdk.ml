(* The 25 CUDA SDK 3.2 applications of paper Table 1, modelled as
   synthetic kernels.  Each kernel reproduces the register-usage
   signature of the real application's dominant kernel: its mix of
   function units, its loop structure, how often values are re-read
   and how far apart, and where long-latency operations sit relative
   to their consumers. *)

module B = Ir.Builder
module D = Dsl

let entry = Bench.make Suite.Cuda_sdk

(* Streaming c[i] = a[i] + b[i]: one short strand per iteration, almost
   every value read exactly once. *)
let vector_add () =
  let b = B.create "VectorAdd" in
  let base_a = D.input b and base_b = D.input b and base_c = D.input b and tid = D.input b in
  D.counted_loop b ~trips:16 (fun i ->
      let idx = D.iadd b tid i in
      let x = D.ld_global b (D.addr2 b ~base:base_a ~idx) in
      let y = D.ld_global b (D.addr2 b ~base:base_b ~idx) in
      let s = D.fadd b x y in
      D.st_global b ~addr:(D.addr2 b ~base:base_c ~idx) ~value:s);
  B.finalize b

(* Tight dot-product loop: two global loads feeding one FMA into a
   loop-carried accumulator — the paper's worst case (Fig. 15). *)
let scalar_prod () =
  let b = B.create "ScalarProd" in
  let base_a = D.input b and base_b = D.input b and tid = D.input b in
  let acc = D.mov0 b in
  D.counted_loop b ~trips:32 (fun i ->
      let idx = D.iadd b tid i in
      let x = D.ld_global b (D.addr2 b ~base:base_a ~idx) in
      let y = D.ld_global b (D.addr2 b ~base:base_b ~idx) in
      B.op3_into b Ir.Op.Ffma ~dst:acc x y acc);
  let out = D.input b in
  D.st_global b ~addr:out ~value:acc;
  B.finalize b

(* Global-load accumulation followed by a shared-memory tree: the other
   Fig. 15 worst case. *)
let reduction () =
  let b = B.create "Reduction" in
  let base = D.input b and tid = D.input b and sbase = D.input b in
  let acc = D.mov0 b in
  D.counted_loop b ~trips:32 (fun i ->
      let idx = D.iadd b tid i in
      let x = D.ld_global b (D.addr2 b ~base ~idx) in
      B.op2_into b Ir.Op.Fadd ~dst:acc acc x);
  D.st_shared b ~addr:(D.addr2 b ~base:sbase ~idx:tid) ~value:acc;
  (* log2(256) = 8 tree steps, each a shared load + add + store. *)
  D.counted_loop b ~trips:8 (fun i ->
      let partner = D.ishr b tid i in
      let other = D.ld_shared b (D.addr2 b ~base:sbase ~idx:partner) in
      let mine = D.ld_shared b (D.addr2 b ~base:sbase ~idx:tid) in
      let s = D.fadd b mine other in
      D.st_shared b ~addr:(D.addr2 b ~base:sbase ~idx:tid) ~value:s);
  B.finalize b

(* Tiled GEMM: shared-memory staging then an unrolled inner product
   with a heavily re-read accumulator and tile registers. *)
let matrix_mul () =
  let b = B.create "MatrixMul" in
  let base_a = D.input b and base_b = D.input b and base_c = D.input b in
  let row = D.input b and col = D.input b and stile = D.input b in
  let acc = D.mov0 b in
  D.counted_loop b ~trips:8 (fun t ->
      (* Stage one tile element of A and B into shared memory. *)
      let ga = D.addr3 b ~base:base_a ~row ~col:t in
      let gb = D.addr3 b ~base:base_b ~row:t ~col in
      let a = D.ld_global b ga in
      let bb = D.ld_global b gb in
      D.st_shared b ~addr:(D.addr2 b ~base:stile ~idx:row) ~value:a;
      D.st_shared b ~addr:(D.addr2 b ~base:stile ~idx:col) ~value:bb;
      (* Unrolled k-loop over the tile. *)
      for _k = 1 to 4 do
        let x = D.ld_shared b (D.addr2 b ~base:stile ~idx:row) in
        let y = D.ld_shared b (D.addr2 b ~base:stile ~idx:col) in
        B.op3_into b Ir.Op.Ffma ~dst:acc x y acc
      done);
  D.st_global b ~addr:(D.addr3 b ~base:base_c ~row ~col) ~value:acc;
  B.finalize b

(* Four texture fetches blended with cubic weights; the weights are
   computed once and each read four times. *)
let bicubic_texture () =
  let b = B.create "BicubicTexture" in
  let u = D.input b and v = D.input b and out = D.input b in
  let fu = D.cvt b u in
  let w0 = D.fmul b fu fu in
  let w1 = D.ffma b fu w0 w0 in
  let w2 = D.fadd b w0 w1 in
  let w3 = D.fmul b w1 w2 in
  let acc = D.mov0 b in
  List.iteri
    (fun off w ->
      let coord = D.iadd b u (if off mod 2 = 0 then v else u) in
      let texel = D.tex b coord in
      B.op3_into b Ir.Op.Ffma ~dst:acc texel w acc)
    [ w0; w1; w2; w3 ];
  D.st_global b ~addr:out ~value:acc;
  B.finalize b

(* Binomial option pricing: backward induction over shared-memory call
   values; pu/pd read every iteration (read-operand pattern). *)
let binomial_options () =
  let b = B.create "BinomialOptions" in
  let svals = D.input b and pu = D.input b and pd = D.input b and tid = D.input b in
  D.counted_loop b ~trips:16 (fun step ->
      let idx = D.iadd b tid step in
      let hi = D.ld_shared b (D.addr2 b ~base:svals ~idx) in
      let lo = D.ld_shared b (D.addr2 b ~base:svals ~idx:tid) in
      let v = D.fmul b hi pu in
      let v2 = D.ffma b lo pd v in
      D.st_shared b ~addr:(D.addr2 b ~base:svals ~idx:tid) ~value:v2);
  B.finalize b

(* Sliding-window box filter: the running sum is updated in place, the
   scale factor is a loop-invariant input. *)
let box_filter () =
  let b = B.create "BoxFilter" in
  let src = D.input b and dst = D.input b and tid = D.input b and scale = D.input b in
  let sum = D.mov0 b in
  D.counted_loop b ~trips:24 (fun i ->
      let idx = D.iadd b tid i in
      let incoming = D.ld_global b (D.addr2 b ~base:src ~idx) in
      let outgoing = D.ld_global b (D.addr2 b ~base:src ~idx:tid) in
      B.op2_into b Ir.Op.Fadd ~dst:sum sum incoming;
      B.op2_into b Ir.Op.Fsub ~dst:sum sum outgoing;
      let v = D.fmul b sum scale in
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:v);
  B.finalize b

(* Separable convolution: unrolled 8-tap FIR over shared memory with
   coefficient inputs re-read every iteration. *)
let convolution_separable () =
  let b = B.create "ConvolutionSeparable" in
  let smem = D.input b and dst = D.input b and tid = D.input b in
  let coeffs = D.inputs b 8 in
  D.counted_loop b ~trips:8 (fun i ->
      let base_idx = D.iadd b tid i in
      let acc = D.mov0 b in
      List.iter
        (fun c ->
          let x = D.ld_shared b (D.addr2 b ~base:smem ~idx:base_idx) in
          B.op3_into b Ir.Op.Ffma ~dst:acc x c acc)
        coeffs;
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx:base_idx) ~value:acc);
  B.finalize b

(* Texture-path convolution: the taps come from the texture unit. *)
let convolution_texture () =
  let b = B.create "ConvolutionTexture" in
  let dst = D.input b and tid = D.input b in
  let coeffs = D.inputs b 4 in
  D.counted_loop b ~trips:12 (fun i ->
      let base_idx = D.iadd b tid i in
      let acc = D.mov0 b in
      List.iter
        (fun c ->
          let t = D.tex b base_idx in
          B.op3_into b Ir.Op.Ffma ~dst:acc t c acc)
        coeffs;
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx:base_idx) ~value:acc);
  B.finalize b

(* 8x8 DCT butterflies on shared memory: values produced by one stage
   are each read twice by the next (read-2 burst pattern). *)
let dct8x8 () =
  let b = B.create "Dct8x8" in
  let smem = D.input b and tid = D.input b in
  D.counted_loop b ~trips:4 (fun row ->
      let base_idx = D.iadd b tid row in
      let xs = List.init 8 (fun _ -> D.ld_shared b (D.addr2 b ~base:smem ~idx:base_idx)) in
      let rec butterfly = function
        | a :: c :: rest ->
          let s = D.fadd b a c in
          let d = D.fsub b a c in
          (s, d) :: butterfly rest
        | _ -> []
      in
      let stage1 = butterfly xs in
      let sums = List.map fst stage1 and diffs = List.map snd stage1 in
      let stage2 = butterfly (sums @ diffs) in
      List.iter
        (fun (s, d) ->
          let v = D.ffma b s d s in
          D.st_shared b ~addr:(D.addr2 b ~base:smem ~idx:base_idx) ~value:v)
        stage2);
  B.finalize b

(* Haar wavelet: load a pair, produce average and difference. *)
let dwt_haar1d () =
  let b = B.create "DwtHaar1D" in
  let src = D.input b and dst_lo = D.input b and dst_hi = D.input b and tid = D.input b in
  let half = D.input b in
  D.counted_loop b ~trips:16 (fun i ->
      let idx = D.iadd b tid i in
      let a = D.ld_global b (D.addr2 b ~base:src ~idx) in
      let c = D.ld_global b (D.addr2 b ~base:src ~idx:tid) in
      let avg = D.fmul b (D.fadd b a c) half in
      let diff = D.fmul b (D.fsub b a c) half in
      D.st_global b ~addr:(D.addr2 b ~base:dst_lo ~idx) ~value:avg;
      D.st_global b ~addr:(D.addr2 b ~base:dst_hi ~idx) ~value:diff);
  B.finalize b

(* DXT compression: min/max endpoint search over an unrolled pixel
   block, then bit packing with shifts and ors. *)
let dxtc () =
  let b = B.create "Dxtc" in
  let src = D.input b and dst = D.input b and tid = D.input b in
  let lo = D.mov0 b in
  let hi = D.mov0 b in
  D.counted_loop b ~trips:4 (fun i ->
      let idx = D.iadd b tid i in
      let pixels = List.init 4 (fun _ -> D.ld_global b (D.addr2 b ~base:src ~idx)) in
      List.iter
        (fun p ->
          B.op2_into b Ir.Op.Imin ~dst:lo lo p;
          B.op2_into b Ir.Op.Imax ~dst:hi hi p)
        pixels;
      let range = D.isub b hi lo in
      let packed = D.ior b (D.ishl b lo range) (D.ishr b hi range) in
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:packed);
  B.finalize b

(* Eigenvalue bisection: data-dependent interval halving with a
   divergent hammock per step. *)
let eigen_values () =
  let b = B.create "EigenValues" in
  let diag = D.input b and tid = D.input b and out = D.input b in
  let left = D.mov0 b in
  let right = D.mov0 b in
  D.counted_loop b ~trips:20 (fun i ->
      let mid = D.fmul b (D.fadd b left right) (D.input b) in
      let idx = D.iadd b tid i in
      let d = D.ld_shared b (D.addr2 b ~base:diag ~idx) in
      let cmp = D.setp b d mid in
      D.if_then_else b ~pred:cmp ~taken_prob:0.5
        (fun () -> B.op1_into b Ir.Op.Mov ~dst:left mid)
        (fun () -> B.op1_into b Ir.Op.Mov ~dst:right mid));
  D.st_global b ~addr:out ~value:(D.fadd b left right);
  B.finalize b

(* Walsh-Hadamard butterfly passes over global memory. *)
let fast_walsh_transform () =
  let b = B.create "FastWalshTransform" in
  let data = D.input b and tid = D.input b in
  D.counted_loop b ~trips:10 (fun stride ->
      let pos = D.ishl b tid stride in
      let a = D.ld_global b (D.addr2 b ~base:data ~idx:pos) in
      let c = D.ld_global b (D.addr2 b ~base:data ~idx:tid) in
      let s = D.fadd b a c in
      let d = D.fsub b a c in
      D.st_global b ~addr:(D.addr2 b ~base:data ~idx:pos) ~value:s;
      D.st_global b ~addr:(D.addr2 b ~base:data ~idx:tid) ~value:d);
  B.finalize b

(* 256-bin histogram: bin index arithmetic and shared-memory counter
   updates through atomics. *)
let histogram () =
  let b = B.create "Histogram" in
  let src = D.input b and bins = D.input b and tid = D.input b in
  D.counted_loop b ~trips:24 (fun i ->
      let idx = D.iadd b tid i in
      let x = D.ld_global b (D.addr2 b ~base:src ~idx) in
      let bin = D.iand b (D.ishr b x x) x in
      let slot = D.addr2 b ~base:bins ~idx:bin in
      let one = D.mov0 b in
      ignore (D.atom_global b slot one));
  B.finalize b

(* Non-local-means-style denoising: per-neighbour distance, an SFU
   exponential weight, and two running accumulators. *)
let image_denoising () =
  let b = B.create "ImageDenoising" in
  let src = D.input b and dst = D.input b and tid = D.input b and center = D.input b in
  let wsum = D.mov0 b in
  let vsum = D.mov0 b in
  D.counted_loop b ~trips:9 (fun i ->
      let idx = D.iadd b tid i in
      let p = D.ld_global b (D.addr2 b ~base:src ~idx) in
      let d = D.fsub b p center in
      let d2 = D.fmul b d d in
      let w = D.ex2 b d2 in
      B.op2_into b Ir.Op.Fadd ~dst:wsum wsum w;
      B.op3_into b Ir.Op.Ffma ~dst:vsum p w vsum);
  let inv = D.rcp b wsum in
  D.st_global b ~addr:(D.addr2 b ~base:dst ~idx:tid) ~value:(D.fmul b vsum inv);
  B.finalize b

(* Mandelbrot iteration: z updated in place, divergent escape test. *)
let mandelbrot () =
  let b = B.create "Mandelbrot" in
  let cx = D.input b and cy = D.input b and out = D.input b and tid = D.input b in
  let zx = D.mov0 b in
  let zy = D.mov0 b in
  let count = D.mov0 b in
  D.counted_loop b ~trips:24 (fun _i ->
      (* Three unrolled z = z^2 + c steps per trip, as real codegen
         unrolls the escape loop. *)
      for _u = 1 to 3 do
        let xx = D.fmul b zx zx in
        let yy = D.fmul b zy zy in
        let xy = D.fmul b zx zy in
        B.op2_into b Ir.Op.Fadd ~dst:zx (D.fsub b xx yy) cx;
        B.op2_into b Ir.Op.Fadd ~dst:zy (D.fadd b xy xy) cy
      done;
      let xx = D.fmul b zx zx in
      let yy = D.fmul b zy zy in
      let mag = D.fadd b xx yy in
      let esc = D.setp b mag cx in
      D.if_then b ~pred:esc ~taken_prob:0.7 (fun () ->
          B.op2_into b Ir.Op.Iadd ~dst:count count count));
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:count;
  B.finalize b

(* Merge sort rank computation: compare-select ladders. *)
let merge_sort () =
  let b = B.create "MergeSort" in
  let keys = D.input b and dst = D.input b and tid = D.input b in
  D.counted_loop b ~trips:12 (fun i ->
      let idx = D.iadd b tid i in
      let a = D.ld_global b (D.addr2 b ~base:keys ~idx) in
      let c = D.ld_global b (D.addr2 b ~base:keys ~idx:tid) in
      let p = D.setp b a c in
      let lo = D.sel b p a c in
      let hi = D.sel b p c a in
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:lo;
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx:tid) ~value:hi);
  B.finalize b

(* Monte Carlo option pricing: an inlined RNG, Box–Muller SFU pipeline
   and a payoff accumulator. *)
let monte_carlo () =
  let b = B.create "MonteCarlo" in
  let seed = D.input b and strike = D.input b and out = D.input b and tid = D.input b in
  let state = D.mov b seed in
  let acc = D.mov0 b in
  D.counted_loop b ~trips:24 (fun _i ->
      (* xorshift: three shift/xor steps *)
      B.op2_into b Ir.Op.Ixor ~dst:state state (D.ishl b state state);
      B.op2_into b Ir.Op.Ixor ~dst:state state (D.ishr b state state);
      B.op2_into b Ir.Op.Ixor ~dst:state state (D.ishl b state state);
      let u = D.cvt b state in
      (* Box-Muller: both outputs share sqrt(-2 ln u) *)
      let l = D.lg2 b u in
      let r = D.sqrt b l in
      let c = D.cos b u in
      let si = D.sin b u in
      let g1 = D.fmul b r c in
      let g2 = D.fmul b r si in
      (* geometric Brownian step and payoff for both paths *)
      let s1 = D.ffma b g1 strike strike in
      let s2 = D.ffma b g2 strike strike in
      let p1 = D.fmax b (D.fsub b s1 strike) strike in
      let p2 = D.fmax b (D.fsub b s2 strike) strike in
      B.op2_into b Ir.Op.Fadd ~dst:acc acc p1;
      B.op2_into b Ir.Op.Fadd ~dst:acc acc p2);
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:acc;
  B.finalize b

(* N-body inner loop: per-body distance, rsqrt, three force
   accumulators re-read every iteration. *)
let nbody () =
  let b = B.create "Nbody" in
  let pos = D.input b and px = D.input b and py = D.input b and pz = D.input b in
  let ax = D.mov0 b in
  let ay = D.mov0 b in
  let az = D.mov0 b in
  D.counted_loop b ~trips:32 (fun j ->
      let bx = D.ld_shared b (D.addr2 b ~base:pos ~idx:j) in
      let by = D.ld_shared b (D.addr2 b ~base:pos ~idx:j) in
      let bz = D.ld_shared b (D.addr2 b ~base:pos ~idx:j) in
      let dx = D.fsub b bx px in
      let dy = D.fsub b by py in
      let dz = D.fsub b bz pz in
      let r2 = D.ffma b dx dx (D.ffma b dy dy (D.fmul b dz dz)) in
      let inv = D.rsqrt b r2 in
      let inv3 = D.fmul b (D.fmul b inv inv) inv in
      B.op3_into b Ir.Op.Ffma ~dst:ax dx inv3 ax;
      B.op3_into b Ir.Op.Ffma ~dst:ay dy inv3 ay;
      B.op3_into b Ir.Op.Ffma ~dst:az dz inv3 az);
  let out = D.input b in
  D.st_global b ~addr:out ~value:(D.fadd b ax (D.fadd b ay az));
  B.finalize b

(* Recursive Gaussian IIR filter: four loop-carried taps rotated every
   iteration — long-lived values the ORF cannot hold across strands. *)
let recursive_gaussian () =
  let b = B.create "RecursiveGaussian" in
  let src = D.input b and dst = D.input b and tid = D.input b in
  let a0 = D.input b and a1 = D.input b and b0 = D.input b and b1 = D.input b in
  let yp1 = D.mov0 b in
  let yp2 = D.mov0 b in
  let xp1 = D.mov0 b in
  let xp2 = D.mov0 b in
  D.counted_loop b ~trips:24 (fun i ->
      let idx = D.iadd b tid i in
      let x = D.ld_global b (D.addr2 b ~base:src ~idx) in
      let t0 = D.fmul b x a0 in
      let t1 = D.ffma b xp1 a1 t0 in
      let t2 = D.ffma b yp1 b0 t1 in
      let y = D.ffma b yp2 b1 t2 in
      B.op1_into b Ir.Op.Mov ~dst:xp2 xp1;
      B.op1_into b Ir.Op.Mov ~dst:xp1 x;
      B.op1_into b Ir.Op.Mov ~dst:yp2 yp1;
      B.op1_into b Ir.Op.Mov ~dst:yp1 y;
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:y);
  B.finalize b

(* Sobel edge filter: 3x3 texture window, two gradient sums, threshold
   select. *)
let sobel_filter () =
  let b = B.create "SobelFilter" in
  let dst = D.input b and tid = D.input b and thresh = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let window = List.init 9 (fun _ -> D.tex b idx) in
      let gx =
        List.fold_left (fun acc p -> D.ffma b p thresh acc) (D.mov0 b) window
      in
      let gy = D.reduce_tree b window in
      let mag = D.ffma b gx gx (D.fmul b gy gy) in
      let p = D.setp b mag thresh in
      let v = D.sel b p mag thresh in
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:v);
  B.finalize b

(* Sobol quasi-random generation: direction-vector XOR ladder. *)
let sobol_qrng () =
  let b = B.create "SobolQRNG" in
  let directions = D.input b and dst = D.input b and tid = D.input b in
  let state = D.mov0 b in
  D.counted_loop b ~trips:20 (fun i ->
      let idx = D.iadd b tid i in
      let dvec = D.ld_global b (D.addr2 b ~base:directions ~idx) in
      let bit = D.iand b idx idx in
      B.op2_into b Ir.Op.Ixor ~dst:state state (D.iand b dvec bit);
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:(D.mov b state));
  B.finalize b

(* Bitonic sorting network stage: shared-memory compare-exchange with
   values re-read across substages. *)
let sorting_networks () =
  let b = B.create "SortingNetworks" in
  let smem = D.input b and tid = D.input b in
  D.counted_loop b ~trips:6 (fun stage ->
      let partner = D.ixor b tid stage in
      let a = D.ld_shared b (D.addr2 b ~base:smem ~idx:tid) in
      let c = D.ld_shared b (D.addr2 b ~base:smem ~idx:partner) in
      let p = D.setp b a c in
      let lo = D.sel b p a c in
      let hi = D.sel b p c a in
      D.st_shared b ~addr:(D.addr2 b ~base:smem ~idx:tid) ~value:lo;
      D.st_shared b ~addr:(D.addr2 b ~base:smem ~idx:partner) ~value:hi);
  B.finalize b

(* Volume ray marching: texture sample per step, front-to-back alpha
   blending into two live-across-iteration accumulators. *)
let volume_render () =
  let b = B.create "VolumeRender" in
  let out = D.input b and tid = D.input b and step = D.input b in
  let color = D.mov0 b in
  let alpha = D.mov0 b in
  let pos = D.mov b tid in
  D.counted_loop b ~trips:16 (fun _i ->
      let sample = D.tex b pos in
      let opacity = D.fmul b sample step in
      let contrib = D.fmul b opacity alpha in
      B.op3_into b Ir.Op.Ffma ~dst:color sample contrib color;
      B.op2_into b Ir.Op.Fadd ~dst:alpha alpha opacity;
      B.op2_into b Ir.Op.Iadd ~dst:pos pos step;
      let full = D.setp b alpha step in
      D.if_then b ~pred:full ~taken_prob:0.8 (fun () ->
          D.dead_store_value b alpha color));
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:color;
  B.finalize b



(* ConvolutionSeparable's column pass: same FIR but strided access and
   a fresh coefficient set. *)
let convolution_columns () =
  let b = B.create "ConvolutionSeparable.columns" in
  let smem = D.input b and dst = D.input b and tid = D.input b and pitch = D.input b in
  let coeffs = D.inputs b 8 in
  D.counted_loop b ~trips:8 (fun i ->
      let row_base = D.imad b i pitch tid in
      let acc = D.mov0 b in
      List.iter
        (fun c ->
          let x = D.ld_shared b (D.addr2 b ~base:smem ~idx:row_base) in
          B.op3_into b Ir.Op.Ffma ~dst:acc x c acc)
        coeffs;
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx:row_base) ~value:acc);
  B.finalize b

(* Dct8x8's inverse transform: the same butterfly structure applied to
   quantized coefficients loaded from global memory. *)
let idct8x8 () =
  let b = B.create "Dct8x8.inverse" in
  let coeffs = D.input b and out = D.input b and tid = D.input b in
  D.counted_loop b ~trips:4 (fun row ->
      let base_idx = D.iadd b tid row in
      let xs = List.init 4 (fun _ -> D.ld_global b (D.addr2 b ~base:coeffs ~idx:base_idx)) in
      let rec butterfly = function
        | a :: c :: rest -> (D.fadd b a c, D.fsub b a c) :: butterfly rest
        | _ -> []
      in
      List.iter
        (fun (s, d) ->
          let v = D.ffma b s d s in
          D.st_global b ~addr:(D.addr2 b ~base:out ~idx:base_idx) ~value:v)
        (butterfly xs));
  B.finalize b

(* SortingNetworks' global merge stage: compare-exchange across block
   boundaries through global memory. *)
let sorting_merge_global () =
  let b = B.create "SortingNetworks.mergeGlobal" in
  let keys = D.input b and tid = D.input b in
  D.counted_loop b ~trips:4 (fun stride ->
      let partner = D.ior b tid stride in
      let a = D.ld_global b (D.addr2 b ~base:keys ~idx:tid) in
      let c = D.ld_global b (D.addr2 b ~base:keys ~idx:partner) in
      let p = D.setp b a c in
      let lo = D.sel b p a c in
      let hi = D.sel b p c a in
      D.st_global b ~addr:(D.addr2 b ~base:keys ~idx:tid) ~value:lo;
      D.st_global b ~addr:(D.addr2 b ~base:keys ~idx:partner) ~value:hi);
  B.finalize b

(* MergeSort's rank computation: binary search of each key in the
   opposite segment (data-dependent hammocks). *)
let merge_sort_ranks () =
  let b = B.create "MergeSort.ranks" in
  let keys = D.input b and ranks = D.input b and tid = D.input b in
  let key = D.ld_global b (D.addr2 b ~base:keys ~idx:tid) in
  let lo = D.mov0 b in
  let hi = D.mov0 b in
  D.counted_loop b ~trips:6 (fun _i ->
      let mid = D.ishr b (D.iadd b lo hi) lo in
      let probe = D.ld_global b (D.addr2 b ~base:keys ~idx:mid) in
      let p = D.setp b probe key in
      D.if_then_else b ~pred:p ~taken_prob:0.5
        (fun () -> B.op1_into b Ir.Op.Mov ~dst:lo mid)
        (fun () -> B.op1_into b Ir.Op.Mov ~dst:hi mid));
  D.st_global b ~addr:(D.addr2 b ~base:ranks ~idx:tid) ~value:lo;
  B.finalize b

(* VolumeRender's gradient precomputation: central differences over
   six texture samples, normalized through the SFU. *)
let volume_gradients () =
  let b = B.create "VolumeRender.gradients" in
  let out = D.input b and tid = D.input b in
  D.counted_loop b ~trips:6 (fun i ->
      let idx = D.iadd b tid i in
      let xp = D.tex b idx and xm = D.tex b idx in
      let yp = D.tex b idx and ym = D.tex b idx in
      let zp = D.tex b idx and zm = D.tex b idx in
      let gx = D.fsub b xp xm in
      let gy = D.fsub b yp ym in
      let gz = D.fsub b zp zm in
      let len2 = D.ffma b gx gx (D.ffma b gy gy (D.fmul b gz gz)) in
      let inv = D.rsqrt b len2 in
      D.st_global b ~addr:(D.addr2 b ~base:out ~idx) ~value:(D.fmul b gx inv));
  B.finalize b

(* ------------------------------------------------------------------ *)
(* Secondary kernels: real applications launch several kernels; these
   model the non-dominant ones the paper's full-app runs also covered. *)

(* Reduction's final stage: a single block combines the per-block
   partial sums (short, shared-memory bound). *)
let reduction_final () =
  let b = B.create "Reduction.final" in
  let partials = D.input b and out = D.input b and tid = D.input b in
  let acc = D.mov0 b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let p = D.ld_shared b (D.addr2 b ~base:partials ~idx) in
      B.op2_into b Ir.Op.Fadd ~dst:acc acc p);
  D.st_global b ~addr:out ~value:acc;
  B.finalize b

(* Histogram's merge stage: sum per-block partial histograms. *)
let histogram_merge () =
  let b = B.create "Histogram.merge" in
  let partial = D.input b and final = D.input b and bin = D.input b in
  let sum = D.mov0 b in
  D.counted_loop b ~trips:8 (fun blk ->
      let idx = D.iadd b bin blk in
      let v = D.ld_global b (D.addr2 b ~base:partial ~idx) in
      B.op2_into b Ir.Op.Iadd ~dst:sum sum v);
  D.st_global b ~addr:(D.addr2 b ~base:final ~idx:bin) ~value:sum;
  B.finalize b

(* MonteCarlo's RNG-state setup: pure integer scrambling, no loads. *)
let monte_carlo_setup () =
  let b = B.create "MonteCarlo.rngSetup" in
  let seed0 = D.input b and states = D.input b and tid = D.input b in
  let s = D.ixor b seed0 tid in
  let s1 = D.ixor b (D.ishl b s s) s in
  let s2 = D.ixor b (D.ishr b s1 s1) s1 in
  let s3 = D.imad b s2 s2 tid in
  D.st_global b ~addr:(D.addr2 b ~base:states ~idx:tid) ~value:s3;
  B.finalize b

(* BinomialOptions' leaf initialization: expiry values via SFU. *)
let binomial_init () =
  let b = B.create "BinomialOptions.init" in
  let svals = D.input b and strike = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let up = D.cvt b idx in
      let price = D.ex2 b up in
      let payoff = D.fmax b (D.fsub b price strike) (D.mov0 b) in
      D.st_shared b ~addr:(D.addr2 b ~base:svals ~idx) ~value:payoff);
  B.finalize b

(* Nbody's integrator: read acceleration, update velocity/position. *)
let nbody_integrate () =
  let b = B.create "Nbody.integrate" in
  let pos = D.input b and vel = D.input b and acc = D.input b and dt = D.input b in
  let tid = D.input b in
  D.counted_loop b ~trips:4 (fun i ->
      let idx = D.iadd b tid i in
      let a = D.ld_global b (D.addr2 b ~base:acc ~idx) in
      let v = D.ld_global b (D.addr2 b ~base:vel ~idx) in
      let p = D.ld_global b (D.addr2 b ~base:pos ~idx) in
      let v2 = D.ffma b a dt v in
      let p2 = D.ffma b v2 dt p in
      D.st_global b ~addr:(D.addr2 b ~base:vel ~idx) ~value:v2;
      D.st_global b ~addr:(D.addr2 b ~base:pos ~idx) ~value:p2);
  B.finalize b

(* FastWalshTransform's scaling epilogue. *)
let fwt_scale () =
  let b = B.create "FastWalshTransform.scale" in
  let data = D.input b and norm = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let v = D.ld_global b (D.addr2 b ~base:data ~idx) in
      D.st_global b ~addr:(D.addr2 b ~base:data ~idx) ~value:(D.fmul b v norm));
  B.finalize b


(* BoxFilter's vertical pass: same sliding window along columns. *)
let box_filter_vertical () =
  let b = B.create "BoxFilter.vertical" in
  let src = D.input b and dst = D.input b and tid = D.input b and scale = D.input b in
  let pitch = D.input b in
  let sum = D.mov0 b in
  D.counted_loop b ~trips:16 (fun i ->
      let idx = D.imad b i pitch tid in
      let v = D.ld_global b (D.addr2 b ~base:src ~idx) in
      B.op2_into b Ir.Op.Fadd ~dst:sum sum v;
      D.st_global b ~addr:(D.addr2 b ~base:dst ~idx) ~value:(D.fmul b sum scale));
  B.finalize b

(* DwtHaar1D's second decomposition level over the approximations. *)
let dwt_haar_level2 () =
  let b = B.create "DwtHaar1D.level2" in
  let approx = D.input b and out = D.input b and tid = D.input b and half = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let a = D.ld_shared b (D.addr2 b ~base:approx ~idx) in
      let c = D.ld_shared b (D.addr2 b ~base:approx ~idx:tid) in
      D.st_shared b ~addr:(D.addr2 b ~base:out ~idx) ~value:(D.fmul b (D.fadd b a c) half);
      D.st_shared b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:(D.fmul b (D.fsub b a c) half));
  B.finalize b

(* ImageDenoising's KNN variant: weight by rank instead of distance. *)
let image_denoising_knn () =
  let b = B.create "ImageDenoising.knn" in
  let src = D.input b and dst = D.input b and tid = D.input b and center = D.input b in
  let wsum = D.mov0 b in
  let vsum = D.mov0 b in
  D.counted_loop b ~trips:9 (fun i ->
      let idx = D.iadd b tid i in
      let p = D.ld_global b (D.addr2 b ~base:src ~idx) in
      let d = D.fsub b p center in
      let rank = D.fmax b d (D.fsub b center p) in
      let w = D.rcp b (D.fadd b rank rank) in
      B.op2_into b Ir.Op.Fadd ~dst:wsum wsum w;
      B.op3_into b Ir.Op.Ffma ~dst:vsum p w vsum);
  D.st_global b ~addr:(D.addr2 b ~base:dst ~idx:tid) ~value:(D.fmul b vsum (D.rcp b wsum));
  B.finalize b

(* Mandelbrot's colouring pass: map iteration counts to RGBA. *)
let mandelbrot_colors () =
  let b = B.create "Mandelbrot.colors" in
  let counts_buf = D.input b and image = D.input b and tid = D.input b and palette = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let n = D.ld_global b (D.addr2 b ~base:counts_buf ~idx) in
      let hue = D.iand b n palette in
      let r = B.op1 b Ir.Op.Ishl hue in
      let g = B.op1 b Ir.Op.Ishr hue in
      let rgba = D.ior b (D.ior b r g) hue in
      D.st_global b ~addr:(D.addr2 b ~base:image ~idx) ~value:rgba);
  B.finalize b

(* SobolQRNG's scrambling pass over the generated points. *)
let sobol_scramble () =
  let b = B.create "SobolQRNG.scramble" in
  let points = D.input b and scramble = D.input b and tid = D.input b in
  D.counted_loop b ~trips:10 (fun i ->
      let idx = D.iadd b tid i in
      let v = D.ld_global b (D.addr2 b ~base:points ~idx) in
      let s = D.ixor b v scramble in
      let f = D.cvt b s in
      D.st_global b ~addr:(D.addr2 b ~base:points ~idx) ~value:f);
  B.finalize b

let benchmarks =
  [
    entry "BicubicTexture" ~description:"texture fetches blended with re-read cubic weights"
      bicubic_texture;
    entry "BinomialOptions" ~description:"backward induction over shared memory; pu/pd re-read"
      ~extras:[ binomial_init ] binomial_options;
    entry "BoxFilter" ~description:"sliding-window sum updated in place"
      ~extras:[ box_filter_vertical ] box_filter;
    entry "ConvolutionSeparable" ~description:"unrolled 8-tap FIR over shared memory"
      ~extras:[ convolution_columns ] convolution_separable;
    entry "ConvolutionTexture" ~description:"4-tap FIR fed by the texture unit" convolution_texture;
    entry "Dct8x8" ~description:"butterfly stages with read-twice values"
      ~extras:[ idct8x8 ] dct8x8;
    entry "DwtHaar1D" ~description:"pairwise average/difference wavelet step"
      ~extras:[ dwt_haar_level2 ] dwt_haar1d;
    entry "Dxtc" ~description:"endpoint min/max search and bit packing" dxtc;
    entry "EigenValues" ~description:"bisection with divergent interval update" eigen_values;
    entry "FastWalshTransform" ~description:"global-memory butterfly passes"
      ~extras:[ fwt_scale ] fast_walsh_transform;
    entry "Histogram" ~description:"bin arithmetic and atomic counter updates"
      ~extras:[ histogram_merge ] histogram;
    entry "ImageDenoising" ~description:"per-neighbour weights via SFU exponential"
      ~extras:[ image_denoising_knn ] image_denoising;
    entry "Mandelbrot" ~description:"in-place complex iteration with escape test"
      ~extras:[ mandelbrot_colors ] mandelbrot;
    entry "MatrixMul" ~description:"tiled GEMM with shared-memory staging" matrix_mul;
    entry "MergeSort" ~description:"compare-select rank ladders"
      ~extras:[ merge_sort_ranks ] merge_sort;
    entry "MonteCarlo" ~description:"inlined RNG and Box-Muller SFU pipeline"
      ~extras:[ monte_carlo_setup ] monte_carlo;
    entry "Nbody" ~description:"distance/rsqrt inner loop with three accumulators"
      ~extras:[ nbody_integrate ] nbody;
    entry "RecursiveGaussian" ~description:"IIR filter with four rotated loop-carried taps"
      recursive_gaussian;
    entry "Reduction" ~description:"global accumulation + shared-memory tree (worst case)"
      ~extras:[ reduction_final ] reduction;
    entry "ScalarProd" ~description:"tight load-FMA dot product (worst case)" scalar_prod;
    entry "SobelFilter" ~description:"3x3 texture window gradient filter" sobel_filter;
    entry "SobolQRNG" ~description:"direction-vector XOR ladder"
      ~extras:[ sobol_scramble ] sobol_qrng;
    entry "SortingNetworks" ~description:"bitonic compare-exchange on shared memory"
      ~extras:[ sorting_merge_global ] sorting_networks;
    entry "VectorAdd" ~description:"pure streaming add" vector_add;
    entry "VolumeRender" ~description:"ray marching with alpha-blend accumulators"
      ~extras:[ volume_gradients ] volume_render;
  ]
