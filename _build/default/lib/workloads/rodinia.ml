(* The 6 Rodinia applications of paper Table 1. *)

module B = Ir.Builder
module D = Dsl

let entry = Bench.make Suite.Rodinia

(* Back-propagation forward pass: weighted sums of hidden units; the
   input activation is re-read against each weight. *)
let backprop () =
  let b = B.create "backprop" in
  let weights = D.input b and acts = D.input b and out = D.input b and tid = D.input b in
  let sum = D.mov0 b in
  D.counted_loop b ~trips:16 (fun j ->
      let w = D.ld_global b (D.addr2 b ~base:weights ~idx:j) in
      let a = D.ld_shared b (D.addr2 b ~base:acts ~idx:j) in
      B.op3_into b Ir.Op.Ffma ~dst:sum w a sum);
  (* Sigmoid via SFU: 1 / (1 + 2^-x). *)
  let e = D.ex2 b sum in
  let denom = D.fadd b e e in
  let act = D.rcp b denom in
  D.st_global b ~addr:(D.addr2 b ~base:out ~idx:tid) ~value:act;
  B.finalize b

(* HotSpot thermal stencil: five-point neighbourhood from shared
   memory, several re-read coefficients. *)
let hotspot () =
  let b = B.create "hotspot" in
  let temp = D.input b and power = D.input b and tid = D.input b in
  let rx = D.input b and ry = D.input b and rz = D.input b in
  D.counted_loop b ~trips:8 (fun step ->
      let idx = D.iadd b tid step in
      let center = D.ld_shared b (D.addr2 b ~base:temp ~idx) in
      let north = D.ld_shared b (D.addr2 b ~base:temp ~idx:tid) in
      let south = D.ld_shared b (D.addr2 b ~base:temp ~idx) in
      let east = D.ld_shared b (D.addr2 b ~base:temp ~idx:tid) in
      let west = D.ld_shared b (D.addr2 b ~base:temp ~idx) in
      let p = D.ld_global b (D.addr2 b ~base:power ~idx) in
      let horiz = D.fmul b (D.fadd b (D.fsub b east center) (D.fsub b west center)) rx in
      let vert = D.fmul b (D.fadd b (D.fsub b north center) (D.fsub b south center)) ry in
      let delta = D.ffma b p rz (D.fadd b horiz vert) in
      let updated = D.fadd b center delta in
      D.st_shared b ~addr:(D.addr2 b ~base:temp ~idx) ~value:updated);
  B.finalize b

(* Haar wavelet transform (hwt): butterfly passes like DwtHaar1D but
   in-place over shared memory with strided partners. *)
let hwt () =
  let b = B.create "hwt" in
  let data = D.input b and tid = D.input b and scale = D.input b in
  D.counted_loop b ~trips:10 (fun level ->
      let partner = D.ishl b tid level in
      let a = D.ld_shared b (D.addr2 b ~base:data ~idx:tid) in
      let c = D.ld_shared b (D.addr2 b ~base:data ~idx:partner) in
      let avg = D.fmul b (D.fadd b a c) scale in
      let diff = D.fmul b (D.fsub b a c) scale in
      D.st_shared b ~addr:(D.addr2 b ~base:data ~idx:tid) ~value:avg;
      D.st_shared b ~addr:(D.addr2 b ~base:data ~idx:partner) ~value:diff);
  B.finalize b

(* LU decomposition elimination step: the pivot reciprocal is computed
   once per row and re-read against every column. *)
let lu () =
  let b = B.create "lu" in
  let matrix = D.input b and tid = D.input b in
  D.counted_loop b ~trips:8 (fun row ->
      let pivot_addr = D.addr3 b ~base:matrix ~row ~col:row in
      let pivot = D.ld_global b pivot_addr in
      let inv = D.rcp b pivot in
      D.counted_loop b ~trips:8 (fun col ->
          let idx = D.iadd b tid col in
          let a = D.ld_global b (D.addr2 b ~base:matrix ~idx) in
          let l = D.fmul b a inv in
          let update = D.ffma b l pivot a in
          D.st_global b ~addr:(D.addr2 b ~base:matrix ~idx) ~value:update));
  B.finalize b

(* Needleman–Wunsch DP wavefront: max over three neighbours plus a
   match/mismatch hammock. *)
let needle () =
  let b = B.create "needle" in
  let score = D.input b and ref_seq = D.input b and penalty = D.input b and tid = D.input b in
  D.counted_loop b ~trips:16 (fun d ->
      let idx = D.iadd b tid d in
      let nw = D.ld_shared b (D.addr2 b ~base:score ~idx) in
      let n = D.ld_shared b (D.addr2 b ~base:score ~idx:tid) in
      let w = D.ld_shared b (D.addr2 b ~base:score ~idx) in
      let r = D.ld_global b (D.addr2 b ~base:ref_seq ~idx) in
      let diag = D.iadd b nw r in
      let vert = D.isub b n penalty in
      let horiz = D.isub b w penalty in
      let best = D.imax b diag (D.imax b vert horiz) in
      let p = D.setp b best diag in
      D.if_then b ~pred:p ~taken_prob:0.5 (fun () ->
          D.st_shared b ~addr:(D.addr2 b ~base:score ~idx) ~value:diag);
      D.st_shared b ~addr:(D.addr2 b ~base:score ~idx:tid) ~value:best);
  B.finalize b

(* SRAD speckle-reducing diffusion: gradient stencil, divergence-like
   coefficient with SFU ops, two passes worth of intermediates. *)
let srad () =
  let b = B.create "srad" in
  let img = D.input b and coeff = D.input b and out = D.input b and tid = D.input b in
  let q0 = D.input b in
  D.counted_loop b ~trips:12 (fun i ->
      let idx = D.iadd b tid i in
      let c = D.ld_global b (D.addr2 b ~base:img ~idx) in
      let n = D.ld_global b (D.addr2 b ~base:img ~idx:tid) in
      let s = D.ld_global b (D.addr2 b ~base:img ~idx) in
      let e = D.ld_global b (D.addr2 b ~base:img ~idx:tid) in
      let dn = D.fsub b n c in
      let ds = D.fsub b s c in
      let de = D.fsub b e c in
      let g2 = D.ffma b dn dn (D.ffma b ds ds (D.fmul b de de)) in
      let l = D.fadd b (D.fadd b dn ds) de in
      let num = D.ffma b l l g2 in
      let den = D.ffma b l q0 num in
      let q = D.fmul b num (D.rcp b den) in
      let cval = D.rcp b (D.ffma b q q0 q) in
      D.st_global b ~addr:(D.addr2 b ~base:coeff ~idx) ~value:cval;
      let update = D.ffma b cval dn c in
      D.st_global b ~addr:(D.addr2 b ~base:out ~idx) ~value:update);
  B.finalize b


(* ------------------------------------------------------------------ *)
(* Secondary kernels. *)

(* Back-propagation's weight-adjustment pass: delta x activation FMA
   into each weight, momentum term re-read. *)
let backprop_adjust () =
  let b = B.create "backprop.adjust" in
  let weights = D.input b and deltas = D.input b and acts = D.input b in
  let momentum = D.input b and tid = D.input b in
  D.counted_loop b ~trips:12 (fun j ->
      let idx = D.iadd b tid j in
      let w = D.ld_global b (D.addr2 b ~base:weights ~idx) in
      let d = D.ld_shared b (D.addr2 b ~base:deltas ~idx) in
      let a = D.ld_shared b (D.addr2 b ~base:acts ~idx) in
      let grad = D.fmul b d a in
      let w2 = D.ffma b grad momentum w in
      D.st_global b ~addr:(D.addr2 b ~base:weights ~idx) ~value:w2);
  B.finalize b

(* SRAD's second pass: apply the diffusion coefficients computed by the
   first pass to update the image. *)
let srad_pass2 () =
  let b = B.create "srad.pass2" in
  let img = D.input b and coeff = D.input b and lambda = D.input b and tid = D.input b in
  D.counted_loop b ~trips:12 (fun i ->
      let idx = D.iadd b tid i in
      let c_c = D.ld_global b (D.addr2 b ~base:coeff ~idx) in
      let c_s = D.ld_global b (D.addr2 b ~base:coeff ~idx:tid) in
      let c_e = D.ld_global b (D.addr2 b ~base:coeff ~idx) in
      let v = D.ld_global b (D.addr2 b ~base:img ~idx) in
      let div = D.fadd b (D.fadd b c_c c_s) c_e in
      let v2 = D.ffma b div lambda v in
      D.st_global b ~addr:(D.addr2 b ~base:img ~idx) ~value:v2);
  B.finalize b


(* HotSpot's pyramid step: a second stencil pass over the halo-expanded
   tile before results are committed. *)
let hotspot_commit () =
  let b = B.create "hotspot.commit" in
  let temp = D.input b and out = D.input b and tid = D.input b and amb = D.input b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.iadd b tid i in
      let v = D.ld_shared b (D.addr2 b ~base:temp ~idx) in
      let cooled = D.ffma b v amb v in
      D.st_global b ~addr:(D.addr2 b ~base:out ~idx) ~value:cooled);
  B.finalize b

(* hwt's inverse transform: reconstruct from averages/differences. *)
let hwt_inverse () =
  let b = B.create "hwt.inverse" in
  let data = D.input b and tid = D.input b and scale = D.input b in
  D.counted_loop b ~trips:10 (fun level ->
      let partner = D.ishr b tid level in
      let avg = D.ld_shared b (D.addr2 b ~base:data ~idx:tid) in
      let diff = D.ld_shared b (D.addr2 b ~base:data ~idx:partner) in
      D.st_shared b ~addr:(D.addr2 b ~base:data ~idx:tid)
        ~value:(D.fmul b (D.fadd b avg diff) scale);
      D.st_shared b ~addr:(D.addr2 b ~base:data ~idx:partner)
        ~value:(D.fmul b (D.fsub b avg diff) scale));
  B.finalize b

(* LU's diagonal kernel: invert the pivot block (SFU reciprocal per
   diagonal element, serial dependence down the diagonal). *)
let lu_diagonal () =
  let b = B.create "lu.diagonal" in
  let matrix = D.input b and tid = D.input b in
  let carry = D.mov0 b in
  D.counted_loop b ~trips:8 (fun i ->
      let idx = D.addr3 b ~base:matrix ~row:i ~col:tid in
      let d = D.ld_global b idx in
      let inv = D.rcp b d in
      B.op3_into b Ir.Op.Ffma ~dst:carry inv carry inv;
      D.st_global b ~addr:idx ~value:carry);
  B.finalize b

(* Needleman-Wunsch traceback: follow max-score predecessors. *)
let needle_traceback () =
  let b = B.create "needle.traceback" in
  let score = D.input b and path = D.input b and tid = D.input b in
  let pos = D.mov b tid in
  D.counted_loop b ~trips:12 (fun _i ->
      let here = D.ld_global b (D.addr2 b ~base:score ~idx:pos) in
      let diag = D.ld_global b (D.addr2 b ~base:score ~idx:pos) in
      let p = D.setp b here diag in
      D.if_then_else b ~pred:p ~taken_prob:0.5
        (fun () -> B.op2_into b Ir.Op.Iadd ~dst:pos pos tid)
        (fun () -> B.op2_into b Ir.Op.Isub ~dst:pos pos tid);
      D.st_global b ~addr:(D.addr2 b ~base:path ~idx:pos) ~value:here);
  B.finalize b

let benchmarks =
  [
    entry "backprop" ~description:"weighted-sum forward pass with SFU sigmoid"
      ~extras:[ backprop_adjust ] backprop;
    entry "hotspot" ~description:"five-point thermal stencil on shared memory"
      ~extras:[ hotspot_commit ] hotspot;
    entry "hwt" ~description:"in-place Haar butterfly passes"
      ~extras:[ hwt_inverse ] hwt;
    entry "lu" ~description:"row elimination with re-read pivot reciprocal"
      ~extras:[ lu_diagonal ] lu;
    entry "needle" ~description:"DP wavefront max with divergent traceback store"
      ~extras:[ needle_traceback ] needle;
    entry "srad" ~description:"gradient stencil + diffusion coefficient pipeline"
      ~extras:[ srad_pass2 ] srad;
  ]
