(** Kernel-construction idioms shared by the synthetic benchmarks.

    The benchmarks model the register-usage signatures of the paper's
    applications (Fig. 2), not their numerics: what matters to every
    measured quantity is which registers are defined and read where,
    on which function units, and around which control flow.

    Registers created by {!inputs} are read without ever being written
    — kernel parameters and thread ids pre-loaded in the MRF, the
    read-operand-allocation candidates of Sec. 4.4. *)

type reg = Ir.Reg.t

val inputs : Ir.Builder.t -> int -> reg list
(** Fresh never-written registers (kernel parameters). *)

val input : Ir.Builder.t -> reg

(** {2 Arithmetic wrappers} — fresh destination, 32-bit *)

val iadd : Ir.Builder.t -> reg -> reg -> reg
val isub : Ir.Builder.t -> reg -> reg -> reg
val imul : Ir.Builder.t -> reg -> reg -> reg
val imad : Ir.Builder.t -> reg -> reg -> reg -> reg
val iand : Ir.Builder.t -> reg -> reg -> reg
val ior : Ir.Builder.t -> reg -> reg -> reg
val ixor : Ir.Builder.t -> reg -> reg -> reg
val ishl : Ir.Builder.t -> reg -> reg -> reg
val ishr : Ir.Builder.t -> reg -> reg -> reg
val imin : Ir.Builder.t -> reg -> reg -> reg
val imax : Ir.Builder.t -> reg -> reg -> reg
val fadd : Ir.Builder.t -> reg -> reg -> reg
val fsub : Ir.Builder.t -> reg -> reg -> reg
val fmul : Ir.Builder.t -> reg -> reg -> reg
val ffma : Ir.Builder.t -> reg -> reg -> reg -> reg
val fmin : Ir.Builder.t -> reg -> reg -> reg
val fmax : Ir.Builder.t -> reg -> reg -> reg
val mov : Ir.Builder.t -> reg -> reg
val mov0 : Ir.Builder.t -> reg
(** Immediate move (no sources). *)

val setp : Ir.Builder.t -> reg -> reg -> reg
val sel : Ir.Builder.t -> reg -> reg -> reg -> reg
val cvt : Ir.Builder.t -> reg -> reg

(** {2 SFU / memory / texture wrappers} *)

val rcp : Ir.Builder.t -> reg -> reg
val sqrt : Ir.Builder.t -> reg -> reg
val rsqrt : Ir.Builder.t -> reg -> reg
val sin : Ir.Builder.t -> reg -> reg
val cos : Ir.Builder.t -> reg -> reg
val ex2 : Ir.Builder.t -> reg -> reg
val lg2 : Ir.Builder.t -> reg -> reg

val ld_global : Ir.Builder.t -> reg -> reg
val ld_global64 : Ir.Builder.t -> reg -> reg
(** 64-bit load: the value occupies two ORF entries when allocated. *)

val st_global : Ir.Builder.t -> addr:reg -> value:reg -> unit
val ld_shared : Ir.Builder.t -> reg -> reg
val st_shared : Ir.Builder.t -> addr:reg -> value:reg -> unit
val atom_global : Ir.Builder.t -> reg -> reg -> reg
val tex : Ir.Builder.t -> reg -> reg

val addr2 : Ir.Builder.t -> base:reg -> idx:reg -> reg
(** [base + idx] address computation. *)

val addr3 : Ir.Builder.t -> base:reg -> row:reg -> col:reg -> reg
(** [base + row * pitch + col], as one [Imad] plus one [Iadd]. *)

(** {2 Control flow} *)

val counted_loop : Ir.Builder.t -> trips:int -> (reg -> unit) -> unit
(** A backward-branch loop executing the body [trips] times; the body
    receives the induction variable.  The induction update and the
    loop-exit compare/branch are emitted after the body. *)

val if_then : Ir.Builder.t -> pred:reg -> taken_prob:float -> (unit -> unit) -> unit
(** A forward hammock: with [taken_prob] the body is skipped. *)

val if_then_else :
  Ir.Builder.t -> pred:reg -> taken_prob:float -> (unit -> unit) -> (unit -> unit) -> unit
(** Both-sided hammock; [taken_prob] selects the else side. *)

(** {2 Compound idioms} *)

val fma_chain : Ir.Builder.t -> init:reg -> coeffs:(reg * reg) list -> reg
(** Horner-style dependent FMA chain: each step reads the previous
    result once (the read-once, lifetime-1 pattern of Fig. 2). *)

val reduce_tree : Ir.Builder.t -> reg list -> reg
(** Pairwise [Fadd] reduction tree. *)

val load_stream : Ir.Builder.t -> base:reg -> idx:reg -> n:int -> reg list
(** [n] global loads at consecutive offsets from [base + idx]. *)

val dead_store_value : Ir.Builder.t -> reg -> reg -> unit
(** Produce a value that is never read (Fig. 2(a)'s read-0 class). *)
