(** One registered benchmark (see {!Registry}).

    Real applications launch several kernels; [kernel] is the dominant
    one (used by single-kernel studies such as the IPC simulation) and
    [kernels] the full set, which the energy experiments aggregate. *)

type entry = {
  name : string;
  suite : Suite.t;
  description : string;
  kernel : Ir.Kernel.t Lazy.t;           (** the dominant kernel *)
  kernels : Ir.Kernel.t list Lazy.t;     (** every kernel, dominant first *)
}

val make :
  Suite.t ->
  string ->
  description:string ->
  ?extras:(unit -> Ir.Kernel.t) list ->
  (unit -> Ir.Kernel.t) ->
  entry
