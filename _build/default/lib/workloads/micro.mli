(** Micro-pattern kernels: each isolates one register-usage pattern the
    allocator must handle, with a known-best placement strategy.  Used
    by targeted tests and as minimal repro cases; they are NOT part of
    the Table-1 registry.

    - [chain n]: a dependent ALU chain — every link is LRF material.
    - [fanout n]: one value read [n] times in a burst — a single ORF
      entry covering many reads.
    - [hammock_merge]: Fig. 10(c) — both sides write, the merge reads.
    - [loop_carried trips]: an accumulator crossing backward branches —
      must live in the MRF between iterations.
    - [wide_values n]: 64-bit loads — consecutive-entry ORF occupancy.
    - [shared_consumers n]: every value feeds the shared datapath —
      nothing may touch the LRF.
    - [sfu_pipeline n]: SFU producers/consumers — ORF with shared-wire
      pricing.
    - [spiller n]: more simultaneously-live values than any ORF holds —
      exercises prioritization and partial ranges. *)

val chain : int -> Ir.Kernel.t
val fanout : int -> Ir.Kernel.t
val hammock_merge : unit -> Ir.Kernel.t
val loop_carried : int -> Ir.Kernel.t
val wide_values : int -> Ir.Kernel.t
val shared_consumers : int -> Ir.Kernel.t
val sfu_pipeline : int -> Ir.Kernel.t
val spiller : int -> Ir.Kernel.t

val all : unit -> (string * Ir.Kernel.t) list
(** Every micro pattern at a representative size. *)
