(** The cuda sdk applications of paper Table 1, as synthetic
    kernels modelling each application's register-usage signature. *)

val benchmarks : Bench.entry list
