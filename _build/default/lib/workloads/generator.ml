module B = Ir.Builder
module D = Dsl

type state = {
  b : B.t;
  prng : Util.Prng.t;
  prob_branches : bool;
  mutable pool : Ir.Reg.t list;  (* registers safe to read *)
}

let pick_reg st =
  match st.pool with
  | [] ->
    let r = D.input st.b in
    st.pool <- [ r ];
    r
  | pool -> Util.Prng.pick st.prng (Array.of_list pool)

let add_reg st r = st.pool <- r :: st.pool

(* One random instruction; keeps the pool of readable registers. *)
let random_instr st =
  let b = st.b in
  let x = pick_reg st and y = pick_reg st and z = pick_reg st in
  let fresh2 op = add_reg st (B.op2 b op x y) in
  let into2 op =
    let dst = pick_reg st in
    B.op2_into b op ~dst x y
  in
  match Util.Prng.int st.prng 100 with
  | n when n < 30 ->
    fresh2 (Util.Prng.pick st.prng [| Ir.Op.Iadd; Ir.Op.Isub; Ir.Op.Fadd; Ir.Op.Fsub; Ir.Op.Fmul |])
  | n when n < 40 -> add_reg st (B.op3 b Ir.Op.Ffma x y z)
  | n when n < 48 -> into2 (Util.Prng.pick st.prng [| Ir.Op.Iadd; Ir.Op.Fadd; Ir.Op.Fmul |])
  | n when n < 56 -> add_reg st (B.op1 b (Util.Prng.pick st.prng [| Ir.Op.Rcp; Ir.Op.Sqrt; Ir.Op.Sin; Ir.Op.Ex2 |]) x)
  | n when n < 68 -> add_reg st (B.op1 b Ir.Op.Ld_global x)
  | n when n < 74 -> add_reg st (B.op1 b Ir.Op.Ld_shared x)
  | n when n < 78 -> add_reg st (B.op1 b Ir.Op.Tex_fetch x)
  | n when n < 84 -> D.st_global b ~addr:x ~value:y
  | n when n < 88 -> D.st_shared b ~addr:x ~value:y
  | n when n < 92 -> add_reg st (B.op1 b Ir.Op.Ld_global ~width:Ir.Width.W64 x)
  | n when n < 96 -> add_reg st (B.op3 b Ir.Op.Sel x y z)
  | _ -> ignore (B.op2 b Ir.Op.Iand x y)  (* dead value *)

let branch_behavior st =
  if st.prob_branches then Ir.Terminator.Taken_with_prob (Util.Prng.float st.prng 1.0)
  else if Util.Prng.bool st.prng then Ir.Terminator.Always_taken
  else Ir.Terminator.Never_taken

let rec random_segment st ~depth =
  let b = st.b in
  match Util.Prng.int st.prng 10 with
  | (0 | 1 | 2) when depth < 2 ->
    (* counted loop *)
    let trips = 2 + Util.Prng.int st.prng 6 in
    let body_len = 2 + Util.Prng.int st.prng 5 in
    D.counted_loop b ~trips (fun i ->
        add_reg st i;
        for _ = 1 to body_len do
          random_instr st
        done;
        if depth < 1 && Util.Prng.bool st.prng then random_segment st ~depth:(depth + 1))
  | 3 | 4 ->
    (* one-sided hammock; registers defined inside are unsafe after the
       join (maybe-undefined), so snapshot and restore the pool. *)
    let p = D.setp b (pick_reg st) (pick_reg st) in
    let saved = st.pool in
    let join = Ir.Builder.new_label b in
    Ir.Builder.branch b ~pred:p ~target:join (branch_behavior st);
    let (_ : Ir.Builder.label) = Ir.Builder.here b in
    for _ = 1 to 1 + Util.Prng.int st.prng 3 do
      random_instr st
    done;
    Ir.Builder.start_block b join;
    st.pool <- saved
  | 5 ->
    (* two-sided hammock writing a common register on both sides
       (Fig. 10(c)): the merged value is safe to read after the join. *)
    let p = D.setp b (pick_reg st) (pick_reg st) in
    let merged = pick_reg st in
    let saved = st.pool in
    let x = pick_reg st and y = pick_reg st in
    let else_l = Ir.Builder.new_label b in
    let join = Ir.Builder.new_label b in
    Ir.Builder.branch b ~pred:p ~target:else_l (branch_behavior st);
    let (_ : Ir.Builder.label) = Ir.Builder.here b in
    B.op2_into st.b Ir.Op.Iadd ~dst:merged x y;
    Ir.Builder.jump b join;
    Ir.Builder.start_block b else_l;
    B.op2_into st.b Ir.Op.Fmul ~dst:merged y x;
    Ir.Builder.start_block b join;
    st.pool <- merged :: saved
  | _ ->
    for _ = 1 to 2 + Util.Prng.int st.prng 6 do
      random_instr st
    done

let kernel ?(size = 12) ?(prob_branches = true) ~seed () =
  let b = B.create (Printf.sprintf "random-%d" seed) in
  let prng = Util.Prng.create seed in
  let st = { b; prng; prob_branches; pool = [] } in
  let n_inputs = 2 + Util.Prng.int prng 5 in
  List.iter (add_reg st) (D.inputs b n_inputs);
  for _ = 1 to max 1 size do
    random_segment st ~depth:0
  done;
  (* Read a few leftovers so long-lived values exist. *)
  D.st_global b ~addr:(pick_reg st) ~value:(pick_reg st);
  B.finalize b
