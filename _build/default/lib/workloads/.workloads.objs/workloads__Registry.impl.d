lib/workloads/registry.ml: Bench Cuda_sdk Ir Lazy List Parboil Rodinia String Suite
