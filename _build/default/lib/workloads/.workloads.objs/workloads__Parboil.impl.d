lib/workloads/parboil.ml: Bench Dsl Ir Suite
