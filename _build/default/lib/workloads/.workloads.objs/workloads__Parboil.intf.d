lib/workloads/parboil.mli: Bench
