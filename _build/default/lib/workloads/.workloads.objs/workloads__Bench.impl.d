lib/workloads/bench.ml: Ir Lazy List Suite
