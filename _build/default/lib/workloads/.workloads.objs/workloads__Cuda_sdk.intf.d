lib/workloads/cuda_sdk.mli: Bench
