lib/workloads/generator.ml: Array Dsl Ir List Printf Util
