lib/workloads/suite.mli: Format
