lib/workloads/generator.mli: Ir
