lib/workloads/rodinia.mli: Bench
