lib/workloads/micro.ml: Dsl Ir List Printf
