lib/workloads/dsl.ml: Ir List
