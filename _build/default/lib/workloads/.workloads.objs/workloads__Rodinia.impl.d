lib/workloads/rodinia.ml: Bench Dsl Ir Suite
