lib/workloads/bench.mli: Ir Lazy Suite
