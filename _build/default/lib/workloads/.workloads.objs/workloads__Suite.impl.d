lib/workloads/suite.ml: Format
