lib/workloads/cuda_sdk.ml: Bench Dsl Ir List Suite
