lib/workloads/registry.mli: Bench Ir Lazy Suite
