lib/workloads/micro.mli: Ir
