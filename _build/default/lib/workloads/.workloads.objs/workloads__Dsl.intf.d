lib/workloads/dsl.mli: Ir
