(** The three benchmark suites of paper Table 1. *)

type t = Cuda_sdk | Parboil | Rodinia

val name : t -> string
val all : t list
val pp : Format.formatter -> t -> unit
