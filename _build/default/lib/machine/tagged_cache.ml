type t = {
  num_entries : int;
  mutable fifo : Ir.Reg.t list;  (* oldest first *)
}

let create ~entries =
  if entries < 1 then invalid_arg "Tagged_cache.create: entries < 1";
  { num_entries = entries; fifo = [] }

let entries t = t.num_entries

let contains t r = List.mem r t.fifo

let insert t r =
  if contains t r then None
  else if List.length t.fifo < t.num_entries then begin
    t.fifo <- t.fifo @ [ r ];
    None
  end
  else begin
    match t.fifo with
    | [] -> assert false  (* num_entries >= 1 *)
    | oldest :: rest ->
      t.fifo <- rest @ [ r ];
      Some oldest
  end

let remove t r = t.fifo <- List.filter (fun x -> not (Ir.Reg.equal x r)) t.fifo

let flush t =
  let contents = t.fifo in
  t.fifo <- [];
  contents

let occupancy t = List.length t.fifo
