(** Tagged register cache with FIFO replacement — the hardware RFC of
    the authors' prior work (paper Sec. 2.2), modelled at warp
    granularity (entries-per-thread = warp-wide entries here).

    A single-entry instance doubles as the hardware last result file of
    the three-level hardware baseline (Sec. 6.2).

    The cache stores register names only; writeback decisions (static
    liveness elision) belong to the caller. *)

type t

val create : entries:int -> t
(** @raise Invalid_argument if [entries < 1]. *)

val entries : t -> int

val contains : t -> Ir.Reg.t -> bool

val insert : t -> Ir.Reg.t -> Ir.Reg.t option
(** Write-allocate the register.  If already present, the entry is
    overwritten in place (no eviction, FIFO position unchanged).
    Otherwise the register is enqueued, evicting and returning the
    oldest occupant when full. *)

val remove : t -> Ir.Reg.t -> unit
(** Drop the entry if present (used when a newer write supersedes a
    value cached at an upper level). *)

val flush : t -> Ir.Reg.t list
(** Return all valid entries in FIFO order and clear the cache (warp
    deschedule, Sec. 2.2). *)

val occupancy : t -> int
