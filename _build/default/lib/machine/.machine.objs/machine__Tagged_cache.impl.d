lib/machine/tagged_cache.ml: Ir List
