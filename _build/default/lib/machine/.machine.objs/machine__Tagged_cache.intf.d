lib/machine/tagged_cache.mli: Ir
