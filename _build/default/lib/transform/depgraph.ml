type t = {
  n : int;
  preds : int list array;
  succs : int list array;
}

let is_memory (i : Ir.Instr.t) =
  match Ir.Op.unit_class i.Ir.Instr.op with
  | Ir.Op.Mem | Ir.Op.Tex -> true
  | Ir.Op.Alu | Ir.Op.Sfu -> false

let is_memory_barrier (i : Ir.Instr.t) =
  match i.Ir.Instr.op with
  | Ir.Op.St_global | Ir.Op.St_shared | Ir.Op.Atom_global -> true
  | _ -> false

let build (b : Ir.Block.t) =
  let instrs = b.Ir.Block.instrs in
  let n = Array.length instrs in
  let edges = Hashtbl.create (4 * n) in
  let add_edge from_ to_ =
    if from_ <> to_ then Hashtbl.replace edges (from_, to_) ()
  in
  (* Register dependencies: scan backwards for producers/consumers. *)
  let last_def : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
  let readers_since_def : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun idx (i : Ir.Instr.t) ->
      List.iter
        (fun r ->
          (* RAW *)
          Option.iter (fun d -> add_edge d idx) (Hashtbl.find_opt last_def r);
          Hashtbl.replace readers_since_def r
            (idx :: Option.value ~default:[] (Hashtbl.find_opt readers_since_def r)))
        i.Ir.Instr.srcs;
      Option.iter
        (fun d ->
          (* WAW *)
          Option.iter (fun prev -> add_edge prev idx) (Hashtbl.find_opt last_def d);
          (* WAR *)
          List.iter (fun reader -> add_edge reader idx)
            (Option.value ~default:[] (Hashtbl.find_opt readers_since_def d));
          Hashtbl.replace last_def d idx;
          Hashtbl.replace readers_since_def d [])
        i.Ir.Instr.dst)
    instrs;
  (* Memory model: barrier ordering. *)
  let mem_ops_before_barrier = ref [] in
  let last_barrier = ref None in
  Array.iteri
    (fun idx (i : Ir.Instr.t) ->
      if is_memory i then begin
        Option.iter (fun bar -> add_edge bar idx) !last_barrier;
        if is_memory_barrier i then begin
          List.iter (fun m -> add_edge m idx) !mem_ops_before_barrier;
          last_barrier := Some idx;
          mem_ops_before_barrier := []
        end
        else mem_ops_before_barrier := idx :: !mem_ops_before_barrier
      end)
    instrs;
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  Hashtbl.iter
    (fun (f, t') () ->
      succs.(f) <- t' :: succs.(f);
      preds.(t') <- f :: preds.(t'))
    edges;
  Array.iteri (fun i l -> preds.(i) <- List.sort compare l) preds;
  Array.iteri (fun i l -> succs.(i) <- List.sort compare l) succs;
  { n; preds; succs }

let num_instrs t = t.n
let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

let respects t ~order =
  Array.length order = t.n
  &&
  let position = Array.make t.n (-1) in
  Array.iteri (fun pos idx -> if idx >= 0 && idx < t.n then position.(idx) <- pos) order;
  Array.for_all (fun p -> p >= 0) position
  &&
  let ok = ref true in
  for i = 0 to t.n - 1 do
    List.iter (fun p -> if position.(p) >= position.(i) then ok := false) t.preds.(i)
  done;
  !ok
