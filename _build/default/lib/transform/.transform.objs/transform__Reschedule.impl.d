lib/transform/reschedule.ml: Array Depgraph Ir List
