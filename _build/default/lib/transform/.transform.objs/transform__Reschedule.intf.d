lib/transform/reschedule.mli: Ir
