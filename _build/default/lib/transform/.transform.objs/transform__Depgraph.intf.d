lib/transform/depgraph.mli: Ir
