lib/transform/unroll.mli: Ir
