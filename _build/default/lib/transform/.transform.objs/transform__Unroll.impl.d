lib/transform/unroll.ml: Array Hashtbl Ir List Option Printf
