lib/transform/depgraph.ml: Array Hashtbl Ir List Option
