(** Within-block instruction rescheduling — a real implementation of
    the pass the paper's Sec. 7 limit study only idealizes.

    Two cooperating heuristics over the block dependence graph:

    - {e chain packing}: among ready instructions, prefer the one
      consuming the most recently scheduled producer, linearizing
      dependence chains so values die within an instruction or two of
      birth (more LRF-sized lifetimes, a larger effective ORF);
    - {e load hoisting} (optional): ready long-latency operations
      schedule first, clustering them at the top of the block so their
      consumers share one strand boundary instead of fragmenting the
      block — the paper's advice for the Reduction/ScalarProd worst
      cases.

    A conditional block's trailing [Bra] stays last; all reorderings
    are topological in the dependence graph, so semantics are
    preserved (checked by {!Depgraph.respects} in tests and by the
    placement verifier downstream). *)

val block : ?hoist_loads:bool -> Ir.Block.t -> int array
(** The schedule, as block indices in execution order. *)

val kernel : ?hoist_loads:bool -> Ir.Kernel.t -> Ir.Kernel.t
(** Reschedule every block (default [hoist_loads:true]); instruction
    ids are renumbered to the new layout. *)
