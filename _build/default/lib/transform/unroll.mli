(** Loop unrolling for counted self-loops.

    The paper's prescription for its worst-case benchmarks (Sec. 6.4):
    "unroll the inner loop and issue all of the long latency
    instructions at the beginning of the loop", letting the rest of the
    body stay resident and use the LRF/ORF.  This pass implements the
    unrolling half; composing with {!Reschedule} (load hoisting) gives
    the full recipe.

    A candidate loop is a single block ending in a backward branch onto
    itself with a [Loop n] behaviour.  Unrolling by [factor] (which
    must divide [n]) concatenates [factor] copies of the body, drops
    the intermediate exit tests (the trip count is static) — including
    each dropped test's predicate computation when it has no other use
    — and divides the trip count.  Registers are {e not} renamed:
    the IR is imperative, so plain duplication preserves semantics;
    the allocator's per-definition handling deals with the resulting
    multi-definition registers. *)

val kernel : factor:int -> Ir.Kernel.t -> Ir.Kernel.t
(** Unroll every candidate self-loop whose trip count [factor]
    divides; other blocks are untouched.  [factor <= 1] or no
    candidates returns an identical kernel (fresh ids).
    @raise Invalid_argument if [factor < 1]. *)

val candidates : Ir.Kernel.t -> (int * int) list
(** [(block, trips)] for each unrollable self-loop. *)
