(** Intra-block dependence graph.

    Edges: register RAW/WAR/WAW, and a memory model where stores and
    atomics are barriers (loads may reorder with loads and ALU work,
    never across a store/atomic; stores order with every earlier memory
    operation).  The trailing [Bra] instruction is pinned last by the
    scheduler, not by edges.

    Any topological order of this graph preserves the block's
    semantics. *)

type t

val build : Ir.Block.t -> t

val num_instrs : t -> int

val preds : t -> int -> int list
(** Dependence predecessors, as indices into the block. *)

val succs : t -> int -> int list

val respects : t -> order:int array -> bool
(** Is [order] (a permutation of block indices, in schedule order) a
    topological order of the graph? *)
