type direction = Lower_better | Higher_better

type verdict = Stable | Improved | Regressed | Noisy

type series = {
  s_name : string;
  s_dir : direction;
  s_tol : float;
  s_gated : bool;
  points : (int * float) array;
}

type analysis = {
  a_series : series;
  a_median : float;
  a_mad : float;
  a_latest : float;
  a_latest_z : float;
  a_change_points : int list;
  a_shift : float;
  a_verdict : verdict;
}

let noisy_ratio = 0.15

(* ------------------------------------------------------------------ *)
(* Robust statistics.  Median/MAD throughout: a single outlier run
   (machine hiccup, cold cache) must not move the location estimate,
   and the MAD gives a scale that ignores the outlier too.             *)

let median_sorted a n lo =
  if n = 0 then 0.0
  else if n mod 2 = 1 then a.(lo + (n / 2))
  else (a.(lo + (n / 2) - 1) +. a.(lo + (n / 2))) /. 2.0

let median xs =
  let a = Array.copy xs in
  Array.sort compare a;
  median_sorted a (Array.length a) 0

let mad xs =
  if Array.length xs = 0 then 0.0
  else
    let m = median xs in
    median (Array.map (fun x -> Float.abs (x -. m)) xs)

let rolling_median ~window xs =
  let n = Array.length xs in
  Array.init n (fun i ->
      let lo = max 0 (i - window + 1) in
      median (Array.sub xs lo (i - lo + 1)))

let sparkline xs =
  let n = Array.length xs in
  if n = 0 then ""
  else begin
    let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let lo = Array.fold_left Float.min xs.(0) xs in
    let hi = Array.fold_left Float.max xs.(0) xs in
    let buf = Buffer.create (n * 3) in
    Array.iter
      (fun x ->
        let bin =
          if hi = lo then 3
          else min 7 (int_of_float ((x -. lo) /. (hi -. lo) *. 8.0))
        in
        Buffer.add_string buf blocks.(bin))
      xs;
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Change-point detection: binary segmentation with the
   least-absolute-deviations objective.  The candidate split minimizes
   the summed |x - segment median| cost of the two halves — the
   robust changepoint objective, and the only criterion of the obvious
   ones that localizes a clean step exactly (the raw median jump is
   near-identical one position past the step, where one stray point
   cannot move the longer segment's median, and size-weighted mean
   scores peak at balanced splits instead of the true one).  The
   chosen split is accepted only when its median jump clears both 3
   sigmas of the pooled residual deviation about the two segment
   medians (residuals, not per-segment MADs: an alternating series
   has MAD-0 segments at odd lengths and would split spuriously) and
   a 5% relative floor, which keeps byte-identical histories from
   splitting on rounding noise.  Each accepted split recurses into
   both halves.                                                        *)

let cp_sigmas = 3.0

let cp_rel_floor = 0.05

let change_points ?(min_seg = 3) xs =
  let n = Array.length xs in
  let found = ref [] in
  let seg lo hi = Array.sub xs lo (hi - lo) in
  let abs_cost a =
    let m = median a in
    Array.fold_left (fun acc x -> acc +. Float.abs (x -. m)) 0.0 a
  in
  let rec go lo hi =
    if hi - lo >= 2 * min_seg then begin
      let best = ref None in
      for k = lo + min_seg to hi - min_seg do
        let cost = abs_cost (seg lo k) +. abs_cost (seg k hi) in
        match !best with
        | Some (_, c) when c <= cost -> ()
        | _ -> best := Some (k, cost)
      done;
      match !best with
      | None -> ()
      | Some (k, _) ->
        let left = seg lo k and right = seg k hi in
        let ml = median left and mr = median right in
        let jump = Float.abs (ml -. mr) in
        let sq_residuals about a =
          Array.fold_left (fun acc x -> acc +. ((x -. about) *. (x -. about))) 0.0 a
        in
        let pooled_sigma =
          sqrt ((sq_residuals ml left +. sq_residuals mr right) /. float_of_int (hi - lo))
        in
        let scale = Float.max (Float.abs ml) (Float.abs mr) in
        if jump > Float.max (cp_sigmas *. pooled_sigma) (cp_rel_floor *. scale) then begin
          found := k :: !found;
          go lo k;
          go k hi
        end
    end
  in
  go 0 n;
  List.sort compare !found

(* ------------------------------------------------------------------ *)
(* Verdicts.                                                           *)

let verdict_name = function
  | Stable -> "stable"
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Noisy -> "noisy"

let analyze (s : series) =
  let values = Array.map snd s.points in
  let n = Array.length values in
  let m = median values and d = mad values in
  let latest = if n = 0 then 0.0 else values.(n - 1) in
  let latest_z =
    if d > 0.0 then 0.6745 *. (latest -. m) /. d
    else if latest = m then 0.0
    else Float.copy_sign Float.infinity (latest -. m)
  in
  let cps = change_points values in
  let shift, verd =
    match List.rev cps with
    | [] ->
      let spread = if m = 0.0 then d else d /. Float.abs m in
      (0.0, if n >= 3 && spread > noisy_ratio then Noisy else Stable)
    | last :: rest ->
      let prev_start = match rest with p :: _ -> p | [] -> 0 in
      let before = median (Array.sub values prev_start (last - prev_start)) in
      let after = median (Array.sub values last (n - last)) in
      let shift =
        if before = 0.0 then if after = 0.0 then 0.0 else Float.infinity
        else (after -. before) /. Float.abs before
      in
      let worse =
        match s.s_dir with Lower_better -> shift > s.s_tol | Higher_better -> shift < -.s.s_tol
      in
      let better =
        match s.s_dir with Lower_better -> shift < -.s.s_tol | Higher_better -> shift > s.s_tol
      in
      (shift, if worse then Regressed else if better then Improved else Stable)
  in
  {
    a_series = s;
    a_median = m;
    a_mad = d;
    a_latest = latest;
    a_latest_z = latest_z;
    a_change_points = cps;
    a_shift = shift;
    a_verdict = verd;
  }

(* ------------------------------------------------------------------ *)
(* Series extraction.                                                  *)

let series_of_history (records : History.t list) =
  let records = Array.of_list records in
  let collect f =
    Array.to_list records
    |> List.mapi (fun i r -> Option.map (fun v -> (i, v)) (f r))
    |> List.filter_map Fun.id |> Array.of_list
  in
  (* Bench names in first-seen order across the whole history. *)
  let bench_names =
    Array.fold_left
      (fun acc (r : History.t) ->
        List.fold_left
          (fun acc (p : History.bench_point) ->
            if List.mem p.History.hb_bench acc then acc else p.History.hb_bench :: acc)
          acc r.History.benches)
      [] records
    |> List.rev
  in
  let bench_metric name f r =
    List.find_opt (fun (p : History.bench_point) -> p.History.hb_bench = name)
      r.History.benches
    |> Option.map f
  in
  let mk name dir tol gated points = { s_name = name; s_dir = dir; s_tol = tol; s_gated = gated; points } in
  let bench_series =
    List.concat_map
      (fun name ->
        [
          mk
            (Printf.sprintf "bench.%s.ipc" name)
            Higher_better 0.05 true
            (collect (bench_metric name (fun p -> p.History.hb_ipc)));
          mk
            (Printf.sprintf "bench.%s.norm_energy" name)
            Lower_better 0.05 true
            (collect (bench_metric name (fun p -> p.History.hb_norm_energy)));
        ])
      bench_names
  in
  let pg f r = Option.map f r.History.perfgate in
  let eng f r = Option.map f r.History.engine in
  let gcm f r = Option.map f r.History.gc in
  let tail =
    [
      (* ns/run and minor words gate CI; the tolerances are wide
         because they are wall-clock / allocator noise across hosts —
         the 2x-step acceptance case still clears 35% comfortably. *)
      mk "perfgate.ns_per_run" Lower_better 0.35 true
        (collect (pg (fun g -> g.History.pg_ns_per_run)));
      mk "perfgate.p90_ns" Lower_better 0.35 false
        (collect (pg (fun g -> g.History.pg_p90_ns)));
      mk "perfgate.minor_words" Lower_better 0.5 true
        (collect (pg (fun g -> g.History.pg_minor_words)));
      mk "perfgate.promoted_words" Lower_better 0.5 true
        (collect (fun r -> Option.bind r.History.perfgate (fun g -> g.History.pg_promoted_words)));
      mk "perfgate.major_words" Lower_better 0.5 true
        (collect (fun r -> Option.bind r.History.perfgate (fun g -> g.History.pg_major_words)));
      mk "engine.useful" Higher_better 0.2 false
        (collect (eng (fun e -> e.History.eng_useful)));
      mk "engine.spawn" Lower_better 0.2 false
        (collect (eng (fun e -> e.History.eng_spawn)));
      mk "engine.idle" Lower_better 0.2 false
        (collect (eng (fun e -> e.History.eng_idle)));
      (* GC share gates: a creeping collector bill shows up here long
         before wall time moves.  Pause p99 stays advisory — tail
         pauses are scheduler noise across hosts. *)
      mk "gc.share" Lower_better 0.35 true
        (collect (gcm (fun g -> g.History.hg_gc_share)));
      mk "gc.minor_words" Lower_better 0.5 true
        (collect (gcm (fun g -> g.History.hg_minor_words)));
      mk "gc.pause_p99_ns" Lower_better 0.5 false
        (collect (gcm (fun g -> g.History.hg_pause_p99_ns)));
      mk "wall_s" Lower_better 0.5 false
        (collect (fun (r : History.t) -> Some r.History.wall_s));
    ]
  in
  List.filter (fun s -> Array.length s.points > 0) (bench_series @ tail)

(* ------------------------------------------------------------------ *)
(* CI gate.                                                            *)

type failure = {
  f_series : string;
  f_index : int;
  f_rev : string;
  f_source : string;
  f_jobs : int;
  f_before : float;
  f_after : float;
}

type gate_result = { g_exit : int; g_failures : failure list; g_analyses : analysis list }

let gate ?(min_records = 3) (records : History.t list) =
  if List.length records < min_records then
    { g_exit = 2; g_failures = []; g_analyses = [] }
  else begin
    let recs = Array.of_list records in
    let analyses = List.map analyze (series_of_history records) in
    let failures =
      List.filter_map
        (fun a ->
          if not (a.a_series.s_gated && a.a_verdict = Regressed) then None
          else
            match List.rev a.a_change_points with
            | [] -> None
            | last :: rest ->
              let values = Array.map snd a.a_series.points in
              let n = Array.length values in
              let prev_start = match rest with p :: _ -> p | [] -> 0 in
              let record_idx = fst a.a_series.points.(last) in
              Some
                {
                  f_series = a.a_series.s_name;
                  f_index = record_idx;
                  f_rev = recs.(record_idx).History.host.Host.git_rev;
                  f_source = recs.(record_idx).History.source;
                  f_jobs = recs.(record_idx).History.jobs;
                  f_before = median (Array.sub values prev_start (last - prev_start));
                  f_after = median (Array.sub values last (n - last));
                })
        analyses
    in
    { g_exit = (if failures = [] then 0 else 1); g_failures = failures; g_analyses = analyses }
  end
