(** Cross-run performance history: one compact JSONL record per run.

    Every other observability layer (manifests, timelines, engine
    profiles) describes exactly one run; this one accumulates.  Each
    appender — the bench harness, the perfgate, [rfh … --history-out]
    — adds one schema-versioned line to [baselines/history.jsonl]
    carrying whatever that run measured: per-benchmark IPC /
    normalized energy / stall-cause shares, perfgate ns-per-run and
    minor words, engine useful/spawn/idle shares, total wall time —
    always stamped with the UTC timestamp, host fingerprint (which
    includes the git revision and dirty flag) and jobs setting.
    {!Trend} turns the accumulated series into drift verdicts and
    [rfh trend] renders them.

    The encoding is byte-stable (fixed field order, idempotent number
    printing): two records built from the same measurements differ
    only in timestamp and git revision.  {!load} skips lines it cannot
    decode instead of failing — a history file survives partial
    writes, merges and schema drift, reporting how much it skipped. *)

val schema_version : int

type bench_point = {
  hb_bench : string;
  hb_ipc : float;
  hb_norm_energy : float;
  hb_stalls : (string * float) list;
      (** per stall cause, its {e share} of [cycles × warps] (0..1), in
          manifest order; shares rather than raw warp-cycles so runs
          with different cycle counts stay comparable *)
}

type perfgate = {
  pg_ns_per_run : float;  (** median over the probe's timed runs *)
  pg_p90_ns : float;
  pg_minor_words : float;
  pg_runs : int;  (** timed runs the median/p90 summarize *)
  pg_promoted_words : float option;
      (** promoted words per probed run; [None] in records written
          before the promotion gate existed (field omitted from the
          encoding, so old lines round-trip byte-identically) *)
  pg_major_words : float option;  (** major words per probed run *)
}

type engine = {
  eng_useful : float;  (** share of the parallel-region budget (0..1) *)
  eng_spawn : float;
  eng_idle : float;
}

type gc = {
  hg_gc_share : float;
      (** gc / useful (0..1) over the widest engine window's regions *)
  hg_minor_words : float;  (** summed region quick_stat deltas *)
  hg_pause_p50_ns : float;
  hg_pause_p99_ns : float;
}

type t = {
  timestamp : string;  (** UTC, {!Host.utc_now} format *)
  source : string;  (** ["bench"], ["perfgate"], ["rfh"] … *)
  host : Host.t;
  jobs : int;
  wall_s : float;  (** whole-run wall clock of the appender *)
  benches : bench_point list;
  perfgate : perfgate option;
  engine : engine option;
  gc : gc option;  (** GC capture summary of the same window as [engine] *)
  jobs2_slower : bool option;
      (** Part 4's warning: run_all at jobs=2 lost to serial *)
}

val of_manifest :
  ?timestamp:string ->
  ?host:Host.t ->
  ?perfgate:perfgate ->
  ?engine:engine ->
  ?gc:gc ->
  ?jobs2_slower:bool ->
  source:string ->
  wall_s:float ->
  Manifest.t ->
  t
(** Build a record from a collected run manifest: one {!bench_point}
    per manifest bench (stall counts converted to shares), [jobs] from
    the manifest options.  [timestamp]/[host] default to now/here —
    pass them explicitly to get byte-reproducible records in tests. *)

val to_json : t -> Json.t
val to_string : t -> string
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val append : path:string -> t -> unit
(** Append one record as a single JSONL line, creating parent
    directories as needed.
    @raise Sys_error on I/O failure. *)

val load : path:string -> t list * int
(** All decodable records in file order, plus the number of
    non-empty lines that failed to decode (garbage, foreign schema).
    A missing file loads as [([], 0)]. *)
