(** Differential view of two allocation-decision streams.

    [rfh why] feeds two {!Explain} JSONL streams (baseline and
    candidate) through {!align}: decisions are keyed by live-range
    identity — (kernel, unit kind, register, strand, interval start,
    occurrence index) — so the same value considered by both runs pairs
    up even when emission order or sequence numbers shifted.  Each
    aligned pair is classified into zero or more {!flip}s: the chosen
    level changed, a candidate's verdict changed, a savings estimate
    drifted, or the covered/dropped read shape moved.  Unmatched
    decisions are reported per side.

    Everything downstream must be byte-deterministic: {!align} sorts
    both inputs by (kernel, seq) first, so the same two streams —
    regardless of file order or the [--jobs] setting that produced the
    run — always yield the same diff, and {!check} verifies the exact
    accounting ([aligned + only_a = total_a], per-kernel sums, move
    buckets vs level flips) in the spirit of [Obs.Engine.check]. *)

(** Live-range identity used for alignment. *)
type key = {
  k_kernel : string;
  k_kind : string;  (** ["write_unit"] or ["read_unit"] *)
  k_reg : string;
  k_strand : int;
  k_first : int;  (** live-interval start (instruction id) *)
  k_occurrence : int;
      (** disambiguates repeated (kernel, kind, reg, strand, first)
          keys, in per-kernel seq order *)
}

(** One way an aligned decision pair differs. *)
type flip =
  | Level_changed of { from_level : string; to_level : string }
      (** the winning level moved, e.g. ORF -> MRF *)
  | Verdict_changed of { level : string; was : string; now : string }
      (** a candidate's verdict flipped while the outcome level held *)
  | Savings_changed of { level : string; was : float; now : float }
  | Coverage_changed of {
      covered_was : int;
      covered_now : int;
      dropped_was : int;
      dropped_now : int;
    }

type pair = {
  p_key : key;
  p_a : Explain.decision;
  p_b : Explain.decision;
  p_flips : flip list;  (** empty = identical decision *)
}

(** One (from level -> to level) migration bucket of a kernel. *)
type move = {
  m_from : string;
  m_to : string;
  m_count : int;  (** aligned ranges that took this move *)
  m_savings_delta : float;
      (** summed chosen-candidate savings delta (candidate - baseline)
          over the moved ranges *)
}

type kernel_stats = {
  ks_kernel : string;
  ks_aligned : int;
  ks_changed : int;  (** aligned pairs with at least one flip *)
  ks_moves : move list;  (** deterministic (from, to) order *)
  ks_verdict_flips : int;
  ks_savings_delta : float;
      (** summed chosen-savings delta over all aligned pairs *)
  ks_covered_delta : int;
  ks_dropped_delta : int;
  ks_only_a : int;
  ks_only_b : int;
}

type t = {
  d_pairs : pair list;  (** changed pairs only, (kernel, seq) order *)
  d_only_a : Explain.decision list;
  d_only_b : Explain.decision list;
  d_kernels : kernel_stats list;  (** kernels in first-seen sorted order *)
  d_total_a : int;
  d_total_b : int;
  d_aligned : int;
}

val align : a:Explain.decision list -> b:Explain.decision list -> t
(** Deterministic: both inputs are sorted by (kernel, seq) before
    alignment, so file order and producer [--jobs] do not matter. *)

val load_jsonl : path:string -> (Explain.decision list * int, string) result
(** Garbage-tolerant loader: all decodable decision lines in file
    order plus the count of non-empty lines that failed to decode.
    [Error] only when the file itself cannot be read. *)

val chosen_savings : Explain.decision -> float
(** Savings estimate of the [Chosen] candidate (0 when none, i.e. the
    value stayed in the MRF). *)

val flip_name : flip -> string
(** Compact deterministic description, e.g.
    ["moved orf -> mrf"], ["lrf verdict chosen -> no_free_slot"]. *)

val check : t -> string list
(** Accounting self-check: empty = sound.  Verifies
    [aligned + |only_a| = total_a] (and the b side), that per-kernel
    stats sum back to the stream totals, and that the move buckets
    reproduce the level-flip pairs exactly. *)
