let schema_version = 3

type options = {
  warps : int;
  seed : int;
  jobs : int;
  orf_entries : int;
  lrf : string;
  params_fp : string;
  benchmarks : string list;
}

type sched = {
  entries : int;
  exits : int;
  resident_cycles : int;
  desched_long_latency : int;
  desched_strand_boundary : int;
  desched_bank_conflict : int;
}

type bench = {
  bench : string;
  strands : int;
  write_units : int;
  read_units : int;
  lrf_allocs : int;
  orf_allocs : int;
  partial_allocs : int;
  dynamic_instrs : int;
  desched_events : int;
  capped_warps : int;
  norm_energy : float;
  total_pj : float;
  baseline_pj : float;
  ipc : float;
  stalls : (string * int) list;
  sched : sched;
  counts : Json.t;
  energy_pj : (string * (float * float)) list;
}

type phase = { phase : string; calls : int; total_ms : float }

type audit = { alloc_events : int; top_allocs : Json.t list }

type t = {
  options : options;
  meta : Host.t;
  benches : bench list;
  metrics : Metrics.snapshot;
  phases : phase list;
  audit : audit;
}

(* ------------------------------------------------------------------ *)
(* Encoding.  Field order is fixed everywhere so that equal manifests
   encode byte-identically and a decode/re-encode round-trip is
   stable.                                                             *)

let options_to_json (o : options) =
  Json.Obj
    [
      ("warps", Json.int o.warps);
      ("seed", Json.int o.seed);
      ("jobs", Json.int o.jobs);
      ("orf_entries", Json.int o.orf_entries);
      ("lrf", Json.Str o.lrf);
      ("params_fp", Json.Str o.params_fp);
      ("benchmarks", Json.Arr (List.map (fun n -> Json.Str n) o.benchmarks));
    ]

let bench_to_json (b : bench) =
  Json.Obj
    [
      ("name", Json.Str b.bench);
      ("strands", Json.int b.strands);
      ("write_units", Json.int b.write_units);
      ("read_units", Json.int b.read_units);
      ("lrf_allocs", Json.int b.lrf_allocs);
      ("orf_allocs", Json.int b.orf_allocs);
      ("partial_allocs", Json.int b.partial_allocs);
      ("dynamic_instrs", Json.int b.dynamic_instrs);
      ("desched_events", Json.int b.desched_events);
      ("capped_warps", Json.int b.capped_warps);
      ("norm_energy", Json.Num b.norm_energy);
      ("total_pj", Json.Num b.total_pj);
      ("baseline_pj", Json.Num b.baseline_pj);
      ("ipc", Json.Num b.ipc);
      ("stalls", Json.Obj (List.map (fun (cause, n) -> (cause, Json.int n)) b.stalls));
      ( "sched",
        Json.Obj
          [
            ("entries", Json.int b.sched.entries);
            ("exits", Json.int b.sched.exits);
            ("resident_cycles", Json.int b.sched.resident_cycles);
            ("desched_long_latency", Json.int b.sched.desched_long_latency);
            ("desched_strand_boundary", Json.int b.sched.desched_strand_boundary);
            ("desched_bank_conflict", Json.int b.sched.desched_bank_conflict);
          ] );
      ("counts", b.counts);
      ( "energy_pj",
        Json.Obj
          (List.map
             (fun (level, (access, wire)) ->
               (level, Json.Obj [ ("access", Json.Num access); ("wire", Json.Num wire) ]))
             b.energy_pj) );
    ]

let phase_to_json (p : phase) =
  Json.Obj
    [
      ("phase", Json.Str p.phase);
      ("calls", Json.int p.calls);
      ("total_ms", Json.Num p.total_ms);
    ]

let to_json (m : t) =
  Json.Obj
    [
      ("schema_version", Json.int schema_version);
      ("tool", Json.Str "rfh");
      ("options", options_to_json m.options);
      (* Non-gated provenance: Regress ignores the whole "meta"
         subtree, so a baseline recorded on one host checks cleanly on
         another. *)
      ("meta", Host.to_json m.meta);
      ("benches", Json.Arr (List.map bench_to_json m.benches));
      ("metrics", Metrics.to_json m.metrics);
      ("phases", Json.Arr (List.map phase_to_json m.phases));
      ( "audit",
        Json.Obj
          [
            ("alloc_events", Json.int m.audit.alloc_events);
            ("top_allocs", Json.Arr m.audit.top_allocs);
          ] );
    ]

let to_string m = Json.to_string (to_json m)

(* ------------------------------------------------------------------ *)
(* Decoding.                                                           *)

let ( let* ) = Result.bind

let field j name conv =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "manifest: missing or ill-typed field %S" name)

let int_f j name = field j name Json.to_int
let num_f j name = field j name Json.to_num
let str_f j name = field j name Json.to_str
let list_f j name = field j name Json.to_list

let options_of_json j =
  let* warps = int_f j "warps" in
  let* seed = int_f j "seed" in
  let* jobs = int_f j "jobs" in
  let* orf_entries = int_f j "orf_entries" in
  let* lrf = str_f j "lrf" in
  let* params_fp = str_f j "params_fp" in
  let* names = list_f j "benchmarks" in
  let* benchmarks =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match Json.to_str v with
        | Some s -> Ok (s :: acc)
        | None -> Error "manifest: non-string benchmark name")
      (Ok []) names
    |> Result.map List.rev
  in
  Ok { warps; seed; jobs; orf_entries; lrf; params_fp; benchmarks }

let bench_of_json j =
  let* bench = str_f j "name" in
  let* strands = int_f j "strands" in
  let* write_units = int_f j "write_units" in
  let* read_units = int_f j "read_units" in
  let* lrf_allocs = int_f j "lrf_allocs" in
  let* orf_allocs = int_f j "orf_allocs" in
  let* partial_allocs = int_f j "partial_allocs" in
  let* dynamic_instrs = int_f j "dynamic_instrs" in
  let* desched_events = int_f j "desched_events" in
  let* capped_warps = int_f j "capped_warps" in
  let* norm_energy = num_f j "norm_energy" in
  let* total_pj = num_f j "total_pj" in
  let* baseline_pj = num_f j "baseline_pj" in
  let* ipc = num_f j "ipc" in
  let* stalls =
    match Json.member "stalls" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (cause, v) ->
          let* acc = acc in
          match Json.to_int v with
          | Some n -> Ok ((cause, n) :: acc)
          | None -> Error "manifest: non-integer stall count")
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "manifest: missing or ill-typed field \"stalls\""
  in
  let* sched =
    let* s = field j "sched" Option.some in
    let* entries = int_f s "entries" in
    let* exits = int_f s "exits" in
    let* resident_cycles = int_f s "resident_cycles" in
    let* desched_long_latency = int_f s "desched_long_latency" in
    let* desched_strand_boundary = int_f s "desched_strand_boundary" in
    let* desched_bank_conflict = int_f s "desched_bank_conflict" in
    Ok
      {
        entries;
        exits;
        resident_cycles;
        desched_long_latency;
        desched_strand_boundary;
        desched_bank_conflict;
      }
  in
  let* counts = field j "counts" Option.some in
  let* energy_fields =
    match Json.member "energy_pj" j with
    | Some (Json.Obj fields) -> Ok fields
    | _ -> Error "manifest: missing or ill-typed field \"energy_pj\""
  in
  let* energy_pj =
    List.fold_left
      (fun acc (level, v) ->
        let* acc = acc in
        let* access = num_f v "access" in
        let* wire = num_f v "wire" in
        Ok ((level, (access, wire)) :: acc))
      (Ok []) energy_fields
    |> Result.map List.rev
  in
  Ok
    {
      bench;
      strands;
      write_units;
      read_units;
      lrf_allocs;
      orf_allocs;
      partial_allocs;
      dynamic_instrs;
      desched_events;
      capped_warps;
      norm_energy;
      total_pj;
      baseline_pj;
      ipc;
      stalls;
      sched;
      counts;
      energy_pj;
    }

let phase_of_json j =
  let* phase = str_f j "phase" in
  let* calls = int_f j "calls" in
  let* total_ms = num_f j "total_ms" in
  Ok { phase; calls; total_ms }

let of_json j =
  let* version = int_f j "schema_version" in
  if version <> schema_version then
    Error
      (Printf.sprintf "manifest: schema version %d unsupported (expected %d)" version
         schema_version)
  else
    let* options = Result.bind (field j "options" Option.some) options_of_json in
    let* meta = Result.bind (field j "meta" Option.some) Host.of_json in
    let* benches =
      let* items = list_f j "benches" in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* b = bench_of_json v in
          Ok (b :: acc))
        (Ok []) items
      |> Result.map List.rev
    in
    let* metrics = Result.bind (field j "metrics" Option.some) Metrics.snapshot_of_json in
    let* phases =
      let* items = list_f j "phases" in
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* p = phase_of_json v in
          Ok (p :: acc))
        (Ok []) items
      |> Result.map List.rev
    in
    let* audit_j = field j "audit" Option.some in
    let* alloc_events = int_f audit_j "alloc_events" in
    let* top_allocs = list_f audit_j "top_allocs" in
    Ok { options; meta; benches; metrics; phases; audit = { alloc_events; top_allocs } }

let of_string s =
  match Json.parse s with
  | Error e -> Error ("manifest: " ^ e)
  | Ok j -> of_json j

(* ------------------------------------------------------------------ *)
(* Files.                                                              *)

let write_file ~path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json m);
      output_char oc '\n')

let read_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> of_string (String.trim contents)

let mean_norm_energy m =
  match m.benches with
  | [] -> 0.0
  | bs ->
    List.fold_left (fun acc b -> acc +. b.norm_energy) 0.0 bs /. float_of_int (List.length bs)
