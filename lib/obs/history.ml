let schema_version = 1

type bench_point = {
  hb_bench : string;
  hb_ipc : float;
  hb_norm_energy : float;
  hb_stalls : (string * float) list;
}

type perfgate = {
  pg_ns_per_run : float;
  pg_p90_ns : float;
  pg_minor_words : float;
  pg_runs : int;
  (* Added after the first committed records; encoded only when
     present so existing history lines keep decoding (and re-encode
     byte-identically). *)
  pg_promoted_words : float option;
  pg_major_words : float option;
}

type engine = { eng_useful : float; eng_spawn : float; eng_idle : float }

type gc = {
  hg_gc_share : float;  (* gc / useful over the widest engine window *)
  hg_minor_words : float;
  hg_pause_p50_ns : float;
  hg_pause_p99_ns : float;
}

type t = {
  timestamp : string;
  source : string;
  host : Host.t;
  jobs : int;
  wall_s : float;
  benches : bench_point list;
  perfgate : perfgate option;
  engine : engine option;
  gc : gc option;
  jobs2_slower : bool option;
}

(* ------------------------------------------------------------------ *)
(* Building records.                                                   *)

let bench_point_of_bench (b : Manifest.bench) =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 b.Manifest.stalls in
  {
    hb_bench = b.Manifest.bench;
    hb_ipc = b.Manifest.ipc;
    hb_norm_energy = b.Manifest.norm_energy;
    hb_stalls =
      List.map
        (fun (cause, n) ->
          (cause, if total = 0 then 0.0 else float_of_int n /. float_of_int total))
        b.Manifest.stalls;
  }

let of_manifest ?timestamp ?host ?perfgate ?engine ?gc ?jobs2_slower ~source ~wall_s
    (m : Manifest.t) =
  {
    timestamp = (match timestamp with Some s -> s | None -> Host.utc_now ());
    source;
    host = (match host with Some h -> h | None -> Host.fingerprint ());
    jobs = m.Manifest.options.Manifest.jobs;
    wall_s;
    benches = List.map bench_point_of_bench m.Manifest.benches;
    perfgate;
    engine;
    gc;
    jobs2_slower;
  }

(* ------------------------------------------------------------------ *)
(* Codec.  Field order is fixed so records are byte-stable; optional
   sections are omitted entirely rather than encoded as null, keeping
   lines compact and the decoder's presence test trivial.              *)

let bench_point_to_json p =
  Json.Obj
    [
      ("bench", Json.Str p.hb_bench);
      ("ipc", Json.Num p.hb_ipc);
      ("norm_energy", Json.Num p.hb_norm_energy);
      ("stalls", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) p.hb_stalls));
    ]

let perfgate_to_json g =
  let opt name = function Some v -> [ (name, Json.Num v) ] | None -> [] in
  Json.Obj
    ([
       ("ns_per_run", Json.Num g.pg_ns_per_run);
       ("p90_ns", Json.Num g.pg_p90_ns);
       ("minor_words", Json.Num g.pg_minor_words);
       ("runs", Json.int g.pg_runs);
     ]
    @ opt "promoted_words" g.pg_promoted_words
    @ opt "major_words" g.pg_major_words)

let gc_to_json g =
  Json.Obj
    [
      ("gc_share", Json.Num g.hg_gc_share);
      ("minor_words", Json.Num g.hg_minor_words);
      ("pause_p50_ns", Json.Num g.hg_pause_p50_ns);
      ("pause_p99_ns", Json.Num g.hg_pause_p99_ns);
    ]

let engine_to_json e =
  Json.Obj
    [
      ("useful", Json.Num e.eng_useful);
      ("spawn", Json.Num e.eng_spawn);
      ("idle", Json.Num e.eng_idle);
    ]

let to_json (r : t) =
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  Json.Obj
    ([
       ("schema_version", Json.int schema_version);
       ("timestamp", Json.Str r.timestamp);
       ("source", Json.Str r.source);
       ("host", Host.to_json r.host);
       ("jobs", Json.int r.jobs);
       ("wall_s", Json.Num r.wall_s);
       ("benches", Json.Arr (List.map bench_point_to_json r.benches));
     ]
    @ opt "perfgate" perfgate_to_json r.perfgate
    @ opt "engine" engine_to_json r.engine
    @ opt "gc" gc_to_json r.gc
    @ opt "jobs2_slower" (fun b -> Json.Bool b) r.jobs2_slower)

let to_string r = Json.to_string (to_json r)

let ( let* ) = Result.bind

let field j name conv =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "history: missing or ill-typed field %S" name)

let all_results l =
  List.fold_right
    (fun r acc ->
      let* x = r in
      let* tl = acc in
      Ok (x :: tl))
    l (Ok [])

let bench_point_of_json j =
  let* hb_bench = field j "bench" Json.to_str in
  let* hb_ipc = field j "ipc" Json.to_num in
  let* hb_norm_energy = field j "norm_energy" Json.to_num in
  let* hb_stalls =
    match Json.member "stalls" j with
    | Some (Json.Obj kvs) ->
      all_results
        (List.map
           (fun (k, v) ->
             match Json.to_num v with
             | Some f -> Ok (k, f)
             | None -> Error (Printf.sprintf "history: stall %S not a number" k))
           kvs)
    | _ -> Error "history: missing or ill-typed field \"stalls\""
  in
  Ok { hb_bench; hb_ipc; hb_norm_energy; hb_stalls }

let perfgate_of_json j =
  let* pg_ns_per_run = field j "ns_per_run" Json.to_num in
  let* pg_p90_ns = field j "p90_ns" Json.to_num in
  let* pg_minor_words = field j "minor_words" Json.to_num in
  let* pg_runs = field j "runs" Json.to_int in
  let opt name = Option.bind (Json.member name j) Json.to_num in
  Ok
    {
      pg_ns_per_run;
      pg_p90_ns;
      pg_minor_words;
      pg_runs;
      pg_promoted_words = opt "promoted_words";
      pg_major_words = opt "major_words";
    }

let gc_of_json j =
  let* hg_gc_share = field j "gc_share" Json.to_num in
  let* hg_minor_words = field j "minor_words" Json.to_num in
  let* hg_pause_p50_ns = field j "pause_p50_ns" Json.to_num in
  let* hg_pause_p99_ns = field j "pause_p99_ns" Json.to_num in
  Ok { hg_gc_share; hg_minor_words; hg_pause_p50_ns; hg_pause_p99_ns }

let engine_of_json j =
  let* eng_useful = field j "useful" Json.to_num in
  let* eng_spawn = field j "spawn" Json.to_num in
  let* eng_idle = field j "idle" Json.to_num in
  Ok { eng_useful; eng_spawn; eng_idle }

let opt_field j name conv =
  match Json.member name j with
  | None -> Ok None
  | Some v ->
    let* x = conv v in
    Ok (Some x)

let of_json j =
  let* version = field j "schema_version" Json.to_int in
  if version <> schema_version then
    Error (Printf.sprintf "history: schema version %d, expected %d" version schema_version)
  else
    let* timestamp = field j "timestamp" Json.to_str in
    let* source = field j "source" Json.to_str in
    let* host = Result.bind (field j "host" Option.some) Host.of_json in
    let* jobs = field j "jobs" Json.to_int in
    let* wall_s = field j "wall_s" Json.to_num in
    let* benches =
      match Json.member "benches" j with
      | Some (Json.Arr l) -> all_results (List.map bench_point_of_json l)
      | _ -> Error "history: missing or ill-typed field \"benches\""
    in
    let* perfgate = opt_field j "perfgate" perfgate_of_json in
    let* engine = opt_field j "engine" engine_of_json in
    let* gc = opt_field j "gc" gc_of_json in
    let* jobs2_slower =
      opt_field j "jobs2_slower" (fun v ->
          match Json.to_bool v with
          | Some b -> Ok b
          | None -> Error "history: \"jobs2_slower\" not a bool")
    in
    Ok { timestamp; source; host; jobs; wall_s; benches; perfgate; engine; gc; jobs2_slower }

let of_string s =
  let* j = Json.parse s in
  of_json j

(* ------------------------------------------------------------------ *)
(* File I/O.                                                           *)

let rec mkdir_parents dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_parents (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let append ~path r =
  mkdir_parents (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string r);
      output_char oc '\n')

let load ~path =
  if not (Sys.file_exists path) then ([], 0)
  else
    let lines =
      In_channel.with_open_text path In_channel.input_all |> String.split_on_char '\n'
    in
    List.fold_left
      (fun (records, rejected) line ->
        if String.trim line = "" then (records, rejected)
        else
          match of_string line with
          | Ok r -> (r :: records, rejected)
          | Error _ -> (records, rejected + 1))
      ([], 0) lines
    |> fun (records, rejected) -> (List.rev records, rejected)
