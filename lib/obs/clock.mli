(** Monotonic wall clock backing every span and timer in {!Span}.

    Thin wrapper over the CLOCK_MONOTONIC stub that Bechamel already
    ships, so timestamps are immune to NTP slew and cost one C call. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary (but fixed) origin. *)

val ns_to_us : int64 -> float
(** Nanoseconds to fractional microseconds (the unit Chrome's trace
    viewer expects in [ts]/[dur] fields). *)

val ns_to_ms : int64 -> float
