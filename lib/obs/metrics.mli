(** Metrics registry: named counters, gauges and histograms.

    Instrumented code obtains a handle once (lookups intern by name, so
    a handle per call site is cheap to create at module init) and bumps
    it with no further hashing.  Snapshots decouple reporting from
    collection: take one before and one after a region of interest and
    {!diff} them, or {!reset} the registry between runs.

    Histograms keep running count/sum/min/max plus integer-binned
    observations (backed by {!Util.Stats.histogram}) from which the
    summary percentiles are estimated. *)

type registry

val default : registry
(** The process-wide registry every instrumented library reports into. *)

val create_registry : unit -> registry

type counter
type gauge
type histogram

val counter : ?registry:registry -> string -> counter
(** Intern a counter by name (creating it at zero). *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?registry:registry -> string -> gauge
val set_gauge : gauge -> float -> unit

val histogram : ?registry:registry -> string -> histogram
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;  (** 0 when empty *)
  max : float;
  p50 : float;  (** estimated from integer bins *)
  p95 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;       (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

val snapshot : ?registry:registry -> unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: counter-wise subtraction; gauges keep the
    later value; histogram count/sum subtract while min/max/percentiles
    keep the later window's values (they are not invertible). *)

val reset : ?registry:registry -> unit -> unit
(** Zero every registered instrument (handles stay valid). *)

val is_empty : snapshot -> bool
(** No counters/histograms with activity and no gauges set. *)

val to_table : ?title:string -> snapshot -> Util.Table.t
val to_json : snapshot -> Json.t

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Decode a {!to_json} rendering back into a snapshot (run manifests
    embed one).  Entry ordering is preserved from the JSON, which
    {!to_json} emits name-sorted, so a decode/re-encode round-trip is
    byte-stable. *)
