(** Allocation-decision explainer.

    The compile-time allocator emits one {!decision} per live-range
    unit it considers (write units and read-operand units): the
    candidate levels it weighed, the per-level energy-savings estimate,
    partial-range shortening applied, and the final placement.  The
    recorder follows the same discipline as {!Audit}: disabled by
    default, a single atomic load on the fast path, and a
    mutex-serialized sink so fan-out over domains cannot interleave one
    sink's internal state.  Decisions are emitted in a deterministic
    order (write units first, then read units, both in construction
    order), independent of the priority order in which the allocator
    drained its queues. *)

(** Why a candidate level was or was not selected. *)
type verdict =
  | Chosen  (** this level won the live range *)
  | Ineligible of string  (** structurally excluded; the payload says why *)
  | Negative_savings  (** allocating would cost more energy than it saves *)
  | No_free_slot  (** occupancy rejected it, even after shortening *)

type candidate = {
  level : string;  (** ["lrf"] or ["orf"] *)
  savings : float;  (** estimated pJ saved across all warps, at final shape *)
  verdict : verdict;
}

type outcome =
  | To_lrf of { bank : int }
  | To_orf of { entry : int; shortened : int }
      (** [shortened] counts partial-range shortening steps applied *)
  | To_mrf  (** left in the main register file *)

type decision = {
  seq : int;  (** deterministic per-kernel emission index *)
  kernel : string;
  reg : string;
  kind : string;  (** ["write_unit"] or ["read_unit"] *)
  strand : int;
  width : int;
  first : int;  (** live interval start (instruction id, inclusive) *)
  last : int;  (** live interval end (instruction id, exclusive) *)
  defs : int list;  (** defining instruction ids (write units) *)
  covered : (int * int) list;  (** (instr, operand slot) reads served, final shape *)
  dropped_reads : int;  (** reads dropped by partial-range shortening *)
  mrf_copy : bool;  (** an MRF copy of the value is still required *)
  candidates : candidate list;
  outcome : outcome;
}

(** {1 Recorder} *)

val is_enabled : unit -> bool
(** One atomic load; sample it once per allocator run. *)

val emit : decision -> unit
(** No-op unless enabled.  The sink runs under the recorder mutex. *)

val set_sink : (decision -> unit) -> unit
(** Install a sink and enable the recorder. *)

val set_enabled : bool -> unit

val disable : unit -> unit
(** Disable and drop the sink. *)

val memory_sink : unit -> (decision -> unit) * (unit -> decision list)
(** In-memory sink plus a function returning events in emission order. *)

val jsonl_sink : out_channel -> decision -> unit
(** One JSON object per line; the caller owns the channel. *)

val printer_sink : Format.formatter -> decision -> unit

val tee : (decision -> unit) list -> decision -> unit

(** {1 Derived views} *)

val placed : decision -> bool
(** True when the outcome is LRF or ORF. *)

val outcome_level : decision -> string
(** ["lrf"], ["orf"] or ["mrf"]. *)

(** One instruction of a kernel's energy heatmap. *)
type instr_line = {
  pc : int;
  strand : int;
  text : string;
  pj : float;  (** attributed register-file energy *)
  share : float;  (** fraction of the kernel's total attributed energy *)
}

(** Everything {!Html_report} needs to render one kernel's explain
    section; assembled by the [rfh explain] driver so [obs] stays free
    of [ir]/[energy] dependencies. *)
type kernel_report = {
  kr_kernel : string;
  kr_decisions : decision list;
  kr_instrs : instr_line list;
  kr_total_pj : float;
}

(** {1 Encoding} *)

val to_json : decision -> Json.t
val of_json : Json.t -> (decision, string) result
val pp : Format.formatter -> decision -> unit
val verdict_name : verdict -> string
