(** Wall-clock engine profiler: exact parallel-efficiency accounting.

    {!profile} records one profiled window through {!Util.Eprof} (the
    raw recorder under [lib/util]) and analyzes it into a {!report}:
    per parallel region, the budget [wall × domains] is decomposed
    into seven named categories that {e sum exactly} — the same
    "every cycle has exactly one cause" discipline the warp-pipeline
    introspection applies to simulated stalls, applied to the OCaml
    domains running the simulator:

    - [useful]: time inside work items, minus profiled-lock and memo
      waits incurred there — the part that scales;
    - [spawn]: caller time inside [Domain.spawn];
    - [teardown]: caller time inside [Domain.join] {e after} the
      joined worker finished (join time spent waiting for a still-busy
      worker is imbalance, i.e. [idle]);
    - [lock_wait]: contended acquisitions of the profiled telemetry
      mutexes ([obs.metrics.*], [obs.audit.sink], [obs.span.spans]);
    - [memo_wait]: blocking on another domain's in-flight
      {!Util.Memo} computation;
    - [dispatch]: worker-loop time outside work items — index
      claiming, slot writes, event recording;
    - [idle]: everything else — workers idle before spawn/after their
      loop, the caller waiting in joins for busy workers (imbalance).

    Wait intervals are attributed to the innermost enclosing region
    and clipped to the owning domain's work items, so the categories
    stay disjoint by construction; {!check} re-verifies the sum and
    every component's sign, and [rfh engine] exits 1 if it ever
    fails.  Nested regions are each exact in isolation (an outer
    region's [useful] contains its inner regions' whole budgets).

    When {!Gcprof} ran over the window (the {!profile} default),
    [useful] is further split into [compute + gc]: [gc_ns] is the
    collector time ({!Gcprof} pauses of a collecting kind) overlapping
    the domain's work items, clamped into [[0, useful_ns]], so
    [compute = useful - gc] is exact by construction.  It is a
    sub-split, not an eighth category — the seven-way budget sum is
    unchanged. *)

type categories = {
  useful_ns : int;
  spawn_ns : int;
  teardown_ns : int;
  lock_wait_ns : int;
  memo_wait_ns : int;
  dispatch_ns : int;
  idle_ns : int;
  gc_ns : int;  (** sub-split of [useful_ns]; 0 without a {!Gcprof} capture *)
}

val cat_total : categories -> int
(** Sum of all seven categories ([gc_ns] excluded: it is part of
    [useful_ns]). *)

val category_names : string list
(** Display order: useful, spawn, teardown, lock wait, memo wait,
    dispatch, idle. *)

val cat_list : categories -> (string * int) list
(** [(category name, ns)] in {!category_names} order. *)

type region = {
  id : int;
  label : string;          (** the [?label] passed to [Pool.parallel_map] *)
  req_jobs : int;          (** requested [--jobs] *)
  domains : int;           (** actual team size (≤ req_jobs, ≤ elements) *)
  tasks : int;
  caller : int;            (** calling domain id *)
  start_ns : int;          (** region begin, relative to the epoch *)
  wall_ns : int;
  cats : categories;       (** [cat_total cats = wall_ns * domains] *)
}

type slice = {
  s_name : string;
  s_cat : string;          (** ["task"], ["lock"] or ["memo"] *)
  s_dom : int;
  s_start_ns : int;        (** relative to the epoch *)
  s_dur_ns : int;
}

type report = {
  label : string;
  jobs : int;              (** requested jobs for the whole window *)
  epoch_ns : int64;        (** absolute monotonic zero point ({!Util.Eprof.epoch_ns}) *)
  wall_ns : int;           (** whole profiled window, not just regions *)
  regions : region list;
  locks : Util.Eprof.lock_stats list;  (** deltas over the window *)
  memos : Util.Eprof.memo_stats list;  (** deltas over the window *)
  slices : slice list;     (** per-domain task/wait slices for traces *)
  gc : Gcprof.capture option;  (** the window's GC capture, when one ran *)
}

val profile : ?label:string -> ?gcprof:bool -> jobs:int -> (unit -> 'a) -> 'a * report
(** Run the thunk with the {!Util.Eprof} recorder on and analyze the
    recording.  The recorder is stopped (and on exceptions, the
    recording discarded) on the way out.  Not reentrant: one profiled
    window at a time.  [gcprof] (default [true]) also runs a
    {!Gcprof} capture over the window, filling [report.gc] and the
    per-region [gc_ns] sub-split. *)

val check : report -> string list
(** Accounting invariant violations, [[]] when sound: per region,
    every category [>= 0], their sum [= wall_ns * domains] and
    [0 <= gc_ns <= useful_ns]; per memo table,
    [lookups = hits + misses + waits]; per lock,
    [contended <= acquisitions]; per GC pause, duration [>= 0]. *)

val region_seconds : report -> float
(** Total wall seconds inside parallel regions (serial remainder =
    [wall - region_seconds]). *)

val agg_categories : report -> categories
(** Categories summed over all regions (budget =
    [sum of wall × domains]). *)

(** {1 Rendering} *)

val speedup_table : report list -> Util.Table.t
(** One row per report (give them in ascending-jobs order; the first
    is the baseline): wall, speedup, efficiency, region/serial
    split. *)

val breakdown_table : report list -> Util.Table.t
(** One row per report: the aggregate category shares of the region
    budget. *)

val region_table : report -> Util.Table.t
val lock_table : report -> Util.Table.t
val memo_table : report -> Util.Table.t

val memo_stats_table : Util.Eprof.memo_stats list -> Util.Table.t
(** Hit-rate table for cumulative {!Util.Eprof.memo_stats} snapshots
    (used by [rfh profile], where no engine window is recorded). *)

(** {1 GC rendering}

    All of these render from [report.gc] and the per-region [gc_ns]
    sub-split; reports without a capture contribute no rows (or
    [None]). *)

val gc_share : report -> float
(** Aggregate [gc / useful] over all regions ([0.] when no useful
    time was recorded). *)

val gc_pause_summary : report -> Metrics.hist_summary option
(** Pause-duration histogram summary in {e microseconds} over the
    window's collecting pauses (minor/major/barrier), built in a
    private {!Metrics} registry so the default registry — embedded in
    run manifests — is never touched. *)

type mem_totals = {
  mt_minor_words : float;
  mt_promoted_words : float;
  mt_major_words : float;
  mt_minor_collections : int;
  mt_major_collections : int;
}

val gc_mem_totals : Gcprof.capture -> mem_totals
(** Region-mem deltas summed over every profiled region. *)

val gc_summary_table : report list -> Util.Table.t
(** One row per report: useful vs GC ms, GC share of useful, pause
    counts by kind, p50/p99 pause, lost/unmatched event counts. *)

val gc_mem_table : report list -> Util.Table.t
(** One row per report: minor/promoted/major megawords, collection
    counts, allocation rate (minor megawords per useful second). *)

val gc_region_table : report -> Util.Table.t
(** Per-region useful/GC split and memory deltas for one report. *)

(** {1 Interchange} *)

val to_json : report -> Json.t
val of_json : Json.t -> (report, string) result

val trace_pid : int
(** Process row for engine slices in exported traces:
    {!Trace_export.engine_pid} (wall-clock time base — see the pid
    registry in {!Trace_export}). *)

val trace_events : base_ns:int64 -> report -> Json.t list
(** Perfetto rows for one report: process/thread metadata plus one
    "X" slice per region (on the caller's tid) and per task/wait
    slice (on the owning domain's tid).  [base_ns] is the absolute
    timestamp subtracted from every event — pass a common base (e.g.
    the earliest span or epoch) so engine rows align with span
    rows. *)

val gc_trace_events : base_ns:int64 -> report -> Json.t list
(** Perfetto rows for the report's GC capture on
    {!Trace_export.gc_pid}: one "X" slice per pause, on the resolved
    domain's tid (unresolved pauses land on a sentinel "unresolved"
    row).  Same time base and [base_ns] convention as
    {!trace_events}; empty without a capture. *)
