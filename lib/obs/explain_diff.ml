(* Differential alignment of two Obs.Explain decision streams.  The
   whole pipeline is deterministic: inputs are sorted by (kernel, seq)
   up front, the pairing walk is a single ordered pass, and every
   derived list keeps a fixed, comparison-defined order — so two
   invocations over the same streams render byte-identical tables no
   matter how the files were produced. *)

type key = {
  k_kernel : string;
  k_kind : string;
  k_reg : string;
  k_strand : int;
  k_first : int;
  k_occurrence : int;
}

type flip =
  | Level_changed of { from_level : string; to_level : string }
  | Verdict_changed of { level : string; was : string; now : string }
  | Savings_changed of { level : string; was : float; now : float }
  | Coverage_changed of {
      covered_was : int;
      covered_now : int;
      dropped_was : int;
      dropped_now : int;
    }

type pair = {
  p_key : key;
  p_a : Explain.decision;
  p_b : Explain.decision;
  p_flips : flip list;
}

type move = { m_from : string; m_to : string; m_count : int; m_savings_delta : float }

type kernel_stats = {
  ks_kernel : string;
  ks_aligned : int;
  ks_changed : int;
  ks_moves : move list;
  ks_verdict_flips : int;
  ks_savings_delta : float;
  ks_covered_delta : int;
  ks_dropped_delta : int;
  ks_only_a : int;
  ks_only_b : int;
}

type t = {
  d_pairs : pair list;
  d_only_a : Explain.decision list;
  d_only_b : Explain.decision list;
  d_kernels : kernel_stats list;
  d_total_a : int;
  d_total_b : int;
  d_aligned : int;
}

(* ------------------------------------------------------------------ *)
(* Keys and ordering.                                                  *)

let sort_decisions ds =
  List.stable_sort
    (fun (a : Explain.decision) (b : Explain.decision) ->
      match compare a.Explain.kernel b.Explain.kernel with
      | 0 -> compare a.Explain.seq b.Explain.seq
      | c -> c)
    ds

(* Occurrence indices disambiguate a register re-used with the same
   (kind, strand, first) — rare, but alignment must never silently drop
   a decision over it.  Assigned in sorted order, so both sides number
   identical shapes identically. *)
let keyed ds =
  let seen = Hashtbl.create 64 in
  List.map
    (fun (d : Explain.decision) ->
      let base = (d.Explain.kernel, d.Explain.kind, d.Explain.reg, d.Explain.strand, d.Explain.first) in
      let occ = try Hashtbl.find seen base with Not_found -> 0 in
      Hashtbl.replace seen base (occ + 1);
      ( {
          k_kernel = d.Explain.kernel;
          k_kind = d.Explain.kind;
          k_reg = d.Explain.reg;
          k_strand = d.Explain.strand;
          k_first = d.Explain.first;
          k_occurrence = occ;
        },
        d ))
    (sort_decisions ds)

(* ------------------------------------------------------------------ *)
(* Pair classification.                                                *)

let verdict_tag = function
  | Explain.Chosen -> "chosen"
  | Explain.Ineligible _ -> "ineligible"
  | Explain.Negative_savings -> "negative_savings"
  | Explain.No_free_slot -> "no_free_slot"

let chosen_savings (d : Explain.decision) =
  match
    List.find_opt (fun (c : Explain.candidate) -> c.Explain.verdict = Explain.Chosen)
      d.Explain.candidates
  with
  | Some c -> c.Explain.savings
  | None -> 0.0

let rel_differs a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  scale > 0.0 && Float.abs (a -. b) /. scale > 1e-9

let candidate_levels (d : Explain.decision) =
  List.map (fun (c : Explain.candidate) -> c.Explain.level) d.Explain.candidates

let candidate_of level (d : Explain.decision) =
  List.find_opt (fun (c : Explain.candidate) -> c.Explain.level = level) d.Explain.candidates

let flips_of (a : Explain.decision) (b : Explain.decision) =
  let level_flip =
    let la = Explain.outcome_level a and lb = Explain.outcome_level b in
    if la <> lb then [ Level_changed { from_level = la; to_level = lb } ] else []
  in
  let levels = List.sort_uniq compare (candidate_levels a @ candidate_levels b) in
  let candidate_flips =
    List.concat_map
      (fun level ->
        match (candidate_of level a, candidate_of level b) with
        | Some ca, Some cb ->
          let v =
            if verdict_tag ca.Explain.verdict <> verdict_tag cb.Explain.verdict then
              [
                Verdict_changed
                  {
                    level;
                    was = verdict_tag ca.Explain.verdict;
                    now = verdict_tag cb.Explain.verdict;
                  };
              ]
            else []
          in
          let s =
            if rel_differs ca.Explain.savings cb.Explain.savings then
              [ Savings_changed { level; was = ca.Explain.savings; now = cb.Explain.savings } ]
            else []
          in
          v @ s
        | Some ca, None ->
          [ Verdict_changed { level; was = verdict_tag ca.Explain.verdict; now = "absent" } ]
        | None, Some cb ->
          [ Verdict_changed { level; was = "absent"; now = verdict_tag cb.Explain.verdict } ]
        | None, None -> [])
      levels
  in
  let coverage =
    let ca = List.length a.Explain.covered and cb = List.length b.Explain.covered in
    if ca <> cb || a.Explain.dropped_reads <> b.Explain.dropped_reads then
      [
        Coverage_changed
          {
            covered_was = ca;
            covered_now = cb;
            dropped_was = a.Explain.dropped_reads;
            dropped_now = b.Explain.dropped_reads;
          };
      ]
    else []
  in
  level_flip @ candidate_flips @ coverage

(* ------------------------------------------------------------------ *)
(* Alignment.                                                          *)

let align ~a ~b =
  let ka = keyed a and kb = keyed b in
  let index_a = Hashtbl.create 256 in
  List.iter (fun (k, d) -> Hashtbl.replace index_a k d) ka;
  let pairs = ref [] and only_b = ref [] and aligned = ref 0 in
  List.iter
    (fun (k, db) ->
      match Hashtbl.find_opt index_a k with
      | Some da ->
        Hashtbl.remove index_a k;
        incr aligned;
        let flips = flips_of da db in
        if flips <> [] then pairs := { p_key = k; p_a = da; p_b = db; p_flips = flips } :: !pairs
      | None -> only_b := db :: !only_b)
    kb;
  (* Leftovers of a, kept in a's deterministic (kernel, seq) order. *)
  let only_a = List.filter_map (fun (k, d) -> if Hashtbl.mem index_a k then Some d else None) ka in
  let pairs = List.rev !pairs and only_b = List.rev !only_b in
  (* Per-kernel aggregation, kernels in sorted-stream order. *)
  let kernel_order = ref [] in
  let note k = if not (List.mem k !kernel_order) then kernel_order := k :: !kernel_order in
  List.iter (fun (_, (d : Explain.decision)) -> note d.Explain.kernel) ka;
  List.iter (fun (_, (d : Explain.decision)) -> note d.Explain.kernel) kb;
  let kernels =
    List.rev_map
      (fun kernel ->
        let kp = List.filter (fun p -> p.p_key.k_kernel = kernel) pairs in
        let in_kernel (d : Explain.decision) = d.Explain.kernel = kernel in
        let aligned_k =
          List.length (List.filter (fun ((k : key), _) -> k.k_kernel = kernel) ka)
          - List.length (List.filter in_kernel only_a)
        in
        let moves =
          List.fold_left
            (fun acc p ->
              List.fold_left
                (fun acc flip ->
                  match flip with
                  | Level_changed { from_level; to_level } ->
                    let delta = chosen_savings p.p_b -. chosen_savings p.p_a in
                    let rec bump = function
                      | [] -> [ { m_from = from_level; m_to = to_level; m_count = 1; m_savings_delta = delta } ]
                      | m :: tl when m.m_from = from_level && m.m_to = to_level ->
                        { m with m_count = m.m_count + 1; m_savings_delta = m.m_savings_delta +. delta }
                        :: tl
                      | m :: tl -> m :: bump tl
                    in
                    bump acc
                  | _ -> acc)
                acc p.p_flips)
            [] kp
          |> List.sort (fun a b ->
                 match compare a.m_from b.m_from with 0 -> compare a.m_to b.m_to | c -> c)
        in
        let verdict_flips =
          List.fold_left
            (fun acc p ->
              acc
              + List.length
                  (List.filter (function Verdict_changed _ -> true | _ -> false) p.p_flips))
            0 kp
        in
        let covered_delta, dropped_delta =
          List.fold_left
            (fun (dc, dd) p ->
              ( dc + List.length p.p_b.Explain.covered - List.length p.p_a.Explain.covered,
                dd + p.p_b.Explain.dropped_reads - p.p_a.Explain.dropped_reads ))
            (0, 0) kp
        in
        let savings_delta =
          List.fold_left (fun acc p -> acc +. (chosen_savings p.p_b -. chosen_savings p.p_a)) 0.0 kp
        in
        {
          ks_kernel = kernel;
          ks_aligned = aligned_k;
          ks_changed = List.length kp;
          ks_moves = moves;
          ks_verdict_flips = verdict_flips;
          ks_savings_delta = savings_delta;
          ks_covered_delta = covered_delta;
          ks_dropped_delta = dropped_delta;
          ks_only_a = List.length (List.filter in_kernel only_a);
          ks_only_b = List.length (List.filter in_kernel only_b);
        })
      !kernel_order
    |> List.sort (fun a b -> compare a.ks_kernel b.ks_kernel)
  in
  {
    d_pairs = pairs;
    d_only_a = only_a;
    d_only_b = only_b;
    d_kernels = kernels;
    d_total_a = List.length a;
    d_total_b = List.length b;
    d_aligned = !aligned;
  }

(* ------------------------------------------------------------------ *)
(* Loading.                                                            *)

let load_jsonl ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let decisions = ref [] and rejected = ref 0 in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" then
               match Json.parse line with
               | Error _ -> incr rejected
               | Ok j -> (
                 match Explain.of_json j with
                 | Ok d -> decisions := d :: !decisions
                 | Error _ -> incr rejected)
           done
         with End_of_file -> ());
        (List.rev !decisions, !rejected))
  with
  | exception Sys_error msg -> Error msg
  | result -> Ok result

(* ------------------------------------------------------------------ *)
(* Rendering helpers and the accounting self-check.                    *)

let flip_name = function
  | Level_changed { from_level; to_level } ->
    Printf.sprintf "moved %s -> %s" from_level to_level
  | Verdict_changed { level; was; now } ->
    Printf.sprintf "%s verdict %s -> %s" level was now
  | Savings_changed { level; was; now } ->
    Printf.sprintf "%s savings %.4g -> %.4g pJ" level was now
  | Coverage_changed { covered_was; covered_now; dropped_was; dropped_now } ->
    Printf.sprintf "coverage %d -> %d reads (dropped %d -> %d)" covered_was covered_now
      dropped_was dropped_now

let check t =
  let bad = ref [] in
  let expect what ok = if not ok then bad := what :: !bad in
  expect "aligned + only_a = total_a" (t.d_aligned + List.length t.d_only_a = t.d_total_a);
  expect "aligned + only_b = total_b" (t.d_aligned + List.length t.d_only_b = t.d_total_b);
  let sum f = List.fold_left (fun acc k -> acc + f k) 0 t.d_kernels in
  expect "kernel aligned sums to total aligned" (sum (fun k -> k.ks_aligned) = t.d_aligned);
  expect "kernel changed sums to changed pairs"
    (sum (fun k -> k.ks_changed) = List.length t.d_pairs);
  expect "kernel only_a sums" (sum (fun k -> k.ks_only_a) = List.length t.d_only_a);
  expect "kernel only_b sums" (sum (fun k -> k.ks_only_b) = List.length t.d_only_b);
  (* Every level flip lands in exactly one move bucket. *)
  let level_flips =
    List.fold_left
      (fun acc p ->
        acc + List.length (List.filter (function Level_changed _ -> true | _ -> false) p.p_flips))
      0 t.d_pairs
  in
  let bucketed = sum (fun k -> List.fold_left (fun acc m -> acc + m.m_count) 0 k.ks_moves) in
  expect "move buckets reproduce level flips" (bucketed = level_flips);
  List.iter
    (fun p -> expect "changed pair has at least one flip" (p.p_flips <> []))
    t.d_pairs;
  List.rev !bad
