(** Ranked differential root-cause analysis — the [rfh why] engine.

    Combines three delta sources into one deterministic cause table:
    manifest metric deltas (IPC, normalized energy, total energy,
    per-level RF energy), per-cause stall-share deltas
    ({!Stall_diff}), and allocation-decision flips ({!Explain_diff},
    when explain streams are supplied).  Each cause is quantified —
    e.g. ["mm: 14 ranges moved orf -> mrf, explaining +38% rf
    energy"] — and scored on a comparable 0..1-ish scale: metrics by
    signed relative delta magnitude, stalls by share-delta magnitude,
    allocation moves by the fraction of aligned ranges that moved.

    Determinism contract: causes are sorted by score descending, ties
    broken by (bench, kind, what); every float prints through the
    fixed ["%.4g"] format; and the inputs themselves are
    jobs-independent (manifests are byte-stable, explain streams are
    sorted before alignment) — so the ranked table is byte-identical
    across [--jobs] settings.  {!check} is the exact-attribution
    self-check in the spirit of [Obs.Engine.check]. *)

type kind =
  | Metric  (** a manifest scalar moved *)
  | Stall  (** a stall cause's share of the cycle budget moved *)
  | Alloc  (** aligned live ranges changed allocation outcome *)

val kind_name : kind -> string
(** ["metric"] / ["stall"] / ["alloc"]. *)

type cause = {
  c_bench : string;  (** benchmark (or kernel, for alloc causes) *)
  c_kind : kind;
  c_what : string;  (** e.g. ["norm_energy"], ["stall long_latency"],
                        ["moved orf -> mrf"] *)
  c_delta : string;  (** quantified human-readable delta *)
  c_score : float;  (** ranking weight, always > 0 *)
  c_count : int;  (** ranges/warp-cycles involved; 0 for metrics *)
}

(** One bench-level scalar compared across the two sides; feeds the
    HTML delta bars and the [delta] table. *)
type metric_delta = {
  md_bench : string;
  md_metric : string;  (** ["ipc"], ["norm_energy"], ["total_pj"],
                           ["energy:mrf"] … *)
  md_a : float;
  md_b : float;
  md_rel : float;  (** signed [(b - a) / max |a| |b|]; 0 when both 0 *)
}

type t = {
  r_causes : cause list;  (** ranked, score descending *)
  r_metrics : metric_delta list;  (** bench then metric order, all
                                      benches common to both sides *)
  r_stalls : Stall_diff.t option;
  r_explain : Explain_diff.t option;
  r_only_a : string list;  (** bench names only in the baseline *)
  r_only_b : string list;
}

val rel_delta : float -> float -> float
(** Signed relative delta [(b - a) / max |a| |b|] (0 when both are
    0); symmetric in scale so a doubling and a halving score alike. *)

val analyze :
  ?explain:Explain_diff.t ->
  baseline:Manifest.t ->
  candidate:Manifest.t ->
  unit ->
  t
(** Full three-source analysis of two manifests (plus an optional
    pre-aligned explain diff).  Zero-magnitude causes are dropped, so
    two identical runs rank no causes at all: metric deltas below
    1e-9 relative (the {!Regress} float tolerance — JSON round-trip
    noise the gate itself would not flag) and stall-share deltas
    below 1e-12 (shares are ratios of exact integers). *)

val of_history : before:History.t -> after:History.t -> t
(** Reduced analysis over two history records (IPC / normalized
    energy / stall shares only — that is all a history line carries).
    Used by [rfh trend --check --why] to diagnose the offending
    record against its predecessor. *)

val top_cause : t -> cause option

val check : t -> string list
(** Exact-attribution self-check: empty = sound.  Verifies the
    ranking is monotone in score with deterministic tie order, every
    cause scores > 0, every metric cause points at a real metric
    delta, and the embedded {!Stall_diff.check} / {!Explain_diff.check}
    accountings hold. *)

val to_table : ?top:int -> t -> string
(** Ranked cause table ([top] defaults to all), one line per cause,
    byte-deterministic. *)

val delta_table : t -> string
(** Per-benchmark metric delta table (all metrics, including
    unchanged ones), byte-deterministic. *)

val to_json : t -> Json.t
(** Machine-readable analysis: ranked causes, metric deltas, stall
    and explain summaries, self-check verdict.  Fixed field order. *)
