(** Stall-attribution and scheduler-residency deltas between two run
    manifests (schema v2+).

    Each manifest bench carries the exact 7-cause stall breakdown of
    its reference perf run (warp-cycles per cause, summing to
    cycles × warps) plus the active-set residency counters.  {!diff}
    converts the counts of each side into shares of that side's own
    budget — runs with different cycle counts stay comparable — and
    reports the per-cause share delta next to the raw counts, plus the
    residency/deschedule-count deltas.

    {!check} verifies the exactness the counts promise: per side the
    shares sum to 1 (so the per-cause deltas sum to 0), counts are
    nonnegative, and both sides list the same causes in the same
    order. *)

type cause_delta = {
  cd_cause : string;  (** {!Timeline.state_name} key *)
  cd_count_a : int;
  cd_count_b : int;
  cd_share_a : float;  (** count / (cycles × warps) of side a *)
  cd_share_b : float;
  cd_delta : float;  (** [cd_share_b -. cd_share_a] *)
}

type sched_delta = {
  sd_entries : int * int;  (** (baseline, candidate) *)
  sd_exits : int * int;
  sd_resident_cycles : int * int;
  sd_mean_residency : float * float;  (** resident cycles / exits *)
  sd_desched_long_latency : int * int;
  sd_desched_strand_boundary : int * int;
  sd_desched_bank_conflict : int * int;
}

type bench_diff = {
  sb_bench : string;
  sb_total_a : int;  (** cycles × warps budget of side a *)
  sb_total_b : int;
  sb_causes : cause_delta list;  (** manifest stall order *)
  sb_sched : sched_delta;
}

type t = {
  s_benches : bench_diff list;  (** benches present on both sides *)
  s_only_a : string list;  (** bench names only in the baseline *)
  s_only_b : string list;
}

val diff : baseline:Manifest.t -> current:Manifest.t -> t

val check : t -> string list
(** Empty = sound: per bench and side, shares sum to 1 (within 1e-9)
    so the deltas sum to 0; all counts nonnegative; cause lists agree.
    A bench with an all-zero stall budget (no perf run recorded) is
    skipped rather than failed. *)
