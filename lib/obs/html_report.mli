(** Self-contained HTML rendering of a run manifest.

    The output is a single file with inline CSS and no scripts or
    external assets — it opens from disk offline and attaches to CI
    runs as one artifact.  Sections: run options, headline mean
    normalized energy, per-benchmark energy-breakdown bars (stacked by
    register-file level, width proportional to normalized energy),
    benchmark results table, phase-time table, metrics registry and the
    top allocator audit events.

    With [?compare] the report becomes an A/B diff: the headline and
    the results table additionally show deltas against the baseline
    manifest.

    With [?explain] (one {!Explain.kernel_report} per kernel, as
    assembled by [rfh explain]) the report gains an "Allocation
    explainer" section: the per-kernel decision table and an energy
    heatmap over the instruction stream whose row backgrounds scale
    with each instruction's attributed register-file energy.

    With [?engine] (one {!Engine.report} per [--jobs] setting, in
    ascending order) the report gains an "Engine profile" section:
    the speedup/efficiency table and one stacked bar per jobs setting
    decomposing the parallel-region budget (wall × domains) into the
    seven exact overhead categories, plus per-region bars and the
    memo/lock contention tables of the widest run. *)

val render :
  ?compare:Manifest.t ->
  ?explain:Explain.kernel_report list ->
  ?engine:Engine.report list ->
  Manifest.t ->
  string

val write_file :
  ?compare:Manifest.t ->
  ?explain:Explain.kernel_report list ->
  ?engine:Engine.report list ->
  path:string ->
  Manifest.t ->
  unit

val render_engine_page : Engine.report list -> string
(** A standalone engine-only page (same styling, no manifest needed) —
    what [rfh engine --report-out] writes. *)

val write_engine_page : path:string -> Engine.report list -> unit
(** @raise Sys_error on I/O failure. *)

val render_trend_page :
  history_path:string ->
  records:History.t list ->
  rejected:int ->
  Trend.gate_result ->
  string
(** A standalone trend dashboard over the cross-run history (same
    styling; sparklines are inline SVG with change points marked and
    annotated with their git revisions) — what [rfh trend --html-out]
    writes.  [rejected] is the undecodable-line count from
    {!History.load}; an exit-2 gate renders a "not enough history"
    banner instead of tables. *)

val write_trend_page :
  history_path:string ->
  records:History.t list ->
  rejected:int ->
  path:string ->
  Trend.gate_result ->
  unit
(** @raise Sys_error on I/O failure. *)

val render_why_page :
  baseline_label:string -> candidate_label:string -> Rootcause.t -> string
(** A standalone root-cause page (same styling) — what [rfh why
    --report-out] writes.  Sections: attribution self-check banner,
    top-cause headline, ranked cause table, per-benchmark signed
    metric delta bars (red = bad direction: IPC down or energy up),
    stall-share delta tables and the allocation decision diff when
    explain streams were supplied.  The labels are the input paths. *)

val write_why_page :
  baseline_label:string -> candidate_label:string -> path:string -> Rootcause.t -> unit
(** @raise Sys_error on I/O failure. *)
