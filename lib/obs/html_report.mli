(** Self-contained HTML rendering of a run manifest.

    The output is a single file with inline CSS and no scripts or
    external assets — it opens from disk offline and attaches to CI
    runs as one artifact.  Sections: run options, headline mean
    normalized energy, per-benchmark energy-breakdown bars (stacked by
    register-file level, width proportional to normalized energy),
    benchmark results table, phase-time table, metrics registry and the
    top allocator audit events.

    With [?compare] the report becomes an A/B diff: the headline and
    the results table additionally show deltas against the baseline
    manifest. *)

val render : ?compare:Manifest.t -> Manifest.t -> string

val write_file : ?compare:Manifest.t -> path:string -> Manifest.t -> unit
