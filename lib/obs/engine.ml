(* Exact decomposition of parallel wall time.  The arithmetic is
   arranged so the seven categories sum to wall × domains by
   construction (idle is the per-domain remainder); [check] re-verifies
   the sum and, more importantly, that no component went negative —
   which is what would actually catch a broken attribution. *)

type categories = {
  useful_ns : int;
  spawn_ns : int;
  teardown_ns : int;
  lock_wait_ns : int;
  memo_wait_ns : int;
  dispatch_ns : int;
  idle_ns : int;
  gc_ns : int;
      (* NOT an eighth budget category: gc is a sub-split of [useful_ns]
         (collector time inside task intervals, from Gcprof pauses), so
         it is excluded from [cat_total]/[cat_list] and the seven-way
         sum stays exact.  compute = useful - gc by definition. *)
}

let cat_zero =
  {
    useful_ns = 0;
    spawn_ns = 0;
    teardown_ns = 0;
    lock_wait_ns = 0;
    memo_wait_ns = 0;
    dispatch_ns = 0;
    idle_ns = 0;
    gc_ns = 0;
  }

let cat_add a b =
  {
    useful_ns = a.useful_ns + b.useful_ns;
    spawn_ns = a.spawn_ns + b.spawn_ns;
    teardown_ns = a.teardown_ns + b.teardown_ns;
    lock_wait_ns = a.lock_wait_ns + b.lock_wait_ns;
    memo_wait_ns = a.memo_wait_ns + b.memo_wait_ns;
    dispatch_ns = a.dispatch_ns + b.dispatch_ns;
    idle_ns = a.idle_ns + b.idle_ns;
    gc_ns = a.gc_ns + b.gc_ns;
  }

let cat_total c =
  c.useful_ns + c.spawn_ns + c.teardown_ns + c.lock_wait_ns + c.memo_wait_ns + c.dispatch_ns
  + c.idle_ns

let category_names =
  [ "useful"; "spawn"; "teardown"; "lock wait"; "memo wait"; "dispatch"; "idle" ]

let cat_list c =
  [
    ("useful", c.useful_ns);
    ("spawn", c.spawn_ns);
    ("teardown", c.teardown_ns);
    ("lock wait", c.lock_wait_ns);
    ("memo wait", c.memo_wait_ns);
    ("dispatch", c.dispatch_ns);
    ("idle", c.idle_ns);
  ]

type region = {
  id : int;
  label : string;
  req_jobs : int;
  domains : int;
  tasks : int;
  caller : int;
  start_ns : int;
  wall_ns : int;
  cats : categories;
}

type slice = {
  s_name : string;
  s_cat : string;
  s_dom : int;
  s_start_ns : int;
  s_dur_ns : int;
}

type report = {
  label : string;
  jobs : int;
  epoch_ns : int64;
  wall_ns : int;
  regions : region list;
  locks : Util.Eprof.lock_stats list;
  memos : Util.Eprof.memo_stats list;
  slices : slice list;
  gc : Gcprof.capture option;
}

(* ---- analysis ---------------------------------------------------- *)

type racc = {
  mutable a_label : string;
  mutable a_jobs : int;
  mutable a_caller : int;
  mutable a_begin : int;
  mutable a_end : int option;
  mutable a_spawns : (int * int * int) list;  (* dom, start, stop *)
  mutable a_joins : (int * int * int) list;
  mutable a_workers : (int * int * int) list;
  mutable a_tasks : (int * int * int * int) list;  (* dom, index, start, stop *)
}

let overlap a0 a1 b0 b1 = max 0 (min a1 b1 - max a0 b0)

let analyze ~label ~jobs ~epoch_ns ~wall_ns ~locks ~memos ?gc (events : Util.Eprof.event list) =
  let regions : (int, racc) Hashtbl.t = Hashtbl.create 16 in
  let get id =
    match Hashtbl.find_opt regions id with
    | Some r -> r
    | None ->
      let r =
        {
          a_label = "?";
          a_jobs = 0;
          a_caller = 0;
          a_begin = 0;
          a_end = None;
          a_spawns = [];
          a_joins = [];
          a_workers = [];
          a_tasks = [];
        }
      in
      Hashtbl.add regions id r;
      r
  in
  (* kind, name, dom, start, stop *)
  let waits = ref [] in
  List.iter
    (fun (ev : Util.Eprof.event) ->
      match ev with
      | Region_begin { region; label; jobs; caller; t } ->
        let r = get region in
        r.a_label <- label;
        r.a_jobs <- jobs;
        r.a_caller <- caller;
        r.a_begin <- t
      | Region_end { region; t } -> (get region).a_end <- Some t
      | Spawn { region; dom; start; stop } ->
        let r = get region in
        r.a_spawns <- (dom, start, stop) :: r.a_spawns
      | Join { region; dom; start; stop } ->
        let r = get region in
        r.a_joins <- (dom, start, stop) :: r.a_joins
      | Worker { region; dom; start; stop } ->
        let r = get region in
        r.a_workers <- (dom, start, stop) :: r.a_workers
      | Task { region; dom; index; start; stop } ->
        let r = get region in
        r.a_tasks <- (dom, index, start, stop) :: r.a_tasks
      | Lock_wait { name; dom; start; stop } -> waits := (`Lock, name, dom, start, stop) :: !waits
      | Memo_wait { table; dom; start; stop } ->
        waits := (`Memo, table, dom, start, stop) :: !waits)
    events;
  (* Only complete regions are analyzable (an interrupted recording can
     leave a dangling begin). *)
  let complete =
    Hashtbl.fold (fun id r acc -> match r.a_end with Some e -> (id, r, e) :: acc | None -> acc)
      regions []
    |> List.sort (fun (_, a, _) (_, b, _) -> compare a.a_begin b.a_begin)
  in
  (* Attribute each wait to the innermost complete region whose window
     contains it and whose team includes the waiting domain. *)
  let member dom r = dom = r.a_caller || List.exists (fun (d, _, _) -> d = dom) r.a_workers in
  let assigned : (int, (bool * int * int * int) list) Hashtbl.t = Hashtbl.create 16 in
  (* region id -> (is_lock, dom, start, stop) *)
  List.iter
    (fun (kind, _name, dom, start, stop) ->
      let best =
        List.fold_left
          (fun best (id, r, e) ->
            if r.a_begin <= start && stop <= e && member dom r then
              match best with
              | Some (_, _, bw) when bw <= e - r.a_begin -> best
              | _ -> Some (id, r, e - r.a_begin)
            else best)
          None complete
      in
      match best with
      | None -> ()
      | Some (id, _, _) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt assigned id) in
        Hashtbl.replace assigned id ((kind = `Lock, dom, start, stop) :: prev))
    !waits;
  (* GC pauses attributable to a domain: resolved, and of a collecting
     kind (condition waits etc. are not charged). *)
  let gc_pauses =
    match gc with
    | None -> []
    | Some (g : Gcprof.capture) ->
      List.filter_map
        (fun (p : Gcprof.pause) ->
          if p.gp_dom >= 0 && Gcprof.counts_as_gc p.gp_kind then
            Some (p.gp_dom, p.gp_start_ns, p.gp_start_ns + p.gp_dur_ns)
          else None)
        g.c_pauses
  in
  let analyzed =
    List.map
      (fun (id, r, rend) ->
        let wall = rend - r.a_begin in
        let workers = r.a_workers in
        let domains = List.length workers in
        let tasks_of dom = List.filter (fun (d, _, _, _) -> d = dom) r.a_tasks in
        let rwaits = Option.value ~default:[] (Hashtbl.find_opt assigned id) in
        let spawn_total = List.fold_left (fun acc (_, s, e) -> acc + (e - s)) 0 r.a_spawns in
        let worker_exit dom =
          List.fold_left (fun acc (d, _, e) -> if d = dom then max acc e else acc) 0 workers
        in
        let teardown_total =
          List.fold_left
            (fun acc (dom, s, e) -> acc + max 0 (e - max s (worker_exit dom)))
            0 r.a_joins
        in
        let per_domain (dom, w0, w1) =
          let tasks = tasks_of dom in
          let busy = List.fold_left (fun acc (_, _, s, e) -> acc + (e - s)) 0 tasks in
          (* Waits are clipped to this domain's task intervals: a wait
             straddling a task boundary (cannot happen today, but cheap
             to be safe about) only discounts task time it actually
             covers, so [useful] cannot go negative from attribution. *)
          let clipped p =
            List.fold_left
              (fun acc (is_lock, d, s, e) ->
                if d = dom && is_lock = p then
                  acc
                  + List.fold_left (fun a (_, _, ts, te) -> a + overlap s e ts te) 0 tasks
                else acc)
              0 rwaits
          in
          let lockw = clipped true in
          let memow = clipped false in
          let dispatch = w1 - w0 - busy in
          let useful = busy - lockw - memow in
          (* GC inside this domain's task intervals.  Same clipping as
             waits, then clamped to [useful]: a pause can overlap a
             wait interval (the collector runs while we spin on a
             memo), and double-charging would push compute negative. *)
          let gc_raw =
            List.fold_left
              (fun acc (pd, ps, pe) ->
                if pd = dom then
                  acc + List.fold_left (fun a (_, _, ts, te) -> a + overlap ps pe ts te) 0 tasks
                else acc)
              0 gc_pauses
          in
          let gc = max 0 (min gc_raw useful) in
          if dom = r.a_caller then
            {
              useful_ns = useful;
              spawn_ns = spawn_total;
              teardown_ns = teardown_total;
              lock_wait_ns = lockw;
              memo_wait_ns = memow;
              dispatch_ns = dispatch;
              idle_ns = wall - spawn_total - (w1 - w0) - teardown_total;
              gc_ns = gc;
            }
          else
            {
              cat_zero with
              useful_ns = useful;
              lock_wait_ns = lockw;
              memo_wait_ns = memow;
              dispatch_ns = dispatch;
              idle_ns = wall - (w1 - w0);
              gc_ns = gc;
            }
        in
        let cats = List.fold_left (fun acc w -> cat_add acc (per_domain w)) cat_zero workers in
        {
          id;
          label = r.a_label;
          req_jobs = r.a_jobs;
          domains;
          tasks = List.length r.a_tasks;
          caller = r.a_caller;
          start_ns = r.a_begin;
          wall_ns = wall;
          cats;
        })
      complete
  in
  let task_slices =
    Hashtbl.fold
      (fun _ r acc ->
        List.fold_left
          (fun acc (dom, index, s, e) ->
            {
              s_name = Printf.sprintf "%s[%d]" r.a_label index;
              s_cat = "task";
              s_dom = dom;
              s_start_ns = s;
              s_dur_ns = e - s;
            }
            :: acc)
          acc r.a_tasks)
      regions []
  in
  let wait_slices =
    List.map
      (fun (kind, name, dom, start, stop) ->
        {
          s_name = (match kind with `Lock -> "lock:" ^ name | `Memo -> "memo:" ^ name);
          s_cat = (match kind with `Lock -> "lock" | `Memo -> "memo");
          s_dom = dom;
          s_start_ns = start;
          s_dur_ns = stop - start;
        })
      !waits
  in
  let slices =
    List.sort
      (fun a b -> if a.s_start_ns <> b.s_start_ns then compare a.s_start_ns b.s_start_ns else compare a.s_dom b.s_dom)
      (task_slices @ wait_slices)
  in
  { label; jobs; epoch_ns; wall_ns; regions = analyzed; locks; memos; slices; gc }

let diff_lock_stats (later : Util.Eprof.lock_stats list) (earlier : Util.Eprof.lock_stats list) =
  List.map
    (fun (l : Util.Eprof.lock_stats) ->
      match List.find_opt (fun (e : Util.Eprof.lock_stats) -> e.lock = l.lock) earlier with
      | None -> l
      | Some e ->
        {
          l with
          acquisitions = l.acquisitions - e.acquisitions;
          contended = l.contended - e.contended;
          wait_ns = l.wait_ns - e.wait_ns;
        })
    later

let diff_memo_stats (later : Util.Eprof.memo_stats list) (earlier : Util.Eprof.memo_stats list) =
  List.map
    (fun (m : Util.Eprof.memo_stats) ->
      match List.find_opt (fun (e : Util.Eprof.memo_stats) -> e.table = m.table) earlier with
      | None -> m
      | Some e ->
        {
          m with
          lookups = m.lookups - e.lookups;
          hits = m.hits - e.hits;
          misses = m.misses - e.misses;
          waits = m.waits - e.waits;
          wait_ns = m.wait_ns - e.wait_ns;
        })
    later

let profile ?(label = "run") ?(gcprof = true) ~jobs f =
  let locks0 = Util.Eprof.lock_stats () in
  let memos0 = Util.Eprof.memo_stats () in
  (* Eprof first: Gcprof timestamps resolve against its epoch. *)
  Util.Eprof.start ();
  if gcprof then Gcprof.start ();
  match f () with
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    if gcprof then ignore (Gcprof.stop () : Gcprof.capture);
    Util.Eprof.stop ();
    Printexc.raise_with_backtrace e bt
  | v ->
    let wall_ns = Util.Eprof.now_rel_ns () in
    let gc = if gcprof then Some (Gcprof.stop ()) else None in
    Util.Eprof.stop ();
    let epoch_ns = Util.Eprof.epoch_ns () in
    let locks = diff_lock_stats (Util.Eprof.lock_stats ()) locks0 in
    let memos = diff_memo_stats (Util.Eprof.memo_stats ()) memos0 in
    let events = Util.Eprof.events () in
    (v, analyze ~label ~jobs ~epoch_ns ~wall_ns ~locks ~memos ?gc events)

(* ---- invariants -------------------------------------------------- *)

let check r =
  let bad = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  List.iter
    (fun (reg : region) ->
      let where = Printf.sprintf "region %d (%s, jobs=%d)" reg.id reg.label reg.req_jobs in
      List.iter
        (fun (name, v) -> if v < 0 then fail "%s: category %S is negative (%d ns)" where name v)
        (cat_list reg.cats);
      let budget = reg.wall_ns * reg.domains in
      let total = cat_total reg.cats in
      if total <> budget then
        fail "%s: categories sum to %d ns, budget wall*domains = %d ns" where total budget;
      (* gc is a sub-split of useful, so compute = useful - gc must be
         exact and non-negative: 0 <= gc <= useful. *)
      if reg.cats.gc_ns < 0 then fail "%s: gc is negative (%d ns)" where reg.cats.gc_ns;
      if reg.cats.gc_ns > reg.cats.useful_ns then
        fail "%s: gc %d ns exceeds useful %d ns" where reg.cats.gc_ns reg.cats.useful_ns;
      if reg.domains < 1 then fail "%s: no worker domains recorded" where;
      if reg.req_jobs >= 1 && reg.domains > reg.req_jobs then
        fail "%s: %d domains exceed requested jobs" where reg.domains)
    r.regions;
  (match r.gc with
  | None -> ()
  | Some g ->
    if g.Gcprof.c_lost_events < 0 then fail "gc: negative lost_events";
    if g.Gcprof.c_unmatched < 0 then fail "gc: negative unmatched";
    List.iter
      (fun (p : Gcprof.pause) ->
        if p.gp_dur_ns < 0 then
          fail "gc pause (ring %d, %s): negative duration %d ns" p.gp_ring
            (Gcprof.kind_name p.gp_kind) p.gp_dur_ns)
      g.Gcprof.c_pauses;
    List.iter
      (fun (m : Gcprof.region_mem) ->
        if m.gm_minor_collections < 0 || m.gm_major_collections < 0 then
          fail "gc region %d: negative collection count" m.gm_region)
      g.Gcprof.c_region_mem);
  List.iter
    (fun (m : Util.Eprof.memo_stats) ->
      if m.lookups <> m.hits + m.misses + m.waits then
        fail "memo %s: lookups %d <> hits %d + misses %d + waits %d" m.table m.lookups m.hits
          m.misses m.waits;
      if m.wait_ns < 0 then fail "memo %s: negative wait_ns" m.table)
    r.memos;
  List.iter
    (fun (l : Util.Eprof.lock_stats) ->
      if l.contended > l.acquisitions then
        fail "lock %s: contended %d > acquisitions %d" l.lock l.contended l.acquisitions;
      if l.wait_ns < 0 then fail "lock %s: negative wait_ns" l.lock)
    r.locks;
  List.rev !bad

let region_seconds r =
  List.fold_left (fun acc (reg : region) -> acc +. (float_of_int reg.wall_ns /. 1e9)) 0.0 r.regions

let agg_categories r = List.fold_left (fun acc (reg : region) -> cat_add acc reg.cats) cat_zero r.regions

(* ---- rendering --------------------------------------------------- *)

let ms ns = float_of_int ns /. 1e6

let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let speedup_table reports =
  let t =
    Util.Table.create ~title:"Engine speedup"
      ~columns:[ "Jobs"; "Wall ms"; "Speedup"; "Efficiency"; "Region ms"; "Serial ms"; "Regions"; "Tasks" ]
  in
  let base = match reports with [] -> None | r :: _ -> Some r in
  List.iter
    (fun r ->
      let wall_ms = ms r.wall_ns in
      let speedup =
        match base with Some b when r.wall_ns > 0 -> float_of_int b.wall_ns /. float_of_int r.wall_ns | _ -> 1.0
      in
      let region_ms = region_seconds r *. 1e3 in
      Util.Table.add_row t
        [
          string_of_int r.jobs;
          Printf.sprintf "%.1f" wall_ms;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.0f%%" (100.0 *. speedup /. float_of_int (max 1 r.jobs));
          Printf.sprintf "%.1f" region_ms;
          Printf.sprintf "%.1f" (wall_ms -. region_ms);
          string_of_int (List.length r.regions);
          string_of_int (List.fold_left (fun acc (reg : region) -> acc + reg.tasks) 0 r.regions);
        ])
    reports;
  t

let budget_of r =
  List.fold_left (fun acc (reg : region) -> acc + (reg.wall_ns * reg.domains)) 0 r.regions

(* The GC sub-split is shown as a fraction of useful (not of budget):
   it answers "how much of what looked like work was the collector",
   and the seven budget columns still sum to 100%. *)
let gc_share_str (c : categories) =
  if c.gc_ns = 0 && c.useful_ns = 0 then "-"
  else Printf.sprintf "%.1f%%" (pct c.gc_ns c.useful_ns)

let breakdown_table reports =
  let t =
    Util.Table.create ~title:"Engine overhead breakdown (% of region budget = wall x domains)"
      ~columns:
        ([ "Jobs"; "Budget ms" ]
        @ List.map (fun c -> String.capitalize_ascii c) category_names
        @ [ "Gc/useful" ])
  in
  List.iter
    (fun r ->
      let budget = budget_of r in
      let agg = agg_categories r in
      Util.Table.add_row t
        ([ string_of_int r.jobs; Printf.sprintf "%.1f" (ms budget) ]
        @ List.map (fun (_, v) -> Printf.sprintf "%.1f%%" (pct v budget)) (cat_list agg)
        @ [ gc_share_str agg ]))
    reports;
  t

let region_table r =
  let t =
    Util.Table.create
      ~title:(Printf.sprintf "Parallel regions (jobs=%d)" r.jobs)
      ~columns:
        ([ "Region"; "Doms"; "Tasks"; "Wall ms" ]
        @ List.map (fun c -> String.capitalize_ascii c) category_names
        @ [ "Gc/useful" ])
  in
  List.iter
    (fun (reg : region) ->
      let budget = reg.wall_ns * reg.domains in
      Util.Table.add_row t
        ([
           Printf.sprintf "%s#%d" reg.label reg.id;
           string_of_int reg.domains;
           string_of_int reg.tasks;
           Printf.sprintf "%.2f" (ms reg.wall_ns);
         ]
        @ List.map (fun (_, v) -> Printf.sprintf "%.1f%%" (pct v budget)) (cat_list reg.cats)
        @ [ gc_share_str reg.cats ]))
    r.regions;
  t

let lock_table r =
  let t =
    Util.Table.create
      ~title:(Printf.sprintf "Profiled locks (jobs=%d)" r.jobs)
      ~columns:[ "Lock"; "Acquisitions"; "Contended"; "Contention"; "Wait ms" ]
  in
  List.iter
    (fun (l : Util.Eprof.lock_stats) ->
      Util.Table.add_row t
        [
          l.lock;
          string_of_int l.acquisitions;
          string_of_int l.contended;
          Printf.sprintf "%.2f%%" (pct l.contended l.acquisitions);
          Printf.sprintf "%.3f" (ms l.wait_ns);
        ])
    r.locks;
  t

let memo_rows t (ms_list : Util.Eprof.memo_stats list) =
  List.iter
    (fun (m : Util.Eprof.memo_stats) ->
      Util.Table.add_row t
        [
          m.table;
          string_of_int m.lookups;
          string_of_int m.hits;
          string_of_int m.misses;
          string_of_int m.waits;
          Printf.sprintf "%.1f%%" (pct m.hits m.lookups);
          Printf.sprintf "%.3f" (ms m.wait_ns);
        ])
    ms_list

let memo_columns = [ "Table"; "Lookups"; "Hits"; "Misses"; "Waits"; "Hit rate"; "Wait ms" ]

let memo_table r =
  let t =
    Util.Table.create ~title:(Printf.sprintf "Memo tables (jobs=%d)" r.jobs) ~columns:memo_columns
  in
  memo_rows t r.memos;
  t

let memo_stats_table stats =
  let t = Util.Table.create ~title:"Memo tables (cumulative)" ~columns:memo_columns in
  memo_rows t stats;
  t

(* ---- GC rendering ------------------------------------------------ *)

let gc_share r =
  let agg = agg_categories r in
  if agg.useful_ns = 0 then 0.0 else float_of_int agg.gc_ns /. float_of_int agg.useful_ns

let count_kind k (g : Gcprof.capture) =
  List.length (List.filter (fun (p : Gcprof.pause) -> p.Gcprof.gp_kind = k) g.c_pauses)

(* A private registry: the default registry's snapshot is embedded in
   run manifests, whose bytes must not depend on whether profiling ran. *)
let gc_pause_summary r =
  match r.gc with
  | None -> None
  | Some g ->
    let reg = Metrics.create_registry () in
    let h = Metrics.histogram ~registry:reg "gc.pause_us" in
    List.iter
      (fun (p : Gcprof.pause) ->
        if Gcprof.counts_as_gc p.gp_kind then
          Metrics.observe h (float_of_int p.gp_dur_ns /. 1e3))
      g.c_pauses;
    let snap = Metrics.snapshot ~registry:reg () in
    List.assoc_opt "gc.pause_us" snap.Metrics.histograms

type mem_totals = {
  mt_minor_words : float;
  mt_promoted_words : float;
  mt_major_words : float;
  mt_minor_collections : int;
  mt_major_collections : int;
}

let gc_mem_totals (g : Gcprof.capture) =
  List.fold_left
    (fun acc (m : Gcprof.region_mem) ->
      {
        mt_minor_words = acc.mt_minor_words +. m.gm_minor_words;
        mt_promoted_words = acc.mt_promoted_words +. m.gm_promoted_words;
        mt_major_words = acc.mt_major_words +. m.gm_major_words;
        mt_minor_collections = acc.mt_minor_collections + m.gm_minor_collections;
        mt_major_collections = acc.mt_major_collections + m.gm_major_collections;
      })
    {
      mt_minor_words = 0.0;
      mt_promoted_words = 0.0;
      mt_major_words = 0.0;
      mt_minor_collections = 0;
      mt_major_collections = 0;
    }
    g.c_region_mem

let mwords w = Printf.sprintf "%.2f" (w /. 1e6)

let gc_summary_table reports =
  let t =
    Util.Table.create ~title:"GC pauses (share of useful task time)"
      ~columns:
        [
          "Jobs"; "Useful ms"; "GC ms"; "GC share"; "Minor"; "Major"; "Barrier"; "p50 us";
          "p99 us"; "Lost"; "Unmatched";
        ]
  in
  List.iter
    (fun r ->
      match r.gc with
      | None -> ()
      | Some g ->
        let agg = agg_categories r in
        let hs = gc_pause_summary r in
        let p f = match hs with Some h -> Printf.sprintf "%.1f" (f h) | None -> "-" in
        Util.Table.add_row t
          [
            string_of_int r.jobs;
            Printf.sprintf "%.1f" (ms agg.useful_ns);
            Printf.sprintf "%.2f" (ms agg.gc_ns);
            Printf.sprintf "%.1f%%" (pct agg.gc_ns agg.useful_ns);
            string_of_int (count_kind Gcprof.Minor g);
            string_of_int (count_kind Gcprof.Major g);
            string_of_int (count_kind Gcprof.Barrier g);
            p (fun h -> h.Metrics.p50);
            p (fun h -> h.Metrics.p99);
            string_of_int g.c_lost_events;
            string_of_int g.c_unmatched;
          ])
    reports;
  t

let gc_mem_table reports =
  let t =
    Util.Table.create ~title:"GC memory (Gc.quick_stat deltas over profiled regions)"
      ~columns:
        [
          "Jobs"; "Minor Mw"; "Promoted Mw"; "Major Mw"; "Minor GCs"; "Major GCs"; "Alloc Mw/s";
        ]
  in
  List.iter
    (fun r ->
      match r.gc with
      | None -> ()
      | Some g ->
        let mt = gc_mem_totals g in
        let agg = agg_categories r in
        let useful_s = float_of_int agg.useful_ns /. 1e9 in
        let rate = if useful_s > 0.0 then mt.mt_minor_words /. 1e6 /. useful_s else 0.0 in
        Util.Table.add_row t
          [
            string_of_int r.jobs;
            mwords mt.mt_minor_words;
            mwords mt.mt_promoted_words;
            mwords mt.mt_major_words;
            string_of_int mt.mt_minor_collections;
            string_of_int mt.mt_major_collections;
            Printf.sprintf "%.1f" rate;
          ])
    reports;
  t

let gc_region_table r =
  let t =
    Util.Table.create
      ~title:(Printf.sprintf "Per-region GC (jobs=%d)" r.jobs)
      ~columns:
        [ "Region"; "Doms"; "Useful ms"; "GC ms"; "GC share"; "Minor Mw"; "Promoted Mw"; "Minor GCs" ]
  in
  let mem_of id =
    match r.gc with
    | None -> None
    | Some g -> List.find_opt (fun (m : Gcprof.region_mem) -> m.gm_region = id) g.c_region_mem
  in
  List.iter
    (fun (reg : region) ->
      let m f d = match mem_of reg.id with Some m -> f m | None -> d in
      Util.Table.add_row t
        [
          Printf.sprintf "%s#%d" reg.label reg.id;
          string_of_int reg.domains;
          Printf.sprintf "%.2f" (ms reg.cats.useful_ns);
          Printf.sprintf "%.3f" (ms reg.cats.gc_ns);
          gc_share_str reg.cats;
          m (fun x -> mwords x.gm_minor_words) "-";
          m (fun x -> mwords x.gm_promoted_words) "-";
          m (fun x -> string_of_int x.gm_minor_collections) "-";
        ])
    r.regions;
  t

(* ---- interchange ------------------------------------------------- *)

let json_of_cats c =
  [
    ("useful_ns", Json.int c.useful_ns);
    ("spawn_ns", Json.int c.spawn_ns);
    ("teardown_ns", Json.int c.teardown_ns);
    ("lock_wait_ns", Json.int c.lock_wait_ns);
    ("memo_wait_ns", Json.int c.memo_wait_ns);
    ("dispatch_ns", Json.int c.dispatch_ns);
    ("idle_ns", Json.int c.idle_ns);
    ("gc_ns", Json.int c.gc_ns);
  ]

let json_of_capture (g : Gcprof.capture) =
  Json.Obj
    [
      ( "pauses",
        Json.Arr
          (List.map
             (fun (p : Gcprof.pause) ->
               Json.Obj
                 [
                   ("ring", Json.int p.gp_ring);
                   ("dom", Json.int p.gp_dom);
                   ("kind", Json.Str (Gcprof.kind_name p.gp_kind));
                   ("start_ns", Json.int p.gp_start_ns);
                   ("dur_ns", Json.int p.gp_dur_ns);
                 ])
             g.c_pauses) );
      ( "region_mem",
        Json.Arr
          (List.map
             (fun (m : Gcprof.region_mem) ->
               Json.Obj
                 [
                   ("region", Json.int m.gm_region);
                   ("minor_words", Json.Num m.gm_minor_words);
                   ("promoted_words", Json.Num m.gm_promoted_words);
                   ("major_words", Json.Num m.gm_major_words);
                   ("minor_collections", Json.int m.gm_minor_collections);
                   ("major_collections", Json.int m.gm_major_collections);
                 ])
             g.c_region_mem) );
      ("lost_events", Json.int g.c_lost_events);
      ("unmatched", Json.int g.c_unmatched);
    ]

let to_json r =
  Json.Obj
    ([
      ("label", Json.Str r.label);
      ("jobs", Json.int r.jobs);
      (* As a string: monotonic nanosecond epochs can exceed exact
         double range, and the JSON layer stores numbers as floats. *)
      ("epoch_ns", Json.Str (Int64.to_string r.epoch_ns));
      ("wall_ns", Json.int r.wall_ns);
      ( "regions",
        Json.Arr
          (List.map
             (fun (reg : region) ->
               Json.Obj
                 ([
                    ("id", Json.int reg.id);
                    ("label", Json.Str reg.label);
                    ("req_jobs", Json.int reg.req_jobs);
                    ("domains", Json.int reg.domains);
                    ("tasks", Json.int reg.tasks);
                    ("caller", Json.int reg.caller);
                    ("start_ns", Json.int reg.start_ns);
                    ("wall_ns", Json.int reg.wall_ns);
                  ]
                 @ json_of_cats reg.cats))
             r.regions) );
      ( "locks",
        Json.Arr
          (List.map
             (fun (l : Util.Eprof.lock_stats) ->
               Json.Obj
                 [
                   ("lock", Json.Str l.lock);
                   ("acquisitions", Json.int l.acquisitions);
                   ("contended", Json.int l.contended);
                   ("wait_ns", Json.int l.wait_ns);
                 ])
             r.locks) );
      ( "memos",
        Json.Arr
          (List.map
             (fun (m : Util.Eprof.memo_stats) ->
               Json.Obj
                 [
                   ("table", Json.Str m.table);
                   ("lookups", Json.int m.lookups);
                   ("hits", Json.int m.hits);
                   ("misses", Json.int m.misses);
                   ("waits", Json.int m.waits);
                   ("wait_ns", Json.int m.wait_ns);
                 ])
             r.memos) );
      ( "slices",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.s_name);
                   ("cat", Json.Str s.s_cat);
                   ("dom", Json.int s.s_dom);
                   ("start_ns", Json.int s.s_start_ns);
                   ("dur_ns", Json.int s.s_dur_ns);
                 ])
             r.slices) );
    ]
    @ match r.gc with None -> [] | Some g -> [ ("gc", json_of_capture g) ])

let of_json j =
  let ( let* ) = Result.bind in
  let err what = Error (Printf.sprintf "engine report: bad or missing %s" what) in
  let int_field v name = match Option.bind (Json.member name v) Json.to_int with Some i -> Ok i | None -> err name in
  let str_field v name = match Option.bind (Json.member name v) Json.to_str with Some s -> Ok s | None -> err name in
  let arr_field v name = match Json.member name v with Some (Json.Arr xs) -> Ok xs | _ -> err name in
  let all conv xs =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* v = conv x in
        Ok (v :: acc))
      (Ok []) xs
    |> Result.map List.rev
  in
  let* label = str_field j "label" in
  let* jobs = int_field j "jobs" in
  let* epoch_s = str_field j "epoch_ns" in
  let* epoch_ns =
    match Int64.of_string_opt epoch_s with Some e -> Ok e | None -> err "epoch_ns"
  in
  let* wall_ns = int_field j "wall_ns" in
  let cats_of v =
    let* useful_ns = int_field v "useful_ns" in
    let* spawn_ns = int_field v "spawn_ns" in
    let* teardown_ns = int_field v "teardown_ns" in
    let* lock_wait_ns = int_field v "lock_wait_ns" in
    let* memo_wait_ns = int_field v "memo_wait_ns" in
    let* dispatch_ns = int_field v "dispatch_ns" in
    let* idle_ns = int_field v "idle_ns" in
    (* Absent in pre-GC reports; the split defaults to all-compute. *)
    let gc_ns = Option.value ~default:0 (Option.bind (Json.member "gc_ns" v) Json.to_int) in
    Ok { useful_ns; spawn_ns; teardown_ns; lock_wait_ns; memo_wait_ns; dispatch_ns; idle_ns; gc_ns }
  in
  let* regions =
    let* xs = arr_field j "regions" in
    all
      (fun v ->
        let* id = int_field v "id" in
        let* label = str_field v "label" in
        let* req_jobs = int_field v "req_jobs" in
        let* domains = int_field v "domains" in
        let* tasks = int_field v "tasks" in
        let* caller = int_field v "caller" in
        let* start_ns = int_field v "start_ns" in
        let* wall_ns = int_field v "wall_ns" in
        let* cats = cats_of v in
        Ok { id; label; req_jobs; domains; tasks; caller; start_ns; wall_ns; cats })
      xs
  in
  let* locks =
    let* xs = arr_field j "locks" in
    all
      (fun v ->
        let* lock = str_field v "lock" in
        let* acquisitions = int_field v "acquisitions" in
        let* contended = int_field v "contended" in
        let* wait_ns = int_field v "wait_ns" in
        Ok { Util.Eprof.lock; acquisitions; contended; wait_ns })
      xs
  in
  let* memos =
    let* xs = arr_field j "memos" in
    all
      (fun v ->
        let* table = str_field v "table" in
        let* lookups = int_field v "lookups" in
        let* hits = int_field v "hits" in
        let* misses = int_field v "misses" in
        let* waits = int_field v "waits" in
        let* wait_ns = int_field v "wait_ns" in
        Ok { Util.Eprof.table; lookups; hits; misses; waits; wait_ns })
      xs
  in
  let* slices =
    let* xs = arr_field j "slices" in
    all
      (fun v ->
        let* s_name = str_field v "name" in
        let* s_cat = str_field v "cat" in
        let* s_dom = int_field v "dom" in
        let* s_start_ns = int_field v "start_ns" in
        let* s_dur_ns = int_field v "dur_ns" in
        Ok { s_name; s_cat; s_dom; s_start_ns; s_dur_ns })
      xs
  in
  let num_field v name =
    match Option.bind (Json.member name v) Json.to_num with Some n -> Ok n | None -> err name
  in
  let* gc =
    match Json.member "gc" j with
    | None -> Ok None
    | Some g ->
      let* pauses =
        let* xs = arr_field g "pauses" in
        all
          (fun v ->
            let* gp_ring = int_field v "ring" in
            let* gp_dom = int_field v "dom" in
            let* kind_s = str_field v "kind" in
            let* gp_kind =
              match Gcprof.kind_of_name kind_s with Some k -> Ok k | None -> err "kind"
            in
            let* gp_start_ns = int_field v "start_ns" in
            let* gp_dur_ns = int_field v "dur_ns" in
            Ok { Gcprof.gp_ring; gp_dom; gp_kind; gp_start_ns; gp_dur_ns })
          xs
      in
      let* region_mem =
        let* xs = arr_field g "region_mem" in
        all
          (fun v ->
            let* gm_region = int_field v "region" in
            let* gm_minor_words = num_field v "minor_words" in
            let* gm_promoted_words = num_field v "promoted_words" in
            let* gm_major_words = num_field v "major_words" in
            let* gm_minor_collections = int_field v "minor_collections" in
            let* gm_major_collections = int_field v "major_collections" in
            Ok
              {
                Gcprof.gm_region;
                gm_minor_words;
                gm_promoted_words;
                gm_major_words;
                gm_minor_collections;
                gm_major_collections;
              })
          xs
      in
      let* c_lost_events = int_field g "lost_events" in
      let* c_unmatched = int_field g "unmatched" in
      Ok
        (Some
           { Gcprof.c_pauses = pauses; c_region_mem = region_mem; c_lost_events; c_unmatched })
  in
  Ok { label; jobs; epoch_ns; wall_ns; regions; locks; memos; slices; gc }

(* ---- trace export ------------------------------------------------ *)

let trace_pid = Trace_export.engine_pid

let trace_events ~base_ns r =
  let rel ns = Clock.ns_to_us (Int64.sub (Int64.add r.epoch_ns (Int64.of_int ns)) base_ns) in
  let domains =
    List.sort_uniq compare
      (List.map (fun s -> s.s_dom) r.slices
      @ List.map (fun (reg : region) -> reg.caller) r.regions)
  in
  let process_metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.int trace_pid);
        ("tid", Json.int 0);
        ("args", Json.Obj [ ("name", Json.Str "rfh engine (wall clock)") ]);
      ]
  in
  let thread_metadata =
    List.map
      (fun did ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int trace_pid);
            ("tid", Json.int did);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if did = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" did) );
                ] );
          ])
      domains
  in
  let region_events =
    List.map
      (fun (reg : region) ->
        Json.Obj
          [
            ("name", Json.Str (Printf.sprintf "region:%s jobs=%d" reg.label reg.req_jobs));
            ("cat", Json.Str "engine");
            ("ph", Json.Str "X");
            ("ts", Json.Num (rel reg.start_ns));
            ("dur", Json.Num (Clock.ns_to_us (Int64.of_int reg.wall_ns)));
            ("pid", Json.int trace_pid);
            ("tid", Json.int reg.caller);
            ( "args",
              Json.Obj [ ("domains", Json.int reg.domains); ("tasks", Json.int reg.tasks) ] );
          ])
      r.regions
  in
  let slice_events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.s_name);
            ("cat", Json.Str ("engine." ^ s.s_cat));
            ("ph", Json.Str "X");
            ("ts", Json.Num (rel s.s_start_ns));
            ("dur", Json.Num (Clock.ns_to_us (Int64.of_int s.s_dur_ns)));
            ("pid", Json.int trace_pid);
            ("tid", Json.int s.s_dom);
          ])
      r.slices
  in
  (process_metadata :: thread_metadata) @ region_events @ slice_events

(* An unresolved pause (ring never handshook) still renders, on a
   sentinel row, so nothing silently disappears from the trace. *)
let gc_unresolved_tid = 9999

let gc_trace_events ~base_ns r =
  match r.gc with
  | None -> []
  | Some g ->
    let pid = Trace_export.gc_pid in
    let rel ns = Clock.ns_to_us (Int64.sub (Int64.add r.epoch_ns (Int64.of_int ns)) base_ns) in
    let tid_of dom = if dom >= 0 then dom else gc_unresolved_tid in
    let tids =
      List.sort_uniq compare (List.map (fun (p : Gcprof.pause) -> tid_of p.gp_dom) g.c_pauses)
    in
    let process_metadata =
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.int pid);
          ("tid", Json.int 0);
          ("args", Json.Obj [ ("name", Json.Str "rfh gc (wall clock)") ]);
        ]
    in
    let thread_metadata =
      List.map
        (fun tid ->
          Json.Obj
            [
              ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.int pid);
              ("tid", Json.int tid);
              ( "args",
                Json.Obj
                  [
                    ( "name",
                      Json.Str
                        (if tid = gc_unresolved_tid then "unresolved"
                         else if tid = 0 then "domain 0 (main)"
                         else Printf.sprintf "domain %d" tid) );
                  ] );
            ])
        tids
    in
    let pause_events =
      List.map
        (fun (p : Gcprof.pause) ->
          Json.Obj
            [
              ("name", Json.Str ("gc:" ^ Gcprof.kind_name p.gp_kind));
              ("cat", Json.Str ("gc." ^ Gcprof.kind_name p.gp_kind));
              ("ph", Json.Str "X");
              ("ts", Json.Num (rel p.gp_start_ns));
              ("dur", Json.Num (Clock.ns_to_us (Int64.of_int p.gp_dur_ns)));
              ("pid", Json.int pid);
              ("tid", Json.int (tid_of p.gp_dom));
              ("args", Json.Obj [ ("ring", Json.int p.gp_ring) ]);
            ])
        g.c_pauses
    in
    (process_metadata :: thread_metadata) @ pause_events
