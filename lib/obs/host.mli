(** Host fingerprint: where a run happened.

    Cross-run telemetry ({!History}) and the manifest's non-gated
    [meta] section need to distinguish "the code changed" from "the
    machine changed": a timing shift on a different core count or OCaml
    version is a host effect, not a regression.  The fingerprint is
    collected once per process and cached — it never changes mid-run.

    None of these fields participate in the regression gate
    ({!Regress} ignores the manifest [meta] section wholesale), so a
    baseline recorded on one machine still checks cleanly on another;
    only {!Trend} reads them, to annotate change-points with the
    revision (and host) they landed on. *)

type t = {
  cores : int;  (** [Domain.recommended_domain_count ()] *)
  os : string;  (** [Sys.os_type], e.g. ["Unix"] *)
  ocaml : string;  (** [Sys.ocaml_version] *)
  git_rev : string;  (** HEAD commit hex, or ["unknown"] outside a checkout *)
  git_dirty : bool;  (** tracked files modified vs HEAD (false if undeterminable) *)
}

val fingerprint : unit -> t
(** The current host's fingerprint (cached after the first call). *)

val utc_now : unit -> string
(** Current UTC wall-clock time as ["YYYY-MM-DDTHH:MM:SSZ"]. *)

val to_json : t -> Json.t
(** Fixed field order (byte-stable, like every obs codec). *)

val of_json : Json.t -> (t, string) result
