(* Self-contained HTML rendering of a run manifest: inline CSS, no
   scripts, no external assets — the file must open from disk offline
   and attach to CI runs as a single artifact. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|body { font: 14px/1.45 system-ui, sans-serif; color: #1c2330; margin: 2em auto; max-width: 72em; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1c2330; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #c8cdd6; padding: .25em .6em; text-align: right; }
th { background: #eef1f5; }
td.l, th.l { text-align: left; }
.headline { font-size: 1.05em; background: #eef6ee; border: 1px solid #b8d4b8; padding: .6em .9em; display: inline-block; }
.delta-up { color: #a02020; } .delta-down { color: #207020; }
.bar { display: flex; height: 1.15em; background: #f2f3f6; border: 1px solid #c8cdd6; }
.bar > span { display: block; height: 100%; }
.seg-mrf { background: #5470c6; } .seg-orf { background: #91cc75; }
.seg-rfc { background: #fac858; } .seg-lrf { background: #ee6666; }
.st-issued { background: #91cc75; } .st-wait_long_latency { background: #5470c6; }
.st-wait_short_latency { background: #73c0de; } .st-bank_conflict_serialization { background: #ee6666; }
.st-descheduled_pending { background: #fac858; } .st-no_issue_slot { background: #9a60b4; }
.st-finished { background: #d4d9e1; }
.bench-bar { margin: .25em 0; display: flex; align-items: center; gap: .6em; }
.bench-bar .label { width: 11em; text-align: right; font-variant-numeric: tabular-nums; }
.bench-bar .track { flex: 1; }
.legend span { display: inline-block; margin-right: 1.2em; }
.swatch { display: inline-block; width: .85em; height: .85em; vertical-align: -.1em; margin-right: .35em; border: 1px solid #99a; }
.eg-useful { background: #91cc75; } .eg-spawn { background: #fac858; }
.eg-teardown { background: #f0924e; } .eg-lock-wait { background: #ee6666; }
.eg-memo-wait { background: #9a60b4; } .eg-dispatch { background: #73c0de; }
.eg-idle { background: #d4d9e1; }
.eg-compute { background: #91cc75; } .eg-gc { background: #c4543f; }
.muted { color: #5b6472; }
code { background: #f2f3f6; padding: 0 .25em; }
h3 { font-size: 1.05em; margin-top: 1.5em; } h4 { font-size: .95em; }
.heatmap { border: 1px solid #c8cdd6; padding: .3em .5em; font-variant-numeric: tabular-nums; }
.hm-row { display: flex; gap: .8em; padding: 0 .3em; }
.hm-pc { width: 3em; text-align: right; color: #5b6472; }
.hm-strand { width: 2.5em; color: #5b6472; }
.hm-row code { background: transparent; flex: 1; }
.hm-pj { color: #5b6472; white-space: nowrap; }
.v-stable { color: #207020; } .v-improved { color: #20609a; font-weight: 600; }
.v-regressed { color: #a02020; font-weight: 600; } .v-noisy { color: #9a7020; }
td.spark { padding: .1em .3em; } td.spark svg { display: block; }
.gate-fail { background: #fbeeee; border: 1px solid #d4a0a0; padding: .6em .9em; }
.gate-ok { background: #eef6ee; border: 1px solid #b8d4b8; padding: .6em .9em; }
.why-bar { display: flex; align-items: center; gap: .6em; margin: .2em 0; }
.why-bar .label { width: 17em; text-align: right; font-variant-numeric: tabular-nums; }
.why-bar .track { flex: 1; position: relative; height: 1em; background: #f2f3f6; border: 1px solid #c8cdd6; }
.why-bar .mid { position: absolute; left: 50%; top: 0; bottom: 0; width: 1px; background: #99a; }
.why-bar .seg { position: absolute; top: 0; bottom: 0; }
.why-worse { background: #ee6666; } .why-better { background: #91cc75; }
.why-bar .pct { width: 6em; font-variant-numeric: tabular-nums; }|}

let pf = Printf.bprintf
let num = Printf.sprintf "%.4g"
let seg_class level = "seg-" ^ String.lowercase_ascii level

let levels_of (b : Manifest.bench) = List.map fst b.energy_pj

(* ------------------------------------------------------------------ *)
(* Sections.                                                           *)

let options_section buf (o : Manifest.options) =
  pf buf "<h2>Run options</h2><table>\n";
  pf buf "<tr><th class=l>warps</th><th class=l>seed</th><th class=l>jobs</th>";
  pf buf "<th class=l>ORF entries</th><th class=l>LRF</th><th class=l>params fp</th></tr>\n";
  pf buf "<tr><td>%d</td><td>0x%x</td><td>%d</td><td>%d</td><td class=l>%s</td><td class=l><code>%s</code></td></tr>\n"
    o.warps o.seed o.jobs o.orf_entries (escape o.lrf) (escape o.params_fp);
  pf buf "</table>\n<p class=muted>benchmarks: %s</p>\n"
    (escape (String.concat ", " o.benchmarks))

let headline buf (m : Manifest.t) (compare : Manifest.t option) =
  let mean = Manifest.mean_norm_energy m in
  pf buf "<p class=headline>mean normalized RF energy: <strong>%s</strong>" (num mean);
  (match compare with
  | None -> ()
  | Some base ->
    let bmean = Manifest.mean_norm_energy base in
    let delta = mean -. bmean in
    let cls = if delta > 0.0 then "delta-up" else "delta-down" in
    pf buf " &nbsp;(baseline %s, <span class=%s>%+0.4g</span>)" (num bmean) cls delta);
  pf buf "</p>\n"

let energy_bars buf (m : Manifest.t) =
  pf buf "<h2>Energy breakdown per benchmark</h2>\n";
  (match m.benches with
  | [] -> pf buf "<p class=muted>no benchmarks</p>\n"
  | b0 :: _ ->
    pf buf "<p class=legend>";
    List.iter
      (fun level ->
        pf buf "<span><span class=\"swatch %s\"></span>%s</span>" (seg_class level)
          (escape (String.uppercase_ascii level)))
      (levels_of b0);
    pf buf "</p>\n";
    let widest =
      List.fold_left (fun acc b -> Float.max acc b.Manifest.norm_energy) 0.0 m.benches
      |> Float.max 1e-9
    in
    List.iter
      (fun (b : Manifest.bench) ->
        (* Bar width is norm_energy relative to the worst benchmark;
           segments split it by each level's share of total pJ. *)
        let bar_pct = 100.0 *. b.norm_energy /. widest in
        let total = Float.max b.total_pj 1e-9 in
        pf buf "<div class=bench-bar><span class=label>%s &nbsp;%s</span>"
          (escape b.bench) (num b.norm_energy);
        pf buf "<span class=track><span class=bar style=\"width:%.2f%%\">" bar_pct;
        List.iter
          (fun (level, (access, wire)) ->
            let pct = 100.0 *. (access +. wire) /. total in
            if pct > 0.01 then
              pf buf "<span class=\"%s\" style=\"width:%.2f%%\" title=\"%s: %s pJ\"></span>"
                (seg_class level) pct
                (escape (String.uppercase_ascii level))
                (num (access +. wire)))
          b.energy_pj;
        pf buf "</span></span></div>\n")
      m.benches)

let bench_table buf (m : Manifest.t) (compare : Manifest.t option) =
  pf buf "<h2>Benchmark results</h2><table>\n";
  pf buf "<tr><th class=l>benchmark</th><th>strands</th><th>dyn. instrs</th><th>IPC</th>";
  pf buf "<th>desched</th><th>capped</th><th>total pJ</th><th>baseline pJ</th><th>norm. energy</th>";
  if compare <> None then pf buf "<th>&Delta; norm.</th>";
  pf buf "</tr>\n";
  List.iter
    (fun (b : Manifest.bench) ->
      pf buf
        "<tr><td class=l>%s</td><td>%d</td><td>%d</td><td>%.3f</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td>"
        (escape b.bench) b.strands b.dynamic_instrs b.ipc b.desched_events b.capped_warps
        (num b.total_pj) (num b.baseline_pj) (num b.norm_energy);
      (match compare with
      | None -> ()
      | Some base -> (
        match List.find_opt (fun c -> c.Manifest.bench = b.bench) base.benches with
        | None -> pf buf "<td class=muted>new</td>"
        | Some c ->
          let d = b.norm_energy -. c.norm_energy in
          let cls = if d > 0.0 then "delta-up" else "delta-down" in
          pf buf "<td class=%s>%+0.4g</td>" cls d));
      pf buf "</tr>\n")
    m.benches;
  pf buf "</table>\n"

(* Stall attribution of the manifest's reference perf run: one stacked
   bar per benchmark splitting its cycles x warps budget by cause, plus
   the active-set residency table.  Rendered purely from manifest
   fields, so a decoded manifest reports identically to a fresh run. *)
let stall_section buf (m : Manifest.t) =
  pf buf "<h2>Warp stall attribution</h2>\n";
  let with_stalls = List.filter (fun (b : Manifest.bench) -> b.Manifest.stalls <> []) m.benches in
  if with_stalls = [] then pf buf "<p class=muted>no stall breakdown recorded</p>\n"
  else begin
    (match with_stalls with
    | [] -> ()
    | b0 :: _ ->
      pf buf "<p class=legend>";
      List.iter
        (fun (cause, _) ->
          pf buf "<span><span class=\"swatch st-%s\"></span>%s</span>" (escape cause)
            (escape cause))
        b0.Manifest.stalls;
      pf buf "</p>\n");
    List.iter
      (fun (b : Manifest.bench) ->
        let total =
          Float.max 1e-9 (float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 b.stalls))
        in
        pf buf "<div class=bench-bar><span class=label>%s</span>" (escape b.bench);
        pf buf "<span class=track><span class=bar>";
        List.iter
          (fun (cause, n) ->
            let pct = 100.0 *. float_of_int n /. total in
            if pct > 0.01 then
              pf buf "<span class=\"st-%s\" style=\"width:%.2f%%\" title=\"%s: %d warp-cycles\"></span>"
                (escape cause) pct (escape cause) n)
          b.stalls;
        pf buf "</span></span></div>\n")
      with_stalls;
    pf buf "<h3>Active-set residency</h3><table>\n";
    pf buf
      "<tr><th class=l>benchmark</th><th>entries</th><th>exits</th><th>resident cycles</th><th>mean residency</th><th>desched LL</th><th>desched strand</th><th>desched conflict</th></tr>\n";
    List.iter
      (fun (b : Manifest.bench) ->
        let s = b.Manifest.sched in
        let mean =
          if s.Manifest.entries = 0 then 0.0
          else float_of_int s.Manifest.resident_cycles /. float_of_int s.Manifest.entries
        in
        pf buf
          "<tr><td class=l>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.1f</td><td>%d</td><td>%d</td><td>%d</td></tr>\n"
          (escape b.bench) s.Manifest.entries s.Manifest.exits s.Manifest.resident_cycles mean
          s.Manifest.desched_long_latency s.Manifest.desched_strand_boundary
          s.Manifest.desched_bank_conflict)
      with_stalls;
    pf buf "</table>\n"
  end

let phase_table buf (m : Manifest.t) =
  pf buf "<h2>Phase times</h2><table>\n";
  pf buf "<tr><th class=l>phase</th><th>calls</th><th>total ms</th></tr>\n";
  List.iter
    (fun (p : Manifest.phase) ->
      pf buf "<tr><td class=l>%s</td><td>%d</td><td>%.3f</td></tr>\n" (escape p.phase)
        p.calls p.total_ms)
    m.phases;
  pf buf "</table>\n"

let metrics_section buf (m : Manifest.t) =
  let s = m.metrics in
  pf buf "<h2>Metrics</h2>\n";
  if s.Metrics.counters <> [] then begin
    pf buf "<table>\n<tr><th class=l>counter</th><th>value</th></tr>\n";
    List.iter
      (fun (name, v) -> pf buf "<tr><td class=l>%s</td><td>%d</td></tr>\n" (escape name) v)
      s.Metrics.counters;
    pf buf "</table>\n"
  end;
  if s.Metrics.gauges <> [] then begin
    pf buf "<table>\n<tr><th class=l>gauge</th><th>value</th></tr>\n";
    List.iter
      (fun (name, v) ->
        pf buf "<tr><td class=l>%s</td><td>%s</td></tr>\n" (escape name) (num v))
      s.Metrics.gauges;
    pf buf "</table>\n"
  end;
  if s.Metrics.histograms <> [] then begin
    pf buf
      "<table>\n<tr><th class=l>histogram</th><th>count</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n";
    List.iter
      (fun (name, (h : Metrics.hist_summary)) ->
        pf buf
          "<tr><td class=l>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
          (escape name) h.count (num h.mean) (num h.p50) (num h.p95) (num h.p99)
          (num h.max))
      s.Metrics.histograms;
    pf buf "</table>\n"
  end;
  if s.Metrics.counters = [] && s.Metrics.gauges = [] && s.Metrics.histograms = [] then
    pf buf "<p class=muted>no metrics recorded</p>\n"

let audit_section buf (m : Manifest.t) =
  pf buf "<h2>Allocator audit</h2>\n";
  pf buf "<p class=muted>%d allocation events recorded</p>\n" m.audit.alloc_events;
  if m.audit.top_allocs <> [] then begin
    pf buf
      "<table>\n<tr><th class=l>value</th><th class=l>level</th><th>accesses</th><th>saved pJ</th></tr>\n";
    List.iter
      (fun ev ->
        let str name = Option.value ~default:"-" (Option.bind (Json.member name ev) Json.to_str) in
        let intv name = Option.value ~default:0 (Option.bind (Json.member name ev) Json.to_int) in
        let numv name = Option.value ~default:0.0 (Option.bind (Json.member name ev) Json.to_num) in
        pf buf "<tr><td class=l>%s</td><td class=l>%s</td><td>%d</td><td>%s</td></tr>\n"
          (escape (str "value")) (escape (str "level")) (intv "accesses")
          (num (numv "saved_pj")))
      m.audit.top_allocs;
    pf buf "</table>\n"
  end

(* ------------------------------------------------------------------ *)
(* Explain section: per-kernel allocation decisions plus an energy
   heatmap over the instruction stream.  Heatmap intensity is inline
   rgba backgrounds — still no scripts or external assets. *)

let verdict_cell (c : Explain.candidate) =
  let label =
    match c.verdict with
    | Explain.Chosen -> "<strong>chosen</strong>"
    | Explain.Ineligible why -> Printf.sprintf "ineligible <span class=muted>(%s)</span>" (escape why)
    | Explain.Negative_savings -> "negative savings"
    | Explain.No_free_slot -> "no free slot"
  in
  Printf.sprintf "%s %s" (num c.savings) label

let explain_outcome (d : Explain.decision) =
  match d.outcome with
  | Explain.To_lrf { bank } -> Printf.sprintf "LRF[%d]" bank
  | Explain.To_orf { entry; shortened } ->
    if shortened > 0 then Printf.sprintf "ORF[%d] (shortened &times;%d)" entry shortened
    else Printf.sprintf "ORF[%d]" entry
  | Explain.To_mrf -> "MRF"

let explain_section buf (reports : Explain.kernel_report list) =
  pf buf "<h2>Allocation explainer</h2>\n";
  List.iter
    (fun (r : Explain.kernel_report) ->
      let placed = List.filter Explain.placed r.Explain.kr_decisions in
      pf buf "<h3>%s</h3>\n" (escape r.Explain.kr_kernel);
      pf buf
        "<p class=muted>%d decisions &middot; %d placed &middot; %s pJ attributed</p>\n"
        (List.length r.Explain.kr_decisions)
        (List.length placed) (num r.Explain.kr_total_pj);
      if r.Explain.kr_decisions <> [] then begin
        pf buf
          "<table>\n<tr><th>#</th><th class=l>value</th><th class=l>kind</th><th>strand</th><th>range</th><th>reads</th><th class=l>LRF</th><th class=l>ORF</th><th class=l>outcome</th></tr>\n";
        List.iter
          (fun (d : Explain.decision) ->
            let cand level =
              match
                List.find_opt (fun (c : Explain.candidate) -> c.Explain.level = level) d.Explain.candidates
              with
              | None -> "<span class=muted>&mdash;</span>"
              | Some c -> verdict_cell c
            in
            pf buf
              "<tr><td>%d</td><td class=l><code>%s</code></td><td class=l>%s</td><td>%d</td><td>[%d, %d)</td><td>%d%s</td><td class=l>%s</td><td class=l>%s</td><td class=l>%s%s</td></tr>\n"
              d.Explain.seq (escape d.Explain.reg) (escape d.Explain.kind) d.Explain.strand
              d.Explain.first d.Explain.last
              (List.length d.Explain.covered)
              (if d.Explain.dropped_reads > 0 then
                 Printf.sprintf " <span class=muted>(&minus;%d)</span>" d.Explain.dropped_reads
               else "")
              (cand "lrf") (cand "orf") (explain_outcome d)
              (if d.Explain.mrf_copy then " <span class=muted>+MRF copy</span>" else ""))
          r.Explain.kr_decisions;
        pf buf "</table>\n"
      end;
      if r.Explain.kr_instrs <> [] then begin
        pf buf "<h4>Energy heatmap</h4>\n";
        pf buf
          "<p class=muted>background intensity &prop; attributed register-file energy per instruction</p>\n";
        let peak =
          List.fold_left (fun acc (l : Explain.instr_line) -> Float.max acc l.Explain.pj) 0.0
            r.Explain.kr_instrs
          |> Float.max 1e-9
        in
        pf buf "<div class=heatmap>\n";
        List.iter
          (fun (l : Explain.instr_line) ->
            let alpha = l.Explain.pj /. peak in
            pf buf
              "<div class=hm-row style=\"background: rgba(238,102,102,%.3f)\"><span class=hm-pc>%d</span><span class=hm-strand>s%d</span><code>%s</code><span class=hm-pj>%s pJ (%.1f%%)</span></div>\n"
              alpha l.Explain.pc l.Explain.strand (escape l.Explain.text) (num l.Explain.pj)
              (100.0 *. l.Explain.share))
          r.Explain.kr_instrs;
        pf buf "</div>\n"
      end)
    reports

(* ------------------------------------------------------------------ *)
(* Engine profiling section: the wall × domains budget of every
   parallel region decomposed into the seven exact categories, one
   stacked bar per --jobs setting.                                     *)

let eg_class name =
  "eg-" ^ String.map (fun c -> if c = ' ' then '-' else c) name

let engine_ms ns = float_of_int ns /. 1e6

let engine_legend buf =
  pf buf "<p class=legend>";
  List.iter
    (fun name ->
      pf buf "<span><span class=\"swatch %s\"></span>%s</span>" (eg_class name) (escape name))
    Engine.category_names;
  pf buf "</p>\n"

let engine_bar buf label cats =
  let budget = Float.max 1e-9 (float_of_int (Engine.cat_total cats)) in
  pf buf "<div class=bench-bar><span class=label>%s</span>" (escape label);
  pf buf "<span class=track><span class=bar>";
  List.iter
    (fun (name, v) ->
      let pct = 100.0 *. float_of_int v /. budget in
      if pct > 0.01 then
        pf buf "<span class=\"%s\" style=\"width:%.2f%%\" title=\"%s: %.2f ms\"></span>"
          (eg_class name) pct (escape name) (engine_ms v))
    (Engine.cat_list cats);
  pf buf "</span></span></div>\n"

let engine_section buf (reports : Engine.report list) =
  pf buf "<h2>Engine profile</h2>\n";
  (match reports with
  | [] -> pf buf "<p class=muted>no engine profile recorded</p>\n"
  | base :: _ ->
    pf buf
      "<p class=muted>wall-clock decomposition of every parallel region's budget (wall &times; \
       domains) into categories that sum exactly; speedups are against the jobs=%d run</p>\n"
      base.Engine.jobs;
    pf buf "<table>\n";
    pf buf
      "<tr><th>jobs</th><th>wall ms</th><th>speedup</th><th>efficiency</th><th>region \
       ms</th><th>serial ms</th><th>regions</th><th>tasks</th></tr>\n";
    List.iter
      (fun (r : Engine.report) ->
        let wall_ms = engine_ms r.Engine.wall_ns in
        let speedup =
          if r.Engine.wall_ns > 0 then
            float_of_int base.Engine.wall_ns /. float_of_int r.Engine.wall_ns
          else 1.0
        in
        let region_ms = Engine.region_seconds r *. 1e3 in
        pf buf
          "<tr><td>%d</td><td>%.1f</td><td>%.2fx</td><td>%.0f%%</td><td>%.1f</td><td>%.1f</td><td>%d</td><td>%d</td></tr>\n"
          r.Engine.jobs wall_ms speedup
          (100.0 *. speedup /. float_of_int (max 1 r.Engine.jobs))
          region_ms (wall_ms -. region_ms)
          (List.length r.Engine.regions)
          (List.fold_left (fun acc (reg : Engine.region) -> acc + reg.Engine.tasks) 0
             r.Engine.regions))
      reports;
    pf buf "</table>\n";
    pf buf "<h3>Overhead breakdown</h3>\n";
    engine_legend buf;
    List.iter
      (fun (r : Engine.report) ->
        engine_bar buf
          (Printf.sprintf "jobs=%d" r.Engine.jobs)
          (Engine.agg_categories r))
      reports;
    List.iter
      (fun (r : Engine.report) ->
        if r.Engine.regions <> [] then begin
          pf buf "<h4>Regions at jobs=%d</h4>\n" r.Engine.jobs;
          List.iter
            (fun (reg : Engine.region) ->
              engine_bar buf
                (Printf.sprintf "%s#%d (%d dom, %d tasks, %.2f ms)" reg.Engine.label
                   reg.Engine.id reg.Engine.domains reg.Engine.tasks
                   (engine_ms reg.Engine.wall_ns))
                reg.Engine.cats)
            r.Engine.regions
        end)
      reports;
    (* Memo and lock behaviour of the widest run: that is where
       contention lives. *)
    (match List.rev reports with
    | [] -> ()
    | widest :: _ ->
      if widest.Engine.memos <> [] then begin
        pf buf "<h3>Memo tables at jobs=%d</h3><table>\n" widest.Engine.jobs;
        pf buf
          "<tr><th class=l>table</th><th>lookups</th><th>hits</th><th>misses</th><th>waits</th><th>hit rate</th><th>wait ms</th></tr>\n";
        List.iter
          (fun (m : Util.Eprof.memo_stats) ->
            let rate = if m.lookups = 0 then 0.0 else 100.0 *. float_of_int m.hits /. float_of_int m.lookups in
            pf buf
              "<tr><td class=l>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.1f%%</td><td>%.3f</td></tr>\n"
              (escape m.table) m.lookups m.hits m.misses m.waits rate (engine_ms m.wait_ns))
          widest.Engine.memos;
        pf buf "</table>\n"
      end;
      if widest.Engine.locks <> [] then begin
        pf buf "<h3>Profiled locks at jobs=%d</h3><table>\n" widest.Engine.jobs;
        pf buf
          "<tr><th class=l>lock</th><th>acquisitions</th><th>contended</th><th>wait ms</th></tr>\n";
        List.iter
          (fun (l : Util.Eprof.lock_stats) ->
            pf buf "<tr><td class=l>%s</td><td>%d</td><td>%d</td><td>%.3f</td></tr>\n"
              (escape l.lock) l.acquisitions l.contended (engine_ms l.wait_ns))
          widest.Engine.locks;
        pf buf "</table>\n"
      end))

(* GC section: the compute/gc sub-split of useful time from the
   Gcprof capture riding on each engine report.  Rendered separately
   from the seven-way budget bars: gc is a slice of useful, not an
   eighth category. *)
let gc_section buf (reports : Engine.report list) =
  let with_gc = List.filter (fun (r : Engine.report) -> r.Engine.gc <> None) reports in
  if with_gc <> [] then begin
    pf buf "<h2>GC profile</h2>\n";
    pf buf
      "<p class=muted>collector time inside task intervals (Runtime_events pauses), split out \
       of each region's useful budget: useful = compute + gc exactly</p>\n";
    pf buf "<table>\n";
    pf buf
      "<tr><th>jobs</th><th>useful ms</th><th>gc ms</th><th>gc share</th><th>minor</th><th>major</th><th>barrier</th><th>p50 &micro;s</th><th>p99 &micro;s</th><th>minor Mw</th><th>promoted Mw</th><th>alloc Mw/s</th><th>lost</th></tr>\n";
    List.iter
      (fun (r : Engine.report) ->
        match r.Engine.gc with
        | None -> ()
        | Some g ->
          let agg = Engine.agg_categories r in
          let mt = Engine.gc_mem_totals g in
          let share =
            if agg.Engine.useful_ns = 0 then 0.0
            else 100.0 *. float_of_int agg.Engine.gc_ns /. float_of_int agg.Engine.useful_ns
          in
          let useful_s = float_of_int agg.Engine.useful_ns /. 1e9 in
          let rate =
            if useful_s > 0.0 then mt.Engine.mt_minor_words /. 1e6 /. useful_s else 0.0
          in
          let count k =
            List.length
              (List.filter (fun (p : Gcprof.pause) -> p.Gcprof.gp_kind = k) g.Gcprof.c_pauses)
          in
          let p sel =
            match Engine.gc_pause_summary r with
            | Some h -> Printf.sprintf "%.1f" (sel h)
            | None -> "-"
          in
          pf buf
            "<tr><td>%d</td><td>%.1f</td><td>%.2f</td><td>%.1f%%</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%.2f</td><td>%.2f</td><td>%.1f</td><td>%d</td></tr>\n"
            r.Engine.jobs
            (engine_ms agg.Engine.useful_ns)
            (engine_ms agg.Engine.gc_ns)
            share (count Gcprof.Minor) (count Gcprof.Major) (count Gcprof.Barrier)
            (p (fun h -> h.Metrics.p50))
            (p (fun h -> h.Metrics.p99))
            (mt.Engine.mt_minor_words /. 1e6)
            (mt.Engine.mt_promoted_words /. 1e6)
            rate g.Gcprof.c_lost_events)
      with_gc;
    pf buf "</table>\n";
    pf buf "<p class=legend>";
    List.iter
      (fun name ->
        pf buf "<span><span class=\"swatch eg-%s\"></span>%s</span>" name name)
      [ "compute"; "gc" ];
    pf buf "</p>\n";
    List.iter
      (fun (r : Engine.report) ->
        let agg = Engine.agg_categories r in
        let useful = Float.max 1e-9 (float_of_int agg.Engine.useful_ns) in
        let gc_pct = 100.0 *. float_of_int agg.Engine.gc_ns /. useful in
        pf buf "<div class=bench-bar><span class=label>jobs=%d</span>" r.Engine.jobs;
        pf buf "<span class=track><span class=bar>";
        pf buf "<span class=\"eg-compute\" style=\"width:%.2f%%\" title=\"compute: %.2f ms\"></span>"
          (100.0 -. gc_pct)
          (engine_ms (agg.Engine.useful_ns - agg.Engine.gc_ns));
        if gc_pct > 0.01 then
          pf buf "<span class=\"eg-gc\" style=\"width:%.2f%%\" title=\"gc: %.2f ms\"></span>"
            gc_pct (engine_ms agg.Engine.gc_ns);
        pf buf "</span></span></div>\n")
      with_gc
  end

let render_engine_page (reports : Engine.report list) =
  let buf = Buffer.create 16384 in
  pf buf "<!DOCTYPE html>\n<html lang=en>\n<head>\n<meta charset=utf-8>\n";
  pf buf "<title>rfh engine report</title>\n<style>\n%s\n</style>\n</head>\n<body>\n" style;
  pf buf "<h1>rfh engine report</h1>\n";
  (match reports with
  | r :: _ -> pf buf "<p class=muted>target: %s</p>\n" (escape r.Engine.label)
  | [] -> ());
  engine_section buf reports;
  gc_section buf reports;
  pf buf "</body>\n</html>\n";
  Buffer.contents buf

let write_engine_page ~path reports =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render_engine_page reports))

let render ?compare ?explain ?engine (m : Manifest.t) =
  let buf = Buffer.create 16384 in
  pf buf "<!DOCTYPE html>\n<html lang=en>\n<head>\n<meta charset=utf-8>\n";
  pf buf "<title>rfh run report</title>\n<style>\n%s\n</style>\n</head>\n<body>\n" style;
  pf buf "<h1>rfh run report</h1>\n";
  pf buf "<p class=muted>schema v%d · %d benchmarks%s</p>\n" Manifest.schema_version
    (List.length m.benches)
    (if compare = None then "" else " · compared against baseline");
  headline buf m compare;
  options_section buf m.options;
  energy_bars buf m;
  bench_table buf m compare;
  stall_section buf m;
  phase_table buf m;
  metrics_section buf m;
  audit_section buf m;
  (match engine with
  | None | Some [] -> ()
  | Some reports ->
    engine_section buf reports;
    gc_section buf reports);
  (match explain with None | Some [] -> () | Some reports -> explain_section buf reports);
  pf buf "</body>\n</html>\n";
  Buffer.contents buf

let write_file ?compare ?explain ?engine ~path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?compare ?explain ?engine m))

(* ------------------------------------------------------------------ *)
(* Trend dashboard: a standalone page over the cross-run history.
   Sparklines are inline SVG (one polyline per series, change points
   as vertical rules with the git rev in a <title> tooltip) — still no
   scripts and no external assets.                                     *)

let spark_w = 260.0
let spark_h = 30.0

let trend_sparkline_svg buf (recs : History.t array) (a : Trend.analysis) =
  let pts = a.Trend.a_series.Trend.points in
  let n = Array.length pts in
  pf buf "<svg width=%.0f height=%.0f viewBox=\"0 0 %.0f %.0f\" role=img>"
    spark_w spark_h spark_w spark_h;
  if n > 0 then begin
    let values = Array.map snd pts in
    let lo = Array.fold_left Float.min values.(0) values in
    let hi = Array.fold_left Float.max values.(0) values in
    let x i = if n = 1 then spark_w /. 2.0 else 3.0 +. (spark_w -. 6.0) *. float_of_int i /. float_of_int (n - 1) in
    let y v =
      if hi = lo then spark_h /. 2.0
      else 3.0 +. (spark_h -. 6.0) *. (1.0 -. ((v -. lo) /. (hi -. lo)))
    in
    List.iter
      (fun cp ->
        let rev = (recs.(fst pts.(cp)).History.host : Host.t).git_rev in
        pf buf
          "<line x1=%.1f y1=0 x2=%.1f y2=%.0f stroke=\"#a02020\" stroke-width=1.5><title>change point: record %d, rev %s</title></line>"
          (x cp) (x cp) spark_h (fst pts.(cp))
          (escape rev))
      a.Trend.a_change_points;
    pf buf "<polyline fill=none stroke=\"#5470c6\" stroke-width=1.5 points=\"";
    Array.iteri (fun i v -> pf buf "%.1f,%.1f " (x i) (y v)) values;
    pf buf "\"/>";
    let last = values.(n - 1) in
    pf buf "<circle cx=%.1f cy=%.1f r=2.2 fill=\"#1c2330\"/>" (x (n - 1)) (y last)
  end;
  pf buf "</svg>"

let short_rev rev = if String.length rev > 10 then String.sub rev 0 10 else rev

let render_trend_page ~history_path ~records ~rejected (g : Trend.gate_result) =
  let recs = Array.of_list records in
  let buf = Buffer.create 16384 in
  pf buf "<!DOCTYPE html>\n<html lang=en>\n<head>\n<meta charset=utf-8>\n";
  pf buf "<title>rfh trend dashboard</title>\n<style>\n%s\n</style>\n</head>\n<body>\n" style;
  pf buf "<h1>rfh trend dashboard</h1>\n";
  pf buf "<p class=muted>history: <code>%s</code> · %d record%s%s%s</p>\n"
    (escape history_path) (Array.length recs)
    (if Array.length recs = 1 then "" else "s")
    (if rejected = 0 then "" else Printf.sprintf " · %d undecodable line%s skipped" rejected (if rejected = 1 then "" else "s"))
    (match (records, List.rev records) with
    | first :: _, last :: _ when Array.length recs > 1 ->
      Printf.sprintf " · %s … %s" (escape first.History.timestamp) (escape last.History.timestamp)
    | first :: _, _ -> Printf.sprintf " · %s" (escape first.History.timestamp)
    | [], _ -> "");
  (match g.Trend.g_exit with
  | 2 ->
    pf buf "<p class=gate-fail>Not enough history to judge drift (need at least 3 records).</p>\n"
  | 1 ->
    pf buf "<p class=gate-fail>Sustained drift detected in %d gated series:</p>\n<ul>\n"
      (List.length g.Trend.g_failures);
    List.iter
      (fun (f : Trend.failure) ->
        pf buf "<li><code>%s</code>: %s → %s at record %d (rev <code>%s</code>)</li>\n"
          (escape f.Trend.f_series) (num f.Trend.f_before) (num f.Trend.f_after)
          f.Trend.f_index
          (escape (short_rev f.Trend.f_rev)))
      g.Trend.g_failures;
    pf buf "</ul>\n"
  | _ -> pf buf "<p class=gate-ok>No sustained drift in any gated series.</p>\n");
  if g.Trend.g_analyses <> [] then begin
    pf buf "<h2>Series</h2><table>\n";
    pf buf
      "<tr><th class=l>series</th><th>n</th><th>median</th><th>MAD</th><th>latest</th><th>z</th><th class=l>trend</th><th>shift</th><th class=l>verdict</th><th class=l>change points</th></tr>\n";
    List.iter
      (fun (a : Trend.analysis) ->
        let s = a.Trend.a_series in
        let verdict = Trend.verdict_name a.Trend.a_verdict in
        pf buf "<tr><td class=l><code>%s</code>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%.2f</td>"
          (escape s.Trend.s_name)
          (if s.Trend.s_gated then "" else " <span class=muted>(ungated)</span>")
          (Array.length s.Trend.points)
          (num a.Trend.a_median) (num a.Trend.a_mad) (num a.Trend.a_latest)
          a.Trend.a_latest_z;
        pf buf "<td class=\"l spark\">";
        trend_sparkline_svg buf recs a;
        pf buf "</td><td>%+.1f%%</td><td class=\"l v-%s\">%s</td><td class=l>%s</td></tr>\n"
          (100.0 *. a.Trend.a_shift) verdict verdict
          (if a.Trend.a_change_points = [] then "&mdash;"
           else
             String.concat ", "
               (List.map
                  (fun cp ->
                    let idx = fst s.Trend.points.(cp) in
                    Printf.sprintf "#%d <code>%s</code>" idx
                      (escape (short_rev (recs.(idx).History.host : Host.t).git_rev)))
                  a.Trend.a_change_points)))
      g.Trend.g_analyses;
    pf buf "</table>\n";
    pf buf
      "<p class=muted>z is a robust score (0.6745·(latest−median)/MAD); shift compares the last segment's median against the previous segment's. Gated series fail <code>rfh trend --check</code> on a sustained shift beyond their tolerance in the bad direction.</p>\n"
  end;
  pf buf "</body>\n</html>\n";
  Buffer.contents buf

let write_trend_page ~history_path ~records ~rejected ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render_trend_page ~history_path ~records ~rejected g))

(* ------------------------------------------------------------------ *)
(* Why page: the ranked root-cause diagnosis of two runs.  Still one
   self-contained file: inline CSS, no scripts.                        *)

(* For IPC a drop is the bad direction; for everything else (energies,
   counts) a rise is. *)
let metric_worse metric rel = if metric = "ipc" then rel < 0.0 else rel > 0.0

let why_delta_bars buf (r : Rootcause.t) =
  pf buf "<h2>Per-benchmark metric deltas</h2>\n";
  if r.Rootcause.r_metrics = [] then
    pf buf "<p class=muted>no benchmarks common to both sides</p>\n"
  else begin
    pf buf
      "<p class=legend><span><span class=\"swatch why-worse\"></span>worse</span><span><span class=\"swatch why-better\"></span>better</span> <span class=muted>bar length is the signed relative delta; the rule marks zero</span></p>\n";
    let widest =
      List.fold_left (fun acc m -> Float.max acc (Float.abs m.Rootcause.md_rel)) 0.0
        r.Rootcause.r_metrics
      |> Float.max 1e-9
    in
    List.iter
      (fun (m : Rootcause.metric_delta) ->
        let rel = m.Rootcause.md_rel in
        let w = 48.0 *. Float.abs rel /. widest in
        let cls = if metric_worse m.Rootcause.md_metric rel then "why-worse" else "why-better" in
        pf buf "<div class=why-bar><span class=label>%s · %s</span><span class=track><span class=mid></span>"
          (escape m.Rootcause.md_bench) (escape m.Rootcause.md_metric);
        if Float.abs rel > 1e-12 then begin
          if rel >= 0.0 then
            pf buf "<span class=\"seg %s\" style=\"left:50%%;width:%.2f%%\"></span>" cls w
          else
            pf buf "<span class=\"seg %s\" style=\"left:%.2f%%;width:%.2f%%\"></span>" cls
              (50.0 -. w) w
        end;
        pf buf "</span><span class=pct>%+.4g%%</span></div>\n" (rel *. 100.0))
      r.Rootcause.r_metrics
  end

let why_causes_table buf (r : Rootcause.t) =
  pf buf "<h2>Ranked causes</h2>\n";
  if r.Rootcause.r_causes = [] then
    pf buf "<p class=gate-ok>No causes: the two runs are equivalent under every probe.</p>\n"
  else begin
    pf buf
      "<table>\n<tr><th>rank</th><th>score</th><th class=l>kind</th><th class=l>bench</th><th class=l>cause</th><th class=l>delta</th></tr>\n";
    List.iteri
      (fun i (c : Rootcause.cause) ->
        pf buf
          "<tr><td>%d</td><td>%s</td><td class=l>%s</td><td class=l>%s</td><td class=l>%s</td><td class=l>%s</td></tr>\n"
          (i + 1) (num c.Rootcause.c_score)
          (escape (Rootcause.kind_name c.Rootcause.c_kind))
          (escape c.Rootcause.c_bench) (escape c.Rootcause.c_what)
          (escape c.Rootcause.c_delta))
      r.Rootcause.r_causes;
    pf buf "</table>\n"
  end

let why_stall_section buf (s : Stall_diff.t) =
  pf buf "<h2>Stall attribution deltas</h2>\n";
  List.iter
    (fun (b : Stall_diff.bench_diff) ->
      pf buf "<h3>%s <span class=muted>(budget %d → %d warp-cycles)</span></h3>\n"
        (escape b.Stall_diff.sb_bench) b.Stall_diff.sb_total_a b.Stall_diff.sb_total_b;
      pf buf
        "<table>\n<tr><th class=l>cause</th><th>baseline</th><th>candidate</th><th>share Δ (pp)</th></tr>\n";
      List.iter
        (fun (c : Stall_diff.cause_delta) ->
          let cls =
            if c.Stall_diff.cd_delta > 1e-12 then " class=delta-up"
            else if c.Stall_diff.cd_delta < -1e-12 then " class=delta-down"
            else ""
          in
          pf buf "<tr><td class=l>%s</td><td>%d</td><td>%d</td><td%s>%+.4g</td></tr>\n"
            (escape c.Stall_diff.cd_cause) c.Stall_diff.cd_count_a c.Stall_diff.cd_count_b
            cls
            (c.Stall_diff.cd_delta *. 100.0))
        b.Stall_diff.sb_causes;
      pf buf "</table>\n")
    s.Stall_diff.s_benches

let why_explain_section buf (e : Explain_diff.t) =
  pf buf "<h2>Allocation decision diff</h2>\n";
  pf buf "<p class=muted>%d vs %d decisions, %d aligned, %d changed, %d / %d unmatched</p>\n"
    e.Explain_diff.d_total_a e.Explain_diff.d_total_b e.Explain_diff.d_aligned
    (List.length e.Explain_diff.d_pairs)
    (List.length e.Explain_diff.d_only_a)
    (List.length e.Explain_diff.d_only_b);
  if e.Explain_diff.d_kernels <> [] then begin
    pf buf
      "<table>\n<tr><th class=l>kernel</th><th>aligned</th><th>changed</th><th class=l>moves</th><th>verdict flips</th><th>savings Δ (pJ)</th><th>dropped Δ</th></tr>\n";
    List.iter
      (fun (k : Explain_diff.kernel_stats) ->
        let moves =
          if k.Explain_diff.ks_moves = [] then "&mdash;"
          else
            String.concat ", "
              (List.map
                 (fun (m : Explain_diff.move) ->
                   Printf.sprintf "%s→%s ×%d"
                     (escape m.Explain_diff.m_from) (escape m.Explain_diff.m_to)
                     m.Explain_diff.m_count)
                 k.Explain_diff.ks_moves)
        in
        pf buf
          "<tr><td class=l>%s</td><td>%d</td><td>%d</td><td class=l>%s</td><td>%d</td><td>%+.4g</td><td>%+d</td></tr>\n"
          (escape k.Explain_diff.ks_kernel) k.Explain_diff.ks_aligned
          k.Explain_diff.ks_changed moves k.Explain_diff.ks_verdict_flips
          k.Explain_diff.ks_savings_delta k.Explain_diff.ks_dropped_delta)
      e.Explain_diff.d_kernels;
    pf buf "</table>\n"
  end;
  if e.Explain_diff.d_pairs <> [] then begin
    pf buf "<h3>Changed live ranges</h3>\n";
    pf buf
      "<table>\n<tr><th class=l>kernel</th><th class=l>kind</th><th class=l>reg</th><th>strand</th><th>first</th><th class=l>flips</th></tr>\n";
    List.iter
      (fun (p : Explain_diff.pair) ->
        let k = p.Explain_diff.p_key in
        pf buf
          "<tr><td class=l>%s</td><td class=l>%s</td><td class=l><code>%s</code></td><td>%d</td><td>%d</td><td class=l>%s</td></tr>\n"
          (escape k.Explain_diff.k_kernel) (escape k.Explain_diff.k_kind)
          (escape k.Explain_diff.k_reg) k.Explain_diff.k_strand k.Explain_diff.k_first
          (escape
             (String.concat "; "
                (List.map Explain_diff.flip_name p.Explain_diff.p_flips))))
      e.Explain_diff.d_pairs;
    pf buf "</table>\n"
  end

let render_why_page ~baseline_label ~candidate_label (r : Rootcause.t) =
  let buf = Buffer.create 16384 in
  pf buf "<!DOCTYPE html>\n<html lang=en>\n<head>\n<meta charset=utf-8>\n";
  pf buf "<title>rfh why report</title>\n<style>\n%s\n</style>\n</head>\n<body>\n" style;
  pf buf "<h1>rfh why — differential root cause</h1>\n";
  pf buf "<p class=muted>baseline: <code>%s</code> · candidate: <code>%s</code></p>\n"
    (escape baseline_label) (escape candidate_label);
  (match Rootcause.check r with
  | [] ->
    pf buf "<p class=gate-ok>Attribution self-check passed: every cause sums back to its source counters.</p>\n"
  | issues ->
    pf buf "<p class=gate-fail>Attribution self-check FAILED:</p>\n<ul>\n";
    List.iter (fun i -> pf buf "<li>%s</li>\n" (escape i)) issues;
    pf buf "</ul>\n");
  (match Rootcause.top_cause r with
  | Some c ->
    pf buf "<p class=headline>top cause — %s: %s, %s</p>\n" (escape c.Rootcause.c_bench)
      (escape c.Rootcause.c_what) (escape c.Rootcause.c_delta)
  | None -> ());
  (if r.Rootcause.r_only_a <> [] || r.Rootcause.r_only_b <> [] then
     pf buf "<p class=gate-fail>benchmarks only in baseline: [%s] · only in candidate: [%s]</p>\n"
       (escape (String.concat ", " r.Rootcause.r_only_a))
       (escape (String.concat ", " r.Rootcause.r_only_b)));
  why_causes_table buf r;
  why_delta_bars buf r;
  (match r.Rootcause.r_stalls with None -> () | Some s -> why_stall_section buf s);
  (match r.Rootcause.r_explain with None -> () | Some e -> why_explain_section buf e);
  pf buf "</body>\n</html>\n";
  Buffer.contents buf

let write_why_page ~baseline_label ~candidate_label ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render_why_page ~baseline_label ~candidate_label r))
