(* Per-cause stall-share and residency deltas between two manifests.
   Counts are exact integers out of the simulator; shares normalize
   each side by its own cycles x warps budget so a timing change does
   not masquerade as an attribution change. *)

type cause_delta = {
  cd_cause : string;
  cd_count_a : int;
  cd_count_b : int;
  cd_share_a : float;
  cd_share_b : float;
  cd_delta : float;
}

type sched_delta = {
  sd_entries : int * int;
  sd_exits : int * int;
  sd_resident_cycles : int * int;
  sd_mean_residency : float * float;
  sd_desched_long_latency : int * int;
  sd_desched_strand_boundary : int * int;
  sd_desched_bank_conflict : int * int;
}

type bench_diff = {
  sb_bench : string;
  sb_total_a : int;
  sb_total_b : int;
  sb_causes : cause_delta list;
  sb_sched : sched_delta;
}

type t = {
  s_benches : bench_diff list;
  s_only_a : string list;
  s_only_b : string list;
}

let total_of (b : Manifest.bench) =
  List.fold_left (fun acc (_, n) -> acc + n) 0 b.Manifest.stalls

let share total n = if total = 0 then 0.0 else float_of_int n /. float_of_int total

let mean_residency (s : Manifest.sched) =
  if s.Manifest.exits = 0 then 0.0
  else float_of_int s.Manifest.resident_cycles /. float_of_int s.Manifest.exits

let bench_diff (a : Manifest.bench) (b : Manifest.bench) =
  let ta = total_of a and tb = total_of b in
  (* Walk side a's cause order (the manifest order is fixed), then
     append causes only side b knows — schema drift must surface, not
     vanish. *)
  let causes =
    List.map
      (fun (cause, na) ->
        let nb = Option.value ~default:0 (List.assoc_opt cause b.Manifest.stalls) in
        {
          cd_cause = cause;
          cd_count_a = na;
          cd_count_b = nb;
          cd_share_a = share ta na;
          cd_share_b = share tb nb;
          cd_delta = share tb nb -. share ta na;
        })
      a.Manifest.stalls
    @ List.filter_map
        (fun (cause, nb) ->
          if List.mem_assoc cause a.Manifest.stalls then None
          else
            Some
              {
                cd_cause = cause;
                cd_count_a = 0;
                cd_count_b = nb;
                cd_share_a = 0.0;
                cd_share_b = share tb nb;
                cd_delta = share tb nb;
              })
        b.Manifest.stalls
  in
  let sa = a.Manifest.sched and sb = b.Manifest.sched in
  {
    sb_bench = a.Manifest.bench;
    sb_total_a = ta;
    sb_total_b = tb;
    sb_causes = causes;
    sb_sched =
      {
        sd_entries = (sa.Manifest.entries, sb.Manifest.entries);
        sd_exits = (sa.Manifest.exits, sb.Manifest.exits);
        sd_resident_cycles = (sa.Manifest.resident_cycles, sb.Manifest.resident_cycles);
        sd_mean_residency = (mean_residency sa, mean_residency sb);
        sd_desched_long_latency =
          (sa.Manifest.desched_long_latency, sb.Manifest.desched_long_latency);
        sd_desched_strand_boundary =
          (sa.Manifest.desched_strand_boundary, sb.Manifest.desched_strand_boundary);
        sd_desched_bank_conflict =
          (sa.Manifest.desched_bank_conflict, sb.Manifest.desched_bank_conflict);
      };
  }

let diff ~(baseline : Manifest.t) ~(current : Manifest.t) =
  let benches =
    List.filter_map
      (fun (a : Manifest.bench) ->
        match
          List.find_opt (fun (b : Manifest.bench) -> b.Manifest.bench = a.Manifest.bench)
            current.Manifest.benches
        with
        | Some b -> Some (bench_diff a b)
        | None -> None)
      baseline.Manifest.benches
  in
  let names m = List.map (fun (b : Manifest.bench) -> b.Manifest.bench) m.Manifest.benches in
  let only_a =
    List.filter (fun n -> not (List.mem n (names current))) (names baseline)
  in
  let only_b =
    List.filter (fun n -> not (List.mem n (names baseline))) (names current)
  in
  { s_benches = benches; s_only_a = only_a; s_only_b = only_b }

let check t =
  let bad = ref [] in
  let expect what ok = if not ok then bad := what :: !bad in
  List.iter
    (fun b ->
      let sum f = List.fold_left (fun acc c -> acc +. f c) 0.0 b.sb_causes in
      if b.sb_total_a > 0 then
        expect
          (Printf.sprintf "%s: baseline shares sum to 1" b.sb_bench)
          (Float.abs (sum (fun c -> c.cd_share_a) -. 1.0) <= 1e-9);
      if b.sb_total_b > 0 then
        expect
          (Printf.sprintf "%s: candidate shares sum to 1" b.sb_bench)
          (Float.abs (sum (fun c -> c.cd_share_b) -. 1.0) <= 1e-9);
      if b.sb_total_a > 0 && b.sb_total_b > 0 then
        expect
          (Printf.sprintf "%s: share deltas sum to 0" b.sb_bench)
          (Float.abs (sum (fun c -> c.cd_delta)) <= 1e-9);
      List.iter
        (fun c ->
          expect
            (Printf.sprintf "%s/%s: nonnegative counts" b.sb_bench c.cd_cause)
            (c.cd_count_a >= 0 && c.cd_count_b >= 0))
        b.sb_causes;
      expect
        (Printf.sprintf "%s: counts sum to the budget" b.sb_bench)
        (List.fold_left (fun acc c -> acc + c.cd_count_a) 0 b.sb_causes = b.sb_total_a
        && List.fold_left (fun acc c -> acc + c.cd_count_b) 0 b.sb_causes = b.sb_total_b))
    t.s_benches;
  List.rev !bad
