(** Per-domain GC/memory observability over [Runtime_events].

    Where {!Engine} decomposes parallel wall time into engine
    categories, this module watches the OCaml 5 runtime itself: a
    consumer thread drains the self-process [Runtime_events] ring
    buffers (one ring per domain) and turns [runtime_begin]/
    [runtime_end] phase events into {e top-level GC pauses} — the
    outermost span of nested runtime phases, classified as minor
    collection, major work, or a stop-the-world barrier.  Alongside,
    [Gc.quick_stat] deltas are snapshotted at every {!Util.Eprof}
    region boundary (on the region's calling domain), giving each
    profiled region its minor/promoted/major word counts and
    collection counts.

    {!Engine.profile} runs a capture around every profiled window (on
    by default there, suppressible with [~gcprof:false]) and attributes
    each pause to the domain's task intervals, splitting every
    region's [useful] budget exactly into [compute + gc] — the same
    sum-exactness contract as the engine categories, re-verified by
    {!Engine.check}.

    Recording discipline (same contract as {!Util.Eprof}):

    - off by default; when off the only residue is one uninstalled
      hook load per recorded Eprof event — results are byte-identical
      with the recorder on or off, at any [--jobs] setting;
    - {!start} starts runtime-events collection (ring files land in
      the temp directory, not the working tree), opens a self cursor,
      installs the {!Util.Eprof} hooks and spawns the consumer
      thread; {!stop} joins it, drains the cursor and returns the
      {!capture};
    - ring-buffer slots are mapped back to Eprof domain ids by a
      handshake: each profiled domain writes one user event (carrying
      its own id) into its ring at worker start, and pauses resolve
      against the handshake nearest in time — {!pause}s whose ring
      never handshook keep [gp_dom = -1] and are excluded from
      attribution;
    - overwritten ring events are tolerated, not fatal: the consumer
      counts them in [c_lost_events] and the capture stays usable. *)

type kind =
  | Minor  (** stop-the-world minor collection *)
  | Major  (** major slice / sweep / mark work *)
  | Barrier  (** stop-the-world synchronisation without collection work *)
  | Other  (** non-GC runtime phases (condition waits, ring admin) *)

val kind_name : kind -> string
(** ["minor"], ["major"], ["barrier"], ["other"]. *)

val kind_of_name : string -> kind option

val counts_as_gc : kind -> bool
(** Whether a pause of this kind charges a region's [gc] split
    ({!Minor}, {!Major} and {!Barrier} do; {!Other} does not). *)

type pause = {
  gp_ring : int;  (** runtime ring-buffer index the span came from *)
  gp_dom : int;  (** resolved Eprof domain id, [-1] when unresolved *)
  gp_kind : kind;
  gp_start_ns : int;  (** relative to the {!Util.Eprof} epoch *)
  gp_dur_ns : int;
}

type region_mem = {
  gm_region : int;  (** {!Util.Eprof} region id *)
  gm_minor_words : float;  (** [Gc.quick_stat] delta over the region, caller domain *)
  gm_promoted_words : float;
  gm_major_words : float;
  gm_minor_collections : int;
  gm_major_collections : int;
}

type capture = {
  c_pauses : pause list;  (** start-ascending *)
  c_region_mem : region_mem list;  (** region-id-ascending *)
  c_lost_events : int;  (** ring events overwritten before consumption *)
  c_unmatched : int;  (** [runtime_end] events without a matching begin *)
}

val empty_capture : capture

val enabled : unit -> bool
(** One atomic load. *)

val start : unit -> unit
(** Start capturing: enable runtime-events collection, install the
    {!Util.Eprof} hooks, spawn the consumer thread.  No-op when
    already capturing. *)

val stop : unit -> capture
(** Stop capturing and return everything captured since {!start}:
    joins the consumer, drains the cursor, uninstalls the hooks and
    pauses runtime-events collection.  Returns {!empty_capture} when
    not capturing.  Pause timestamps are resolved against the
    {!Util.Eprof} epoch of the capture window. *)
