(* Ranked differential root-cause analysis combining manifest metric
   deltas, stall-share deltas and allocation-decision flips.  All
   ordering below is comparison-defined and every float renders
   through one fixed format, so the same two inputs always produce the
   same bytes. *)

type kind = Metric | Stall | Alloc

let kind_name = function Metric -> "metric" | Stall -> "stall" | Alloc -> "alloc"

(* Rank order for the deterministic tie-break only. *)
let kind_rank = function Metric -> 0 | Stall -> 1 | Alloc -> 2

type cause = {
  c_bench : string;
  c_kind : kind;
  c_what : string;
  c_delta : string;
  c_score : float;
  c_count : int;
}

type metric_delta = {
  md_bench : string;
  md_metric : string;
  md_a : float;
  md_b : float;
  md_rel : float;
}

type t = {
  r_causes : cause list;
  r_metrics : metric_delta list;
  r_stalls : Stall_diff.t option;
  r_explain : Explain_diff.t option;
  r_only_a : string list;
  r_only_b : string list;
}

let eps = 1e-12
let num = Printf.sprintf "%.4g"

let rel_delta a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale <= 0.0 then 0.0 else (b -. a) /. scale

(* ------------------------------------------------------------------ *)
(* Metric deltas.                                                      *)

let bench_metrics (b : Manifest.bench) =
  [
    ("ipc", b.Manifest.ipc);
    ("norm_energy", b.Manifest.norm_energy);
    ("total_pj", b.Manifest.total_pj);
  ]
  @ List.map
      (fun (level, (access, wire)) -> ("energy:" ^ level, access +. wire))
      b.Manifest.energy_pj

let metric_deltas ~(baseline : Manifest.t) ~(candidate : Manifest.t) =
  List.concat_map
    (fun (a : Manifest.bench) ->
      match
        List.find_opt
          (fun (b : Manifest.bench) -> b.Manifest.bench = a.Manifest.bench)
          candidate.Manifest.benches
      with
      | None -> []
      | Some b ->
        let ma = bench_metrics a and mb = bench_metrics b in
        List.filter_map
          (fun (metric, va) ->
            match List.assoc_opt metric mb with
            | None -> None
            | Some vb ->
              Some
                {
                  md_bench = a.Manifest.bench;
                  md_metric = metric;
                  md_a = va;
                  md_b = vb;
                  md_rel = rel_delta va vb;
                })
          ma)
    baseline.Manifest.benches

(* ------------------------------------------------------------------ *)
(* Cause construction.                                                 *)

(* Metric causes use the same relative floor as Regress's float_tol:
   anything below it is JSON round-trip noise the gate itself would
   not flag, so it must not rank as a cause.  Stall shares and
   alignment counts are ratios of exact integers, so they keep the
   tighter [eps]. *)
let metric_floor = 1e-9

let metric_causes metrics =
  List.filter_map
    (fun m ->
      if Float.abs m.md_rel <= metric_floor then None
      else
        Some
          {
            c_bench = m.md_bench;
            c_kind = Metric;
            c_what = m.md_metric;
            c_delta =
              Printf.sprintf "%s -> %s (%+.4g%%)" (num m.md_a) (num m.md_b)
                (m.md_rel *. 100.0);
            c_score = Float.abs m.md_rel;
            c_count = 0;
          })
    metrics

let stall_causes (sd : Stall_diff.t) =
  List.concat_map
    (fun (b : Stall_diff.bench_diff) ->
      List.filter_map
        (fun (c : Stall_diff.cause_delta) ->
          if Float.abs c.Stall_diff.cd_delta <= eps then None
          else
            Some
              {
                c_bench = b.Stall_diff.sb_bench;
                c_kind = Stall;
                c_what = "stall " ^ c.Stall_diff.cd_cause;
                c_delta =
                  Printf.sprintf "share %s -> %s (%+.4g pp), %d -> %d warp-cycles"
                    (num c.Stall_diff.cd_share_a) (num c.Stall_diff.cd_share_b)
                    (c.Stall_diff.cd_delta *. 100.0) c.Stall_diff.cd_count_a
                    c.Stall_diff.cd_count_b;
                c_score = Float.abs c.Stall_diff.cd_delta;
                c_count = abs (c.Stall_diff.cd_count_b - c.Stall_diff.cd_count_a);
              })
        b.Stall_diff.sb_causes)
    sd.Stall_diff.s_benches

(* A kernel's rf-energy link: name the candidate's total-energy swing
   next to the allocation moves that plausibly drove it.  Kernels and
   benches share names in this repo; fall back to a prefix match so
   multi-kernel benches still link. *)
let energy_clause metrics kernel =
  let linked =
    List.find_opt
      (fun m ->
        m.md_metric = "total_pj"
        && (m.md_bench = kernel
           || String.length m.md_bench < String.length kernel
              && String.sub kernel 0 (String.length m.md_bench) = m.md_bench))
      metrics
  in
  match linked with
  | Some m when Float.abs m.md_rel > eps ->
    Printf.sprintf ", explaining %+.4g%% rf energy" (m.md_rel *. 100.0)
  | _ -> ""

let alloc_causes metrics (ed : Explain_diff.t) =
  List.concat_map
    (fun (k : Explain_diff.kernel_stats) ->
      let aligned = max 1 k.Explain_diff.ks_aligned in
      let moves =
        List.map
          (fun (m : Explain_diff.move) ->
            {
              c_bench = k.Explain_diff.ks_kernel;
              c_kind = Alloc;
              c_what =
                Printf.sprintf "moved %s -> %s" m.Explain_diff.m_from m.Explain_diff.m_to;
              c_delta =
                Printf.sprintf "%d of %d ranges moved %s -> %s (savings %+.4g pJ)%s"
                  m.Explain_diff.m_count k.Explain_diff.ks_aligned m.Explain_diff.m_from
                  m.Explain_diff.m_to m.Explain_diff.m_savings_delta
                  (energy_clause metrics k.Explain_diff.ks_kernel);
              c_score = float_of_int m.Explain_diff.m_count /. float_of_int aligned;
              c_count = m.Explain_diff.m_count;
            })
          k.Explain_diff.ks_moves
      in
      let verdicts =
        if k.Explain_diff.ks_verdict_flips = 0 then []
        else
          [
            {
              c_bench = k.Explain_diff.ks_kernel;
              c_kind = Alloc;
              c_what = "verdict flips";
              c_delta =
                Printf.sprintf "%d candidate verdicts flipped over %d aligned ranges"
                  k.Explain_diff.ks_verdict_flips k.Explain_diff.ks_aligned;
              c_score =
                float_of_int k.Explain_diff.ks_verdict_flips /. float_of_int aligned;
              c_count = k.Explain_diff.ks_verdict_flips;
            };
          ]
      in
      let dropped =
        if k.Explain_diff.ks_dropped_delta = 0 then []
        else
          [
            {
              c_bench = k.Explain_diff.ks_kernel;
              c_kind = Alloc;
              c_what = "dropped reads";
              c_delta =
                Printf.sprintf "dropped-read total moved by %+d (coverage by %+d)"
                  k.Explain_diff.ks_dropped_delta k.Explain_diff.ks_covered_delta;
              c_score =
                float_of_int (abs k.Explain_diff.ks_dropped_delta)
                /. float_of_int aligned;
              c_count = abs k.Explain_diff.ks_dropped_delta;
            };
          ]
      in
      let unmatched side count =
        if count = 0 then []
        else
          [
            {
              c_bench = k.Explain_diff.ks_kernel;
              c_kind = Alloc;
              c_what = Printf.sprintf "ranges only in %s" side;
              c_delta =
                Printf.sprintf "%d decisions had no counterpart (%d aligned)" count
                  k.Explain_diff.ks_aligned;
              c_score = float_of_int count /. float_of_int (aligned + count);
              c_count = count;
            };
          ]
      in
      moves @ verdicts @ dropped
      @ unmatched "baseline" k.Explain_diff.ks_only_a
      @ unmatched "candidate" k.Explain_diff.ks_only_b)
    ed.Explain_diff.d_kernels

let rank causes =
  List.sort
    (fun a b ->
      match compare b.c_score a.c_score with
      | 0 -> (
        match compare a.c_bench b.c_bench with
        | 0 -> (
          match compare (kind_rank a.c_kind) (kind_rank b.c_kind) with
          | 0 -> compare a.c_what b.c_what
          | c -> c)
        | c -> c)
      | c -> c)
    causes

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let analyze ?explain ~baseline ~candidate () =
  let metrics = metric_deltas ~baseline ~candidate in
  let stalls = Stall_diff.diff ~baseline ~current:candidate in
  let causes =
    metric_causes metrics @ stall_causes stalls
    @ (match explain with None -> [] | Some ed -> alloc_causes metrics ed)
  in
  {
    r_causes = rank causes;
    r_metrics = metrics;
    r_stalls = Some stalls;
    r_explain = explain;
    r_only_a = stalls.Stall_diff.s_only_a;
    r_only_b = stalls.Stall_diff.s_only_b;
  }

let of_history ~(before : History.t) ~(after : History.t) =
  let metrics =
    List.concat_map
      (fun (a : History.bench_point) ->
        match
          List.find_opt
            (fun (b : History.bench_point) -> b.History.hb_bench = a.History.hb_bench)
            after.History.benches
        with
        | None -> []
        | Some b ->
          List.map
            (fun (metric, va, vb) ->
              {
                md_bench = a.History.hb_bench;
                md_metric = metric;
                md_a = va;
                md_b = vb;
                md_rel = rel_delta va vb;
              })
            [
              ("ipc", a.History.hb_ipc, b.History.hb_ipc);
              ("norm_energy", a.History.hb_norm_energy, b.History.hb_norm_energy);
            ])
      before.History.benches
  in
  let stall_causes =
    List.concat_map
      (fun (a : History.bench_point) ->
        match
          List.find_opt
            (fun (b : History.bench_point) -> b.History.hb_bench = a.History.hb_bench)
            after.History.benches
        with
        | None -> []
        | Some b ->
          List.filter_map
            (fun (cause, sa) ->
              let sb =
                Option.value ~default:0.0 (List.assoc_opt cause b.History.hb_stalls)
              in
              let delta = sb -. sa in
              if Float.abs delta <= eps then None
              else
                Some
                  {
                    c_bench = a.History.hb_bench;
                    c_kind = Stall;
                    c_what = "stall " ^ cause;
                    c_delta =
                      Printf.sprintf "share %s -> %s (%+.4g pp)" (num sa) (num sb)
                        (delta *. 100.0);
                    c_score = Float.abs delta;
                    c_count = 0;
                  })
            a.History.hb_stalls)
      before.History.benches
  in
  let names (h : History.t) =
    List.map (fun (b : History.bench_point) -> b.History.hb_bench) h.History.benches
  in
  {
    r_causes = rank (metric_causes metrics @ stall_causes);
    r_metrics = metrics;
    r_stalls = None;
    r_explain = None;
    r_only_a = List.filter (fun n -> not (List.mem n (names after))) (names before);
    r_only_b = List.filter (fun n -> not (List.mem n (names before))) (names after);
  }

let top_cause t = match t.r_causes with [] -> None | c :: _ -> Some c

(* ------------------------------------------------------------------ *)
(* Self-check.                                                         *)

let check t =
  let bad = ref [] in
  let expect what ok = if not ok then bad := what :: !bad in
  List.iter (fun c -> expect (c.c_what ^ ": positive score") (c.c_score > 0.0)) t.r_causes;
  let rec ordered = function
    | a :: (b :: _ as tl) ->
      expect "causes ranked by descending score" (a.c_score >= b.c_score -. 1e-15);
      if Float.abs (a.c_score -. b.c_score) <= 1e-15 then
        expect "score ties broken deterministically"
          (compare
             (a.c_bench, kind_rank a.c_kind, a.c_what)
             (b.c_bench, kind_rank b.c_kind, b.c_what)
          <= 0);
      ordered tl
    | _ -> ()
  in
  ordered t.r_causes;
  List.iter
    (fun c ->
      if c.c_kind = Metric then
        expect
          (Printf.sprintf "%s/%s: metric cause backed by a delta" c.c_bench c.c_what)
          (List.exists
             (fun m ->
               m.md_bench = c.c_bench && m.md_metric = c.c_what
               && Float.abs (Float.abs m.md_rel -. c.c_score) <= 1e-15)
             t.r_metrics))
    t.r_causes;
  let sub =
    (match t.r_stalls with None -> [] | Some s -> Stall_diff.check s)
    @ match t.r_explain with None -> [] | Some e -> Explain_diff.check e
  in
  List.rev !bad @ sub

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let to_table ?top t =
  let buf = Buffer.create 1024 in
  let causes =
    match top with
    | None -> t.r_causes
    | Some n -> List.filteri (fun i _ -> i < n) t.r_causes
  in
  Buffer.add_string buf "rank  score     kind    bench             cause\n";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "%4d  %-8s  %-6s  %-16s  %s — %s\n" (i + 1) (num c.c_score)
           (kind_name c.c_kind) c.c_bench c.c_what c.c_delta))
    causes;
  if causes = [] then Buffer.add_string buf "(no causes: runs are equivalent)\n";
  Buffer.contents buf

let delta_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "bench             metric            baseline     candidate     delta%\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s  %-16s  %11s  %12s  %+9.4g\n" m.md_bench m.md_metric
           (num m.md_a) (num m.md_b) (m.md_rel *. 100.0)))
    t.r_metrics;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let cause_json c =
  Json.Obj
    [
      ("bench", Json.Str c.c_bench);
      ("kind", Json.Str (kind_name c.c_kind));
      ("what", Json.Str c.c_what);
      ("delta", Json.Str c.c_delta);
      ("score", Json.Num c.c_score);
      ("count", Json.int c.c_count);
    ]

let metric_json m =
  Json.Obj
    [
      ("bench", Json.Str m.md_bench);
      ("metric", Json.Str m.md_metric);
      ("baseline", Json.Num m.md_a);
      ("candidate", Json.Num m.md_b);
      ("rel_delta", Json.Num m.md_rel);
    ]

let stall_json (s : Stall_diff.t) =
  Json.Obj
    [
      ( "benches",
        Json.Arr
          (List.map
             (fun (b : Stall_diff.bench_diff) ->
               Json.Obj
                 [
                   ("bench", Json.Str b.Stall_diff.sb_bench);
                   ("total_a", Json.int b.Stall_diff.sb_total_a);
                   ("total_b", Json.int b.Stall_diff.sb_total_b);
                   ( "causes",
                     Json.Arr
                       (List.map
                          (fun (c : Stall_diff.cause_delta) ->
                            Json.Obj
                              [
                                ("cause", Json.Str c.Stall_diff.cd_cause);
                                ("count_a", Json.int c.Stall_diff.cd_count_a);
                                ("count_b", Json.int c.Stall_diff.cd_count_b);
                                ("share_a", Json.Num c.Stall_diff.cd_share_a);
                                ("share_b", Json.Num c.Stall_diff.cd_share_b);
                                ("delta", Json.Num c.Stall_diff.cd_delta);
                              ])
                          b.Stall_diff.sb_causes) );
                   ( "sched",
                     let pair (x, y) = Json.Arr [ Json.int x; Json.int y ] in
                     let fpair (x, y) = Json.Arr [ Json.Num x; Json.Num y ] in
                     let sd = b.Stall_diff.sb_sched in
                     Json.Obj
                       [
                         ("entries", pair sd.Stall_diff.sd_entries);
                         ("exits", pair sd.Stall_diff.sd_exits);
                         ("resident_cycles", pair sd.Stall_diff.sd_resident_cycles);
                         ("mean_residency", fpair sd.Stall_diff.sd_mean_residency);
                         ( "desched_long_latency",
                           pair sd.Stall_diff.sd_desched_long_latency );
                         ( "desched_strand_boundary",
                           pair sd.Stall_diff.sd_desched_strand_boundary );
                         ( "desched_bank_conflict",
                           pair sd.Stall_diff.sd_desched_bank_conflict );
                       ] );
                 ])
             s.Stall_diff.s_benches) );
      ("only_a", Json.Arr (List.map (fun n -> Json.Str n) s.Stall_diff.s_only_a));
      ("only_b", Json.Arr (List.map (fun n -> Json.Str n) s.Stall_diff.s_only_b));
    ]

let explain_json (e : Explain_diff.t) =
  Json.Obj
    [
      ("total_a", Json.int e.Explain_diff.d_total_a);
      ("total_b", Json.int e.Explain_diff.d_total_b);
      ("aligned", Json.int e.Explain_diff.d_aligned);
      ("only_a", Json.int (List.length e.Explain_diff.d_only_a));
      ("only_b", Json.int (List.length e.Explain_diff.d_only_b));
      ( "kernels",
        Json.Arr
          (List.map
             (fun (k : Explain_diff.kernel_stats) ->
               Json.Obj
                 [
                   ("kernel", Json.Str k.Explain_diff.ks_kernel);
                   ("aligned", Json.int k.Explain_diff.ks_aligned);
                   ("changed", Json.int k.Explain_diff.ks_changed);
                   ( "moves",
                     Json.Arr
                       (List.map
                          (fun (m : Explain_diff.move) ->
                            Json.Obj
                              [
                                ("from", Json.Str m.Explain_diff.m_from);
                                ("to", Json.Str m.Explain_diff.m_to);
                                ("count", Json.int m.Explain_diff.m_count);
                                ("savings_delta", Json.Num m.Explain_diff.m_savings_delta);
                              ])
                          k.Explain_diff.ks_moves) );
                   ("verdict_flips", Json.int k.Explain_diff.ks_verdict_flips);
                   ("savings_delta", Json.Num k.Explain_diff.ks_savings_delta);
                   ("covered_delta", Json.int k.Explain_diff.ks_covered_delta);
                   ("dropped_delta", Json.int k.Explain_diff.ks_dropped_delta);
                   ("only_a", Json.int k.Explain_diff.ks_only_a);
                   ("only_b", Json.int k.Explain_diff.ks_only_b);
                 ])
             e.Explain_diff.d_kernels) );
      ( "changed",
        Json.Arr
          (List.map
             (fun (p : Explain_diff.pair) ->
               let k = p.Explain_diff.p_key in
               Json.Obj
                 [
                   ("kernel", Json.Str k.Explain_diff.k_kernel);
                   ("kind", Json.Str k.Explain_diff.k_kind);
                   ("reg", Json.Str k.Explain_diff.k_reg);
                   ("strand", Json.int k.Explain_diff.k_strand);
                   ("first", Json.int k.Explain_diff.k_first);
                   ("occurrence", Json.int k.Explain_diff.k_occurrence);
                   ( "flips",
                     Json.Arr
                       (List.map
                          (fun f -> Json.Str (Explain_diff.flip_name f))
                          p.Explain_diff.p_flips) );
                 ])
             e.Explain_diff.d_pairs) );
    ]

let to_json t =
  let issues = check t in
  Json.Obj
    [
      ("schema_version", Json.int 1);
      ("causes", Json.Arr (List.map cause_json t.r_causes));
      ("metrics", Json.Arr (List.map metric_json t.r_metrics));
      ( "stalls",
        match t.r_stalls with None -> Json.Null | Some s -> stall_json s );
      ( "explain",
        match t.r_explain with None -> Json.Null | Some e -> explain_json e );
      ("only_a", Json.Arr (List.map (fun n -> Json.Str n) t.r_only_a));
      ("only_b", Json.Arr (List.map (fun n -> Json.Str n) t.r_only_b));
      ("check_ok", Json.Bool (issues = []));
      ("check", Json.Arr (List.map (fun s -> Json.Str s) issues));
    ]
