(* Per-domain GC/memory capture over Runtime_events.  See gcprof.mli
   for the contract.  One consumer thread owns all ring-side state
   (ring phase stacks, raw pauses, handshakes); the Eprof hooks run on
   the emitting domains and only touch the region-snapshot table,
   which has its own mutex.  Nothing here runs at all while disabled —
   the hooks are installed by [start] and removed by [stop]. *)

module Re = Runtime_events

type kind = Minor | Major | Barrier | Other

let kind_name = function
  | Minor -> "minor"
  | Major -> "major"
  | Barrier -> "barrier"
  | Other -> "other"

let kind_of_name = function
  | "minor" -> Some Minor
  | "major" -> Some Major
  | "barrier" -> Some Barrier
  | "other" -> Some Other
  | _ -> None

let counts_as_gc = function Minor | Major | Barrier -> true | Other -> false

type pause = {
  gp_ring : int;
  gp_dom : int;
  gp_kind : kind;
  gp_start_ns : int;
  gp_dur_ns : int;
}

type region_mem = {
  gm_region : int;
  gm_minor_words : float;
  gm_promoted_words : float;
  gm_major_words : float;
  gm_minor_collections : int;
  gm_major_collections : int;
}

type capture = {
  c_pauses : pause list;
  c_region_mem : region_mem list;
  c_lost_events : int;
  c_unmatched : int;
}

let empty_capture = { c_pauses = []; c_region_mem = []; c_lost_events = 0; c_unmatched = 0 }
let on = Atomic.make false
let enabled () = Atomic.get on

(* Bumped at every [start]; the per-domain handshake key compares
   against it so each domain re-tags its ring once per window. *)
let generation = Atomic.make 0

(* ---- phase classification ---------------------------------------- *)

let prefixed p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Classify a runtime phase name.  The 5.1 phase vocabulary is flat
   strings like "minor_local_roots", "major_slice", "stw_api_barrier",
   "explicit_gc_full_major", "domain_condition_wait" — prefix rules
   cover it without enumerating every variant. *)
let classify name =
  if prefixed "minor" name || prefixed "explicit_gc_minor" name then Minor
  else if
    prefixed "major" name || prefixed "explicit_gc_major" name
    || prefixed "explicit_gc_full" name
    || prefixed "explicit_gc_compact" name
    || prefixed "finalise" name
  then Major
  else if prefixed "stw" name || prefixed "interrupt" name then Barrier
  else Other

(* ---- consumer-side state (single-threaded: consumer, then the
   [stop] caller after the join) ------------------------------------ *)

(* Runtime phases nest; a "pause" is the outermost span.  The kind is
   decided by what the span contained: any minor phase makes it a
   minor collection (minor GCs hide inside stw spans), else any major
   phase makes it major work, else the top phase's own class. *)
type ring_state = {
  mutable depth : int;
  mutable top_kind : kind;
  mutable top_start : int64;
  mutable saw_minor : bool;
  mutable saw_major : bool;
}

type raw_pause = { rp_ring : int; rp_kind : kind; rp_start : int64; rp_stop : int64 }

let rings : (int, ring_state) Hashtbl.t = Hashtbl.create 8

let ring_state ring =
  match Hashtbl.find_opt rings ring with
  | Some st -> st
  | None ->
    let st =
      { depth = 0; top_kind = Other; top_start = 0L; saw_minor = false; saw_major = false }
    in
    Hashtbl.add rings ring st;
    st

let raw_pauses : raw_pause list ref = ref []
let lost = ref 0
let unmatched = ref 0

(* ring index -> (abs timestamp, Eprof domain id) handshakes, newest
   first.  Written only by the consumer (from the user events the
   worker domains put in their own rings). *)
let handshakes : (int, (int64 * int) list ref) Hashtbl.t = Hashtbl.create 8

let handshake_list ring =
  match Hashtbl.find_opt handshakes ring with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add handshakes ring l;
    l

(* ---- ring -> domain handshake (emitting-domain side) -------------- *)

type Re.User.tag += Dom_id

let dom_user_ev = lazy (Re.User.register "rfh.gcprof.dom" Dom_id Re.Type.int)
let hs_key = Domain.DLS.new_key (fun () -> ref (-1))

(* Tag the calling domain's ring with its Eprof id, once per capture
   window.  Costs one DLS read + int compare when already tagged. *)
let handshake () =
  let gen = Atomic.get generation in
  let last = Domain.DLS.get hs_key in
  if !last <> gen then begin
    last := gen;
    Re.User.write (Lazy.force dom_user_ev) (Util.Eprof.self ())
  end

(* ---- region quick_stat deltas (emitting-domain side) -------------- *)

let reg_mu = Mutex.create ()
let reg_snaps : (int, Gc.stat) Hashtbl.t = Hashtbl.create 64
let reg_mem : region_mem list ref = ref []

let on_emit ev =
  handshake ();
  match ev with
  | Util.Eprof.Region_begin { region; _ } ->
    let s = Gc.quick_stat () in
    Mutex.lock reg_mu;
    Hashtbl.replace reg_snaps region s;
    Mutex.unlock reg_mu
  | Util.Eprof.Region_end { region; _ } ->
    let s1 = Gc.quick_stat () in
    Mutex.lock reg_mu;
    (match Hashtbl.find_opt reg_snaps region with
    | Some s0 ->
      Hashtbl.remove reg_snaps region;
      reg_mem :=
        {
          gm_region = region;
          gm_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
          gm_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
          gm_major_words = s1.Gc.major_words -. s0.Gc.major_words;
          gm_minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
          gm_major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
        }
        :: !reg_mem
    | None -> ());
    Mutex.unlock reg_mu
  | _ -> ()

(* ---- callbacks ---------------------------------------------------- *)

let on_runtime_begin ring ts phase =
  let k = classify (Re.runtime_phase_name phase) in
  let st = ring_state ring in
  if st.depth = 0 then begin
    st.top_kind <- k;
    st.top_start <- Re.Timestamp.to_int64 ts;
    st.saw_minor <- false;
    st.saw_major <- false
  end;
  (match k with
  | Minor -> st.saw_minor <- true
  | Major -> st.saw_major <- true
  | Barrier | Other -> ());
  st.depth <- st.depth + 1

let on_runtime_end ring ts _phase =
  let st = ring_state ring in
  if st.depth = 0 then incr unmatched
  else begin
    st.depth <- st.depth - 1;
    if st.depth = 0 then begin
      let kind =
        if st.saw_minor then Minor else if st.saw_major then Major else st.top_kind
      in
      raw_pauses :=
        { rp_ring = ring; rp_kind = kind; rp_start = st.top_start; rp_stop = Re.Timestamp.to_int64 ts }
        :: !raw_pauses
    end
  end

let on_lost ring_ n = ignore (ring_ : int); lost := !lost + n

let on_dom ring ts ev v =
  match Re.User.tag ev with
  | Dom_id ->
    let l = handshake_list ring in
    l := (Re.Timestamp.to_int64 ts, v) :: !l
  | _ -> ()

let process_callbacks =
  lazy
    (Re.Callbacks.create ~runtime_begin:on_runtime_begin ~runtime_end:on_runtime_end
       ~lost_events:on_lost ()
    |> Re.Callbacks.add_user_event Re.Type.int on_dom)

(* Used to skip stale ring contents left by earlier windows: a fresh
   cursor starts at the oldest data in the ring, not at "now". *)
let discard_callbacks = lazy (Re.Callbacks.create ())

(* ---- lifecycle ---------------------------------------------------- *)

let started_once = ref false
let cursor : Re.cursor option ref = ref None
let consumer : Thread.t option ref = ref None

let consume () =
  let cbs = Lazy.force process_callbacks in
  while Atomic.get on do
    (match !cursor with
    | Some c -> ignore (Re.read_poll c cbs None : int)
    | None -> ());
    Thread.delay 0.001
  done

let reset_state () =
  Hashtbl.reset rings;
  Hashtbl.reset handshakes;
  raw_pauses := [];
  lost := 0;
  unmatched := 0;
  Mutex.lock reg_mu;
  Hashtbl.reset reg_snaps;
  reg_mem := [];
  Mutex.unlock reg_mu

let start () =
  if not (Atomic.get on) then begin
    if not !started_once then begin
      (* The runtime creates its <pid>.events ring file in this
         directory (read once, here); keep it out of the work tree. *)
      Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" (Filename.get_temp_dir_name ());
      Re.start ();
      started_once := true
    end;
    Re.pause ();
    let c = Re.create_cursor None in
    let disc = Lazy.force discard_callbacks in
    while Re.read_poll c disc None > 0 do
      ()
    done;
    reset_state ();
    cursor := Some c;
    Atomic.incr generation;
    Re.resume ();
    Atomic.set on true;
    Util.Eprof.set_emit_hook (Some on_emit);
    Util.Eprof.set_worker_start_hook (Some handshake);
    (* The caller is always part of any team it profiles. *)
    handshake ();
    consumer := Some (Thread.create consume ())
  end

let stop () =
  if not (Atomic.get on) then empty_capture
  else begin
    Util.Eprof.set_emit_hook None;
    Util.Eprof.set_worker_start_hook None;
    Atomic.set on false;
    (match !consumer with Some t -> Thread.join t | None -> ());
    consumer := None;
    let cbs = Lazy.force process_callbacks in
    (match !cursor with
    | Some c ->
      while Re.read_poll c cbs None > 0 do
        ()
      done;
      Re.free_cursor c
    | None -> ());
    cursor := None;
    Re.pause ();
    let epoch = Util.Eprof.epoch_ns () in
    (* Map a pause back to a domain: the handshake on the same ring
       nearest before it, else the earliest after (a fresh domain may
       trigger GC during spawn, before it can tag its ring). *)
    let resolve_dom ring t =
      match Hashtbl.find_opt handshakes ring with
      | None -> -1
      | Some l -> (
        let entries = List.sort (fun (a, _) (b, _) -> Int64.compare a b) !l in
        let before = List.filter (fun (ts, _) -> Int64.compare ts t <= 0) entries in
        match List.rev before with
        | (_, d) :: _ -> d
        | [] -> ( match entries with (_, d) :: _ -> d | [] -> -1))
    in
    let pauses =
      !raw_pauses
      |> List.rev_map (fun rp ->
             {
               gp_ring = rp.rp_ring;
               gp_dom = resolve_dom rp.rp_ring rp.rp_start;
               gp_kind = rp.rp_kind;
               gp_start_ns = Int64.to_int (Int64.sub rp.rp_start epoch);
               gp_dur_ns = Int64.to_int (Int64.sub rp.rp_stop rp.rp_start);
             })
      |> List.sort (fun a b -> compare (a.gp_start_ns, a.gp_ring) (b.gp_start_ns, b.gp_ring))
    in
    Mutex.lock reg_mu;
    let mems = List.sort (fun a b -> compare a.gm_region b.gm_region) !reg_mem in
    Mutex.unlock reg_mu;
    let cap =
      { c_pauses = pauses; c_region_mem = mems; c_lost_events = !lost; c_unmatched = !unmatched }
    in
    reset_state ();
    cap
  end
