type t = {
  cores : int;
  os : string;
  ocaml : string;
  git_rev : string;
  git_dirty : bool;
}

(* ------------------------------------------------------------------ *)
(* Git state.  The revision comes from reading .git directly (HEAD,
   loose refs, packed-refs) so no subprocess is needed for it; the
   dirty flag does need `git diff` and degrades to false when the
   binary is unavailable.  Everything is best-effort: a run outside a
   checkout fingerprints as "unknown"/clean.                           *)

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all) with Sys_error _ -> None

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir ".git") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let resolve_ref git_dir ref_name =
  match read_file (Filename.concat git_dir ref_name) with
  | Some s -> Some (String.trim s)
  | None -> (
    (* Loose ref absent: look in packed-refs ("<hex> <ref>" lines). *)
    match read_file (Filename.concat git_dir "packed-refs") with
    | None -> None
    | Some packed ->
      String.split_on_char '\n' packed
      |> List.find_map (fun line ->
             match String.index_opt line ' ' with
             | Some i when String.sub line (i + 1) (String.length line - i - 1) = ref_name ->
               Some (String.sub line 0 i)
             | _ -> None))

let git_rev_of root =
  let git_dir = Filename.concat root ".git" in
  match read_file (Filename.concat git_dir "HEAD") with
  | None -> None
  | Some head -> (
    let head = String.trim head in
    let prefix = "ref: " in
    if String.length head > String.length prefix
       && String.sub head 0 (String.length prefix) = prefix
    then resolve_ref git_dir (String.sub head 5 (String.length head - 5))
    else if head <> "" then Some head
    else None)

let git_dirty_of root =
  (* `git diff --quiet HEAD` exits 1 when tracked files changed; any
     other status (127 = no git, 128 = not a repo) reads as clean. *)
  Sys.command
    (Printf.sprintf "git -C %s diff --quiet HEAD >/dev/null 2>&1" (Filename.quote root))
  = 1

let collect () =
  let git_rev, git_dirty =
    match find_repo_root (Sys.getcwd ()) with
    | None -> ("unknown", false)
    | Some root ->
      ( (match git_rev_of root with Some rev -> rev | None -> "unknown"),
        git_dirty_of root )
  in
  {
    cores = Domain.recommended_domain_count ();
    os = Sys.os_type;
    ocaml = Sys.ocaml_version;
    git_rev;
    git_dirty;
  }

let cached = lazy (collect ())
let fingerprint () = Lazy.force cached

let utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* ------------------------------------------------------------------ *)
(* Codec.                                                              *)

let to_json (h : t) =
  Json.Obj
    [
      ("cores", Json.int h.cores);
      ("os", Json.Str h.os);
      ("ocaml", Json.Str h.ocaml);
      ("git_rev", Json.Str h.git_rev);
      ("git_dirty", Json.Bool h.git_dirty);
    ]

let ( let* ) = Result.bind

let field j name conv =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "host: missing or ill-typed field %S" name)

let of_json j =
  let* cores = field j "cores" Json.to_int in
  let* os = field j "os" Json.to_str in
  let* ocaml = field j "ocaml" Json.to_str in
  let* git_rev = field j "git_rev" Json.to_str in
  let* git_dirty = field j "git_dirty" Json.to_bool in
  Ok { cores; os; ocaml; git_rev; git_dirty }
