type level = Lrf | Orf | Mrf | Rfc

type cause = Sw_boundary | Hw_dependence | Bank_conflict | Scheduler

type unit_kind = Write_unit | Read_unit

type event =
  | Alloc of {
      reg : string;
      kind : unit_kind;
      strand : int;
      level : level;
      slot : int;
      first : int;
      last : int;
      reads : int;
      savings : float;
      partial : bool;
      mrf_copy : bool;
    }
  | Place of { warp : int; instr : int; level : level }
  | Fill of { warp : int; instr : int; pos : int; entry : int }
  | Evict of { warp : int; instr : int; level : level; writeback : bool }
  | Strand_boundary of { instr : int; strand : int }
  | Desched of { warp : int; instr : int; cause : cause }

(* Domain-safety: the enabled flag is atomic (the disabled fast path
   stays a single load, no lock) and sink invocation is serialized by a
   mutex, so one sink — a channel writer, a tallying closure — never
   sees two events at once even when simulators run on worker
   domains. *)

let on = Atomic.make false
let mu = Mutex.create ()
let sink : (event -> unit) ref = ref ignore

(* The sink mutex serializes every audit event from every domain, so
   it is a prime slowdown suspect under --jobs: profile it. *)
let sink_lock = Util.Eprof.lock_create "obs.audit.sink"

let is_enabled () = Atomic.get on

let emit ev =
  if Atomic.get on then begin
    Util.Eprof.lock_acquire sink_lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> !sink ev)
  end

let set_sink f =
  Mutex.lock mu;
  sink := f;
  Mutex.unlock mu;
  Atomic.set on true

let set_enabled b = Atomic.set on b

let disable () =
  Atomic.set on false;
  Mutex.lock mu;
  sink := ignore;
  Mutex.unlock mu

let memory_sink () =
  let events = ref [] in
  ((fun ev -> events := ev :: !events), fun () -> List.rev !events)

let tee sinks ev = List.iter (fun s -> s ev) sinks

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let level_name = function Lrf -> "lrf" | Orf -> "orf" | Mrf -> "mrf" | Rfc -> "rfc"

let level_of_name = function
  | "lrf" -> Some Lrf
  | "orf" -> Some Orf
  | "mrf" -> Some Mrf
  | "rfc" -> Some Rfc
  | _ -> None

let cause_name = function
  | Sw_boundary -> "sw_boundary"
  | Hw_dependence -> "hw_dependence"
  | Bank_conflict -> "bank_conflict"
  | Scheduler -> "scheduler"

let cause_of_name = function
  | "sw_boundary" -> Some Sw_boundary
  | "hw_dependence" -> Some Hw_dependence
  | "bank_conflict" -> Some Bank_conflict
  | "scheduler" -> Some Scheduler
  | _ -> None

let kind_name = function Write_unit -> "write_unit" | Read_unit -> "read_unit"

let kind_of_name = function
  | "write_unit" -> Some Write_unit
  | "read_unit" -> Some Read_unit
  | _ -> None

let to_json = function
  | Alloc a ->
    Json.Obj
      [
        ("ev", Json.Str "alloc");
        ("reg", Json.Str a.reg);
        ("kind", Json.Str (kind_name a.kind));
        ("strand", Json.int a.strand);
        ("level", Json.Str (level_name a.level));
        ("slot", Json.int a.slot);
        ("first", Json.int a.first);
        ("last", Json.int a.last);
        ("reads", Json.int a.reads);
        ("savings", Json.Num a.savings);
        ("partial", Json.Bool a.partial);
        ("mrf_copy", Json.Bool a.mrf_copy);
      ]
  | Place p ->
    Json.Obj
      [
        ("ev", Json.Str "place");
        ("warp", Json.int p.warp);
        ("instr", Json.int p.instr);
        ("level", Json.Str (level_name p.level));
      ]
  | Fill f ->
    Json.Obj
      [
        ("ev", Json.Str "fill");
        ("warp", Json.int f.warp);
        ("instr", Json.int f.instr);
        ("pos", Json.int f.pos);
        ("entry", Json.int f.entry);
      ]
  | Evict e ->
    Json.Obj
      [
        ("ev", Json.Str "evict");
        ("warp", Json.int e.warp);
        ("instr", Json.int e.instr);
        ("level", Json.Str (level_name e.level));
        ("writeback", Json.Bool e.writeback);
      ]
  | Strand_boundary s ->
    Json.Obj
      [
        ("ev", Json.Str "strand_boundary");
        ("instr", Json.int s.instr);
        ("strand", Json.int s.strand);
      ]
  | Desched d ->
    Json.Obj
      [
        ("ev", Json.Str "desched");
        ("warp", Json.int d.warp);
        ("instr", Json.int d.instr);
        ("cause", Json.Str (cause_name d.cause));
      ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "audit event: missing or ill-typed field %S" name)
  in
  let int_f name = field name Json.to_int in
  let str_f name = field name Json.to_str in
  let bool_f name = field name Json.to_bool in
  let num_f name = field name Json.to_num in
  let level_f name = field name (fun v -> Option.bind (Json.to_str v) level_of_name) in
  let* ev = str_f "ev" in
  match ev with
  | "alloc" ->
    let* reg = str_f "reg" in
    let* kind = field "kind" (fun v -> Option.bind (Json.to_str v) kind_of_name) in
    let* strand = int_f "strand" in
    let* level = level_f "level" in
    let* slot = int_f "slot" in
    let* first = int_f "first" in
    let* last = int_f "last" in
    let* reads = int_f "reads" in
    let* savings = num_f "savings" in
    let* partial = bool_f "partial" in
    let* mrf_copy = bool_f "mrf_copy" in
    Ok (Alloc { reg; kind; strand; level; slot; first; last; reads; savings; partial; mrf_copy })
  | "place" ->
    let* warp = int_f "warp" in
    let* instr = int_f "instr" in
    let* level = level_f "level" in
    Ok (Place { warp; instr; level })
  | "fill" ->
    let* warp = int_f "warp" in
    let* instr = int_f "instr" in
    let* pos = int_f "pos" in
    let* entry = int_f "entry" in
    Ok (Fill { warp; instr; pos; entry })
  | "evict" ->
    let* warp = int_f "warp" in
    let* instr = int_f "instr" in
    let* level = level_f "level" in
    let* writeback = bool_f "writeback" in
    Ok (Evict { warp; instr; level; writeback })
  | "strand_boundary" ->
    let* instr = int_f "instr" in
    let* strand = int_f "strand" in
    Ok (Strand_boundary { instr; strand })
  | "desched" ->
    let* warp = int_f "warp" in
    let* instr = int_f "instr" in
    let* cause = field "cause" (fun v -> Option.bind (Json.to_str v) cause_of_name) in
    Ok (Desched { warp; instr; cause })
  | other -> Error (Printf.sprintf "audit event: unknown kind %S" other)

let jsonl_sink oc ev =
  Json.to_channel oc (to_json ev);
  output_char oc '\n'

let pp fmt = function
  | Alloc a ->
    Format.fprintf fmt "%s %s -> %s[%d] strand %d [%d, %d) %d reads, savings %.2f%s%s"
      (kind_name a.kind) a.reg
      (String.uppercase_ascii (level_name a.level))
      a.slot a.strand a.first a.last a.reads a.savings
      (if a.partial then ", partial range" else "")
      (if a.mrf_copy then ", +MRF" else "")
  | Place p ->
    Format.fprintf fmt "place warp %d instr %d -> %s" p.warp p.instr
      (String.uppercase_ascii (level_name p.level))
  | Fill f ->
    Format.fprintf fmt "fill warp %d instr %d slot %d -> ORF[%d]" f.warp f.instr f.pos f.entry
  | Evict e ->
    Format.fprintf fmt "evict warp %d instr %d %s%s" e.warp e.instr
      (String.uppercase_ascii (level_name e.level))
      (if e.writeback then " (writeback)" else " (dead)")
  | Strand_boundary s -> Format.fprintf fmt "strand %d starts at instr %d" s.strand s.instr
  | Desched d ->
    Format.fprintf fmt "desched warp %d at instr %d (%s)" d.warp d.instr (cause_name d.cause)

let printer_sink fmt ev = Format.fprintf fmt "%a@." pp ev
