(** Regression gate: structural diff of two run manifests.

    The diff walks both JSON trees together and applies a path-aware
    comparison policy:

    - numbers that are integral on both sides (deterministic counts:
      accesses, allocator stats, traffic, metric counters, span call
      counts) are compared {e exactly};
    - other numbers (energies, ratios, histogram sums) are compared
      with relative tolerance [float_tol] — they are deterministic for
      a fixed summation order but parallel histogram merges may
      reassociate float adds;
    - paths ending in [total_ms] are wall-clock timings: skipped
      unless [timing_tol] is given;
    - [options.jobs] is ignored — parallelism must not change results,
      and the gate enforces exactly that by comparing everything else;
    - the [meta] section (host fingerprint, schema v3) is ignored
      wholesale — a baseline recorded on one host must check cleanly
      on another;
    - missing/extra object keys, array length and type mismatches are
      always violations. *)

type violation = {
  path : string;  (** e.g. ["benches[fft].counts.mrf.writes.private"] *)
  kind : string;
  expected : string;  (** baseline value *)
  actual : string;  (** current value *)
}

type report = { violations : violation list; compared : int }

val ok : report -> bool

val diff :
  ?float_tol:float ->
  ?timing_tol:float ->
  baseline:Manifest.t ->
  current:Manifest.t ->
  unit ->
  report
(** [float_tol] defaults to [1e-9].  [timing_tol] absent means timing
    fields are not compared at all. *)

val diff_json :
  ?float_tol:float ->
  ?timing_tol:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  report
(** Same policy over raw JSON trees (used by tests to perturb single
    fields without rebuilding a manifest). *)

val to_table : report -> Util.Table.t
(** Human-readable violations table; the title states OK or the
    violation count. *)

val to_json : report -> Json.t
(** Machine-readable report ([rfh baseline check --json-out]): ok
    flag, compared count and the violation list in diff order.  Fixed
    field order, byte-stable. *)
