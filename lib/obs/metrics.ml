(* Domain-safety: counters and gauges are atomics (a bump from a worker
   domain is one fetch-and-add, no lock); histograms carry their own
   mutex; each registry's intern tables are protected by the registry
   mutex.  Snapshots lock the registry, then each histogram — always in
   that order, so the two-level locking cannot deadlock.

   Both lock levels are profiled through Util.Eprof (all histogram
   mutexes share one "obs.metrics.hist" profile: contention there is a
   property of the telemetry design, not of any one histogram), so
   `rfh engine` can say how much parallel wall time is spent waiting
   on metrics. *)

let rlock = Util.Eprof.lock_create "obs.metrics.registry"
let hlock = Util.Eprof.lock_create "obs.metrics.hist"

type hist = {
  hmu : Mutex.t;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  bins : Util.Stats.histogram;  (* observations truncated to int *)
}

type registry = {
  rmu : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  gauges : (string, float Atomic.t) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create_registry () =
  {
    rmu = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let default = create_registry ()

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = hist

let intern registry table name make =
  Util.Eprof.lock_acquire rlock registry.rmu;
  let x =
    match Hashtbl.find_opt table name with
    | Some x -> x
    | None ->
      let x = make () in
      Hashtbl.add table name x;
      x
  in
  Mutex.unlock registry.rmu;
  x

let counter ?(registry = default) name =
  intern registry registry.counters name (fun () -> Atomic.make 0)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by : int)

let counter_value c = Atomic.get c

let gauge ?(registry = default) name =
  intern registry registry.gauges name (fun () -> Atomic.make 0.0)

let set_gauge g v = Atomic.set g v

let histogram ?(registry = default) name =
  intern registry registry.hists name (fun () ->
      {
        hmu = Mutex.create ();
        hcount = 0;
        hsum = 0.0;
        hmin = infinity;
        hmax = neg_infinity;
        bins = Util.Stats.histogram ();
      })

let observe h v =
  Util.Eprof.lock_acquire hlock h.hmu;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  Util.Stats.hincr h.bins (int_of_float v);
  Mutex.unlock h.hmu

type hist_summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let percentile_of_sorted_bins bins total q =
  if total = 0 then 0.0
  else begin
    let want = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let seen = ref 0 in
    let result = ref 0.0 in
    (try
       List.iter
         (fun (k, n) ->
           seen := !seen + n;
           if !seen >= want then begin
             result := float_of_int k;
             raise Exit
           end)
         bins
     with Exit -> ());
    !result
  end

(* Percentiles are computed on a copy of the bins taken under the
   histogram mutex; the O(n log n) sort happens after release, so a
   large histogram can't stall concurrent [observe] calls (or, via the
   registry lock in [snapshot], concurrent counter interning). *)
let summarize h =
  Util.Eprof.lock_acquire hlock h.hmu;
  let count = h.hcount in
  let sum = h.hsum in
  let hmin = h.hmin in
  let hmax = h.hmax in
  let bins = Util.Stats.hbins_unsorted h.bins in
  Mutex.unlock h.hmu;
  let bins = List.sort (fun (a, _) (b, _) -> compare (a : int) b) bins in
  {
    count;
    sum;
    mean = (if count = 0 then 0.0 else sum /. float_of_int count);
    min = (if count = 0 then 0.0 else hmin);
    max = (if count = 0 then 0.0 else hmax);
    p50 = percentile_of_sorted_bins bins count 0.50;
    p95 = percentile_of_sorted_bins bins count 0.95;
    p99 = percentile_of_sorted_bins bins count 0.99;
  }

let sorted_bindings table f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot ?(registry = default) () =
  (* Hold the registry lock only long enough to collect handles — the
     per-histogram summaries (which sort bins) run after release. *)
  Util.Eprof.lock_acquire rlock registry.rmu;
  let counters = sorted_bindings registry.counters Fun.id in
  let gauges = sorted_bindings registry.gauges Fun.id in
  let hists = sorted_bindings registry.hists Fun.id in
  Mutex.unlock registry.rmu;
  {
    counters = List.map (fun (k, c) -> (k, Atomic.get c)) counters;
    gauges = List.map (fun (k, g) -> (k, Atomic.get g)) gauges;
    histograms = List.map (fun (k, h) -> (k, summarize h)) hists;
  }

let diff later earlier =
  let find name xs = List.assoc_opt name xs in
  let counters =
    List.map
      (fun (name, v) ->
        (name, v - Option.value ~default:0 (find name earlier.counters)))
      later.counters
  in
  let histograms =
    List.map
      (fun (name, (s : hist_summary)) ->
        match find name earlier.histograms with
        | None -> (name, s)
        | Some e ->
          let count = s.count - e.count in
          let sum = s.sum -. e.sum in
          ( name,
            { s with count; sum; mean = (if count = 0 then 0.0 else sum /. float_of_int count) } ))
      later.histograms
  in
  { counters; gauges = later.gauges; histograms }

let reset ?(registry = default) () =
  Util.Eprof.lock_acquire rlock registry.rmu;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) registry.counters;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.0) registry.gauges;
  Hashtbl.iter
    (fun _ h ->
      Util.Eprof.lock_acquire hlock h.hmu;
      h.hcount <- 0;
      h.hsum <- 0.0;
      h.hmin <- infinity;
      h.hmax <- neg_infinity;
      Util.Stats.hreset h.bins;
      Mutex.unlock h.hmu)
    registry.hists;
  Mutex.unlock registry.rmu

let is_empty s =
  List.for_all (fun (_, v) -> v = 0) s.counters
  && s.gauges = []
  && List.for_all (fun (_, (h : hist_summary)) -> h.count = 0) s.histograms

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e12 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3f" x

let to_table ?(title = "Metrics") s =
  let t = Util.Table.create ~title ~columns:[ "Metric"; "Value"; "Detail" ] in
  List.iter
    (fun (name, v) -> Util.Table.add_row t [ name; string_of_int v; "counter" ])
    s.counters;
  List.iter
    (fun (name, v) -> Util.Table.add_row t [ name; fmt_float v; "gauge" ])
    s.gauges;
  List.iter
    (fun (name, (h : hist_summary)) ->
      Util.Table.add_row t
        [
          name;
          string_of_int h.count;
          Printf.sprintf "mean %s  min %s  p50 %s  p95 %s  p99 %s  max %s" (fmt_float h.mean)
            (fmt_float h.min) (fmt_float h.p50) (fmt_float h.p95) (fmt_float h.p99)
            (fmt_float h.max);
        ])
    s.histograms;
  t

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : hist_summary)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.int h.count);
                     ("sum", Json.Num h.sum);
                     ("mean", Json.Num h.mean);
                     ("min", Json.Num h.min);
                     ("max", Json.Num h.max);
                     ("p50", Json.Num h.p50);
                     ("p95", Json.Num h.p95);
                     ("p99", Json.Num h.p99);
                   ] ))
             s.histograms) );
    ]

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let obj_fields name =
    match Json.member name j with
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error (Printf.sprintf "metrics snapshot: %S is not an object" name)
    | None -> Error (Printf.sprintf "metrics snapshot: missing field %S" name)
  in
  let conv_all name conv fields =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match conv v with
        | Some x -> Ok ((k, x) :: acc)
        | None -> Error (Printf.sprintf "metrics snapshot: ill-typed entry %S in %S" k name))
      (Ok []) fields
    |> Result.map List.rev
  in
  let summary_of v =
    let num name = Option.bind (Json.member name v) Json.to_num in
    match
      ( Option.bind (Json.member "count" v) Json.to_int,
        num "sum", num "mean", num "min", num "max", num "p50", num "p95", num "p99" )
    with
    | Some count, Some sum, Some mean, Some min, Some max, Some p50, Some p95, Some p99 ->
      Some { count; sum; mean; min; max; p50; p95; p99 }
    | _ -> None
  in
  let* counters = Result.bind (obj_fields "counters") (conv_all "counters" Json.to_int) in
  let* gauges = Result.bind (obj_fields "gauges") (conv_all "gauges" Json.to_num) in
  let* histograms =
    Result.bind (obj_fields "histograms") (conv_all "histograms" summary_of)
  in
  Ok { counters; gauges; histograms }
