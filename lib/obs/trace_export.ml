(* The process-row (pid) registry for every track this repo can merge
   into one Perfetto trace.  Each data source gets its own pid — both
   because several run on different time bases (simulated cycles
   vs. wall clock) that would render nonsense interleaved on one row,
   and so independently-generated fragments can always be concatenated
   without collisions.  All pid constants live here; nothing else may
   hardcode one. *)

(* Wall-clock simulator spans ([Obs.Span]). *)
let spans_pid = 1

(* Counter tracks: timestamps are simulated time (cycles / instruction
   windows), byte-deterministic for a fixed seed while the span rows
   stay timing-tolerant. *)
let counters_pid = 2

(* Warp timeline slices share the counters' simulated time base but get
   their own process row: one thread per warp, so the run opens in
   Perfetto as a pipeline waterfall. *)
let timeline_pid = 3

(* Host-engine decomposition rows ([Obs.Engine.trace_events]), wall
   clock, one thread per worker domain. *)
let engine_pid = 4

(* GC pause rows ([Obs.Engine.gc_trace_events]), wall clock, one
   thread per worker domain — lines up under the engine track so a
   task slice and the collector time inside it are one vertical. *)
let gc_pid = 5

let json_of_timeline (ivs : Timeline.interval list) =
  let warps = List.sort_uniq compare (List.map (fun iv -> iv.Timeline.warp) ivs) in
  let process_metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.int timeline_pid);
        ("tid", Json.int 0);
        ("args", Json.Obj [ ("name", Json.Str "rfh warp timeline (cycles)") ]);
      ]
  in
  let thread_metadata =
    List.map
      (fun w ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int timeline_pid);
            ("tid", Json.int w);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "warp %d" w)) ]);
          ])
      warps
  in
  let events =
    List.map
      (fun (iv : Timeline.interval) ->
        Json.Obj
          [
            ("name", Json.Str (Timeline.state_name iv.Timeline.state));
            ("cat", Json.Str "rfh");
            ("ph", Json.Str "X");
            ("ts", Json.int iv.Timeline.start);
            ("dur", Json.int (iv.Timeline.stop - iv.Timeline.start));
            ("pid", Json.int timeline_pid);
            ("tid", Json.int iv.Timeline.warp);
          ])
      ivs
  in
  (process_metadata :: thread_metadata) @ events

let json_of_counters (tracks : Counters.track list) =
  let domains =
    List.concat_map (fun (t : Counters.track) -> List.map (fun s -> s.Counters.domain) t.Counters.samples) tracks
    |> List.sort_uniq compare
  in
  let process_metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.int counters_pid);
        ("tid", Json.int 0);
        ("args", Json.Obj [ ("name", Json.Str "rfh counters (simulated time)") ]);
      ]
  in
  let thread_metadata =
    List.map
      (fun did ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int counters_pid);
            ("tid", Json.int did);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if did = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" did)
                  );
                ] );
          ])
      domains
  in
  let events =
    List.concat_map
      (fun (t : Counters.track) ->
        List.map
          (fun (s : Counters.sample) ->
            Json.Obj
              [
                ("name", Json.Str t.Counters.track);
                ("cat", Json.Str "rfh");
                ("ph", Json.Str "C");
                ("ts", Json.Num s.Counters.at);
                ("pid", Json.int counters_pid);
                ("tid", Json.int s.Counters.domain);
                ("args", Json.Obj [ ("value", Json.Num s.Counters.value) ]);
              ])
          t.Counters.samples)
      tracks
  in
  (process_metadata :: thread_metadata) @ events

let earliest_span_ns spans =
  List.fold_left
    (fun acc (s : Span.span) -> if Int64.compare s.Span.ts_ns acc < 0 then s.Span.ts_ns else acc)
    (match spans with [] -> 0L | s :: _ -> s.Span.ts_ns)
    spans

let json_of_spans ?(process_name = "rfh") ?(counters = []) ?(timeline = []) ?base_ns ?(extra = [])
    spans =
  let base = match base_ns with Some b -> b | None -> earliest_span_ns spans in
  let process_metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.int spans_pid);
        ("tid", Json.int 0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  (* One trace track (tid) per recording domain: spans from a --jobs N
     fan-out render as N parallel rows in Perfetto instead of
     collapsing onto one.  Domain 0 is the main domain. *)
  let domains =
    List.sort_uniq compare (List.map (fun (s : Span.span) -> s.Span.domain) spans)
  in
  let thread_metadata =
    List.map
      (fun did ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int spans_pid);
            ("tid", Json.int did);
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if did = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" did)
                  );
                ] );
          ])
      domains
  in
  let events =
    List.map
      (fun (s : Span.span) ->
        Json.Obj
          [
            ("name", Json.Str s.Span.name);
            ("cat", Json.Str "rfh");
            ("ph", Json.Str "X");
            ("ts", Json.Num (Clock.ns_to_us (Int64.sub s.Span.ts_ns base)));
            ("dur", Json.Num (Clock.ns_to_us s.Span.dur_ns));
            ("pid", Json.int spans_pid);
            ("tid", Json.int s.Span.domain);
            ("args", Json.Obj [ ("depth", Json.int s.Span.depth) ]);
          ])
      spans
  in
  let counter_events = match counters with [] -> [] | tracks -> json_of_counters tracks in
  let timeline_events = match timeline with [] -> [] | ivs -> json_of_timeline ivs in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          ((process_metadata :: thread_metadata) @ events @ counter_events @ timeline_events
          @ extra) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string ?process_name ?counters ?timeline ?base_ns ?extra spans =
  Json.to_string (json_of_spans ?process_name ?counters ?timeline ?base_ns ?extra spans)

let write_file ~path ?process_name ?counters ?timeline ?base_ns ?extra spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (json_of_spans ?process_name ?counters ?timeline ?base_ns ?extra spans);
      output_char oc '\n')
