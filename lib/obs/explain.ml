(* Allocation-decision explainer: one structured event per live-range
   candidate the allocator considered, behind the same
   zero-cost-when-off recorder discipline as Obs.Audit.  The disabled
   fast path is a single atomic load; sink invocation is serialized so
   a fan-out over worker domains cannot interleave one sink's state. *)

type verdict =
  | Chosen
  | Ineligible of string
  | Negative_savings
  | No_free_slot

type candidate = {
  level : string;  (* "lrf" | "orf" *)
  savings : float;
  verdict : verdict;
}

type outcome =
  | To_lrf of { bank : int }
  | To_orf of { entry : int; shortened : int }
  | To_mrf

type decision = {
  seq : int;
  kernel : string;
  reg : string;
  kind : string;  (* "write_unit" | "read_unit" *)
  strand : int;
  width : int;
  first : int;
  last : int;
  defs : int list;
  covered : (int * int) list;
  dropped_reads : int;
  mrf_copy : bool;
  candidates : candidate list;
  outcome : outcome;
}

let on = Atomic.make false
let mu = Mutex.create ()
let sink : (decision -> unit) ref = ref ignore

let is_enabled () = Atomic.get on

let emit d =
  if Atomic.get on then begin
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> !sink d)
  end

let set_sink f =
  Mutex.lock mu;
  sink := f;
  Mutex.unlock mu;
  Atomic.set on true

let set_enabled b = Atomic.set on b

let disable () =
  Atomic.set on false;
  Mutex.lock mu;
  sink := ignore;
  Mutex.unlock mu

let memory_sink () =
  let events = ref [] in
  ((fun d -> events := d :: !events), fun () -> List.rev !events)

let tee sinks d = List.iter (fun s -> s d) sinks

(* ------------------------------------------------------------------ *)
(* Derived views.                                                      *)

let placed d = match d.outcome with To_lrf _ | To_orf _ -> true | To_mrf -> false

let outcome_level d =
  match d.outcome with To_lrf _ -> "lrf" | To_orf _ -> "orf" | To_mrf -> "mrf"

type instr_line = {
  pc : int;
  strand : int;
  text : string;
  pj : float;
  share : float;  (* of the kernel's total register-file energy *)
}

type kernel_report = {
  kr_kernel : string;
  kr_decisions : decision list;
  kr_instrs : instr_line list;
  kr_total_pj : float;
}

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let verdict_to_json = function
  | Chosen -> Json.Obj [ ("verdict", Json.Str "chosen") ]
  | Ineligible why ->
    Json.Obj [ ("verdict", Json.Str "ineligible"); ("why", Json.Str why) ]
  | Negative_savings -> Json.Obj [ ("verdict", Json.Str "negative_savings") ]
  | No_free_slot -> Json.Obj [ ("verdict", Json.Str "no_free_slot") ]

let verdict_of_json j =
  match Option.bind (Json.member "verdict" j) Json.to_str with
  | Some "chosen" -> Ok Chosen
  | Some "ineligible" ->
    Ok (Ineligible (Option.value ~default:"" (Option.bind (Json.member "why" j) Json.to_str)))
  | Some "negative_savings" -> Ok Negative_savings
  | Some "no_free_slot" -> Ok No_free_slot
  | Some other -> Error (Printf.sprintf "explain: unknown verdict %S" other)
  | None -> Error "explain: missing verdict"

let candidate_to_json c =
  match verdict_to_json c.verdict with
  | Json.Obj fields ->
    Json.Obj (("level", Json.Str c.level) :: ("savings", Json.Num c.savings) :: fields)
  | _ -> assert false

let candidate_of_json j =
  let ( let* ) = Result.bind in
  let* level =
    match Option.bind (Json.member "level" j) Json.to_str with
    | Some l -> Ok l
    | None -> Error "explain: candidate missing level"
  in
  let* savings =
    match Option.bind (Json.member "savings" j) Json.to_num with
    | Some s -> Ok s
    | None -> Error "explain: candidate missing savings"
  in
  let* verdict = verdict_of_json j in
  Ok { level; savings; verdict }

let outcome_to_json = function
  | To_lrf { bank } -> Json.Obj [ ("to", Json.Str "lrf"); ("bank", Json.int bank) ]
  | To_orf { entry; shortened } ->
    Json.Obj
      [ ("to", Json.Str "orf"); ("entry", Json.int entry); ("shortened", Json.int shortened) ]
  | To_mrf -> Json.Obj [ ("to", Json.Str "mrf") ]

let outcome_of_json j =
  let int_d name = Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int) in
  match Option.bind (Json.member "to" j) Json.to_str with
  | Some "lrf" -> Ok (To_lrf { bank = int_d "bank" })
  | Some "orf" -> Ok (To_orf { entry = int_d "entry"; shortened = int_d "shortened" })
  | Some "mrf" -> Ok To_mrf
  | Some other -> Error (Printf.sprintf "explain: unknown outcome %S" other)
  | None -> Error "explain: missing outcome"

let to_json d =
  Json.Obj
    [
      ("ev", Json.Str "decision");
      ("seq", Json.int d.seq);
      ("kernel", Json.Str d.kernel);
      ("reg", Json.Str d.reg);
      ("kind", Json.Str d.kind);
      ("strand", Json.int d.strand);
      ("width", Json.int d.width);
      ("first", Json.int d.first);
      ("last", Json.int d.last);
      ("defs", Json.Arr (List.map Json.int d.defs));
      ( "covered",
        Json.Arr
          (List.map
             (fun (instr, slot) -> Json.Arr [ Json.int instr; Json.int slot ])
             d.covered) );
      ("dropped_reads", Json.int d.dropped_reads);
      ("mrf_copy", Json.Bool d.mrf_copy);
      ("candidates", Json.Arr (List.map candidate_to_json d.candidates));
      ("outcome", outcome_to_json d.outcome);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "explain: missing or ill-typed field %S" name)
  in
  let* seq = field "seq" Json.to_int in
  let* kernel = field "kernel" Json.to_str in
  let* reg = field "reg" Json.to_str in
  let* kind = field "kind" Json.to_str in
  let* strand = field "strand" Json.to_int in
  let* width = field "width" Json.to_int in
  let* first = field "first" Json.to_int in
  let* last = field "last" Json.to_int in
  let* defs_j = field "defs" Json.to_list in
  let* defs =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match Json.to_int v with
        | Some i -> Ok (i :: acc)
        | None -> Error "explain: non-integer def")
      (Ok []) defs_j
    |> Result.map List.rev
  in
  let* covered_j = field "covered" Json.to_list in
  let* covered =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match Option.map (List.filter_map Json.to_int) (Json.to_list v) with
        | Some [ instr; slot ] -> Ok ((instr, slot) :: acc)
        | _ -> Error "explain: ill-formed covered read")
      (Ok []) covered_j
    |> Result.map List.rev
  in
  let* dropped_reads = field "dropped_reads" Json.to_int in
  let* mrf_copy = field "mrf_copy" Json.to_bool in
  let* cands_j = field "candidates" Json.to_list in
  let* candidates =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        let* c = candidate_of_json v in
        Ok (c :: acc))
      (Ok []) cands_j
    |> Result.map List.rev
  in
  let* outcome = Result.bind (field "outcome" Option.some) outcome_of_json in
  Ok
    {
      seq;
      kernel;
      reg;
      kind;
      strand;
      width;
      first;
      last;
      defs;
      covered;
      dropped_reads;
      mrf_copy;
      candidates;
      outcome;
    }

let jsonl_sink oc d =
  Json.to_channel oc (to_json d);
  output_char oc '\n'

let verdict_name = function
  | Chosen -> "chosen"
  | Ineligible why -> "ineligible: " ^ why
  | Negative_savings -> "negative savings"
  | No_free_slot -> "no free slot"

let pp fmt d =
  let cand c =
    Printf.sprintf "%s %.2f (%s)" (String.uppercase_ascii c.level) c.savings
      (verdict_name c.verdict)
  in
  let outcome =
    match d.outcome with
    | To_lrf { bank } -> Printf.sprintf "-> LRF[%d]" bank
    | To_orf { entry; shortened } ->
      Printf.sprintf "-> ORF[%d]%s" entry
        (if shortened > 0 then Printf.sprintf " (shortened x%d)" shortened else "")
    | To_mrf -> "-> MRF"
  in
  Format.fprintf fmt "#%d %s %s %s strand %d [%d, %d) %d reads%s %s%s %s" d.seq d.kernel
    d.kind d.reg d.strand d.first d.last (List.length d.covered)
    (if d.dropped_reads > 0 then Printf.sprintf " (-%d dropped)" d.dropped_reads else "")
    (match d.candidates with
     | [] -> ""
     | cs -> "[" ^ String.concat "; " (List.map cand cs) ^ "] ")
    (if d.mrf_copy then "+MRF " else "")
    outcome

let printer_sink fmt d = Format.fprintf fmt "%a@." pp d
