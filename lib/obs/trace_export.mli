(** Chrome trace-event export for {!Span} recordings.

    Produces the JSON object format understood by [chrome://tracing]
    and [https://ui.perfetto.dev]: a [traceEvents] array of complete
    ("X") events with microsecond [ts]/[dur], one per recorded span.
    Timestamps are rebased to the earliest span so traces start near
    zero.  Each span carries its recording domain's id as the event
    [tid] (plus a [thread_name] metadata row per domain), so a
    [--jobs N] profile renders as N parallel tracks. *)

val json_of_spans : ?process_name:string -> Span.span list -> Json.t

val to_string : ?process_name:string -> Span.span list -> string

val write_file : path:string -> ?process_name:string -> Span.span list -> unit
(** @raise Sys_error on I/O failure. *)
