(** Chrome trace-event export for {!Span} recordings, {!Counters}
    tracks and {!Timeline} warp intervals.

    Produces the JSON object format understood by [chrome://tracing]
    and the Perfetto UI: a [traceEvents] array of complete ("X")
    events with microsecond [ts]/[dur], one per recorded span.
    Timestamps are rebased to the earliest span so traces start near
    zero.  Each span carries its recording domain's id as the event
    [tid] (plus a [thread_name] metadata row per domain), so a
    [--jobs N] profile renders as N parallel tracks.

    When [counters] is supplied, each {!Counters.track} is emitted as a
    Perfetto counter ("C") track on a separate process row (pid 2,
    named ["rfh counters (simulated time)"]): counter timestamps are
    simulated time (cycles or instruction windows), not wall clock, and
    are byte-deterministic for a fixed seed.  Counter samples keep
    their recording domain as the event [tid].

    When [timeline] is supplied, each {!Timeline.interval} is emitted
    as a duration slice on a third process row (pid 3, named
    ["rfh warp timeline (cycles)"]): one thread ([tid]) per warp, slice
    name = pipeline state, [ts]/[dur] in cycles — the run opens in
    Perfetto as a per-warp pipeline waterfall alongside the counter
    tracks.  Like counters, timeline rows are byte-deterministic for a
    fixed seed.

    [?base_ns] overrides the rebase point (default: earliest span):
    pass a common absolute timestamp when combining spans with
    separately-based rows (e.g. {!Engine.trace_events}) so every
    wall-clock track shares one zero.  [?extra] appends pre-built
    trace events (already rebased by the caller) to the [traceEvents]
    array. *)

(** {1 Process-row registry}

    Every track source that can appear in a merged trace owns exactly
    one Perfetto process id, assigned here and nowhere else, so
    independently generated fragments never collide. *)

val spans_pid : int
(** [1] — wall-clock simulator spans ({!Span}). *)

val counters_pid : int
(** [2] — counter tracks, simulated time ({!Counters}). *)

val timeline_pid : int
(** [3] — per-warp pipeline timeline, simulated time ({!Timeline}). *)

val engine_pid : int
(** [4] — host-engine decomposition rows ({!Engine.trace_events}). *)

val gc_pid : int
(** [5] — GC pause rows ({!Engine.gc_trace_events}). *)

val earliest_span_ns : Span.span list -> int64
(** The default rebase point: the earliest span timestamp (0 when
    there are no spans). *)

val json_of_spans :
  ?process_name:string ->
  ?counters:Counters.track list ->
  ?timeline:Timeline.interval list ->
  ?base_ns:int64 ->
  ?extra:Json.t list ->
  Span.span list ->
  Json.t

val to_string :
  ?process_name:string ->
  ?counters:Counters.track list ->
  ?timeline:Timeline.interval list ->
  ?base_ns:int64 ->
  ?extra:Json.t list ->
  Span.span list ->
  string

val write_file :
  path:string ->
  ?process_name:string ->
  ?counters:Counters.track list ->
  ?timeline:Timeline.interval list ->
  ?base_ns:int64 ->
  ?extra:Json.t list ->
  Span.span list ->
  unit
(** @raise Sys_error on I/O failure. *)
