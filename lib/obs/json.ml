type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the string.                          *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let cp = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
           (* Encode the code point as UTF-8 (surrogates unsupported). *)
           if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
