(** Warp pipeline timeline: per-warp state intervals.

    The cycle simulator ({!Sim.Perf}) classifies every warp-cycle into
    one pipeline {!state} and reports maximal runs of equal state as
    half-open intervals [\[start, stop)] measured in cycles.  For each
    warp the emitted intervals tile [\[0, cycles)] exactly — the
    breakdown they induce sums to [cycles x warps], recorder on or off.

    The recorder follows the same discipline as {!Audit} and
    {!Explain}: disabled by default, a single atomic load on the fast
    path, a mutex-serialized sink, and deterministic end-of-run
    emission (warps ascending, then interval start ascending) so a
    fixed seed yields byte-identical JSONL at any [--jobs] setting. *)

(** Why a warp did (or did not) issue on a cycle.  One value per
    warp-cycle:
    - [Issued]: the warp issued this cycle's instruction.
    - [Wait_long_latency]: blocked on a long-latency result (or, under
      the strand-boundary policy, holding at a strand boundary while
      long-latency operations drain).
    - [Wait_short_latency]: blocked on a short-latency producer.
    - [Bank_conflict_serialization]: the operands' base latency has
      elapsed and only banked-MRF conflict serialization still blocks
      the warp (never occurs with ideal operand fetch).
    - [Descheduled_pending]: out of the active set, waiting to re-enter.
    - [No_issue_slot]: ready to issue but lost round-robin arbitration
      (an earlier warp took the cycle's issue slot) or the function
      unit's issue port is busy.
    - [Finished]: the warp's instruction stream is exhausted. *)
type state =
  | Issued
  | Wait_long_latency
  | Wait_short_latency
  | Bank_conflict_serialization
  | Descheduled_pending
  | No_issue_slot
  | Finished

val all_states : state list
(** Every state, in canonical (display and encoding) order. *)

val state_name : state -> string
val state_of_name : string -> state option

type interval = {
  warp : int;
  state : state;
  start : int;  (** first cycle in the state (inclusive) *)
  stop : int;  (** first cycle after the state (exclusive) *)
}

(** {1 Recorder} *)

val is_enabled : unit -> bool
(** One atomic load; sample it once per simulator run. *)

val emit : interval -> unit
(** No-op unless enabled.  The sink runs under the recorder mutex. *)

val set_sink : (interval -> unit) -> unit
(** Install a sink and enable the recorder. *)

val set_enabled : bool -> unit

val disable : unit -> unit
(** Disable and drop the sink. *)

val memory_sink : unit -> (interval -> unit) * (unit -> interval list)
(** In-memory sink plus a getter returning intervals in emission order. *)

val jsonl_sink : out_channel -> interval -> unit
(** One compact JSON object per line; the caller owns the channel. *)

val printer_sink : Format.formatter -> interval -> unit

val tee : (interval -> unit) list -> interval -> unit

(** {1 Encoding} *)

val to_json : interval -> Json.t
val of_json : Json.t -> (interval, string) result
val pp : Format.formatter -> interval -> unit
