(** Minimal JSON tree, printer and parser.

    The observability subsystem emits Chrome trace files, JSONL audit
    logs and metric snapshots; tests parse them back to validate
    structure.  No external JSON dependency is available in the build
    image, so this is a small self-contained implementation covering
    the JSON we produce (objects, arrays, strings, finite numbers,
    booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** Integer-valued {!Num}. *)

val to_string : t -> string
(** Compact single-line rendering.  Integral numbers print without a
    decimal point; non-finite numbers print as [null] (JSON has no
    representation for them). *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup on an object ([None] on anything else). *)

val to_num : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
