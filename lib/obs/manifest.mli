(** Schema-versioned, machine-readable run manifest.

    A manifest captures everything a regression gate needs to decide
    whether a run changed: the options fingerprint, per-benchmark
    deterministic results (access counts, allocator stats, traffic,
    IPC, normalized energy), the full {!Metrics} snapshot, {!Span}
    phase totals and a digest of the allocator audit stream.

    Encoding is byte-stable: field order is fixed, numbers print
    through {!Json} idempotently, so [to_string] after a
    decode/re-encode round-trip reproduces the original bytes. *)

val schema_version : int
(** Current manifest schema version (bumped on incompatible change). *)

type options = {
  warps : int;
  seed : int;
  jobs : int;
  orf_entries : int;
  lrf : string;  (** allocator LRF mode, e.g. ["split"] *)
  params_fp : string;  (** hex digest of [Options.params_fp] *)
  benchmarks : string list;
}

(** Active-set residency of the manifest's reference perf run (schema
    v2): entry/exit traffic through the two-level scheduler's active
    set and deschedule events by cause. *)
type sched = {
  entries : int;
  exits : int;
  resident_cycles : int;
  desched_long_latency : int;
  desched_strand_boundary : int;
  desched_bank_conflict : int;
}

type bench = {
  bench : string;
  strands : int;
  write_units : int;
  read_units : int;
  lrf_allocs : int;
  orf_allocs : int;
  partial_allocs : int;
  dynamic_instrs : int;
  desched_events : int;
  capped_warps : int;
  norm_energy : float;
  total_pj : float;
  baseline_pj : float;
  ipc : float;
  stalls : (string * int) list;
      (** warp-cycles per stall cause ({!Timeline.state_name} keys, in
          {!Timeline.all_states} order); sums to [cycles x warps] of the
          reference perf run, so the regression gate catches any
          scheduling-behavior drift exactly *)
  sched : sched;
  counts : Json.t;  (** [Energy.Counts.to_json] shape, kept opaque here *)
  energy_pj : (string * (float * float)) list;
      (** per level: (access, wire) energy in pJ, MRF..LRF order *)
}

type phase = { phase : string; calls : int; total_ms : float }

type audit = {
  alloc_events : int;
  top_allocs : Json.t list;  (** [Audit.to_json] of the top Alloc events *)
}

type t = {
  options : options;
  meta : Host.t;
      (** host fingerprint (cores, OS, OCaml version, git rev/dirty) —
          provenance only: {!Regress} ignores the whole [meta] section,
          so baselines check cleanly across differing hosts (schema
          v3) *)
  benches : bench list;
  metrics : Metrics.snapshot;
  phases : phase list;  (** sorted by phase name for stable diffs *)
  audit : audit;
}

val to_json : t -> Json.t
val to_string : t -> string
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val write_file : path:string -> t -> unit
(** Writes [to_string] plus a trailing newline. *)

val read_file : path:string -> (t, string) result

val mean_norm_energy : t -> float
(** Arithmetic mean of per-benchmark normalized energy (0 if empty). *)
