(** Schema-versioned, machine-readable run manifest.

    A manifest captures everything a regression gate needs to decide
    whether a run changed: the options fingerprint, per-benchmark
    deterministic results (access counts, allocator stats, traffic,
    IPC, normalized energy), the full {!Metrics} snapshot, {!Span}
    phase totals and a digest of the allocator audit stream.

    Encoding is byte-stable: field order is fixed, numbers print
    through {!Json} idempotently, so [to_string] after a
    decode/re-encode round-trip reproduces the original bytes. *)

val schema_version : int
(** Current manifest schema version (bumped on incompatible change). *)

type options = {
  warps : int;
  seed : int;
  jobs : int;
  orf_entries : int;
  lrf : string;  (** allocator LRF mode, e.g. ["split"] *)
  params_fp : string;  (** hex digest of [Options.params_fp] *)
  benchmarks : string list;
}

type bench = {
  bench : string;
  strands : int;
  write_units : int;
  read_units : int;
  lrf_allocs : int;
  orf_allocs : int;
  partial_allocs : int;
  dynamic_instrs : int;
  desched_events : int;
  capped_warps : int;
  norm_energy : float;
  total_pj : float;
  baseline_pj : float;
  ipc : float;
  counts : Json.t;  (** [Energy.Counts.to_json] shape, kept opaque here *)
  energy_pj : (string * (float * float)) list;
      (** per level: (access, wire) energy in pJ, MRF..LRF order *)
}

type phase = { phase : string; calls : int; total_ms : float }

type audit = {
  alloc_events : int;
  top_allocs : Json.t list;  (** [Audit.to_json] of the top Alloc events *)
}

type t = {
  options : options;
  benches : bench list;
  metrics : Metrics.snapshot;
  phases : phase list;  (** sorted by phase name for stable diffs *)
  audit : audit;
}

val to_json : t -> Json.t
val to_string : t -> string
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val write_file : path:string -> t -> unit
(** Writes [to_string] plus a trailing newline. *)

val read_file : path:string -> (t, string) result

val mean_norm_energy : t -> float
(** Arithmetic mean of per-benchmark normalized energy (0 if empty). *)
