type span = { name : string; ts_ns : int64; dur_ns : int64; depth : int; domain : int }

(* Domain-safety: the completed-span list is appended under a mutex;
   nesting depth is domain-local (a worker's spans nest within that
   worker's own stack, starting at depth 0), so spans recorded from a
   parallel fan-out interleave in the list but keep sensible depths. *)

let on = Atomic.make false
let mu = Mutex.create ()

(* Completed-span appends from worker domains all funnel through this
   mutex; profiled so `rfh engine` can price span recording. *)
let spans_lock = Util.Eprof.lock_create "obs.span.spans"
let completed : span list ref = ref []
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let set_enabled b = Atomic.set on b

let enabled () = Atomic.get on

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    let ts = Clock.now_ns () in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let dur = Int64.sub (Clock.now_ns ()) ts in
        let s =
          {
            name;
            ts_ns = ts;
            dur_ns = dur;
            depth = d;
            domain = (Domain.self () :> int);
          }
        in
        Util.Eprof.lock_acquire spans_lock mu;
        completed := s :: !completed;
        Mutex.unlock mu)
      f
  end

let recorded () =
  Mutex.lock mu;
  let l = !completed in
  Mutex.unlock mu;
  l

let spans () = List.sort (fun a b -> Int64.compare a.ts_ns b.ts_ns) (recorded ())

let reset () =
  Mutex.lock mu;
  completed := [];
  Mutex.unlock mu;
  Domain.DLS.get depth_key := 0

let totals () =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let calls, total = Option.value ~default:(0, 0.0) (Hashtbl.find_opt table s.name) in
      Hashtbl.replace table s.name (calls + 1, total +. Clock.ns_to_ms s.dur_ns))
    (recorded ());
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) table []
  |> List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a)
