type span = { name : string; ts_ns : int64; dur_ns : int64; depth : int }

let on = ref false
let completed : span list ref = ref []
let depth = ref 0

let set_enabled b = on := b

let enabled () = !on

let with_span name f =
  if not !on then f ()
  else begin
    let ts = Clock.now_ns () in
    let d = !depth in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let dur = Int64.sub (Clock.now_ns ()) ts in
        completed := { name; ts_ns = ts; dur_ns = dur; depth = d } :: !completed)
      f
  end

let spans () = List.sort (fun a b -> Int64.compare a.ts_ns b.ts_ns) !completed

let reset () =
  completed := [];
  depth := 0

let totals () =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let calls, total = Option.value ~default:(0, 0.0) (Hashtbl.find_opt table s.name) in
      Hashtbl.replace table s.name (calls + 1, total +. Clock.ns_to_ms s.dur_ns))
    !completed;
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) table []
  |> List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a)
