(* Warp pipeline timeline: one interval per maximal run of cycles a
   warp spends in a single pipeline state, behind the same
   zero-cost-when-off recorder discipline as Obs.Audit / Obs.Explain.
   The disabled fast path is a single atomic load; sink invocation is
   serialized so fan-out over worker domains cannot interleave one
   sink's state. *)

type state =
  | Issued
  | Wait_long_latency
  | Wait_short_latency
  | Bank_conflict_serialization
  | Descheduled_pending
  | No_issue_slot
  | Finished

let all_states =
  [
    Issued;
    Wait_long_latency;
    Wait_short_latency;
    Bank_conflict_serialization;
    Descheduled_pending;
    No_issue_slot;
    Finished;
  ]

let state_name = function
  | Issued -> "issued"
  | Wait_long_latency -> "wait_long_latency"
  | Wait_short_latency -> "wait_short_latency"
  | Bank_conflict_serialization -> "bank_conflict_serialization"
  | Descheduled_pending -> "descheduled_pending"
  | No_issue_slot -> "no_issue_slot"
  | Finished -> "finished"

let state_of_name = function
  | "issued" -> Some Issued
  | "wait_long_latency" -> Some Wait_long_latency
  | "wait_short_latency" -> Some Wait_short_latency
  | "bank_conflict_serialization" -> Some Bank_conflict_serialization
  | "descheduled_pending" -> Some Descheduled_pending
  | "no_issue_slot" -> Some No_issue_slot
  | "finished" -> Some Finished
  | _ -> None

type interval = { warp : int; state : state; start : int; stop : int }

let on = Atomic.make false
let mu = Mutex.create ()
let sink : (interval -> unit) ref = ref ignore

let is_enabled () = Atomic.get on

let emit iv =
  if Atomic.get on then begin
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> !sink iv)
  end

let set_sink f =
  Mutex.lock mu;
  sink := f;
  Mutex.unlock mu;
  Atomic.set on true

let set_enabled b = Atomic.set on b

let disable () =
  Atomic.set on false;
  Mutex.lock mu;
  sink := ignore;
  Mutex.unlock mu

let memory_sink () =
  let events = ref [] in
  ((fun iv -> events := iv :: !events), fun () -> List.rev !events)

let tee sinks iv = List.iter (fun s -> s iv) sinks

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let to_json iv =
  Json.Obj
    [
      ("ev", Json.Str "interval");
      ("warp", Json.int iv.warp);
      ("state", Json.Str (state_name iv.state));
      ("start", Json.int iv.start);
      ("stop", Json.int iv.stop);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "timeline: missing or ill-typed field %S" name)
  in
  let* ev = field "ev" Json.to_str in
  if ev <> "interval" then Error (Printf.sprintf "timeline: unknown event kind %S" ev)
  else
    let* warp = field "warp" Json.to_int in
    let* state = field "state" (fun v -> Option.bind (Json.to_str v) state_of_name) in
    let* start = field "start" Json.to_int in
    let* stop = field "stop" Json.to_int in
    if stop < start then Error "timeline: interval ends before it starts"
    else Ok { warp; state; start; stop }

let jsonl_sink oc iv =
  Json.to_channel oc (to_json iv);
  output_char oc '\n'

let pp fmt iv =
  Format.fprintf fmt "warp %d [%d, %d) %s" iv.warp iv.start iv.stop (state_name iv.state)

let printer_sink fmt iv = Format.fprintf fmt "%a@." pp iv
