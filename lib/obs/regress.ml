type violation = { path : string; kind : string; expected : string; actual : string }

type report = { violations : violation list; compared : int }

let ok r = r.violations = []

(* ------------------------------------------------------------------ *)
(* Path policy.                                                        *)

(* [options.jobs] is how the run was parallelised, not what it
   computed; a check at --jobs 4 must pass against a --jobs 1
   baseline.  The manifest [meta] section (schema v3) is the host
   fingerprint — provenance, not results: a baseline recorded on one
   machine must check cleanly on another, so the whole subtree is
   skipped, including keys present on only one side. *)
let ignored_path path =
  path = "options.jobs" || path = "meta"
  || (String.length path >= 5 && String.sub path 0 5 = "meta.")

let is_timing_path path =
  let suffix = ".total_ms" in
  let n = String.length path and k = String.length suffix in
  path = "total_ms" || (n >= k && String.sub path (n - k) k = suffix)

(* Array elements are addressed by their "name"/"phase" member when
   present ("benches[VectorAdd]") so a reordering reads as the moves it
   is, not as a wall of value mismatches at shifted indices. *)
let elem_label v =
  let str name = Option.bind (Json.member name v) Json.to_str in
  match str "name" with Some s -> Some s | None -> str "phase"

let join path seg = if path = "" then seg else path ^ "." ^ seg

let join_index path i v =
  let seg = match elem_label v with Some s -> s | None -> string_of_int i in
  Printf.sprintf "%s[%s]" path seg

(* ------------------------------------------------------------------ *)
(* Value rendering for the violations table.                           *)

let render = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Num _ as v -> Json.to_string v
  | Json.Str s -> s
  | Json.Arr l -> Printf.sprintf "<array of %d>" (List.length l)
  | Json.Obj l -> Printf.sprintf "<object of %d>" (List.length l)

let type_name = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Num _ -> "number"
  | Json.Str _ -> "string"
  | Json.Arr _ -> "array"
  | Json.Obj _ -> "object"

(* ------------------------------------------------------------------ *)
(* Diff.                                                               *)

let is_integral f = Float.is_integer f && Float.abs f < 1e15

let rel_delta a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale = 0.0 then 0.0 else Float.abs (a -. b) /. scale

let diff_json ?(float_tol = 1e-9) ?timing_tol ~baseline ~current () =
  let violations = ref [] and compared = ref 0 in
  let violate path kind expected actual =
    violations := { path; kind; expected; actual } :: !violations
  in
  let rec go path a b =
    if not (ignored_path path) then
      match (a, b) with
      | Json.Num x, Json.Num y when is_timing_path path -> (
        match timing_tol with
        | None -> ()
        | Some tol ->
          incr compared;
          if rel_delta x y > tol then
            violate path
              (Printf.sprintf "timing drift > %g" tol)
              (render a) (render b))
      | Json.Num x, Json.Num y ->
        incr compared;
        if is_integral x && is_integral y then begin
          if x <> y then violate path "count mismatch" (render a) (render b)
        end
        else if rel_delta x y > float_tol then
          violate path
            (Printf.sprintf "value drift > %g" float_tol)
            (render a) (render b)
      | Json.Str x, Json.Str y ->
        incr compared;
        if x <> y then violate path "string mismatch" x y
      | Json.Bool x, Json.Bool y ->
        incr compared;
        if x <> y then violate path "bool mismatch" (render a) (render b)
      | Json.Null, Json.Null -> incr compared
      | Json.Arr xs, Json.Arr ys ->
        let nx = List.length xs and ny = List.length ys in
        if nx <> ny then
          violate path "array length mismatch" (string_of_int nx) (string_of_int ny)
        else
          List.iteri (fun i (x, y) -> go (join_index path i x) x y)
            (List.combine xs ys)
      | Json.Obj xs, Json.Obj ys ->
        List.iter
          (fun (k, x) ->
            match List.assoc_opt k ys with
            | Some y -> go (join path k) x y
            | None ->
              if not (ignored_path (join path k)) then
                violate (join path k) "missing in current" (render x) "-")
          xs;
        List.iter
          (fun (k, y) ->
            if (not (List.mem_assoc k xs)) && not (ignored_path (join path k)) then
              violate (join path k) "extra in current" "-" (render y))
          ys
      | _ ->
        violate path "type mismatch" (type_name a) (type_name b)
  in
  go "" baseline current;
  { violations = List.rev !violations; compared = !compared }

let diff ?float_tol ?timing_tol ~baseline ~current () =
  diff_json ?float_tol ?timing_tol ~baseline:(Manifest.to_json baseline)
    ~current:(Manifest.to_json current) ()

let to_table r =
  let title =
    if ok r then Printf.sprintf "Regression check: OK (%d values compared)" r.compared
    else
      Printf.sprintf "Regression check: %d violation%s (%d values compared)"
        (List.length r.violations)
        (if List.length r.violations = 1 then "" else "s")
        r.compared
  in
  let table = Util.Table.create ~title ~columns:[ "path"; "kind"; "baseline"; "current" ] in
  List.iter (fun v -> Util.Table.add_row table [ v.path; v.kind; v.expected; v.actual ])
    r.violations;
  table

let to_json r =
  Json.Obj
    [
      ("ok", Json.Bool (ok r));
      ("compared", Json.int r.compared);
      ( "violations",
        Json.Arr
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("path", Json.Str v.path);
                   ("kind", Json.Str v.kind);
                   ("expected", Json.Str v.expected);
                   ("actual", Json.Str v.actual);
                 ])
             r.violations) );
    ]
