(** Drift detection over the cross-run {!History}.

    Each numeric quantity a history record carries (per-benchmark IPC
    and normalized energy, perfgate ns-per-run / p90 / minor words,
    engine shares, wall time) becomes a named {!series} of sparse
    points [(record_index, value)] — sparse because records from
    different appenders carry different sections.  {!analyze} applies
    robust statistics: median and MAD for location/scale, a
    MAD-derived z-score for the latest point, and change-point
    segmentation (binary segmentation on segment medians, significance
    gated by both the local MAD and a relative floor so flat series
    never split).  The verdict compares the last segment against the
    one before it:

    - no change points: {!Stable}, or {!Noisy} when the spread
      (MAD/|median|) exceeds {!noisy_ratio};
    - shifted beyond the series tolerance in the bad direction:
      {!Regressed};
    - shifted beyond tolerance in the good direction: {!Improved}.

    {!gate} is the CI face: exit 0 clean, 1 when any {e gated} series
    sustained a regression (naming the series, the offending record
    and its git revision), 2 when the history is too short to judge. *)

type direction =
  | Lower_better  (** ns/run, energy, stall shares… *)
  | Higher_better  (** IPC, useful share… *)

type verdict = Stable | Improved | Regressed | Noisy

type series = {
  s_name : string;  (** e.g. ["bench.VectorAdd.ipc"], ["perfgate.ns_per_run"] *)
  s_dir : direction;
  s_tol : float;  (** relative shift below which a step is not a verdict *)
  s_gated : bool;  (** whether {!gate} may fail CI on this series *)
  points : (int * float) array;  (** (record index, value), index-ascending *)
}

type analysis = {
  a_series : series;
  a_median : float;
  a_mad : float;  (** raw median absolute deviation (unscaled) *)
  a_latest : float;
  a_latest_z : float;  (** robust z of the latest point vs the whole series *)
  a_change_points : int list;
      (** positions into [points] where a new segment starts, ascending *)
  a_shift : float;
      (** relative shift of the last segment median vs the previous
          segment's (0 when there is no change point) *)
  a_verdict : verdict;
}

val noisy_ratio : float
(** MAD/|median| spread above which a series without change points is
    called {!Noisy} instead of {!Stable}. *)

val median : float array -> float
(** 0 on the empty array. *)

val mad : float array -> float
(** Median absolute deviation about the median (unscaled; multiply by
    1.4826 for a normal-consistent sigma).  0 on the empty array. *)

val rolling_median : window:int -> float array -> float array
(** Trailing-window median smoother, same length as the input. *)

val sparkline : float array -> string
(** Unicode block sparkline (▁▂▃▄▅▆▇█) of the values, min-max
    normalized; empty string for the empty array. *)

val change_points : ?min_seg:int -> float array -> int list
(** Binary segmentation: ascending positions where a new segment
    starts.  The candidate split minimizes the summed
    least-absolute-deviations cost of the two halves (exact
    localization at a clean step); it is accepted only when the
    median jump clears both 3 sigmas of the pooled residual deviation
    about the segment medians and a 5% relative floor, and both sides
    keep at least [min_seg] (default 3) points. *)

val analyze : series -> analysis

val verdict_name : verdict -> string
(** ["stable"], ["improved"], ["regressed"], ["noisy"]. *)

val series_of_history : History.t list -> series list
(** All series present in the records, stable order: per-benchmark
    IPC (gated, higher better, tol 5%) and normalized energy (gated,
    lower better, tol 5%) in first-seen bench order, then perfgate
    ns-per-run (gated, tol 35% — it is wall-clock), p90 (ungated),
    minor/promoted/major words (gated, tol 50%), engine shares
    (ungated), GC share of useful (gated, tol 35%), GC minor words
    (gated, tol 50%), GC pause p99 (ungated), wall time (ungated). *)

type failure = {
  f_series : string;
  f_index : int;  (** history record index where the last segment starts *)
  f_rev : string;  (** git revision of that record *)
  f_source : string;  (** offending record's appender (["bench"], ["rfh"] …) *)
  f_jobs : int;  (** offending record's jobs setting *)
  f_before : float;  (** previous segment median *)
  f_after : float;  (** last segment median *)
}

type gate_result = {
  g_exit : int;  (** 0 clean, 1 sustained drift, 2 not enough history *)
  g_failures : failure list;
  g_analyses : analysis list;
}

val gate : ?min_records:int -> History.t list -> gate_result
(** [min_records] defaults to 3: with fewer records the result is
    exit 2 and no analyses are attempted. *)
