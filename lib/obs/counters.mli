(** Counter-track recorder for per-cycle simulator telemetry.

    Simulators sample named series — active warps, register-file
    accesses per window, occupancy — while they run; {!Trace_export}
    renders them as Perfetto counter ("C") tracks alongside the span
    tracks.  Sample timestamps are {e simulated} time supplied by the
    caller (cycle count, dynamic-instruction window index), never wall
    clock, so fixed-seed runs produce byte-identical tracks.

    Disabled by default.  [is_enabled] is one atomic load — simulators
    sample it once per run and skip all bookkeeping when off. *)

type sample = {
  at : float;  (** simulated time: cycle or instruction-window index *)
  value : float;
  domain : int;  (** recording domain, for per-track tid separation *)
}

type track = { track : string; samples : sample list }

val is_enabled : unit -> bool

val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded samples. *)

val sample : string -> at:float -> float -> unit
(** [sample track ~at v] appends one point; no-op when disabled. *)

val tracks : unit -> track list
(** All recorded tracks, sorted by name; samples within a track sorted
    by [(at, domain)] with emission order breaking ties. *)
