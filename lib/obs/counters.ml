(* Counter-track recorder for the simulators.  Unlike Span, samples
   are stamped with *simulated* time supplied by the caller (a cycle
   number or a dynamic-instruction window index), never wall clock —
   so a fixed-seed run produces byte-identical tracks and the Perfetto
   export of the counter rows can be golden-tested.  Disabled by
   default; the enabled check is one atomic load, sampled once per
   simulator run. *)

type sample = { at : float; value : float; domain : int }

type track = { track : string; samples : sample list }

let on = Atomic.make false
let mu = Mutex.create ()

(* Reverse-chronological per emission; grouped and re-sorted on read. *)
let store : (string * sample) list ref = ref []

let is_enabled () = Atomic.get on

let set_enabled b = Atomic.set on b

let reset () =
  Mutex.lock mu;
  store := [];
  Mutex.unlock mu

let sample name ~at value =
  if Atomic.get on then begin
    let s = { at; value; domain = (Domain.self () :> int) } in
    Mutex.lock mu;
    store := (name, s) :: !store;
    Mutex.unlock mu
  end

let tracks () =
  Mutex.lock mu;
  let raw = !store in
  Mutex.unlock mu;
  let tbl = Hashtbl.create 16 in
  (* [raw] is newest-first; fold right so per-track lists keep emission
     order before the stable sort by timestamp. *)
  List.iter
    (fun (name, s) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl name) in
      Hashtbl.replace tbl name (s :: prev))
    raw;
  Hashtbl.fold (fun name samples acc -> (name, samples) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (track, samples) ->
         {
           track;
           samples = List.stable_sort (fun a b -> compare (a.at, a.domain) (b.at, b.domain)) samples;
         })
