(** Nestable phase spans over the monotonic clock.

    Recording is off by default: {!with_span} costs one branch and no
    allocation until {!set_enabled}[ true].  Spans nest lexically
    (partition inside allocate inside a benchmark span, etc.); each
    completed span records its start timestamp, duration and nesting
    depth, which {!Trace_export} maps onto Chrome complete ("X")
    events. *)

type span = {
  name : string;
  ts_ns : int64;   (** start, monotonic *)
  dur_ns : int64;
  depth : int;     (** nesting depth at entry (0 = top level) *)
  domain : int;    (** recording domain's id — one trace track each *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk, recording a span when enabled.  Exception-safe: the
    span is recorded (and the depth restored) even if the thunk
    raises. *)

val spans : unit -> span list
(** Completed spans in chronological (start-time) order. *)

val reset : unit -> unit
(** Drop recorded spans (does not change enablement). *)

val totals : unit -> (string * (int * float)) list
(** Per-name aggregation of recorded spans: [(name, (calls, total_ms))]
    sorted by descending total time.  Nested spans are counted in their
    parents too, as in any inclusive-time profile. *)
