(** Allocator / scheduler audit log: a structured event sink.

    The allocator, the strand partitioner and both simulators report
    decisions here instead of formatting ad-hoc debug text.  The sink
    is a plain function behind a flag: when disabled (the default),
    instrumented call sites see [is_enabled () = false] and skip event
    construction entirely, so the simulator hot path neither allocates
    nor calls anything.

    Event semantics:
    - [Alloc]: the allocator placed a value (write unit) or a read
      range (read unit) at an upper level, with the estimated energy
      savings that justified it.
    - [Place]: a dynamic register-file write observed by the traffic
      simulator — one event per counted write, so summing [Place]
      events per level reproduces {!Energy.Counts} write totals
      exactly.
    - [Fill]: an MRF-served read whose value is simultaneously written
      into an ORF entry (read-operand allocation, paper Sec. 4.4).
    - [Evict]: a hardware register-file-cache or HW-LRF eviction;
      [writeback] tells whether the value was live and written back.
    - [Strand_boundary]: a static strand start in the compiled kernel.
    - [Desched]: a warp deschedule event.  The cause distinguishes
      compiler-scheduled strand boundaries ([Sw_boundary]), hardware
      long-latency dependence ([Hw_dependence]), banked-MRF conflict
      serialization extending a dependence past its base latency
      ([Bank_conflict]), and an unattributed scheduler decision
      ([Scheduler], kept for decoding older logs). *)

type level = Lrf | Orf | Mrf | Rfc

type cause = Sw_boundary | Hw_dependence | Bank_conflict | Scheduler

type unit_kind = Write_unit | Read_unit

type event =
  | Alloc of {
      reg : string;
      kind : unit_kind;
      strand : int;
      level : level;  (** [Lrf] or [Orf] *)
      slot : int;     (** LRF bank or ORF entry *)
      first : int;    (** occupancy interval, instr ids *)
      last : int;
      reads : int;    (** covered reads *)
      savings : float;
      partial : bool; (** range was iteratively shortened *)
      mrf_copy : bool;
    }
  | Place of { warp : int; instr : int; level : level }
  | Fill of { warp : int; instr : int; pos : int; entry : int }
  | Evict of { warp : int; instr : int; level : level; writeback : bool }
  | Strand_boundary of { instr : int; strand : int }
  | Desched of { warp : int; instr : int; cause : cause }

val is_enabled : unit -> bool
(** Cheap flag read — call sites guard event construction with it. *)

val emit : event -> unit
(** Forward to the installed sink; a no-op when disabled. *)

val set_sink : (event -> unit) -> unit
(** Install a sink and enable emission. *)

val set_enabled : bool -> unit
(** Toggle emission without replacing the sink. *)

val disable : unit -> unit
(** Stop emitting and drop the installed sink. *)

(** {1 Sinks} *)

val memory_sink : unit -> (event -> unit) * (unit -> event list)
(** Collecting sink; the getter returns events in emission order. *)

val jsonl_sink : out_channel -> event -> unit
(** One compact JSON object per line. *)

val printer_sink : Format.formatter -> event -> unit
(** Human-readable one-line-per-event rendering (the [-v] output). *)

val tee : (event -> unit) list -> event -> unit

(** {1 Encoding} *)

val level_name : level -> string
val cause_name : cause -> string
val to_json : event -> Json.t
val of_json : Json.t -> (event, string) result
val pp : Format.formatter -> event -> unit
