let m_kernels = Obs.Metrics.counter "transform.reschedule.kernels"
let m_blocks = Obs.Metrics.counter "transform.reschedule.blocks"
let m_instrs_moved = Obs.Metrics.counter "transform.reschedule.instrs_moved"

let block ?(hoist_loads = true) (b : Ir.Block.t) =
  let instrs = b.Ir.Block.instrs in
  let n = Array.length instrs in
  let graph = Depgraph.build b in
  let indegree = Array.init n (fun i -> List.length (Depgraph.preds graph i)) in
  let scheduled_pos = Array.make n (-1) in
  let order = Array.make n (-1) in
  let is_bra i = instrs.(i).Ir.Instr.op = Ir.Op.Bra in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if indegree.(i) = 0 then ready := i :: !ready
  done;
  (* Backward closure of the long-latency operations: everything that
     must execute before some load can issue.  Scheduling this closure
     first clusters the loads at the top of the block, so all their
     consumers share one strand boundary (the Sec. 6.4 prescription) —
     a consumer scheduled between two loads would otherwise split the
     cluster and re-fragment the strands. *)
  let feeds_long_latency = Array.make n false in
  if hoist_loads then begin
    let rec mark i =
      if not feeds_long_latency.(i) then begin
        feeds_long_latency.(i) <- true;
        List.iter mark (Depgraph.preds graph i)
      end
    in
    Array.iteri (fun i instr -> if Ir.Instr.is_long_latency instr then mark i) instrs
  end;
  let priority i =
    (* Larger = scheduled sooner. *)
    let chain_affinity =
      List.fold_left
        (fun acc p -> if scheduled_pos.(p) >= 0 then max acc scheduled_pos.(p) else acc)
        (-1) (Depgraph.preds graph i)
    in
    let hoist = if feeds_long_latency.(i) then 1 else 0 in
    (hoist, chain_affinity, -i)
  in
  for pos = 0 to n - 1 do
    let candidates = List.filter (fun i -> not (is_bra i)) !ready in
    let pool = if candidates = [] then !ready else candidates in
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some i
          | Some j -> if priority i > priority j then Some i else acc)
        None pool
    in
    match best with
    | None -> invalid_arg "Reschedule.block: dependence graph has a cycle"
    | Some i ->
      order.(pos) <- i;
      scheduled_pos.(i) <- pos;
      ready := List.filter (fun x -> x <> i) !ready;
      List.iter
        (fun s ->
          indegree.(s) <- indegree.(s) - 1;
          if indegree.(s) = 0 then ready := s :: !ready)
        (Depgraph.succs graph i)
  done;
  order

let kernel ?hoist_loads (k : Ir.Kernel.t) =
  Obs.Span.with_span "transform.reschedule" @@ fun () ->
  Obs.Metrics.incr m_kernels;
  let next_id = ref 0 in
  let blocks =
    Array.map
      (fun (b : Ir.Block.t) ->
        let order = block ?hoist_loads b in
        Obs.Metrics.incr m_blocks;
        let moved = ref 0 in
        Array.iteri (fun pos idx -> if idx <> pos then incr moved) order;
        Obs.Metrics.incr ~by:!moved m_instrs_moved;
        let instrs =
          Array.map
            (fun idx ->
              let i = b.Ir.Block.instrs.(idx) in
              let id = !next_id in
              incr next_id;
              Ir.Instr.make ~id ~op:i.Ir.Instr.op ~dst:i.Ir.Instr.dst ~srcs:i.Ir.Instr.srcs
                ~width:i.Ir.Instr.width)
            order
        in
        { b with Ir.Block.instrs })
      k.Ir.Kernel.blocks
  in
  Ir.Kernel.make ~name:(k.Ir.Kernel.name ^ "+resched") ~blocks ~num_regs:k.Ir.Kernel.num_regs
