let m_kernels = Obs.Metrics.counter "transform.unroll.kernels"
let m_loops = Obs.Metrics.counter "transform.unroll.loops_unrolled"
let m_copies = Obs.Metrics.counter "transform.unroll.copies_inserted"

let self_loop (b : Ir.Block.t) =
  match b.Ir.Block.term with
  | Ir.Terminator.Branch { target; behavior = Ir.Terminator.Loop n }
    when target = b.Ir.Block.label -> Some n
  | _ -> None

let candidates (k : Ir.Kernel.t) =
  Array.to_list k.Ir.Kernel.blocks
  |> List.filter_map (fun (b : Ir.Block.t) ->
         Option.map (fun n -> (b.Ir.Block.label, n)) (self_loop b))

(* The trailing Bra and, when its predicate has no other use in the
   block, the predicate's definition: the instructions dropped from
   non-final copies. *)
let exit_test_indices (b : Ir.Block.t) =
  let n = Array.length b.Ir.Block.instrs in
  if n = 0 then []
  else begin
    let last = b.Ir.Block.instrs.(n - 1) in
    if last.Ir.Instr.op <> Ir.Op.Bra then []
    else begin
      match last.Ir.Instr.srcs with
      | [ pred ] ->
        let pred_uses =
          Array.to_list b.Ir.Block.instrs
          |> List.filter (fun (i : Ir.Instr.t) -> List.mem pred i.Ir.Instr.srcs)
          |> List.length
        in
        let def_idx =
          let found = ref None in
          Array.iteri
            (fun idx (i : Ir.Instr.t) -> if i.Ir.Instr.dst = Some pred then found := Some idx)
            b.Ir.Block.instrs;
          !found
        in
        (match def_idx with
         | Some d when pred_uses = 1 -> [ d; n - 1 ]
         | Some _ | None -> [ n - 1 ])
      | _ -> [ n - 1 ]
    end
  end

let kernel ~factor (k : Ir.Kernel.t) =
  if factor < 1 then invalid_arg "Unroll.kernel: factor < 1";
  Obs.Span.with_span "transform.unroll" @@ fun () ->
  Obs.Metrics.incr m_kernels;
  let next_id = ref 0 in
  let next_reg = ref k.Ir.Kernel.num_regs in
  let copy_instr (i : Ir.Instr.t) =
    let id = !next_id in
    incr next_id;
    Ir.Instr.make ~id ~op:i.Ir.Instr.op ~dst:i.Ir.Instr.dst ~srcs:i.Ir.Instr.srcs
      ~width:i.Ir.Instr.width
  in
  let blocks =
    Array.map
      (fun (b : Ir.Block.t) ->
        match self_loop b with
        | Some trips when factor > 1 && trips mod factor = 0 && trips >= factor ->
          let dropped = exit_test_indices b in
          (* Register renaming across copies: without it, a copy's
             definitions carry WAR/WAW dependences on the previous
             copy's reads, serializing the copies and defeating load
             clustering.  Non-final copies define fresh names; the
             final copy restores the original names, so the backedge
             and the loop exit see the registers they expect. *)
          let current : (Ir.Reg.t, Ir.Reg.t) Hashtbl.t = Hashtbl.create 16 in
          let rename r = Option.value ~default:r (Hashtbl.find_opt current r) in
          let body_copy ~final =
            Array.to_list b.Ir.Block.instrs
            |> List.filteri (fun idx _ -> final || not (List.mem idx dropped))
            |> List.map (fun (i : Ir.Instr.t) ->
                   let srcs = List.map rename i.Ir.Instr.srcs in
                   let dst =
                     Option.map
                       (fun d ->
                         if final then begin
                           Hashtbl.replace current d d;
                           d
                         end
                         else begin
                           let d' = !next_reg in
                           next_reg := !next_reg + Ir.Width.words i.Ir.Instr.width;
                           Hashtbl.replace current d d';
                           d'
                         end)
                       i.Ir.Instr.dst
                   in
                   let id = !next_id in
                   incr next_id;
                   Ir.Instr.make ~id ~op:i.Ir.Instr.op ~dst ~srcs ~width:i.Ir.Instr.width)
          in
          let copies =
            List.concat (List.init factor (fun c -> body_copy ~final:(c = factor - 1)))
          in
          Obs.Metrics.incr m_loops;
          Obs.Metrics.incr
            ~by:(List.length copies - Array.length b.Ir.Block.instrs)
            m_copies;
          {
            b with
            Ir.Block.instrs = Array.of_list copies;
            term =
              Ir.Terminator.Branch
                { target = b.Ir.Block.label; behavior = Ir.Terminator.Loop (trips / factor) };
          }
        | Some _ | None -> { b with Ir.Block.instrs = Array.map copy_instr b.Ir.Block.instrs })
      k.Ir.Kernel.blocks
  in
  Ir.Kernel.make
    ~name:(Printf.sprintf "%s+unroll%d" k.Ir.Kernel.name factor)
    ~blocks ~num_regs:!next_reg
