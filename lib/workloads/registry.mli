(** The benchmark registry: every application of paper Table 1, as a
    synthetic kernel modelling its register-usage signature. *)

type entry = Bench.entry = {
  name : string;
  suite : Suite.t;
  description : string;  (** what the modelled computation looks like *)
  kernel : Ir.Kernel.t Lazy.t;        (** the dominant kernel *)
  kernels : Ir.Kernel.t list Lazy.t;  (** every kernel, dominant first *)
}

val all : unit -> entry list
(** All 36 benchmarks, CUDA SDK then Parboil then Rodinia. *)

val by_suite : Suite.t -> entry list

val find : string -> entry option
(** Case-insensitive lookup by name or short alias ({!aliases}). *)

val aliases : (string * string) list
(** Lower-case short aliases, e.g. [("mm", "MatrixMul")]. *)

val names : unit -> string list
