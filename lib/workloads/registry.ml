type entry = Bench.entry = {
  name : string;
  suite : Suite.t;
  description : string;
  kernel : Ir.Kernel.t Lazy.t;
  kernels : Ir.Kernel.t list Lazy.t;
}

let all () = Cuda_sdk.benchmarks @ Parboil.benchmarks @ Rodinia.benchmarks

let by_suite s = List.filter (fun e -> e.suite = s) (all ())

(* Short aliases accepted wherever a benchmark name is (e.g. `-b mm`). *)
let aliases =
  [
    ("mm", "MatrixMul");
    ("vadd", "VectorAdd");
    ("reduce", "Reduction");
    ("mandel", "Mandelbrot");
    ("conv", "ConvolutionSeparable");
  ]

let find name =
  let lower = String.lowercase_ascii name in
  let canonical =
    match List.assoc_opt lower aliases with
    | Some target -> String.lowercase_ascii target
    | None -> lower
  in
  List.find_opt (fun e -> String.lowercase_ascii e.name = canonical) (all ())

let names () = List.map (fun e -> e.name) (all ())
