type artefact =
  | Fig2 | Fig11 | Fig12 | Fig13 | Fig14 | Fig15
  | Perf | Encoding | Limit | Ablation | Divergence | Pressure | Scheduling | Tables

let artefact_names =
  [
    ("fig2", Fig2); ("fig11", Fig11); ("fig12", Fig12); ("fig13", Fig13); ("fig14", Fig14);
    ("fig15", Fig15); ("perf", Perf); ("encoding", Encoding); ("limit", Limit);
    ("ablation", Ablation); ("divergence", Divergence); ("pressure", Pressure);
    ("scheduling", Scheduling); ("tables", Tables);
  ]

(* Direct match, not a list scan: [name_of] runs per span label on the
   artefact hot path. *)
let name_of = function
  | Fig2 -> "fig2"
  | Fig11 -> "fig11"
  | Fig12 -> "fig12"
  | Fig13 -> "fig13"
  | Fig14 -> "fig14"
  | Fig15 -> "fig15"
  | Perf -> "perf"
  | Encoding -> "encoding"
  | Limit -> "limit"
  | Ablation -> "ablation"
  | Divergence -> "divergence"
  | Pressure -> "pressure"
  | Scheduling -> "scheduling"
  | Tables -> "tables"

let tables_of opts a =
  Obs.Span.with_span ("artefact:" ^ name_of a) (fun () ->
      match a with
      | Fig2 -> Fig2.tables opts
      | Fig11 -> Access_breakdown.fig11_tables opts
      | Fig12 -> Access_breakdown.fig12_tables opts
      | Fig13 -> [ Energy_sweep.table opts ]
      | Fig14 -> [ Energy_breakdown.table opts ]
      | Fig15 -> [ Per_benchmark.table opts ]
      | Perf -> [ Perf_study.table opts; Perf_study.stall_table opts ]
      | Encoding -> [ Encoding.table opts ]
      | Limit -> [ Limit.table opts ]
      | Ablation -> [ Ablation.table opts ]
      | Divergence -> [ Divergence.table opts ]
      | Pressure -> [ Pressure_study.table opts ]
      | Scheduling -> [ Scheduling.table opts ]
      | Tables ->
        [ Config_tables.table2 (); Config_tables.table3 opts.Options.params;
          Config_tables.table4 opts.Options.params ])

let run opts artefacts =
  List.iter (fun a -> List.iter Util.Table.print (tables_of opts a)) artefacts

let run_all opts = run opts (List.map snd artefact_names)

let clear_caches () =
  Sweep.clear_caches ();
  Perf_study.clear_cache ()

let metrics_table () = Obs.Metrics.to_table (Obs.Metrics.snapshot ())
