(** Run experiments and render their tables. *)

type artefact =
  | Fig2 | Fig11 | Fig12 | Fig13 | Fig14 | Fig15
  | Perf | Encoding | Limit | Ablation | Divergence | Pressure | Scheduling | Tables

val artefact_names : (string * artefact) list
(** CLI-facing names: ["fig2"], ..., ["perf"], ["encoding"], ["limit"],
    ["tables"]. *)

val tables_of : Options.t -> artefact -> Util.Table.t list

val run : Options.t -> artefact list -> unit
(** Print each artefact's tables to stdout. *)

val run_all : Options.t -> unit

val clear_caches : unit -> unit
(** Reset every experiment memo table (cold-regeneration timing). *)

val name_of : artefact -> string
(** CLI-facing name of one artefact (reverse of {!artefact_names}). *)

val metrics_table : unit -> Util.Table.t
(** Snapshot of the global {!Obs.Metrics} registry as a table — what
    the [--metrics] flag appends after an artefact's output. *)
