(** Shared experiment options. *)

type t = {
  warps : int;       (** machine-resident warps simulated per kernel *)
  seed : int;        (** branch-behaviour seed *)
  params : Energy.Params.t;
  params_fp : string;
  (** precomputed {!fingerprint} of [params] — always update the two
      together (use {!with_params}); cache keys depend on it *)
  benchmarks : Workloads.Registry.entry list;  (** workload selection *)
  jobs : int;
  (** worker domains for per-benchmark fan-out; [1] (the default) is
      the exact serial path *)
}

val default : unit -> t
(** 32 warps, the paper's energy parameters, all 36 benchmarks,
    serial. *)

val quick : unit -> t
(** 8 warps — same normalized results for warp-uniform kernels, used by
    the benchmark harness. *)

val with_benchmarks : t -> string list -> t
(** Restrict to the named benchmarks.
    @raise Invalid_argument on an unknown name. *)

val with_params : t -> Energy.Params.t -> t
(** Replace the energy parameters and refresh [params_fp]. *)

val with_jobs : t -> int -> t
(** Set the fan-out width; [0] means {!Util.Pool.default_jobs} ()
    (all recommended domains), anything below 1 clamps to serial. *)

val fingerprint : Energy.Params.t -> string
(** Marshal-based full-fidelity key component for memo tables. *)
