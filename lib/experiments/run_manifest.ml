(* Builds the machine-readable run manifest: the paper's best
   three-level configuration against the single-level baseline on the
   option's workload set, plus allocator stats, an audit digest, the
   metrics snapshot and phase totals.

   Two phases.  Phase A replays the allocator serially per benchmark
   with an audit sink installed — audit order stays deterministic and
   the event stream digests to the same counts at any --jobs.  Phase B
   fans the traffic/energy/IPC runs out over [opts.jobs] domains; every
   value it stores is either an exact integer count or a float computed
   in a fixed per-benchmark order, so manifests agree byte-for-byte
   across jobs settings (metrics histogram sums excepted — the regress
   gate compares those with a relative tolerance). *)

let lrf_name = function
  | Alloc.Config.No_lrf -> "no_lrf"
  | Alloc.Config.Unified -> "unified"
  | Alloc.Config.Split -> "split"

let scheme_of_lrf = function
  | Alloc.Config.No_lrf -> Sweep.Sw_two
  | Alloc.Config.Unified -> Sweep.Sw_three_unified
  | Alloc.Config.Split -> Sweep.Sw_three_split

let top_allocs_limit = 10

(* Phase A: serial allocator replay with auditing on.  Returns the
   summed allocator stats per benchmark plus the audit digest.  The
   previously installed audit sink (if any) is dropped. *)
let allocator_pass (opts : Options.t) ~entries ~lrf =
  let events = ref 0 and allocs = ref [] in
  Obs.Audit.set_sink (fun ev ->
      incr events;
      match ev with Obs.Audit.Alloc _ -> allocs := ev :: !allocs | _ -> ());
  let config = Alloc.Config.make ~orf_entries:entries ~lrf ~params:opts.Options.params () in
  let stats =
    List.map
      (fun e ->
        Obs.Span.with_span "manifest.allocate" (fun () ->
            List.fold_left
              (fun (acc : Alloc.Allocator.stats) ctx ->
                let _placement, s = Alloc.Allocator.run config ctx in
                {
                  Alloc.Allocator.write_units = acc.write_units + s.Alloc.Allocator.write_units;
                  read_units = acc.read_units + s.Alloc.Allocator.read_units;
                  lrf_allocated = acc.lrf_allocated + s.Alloc.Allocator.lrf_allocated;
                  orf_allocated = acc.orf_allocated + s.Alloc.Allocator.orf_allocated;
                  partial_allocated = acc.partial_allocated + s.Alloc.Allocator.partial_allocated;
                })
              {
                Alloc.Allocator.write_units = 0;
                read_units = 0;
                lrf_allocated = 0;
                orf_allocated = 0;
                partial_allocated = 0;
              }
              (Sweep.contexts e)))
      opts.Options.benchmarks
  in
  Obs.Audit.disable ();
  let top =
    (* Stable sort: emission order (deterministic — the replay is
       serial) breaks savings ties. *)
    List.stable_sort
      (fun a b ->
        match (a, b) with
        | Obs.Audit.Alloc a, Obs.Audit.Alloc b -> compare b.savings a.savings
        | _ -> 0)
      (List.rev !allocs)
  in
  let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
  ( stats,
    {
      Obs.Manifest.alloc_events = !events;
      top_allocs = List.map Obs.Audit.to_json (take top_allocs_limit top);
    } )

(* Phase B: parallel traffic/energy/IPC per benchmark. *)
let bench_row (opts : Options.t) scheme ~entries (e : Workloads.Registry.entry)
    (stats : Alloc.Allocator.stats) =
  let run = Sweep.run opts e scheme ~entries in
  let base = Sweep.run opts e Sweep.Baseline ~entries:1 in
  let perf =
    Obs.Span.with_span "manifest.perf" (fun () ->
        Sim.Perf.run ~warps:opts.Options.warps ~seed:opts.Options.seed
          ~scheduler:(Sim.Perf.Two_level 8) ~policy:Sim.Perf.On_dependence (Sweep.context e))
  in
  let strands =
    List.fold_left
      (fun acc ctx -> acc + Strand.Partition.num_strands ctx.Alloc.Context.partition)
      0 (Sweep.contexts e)
  in
  let traffic = run.Sweep.traffic in
  {
    Obs.Manifest.bench = e.Workloads.Registry.name;
    strands;
    write_units = stats.Alloc.Allocator.write_units;
    read_units = stats.Alloc.Allocator.read_units;
    lrf_allocs = stats.Alloc.Allocator.lrf_allocated;
    orf_allocs = stats.Alloc.Allocator.orf_allocated;
    partial_allocs = stats.Alloc.Allocator.partial_allocated;
    dynamic_instrs = traffic.Sim.Traffic.dynamic_instrs;
    desched_events = traffic.Sim.Traffic.desched_events;
    capped_warps = traffic.Sim.Traffic.capped_warps;
    norm_energy =
      Util.Stats.ratio run.Sweep.energy.Energy.Counts.total base.Sweep.energy.Energy.Counts.total;
    total_pj = run.Sweep.energy.Energy.Counts.total;
    baseline_pj = base.Sweep.energy.Energy.Counts.total;
    ipc = perf.Sim.Perf.ipc;
    stalls = Sim.Perf.breakdown_fields perf.Sim.Perf.stalls;
    sched =
      {
        Obs.Manifest.entries = perf.Sim.Perf.sched.Sim.Perf.entries;
        exits = perf.Sim.Perf.sched.Sim.Perf.exits;
        resident_cycles = perf.Sim.Perf.sched.Sim.Perf.resident_cycles;
        desched_long_latency = perf.Sim.Perf.sched.Sim.Perf.desched_long_latency;
        desched_strand_boundary = perf.Sim.Perf.sched.Sim.Perf.desched_strand_boundary;
        desched_bank_conflict = perf.Sim.Perf.sched.Sim.Perf.desched_bank_conflict;
      };
    counts = Energy.Counts.to_json traffic.Sim.Traffic.counts;
    energy_pj =
      List.map
        (fun (le : Energy.Counts.level_energy) ->
          (Energy.Counts.json_key le.Energy.Counts.level,
           (le.Energy.Counts.access, le.Energy.Counts.wire)))
        run.Sweep.energy.Energy.Counts.levels;
  }

let collect ?(entries = 3) ?(lrf = Alloc.Config.Split) (opts : Options.t) =
  let spans_were = Obs.Span.enabled () in
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_enabled spans_were)
    (fun () ->
      Obs.Span.with_span "manifest.collect" (fun () ->
          let scheme = scheme_of_lrf lrf in
          let stats, audit = allocator_pass opts ~entries ~lrf in
          let rows =
            Util.Pool.parallel_map ~jobs:opts.Options.jobs
              ~label:"manifest.bench_row"
              (fun (e, s) -> bench_row opts scheme ~entries e s)
              (List.combine opts.Options.benchmarks stats)
          in
          let phases =
            Obs.Span.totals ()
            |> List.map (fun (phase, (calls, total_ms)) ->
                   { Obs.Manifest.phase; calls; total_ms })
            |> List.sort (fun a b -> compare a.Obs.Manifest.phase b.Obs.Manifest.phase)
          in
          {
            Obs.Manifest.meta = Obs.Host.fingerprint ();
            options =
              {
                Obs.Manifest.warps = opts.Options.warps;
                seed = opts.Options.seed;
                jobs = opts.Options.jobs;
                orf_entries = entries;
                lrf = lrf_name lrf;
                params_fp = Digest.to_hex (Digest.string opts.Options.params_fp);
                benchmarks =
                  List.map (fun e -> e.Workloads.Registry.name) opts.Options.benchmarks;
              };
            benches = rows;
            metrics = Obs.Metrics.snapshot ();
            phases;
            audit;
          }))
