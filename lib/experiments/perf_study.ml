let active_range = [ 1; 2; 4; 6; 8; 16; 32 ]

(* Memoize the full simulator result, not just the IPC scalar: the
   stall table re-reads the same (bench, config) runs the IPC table
   triggered, so each configuration is simulated exactly once. *)
let result_cache : (string * int * Sim.Perf.policy * int, Sim.Perf.result) Util.Memo.t =
  Util.Memo.create ~name:"perf_study.result" 64

let result (opts : Options.t) (e : Workloads.Registry.entry) ~policy ~active =
  let key = (e.Workloads.Registry.name, active, policy, opts.Options.seed) in
  Util.Memo.find_or_compute result_cache key (fun () ->
      let scheduler = if active >= 32 then Sim.Perf.Single_level else Sim.Perf.Two_level active in
      (* The domain-local scratch makes every run on this worker reuse
         one set of simulation buffers across the whole sweep. *)
      Sim.Perf.run ~warps:32 ~seed:opts.Options.seed ~max_dynamic_per_warp:600
        ~scratch:(Sim.Scratch.domain_local ()) ~scheduler ~policy (Sweep.context e))

let ipc opts e ~policy ~active = (result opts e ~policy ~active).Sim.Perf.ipc

let relative_ipc (opts : Options.t) ~policy ~active =
  Util.Stats.mean
    (Sweep.per_bench opts (fun e ->
         let single = ipc opts e ~policy:Sim.Perf.On_dependence ~active:32 in
         Util.Stats.ratio (ipc opts e ~policy ~active) single))

let table opts =
  let t =
    Util.Table.create
      ~title:"Two-level warp scheduler: mean IPC relative to the single-level scheduler"
      ~columns:[ "Active warps"; "HW policy (on dependence)"; "SW policy (strand boundaries)" ]
  in
  List.iter
    (fun active ->
      Util.Table.add_float_row t (string_of_int active) ~decimals:3
        [
          relative_ipc opts ~policy:Sim.Perf.On_dependence ~active;
          relative_ipc opts ~policy:Sim.Perf.At_strand_boundaries ~active;
        ])
    active_range;
  t

let stall_share (opts : Options.t) ~policy ~active cause =
  Util.Stats.mean
    (Sweep.per_bench opts (fun e ->
         let r = result opts e ~policy ~active in
         let total = Sim.Perf.breakdown_total r.Sim.Perf.stalls in
         if total = 0 then 0.0
         else
           100.0
           *. float_of_int (Sim.Perf.breakdown_get r.Sim.Perf.stalls cause)
           /. float_of_int total))

let stall_table opts =
  let t =
    Util.Table.create
      ~title:"Where the cycles went: mean % of warp-cycles per stall cause (32 warps)"
      ~columns:
        [ "Stall cause"; "Single-level"; "Two-level 8 (HW policy)"; "Two-level 8 (SW policy)" ]
  in
  List.iter
    (fun cause ->
      Util.Table.add_float_row t (Obs.Timeline.state_name cause) ~decimals:2
        [
          stall_share opts ~policy:Sim.Perf.On_dependence ~active:32 cause;
          stall_share opts ~policy:Sim.Perf.On_dependence ~active:8 cause;
          stall_share opts ~policy:Sim.Perf.At_strand_boundaries ~active:8 cause;
        ])
    Obs.Timeline.all_states;
  t

let clear_cache () = Util.Memo.reset result_cache
