let active_range = [ 1; 2; 4; 6; 8; 16; 32 ]

let ipc_cache : (string * int * Sim.Perf.policy * int, float) Util.Memo.t = Util.Memo.create 64

let ipc (opts : Options.t) (e : Workloads.Registry.entry) ~policy ~active =
  let key = (e.Workloads.Registry.name, active, policy, opts.Options.seed) in
  Util.Memo.find_or_compute ipc_cache key (fun () ->
      let scheduler = if active >= 32 then Sim.Perf.Single_level else Sim.Perf.Two_level active in
      let r =
        Sim.Perf.run ~warps:32 ~seed:opts.Options.seed ~max_dynamic_per_warp:600 ~scheduler
          ~policy (Sweep.context e)
      in
      r.Sim.Perf.ipc)

let relative_ipc (opts : Options.t) ~policy ~active =
  Util.Stats.mean
    (Sweep.per_bench opts (fun e ->
         let single = ipc opts e ~policy:Sim.Perf.On_dependence ~active:32 in
         Util.Stats.ratio (ipc opts e ~policy ~active) single))

let table opts =
  let t =
    Util.Table.create
      ~title:"Two-level warp scheduler: mean IPC relative to the single-level scheduler"
      ~columns:[ "Active warps"; "HW policy (on dependence)"; "SW policy (strand boundaries)" ]
  in
  List.iter
    (fun active ->
      Util.Table.add_float_row t (string_of_int active) ~decimals:3
        [
          relative_ipc opts ~policy:Sim.Perf.On_dependence ~active;
          relative_ipc opts ~policy:Sim.Perf.At_strand_boundaries ~active;
        ])
    active_range;
  t

let clear_cache () = Util.Memo.reset ipc_cache
