type t = {
  warps : int;
  seed : int;
  params : Energy.Params.t;
  params_fp : string;
  benchmarks : Workloads.Registry.entry list;
  jobs : int;
}

(* Full-fidelity fingerprint of the energy parameters: Hashtbl.hash
   truncates deep structures and would alias distinct wire models.
   Computed once per option set — cache keys reuse the string instead
   of re-marshalling on every lookup. *)
let fingerprint (p : Energy.Params.t) = Marshal.to_string p []

let default () =
  {
    warps = 32;
    seed = 0x5eed;
    params = Energy.Params.default;
    params_fp = fingerprint Energy.Params.default;
    benchmarks = Workloads.Registry.all ();
    jobs = 1;
  }

let quick () = { (default ()) with warps = 8 }

let with_benchmarks t names =
  let entries =
    List.map
      (fun n ->
        match Workloads.Registry.find n with
        | Some e -> e
        | None -> invalid_arg (Printf.sprintf "unknown benchmark %S" n))
      names
  in
  { t with benchmarks = entries }

let with_params t params = { t with params; params_fp = fingerprint params }

let with_jobs t jobs = { t with jobs = (if jobs = 0 then Util.Pool.default_jobs () else max 1 jobs) }
