type scheme =
  | Baseline
  | Sw_two
  | Sw_three_unified
  | Sw_three_split
  | Hw_two
  | Hw_three

let scheme_name = function
  | Baseline -> "baseline"
  | Sw_two -> "SW"
  | Sw_three_unified -> "SW LRF"
  | Sw_three_split -> "SW LRF Split"
  | Hw_two -> "HW"
  | Hw_three -> "HW LRF"

let all_schemes = [ Baseline; Sw_two; Sw_three_unified; Sw_three_split; Hw_two; Hw_three ]

type run = {
  traffic : Sim.Traffic.result;
  energy : Energy.Counts.breakdown;
}

(* Memo tables are domain-safe with in-flight dedup: when the figures
   fan out per benchmark, two domains wanting the same compiled context
   or (benchmark, scheme, entries) run compute it once and share it.
   The in-flight claim also means each entry's kernel lazies are forced
   by exactly one domain. *)
let context_cache : (string, Alloc.Context.t list) Util.Memo.t =
  Util.Memo.create ~name:"sweep.context" 64

let contexts (e : Workloads.Registry.entry) =
  Util.Memo.find_or_compute context_cache e.Workloads.Registry.name (fun () ->
      List.map Alloc.Context.create (Lazy.force e.Workloads.Registry.kernels))

let context e = List.hd (contexts e)

let per_bench (opts : Options.t) f =
  Util.Pool.parallel_map ~jobs:opts.Options.jobs ~label:"sweep.per_bench" f opts.Options.benchmarks

(* Aggregate the per-kernel traffic results of one application. *)
let merge_traffic (results : Sim.Traffic.result list) =
  match results with
  | [] -> invalid_arg "Sweep: no kernels"
  | [ r ] -> r
  | _ ->
    let counts = Energy.Counts.create () in
    List.iter (fun (r : Sim.Traffic.result) -> Energy.Counts.merge_into ~dst:counts r.Sim.Traffic.counts)
      results;
    {
      Sim.Traffic.counts;
      per_strand =
        Array.concat (List.map (fun (r : Sim.Traffic.result) -> r.Sim.Traffic.per_strand) results);
      dynamic_instrs =
        List.fold_left (fun acc (r : Sim.Traffic.result) -> acc + r.Sim.Traffic.dynamic_instrs) 0 results;
      desched_events =
        List.fold_left (fun acc (r : Sim.Traffic.result) -> acc + r.Sim.Traffic.desched_events) 0 results;
      capped_warps =
        List.fold_left (fun acc (r : Sim.Traffic.result) -> acc + r.Sim.Traffic.capped_warps) 0 results;
    }

let run_cache : (string * scheme * int * int * int * string, run) Util.Memo.t =
  Util.Memo.create ~name:"sweep.run" 256

let sim_scheme (opts : Options.t) ctx scheme ~entries =
  match scheme with
  | Baseline -> Sim.Traffic.Baseline
  | Sw_two | Sw_three_unified | Sw_three_split ->
    let lrf =
      match scheme with
      | Sw_two -> Alloc.Config.No_lrf
      | Sw_three_unified -> Alloc.Config.Unified
      | _ -> Alloc.Config.Split
    in
    let config = Alloc.Config.make ~orf_entries:entries ~lrf ~params:opts.Options.params () in
    let placement = Alloc.Allocator.place config ctx in
    Sim.Traffic.Sw { config; placement }
  | Hw_two -> Sim.Traffic.Hw (Sim.Traffic.hw_defaults ~rfc_entries:entries)
  | Hw_three ->
    Sim.Traffic.Hw { (Sim.Traffic.hw_defaults ~rfc_entries:entries) with Sim.Traffic.with_lrf = true }

let run (opts : Options.t) (e : Workloads.Registry.entry) scheme ~entries =
  let key =
    ( e.Workloads.Registry.name, scheme, entries, opts.Options.warps, opts.Options.seed,
      opts.Options.params_fp )
  in
  Util.Memo.find_or_compute run_cache key (fun () ->
      let traffic =
        merge_traffic
          (List.map
             (fun ctx ->
               (* Domain-local scratch: each sweep worker reuses one set
                  of walker/outstanding buffers across all its runs. *)
               Sim.Traffic.run ~warps:opts.Options.warps ~seed:opts.Options.seed
                 ~scratch:(Sim.Scratch.domain_local ()) ctx
                 (sim_scheme opts ctx scheme ~entries))
             (contexts e))
      in
      let energy =
        Obs.Span.with_span "energy" (fun () ->
            Energy.Counts.energy opts.Options.params ~orf_entries:entries
              traffic.Sim.Traffic.counts)
      in
      { traffic; energy })

let energy_ratio opts e scheme ~entries =
  let base = (run opts e Baseline ~entries:1).energy.Energy.Counts.total in
  let this = (run opts e scheme ~entries).energy.Energy.Counts.total in
  Util.Stats.ratio this base

let mean_energy_ratio (opts : Options.t) scheme ~entries =
  Util.Stats.mean (per_bench opts (fun e -> energy_ratio opts e scheme ~entries))

let mean_access_ratio (opts : Options.t) scheme ~entries direction =
  let levels = [ Energy.Model.Lrf; Energy.Model.Rfc; Energy.Model.Orf; Energy.Model.Mrf ] in
  let per_bench_row (e : Workloads.Registry.entry) =
    let base = (run opts e Baseline ~entries:1).traffic.Sim.Traffic.counts in
    let this = (run opts e scheme ~entries).traffic.Sim.Traffic.counts in
    let total_base =
      float_of_int
        (match direction with
         | `Reads -> Energy.Counts.total_reads base
         | `Writes -> Energy.Counts.total_writes base)
    in
    List.map
      (fun level ->
        let n =
          match direction with
          | `Reads -> Energy.Counts.reads this level
          | `Writes -> Energy.Counts.writes this level
        in
        Util.Stats.ratio (float_of_int n) total_base)
      levels
  in
  let rows = per_bench opts per_bench_row in
  List.mapi
    (fun i level -> (level, Util.Stats.mean (List.map (fun row -> List.nth row i) rows)))
    levels

let clear_caches () =
  Util.Memo.reset context_cache;
  Util.Memo.reset run_cache
