(** Shared machinery for the evaluation figures: per-benchmark traffic
    under every register-file organisation, with memoization across
    figures (the same (benchmark, scheme, size) run backs several
    tables). *)

type scheme =
  | Baseline       (** single-level register file *)
  | Sw_two         (** compiler ORF + MRF *)
  | Sw_three_unified
  | Sw_three_split (** the paper's best configuration *)
  | Hw_two         (** hardware RFC + MRF (prior work) *)
  | Hw_three       (** hardware LRF + RFC + MRF *)

val scheme_name : scheme -> string
val all_schemes : scheme list

type run = {
  traffic : Sim.Traffic.result;
  (** aggregated over the application's kernels: merged counts and
      summed event counters; [per_strand] concatenates the kernels'
      per-strand arrays in kernel order *)
  energy : Energy.Counts.breakdown;  (** priced at the run's ORF size *)
}

val run :
  Options.t -> Workloads.Registry.entry -> scheme -> entries:int -> run
(** Memoized on (benchmark, scheme, entries, warps, seed). *)

val context : Workloads.Registry.entry -> Alloc.Context.t
(** Memoized compiler context for the benchmark's dominant kernel. *)

val contexts : Workloads.Registry.entry -> Alloc.Context.t list
(** Contexts for every kernel of the application, dominant first;
    the energy runs aggregate traffic across all of them. *)

val per_bench : Options.t -> (Workloads.Registry.entry -> 'a) -> 'a list
(** Map over the option's workload set on [opts.jobs] domains
    ({!Util.Pool.parallel_map}); results are in benchmark order, so
    downstream tables are identical to a serial run.  The memo tables
    behind {!run} and {!context} are domain-safe with in-flight
    deduplication. *)

val clear_caches : unit -> unit
(** Drop all memoized runs and contexts (used by the benchmark harness
    to time cold regeneration). *)

val energy_ratio : Options.t -> Workloads.Registry.entry -> scheme -> entries:int -> float
(** Total access+wire energy normalized to the single-level baseline
    on the same benchmark. *)

val mean_energy_ratio : Options.t -> scheme -> entries:int -> float
(** Arithmetic mean of per-benchmark normalized energy over the
    option's workload set. *)

val mean_access_ratio :
  Options.t ->
  scheme ->
  entries:int ->
  [ `Reads | `Writes ] ->
  (Energy.Model.level * float) list
(** Per-level accesses normalized to the baseline's total (the stacked
    bars of Figs. 11 and 12), averaged over benchmarks. *)
