(* Value traces are collected per benchmark on the option's worker
   pool; each task forces only its own entry's kernels, and the merge
   runs serially in entry order, so the merged statistics — and the
   rendered tables — match the serial run exactly. *)
let collect_stats (opts : Options.t) entries =
  Sim.Value_trace.merge
    (List.concat
       (Util.Pool.parallel_map ~jobs:opts.Options.jobs
          ~label:"fig2.value_trace"
          (fun (e : Workloads.Registry.entry) ->
            List.map
              (Sim.Value_trace.collect ~warps:(min 4 opts.Options.warps) ~seed:opts.Options.seed)
              (Lazy.force e.Workloads.Registry.kernels))
          entries))

let suite_stats (opts : Options.t) suite =
  collect_stats opts
    (List.filter (fun (e : Workloads.Registry.entry) -> e.Workloads.Registry.suite = suite)
       opts.Options.benchmarks)

let suites_of (opts : Options.t) =
  List.filter
    (fun s ->
      List.exists (fun (e : Workloads.Registry.entry) -> e.Workloads.Registry.suite = s)
        opts.Options.benchmarks)
    Workloads.Suite.all

let percent_row stats bucket_of buckets =
  let h = bucket_of stats in
  List.map (fun pred -> 100.0 *. Util.Stats.hfraction h pred) buckets

let tables opts =
  (* One trace collection per suite feeds both tables. *)
  let stats_by_suite = List.map (fun s -> (s, suite_stats opts s)) (suites_of opts) in
  let reads_table =
    let t =
      Util.Table.create ~title:"Figure 2(a): percent of all values, by times read"
        ~columns:[ "Suite"; "Read 0"; "Read 1"; "Read 2"; "Read >2" ]
    in
    List.iter
      (fun (s, stats) ->
        let row =
          percent_row stats
            (fun st -> st.Sim.Value_trace.read_counts)
            [ (fun n -> n = 0); (fun n -> n = 1); (fun n -> n = 2); (fun n -> n > 2) ]
        in
        Util.Table.add_float_row t (Workloads.Suite.name s) ~decimals:1 row)
      stats_by_suite;
    t
  in
  let lifetime_table =
    let t =
      Util.Table.create
        ~title:"Figure 2(b): lifetime (instructions) of values read exactly once (percent)"
        ~columns:[ "Suite"; "Lifetime 1"; "Lifetime 2"; "Lifetime 3"; "Lifetime >3" ]
    in
    List.iter
      (fun (s, stats) ->
        let row =
          percent_row stats
            (fun st -> st.Sim.Value_trace.lifetimes_read_once)
            [ (fun n -> n = 1); (fun n -> n = 2); (fun n -> n = 3); (fun n -> n > 3) ]
        in
        Util.Table.add_float_row t (Workloads.Suite.name s) ~decimals:1 row)
      stats_by_suite;
    t
  in
  [ reads_table; lifetime_table ]

let read_once_fraction (opts : Options.t) =
  let stats = collect_stats opts opts.Options.benchmarks in
  Util.Stats.hfraction stats.Sim.Value_trace.read_counts (fun n -> n = 1)
