let components ?(entries = 3) (opts : Options.t) =
  (* Mean per-benchmark (component / baseline-total). *)
  let per_bench (e : Workloads.Registry.entry) =
    let base = (Sweep.run opts e Sweep.Baseline ~entries:1).Sweep.energy.Energy.Counts.total in
    let bd = (Sweep.run opts e Sweep.Sw_three_split ~entries).Sweep.energy in
    List.map
      (fun (le : Energy.Counts.level_energy) ->
        (le.Energy.Counts.level, Util.Stats.ratio le.Energy.Counts.access base,
         Util.Stats.ratio le.Energy.Counts.wire base))
      bd.Energy.Counts.levels
  in
  let rows = Sweep.per_bench opts per_bench in
  match rows with
  | [] -> []
  | first :: _ ->
    List.mapi
      (fun i (level, _, _) ->
        let acc = Util.Stats.mean (List.map (fun r -> let _, a, _ = List.nth r i in a) rows) in
        let wire = Util.Stats.mean (List.map (fun r -> let _, _, w = List.nth r i in w) rows) in
        (level, acc, wire))
      first

let table ?entries opts =
  let t =
    Util.Table.create
      ~title:
        "Figure 14: energy breakdown of the most efficient design (SW split LRF), normalized to baseline"
      ~columns:[ "Level"; "Access"; "Wire"; "Total" ]
  in
  List.iter
    (fun (level, access, wire) ->
      if access +. wire > 0.0 then
        Util.Table.add_float_row t (Energy.Model.level_name level) ~decimals:4
          [ access; wire; access +. wire ])
    (components ?entries opts);
  t

let mrf_share ?entries opts =
  let comps = components ?entries opts in
  let total = List.fold_left (fun acc (_, a, w) -> acc +. a +. w) 0.0 comps in
  let mrf =
    List.fold_left
      (fun acc (level, a, w) -> if level = Energy.Model.Mrf then acc +. a +. w else acc)
      0.0 comps
  in
  Util.Stats.ratio mrf total
