(** Run-manifest collection: the data side of the regression gate.

    {!collect} runs the paper's best configuration (3-entry ORF +
    split LRF by default) and the single-level baseline over the
    option's workload set and assembles an {!Obs.Manifest.t}: options
    fingerprint, per-benchmark deterministic results (access counts,
    allocator stats, traffic, IPC, normalized energy), the metrics
    snapshot, span phase totals and an allocator audit digest.

    Deterministic by construction: the allocator audit replay is
    serial, the parallel fan-out is memo-deduplicated and order
    preserving, and every stored value is an integer count or a float
    computed in a fixed per-benchmark order — so manifests collected at
    different [--jobs] agree on everything the regression gate compares
    exactly.

    Side effects: span recording is enabled for the duration (prior
    enablement restored); any installed audit sink is replaced and then
    dropped; metrics are read, not reset, so counts accumulated earlier
    in the process (e.g. by the figure a [--manifest-out] rides on)
    are included. *)

val collect :
  ?entries:int ->
  ?lrf:Alloc.Config.lrf_mode ->
  Options.t ->
  Obs.Manifest.t
(** Defaults: [entries = 3], [lrf = Split] — the paper's most
    energy-efficient configuration. *)
