let ratios ?(entries = 3) (opts : Options.t) =
  Sweep.per_bench opts (fun (e : Workloads.Registry.entry) ->
      (e.Workloads.Registry.name, Sweep.energy_ratio opts e Sweep.Sw_three_split ~entries))
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let table ?entries opts =
  let t =
    Util.Table.create
      ~title:
        "Figure 15: per-benchmark normalized access+wire energy, most efficient configuration"
      ~columns:[ "Benchmark"; "Normalized energy"; "Savings %" ]
  in
  List.iter
    (fun (name, r) ->
      Util.Table.add_row t
        [ name; Printf.sprintf "%.3f" r; Printf.sprintf "%.1f" (100.0 *. (1.0 -. r)) ])
    (ratios ?entries opts);
  t
