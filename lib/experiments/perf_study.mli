(** The scheduling claim of Sec. 6: a two-level warp scheduler with 8
    active warps (of 32) loses no IPC against the single-level
    scheduler, under both descheduling policies (the hardware RFC's
    deschedule-on-dependence and the software scheme's
    deschedule-at-strand-boundaries). *)

val table : Options.t -> Util.Table.t

val stall_table : Options.t -> Util.Table.t
(** Companion to {!table}: where the warp-cycles went.  One row per
    {!Sim.Perf.stall_cause}, columns for the single-level scheduler and
    the two-level scheduler (8 active warps) under both policies, each
    cell the mean over benchmarks of that cause's share of the
    [cycles x warps] budget (in %).  Reuses {!table}'s memoized
    simulator runs. *)

val relative_ipc : Options.t -> policy:Sim.Perf.policy -> active:int -> float
(** Mean over benchmarks of IPC(two-level with [active]) /
    IPC(single-level). *)

val stall_share : Options.t -> policy:Sim.Perf.policy -> active:int -> Sim.Perf.stall_cause -> float
(** Mean over benchmarks of one cause's share of warp-cycles, in %. *)

val clear_cache : unit -> unit
