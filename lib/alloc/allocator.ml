let m_runs = Obs.Metrics.counter "alloc.runs"
let m_write_units = Obs.Metrics.counter "alloc.write_units"
let m_read_units = Obs.Metrics.counter "alloc.read_units"
let m_lrf_allocated = Obs.Metrics.counter "alloc.lrf_allocated"
let m_orf_allocated = Obs.Metrics.counter "alloc.orf_allocated"
let m_partial_allocated = Obs.Metrics.counter "alloc.partial_allocated"
let m_unit_savings = Obs.Metrics.histogram "alloc.unit_savings"

type stats = {
  write_units : int;
  read_units : int;
  lrf_allocated : int;
  orf_allocated : int;
  partial_allocated : int;
}

type kind =
  | Write_unit of { defs : int list }
  | Read_unit

(* One allocation candidate: a value (or MRF-resident read range) and
   the reads an upper-level copy would serve. *)
type cand = {
  id : int;  (* dense per-run index; keys the explainer's side table *)
  kind : kind;
  reg : Ir.Reg.t;
  strand : int;
  mutable covered : Analysis.Duchain.read list;  (* ascending by instr; head of a
                                                    Read_unit is the MRF-served fill *)
  mutable mrf_write_required : bool;             (* write units only *)
  width : int;
  producer_dp : Energy.Model.datapath;
  lrf_bank : int option;  (* eligible LRF bank, if any *)
}

let datapath_of_op op =
  if Ir.Op.is_shared_datapath op then Energy.Model.Shared else Energy.Model.Private

let consumer_dp k (r : Analysis.Duchain.read) =
  datapath_of_op (Ir.Kernel.instr k r.Analysis.Duchain.read_instr).Ir.Instr.op

(* Half-open occupancy span: the write occupies at least its own slot,
   and protection extends up to (excluding) the last covered read. *)
let interval_of cand =
  match cand.kind, cand.covered with
  | Write_unit { defs }, [] ->
    let d = List.fold_left min max_int defs in
    (d, d + 1)
  | Write_unit { defs }, reads ->
    let d = List.fold_left min max_int defs in
    let last = List.fold_left (fun acc r -> max acc r.Analysis.Duchain.read_instr) d reads in
    (d, max last (d + 1))
  | Read_unit, [] -> invalid_arg "Allocator: empty read unit"
  | Read_unit, (r0 :: _ as reads) ->
    let last =
      List.fold_left (fun acc r -> max acc r.Analysis.Duchain.read_instr)
        r0.Analysis.Duchain.read_instr reads
    in
    (r0.Analysis.Duchain.read_instr, max last (r0.Analysis.Duchain.read_instr + 1))

let savings_of config k target cand =
  match cand.kind with
  | Write_unit _ ->
    let reads = List.map (consumer_dp k) cand.covered in
    Savings.write_unit config ~target ~producer_dp:cand.producer_dp ~reads
      ~mrf_write_required:cand.mrf_write_required
  | Read_unit ->
    (match target with
     | `Lrf -> neg_infinity  (* read units are ORF-only *)
     | `Orf -> Savings.read_unit config ~reads:(List.map (consumer_dp k) cand.covered))

let priority_of config k target cand =
  let first, last = interval_of cand in
  Savings.priority ~savings:(savings_of config k target cand) ~first ~last

(* Drop the last covered read (Sec. 4.3's iterative shortening).
   Returns false when the candidate cannot be shortened further. *)
let shorten cand =
  match cand.kind, List.rev cand.covered with
  | Write_unit _, (_ :: (_ :: _ as rev_rest)) ->
    cand.covered <- List.rev rev_rest;
    cand.mrf_write_required <- true;
    true
  | Write_unit _, _ -> false
  | Read_unit, (_ :: rest) when List.length rest >= 2 ->
    cand.covered <- List.rev rest;
    true
  | Read_unit, _ -> false

let dedup_reads reads =
  let compare_read (a : Analysis.Duchain.read) (b : Analysis.Duchain.read) =
    compare
      (a.Analysis.Duchain.read_instr, a.Analysis.Duchain.slot)
      (b.Analysis.Duchain.read_instr, b.Analysis.Duchain.slot)
  in
  List.sort_uniq compare_read reads

(* Assemble one write unit given its defs and the reads it may cover. *)
let make_write_unit config (ctx : Context.t) ~defs ~reg ~strand ~reads ~extra_uncovered =
  let k = ctx.Context.kernel in
  let partition = ctx.Context.partition in
  let def_instrs = List.map (Ir.Kernel.instr k) defs in
  let safe (r : Analysis.Duchain.read) =
    Strand.Partition.strand_of_instr partition r.Analysis.Duchain.read_instr = strand
    && Strand.Must_defined.must_defined_before ctx.Context.must_defined
         ~instr_id:r.Analysis.Duchain.read_instr reg
  in
  let covered, uncovered = List.partition safe reads in
  let width =
    List.fold_left (fun acc (i : Ir.Instr.t) -> max acc (Ir.Width.words i.Ir.Instr.width)) 1
      def_instrs
  in
  let producer_dp =
    if List.exists (fun (i : Ir.Instr.t) -> Ir.Op.is_shared_datapath i.Ir.Instr.op) def_instrs
    then Energy.Model.Shared
    else Energy.Model.Private
  in
  let lrf_bank =
    if producer_dp <> Energy.Model.Private || width > 1 then None
    else if List.exists (fun r -> consumer_dp k r = Energy.Model.Shared) covered then None
    else begin
      match config.Config.lrf with
      | Config.No_lrf -> None
      | Config.Unified -> Some 0
      | Config.Split ->
        (match covered with
         | [] -> Some 0
         | r0 :: rest ->
           let slot = r0.Analysis.Duchain.slot in
           if List.for_all (fun (r : Analysis.Duchain.read) -> r.Analysis.Duchain.slot = slot) rest
           then Some slot
           else None)
    end
  in
  {
    id = -1;  (* renumbered once all units of the run exist *)
    kind = Write_unit { defs };
    reg;
    strand;
    covered;
    mrf_write_required = extra_uncovered || uncovered <> [];
    width;
    producer_dp;
    lrf_bank;
  }

(* Build the write units for one def-use group.

   A group whose definitions all sit in one strand becomes a single
   unit covering merged reads too (Fig. 10(c): all definitions target
   the same entry).  Otherwise — loop-carried or cross-strand groups,
   e.g. induction variables — each definition becomes its own unit
   covering only the reads it reaches uniquely; reads merged with other
   definitions stay in the MRF. *)
let build_write_units config (ctx : Context.t) (members : Analysis.Duchain.instance list) =
  let k = ctx.Context.kernel in
  let partition = ctx.Context.partition in
  match members with
  | [] -> []
  | (first_member : Analysis.Duchain.instance) :: _ ->
    let reg = first_member.Analysis.Duchain.reg in
    let defs = List.map (fun (m : Analysis.Duchain.instance) -> m.Analysis.Duchain.def) members in
    let def_instrs = List.map (Ir.Kernel.instr k) defs in
    let any_long_latency = List.exists Ir.Instr.is_long_latency def_instrs in
    let strands = List.map (Strand.Partition.strand_of_instr partition) defs in
    let strand = List.hd strands in
    let same_strand_defs = List.for_all (Int.equal strand) strands in
    if same_strand_defs && not any_long_latency then begin
      let reads =
        dedup_reads
          (List.concat_map (fun (m : Analysis.Duchain.instance) -> m.Analysis.Duchain.reads) members)
      in
      [ make_write_unit config ctx ~defs ~reg ~strand ~reads ~extra_uncovered:false ]
    end
    else
      (* Per-definition fallback: cover only uniquely reached reads. *)
      List.filter_map
        (fun (m : Analysis.Duchain.instance) ->
          let d = m.Analysis.Duchain.def in
          if Ir.Instr.is_long_latency (Ir.Kernel.instr k d) then None
          else begin
            let unique, shared_reads =
              List.partition
                (fun (r : Analysis.Duchain.read) ->
                  match
                    Analysis.Reaching.reaching_before ctx.Context.reaching
                      ~instr_id:r.Analysis.Duchain.read_instr reg
                  with
                  | [ only ] -> only = d
                  | [] | _ :: _ -> false)
                m.Analysis.Duchain.reads
            in
            Some
              (make_write_unit config ctx ~defs:[ d ] ~reg
                 ~strand:(Strand.Partition.strand_of_instr partition d)
                 ~reads:(dedup_reads unique) ~extra_uncovered:(shared_reads <> []))
          end)
        members

(* Build read units (Sec. 4.4): per (strand, register), reads whose
   reaching definitions all lie outside the strand. *)
let build_read_units (ctx : Context.t) =
  let k = ctx.Context.kernel in
  let partition = ctx.Context.partition in
  let reaching = ctx.Context.reaching in
  let table : (int * Ir.Reg.t, Analysis.Duchain.read list) Hashtbl.t = Hashtbl.create 64 in
  Ir.Kernel.iter_instrs k (fun _ i ->
      let id = i.Ir.Instr.id in
      let strand = Strand.Partition.strand_of_instr partition id in
      List.iteri
        (fun slot r ->
          let defs = Analysis.Reaching.reaching_before reaching ~instr_id:id r in
          let all_outside =
            List.for_all (fun d -> Strand.Partition.strand_of_instr partition d <> strand) defs
          in
          if all_outside then begin
            let key = (strand, r) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt table key) in
            Hashtbl.replace table key ({ Analysis.Duchain.read_instr = id; slot } :: prev)
          end)
        i.Ir.Instr.srcs);
  Hashtbl.fold
    (fun (strand, reg) reads acc ->
      match dedup_reads reads with
      | [] | [ _ ] -> acc  (* a single read cannot profit *)
      | first :: rest ->
        (* Later reads must be dominated by the fill read so the ORF
           copy exists on every path — and must execute strictly after
           it: the fill cannot serve another slot of its own
           instruction. *)
        let dominated =
          List.filter
            (fun (r : Analysis.Duchain.read) ->
              r.Analysis.Duchain.read_instr > first.Analysis.Duchain.read_instr
              && Analysis.Dominance.instr_dominates k ctx.Context.dominance
                   first.Analysis.Duchain.read_instr r.Analysis.Duchain.read_instr)
            rest
        in
        if dominated = [] then acc
        else
          {
            id = -1;
            kind = Read_unit;
            reg;
            strand;
            covered = first :: dominated;
            mrf_write_required = true;
            width = 1;
            producer_dp = Energy.Model.Private;
            lrf_bank = None;
          }
          :: acc)
    table []
  |> List.sort (fun a b -> compare (interval_of a) (interval_of b))

(* Report one allocation decision to the metrics registry and the
   audit sink (Obs.Audit). *)
let audit_alloc config k target c ~slot ~partial =
  let savings = savings_of config k target c in
  Obs.Metrics.observe m_unit_savings savings;
  if Obs.Audit.is_enabled () then begin
    let first, last = interval_of c in
    Obs.Audit.emit
      (Obs.Audit.Alloc
         {
           reg = Ir.Reg.to_string c.reg;
           kind =
             (match c.kind with
              | Write_unit _ -> Obs.Audit.Write_unit
              | Read_unit -> Obs.Audit.Read_unit);
           strand = c.strand;
           level = (match target with `Lrf -> Obs.Audit.Lrf | `Orf -> Obs.Audit.Orf);
           slot;
           first;
           last;
           reads = List.length c.covered;
           savings;
           partial;
           mrf_copy = c.mrf_write_required;
         })
  end

(* ------------------------------------------------------------------ *)
(* Explainer side table.  When Obs.Explain is enabled, one [trail] per
   candidate accumulates what the two phases concluded about it;
   everything is emitted at the end of the run in candidate-id order,
   so the event stream is deterministic regardless of the priority
   order in which the queues drained.  When disabled, none of this is
   allocated and the per-decision cost is zero. *)

type trail = {
  mutable t_lrf : Obs.Explain.candidate option;
  mutable t_orf : Obs.Explain.candidate option;
  mutable t_shortened : int;
  mutable t_outcome : Obs.Explain.outcome;
  t_initial_reads : int;
}

(* Savings estimates can be [neg_infinity] — or raise — for
   structurally impossible pairings (the energy model refuses an LRF
   wired to the shared datapath); clamp for the event stream so the
   JSONL stays finite. *)
let finite s = if Float.is_finite s then s else 0.0

let safe_savings config k lvl c =
  match savings_of config k lvl c with
  | s -> finite s
  | exception Invalid_argument _ -> 0.0

(* Re-derive why [make_write_unit] withheld an LRF bank (it collapses
   the reasons into [lrf_bank = None]); explain-path only, so the extra
   walk over covered reads is fine. *)
let lrf_ineligibility config k c =
  match c.kind with
  | Read_unit -> "read units are ORF-only"
  | Write_unit _ ->
    if config.Config.lrf = Config.No_lrf then "no LRF in this configuration"
    else if c.producer_dp <> Energy.Model.Private then "shared-datapath producer"
    else if c.width > 1 then "wide (multi-word) value"
    else if List.exists (fun r -> consumer_dp k r = Energy.Model.Shared) c.covered then
      "shared-datapath consumer"
    else if
      config.Config.lrf = Config.Split
      && (match c.covered with
         | [] -> false
         | r0 :: rest ->
           not
             (List.for_all
                (fun (r : Analysis.Duchain.read) ->
                  r.Analysis.Duchain.slot = r0.Analysis.Duchain.slot)
                rest))
    then "covered reads span operand slots"
    else "not LRF-eligible"

let emit_decisions k trails units =
  List.iter
    (fun c ->
      let t = trails.(c.id) in
      let first, last = interval_of c in
      Obs.Explain.emit
        {
          Obs.Explain.seq = c.id;
          kernel = k.Ir.Kernel.name;
          reg = Ir.Reg.to_string c.reg;
          kind = (match c.kind with Write_unit _ -> "write_unit" | Read_unit -> "read_unit");
          strand = c.strand;
          width = c.width;
          first;
          last;
          defs = (match c.kind with Write_unit { defs } -> defs | Read_unit -> []);
          covered =
            List.map
              (fun (r : Analysis.Duchain.read) ->
                (r.Analysis.Duchain.read_instr, r.Analysis.Duchain.slot))
              c.covered;
          dropped_reads = t.t_initial_reads - List.length c.covered;
          mrf_copy = c.mrf_write_required;
          candidates = List.filter_map Fun.id [ t.t_lrf; t.t_orf ];
          outcome = t.t_outcome;
        })
    units

(* Per-instruction static occupancy of one strand-local structure, for
   the counter tracks: entries reserved over [at, at+1). *)
let occupied_at occ ~at =
  let n = Occupancy.entries occ in
  let c = ref 0 in
  for e = 0 to n - 1 do
    if not (Occupancy.available occ ~entry:e ~first:at ~last:(at + 1)) then incr c
  done;
  !c

let run_inner config (ctx : Context.t) =
  let k = ctx.Context.kernel in
  let placement = Placement.baseline k in
  let duchain = ctx.Context.duchain in
  (* Sampled once per run: the allocator hot path sees one bool. *)
  let ex = Obs.Explain.is_enabled () in
  (* Write units: one per def-use group, visiting each group once. *)
  let seen_groups = Hashtbl.create 64 in
  let write_units =
    List.concat_map
      (fun (inst : Analysis.Duchain.instance) ->
        let g = inst.Analysis.Duchain.group in
        if Hashtbl.mem seen_groups g then []
        else begin
          Hashtbl.add seen_groups g ();
          build_write_units config ctx (Analysis.Duchain.group_members duchain g)
        end)
      (Analysis.Duchain.instances duchain)
  in
  let read_units = if config.Config.read_operands then build_read_units ctx else [] in
  (* Dense ids: write units first, then read units, in construction
     order.  The renumbering copies are what every later phase works
     on, so physical-identity bookkeeping below stays coherent. *)
  let write_units = List.mapi (fun i c -> { c with id = i }) write_units in
  let nw = List.length write_units in
  let read_units = List.mapi (fun i c -> { c with id = nw + i }) read_units in
  let all_units = write_units @ read_units in
  let trails =
    if ex then
      Array.of_list
        (List.map
           (fun c ->
             {
               t_lrf = None;
               t_orf = None;
               t_shortened = 0;
               t_outcome = Obs.Explain.To_mrf;
               t_initial_reads = List.length c.covered;
             })
           all_units)
    else [||]
  in
  let trail c = trails.(c.id) in
  (* Pre-drain LRF verdicts for candidates the queue will never see:
     structurally ineligible ones and those with non-positive savings. *)
  if ex then
    List.iter
      (fun c ->
        if c.lrf_bank = None then
          (trail c).t_lrf <-
            Some
              {
                Obs.Explain.level = "lrf";
                savings =
                  (match c.kind with
                  | Write_unit _ -> safe_savings config k `Lrf c
                  | Read_unit -> 0.0);
                verdict = Obs.Explain.Ineligible (lrf_ineligibility config k c);
              }
        else begin
          let s = savings_of config k `Lrf c in
          if s <= 0.0 then
            (trail c).t_lrf <-
              Some
                {
                  Obs.Explain.level = "lrf";
                  savings = finite s;
                  verdict = Obs.Explain.Negative_savings;
                }
        end)
      all_units;
  (* Per-strand occupancy maps. *)
  let num_strands = Strand.Partition.num_strands ctx.Context.partition in
  let orf_occ = Array.init num_strands (fun _ -> Occupancy.create ~entries:config.Config.orf_entries) in
  let lrf_occ = Array.init num_strands (fun _ -> Occupancy.create ~entries:(Config.lrf_banks config)) in
  let stats = ref { write_units = List.length write_units; read_units = List.length read_units;
                    lrf_allocated = 0; orf_allocated = 0; partial_allocated = 0 } in
  (* Phase 1: LRF. *)
  let cmp_by p a b = compare (p a) (p b) in
  let lrf_queue =
    Util.Pqueue.of_list ~cmp:(cmp_by (priority_of config k `Lrf))
      (List.filter
         (fun c -> c.lrf_bank <> None && savings_of config k `Lrf c > 0.0)
         write_units)
  in
  let lrf_allocs : (cand * int) list ref = ref [] in
  (* Physical identity: structurally equal candidates must stay distinct. *)
  let lrf_done : cand list ref = ref [] in
  let rec drain_lrf () =
    match Util.Pqueue.pop lrf_queue with
    | None -> ()
    | Some c ->
      let first, last = interval_of c in
      let bank =
        match config.Config.lrf, c.lrf_bank with
        | Config.Unified, Some b -> if Occupancy.available lrf_occ.(c.strand) ~entry:b ~first ~last then Some b else None
        | Config.Split, Some b ->
          (* A candidate with no covered reads may use any free bank. *)
          if c.covered = [] then Occupancy.find_free lrf_occ.(c.strand) ~width:1 ~first ~last
          else if Occupancy.available lrf_occ.(c.strand) ~entry:b ~first ~last then Some b
          else None
        | (Config.No_lrf | Config.Unified | Config.Split), None -> None
        | Config.No_lrf, Some _ -> None
      in
      (match bank with
       | Some b ->
         Occupancy.reserve lrf_occ.(c.strand) ~entry:b ~first ~last;
         lrf_allocs := (c, b) :: !lrf_allocs;
         lrf_done := c :: !lrf_done;
         audit_alloc config k `Lrf c ~slot:b ~partial:false;
         if ex then begin
           (trail c).t_lrf <-
             Some
               {
                 Obs.Explain.level = "lrf";
                 savings = finite (savings_of config k `Lrf c);
                 verdict = Obs.Explain.Chosen;
               };
           (trail c).t_outcome <- Obs.Explain.To_lrf { bank = b }
         end;
         stats := { !stats with lrf_allocated = !stats.lrf_allocated + 1 }
       | None ->
         if ex then
           (trail c).t_lrf <-
             Some
               {
                 Obs.Explain.level = "lrf";
                 savings = finite (savings_of config k `Lrf c);
                 verdict = Obs.Explain.No_free_slot;
               });
      drain_lrf ()
  in
  drain_lrf ();
  (* Phase 2: ORF for everything not already in the LRF. *)
  let orf_candidates =
    List.filter (fun c -> not (List.memq c !lrf_done)) write_units @ read_units
  in
  (* Variable-ORF support (Sec. 7): every ORF-resident value keeps an
     MRF copy so a warp granted fewer entries can fall back to it.
     LRF values are exempt — LRF banks are per-warp, never pooled. *)
  if config.Config.mirror_mrf then
    List.iter
      (fun c -> match c.kind with Write_unit _ -> c.mrf_write_required <- true | Read_unit -> ())
      orf_candidates;
  if ex then
    List.iter
      (fun c ->
        let s = savings_of config k `Orf c in
        if s <= 0.0 then
          (trail c).t_orf <-
            Some
              {
                Obs.Explain.level = "orf";
                savings = finite s;
                verdict = Obs.Explain.Negative_savings;
              })
      orf_candidates;
  let orf_queue =
    Util.Pqueue.of_list ~cmp:(cmp_by (priority_of config k `Orf))
      (List.filter (fun c -> savings_of config k `Orf c > 0.0) orf_candidates)
  in
  let orf_allocs : (cand * int) list ref = ref [] in
  let rec drain_orf () =
    match Util.Pqueue.pop orf_queue with
    | None -> ()
    | Some c ->
      let rec attempt ~shortened =
        let s = savings_of config k `Orf c in
        if s <= 0.0 then begin
          (* Shortening drove the estimate negative: give up. *)
          if ex then
            (trail c).t_orf <-
              Some
                {
                  Obs.Explain.level = "orf";
                  savings = finite s;
                  verdict = Obs.Explain.Negative_savings;
                }
        end
        else begin
          let first, last = interval_of c in
          match Occupancy.find_free orf_occ.(c.strand) ~width:c.width ~first ~last with
          | Some e ->
            Occupancy.reserve_range orf_occ.(c.strand) ~entry:e ~width:c.width ~first ~last;
            orf_allocs := (c, e) :: !orf_allocs;
            audit_alloc config k `Orf c ~slot:e ~partial:shortened;
            if ex then begin
              (trail c).t_orf <-
                Some
                  { Obs.Explain.level = "orf"; savings = finite s; verdict = Obs.Explain.Chosen };
              (trail c).t_outcome <-
                Obs.Explain.To_orf { entry = e; shortened = (trail c).t_shortened }
            end;
            stats :=
              { !stats with
                orf_allocated = !stats.orf_allocated + 1;
                partial_allocated = !stats.partial_allocated + (if shortened then 1 else 0) }
          | None ->
            if config.Config.partial_ranges && shorten c then begin
              if ex then (trail c).t_shortened <- (trail c).t_shortened + 1;
              attempt ~shortened:true
            end
            else if ex then
              (trail c).t_orf <-
                Some
                  {
                    Obs.Explain.level = "orf";
                    savings = finite s;
                    verdict = Obs.Explain.No_free_slot;
                  }
        end
      in
      attempt ~shortened:false;
      drain_orf ()
  in
  drain_orf ();
  (* Emit placements. *)
  let set_covered_srcs level c =
    List.iter
      (fun (r : Analysis.Duchain.read) ->
        Placement.set_src placement ~instr:r.Analysis.Duchain.read_instr
          ~pos:r.Analysis.Duchain.slot level)
      c.covered
  in
  List.iter
    (fun (c, bank) ->
      (match c.kind with
       | Write_unit { defs } ->
         List.iter
           (fun d ->
             Placement.set_dest placement ~instr:d
               { Placement.to_lrf = Some bank; to_orf = None; to_mrf = c.mrf_write_required })
           defs
       | Read_unit -> assert false);
      set_covered_srcs (Placement.From_lrf bank) c)
    !lrf_allocs;
  List.iter
    (fun (c, entry) ->
      match c.kind with
      | Write_unit { defs } ->
        List.iter
          (fun d ->
            Placement.set_dest placement ~instr:d
              { Placement.to_lrf = None; to_orf = Some entry; to_mrf = c.mrf_write_required })
          defs;
        set_covered_srcs (Placement.From_orf entry) c
      | Read_unit ->
        (match c.covered with
         | [] -> assert false
         | fill :: rest ->
           Placement.add_fill placement ~instr:fill.Analysis.Duchain.read_instr
             ~pos:fill.Analysis.Duchain.slot ~entry;
           List.iter
             (fun (r : Analysis.Duchain.read) ->
               Placement.set_src placement ~instr:r.Analysis.Duchain.read_instr
                 ~pos:r.Analysis.Duchain.slot (Placement.From_orf entry))
             rest))
    !orf_allocs;
  if ex then emit_decisions k trails all_units;
  (* Static ORF/LRF occupancy over the instruction stream, as counter
     tracks (simulated time = instruction id). *)
  if Obs.Counters.is_enabled () then begin
    let n = Ir.Kernel.instr_count k in
    for i = 0 to n - 1 do
      let strand = Strand.Partition.strand_of_instr ctx.Context.partition i in
      Obs.Counters.sample "alloc.orf_occupancy" ~at:(float_of_int i)
        (float_of_int (occupied_at orf_occ.(strand) ~at:i));
      Obs.Counters.sample "alloc.lrf_occupancy" ~at:(float_of_int i)
        (float_of_int (occupied_at lrf_occ.(strand) ~at:i))
    done
  end;
  let s = !stats in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:s.write_units m_write_units;
  Obs.Metrics.incr ~by:s.read_units m_read_units;
  Obs.Metrics.incr ~by:s.lrf_allocated m_lrf_allocated;
  Obs.Metrics.incr ~by:s.orf_allocated m_orf_allocated;
  Obs.Metrics.incr ~by:s.partial_allocated m_partial_allocated;
  (placement, s)

let run config ctx = Obs.Span.with_span "allocate" (fun () -> run_inner config ctx)

let place config ctx = fst (run config ctx)
