type t = {
  kernel : Ir.Kernel.t;
  cfg : Analysis.Cfg.t;
  dominance : Analysis.Dominance.t;
  liveness : Analysis.Liveness.t;
  reaching : Analysis.Reaching.t;
  duchain : Analysis.Duchain.t;
  partition : Strand.Partition.t;
  must_defined : Strand.Must_defined.t;
}

let create ?boundary_kinds kernel =
  let span = Obs.Span.with_span in
  let cfg = span "cfg" (fun () -> Analysis.Cfg.of_kernel kernel) in
  let dominance = span "dominance" (fun () -> Analysis.Dominance.compute cfg) in
  let liveness = span "liveness" (fun () -> Analysis.Liveness.compute kernel cfg) in
  let reaching = span "reaching" (fun () -> Analysis.Reaching.compute kernel cfg) in
  let duchain = span "duchain" (fun () -> Analysis.Duchain.compute kernel reaching) in
  let partition =
    span "partition" (fun () -> Strand.Partition.compute ?kinds:boundary_kinds kernel cfg reaching)
  in
  let must_defined =
    span "must_defined" (fun () -> Strand.Must_defined.compute kernel cfg partition)
  in
  { kernel; cfg; dominance; liveness; reaching; duchain; partition; must_defined }
