(* Host-engine profiling recorder.  See eprof.mli for the contract;
   the analyzer lives in Obs.Engine so this module stays dependency-free
   (the pool and memo tables instrumented here cannot see lib/obs). *)

let now_ns () : int64 = Monotonic_clock.now ()
let on = Atomic.make false
let enabled () = Atomic.get on

(* CLOCK_MONOTONIC is one clock for the whole process, so a single
   epoch gives every domain the same zero point — no per-domain skew
   to correct when aligning trace rows. *)
let epoch = Atomic.make 0L
let epoch_ns () = Atomic.get epoch
let now_rel_ns () = Int64.to_int (Int64.sub (now_ns ()) (Atomic.get epoch))
let self () = (Domain.self () :> int)

type event =
  | Region_begin of { region : int; label : string; jobs : int; caller : int; t : int }
  | Region_end of { region : int; t : int }
  | Spawn of { region : int; dom : int; start : int; stop : int }
  | Join of { region : int; dom : int; start : int; stop : int }
  | Worker of { region : int; dom : int; start : int; stop : int }
  | Task of { region : int; dom : int; index : int; start : int; stop : int }
  | Lock_wait of { name : string; dom : int; start : int; stop : int }
  | Memo_wait of { table : string; dom : int; start : int; stop : int }

let mu = Mutex.create ()
let events_rev : event list ref = ref []

(* Observer hooks (Obs.Gcprof).  Both are one atomic load when not
   installed, and they run on the *emitting* domain — which is the
   point: an installed emit hook can snapshot that domain's GC
   counters at region boundaries, and a worker-start hook can tag the
   domain's runtime ring buffer before its first task runs.  Hooks are
   invoked outside [mu] so they may take their own locks freely. *)
let emit_hook : (event -> unit) option Atomic.t = Atomic.make None
let worker_start_hook : (unit -> unit) option Atomic.t = Atomic.make None
let set_emit_hook h = Atomic.set emit_hook h
let set_worker_start_hook h = Atomic.set worker_start_hook h

let worker_start () =
  match Atomic.get worker_start_hook with None -> () | Some f -> f ()

let emit ev =
  Mutex.lock mu;
  events_rev := ev :: !events_rev;
  Mutex.unlock mu;
  match Atomic.get emit_hook with None -> () | Some f -> f ev

let events () =
  Mutex.lock mu;
  let evs = !events_rev in
  Mutex.unlock mu;
  List.rev evs

let region_ctr = Atomic.make 0
let new_region () = Atomic.fetch_and_add region_ctr 1

let start () =
  Mutex.lock mu;
  events_rev := [];
  Mutex.unlock mu;
  Atomic.set epoch (now_ns ());
  Atomic.set on true

let stop () = Atomic.set on false

(* ---- profiled locks ---------------------------------------------- *)

type lock = {
  l_name : string;
  l_acq : int Atomic.t;
  l_cont : int Atomic.t;
  l_wait : int Atomic.t;
}

type lock_stats = { lock : string; acquisitions : int; contended : int; wait_ns : int }

let locks_mu = Mutex.create ()
let locks : lock list ref = ref []

let lock_create name =
  let l =
    { l_name = name; l_acq = Atomic.make 0; l_cont = Atomic.make 0; l_wait = Atomic.make 0 }
  in
  Mutex.lock locks_mu;
  locks := l :: !locks;
  Mutex.unlock locks_mu;
  l

let lock_acquire l m =
  if not (Atomic.get on) then Mutex.lock m
  else begin
    ignore (Atomic.fetch_and_add l.l_acq 1 : int);
    if not (Mutex.try_lock m) then begin
      let t0 = now_rel_ns () in
      Mutex.lock m;
      let t1 = now_rel_ns () in
      ignore (Atomic.fetch_and_add l.l_cont 1 : int);
      ignore (Atomic.fetch_and_add l.l_wait (t1 - t0) : int);
      emit (Lock_wait { name = l.l_name; dom = self (); start = t0; stop = t1 })
    end
  end

let lock_stats () =
  Mutex.lock locks_mu;
  let ls = !locks in
  Mutex.unlock locks_mu;
  ls
  |> List.map (fun l ->
         {
           lock = l.l_name;
           acquisitions = Atomic.get l.l_acq;
           contended = Atomic.get l.l_cont;
           wait_ns = Atomic.get l.l_wait;
         })
  |> List.sort (fun a b -> String.compare a.lock b.lock)

(* ---- memo counters ----------------------------------------------- *)

type memo_counters = {
  mc_name : string option;
  mc_lookups : int Atomic.t;
  mc_hits : int Atomic.t;
  mc_misses : int Atomic.t;
  mc_waits : int Atomic.t;
  mc_wait_ns : int Atomic.t;
}

type memo_stats = {
  table : string;
  lookups : int;
  hits : int;
  misses : int;
  waits : int;
  wait_ns : int;
}

let memos_mu = Mutex.create ()
let memos : memo_counters list ref = ref []

let memo_counters ?name () =
  let c =
    {
      mc_name = name;
      mc_lookups = Atomic.make 0;
      mc_hits = Atomic.make 0;
      mc_misses = Atomic.make 0;
      mc_waits = Atomic.make 0;
      mc_wait_ns = Atomic.make 0;
    }
  in
  if name <> None then begin
    Mutex.lock memos_mu;
    memos := c :: !memos;
    Mutex.unlock memos_mu
  end;
  c

let memo_counter_name c = Option.value c.mc_name ~default:"<anon>"

let memo_record c ~hit ~waited ~wait_start =
  ignore (Atomic.fetch_and_add c.mc_lookups 1 : int);
  if waited then begin
    let stop = now_rel_ns () in
    ignore (Atomic.fetch_and_add c.mc_wait_ns (stop - wait_start) : int);
    (* A wait that ends in a ready value is a "wait"; a wait that ends
       with this caller recomputing (the producer failed) is a miss. *)
    if hit then ignore (Atomic.fetch_and_add c.mc_waits 1 : int)
    else ignore (Atomic.fetch_and_add c.mc_misses 1 : int);
    if Atomic.get on then
      emit
        (Memo_wait { table = memo_counter_name c; dom = self (); start = wait_start; stop })
  end
  else if hit then ignore (Atomic.fetch_and_add c.mc_hits 1 : int)
  else ignore (Atomic.fetch_and_add c.mc_misses 1 : int)

let stats_of_counters table c =
  {
    table;
    lookups = Atomic.get c.mc_lookups;
    hits = Atomic.get c.mc_hits;
    misses = Atomic.get c.mc_misses;
    waits = Atomic.get c.mc_waits;
    wait_ns = Atomic.get c.mc_wait_ns;
  }

let memo_stats () =
  Mutex.lock memos_mu;
  let cs = !memos in
  Mutex.unlock memos_mu;
  cs
  |> List.filter_map (fun c ->
         match c.mc_name with Some n -> Some (stats_of_counters n c) | None -> None)
  |> List.sort (fun a b -> String.compare a.table b.table)
