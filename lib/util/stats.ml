let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let ratio a b = if b = 0.0 then 0.0 else a /. b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let round_to d x =
  let m = 10.0 ** float_of_int d in
  Float.round (x *. m) /. m

type histogram = (int, int ref) Hashtbl.t

let histogram () : histogram = Hashtbl.create 16

let hincr h ?(by = 1) key =
  match Hashtbl.find_opt h key with
  | Some r -> r := !r + by
  | None -> Hashtbl.add h key (ref by)

let hcount h key = match Hashtbl.find_opt h key with Some r -> !r | None -> 0

let htotal h = Hashtbl.fold (fun _ r acc -> acc + !r) h 0

let hbins_unsorted h = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) h []

let hbins h = List.sort (fun (a, _) (b, _) -> compare a b) (hbins_unsorted h)

let hreset h = Hashtbl.reset h

let hfraction h pred =
  let total = htotal h in
  if total = 0 then 0.0
  else begin
    let matching = Hashtbl.fold (fun k r acc -> if pred k then acc + !r else acc) h 0 in
    float_of_int matching /. float_of_int total
  end
