type 'v state =
  | In_flight
  | Ready of 'v

type ('k, 'v) t = {
  mu : Mutex.t;
  cond : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
}

let create n = { mu = Mutex.create (); cond = Condition.create (); tbl = Hashtbl.create n }

let find_or_compute t key f =
  Mutex.lock t.mu;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) ->
      Mutex.unlock t.mu;
      `Hit v
    | Some In_flight ->
      Condition.wait t.cond t.mu;
      claim ()
    | None ->
      Hashtbl.replace t.tbl key In_flight;
      Mutex.unlock t.mu;
      `Compute
  in
  match claim () with
  | `Hit v -> v
  | `Compute ->
    (match f () with
     | v ->
       Mutex.lock t.mu;
       Hashtbl.replace t.tbl key (Ready v);
       Condition.broadcast t.cond;
       Mutex.unlock t.mu;
       v
     | exception e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.mu;
       (* Failures are not cached: drop the marker so a waiter (or a
          later caller) recomputes. *)
       Hashtbl.remove t.tbl key;
       Condition.broadcast t.cond;
       Mutex.unlock t.mu;
       Printexc.raise_with_backtrace e bt)

let find_opt t key =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) -> Some v
    | Some In_flight | None -> None
  in
  Mutex.unlock t.mu;
  r

let reset t =
  Mutex.lock t.mu;
  (* Keep in-flight markers: their computations will still publish and
     wake waiters; only completed results are dropped. *)
  let ready =
    Hashtbl.fold (fun k s acc -> match s with Ready _ -> k :: acc | In_flight -> acc) t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) ready;
  Mutex.unlock t.mu

let length t =
  Mutex.lock t.mu;
  let n =
    Hashtbl.fold (fun _ s acc -> match s with Ready _ -> acc + 1 | In_flight -> acc) t.tbl 0
  in
  Mutex.unlock t.mu;
  n
