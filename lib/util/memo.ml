type 'v state =
  | In_flight
  | Ready of 'v

type ('k, 'v) t = {
  mu : Mutex.t;
  cond : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
  counters : Eprof.memo_counters;
}

type stats = Eprof.memo_stats = {
  table : string;
  lookups : int;
  hits : int;
  misses : int;
  waits : int;
  wait_ns : int;
}

let create ?name n =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create n;
    counters = Eprof.memo_counters ?name ();
  }

let stats t = Eprof.stats_of_counters (Eprof.memo_counter_name t.counters) t.counters

let find_or_compute t key f =
  (* [wait_start] is set on the first transition into Condition.wait:
     a lookup that blocked at all is classified as a wait (when it
     ends Ready) or a miss (when the producer failed and this caller
     recomputes), never as a plain hit. *)
  let wait_start = ref (-1) in
  Mutex.lock t.mu;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) ->
      Mutex.unlock t.mu;
      `Hit v
    | Some In_flight ->
      if !wait_start < 0 then wait_start := Eprof.now_rel_ns ();
      Condition.wait t.cond t.mu;
      claim ()
    | None ->
      Hashtbl.replace t.tbl key In_flight;
      Mutex.unlock t.mu;
      `Compute
  in
  let record ~hit = Eprof.memo_record t.counters ~hit ~waited:(!wait_start >= 0) ~wait_start:!wait_start in
  match claim () with
  | `Hit v ->
    record ~hit:true;
    v
  | `Compute ->
    record ~hit:false;
    (match f () with
     | v ->
       Mutex.lock t.mu;
       Hashtbl.replace t.tbl key (Ready v);
       Condition.broadcast t.cond;
       Mutex.unlock t.mu;
       v
     | exception e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.mu;
       (* Failures are not cached: drop the marker so a waiter (or a
          later caller) recomputes. *)
       Hashtbl.remove t.tbl key;
       Condition.broadcast t.cond;
       Mutex.unlock t.mu;
       Printexc.raise_with_backtrace e bt)

let find_opt t key =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) -> Some v
    | Some In_flight | None -> None
  in
  Mutex.unlock t.mu;
  r

let reset t =
  Mutex.lock t.mu;
  (* Keep in-flight markers: their computations will still publish and
     wake waiters; only completed results are dropped. *)
  let ready =
    Hashtbl.fold (fun k s acc -> match s with Ready _ -> k :: acc | In_flight -> acc) t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) ready;
  Mutex.unlock t.mu

let length t =
  Mutex.lock t.mu;
  let n =
    Hashtbl.fold (fun _ s acc -> match s with Ready _ -> acc + 1 | In_flight -> acc) t.tbl 0
  in
  Mutex.unlock t.mu;
  n
