(** Domain fan-out for embarrassingly parallel work units.

    [parallel_map] distributes list elements over a fixed-size team of
    worker domains (stdlib [Domain]; no external dependency) and
    collects results {e in input order}, so callers that print rows
    afterwards produce output byte-identical to a serial run.

    Contract with callers:

    - [jobs <= 1] (or a singleton/empty input) takes today's exact
      serial path: no domain is spawned and [f] runs in the calling
      domain, in order.
    - With [jobs > 1], [f] must be safe to run concurrently with
      itself on {e distinct} elements.  Shared memo tables should go
      through {!Memo}, which deduplicates in-flight computations.
    - Each element is claimed by exactly one worker, so per-element
      lazies (e.g. a benchmark's kernels) are forced by a single
      domain.
    - Exceptions are captured per element and re-raised in the caller
      after all workers join; when several elements fail, the one with
      the smallest input index wins, deterministically.

    Worker teams are per call rather than a global persistent pool:
    nested [parallel_map] calls then simply spawn their own (small)
    teams instead of deadlocking on a shared fixed set of workers.

    When the {!Eprof} recorder is on, every fan-out (including the
    serial [jobs <= 1] path, so serial baselines are comparable)
    becomes a profiled {e region}: spawn/join/worker-loop/task
    intervals against the shared monotonic epoch, analyzed by
    [Obs.Engine].  With the recorder off the code path is exactly the
    uninstrumented one (one atomic load per call). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [~jobs:0] and absent
    [?jobs] resolve to. *)

val resolve_jobs : int option -> int
(** [resolve_jobs None] and [resolve_jobs (Some 0)] are
    [default_jobs ()]; negative values are clamped to [1]. *)

val parallel_map : ?jobs:int -> ?label:string -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map f xs], possibly computing elements on [jobs]
    domains (the caller counts as one).  Results are in input order.
    [?label] (default ["pool"]) names the profiled region in engine
    reports and traces; it has no effect on results. *)

val parallel_iter : ?jobs:int -> ?label:string -> ('a -> unit) -> 'a list -> unit
(** [parallel_map] for effects only.  Same ordering guarantee for
    exception reporting; no ordering guarantee for the effects
    themselves when [jobs > 1]. *)
