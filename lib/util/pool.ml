let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs = function
  | None -> default_jobs ()
  | Some 0 -> default_jobs ()
  | Some j when j < 0 -> 1
  | Some j -> j

(* Shared-counter work claiming: workers race on [next] and each index
   is claimed exactly once.  Results (or captured exceptions) land in a
   per-index slot, so collection order is input order regardless of
   completion order. *)
let run_team ~jobs f (arr : 'a array) : ('b, exn * Printexc.raw_backtrace) result array =
  let n = Array.length arr in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        slots.(i) <- Some r;
        loop ()
      end
    in
    loop ()
  in
  (* The calling domain is one of the team; spawn the other jobs-1
     (never more than there are elements). *)
  let spawned = List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Array.map (function Some r -> r | None -> assert false) slots

let parallel_map ?jobs f xs =
  let jobs = resolve_jobs jobs in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f xs
  | _ ->
    let results = run_team ~jobs f (Array.of_list xs) in
    (* Deterministic failure: the smallest failing input index wins,
       whatever the interleaving was. *)
    Array.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok _ -> ())
      results;
    Array.to_list (Array.map (function Ok v -> v | Error _ -> assert false) results)

let parallel_iter ?jobs f xs = ignore (parallel_map ?jobs f xs : unit list)
