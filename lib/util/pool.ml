let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs = function
  | None -> default_jobs ()
  | Some 0 -> default_jobs ()
  | Some j when j < 0 -> 1
  | Some j -> j

(* Shared-counter work claiming: workers race on [next] and each index
   is claimed exactly once.  Results (or captured exceptions) land in a
   per-index slot, so collection order is input order regardless of
   completion order.

   When Eprof is recording, each fan-out becomes a region with
   per-spawn, per-join, per-worker-loop and per-task intervals — the
   raw material for Obs.Engine's exact wall × domains decomposition.
   [prof] is latched once per call, so a region's events are all or
   nothing even if the recorder is toggled mid-flight. *)
let run_team ~jobs ~label f (arr : 'a array) : ('b, exn * Printexc.raw_backtrace) result array =
  let n = Array.length arr in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let prof = Eprof.enabled () in
  let region = if prof then Eprof.new_region () else 0 in
  if prof then
    Eprof.emit
      (Eprof.Region_begin
         { region; label; jobs; caller = Eprof.self (); t = Eprof.now_rel_ns () });
  let worker () =
    let dom = if prof then Eprof.self () else 0 in
    if prof then Eprof.worker_start ();
    let w0 = if prof then Eprof.now_rel_ns () else 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let t0 = if prof then Eprof.now_rel_ns () else 0 in
        let r =
          match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        (* Timestamp before the slot write and event emission: the task
           interval is [f arr.(i)] exactly; bookkeeping is dispatch. *)
        if prof then
          Eprof.emit (Eprof.Task { region; dom; index = i; start = t0; stop = Eprof.now_rel_ns () });
        slots.(i) <- Some r;
        loop ()
      end
    in
    loop ();
    if prof then Eprof.emit (Eprof.Worker { region; dom; start = w0; stop = Eprof.now_rel_ns () })
  in
  (* The calling domain is one of the team; spawn the other jobs-1
     (never more than there are elements). *)
  let spawn1 () =
    if not prof then Domain.spawn worker
    else begin
      let t0 = Eprof.now_rel_ns () in
      let d = Domain.spawn worker in
      Eprof.emit
        (Eprof.Spawn
           { region; dom = (Domain.get_id d :> int); start = t0; stop = Eprof.now_rel_ns () });
      d
    end
  in
  let join1 d =
    if not prof then Domain.join d
    else begin
      let t0 = Eprof.now_rel_ns () in
      Domain.join d;
      Eprof.emit
        (Eprof.Join
           { region; dom = (Domain.get_id d :> int); start = t0; stop = Eprof.now_rel_ns () })
    end
  in
  let spawned = List.init (min (jobs - 1) (n - 1)) (fun _ -> spawn1 ()) in
  worker ();
  List.iter join1 spawned;
  if prof then Eprof.emit (Eprof.Region_end { region; t = Eprof.now_rel_ns () });
  Array.map (function Some r -> r | None -> assert false) slots

(* Serial path under profiling: still a region (domains = 1), so the
   speedup table can compare per-region serial and parallel walls on
   equal footing.  Events are balanced even if [f] raises. *)
let serial_map_profiled ~label f xs =
  let region = Eprof.new_region () in
  let dom = Eprof.self () in
  Eprof.emit (Eprof.Region_begin { region; label; jobs = 1; caller = dom; t = Eprof.now_rel_ns () });
  Eprof.worker_start ();
  let w0 = Eprof.now_rel_ns () in
  Fun.protect
    ~finally:(fun () ->
      Eprof.emit (Eprof.Worker { region; dom; start = w0; stop = Eprof.now_rel_ns () });
      Eprof.emit (Eprof.Region_end { region; t = Eprof.now_rel_ns () }))
    (fun () ->
      List.mapi
        (fun i x ->
          let t0 = Eprof.now_rel_ns () in
          let y = f x in
          Eprof.emit (Eprof.Task { region; dom; index = i; start = t0; stop = Eprof.now_rel_ns () });
          y)
        xs)

let parallel_map ?jobs ?(label = "pool") f xs =
  let jobs = resolve_jobs jobs in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 ->
    if Eprof.enabled () then serial_map_profiled ~label f xs else List.map f xs
  | _ ->
    let results = run_team ~jobs ~label f (Array.of_list xs) in
    (* Deterministic failure: the smallest failing input index wins,
       whatever the interleaving was. *)
    Array.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok _ -> ())
      results;
    Array.to_list (Array.map (function Ok v -> v | Error _ -> assert false) results)

let parallel_iter ?jobs ?label f xs = ignore (parallel_map ?jobs ?label f xs : unit list)
