(** Domain-safe memo table with in-flight deduplication.

    A [find_or_compute] that misses marks the key in-flight, releases
    the lock, computes, then publishes.  A second domain asking for the
    same key while it is being computed blocks on a condition variable
    instead of duplicating the work — exactly the access pattern of the
    experiment caches, where many benchmark tasks share one baseline
    run.

    If the computation raises, the in-flight marker is removed (the
    failure is {e not} cached), every waiter is woken to retry or
    recompute, and the exception propagates to the computing caller.

    Every table keeps always-on hit/miss/wait counters (plain atomic
    bumps on a path that already takes the table mutex), so [stats]
    works with engine profiling off.  Tables created with [?name]
    additionally appear in the global [Eprof.memo_stats] roster
    used by [rfh profile] and [rfh engine]. *)

type ('k, 'v) t

type stats = Eprof.memo_stats = {
  table : string;
  lookups : int;  (** = hits + misses + waits, an invariant *)
  hits : int;     (** found Ready without blocking *)
  misses : int;   (** this caller computed (including post-failure retries) *)
  waits : int;    (** blocked on another domain's in-flight compute *)
  wait_ns : int;  (** total time spent blocked *)
}

val create : ?name:string -> int -> ('k, 'v) t
(** [create n]: initial capacity hint, as for [Hashtbl.create].
    [?name] registers the table's counters globally (see {!stats}). *)

val stats : ('k, 'v) t -> stats
(** Cumulative counters since creation; never reset (not even by
    {!reset}), so diffs across a window are meaningful. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Completed entries only; never blocks on in-flight keys.  Not
    counted in {!stats} (only [find_or_compute] is). *)

val reset : ('k, 'v) t -> unit
(** Drop completed entries.  In-flight computations finish and publish
    normally; callers racing a reset may recompute. *)

val length : ('k, 'v) t -> int
(** Completed entries. *)
