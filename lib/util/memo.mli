(** Domain-safe memo table with in-flight deduplication.

    A [find_or_compute] that misses marks the key in-flight, releases
    the lock, computes, then publishes.  A second domain asking for the
    same key while it is being computed blocks on a condition variable
    instead of duplicating the work — exactly the access pattern of the
    experiment caches, where many benchmark tasks share one baseline
    run.

    If the computation raises, the in-flight marker is removed (the
    failure is {e not} cached), every waiter is woken to retry or
    recompute, and the exception propagates to the computing caller. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create n]: initial capacity hint, as for [Hashtbl.create]. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Completed entries only; never blocks on in-flight keys. *)

val reset : ('k, 'v) t -> unit
(** Drop completed entries.  In-flight computations finish and publish
    normally; callers racing a reset may recompute. *)

val length : ('k, 'v) t -> int
(** Completed entries. *)
