(** Host-engine profiling primitives: the recorder behind [Obs.Engine].

    Everything the *simulated* machine does is observed by [lib/obs];
    this module watches the *host* engine instead — worker-domain
    teams ({!Pool}), memo tables ({!Memo}) and the mutexes guarding
    the telemetry registries.  It lives in [lib/util] because the pool
    and the memo tables cannot depend on [obs]; the analyzer that
    turns these raw events into an exact parallel-efficiency
    decomposition is [Obs.Engine].

    Recording discipline (same contract as [Obs.Audit]):

    - off by default; instrumented call sites guard with {!enabled},
      which is one atomic load — a disabled run takes today's exact
      code path, so results (and run manifests) are byte-identical
      whether the recorder exists or not;
    - {!start} clears the event buffer and pins the {e shared
      monotonic epoch}: every timestamp from every domain is
      nanoseconds since that single epoch (CLOCK_MONOTONIC is global
      across domains), so multi-domain trace rows align without
      per-domain rebasing;
    - events are appended under one private mutex.  Events are
      per-task / per-contended-acquisition, not per simulated
      instruction, so the recording cost is negligible against the
      work being measured (and is itself attributed: it lands in the
      dispatch/idle buckets, never in task time).

    The memo counters are the exception to "off by default": they are
    plain atomic bumps on paths that already take a mutex, so they are
    {e always} maintained — [rfh profile] can print cache hit rates
    without enabling anything. *)

val enabled : unit -> bool
(** One atomic load — instrumented call sites guard on this. *)

val start : unit -> unit
(** Clear recorded events, pin the epoch to now, enable recording. *)

val stop : unit -> unit
(** Disable recording.  Events remain readable until the next
    {!start}. *)

val epoch_ns : unit -> int64
(** The absolute monotonic timestamp of the last {!start} — the zero
    point of every event below. *)

val now_rel_ns : unit -> int
(** Nanoseconds since the epoch (one clock call). *)

val self : unit -> int
(** The calling domain's id as an int (trace [tid]). *)

(** {1 Events}

    All timestamps are {!now_rel_ns} values.  [region] ids come from
    {!new_region} and are unique within a recording window. *)

type event =
  | Region_begin of { region : int; label : string; jobs : int; caller : int; t : int }
      (** A {!Pool} fan-out began: [jobs] is the requested setting,
          [caller] the calling domain (always part of the team). *)
  | Region_end of { region : int; t : int }
  | Spawn of { region : int; dom : int; start : int; stop : int }
      (** One [Domain.spawn] call on the caller; [dom] is the spawned
          domain's id. *)
  | Join of { region : int; dom : int; start : int; stop : int }
      (** One [Domain.join] call on the caller. *)
  | Worker of { region : int; dom : int; start : int; stop : int }
      (** One team member's whole claim-execute loop (the caller
          records one too). *)
  | Task of { region : int; dom : int; index : int; start : int; stop : int }
      (** One work item: [f arr.(index)] exactly — slot writes, index
          claiming and event recording are outside the interval. *)
  | Lock_wait of { name : string; dom : int; start : int; stop : int }
      (** A contended acquisition of a profiled mutex: the wait
          between the failed [try_lock] and lock acquisition. *)
  | Memo_wait of { table : string; dom : int; start : int; stop : int }
      (** A {!Memo} lookup blocked on another domain's in-flight
          computation of the same key. *)

val new_region : unit -> int
val emit : event -> unit
val events : unit -> event list
(** Recorded events in emission order. *)

(** {1 Observer hooks}

    [Obs.Gcprof] rides on the recorder through two hooks.  Both cost
    one atomic load when not installed and run on the {e emitting}
    domain: the emit hook sees every {!emit}ed event (after it is
    recorded), so it can snapshot per-domain GC counters at
    [Region_begin]/[Region_end]; the worker-start hook fires at the
    top of every profiled worker loop ({!worker_start}, called by
    {!Pool}), before the first task, so the observer can tag the
    domain's runtime ring buffer ahead of any GC it may trigger. *)

val set_emit_hook : (event -> unit) option -> unit
val set_worker_start_hook : (unit -> unit) option -> unit

val worker_start : unit -> unit
(** Invoke the worker-start hook if one is installed (called by
    {!Pool} at the start of each profiled worker loop). *)

(** {1 Profiled locks}

    A profiled mutex costs nothing when recording is off
    ([lock_acquire] is then exactly [Mutex.lock]).  When on, an
    uncontended acquisition is a [try_lock] plus one atomic bump; a
    contended one additionally times the wait and records a
    {!Lock_wait} event.  Unlocking is the plain [Mutex.unlock]. *)

type lock

val lock_create : string -> lock
(** Create and register a named lock profile (done once at module
    init by the instrumented module). *)

val lock_acquire : lock -> Mutex.t -> unit

type lock_stats = {
  lock : string;
  acquisitions : int;  (** acquisitions observed while recording *)
  contended : int;     (** of which the [try_lock] failed *)
  wait_ns : int;       (** total contended wait *)
}

val lock_stats : unit -> lock_stats list
(** Cumulative per-lock counters, sorted by name.  Counters only
    advance while recording is enabled; diff two snapshots to scope a
    window. *)

(** {1 Memo counters}

    Maintained unconditionally (cheap atomic bumps on an
    already-locking path) so cache hit rates are observable without
    profiling; the wait {e events} still require {!enabled}. *)

type memo_counters

val memo_counters : ?name:string -> unit -> memo_counters
(** Allocate a counter block; a [?name] registers it for
    {!memo_stats}. *)

val memo_counter_name : memo_counters -> string
(** The registered name, or ["<anon>"]. *)

val memo_record :
  memo_counters -> hit:bool -> waited:bool -> wait_start:int -> unit
(** Classify one completed [find_or_compute]: exactly one of
    hits/misses/waits is bumped ([waited && hit] counts as a wait;
    [waited && not hit] counts as a miss — the rare post-failure
    recompute — with the wait duration still accumulated), and a
    {!Memo_wait} event is emitted when recording is on. *)

type memo_stats = {
  table : string;
  lookups : int;  (** = hits + misses + waits, an invariant *)
  hits : int;
  misses : int;
  waits : int;    (** lookups that blocked on an in-flight compute *)
  wait_ns : int;
}

val stats_of_counters : string -> memo_counters -> memo_stats

val memo_stats : unit -> memo_stats list
(** Cumulative stats of every {e named} table, sorted by name. *)
