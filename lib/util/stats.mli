(** Small numeric helpers used by experiment drivers and tests. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0.0 on the empty list. *)

val sum : float list -> float

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; 0 if [whole = 0]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b]; 0 if [b = 0]. *)

val clamp : lo:float -> hi:float -> float -> float

val round_to : int -> float -> float
(** [round_to d x] rounds [x] to [d] decimal places. *)

type histogram
(** Integer-keyed counting histogram. *)

val histogram : unit -> histogram
val hincr : histogram -> ?by:int -> int -> unit
val hcount : histogram -> int -> int
val htotal : histogram -> int
val hbins : histogram -> (int * int) list
(** Sorted (key, count) pairs. *)

val hbins_unsorted : histogram -> (int * int) list
(** (key, count) pairs in hash order — an O(n) copy for callers that
    must minimize time spent holding a lock and can sort afterwards. *)

val hreset : histogram -> unit
(** Drop every bin. *)

val hfraction : histogram -> (int -> bool) -> float
(** Fraction of total mass whose key satisfies the predicate. *)
