type t = {
  strand_of_instr : int array;
  starts : bool array;
  starts_bits : Util.Bitset.t;    (* same content as [starts], O(1) words *)
  intervals : (int * int) array;  (* strand id -> first, last instr id *)
}

let m_partitions = Obs.Metrics.counter "strand.partitions"
let m_strands = Obs.Metrics.counter "strand.strands"
let m_strand_len = Obs.Metrics.histogram "strand.instrs_per_strand"

type boundary_kinds = {
  long_latency : bool;
  backward : bool;
  merge : bool;
}

let all_boundaries = { long_latency = true; backward = true; merge = true }

let compute ?(kinds = all_boundaries) (k : Ir.Kernel.t) (cfg : Analysis.Cfg.t)
    (reaching : Analysis.Reaching.t) =
  let nb = Ir.Kernel.block_count k in
  let ni = Ir.Kernel.instr_count k in
  let reachable = Analysis.Cfg.reachable cfg in
  let backward_target = Analysis.Cfg.backward_targets cfg in
  (* Pending long-latency definition sites, as bitsets over instr ids. *)
  let out_pending = Array.init nb (fun _ -> Util.Bitset.create ni) in
  let boundary_before = Array.make ni false in
  let block_start_boundary = Array.make nb false in
  let prev_block_ends_backward = Array.make nb false in
  Array.iter
    (fun (b : Ir.Block.t) ->
      let l = b.Ir.Block.label in
      if l + 1 < nb && Ir.Terminator.is_backward b.Ir.Block.term ~at:l then
        prev_block_ends_backward.(l + 1) <- true)
    k.Ir.Kernel.blocks;
  (* Single pass in label order: forward preds are already done; cycles
     are cut at backward targets where the pending set is cleared. *)
  for l = 0 to nb - 1 do
    let b = k.Ir.Kernel.blocks.(l) in
    let pending = Util.Bitset.create ni in
    if l = 0 then ()
    else if backward_target.(l) || prev_block_ends_backward.(l) then
      (* The pending set always clears here (the dataflow stays a single
         pass), but the boundary itself is subject to [kinds.backward]. *)
      block_start_boundary.(l) <- kinds.backward
    else begin
      let preds = List.filter (fun p -> reachable.(p)) cfg.Analysis.Cfg.preds.(l) in
      match preds with
      | [] -> ()  (* unreachable or orphan block: empty pending *)
      | first :: rest ->
        let may = Util.Bitset.copy out_pending.(first) in
        let must = Util.Bitset.copy out_pending.(first) in
        List.iter
          (fun p ->
            ignore (Util.Bitset.union_into ~dst:may out_pending.(p));
            ignore (Util.Bitset.inter_into ~dst:must out_pending.(p)))
          rest;
        if Util.Bitset.equal may must then
          ignore (Util.Bitset.union_into ~dst:pending may)
        else if kinds.merge then
          (* Uncertain merge (Fig. 5(b)): extra strand endpoint. *)
          block_start_boundary.(l) <- true
        else ignore (Util.Bitset.union_into ~dst:pending must)
    end;
    Array.iter
      (fun (i : Ir.Instr.t) ->
        let id = i.Ir.Instr.id in
        let consumes_pending =
          List.exists
            (fun r ->
              List.exists
                (fun d -> Util.Bitset.mem pending d)
                (Analysis.Reaching.reaching_before reaching ~instr_id:id r))
            i.Ir.Instr.srcs
        in
        if consumes_pending then begin
          boundary_before.(id) <- kinds.long_latency;
          Util.Bitset.clear_all pending
        end;
        if Ir.Instr.is_long_latency i && Option.is_some i.Ir.Instr.dst then
          Util.Bitset.set pending id)
      b.Ir.Block.instrs;
    if Ir.Terminator.is_backward b.Ir.Block.term ~at:l then Util.Bitset.clear_all pending;
    out_pending.(l) <- pending
  done;
  (* Project boundaries onto layout order and number the strands. *)
  let strand_of_instr = Array.make ni 0 in
  let starts = Array.make ni false in
  let current = ref 0 in
  let pending_block_boundary = ref false in
  let seen_any = ref false in
  Array.iter
    (fun (b : Ir.Block.t) ->
      if block_start_boundary.(b.Ir.Block.label) then pending_block_boundary := true;
      Array.iter
        (fun (i : Ir.Instr.t) ->
          let id = i.Ir.Instr.id in
          if (!pending_block_boundary || boundary_before.(id)) && !seen_any then begin
            incr current;
            starts.(id) <- true
          end;
          if not !seen_any then starts.(id) <- true;
          seen_any := true;
          pending_block_boundary := false;
          strand_of_instr.(id) <- !current)
        b.Ir.Block.instrs)
    k.Ir.Kernel.blocks;
  let num = if ni = 0 then 0 else !current + 1 in
  let intervals = Array.make num (0, -1) in
  for id = 0 to ni - 1 do
    let s = strand_of_instr.(id) in
    let first, last = intervals.(s) in
    let first = if last < 0 then id else first in
    intervals.(s) <- (first, id)
  done;
  Obs.Metrics.incr m_partitions;
  Obs.Metrics.incr ~by:num m_strands;
  Array.iter
    (fun (first, last) -> Obs.Metrics.observe m_strand_len (float_of_int (last - first + 1)))
    intervals;
  if Obs.Audit.is_enabled () then
    Array.iteri
      (fun id strand ->
        if starts.(id) then Obs.Audit.emit (Obs.Audit.Strand_boundary { instr = id; strand }))
      strand_of_instr;
  let starts_bits = Util.Bitset.create ni in
  Array.iteri (fun id b -> if b then Util.Bitset.set starts_bits id) starts;
  { strand_of_instr; starts; starts_bits; intervals }

let num_strands t = Array.length t.intervals

let strand_of_instr t id = t.strand_of_instr.(id)

let starts_strand t id = t.starts.(id)

let starts_bits t = t.starts_bits

let same_strand t a b = t.strand_of_instr.(a) = t.strand_of_instr.(b)

let strand_interval t s = t.intervals.(s)

let strand_ids t = List.init (num_strands t) Fun.id

let boundary_count t = num_strands t
