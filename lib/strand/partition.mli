(** Strand partitioning (paper Sec. 4.1).

    A strand is a sequence of instructions in which every dependence on
    a long-latency instruction is on an operation issued in a previous
    strand.  Strand boundaries are placed:

    - before the first consumer of a long-latency value produced in the
      current strand (the warp is descheduled there until all pending
      long-latency operations resolve);
    - after backward branches, and at blocks targeted by backward
      branches (strands may not contain backward branches);
    - at control-flow merges where the set of pending long-latency
      operations differs between incoming paths (Fig. 5(b)) — the extra
      endpoint that resolves the uncertainty.

    Strands are reported as layout intervals of instruction ids: within
    a strand only forward branches occur, so every execution path
    between two same-strand instructions stays inside the interval,
    which is what makes interval-based ORF occupancy (Fig. 7) sound.

    The pending-operation dataflow needs no fixpoint: every CFG cycle
    passes through a backward-branch target, where the pending set is
    cleared, so a single pass in layout order is exact. *)

type t

type boundary_kinds = {
  long_latency : bool;  (** boundaries before same-strand long-latency consumers *)
  backward : bool;      (** boundaries at backward branches and their targets *)
  merge : bool;         (** extra endpoints at uncertain merges (Fig. 5(b)) *)
}

val all_boundaries : boundary_kinds
(** The paper's strand definition — the default. *)

val compute : ?kinds:boundary_kinds -> Ir.Kernel.t -> Analysis.Cfg.t -> Analysis.Reaching.t -> t
(** Disabling boundary kinds yields the idealized partitions of the
    Sec. 7 limit study: without [long_latency] boundaries, values
    survive deschedules (the never-flush idealization); without
    [backward], values may live in the ORF across loop iterations. *)

val num_strands : t -> int

val strand_of_instr : t -> int -> int

val starts_strand : t -> int -> bool
(** [true] iff a strand boundary sits immediately before this
    instruction — the bit the compiler encodes (Sec. 6.5, encoded
    equivalently as end-of-strand on the dynamic predecessor).  The
    two-level scheduler deschedules a warp at such an instruction iff
    it still has outstanding long-latency operations. *)

val starts_bits : t -> Util.Bitset.t
(** The {!starts_strand} predicate as a bitset over instruction ids —
    the form the simulator predecode ({!Sim.Dec}) copies out once per
    kernel so the cycle loop never calls back into this module.  Shared
    with the partition; callers must not mutate it. *)

val same_strand : t -> int -> int -> bool

val strand_interval : t -> int -> int * int
(** [(first, last)] instruction ids of the strand, inclusive. *)

val strand_ids : t -> int list
(** All strand ids, ascending. *)

val boundary_count : t -> int
(** Number of strand boundaries (= [num_strands - 1] plus one per
    kernel, used by the encoding-overhead study). *)
