type t = {
  block_live_in : Util.Bitset.t array;
  block_live_out : Util.Bitset.t array;
  after_instr : Util.Bitset.t array;  (* indexed by instruction id *)
}

let compute (k : Ir.Kernel.t) (cfg : Cfg.t) =
  let nb = Ir.Kernel.block_count k in
  let nr = k.Ir.Kernel.num_regs in
  let use = Array.init nb (fun _ -> Util.Bitset.create nr) in
  let def = Array.init nb (fun _ -> Util.Bitset.create nr) in
  (* use(b): read before any write in b; def(b): written in b. *)
  Array.iter
    (fun (b : Ir.Block.t) ->
      let l = b.Ir.Block.label in
      Array.iter
        (fun (i : Ir.Instr.t) ->
          List.iter
            (fun r -> if not (Util.Bitset.mem def.(l) r) then Util.Bitset.set use.(l) r)
            i.Ir.Instr.srcs;
          Option.iter (fun r -> Util.Bitset.set def.(l) r) i.Ir.Instr.dst)
        b.Ir.Block.instrs)
    k.Ir.Kernel.blocks;
  let live_in = Array.init nb (fun _ -> Util.Bitset.create nr) in
  let live_out = Array.init nb (fun _ -> Util.Bitset.create nr) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      let out = Util.Bitset.create nr in
      List.iter (fun s -> ignore (Util.Bitset.union_into ~dst:out live_in.(s))) cfg.Cfg.succs.(b);
      if not (Util.Bitset.equal out live_out.(b)) then begin
        changed := true;
        live_out.(b) <- out
      end;
      let inb = Util.Bitset.copy live_out.(b) in
      ignore (Util.Bitset.diff_into ~dst:inb def.(b));
      ignore (Util.Bitset.union_into ~dst:inb use.(b));
      if not (Util.Bitset.equal inb live_in.(b)) then begin
        changed := true;
        live_in.(b) <- inb
      end
    done
  done;
  (* Per-instruction live-after sets by a backward walk of each block. *)
  let after_instr = Array.init (Ir.Kernel.instr_count k) (fun _ -> Util.Bitset.create nr) in
  Array.iter
    (fun (b : Ir.Block.t) ->
      let live = Util.Bitset.copy live_out.(b.Ir.Block.label) in
      let n = Array.length b.Ir.Block.instrs in
      for idx = n - 1 downto 0 do
        let i = b.Ir.Block.instrs.(idx) in
        after_instr.(i.Ir.Instr.id) <- Util.Bitset.copy live;
        Option.iter (fun r -> Util.Bitset.clear live r) i.Ir.Instr.dst;
        List.iter (fun r -> Util.Bitset.set live r) i.Ir.Instr.srcs
      done)
    k.Ir.Kernel.blocks;
  { block_live_in = live_in; block_live_out = live_out; after_instr }

let live_in_bits t b = t.block_live_in.(b)
let live_out_bits t b = t.block_live_out.(b)
let live_after_bits t ~instr_id = t.after_instr.(instr_id)

let set_of_bitset bs =
  let acc = ref Ir.Reg.Set.empty in
  Util.Bitset.iter bs (fun r -> acc := Ir.Reg.Set.add r !acc);
  !acc

let live_in t b = set_of_bitset t.block_live_in.(b)
let live_out t b = set_of_bitset t.block_live_out.(b)

let live_after_instr t ~instr_id r = Util.Bitset.mem t.after_instr.(instr_id) r
