type t = {
  registers_used : int;
  max_live : int;
  max_live_instr : int;
}

let compute (k : Ir.Kernel.t) (cfg : Cfg.t) (liveness : Liveness.t) =
  ignore cfg;
  let used = Hashtbl.create 32 in
  Ir.Kernel.iter_instrs k (fun _ i ->
      List.iter (fun r -> Hashtbl.replace used r ()) i.Ir.Instr.srcs;
      Option.iter (fun r -> Hashtbl.replace used r ()) i.Ir.Instr.dst);
  let max_live = ref 0 in
  let max_at = ref 0 in
  Ir.Kernel.iter_instrs k (fun _ i ->
      (* Registers live just after each instruction: a popcount of the
         precomputed live-after bitset, not a per-register probe loop. *)
      let n = Util.Bitset.count (Liveness.live_after_bits liveness ~instr_id:i.Ir.Instr.id) in
      if n > !max_live then begin
        max_live := n;
        max_at := i.Ir.Instr.id
      end);
  { registers_used = Hashtbl.length used; max_live = !max_live; max_live_instr = !max_at }

let resident_warps ?(mrf_bytes = 128 * 1024) ?(threads_per_warp = 32) ?(bytes_per_reg = 4)
    registers =
  if registers <= 0 then max_int
  else mrf_bytes / (registers * bytes_per_reg * threads_per_warp)
