(** Backward liveness over architectural registers.

    The RFC baseline uses this as the "static liveness information
    encoded in the program binary" that elides writebacks of dead
    values (paper Sec. 2.2); the allocator uses it for live-out tests
    at strand boundaries. *)

type t

val compute : Ir.Kernel.t -> Cfg.t -> t

val live_in_bits : t -> int -> Util.Bitset.t
(** Live registers at block entry, as the analysis's own bitset — no
    materialisation.  Treat as read-only: it is the stored dataflow
    fact, not a copy. *)

val live_out_bits : t -> int -> Util.Bitset.t
(** Live registers at block exit; same aliasing caveat. *)

val live_after_bits : t -> instr_id:int -> Util.Bitset.t
(** Registers live immediately after the instruction; same aliasing
    caveat.  [Util.Bitset.count] of this is the register pressure at
    that point. *)

val live_in : t -> int -> Ir.Reg.Set.t
(** Live registers at block entry.  Materialises a fresh set per call —
    prefer {!live_in_bits} on hot paths. *)

val live_out : t -> int -> Ir.Reg.Set.t
(** Live registers at block exit (materialising; see {!live_out_bits}). *)

val live_after_instr : t -> instr_id:int -> Ir.Reg.t -> bool
(** Is the register live immediately after the given instruction
    (i.e. might some path still read the value it holds)?  O(1):
    per-instruction sets are precomputed. *)
