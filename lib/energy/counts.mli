(** Register-file access counters and their conversion to energy.

    One count unit is one warp-instruction operand access: 8 clusters
    each performing a 128-bit bank access.  The factor 8 is constant
    across all configurations and cancels in normalized results, so
    counts are converted with per-128-bit energies directly. *)

type t

val create : unit -> t
val copy : t -> t
val merge_into : dst:t -> t -> unit

val add_read : t -> Model.level -> Model.datapath -> ?n:int -> unit -> unit
val add_write : t -> Model.level -> Model.datapath -> ?n:int -> unit -> unit

val add_rfc_probe : t -> ?n:int -> unit -> unit
(** RFC tag lookups that miss (tag energy, no data access). *)

val reads : t -> Model.level -> int
(** Total reads of a level across both datapaths. *)

val writes : t -> Model.level -> int

val reads_dp : t -> Model.level -> Model.datapath -> int
val writes_dp : t -> Model.level -> Model.datapath -> int
val rfc_probes : t -> int
val total_reads : t -> int
val total_writes : t -> int

type level_energy = {
  level : Model.level;
  access : float;  (** bank access energy, pJ *)
  wire : float;    (** operand distribution wire energy, pJ *)
}

type breakdown = {
  levels : level_energy list;  (** MRF, ORF, RFC, LRF in that order *)
  total : float;
}

val energy : Params.t -> orf_entries:int -> t -> breakdown
(** [orf_entries] selects the Table-3 row used for ORF/RFC accesses. *)

val json_key : Model.level -> string
(** Lowercase level name used as the JSON object key ("mrf", ...). *)

val to_json : t -> Obs.Json.t
(** Datapath-resolved counts per level, keyed by lowercase level name
    in MRF, ORF, RFC, LRF order, plus ["rfc_probes"] — the shape run
    manifests embed.  Field order is fixed, so encodings of equal
    counts are byte-identical. *)

val of_json : Obs.Json.t -> (t, string) result
(** Decode a {!to_json} rendering; [Error] names the first missing or
    ill-typed field. *)

val pp : Format.formatter -> t -> unit
