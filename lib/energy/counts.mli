(** Register-file access counters and their conversion to energy.

    One count unit is one warp-instruction operand access: 8 clusters
    each performing a 128-bit bank access.  The factor 8 is constant
    across all configurations and cancels in normalized results, so
    counts are converted with per-128-bit energies directly. *)

type t

val create : unit -> t
val copy : t -> t
val merge_into : dst:t -> t -> unit
(** Adds [src] into [dst], attribution tables included ([dst] adopts a
    copy of [src]'s table if it has none).
    @raise Invalid_argument if both carry tables of different sizes. *)

val add_read : t -> Model.level -> Model.datapath -> ?pc:int -> ?n:int -> unit -> unit
(** [?pc] is the static instruction id the access belongs to; it feeds
    the attribution table when one is enabled and is ignored (at the
    cost of one branch) otherwise.  Out-of-range pcs are dropped from
    attribution but still counted in the aggregate. *)

val add_write : t -> Model.level -> Model.datapath -> ?pc:int -> ?n:int -> unit -> unit

val add_rfc_probe : t -> ?pc:int -> ?n:int -> unit -> unit
(** RFC tag lookups that miss (tag energy, no data access). *)

(** {2 Allocation-free variants}

    Same counting semantics as the [add_*] functions, with plain
    labelled int arguments instead of options: a call allocates nothing
    (the [?pc] optionals box a [Some] per call).  Pass [pc = -1] for "no
    attribution" — it counts in the aggregate and is dropped from the
    attribution table, like any out-of-range pc.  These are what the
    simulators' per-instruction paths use. *)

val bump_read : t -> Model.level -> Model.datapath -> pc:int -> n:int -> unit
val bump_write : t -> Model.level -> Model.datapath -> pc:int -> n:int -> unit
val bump_rfc_probe : t -> pc:int -> n:int -> unit

(** {1 Per-instruction attribution}

    Off by default: [create] allocates no side table and the [?pc]
    arguments cost one branch.  After [enable_attribution t ~instrs],
    every count carrying a [?pc] is also charged to that instruction,
    so energy can be ranked over the static instruction stream.  The
    attribution table never feeds {!to_json} — manifests are
    unaffected. *)

val enable_attribution : t -> instrs:int -> unit
(** [instrs] is the kernel's instruction count (pc range). *)

val attribution_enabled : t -> bool

val attributed_instrs : t -> int
(** Size of the attribution pc range; [0] when disabled. *)

val instr_energy : Params.t -> orf_entries:int -> t -> pc:int -> float
(** Register-file energy (pJ) attributed to one instruction; [0.0]
    when attribution is off or [pc] is out of range. *)

val attributed_energies : Params.t -> orf_entries:int -> t -> float array
(** Per-pc attributed energy for the whole instruction stream; [[||]]
    when attribution is off.  Sums to {!energy}'s [total] when every
    recorded count carried a [?pc]. *)

val top_instrs : Params.t -> orf_entries:int -> ?n:int -> t -> (int * float) list
(** The [n] highest-energy instructions as [(pc, pJ)], energy
    descending, pc ascending on ties. *)

val reads : t -> Model.level -> int
(** Total reads of a level across both datapaths. *)

val writes : t -> Model.level -> int

val reads_dp : t -> Model.level -> Model.datapath -> int
val writes_dp : t -> Model.level -> Model.datapath -> int
val rfc_probes : t -> int
val total_reads : t -> int
val total_writes : t -> int

type level_energy = {
  level : Model.level;
  access : float;  (** bank access energy, pJ *)
  wire : float;    (** operand distribution wire energy, pJ *)
}

type breakdown = {
  levels : level_energy list;  (** MRF, ORF, RFC, LRF in that order *)
  total : float;
}

val energy : Params.t -> orf_entries:int -> t -> breakdown
(** [orf_entries] selects the Table-3 row used for ORF/RFC accesses. *)

val json_key : Model.level -> string
(** Lowercase level name used as the JSON object key ("mrf", ...). *)

val to_json : t -> Obs.Json.t
(** Datapath-resolved counts per level, keyed by lowercase level name
    in MRF, ORF, RFC, LRF order, plus ["rfc_probes"] — the shape run
    manifests embed.  Field order is fixed, so encodings of equal
    counts are byte-identical. *)

val of_json : Obs.Json.t -> (t, string) result
(** Decode a {!to_json} rendering; [Error] names the first missing or
    ill-typed field. *)

val pp : Format.formatter -> t -> unit
