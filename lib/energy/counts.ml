let levels = [| Model.Mrf; Model.Orf; Model.Rfc; Model.Lrf |]
let num_levels = Array.length levels

let level_index = function Model.Mrf -> 0 | Model.Orf -> 1 | Model.Rfc -> 2 | Model.Lrf -> 3
let dp_index = function Model.Private -> 0 | Model.Shared -> 1

(* Optional per-instruction attribution: when enabled, every count
   carrying a [?pc] also lands in a pc-indexed row of [areads]/
   [awrites] (laid out [pc * cells + cell]) so energy can be charged
   back to the static instruction that caused the access.  The
   aggregate arrays stay authoritative; attribution is a side table
   and never feeds manifests. *)
type attrib = {
  instrs : int;
  areads : int array;
  awrites : int array;
  aprobes : int array;
}

type t = {
  reads : int array;   (* level * datapath *)
  writes : int array;
  mutable probes : int;
  mutable attrib : attrib option;
}

let cell level dp = (level_index level * 2) + dp_index dp

let attr_cells = num_levels * 2

let create () =
  {
    reads = Array.make (num_levels * 2) 0;
    writes = Array.make (num_levels * 2) 0;
    probes = 0;
    attrib = None;
  }

let enable_attribution t ~instrs =
  t.attrib <-
    Some
      {
        instrs;
        areads = Array.make (instrs * attr_cells) 0;
        awrites = Array.make (instrs * attr_cells) 0;
        aprobes = Array.make instrs 0;
      }

let attribution_enabled t = t.attrib <> None

let attributed_instrs t = match t.attrib with None -> 0 | Some a -> a.instrs

let copy_attrib a =
  {
    instrs = a.instrs;
    areads = Array.copy a.areads;
    awrites = Array.copy a.awrites;
    aprobes = Array.copy a.aprobes;
  }

let copy t =
  {
    reads = Array.copy t.reads;
    writes = Array.copy t.writes;
    probes = t.probes;
    attrib = Option.map copy_attrib t.attrib;
  }

let merge_into ~dst src =
  Array.iteri (fun i v -> dst.reads.(i) <- dst.reads.(i) + v) src.reads;
  Array.iteri (fun i v -> dst.writes.(i) <- dst.writes.(i) + v) src.writes;
  dst.probes <- dst.probes + src.probes;
  match (dst.attrib, src.attrib) with
  | _, None -> ()
  | None, Some sa -> dst.attrib <- Some (copy_attrib sa)
  | Some da, Some sa when da.instrs = sa.instrs ->
    Array.iteri (fun i v -> da.areads.(i) <- da.areads.(i) + v) sa.areads;
    Array.iteri (fun i v -> da.awrites.(i) <- da.awrites.(i) + v) sa.awrites;
    Array.iteri (fun i v -> da.aprobes.(i) <- da.aprobes.(i) + v) sa.aprobes
  | Some _, Some _ -> invalid_arg "Energy.Counts.merge_into: attribution tables differ in size"

let attr_bump arr a c pc n =
  if pc >= 0 && pc < a.instrs then arr.((pc * attr_cells) + c) <- arr.((pc * attr_cells) + c) + n

let add_read t level dp ?pc ?(n = 1) () =
  let c = cell level dp in
  t.reads.(c) <- t.reads.(c) + n;
  match (t.attrib, pc) with
  | Some a, Some pc -> attr_bump a.areads a c pc n
  | _ -> ()

let add_write t level dp ?pc ?(n = 1) () =
  let c = cell level dp in
  t.writes.(c) <- t.writes.(c) + n;
  match (t.attrib, pc) with
  | Some a, Some pc -> attr_bump a.awrites a c pc n
  | _ -> ()

(* Hot-loop variants: plain labelled ints, so calls box nothing —
   [add_read t l dp ~pc () ] allocates a [Some pc] per call, which is
   most of what the traffic simulator's attribution path allocated.
   [pc = -1] counts in the aggregate and is dropped from attribution,
   exactly like an out-of-range [?pc]. *)

let bump_read t level dp ~pc ~n =
  let c = cell level dp in
  t.reads.(c) <- t.reads.(c) + n;
  match t.attrib with Some a -> attr_bump a.areads a c pc n | None -> ()

let bump_write t level dp ~pc ~n =
  let c = cell level dp in
  t.writes.(c) <- t.writes.(c) + n;
  match t.attrib with Some a -> attr_bump a.awrites a c pc n | None -> ()

let bump_rfc_probe t ~pc ~n =
  t.probes <- t.probes + n;
  match t.attrib with
  | Some a when pc >= 0 && pc < a.instrs -> a.aprobes.(pc) <- a.aprobes.(pc) + n
  | _ -> ()

let add_rfc_probe t ?pc ?(n = 1) () =
  t.probes <- t.probes + n;
  match (t.attrib, pc) with
  | Some a, Some pc when pc >= 0 && pc < a.instrs -> a.aprobes.(pc) <- a.aprobes.(pc) + n
  | _ -> ()

let reads t level = t.reads.(cell level Model.Private) + t.reads.(cell level Model.Shared)
let writes t level = t.writes.(cell level Model.Private) + t.writes.(cell level Model.Shared)
let reads_dp t level dp = t.reads.(cell level dp)
let writes_dp t level dp = t.writes.(cell level dp)
let rfc_probes t = t.probes

let total_reads t = Array.fold_left ( + ) 0 t.reads
let total_writes t = Array.fold_left ( + ) 0 t.writes

type level_energy = { level : Model.level; access : float; wire : float }

type breakdown = { levels : level_energy list; total : float }

let energy params ~orf_entries t =
  let level_breakdown level =
    let acc = ref 0.0 and wire = ref 0.0 in
    List.iter
      (fun dp ->
        let r = float_of_int t.reads.(cell level dp) in
        let w = float_of_int t.writes.(cell level dp) in
        acc := !acc +. (r *. Model.access_only_read params ~orf_entries level)
               +. (w *. Model.access_only_write params ~orf_entries level);
        wire := !wire +. (r *. Model.wire_only_read params level dp)
                +. (w *. Model.wire_only_write params level dp))
      (match level with
       | Model.Lrf ->
         if t.reads.(cell Model.Lrf Model.Shared) <> 0
            || t.writes.(cell Model.Lrf Model.Shared) <> 0
         then invalid_arg "Energy.Counts: LRF accessed from the shared datapath";
         [ Model.Private ]
       | _ -> [ Model.Private; Model.Shared ]);
    if level = Model.Rfc then
      acc := !acc +. (float_of_int t.probes *. Model.rfc_probe_energy params);
    { level; access = !acc; wire = !wire }
  in
  let per_level = Array.to_list (Array.map level_breakdown levels) in
  let total = List.fold_left (fun s le -> s +. le.access +. le.wire) 0.0 per_level in
  { levels = per_level; total }

(* ------------------------------------------------------------------ *)
(* Per-instruction attribution queries.                                *)

let instr_energy params ~orf_entries t ~pc =
  match t.attrib with
  | None -> 0.0
  | Some a when pc < 0 || pc >= a.instrs -> 0.0
  | Some a ->
    let e = ref 0.0 in
    Array.iter
      (fun level ->
        List.iter
          (fun dp ->
            let c = (pc * attr_cells) + cell level dp in
            let r = a.areads.(c) and w = a.awrites.(c) in
            if r <> 0 then
              e :=
                !e
                +. (float_of_int r
                   *. (Model.access_only_read params ~orf_entries level
                      +. Model.wire_only_read params level dp));
            if w <> 0 then
              e :=
                !e
                +. (float_of_int w
                   *. (Model.access_only_write params ~orf_entries level
                      +. Model.wire_only_write params level dp)))
          [ Model.Private; Model.Shared ])
      levels;
    if a.aprobes.(pc) <> 0 then
      e := !e +. (float_of_int a.aprobes.(pc) *. Model.rfc_probe_energy params);
    !e

let attributed_energies params ~orf_entries t =
  match t.attrib with
  | None -> [||]
  | Some a -> Array.init a.instrs (fun pc -> instr_energy params ~orf_entries t ~pc)

let top_instrs params ~orf_entries ?(n = 10) t =
  let pjs = attributed_energies params ~orf_entries t in
  let ranked = Array.mapi (fun pc pj -> (pc, pj)) pjs in
  Array.sort
    (fun (pa, a) (pb, b) ->
      match compare (b : float) a with 0 -> compare (pa : int) pb | c -> c)
    ranked;
  Array.to_list (Array.sub ranked 0 (min n (Array.length ranked)))

(* JSON codec: dp-resolved counts per level, keyed by the lowercase
   level name in the paper's MRF, ORF, RFC, LRF order.  Field order is
   fixed so run manifests embedding this shape diff cleanly. *)

let json_key level = String.lowercase_ascii (Model.level_name level)

let to_json t =
  let dp_obj arr level =
    Obs.Json.Obj
      [
        ("private", Obs.Json.int arr.(cell level Model.Private));
        ("shared", Obs.Json.int arr.(cell level Model.Shared));
      ]
  in
  Obs.Json.Obj
    (Array.to_list
       (Array.map
          (fun level ->
            ( json_key level,
              Obs.Json.Obj
                [ ("reads", dp_obj t.reads level); ("writes", dp_obj t.writes level) ] ))
          levels)
    @ [ ("rfc_probes", Obs.Json.int t.probes) ])

let of_json j =
  let ( let* ) = Result.bind in
  let int_at path v =
    match Option.bind v Obs.Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "Energy.Counts: missing or ill-typed %S" path)
  in
  let t = create () in
  let* () =
    Array.fold_left
      (fun acc level ->
        let* () = acc in
        let lv = Obs.Json.member (json_key level) j in
        let* () =
          List.fold_left
            (fun acc (dir, store) ->
              let* () = acc in
              let dv = Option.bind lv (Obs.Json.member dir) in
              List.fold_left
                (fun acc (dp_name, dp) ->
                  let* () = acc in
                  let path = Printf.sprintf "%s.%s.%s" (json_key level) dir dp_name in
                  let* n = int_at path (Option.bind dv (Obs.Json.member dp_name)) in
                  store.(cell level dp) <- n;
                  Ok ())
                (Ok ())
                [ ("private", Model.Private); ("shared", Model.Shared) ])
            (Ok ())
            [ ("reads", t.reads); ("writes", t.writes) ]
        in
        Ok ())
      (Ok ()) levels
  in
  let* probes = int_at "rfc_probes" (Obs.Json.member "rfc_probes" j) in
  t.probes <- probes;
  Ok t

let pp fmt t =
  Array.iter
    (fun level ->
      let r = reads t level and w = writes t level in
      if r <> 0 || w <> 0 then
        Format.fprintf fmt "%s: %dR/%dW  " (Model.level_name level) r w)
    levels;
  if t.probes <> 0 then Format.fprintf fmt "RFC-probes: %d" t.probes
