(** Predecoded kernels: struct-of-arrays instruction facts for the
    cycle-accurate loops.

    The timing simulator issues the same static instructions millions
    of times; chasing [Ir.Instr.t] records, operand lists and
    [Strand.Partition] lookups on every attempt dominated its profile
    and allocated on every cycle.  [Dec.of_context] flattens a kernel
    once per run into dense int arrays indexed by instruction id, so
    [try_issue]/[probe] in {!Perf} and the accounting walk in
    {!Traffic} are pure array indexing.  The arrays are immutable after
    construction and safe to share across domains. *)

type t = private {
  kernel : Ir.Kernel.t;
  num_instrs : int;
  num_regs : int;
  unit_of : int array;        (** function-unit class, 0..3 in {!Ir.Op.unit_class} order *)
  latency : int array;        (** {!Ir.Op.latency} *)
  issue_cycles : int array;   (** {!Ir.Op.issue_cycles} *)
  dst : int array;            (** destination register, [-1] = none *)
  is_ll : bool array;         (** long-latency op producing a result *)
  shared_dp : bool array;     (** {!Ir.Op.is_shared_datapath} *)
  starts_strand : bool array; (** {!Strand.Partition.starts_strand}, or all-false without a partition *)
  nsrcs : int array;          (** source-operand count *)
  srcs : int array;           (** positional sources at [id * max_srcs + pos], [-1] padded *)
  nuniq : int array;          (** distinct-source count *)
  uniq : int array;           (** distinct sources, same layout *)
}

val max_srcs : int
(** Row stride of [srcs]/[uniq] (= {!Ir.Instr.num_slots}). *)

val of_kernel : ?partition:Strand.Partition.t -> Ir.Kernel.t -> t

val of_context : Alloc.Context.t -> t
(** Predecode against the context's kernel and strand partition. *)

val conflict_extra : t -> banks:int -> bank_counts:int array -> int -> int
(** Extra serialized operand-fetch cycles of instruction [id] under a
    [banks]-way banked MRF: distinct same-bank sources beyond the first
    each cost one cycle.  [bank_counts] is a caller-owned zeroed scratch
    array of at least [banks] entries, zeroed again on return —
    allocation-free, so {!Perf} can precompute a per-instruction table
    at run start. *)
