(** Per-warp control-flow walker.

    Replays a kernel's dynamic instruction stream for one warp, with
    deterministic branch resolution: [Loop n] branches count trips per
    site, probabilistic branches hash (warp seed, site, visit).  This
    substitutes for the paper's execution-frequency traces (Sec. 5.1) —
    a given (kernel, warp, seed) always yields the same stream.

    Control flow is warp-uniform (see DESIGN.md): register-file traffic
    is counted per warp-instruction, so per-thread divergence does not
    change the measured quantities. *)

type t

val create : ?max_dynamic:int -> Ir.Kernel.t -> warp:int -> seed:int -> t
(** [max_dynamic] (default 100_000) caps the dynamic instruction count
    as a termination guard. *)

val reset : t -> ?max_dynamic:int -> Ir.Kernel.t -> warp:int -> seed:int -> unit
(** Reinitialize in place for a fresh walk, reusing the per-block
    counter arrays when the kernel's block count fits — the simulator
    scratch ({!Scratch}) path that keeps repeated runs allocation-free. *)

val peek : t -> Ir.Instr.t option
(** Next instruction to execute; [None] once the kernel returned or
    the cap was reached. *)

val peek_id : t -> int
(** Id of the next instruction, or [-1] once finished.  Allocation-free
    (unlike {!peek}, which boxes an option per call) — the form the
    cycle loops use together with the {!Dec} instruction arrays. *)

val advance : t -> unit
(** Consume the current instruction, resolving the block terminator
    when it was the last of its block. *)

val finished : t -> bool
val dynamic_count : t -> int

val hit_cap : t -> bool
(** Did the walk stop because of [max_dynamic] rather than [Ret]? *)
