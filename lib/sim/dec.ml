(* One pass over the kernel turns every per-issue record chase of the
   cycle loops into an int-array index: operand lists, op properties
   and the compiler's strand-start bit are all resolved here, once, so
   [Perf]/[Traffic] steady state never touches an [Ir.Instr.t] or calls
   back into [Strand.Partition].  Source operands are stored in two
   forms: positional (placement lookups are by operand slot) and
   deduplicated (bank-conflict counting is over distinct registers). *)

let max_srcs = Ir.Instr.num_slots

type t = {
  kernel : Ir.Kernel.t;
  num_instrs : int;
  num_regs : int;
  unit_of : int array;        (* Ir.Op.unit_class as 0..3 (Alu first) *)
  latency : int array;
  issue_cycles : int array;
  dst : int array;            (* destination register, -1 = none *)
  is_ll : bool array;         (* long-latency op producing a result *)
  shared_dp : bool array;     (* Ir.Op.is_shared_datapath *)
  starts_strand : bool array; (* Strand.Partition.starts_strand *)
  nsrcs : int array;
  srcs : int array;           (* [id * max_srcs + pos], -1 padded *)
  nuniq : int array;
  uniq : int array;           (* distinct sources, same layout *)
}

let unit_index op =
  match Ir.Op.unit_class op with Ir.Op.Alu -> 0 | Ir.Op.Sfu -> 1 | Ir.Op.Mem -> 2 | Ir.Op.Tex -> 3

let of_kernel ?partition (k : Ir.Kernel.t) =
  let ni = Ir.Kernel.instr_count k in
  let t =
    {
      kernel = k;
      num_instrs = ni;
      num_regs = k.Ir.Kernel.num_regs;
      unit_of = Array.make ni 0;
      latency = Array.make ni 0;
      issue_cycles = Array.make ni 0;
      dst = Array.make ni (-1);
      is_ll = Array.make ni false;
      shared_dp = Array.make ni false;
      starts_strand = Array.make ni false;
      nsrcs = Array.make ni 0;
      srcs = Array.make (ni * max_srcs) (-1);
      nuniq = Array.make ni 0;
      uniq = Array.make (ni * max_srcs) (-1);
    }
  in
  let starts = Option.map Strand.Partition.starts_bits partition in
  Array.iteri
    (fun id (i : Ir.Instr.t) ->
      let op = i.Ir.Instr.op in
      t.unit_of.(id) <- unit_index op;
      t.latency.(id) <- Ir.Op.latency op;
      t.issue_cycles.(id) <- Ir.Op.issue_cycles op;
      t.shared_dp.(id) <- Ir.Op.is_shared_datapath op;
      (match i.Ir.Instr.dst with
       | Some d ->
         t.dst.(id) <- d;
         t.is_ll.(id) <- Ir.Op.is_long_latency op
       | None -> ());
      (match starts with
       | Some bits -> t.starts_strand.(id) <- Util.Bitset.mem bits id
       | None -> ());
      List.iteri
        (fun pos r ->
          t.srcs.((id * max_srcs) + pos) <- r;
          t.nsrcs.(id) <- t.nsrcs.(id) + 1)
        i.Ir.Instr.srcs;
      (* Distinct sources, preserving nothing but the multiset — the
         conflict count only cares how many land in each bank. *)
      for pos = 0 to t.nsrcs.(id) - 1 do
        let r = t.srcs.((id * max_srcs) + pos) in
        let dup = ref false in
        for q = 0 to t.nuniq.(id) - 1 do
          if t.uniq.((id * max_srcs) + q) = r then dup := true
        done;
        if not !dup then begin
          t.uniq.((id * max_srcs) + t.nuniq.(id)) <- r;
          t.nuniq.(id) <- t.nuniq.(id) + 1
        end
      done)
    k.Ir.Kernel.instrs;
  t

let of_context (ctx : Alloc.Context.t) =
  of_kernel ~partition:ctx.Alloc.Context.partition ctx.Alloc.Context.kernel

(* Same-bank distinct sources serialize their extra operand fetches;
   re-reads of one register broadcast.  [bank_counts] is a caller-owned
   scratch array of at least [banks] zeros; it is left zeroed again. *)
let conflict_extra t ~banks ~bank_counts id =
  let base = id * max_srcs in
  let m = ref 0 in
  for q = 0 to t.nuniq.(id) - 1 do
    let bank = t.uniq.(base + q) mod banks in
    let n = bank_counts.(bank) + 1 in
    bank_counts.(bank) <- n;
    if n > !m then m := n
  done;
  for q = 0 to t.nuniq.(id) - 1 do
    bank_counts.(t.uniq.(base + q) mod banks) <- 0
  done;
  if !m > 1 then !m - 1 else 0
