let m_runs = Obs.Metrics.counter "sim.simt.runs"
let m_divergent = Obs.Metrics.counter "sim.simt.divergent_branches"
let m_reconvergences = Obs.Metrics.counter "sim.simt.reconvergences"

type stats = {
  warp_instructions : int;
  thread_instructions : int;
  simd_efficiency : float;
  max_stack_depth : int;
  divergent_branches : int;
  reconvergences : int;
}

type frame = {
  mutable block : int;
  mutable mask : int;
  rpc : int;  (* reconvergence block; -1 = kernel exit *)
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let clusters_of ?(threads_per_warp = 32) mask =
  let n = (threads_per_warp + 3) / 4 in
  let c = ref 0 in
  for g = 0 to n - 1 do
    if mask land (0xF lsl (4 * g)) <> 0 then incr c
  done;
  !c

(* [postdom] is hoisted to a parameter so multi-warp drivers compute
   the CFG and post-dominator tree once per kernel, not once per warp. *)
let run_warp_pre ?(threads_per_warp = 32) ?(max_dynamic = 100_000) postdom (k : Ir.Kernel.t)
    ~warp ~seed ~on_instr =
  let nb = Ir.Kernel.block_count k in
  let full_mask = if threads_per_warp >= 62 then invalid_arg "Simt: threads_per_warp too large"
    else (1 lsl threads_per_warp) - 1
  in
  let trip_counts = Array.make nb 0 in
  let visit_counts = Array.make nb 0 in
  let stack = ref [ { block = 0; mask = full_mask; rpc = -1 } ] in
  let executed = ref 0 in
  let thread_instrs = ref 0 in
  let max_depth = ref 1 in
  let divergent = ref 0 in
  let reconverged = ref 0 in
  (* A frame created by a divergent branch (rpc >= 0) rejoining at its
     reconvergence point; the initial frame (rpc = -1) never counts. *)
  let pop_at_rpc rpc = if rpc >= 0 then incr reconverged in
  let thread_takes block visit lane =
    let h =
      Util.Prng.hash2
        (Util.Prng.hash2 seed warp)
        (Util.Prng.hash2 (Util.Prng.hash2 block visit) lane)
    in
    float_of_int (h land 0xFFFFFF) /. 16777216.0
  in
  let continue_run = ref true in
  (* Guards against empty-block control cycles that execute nothing. *)
  let steps = ref 0 in
  while !continue_run do
    incr steps;
    if !steps > max_dynamic * 4 then continue_run := false;
    match !stack with
    | [] -> continue_run := false
    | top :: rest ->
      if top.block = top.rpc then begin
        pop_at_rpc top.rpc;
        stack := rest
      end
      else begin
        let b = k.Ir.Kernel.blocks.(top.block) in
        (* Execute the block's instructions under the mask. *)
        let instrs = b.Ir.Block.instrs in
        for ii = 0 to Array.length instrs - 1 do
          if !continue_run then begin
            incr executed;
            thread_instrs := !thread_instrs + popcount top.mask;
            on_instr instrs.(ii) ~active:(popcount top.mask)
              ~clusters:(clusters_of ~threads_per_warp top.mask);
            if !executed >= max_dynamic then continue_run := false
          end
        done;
        if !continue_run then begin
          let uniform_goto nb_block =
            if nb_block = top.rpc then begin
              pop_at_rpc top.rpc;
              stack := rest
            end
            else top.block <- nb_block
          in
          visit_counts.(top.block) <- visit_counts.(top.block) + 1;
          match b.Ir.Block.term with
          | Ir.Terminator.Ret -> stack := rest
          | Ir.Terminator.Fallthrough -> uniform_goto (top.block + 1)
          | Ir.Terminator.Jump l -> uniform_goto l
          | Ir.Terminator.Branch { target; behavior } ->
            let fall = top.block + 1 in
            let taken_mask =
              match behavior with
              | Ir.Terminator.Always_taken -> top.mask
              | Ir.Terminator.Never_taken -> 0
              | Ir.Terminator.Loop n ->
                (* Counted loops are warp-uniform. *)
                if trip_counts.(top.block) < n - 1 then begin
                  trip_counts.(top.block) <- trip_counts.(top.block) + 1;
                  top.mask
                end
                else begin
                  trip_counts.(top.block) <- 0;
                  0
                end
              | Ir.Terminator.Taken_with_prob p ->
                (* Per-thread outcome: genuine divergence. *)
                let visit = visit_counts.(top.block) in
                let m = ref 0 in
                for lane = 0 to threads_per_warp - 1 do
                  if top.mask land (1 lsl lane) <> 0 && thread_takes top.block visit lane < p
                  then m := !m lor (1 lsl lane)
                done;
                !m
            in
            let fall_mask = top.mask land lnot taken_mask in
            if taken_mask = 0 then uniform_goto fall
            else if fall_mask = 0 then uniform_goto target
            else begin
              incr divergent;
              let rpc =
                match Analysis.Postdom.ipdom postdom top.block with
                | Some r -> r
                | None -> -1
              in
              (* The current frame waits at the reconvergence point. *)
              let reconv = { block = rpc; mask = top.mask; rpc = top.rpc } in
              let fall_frame = { block = fall; mask = fall_mask; rpc } in
              let taken_frame = { block = target; mask = taken_mask; rpc } in
              (* Replace top with reconv, then stack the two sides. *)
              stack := taken_frame :: fall_frame :: reconv :: rest;
              max_depth := max !max_depth (List.length !stack)
            end
        end
      end
  done;
  {
    warp_instructions = !executed;
    thread_instructions = !thread_instrs;
    simd_efficiency =
      (if !executed = 0 then 1.0
       else float_of_int !thread_instrs /. float_of_int (!executed * threads_per_warp));
    max_stack_depth = !max_depth;
    divergent_branches = !divergent;
    reconvergences = !reconverged;
  }

let run_warp ?threads_per_warp ?max_dynamic (k : Ir.Kernel.t) ~warp ~seed ~on_instr =
  let cfg = Analysis.Cfg.of_kernel k in
  let postdom = Analysis.Postdom.compute k cfg in
  run_warp_pre ?threads_per_warp ?max_dynamic postdom k ~warp ~seed ~on_instr

type traffic_result = {
  counts : Energy.Counts.t;
  stats : stats;
}

let merge_stats a b =
  let warp_instructions = a.warp_instructions + b.warp_instructions in
  let thread_instructions = a.thread_instructions + b.thread_instructions in
  {
    warp_instructions;
    thread_instructions;
    simd_efficiency =
      (if warp_instructions = 0 then 1.0
       else float_of_int thread_instructions /. float_of_int (warp_instructions * 32));
    max_stack_depth = max a.max_stack_depth b.max_stack_depth;
    divergent_branches = a.divergent_branches + b.divergent_branches;
    reconvergences = a.reconvergences + b.reconvergences;
  }

(* Warp-instruction window width for the [simt.active_threads] track. *)
let counter_window = 32

let traffic ?(warps = 32) ?(seed = 0x5eed) ?max_dynamic_per_warp (ctx : Alloc.Context.t) ~scheme =
  Obs.Span.with_span "simulate.simt" @@ fun () ->
  let k = ctx.Alloc.Context.kernel in
  let counts = Energy.Counts.create () in
  let co = Obs.Counters.is_enabled () in
  (* Active threads summed per window of warp-local instructions,
     accumulated across warps. *)
  let active_bins = Hashtbl.create 32 in
  let warp_instr = ref 0 in
  let datapath_of_op op =
    if Ir.Op.is_shared_datapath op then Energy.Model.Shared else Energy.Model.Private
  in
  let on_instr (i : Ir.Instr.t) ~active ~clusters =
    let id = i.Ir.Instr.id in
    if co then begin
      let w = !warp_instr / counter_window in
      (match Hashtbl.find_opt active_bins w with
      | Some r -> r := !r + active
      | None -> Hashtbl.add active_bins w (ref active));
      incr warp_instr
    end;
    let dp = datapath_of_op i.Ir.Instr.op in
    match scheme with
    | `Baseline ->
      List.iter
        (fun _ -> Energy.Counts.add_read counts Energy.Model.Mrf dp ~pc:id ~n:clusters ())
        i.Ir.Instr.srcs;
      if Option.is_some i.Ir.Instr.dst then
        Energy.Counts.add_write counts Energy.Model.Mrf dp ~pc:id ~n:clusters ()
    | `Sw (_, placement) ->
      List.iteri
        (fun pos _ ->
          match Alloc.Placement.src placement ~instr:id ~pos with
          | Alloc.Placement.From_mrf ->
            Energy.Counts.add_read counts Energy.Model.Mrf dp ~pc:id ~n:clusters ()
          | Alloc.Placement.From_orf _ ->
            Energy.Counts.add_read counts Energy.Model.Orf dp ~pc:id ~n:clusters ()
          | Alloc.Placement.From_lrf _ ->
            Energy.Counts.add_read counts Energy.Model.Lrf Energy.Model.Private ~pc:id
              ~n:clusters ())
        i.Ir.Instr.srcs;
      List.iter
        (fun (_pos, _entry) ->
          Energy.Counts.add_write counts Energy.Model.Orf dp ~pc:id ~n:clusters ())
        (Alloc.Placement.fills_of placement ~instr:id);
      (match i.Ir.Instr.dst, Alloc.Placement.dest placement ~instr:id with
       | Some _, Some dest ->
         if dest.Alloc.Placement.to_mrf then
           Energy.Counts.add_write counts Energy.Model.Mrf dp ~pc:id ~n:clusters ();
         if Option.is_some dest.Alloc.Placement.to_orf then
           Energy.Counts.add_write counts Energy.Model.Orf dp ~pc:id ~n:clusters ();
         if Option.is_some dest.Alloc.Placement.to_lrf then
           Energy.Counts.add_write counts Energy.Model.Lrf Energy.Model.Private ~pc:id
             ~n:clusters ()
       | _, _ -> ())
  in
  let postdom = Analysis.Postdom.compute k (Analysis.Cfg.of_kernel k) in
  let stats = ref None in
  for w = 0 to warps - 1 do
    warp_instr := 0;
    let s = run_warp_pre ?max_dynamic:max_dynamic_per_warp postdom k ~warp:w ~seed ~on_instr in
    stats := Some (match !stats with None -> s | Some prev -> merge_stats prev s)
  done;
  if co then
    Hashtbl.fold (fun w r acc -> (w, !r) :: acc) active_bins []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> List.iter (fun (w, v) ->
           Obs.Counters.sample "simt.active_threads"
             ~at:(float_of_int (w * counter_window))
             (float_of_int v));
  let stats =
    Option.value !stats
      ~default:
        {
          warp_instructions = 0;
          thread_instructions = 0;
          simd_efficiency = 1.0;
          max_stack_depth = 0;
          divergent_branches = 0;
          reconvergences = 0;
        }
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:stats.divergent_branches m_divergent;
  Obs.Metrics.incr ~by:stats.reconvergences m_reconvergences;
  { counts; stats }
