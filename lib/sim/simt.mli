(** SIMT divergence execution with a reconvergence stack.

    The baseline SM (paper Sec. 2) executes 32-thread warps under an
    active mask; threads may take different paths, reconverging at the
    branch's immediate post-dominator (the standard stack model).  The
    warp-uniform walker ({!Cf}) is sufficient for the paper's
    energy accounting — traffic is counted per warp instruction — but
    this module completes the substrate and quantifies how divergence
    changes the picture:

    - probabilistic branches ([Taken_with_prob]) are decided {e per
      thread} (hashing warp, lane, site and visit), so warps genuinely
      diverge; [Loop] trip counts and [Always/Never] stay warp-uniform;
    - a register-file access under divergence activates only the
      4-lane clusters containing live threads, so each operand costs
      between 1 and 8 bank accesses instead of always 8 — the
      divergence-aware traffic mode exposes exactly that weight.

    Executions are bounded by [max_dynamic] warp instructions and, like
    everything else, deterministic in the seed. *)

type stats = {
  warp_instructions : int;   (** dynamic warp instructions issued *)
  thread_instructions : int; (** sum of active threads over those *)
  simd_efficiency : float;   (** thread_instructions / (warp_instructions * 32) *)
  max_stack_depth : int;     (** deepest reconvergence stack observed *)
  divergent_branches : int;  (** branch executions that split the mask *)
  reconvergences : int;
  (** divergence-created frames rejoining at their reconvergence
      point (roughly two per divergent branch that runs to join) *)
}

val run_warp :
  ?threads_per_warp:int ->
  ?max_dynamic:int ->
  Ir.Kernel.t ->
  warp:int ->
  seed:int ->
  on_instr:(Ir.Instr.t -> active:int -> clusters:int -> unit) ->
  stats
(** Execute one warp, invoking [on_instr] per dynamic warp instruction
    with the active-thread count and the number of active 4-lane
    clusters (= 128-bit bank accesses per operand). *)

type traffic_result = {
  counts : Energy.Counts.t;
  (** in units of bank accesses: comparable across divergence levels,
      NOT directly against {!Traffic.run}'s per-warp-operand units *)
  stats : stats;
}

val traffic :
  ?warps:int ->
  ?seed:int ->
  ?max_dynamic_per_warp:int ->
  Alloc.Context.t ->
  scheme:[ `Baseline | `Sw of Alloc.Config.t * Alloc.Placement.t ] ->
  traffic_result
(** Divergence-aware register-file traffic: each operand access is
    weighted by the number of active clusters.  Reports into
    {!Obs.Metrics} ([sim.simt.runs], [sim.simt.divergent_branches],
    [sim.simt.reconvergences]) and records a [simulate.simt] span. *)
