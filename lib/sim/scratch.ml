(* All per-run mutable state of the cycle loops lives here so repeated
   runs (sweeps, figure regeneration, the perf study) reuse buffers
   instead of reallocating them: after the first run over the largest
   configuration, a simulation allocates only its result record.  A
   scratch is single-owner mutable state — never share one across
   domains; [domain_local] hands each domain its own. *)

type t = {
  (* Predecode cache, keyed by context identity: sweeps re-simulate the
     same compiled context under many configurations. *)
  mutable dec_ctx : Alloc.Context.t option;
  mutable dec : Dec.t option;
  (* Per-warp state (outer index = warp). *)
  mutable cfs : Cf.t option array;
  mutable ready : int array array;       (* per register: cycle its value is ready *)
  mutable ready_base : int array array;  (* same, without bank-conflict serialization *)
  mutable ll : int array array;          (* outstanding long-latency ready cycles *)
  mutable ll_len : int array;
  mutable wake : int array;
  (* Two-level scheduler queues and their refill scratch. *)
  mutable active : int array;
  mutable pending : int array;
  mutable in_active : bool array;
  mutable scan : int array;
  mutable ready_buf : int array;
  mutable rest_buf : int array;
  (* Stall attribution.  [span_state]/[span_start] carry the constant
     classification of warps outside the active set (pending or
     retired), accumulated as one span per stint instead of one
     increment per cycle; -1 marks a warp under per-cycle (active)
     classification. *)
  mutable breakdown : int array;         (* warps x 7, row-major *)
  mutable span_state : int array;
  mutable span_start : int array;
  (* Blocked-cause cache for active warps: the classification of a
     dependence-blocked warp is constant until the next ready(-base)
     crossing among its blocked sources. *)
  mutable stall_until : int array;
  mutable stall_cause : int array;
  (* Banked-MRF conflict tables. *)
  mutable bank_counts : int array;
  mutable conflict_extra : int array;    (* per instruction *)
  unit_free : int array;
  (* Traffic: per-warp outstanding (register, issue index) pairs. *)
  mutable out_reg : int array;
  mutable out_at : int array;
  mutable out_len : int;
}

let create () =
  {
    dec_ctx = None;
    dec = None;
    cfs = [||];
    ready = [||];
    ready_base = [||];
    ll = [||];
    ll_len = [||];
    wake = [||];
    active = [||];
    pending = [||];
    in_active = [||];
    scan = [||];
    ready_buf = [||];
    rest_buf = [||];
    breakdown = [||];
    span_state = [||];
    span_start = [||];
    stall_until = [||];
    stall_cause = [||];
    bank_counts = [||];
    conflict_extra = [||];
    unit_free = Array.make 4 0;
    out_reg = [||];
    out_at = [||];
    out_len = 0;
  }

let key : t Domain.DLS.key = Domain.DLS.new_key create

let domain_local () = Domain.DLS.get key

let dec_for t (ctx : Alloc.Context.t) =
  match (t.dec, t.dec_ctx) with
  | Some d, Some c when c == ctx -> d
  | _ ->
    let d = Dec.of_context ctx in
    t.dec <- Some d;
    t.dec_ctx <- Some ctx;
    d

(* Growth helpers: arrays only ever grow, contents are re-initialized
   by the run that uses them (values carried over are never read). *)

let grow_ints a n = if Array.length a >= n then a else Array.make n 0

let grow_bools a n = if Array.length a >= n then a else Array.make n false

let grow_rows rows n ~inner =
  let rows =
    if Array.length rows >= n then rows
    else
      Array.init n (fun i -> if i < Array.length rows then rows.(i) else [||])
  in
  for i = 0 to n - 1 do
    if Array.length rows.(i) < inner then rows.(i) <- Array.make inner 0
  done;
  rows

let ensure_warps t ~warps ~num_regs =
  t.ready <- grow_rows t.ready warps ~inner:num_regs;
  t.ready_base <- grow_rows t.ready_base warps ~inner:num_regs;
  t.ll <- grow_rows t.ll warps ~inner:8;
  t.ll_len <- grow_ints t.ll_len warps;
  t.wake <- grow_ints t.wake warps;
  t.active <- grow_ints t.active warps;
  t.pending <- grow_ints t.pending warps;
  t.in_active <- grow_bools t.in_active warps;
  t.scan <- grow_ints t.scan warps;
  t.ready_buf <- grow_ints t.ready_buf warps;
  t.rest_buf <- grow_ints t.rest_buf warps;
  t.breakdown <- grow_ints t.breakdown (warps * 7);
  t.span_state <- grow_ints t.span_state warps;
  t.span_start <- grow_ints t.span_start warps;
  t.stall_until <- grow_ints t.stall_until warps;
  t.stall_cause <- grow_ints t.stall_cause warps;
  if Array.length t.cfs < warps then
    t.cfs <-
      Array.init warps (fun i -> if i < Array.length t.cfs then t.cfs.(i) else None)

let ensure_banks t ~banks ~num_instrs =
  t.bank_counts <- grow_ints t.bank_counts banks;
  Array.fill t.bank_counts 0 banks 0;
  t.conflict_extra <- grow_ints t.conflict_extra num_instrs

let ensure_outstanding t n =
  t.out_reg <- grow_ints t.out_reg n;
  t.out_at <- grow_ints t.out_at n

let cf t i ~max_dynamic kernel ~warp ~seed =
  match t.cfs.(i) with
  | Some cf ->
    Cf.reset cf ~max_dynamic kernel ~warp ~seed;
    cf
  | None ->
    let cf = Cf.create ~max_dynamic kernel ~warp ~seed in
    t.cfs.(i) <- Some cf;
    cf
