(** Cycle-level performance simulation of one SM (Table 2 parameters).

    In-order, one warp instruction issued per cycle, function-unit
    latencies and shared-datapath issue rates from {!Ir.Op}.  Used to
    verify the paper's scheduling claim: a two-level warp scheduler
    with 8 active warps (out of 32) matches the single-level
    scheduler's IPC (Sec. 6).

    Two descheduling policies are modelled:
    - [On_dependence]: the hardware RFC policy — a warp leaves the
      active set when its next instruction waits on a long-latency
      result (Sec. 2.2);
    - [At_strand_boundaries]: the software policy — a warp leaves the
      active set at a compiler-marked strand boundary while
      long-latency operations are outstanding (Sec. 4.1).

    {2 Stall attribution}

    Beyond aggregate IPC, every warp-cycle is classified into exactly
    one {!stall_cause} against start-of-cycle state, in active-set
    round-robin order — so the warp the scheduler actually issues is
    the one classified [Issued], and warps that were ready but lost
    arbitration are [No_issue_slot].  The classification is pure
    accounting: it never changes simulated timing, and it is exact —
    for every run, {!breakdown_total}[ result.stalls = cycles * warps]
    and each warp's breakdown sums to [cycles], whether or not the
    {!Obs.Timeline} recorder is enabled.  When the recorder is on, the
    same classification is emitted as per-warp state intervals tiling
    [\[0, cycles)]. *)

type scheduler =
  | Single_level            (** all warps schedulable every cycle *)
  | Two_level of int        (** active-set size *)

type policy = On_dependence | At_strand_boundaries

(** The stall taxonomy, shared with {!Obs.Timeline.state} (see there
    for per-constructor semantics). *)
type stall_cause = Obs.Timeline.state =
  | Issued
  | Wait_long_latency
  | Wait_short_latency
  | Bank_conflict_serialization
  | Descheduled_pending
  | No_issue_slot
  | Finished

(** Warp-cycle counts per stall cause.  One field per {!stall_cause},
    in {!Obs.Timeline.all_states} order. *)
type stall_breakdown = {
  issued : int;
  wait_long_latency : int;
  wait_short_latency : int;
  bank_conflict_serialization : int;
  descheduled_pending : int;
  no_issue_slot : int;
  finished : int;
}

type warp_stats = { warp : int; breakdown : stall_breakdown }

(** Active-set residency: how warps moved through the two-level
    scheduler's active set, plus deschedule events by cause. *)
type sched_stats = {
  entries : int;  (** initial fill + every pending->active promotion *)
  exits : int;  (** deschedules + finished-warp removals *)
  resident_cycles : int;  (** warp-cycles spent occupying an active slot *)
  desched_long_latency : int;  (** hardware long-latency dependence *)
  desched_strand_boundary : int;  (** compiler strand-boundary policy *)
  desched_bank_conflict : int;
      (** dependence extended past its base latency purely by banked-MRF
          conflict serialization *)
}

type result = {
  cycles : int;
  instructions : int;
  ipc : float;
  desched_events : int;
  stalls : stall_breakdown;  (** summed over all warps *)
  per_warp : warp_stats array;  (** indexed by warp id *)
  sched : sched_stats;
}

val breakdown_get : stall_breakdown -> stall_cause -> int

val breakdown_fields : stall_breakdown -> (string * int) list
(** [(state name, count)] pairs in canonical {!Obs.Timeline.all_states}
    order — the manifest / table / report rendering order. *)

val breakdown_total : stall_breakdown -> int
(** Sum of all fields; equals [cycles * warps] for [result.stalls] and
    [cycles] for each per-warp breakdown. *)

val stalled_cycles : stall_breakdown -> int
(** Warp-cycles neither issued nor finished. *)

val mean_residency : sched_stats -> float
(** Average active-set visit length in cycles ([resident_cycles /
    entries]; [0.] when there were no entries). *)

val run :
  ?warps:int ->
  ?seed:int ->
  ?max_dynamic_per_warp:int ->
  ?max_cycles:int ->
  ?mrf_banks:int ->
  ?scratch:Scratch.t ->
  scheduler:scheduler ->
  policy:policy ->
  Alloc.Context.t ->
  result
(** Defaults: 32 warps, 2_000 dynamic instructions per warp,
    10_000_000-cycle guard.

    [mrf_banks] enables the banked-MRF refinement: the MRF is split
    into that many banks (Table 2: 32) and an instruction whose source
    operands collide on a bank takes extra operand-fetch cycles — the
    operand buffering of Fig. 1(c) hides the base multi-cycle fetch,
    but same-bank operands serialize.  Omitted = ideal operand fetch
    (the paper's performance model).

    [scratch] holds every per-run buffer (defaults to this domain's
    {!Scratch.domain_local}): after a warm-up run, the cycle loop
    allocates no minor words in steady state (recorders off) and
    repeated runs reuse all simulation memory.  Results are identical
    whatever scratch is passed. *)
