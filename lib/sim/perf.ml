type scheduler = Single_level | Two_level of int

type policy = On_dependence | At_strand_boundaries

type result = {
  cycles : int;
  instructions : int;
  ipc : float;
  desched_events : int;
}

let m_runs = Obs.Metrics.counter "sim.perf.runs"
let m_cycles = Obs.Metrics.counter "sim.perf.cycles"
let m_instructions = Obs.Metrics.counter "sim.perf.instructions"
let m_desched = Obs.Metrics.counter "sim.perf.desched_events"

type warp_state = {
  cf : Cf.t;
  ready : int array;                       (* per register: cycle its value is ready *)
  mutable long_latency_until : int list;   (* ready cycles of outstanding LL results *)
  mutable wake : int;                      (* cycle the warp may re-enter the active set *)
}

let unit_index op =
  match Ir.Op.unit_class op with Ir.Op.Alu -> 0 | Ir.Op.Sfu -> 1 | Ir.Op.Mem -> 2 | Ir.Op.Tex -> 3

let run_inner ?(warps = 32) ?(seed = 0x5eed) ?(max_dynamic_per_warp = 2_000)
    ?(max_cycles = 10_000_000) ?mrf_banks ~scheduler ~policy (ctx : Alloc.Context.t) =
  let k = ctx.Alloc.Context.kernel in
  let au = Obs.Audit.is_enabled () in
  let co = Obs.Counters.is_enabled () in
  let partition = ctx.Alloc.Context.partition in
  (* Counter-track bins: issue count and register-file operand accesses
     per [counter_window]-cycle window (simulated time, so the tracks
     are byte-deterministic for a fixed seed). *)
  let counter_window = 64 in
  let issued_bins = Hashtbl.create 64 in
  let access_bins = Hashtbl.create 64 in
  let bin_bump tbl w n =
    match Hashtbl.find_opt tbl w with
    | Some r -> r := !r + n
    | None -> Hashtbl.add tbl w (ref n)
  in
  let nr = max 1 k.Ir.Kernel.num_regs in
  let states =
    Array.init warps (fun w ->
        {
          cf = Cf.create ~max_dynamic:max_dynamic_per_warp k ~warp:w ~seed;
          ready = Array.make nr 0;
          long_latency_until = [];
          wake = 0;
        })
  in
  let active_limit = match scheduler with Single_level -> warps | Two_level n -> max 1 n in
  (* Active set as an ordered list of warp ids (round-robin rotates it);
     the rest are pending and re-enter in wake order. *)
  let active = ref (List.init (min active_limit warps) Fun.id) in
  let pending = ref (List.init (max 0 (warps - active_limit)) (fun i -> i + active_limit)) in
  let cycle = ref 0 in
  let instructions = ref 0 in
  let desched_events = ref 0 in
  let unit_free = Array.make 4 0 in
  let outstanding_ll st now =
    st.long_latency_until <- List.filter (fun t -> t > now) st.long_latency_until;
    st.long_latency_until <> []
  in
  let warp_done w = Cf.finished states.(w).cf in
  let refill_active () =
    let missing = active_limit - List.length !active in
    if missing > 0 then begin
      let ready_pending, rest =
        List.partition (fun w -> states.(w).wake <= !cycle && not (warp_done w)) !pending
      in
      let take = List.filteri (fun i _ -> i < missing) ready_pending in
      let leftover = List.filteri (fun i _ -> i >= missing) ready_pending in
      active := !active @ take;
      pending := leftover @ rest
    end
  in
  let deschedule w ~wake =
    states.(w).wake <- wake;
    active := List.filter (fun x -> x <> w) !active;
    pending := !pending @ [ w ];
    incr desched_events;
    refill_active ()
  in
  let audit_desched w (i : Ir.Instr.t) =
    if au then
      Obs.Audit.emit
        (Obs.Audit.Desched { warp = w; instr = i.Ir.Instr.id; cause = Obs.Audit.Scheduler })
  in
  let try_issue w =
    let st = states.(w) in
    match Cf.peek st.cf with
    | None -> `Finished
    | Some i ->
      let now = !cycle in
      (match policy with
       | At_strand_boundaries
         when Strand.Partition.starts_strand partition i.Ir.Instr.id && outstanding_ll st now ->
         audit_desched w i;
         `Deschedule (List.fold_left max now st.long_latency_until)
       | At_strand_boundaries | On_dependence ->
         let blocked_regs = List.filter (fun r -> st.ready.(r) > now) i.Ir.Instr.srcs in
         if blocked_regs <> [] then begin
           let wait = List.fold_left (fun acc r -> max acc st.ready.(r)) now blocked_regs in
           let blocked_on_ll =
             List.exists (fun r -> List.exists (fun t -> t = st.ready.(r)) st.long_latency_until)
               blocked_regs
           in
           match policy, scheduler with
           | On_dependence, Two_level _ when blocked_on_ll ->
             audit_desched w i;
             `Deschedule wait
           | (On_dependence | At_strand_boundaries), _ -> `Stall
         end
         else if unit_free.(unit_index i.Ir.Instr.op) > now then `Stall
         else begin
           (* Banked-MRF refinement: same-bank source operands take
              extra serialized fetch cycles. *)
           let conflict_extra =
             match mrf_banks with
             | None -> 0
             | Some banks ->
               (* Re-reading one register is a broadcast, not a
                  conflict: count distinct registers per bank. *)
               let counts = Hashtbl.create 4 in
               List.iter
                 (fun r ->
                   let bank = r mod banks in
                   Hashtbl.replace counts bank
                     (1 + Option.value ~default:0 (Hashtbl.find_opt counts bank)))
                 (List.sort_uniq compare i.Ir.Instr.srcs);
               Hashtbl.fold (fun _ n acc -> max acc (n - 1)) counts 0
           in
           if co then begin
             let win = now / counter_window in
             bin_bump issued_bins win 1;
             bin_bump access_bins win
               (List.length i.Ir.Instr.srcs + if Option.is_some i.Ir.Instr.dst then 1 else 0)
           end;
           unit_free.(unit_index i.Ir.Instr.op) <- now + Ir.Op.issue_cycles i.Ir.Instr.op;
           Option.iter
             (fun d ->
               st.ready.(d) <- now + Ir.Op.latency i.Ir.Instr.op + conflict_extra;
               if Ir.Instr.is_long_latency i then
                 st.long_latency_until <- st.ready.(d) :: st.long_latency_until)
             i.Ir.Instr.dst;
           Cf.advance st.cf;
           incr instructions;
           `Issued
         end)
  in
  let all_done () = Array.for_all (fun st -> Cf.finished st.cf) states in
  while (not (all_done ())) && !cycle < max_cycles do
    refill_active ();
    if co && !cycle mod counter_window = 0 then
      Obs.Counters.sample "perf.active_warps" ~at:(float_of_int !cycle)
        (float_of_int (List.length !active));
    (* Round-robin over a snapshot of the active set until one warp
       issues; membership changes (deschedules, refills) apply to
       [active] directly and survive the scan. *)
    let rec attempt = function
      | [] -> ()
      | w :: rest ->
        if not (List.mem w !active) then attempt rest
        else begin
          match try_issue w with
          | `Issued -> active := List.filter (fun x -> x <> w) !active @ [ w ]
          | `Stall -> attempt rest
          | `Finished ->
            active := List.filter (fun x -> x <> w) !active;
            refill_active ();
            attempt rest
          | `Deschedule wake ->
            deschedule w ~wake;
            attempt rest
        end
    in
    attempt !active;
    incr cycle
  done;
  if co then
    List.iter
      (fun (name, tbl) ->
        Hashtbl.fold (fun w r acc -> (w, !r) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        |> List.iter (fun (w, v) ->
               Obs.Counters.sample name
                 ~at:(float_of_int (w * counter_window))
                 (float_of_int v)))
      [ ("perf.issued", issued_bins); ("perf.rf_accesses", access_bins) ];
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:!cycle m_cycles;
  Obs.Metrics.incr ~by:!instructions m_instructions;
  Obs.Metrics.incr ~by:!desched_events m_desched;
  {
    cycles = !cycle;
    instructions = !instructions;
    ipc = (if !cycle = 0 then 0.0 else float_of_int !instructions /. float_of_int !cycle);
    desched_events = !desched_events;
  }

let run ?warps ?seed ?max_dynamic_per_warp ?max_cycles ?mrf_banks ~scheduler ~policy ctx =
  Obs.Span.with_span "simulate.perf" (fun () ->
      run_inner ?warps ?seed ?max_dynamic_per_warp ?max_cycles ?mrf_banks ~scheduler ~policy ctx)
