type scheduler = Single_level | Two_level of int

type policy = On_dependence | At_strand_boundaries

type stall_cause = Obs.Timeline.state =
  | Issued
  | Wait_long_latency
  | Wait_short_latency
  | Bank_conflict_serialization
  | Descheduled_pending
  | No_issue_slot
  | Finished

type stall_breakdown = {
  issued : int;
  wait_long_latency : int;
  wait_short_latency : int;
  bank_conflict_serialization : int;
  descheduled_pending : int;
  no_issue_slot : int;
  finished : int;
}

type warp_stats = { warp : int; breakdown : stall_breakdown }

type sched_stats = {
  entries : int;
  exits : int;
  resident_cycles : int;
  desched_long_latency : int;
  desched_strand_boundary : int;
  desched_bank_conflict : int;
}

type result = {
  cycles : int;
  instructions : int;
  ipc : float;
  desched_events : int;
  stalls : stall_breakdown;
  per_warp : warp_stats array;
  sched : sched_stats;
}

let cause_index = function
  | Issued -> 0
  | Wait_long_latency -> 1
  | Wait_short_latency -> 2
  | Bank_conflict_serialization -> 3
  | Descheduled_pending -> 4
  | No_issue_slot -> 5
  | Finished -> 6

let breakdown_of_array a =
  {
    issued = a.(0);
    wait_long_latency = a.(1);
    wait_short_latency = a.(2);
    bank_conflict_serialization = a.(3);
    descheduled_pending = a.(4);
    no_issue_slot = a.(5);
    finished = a.(6);
  }

let breakdown_get b = function
  | Issued -> b.issued
  | Wait_long_latency -> b.wait_long_latency
  | Wait_short_latency -> b.wait_short_latency
  | Bank_conflict_serialization -> b.bank_conflict_serialization
  | Descheduled_pending -> b.descheduled_pending
  | No_issue_slot -> b.no_issue_slot
  | Finished -> b.finished

let breakdown_fields b =
  List.map (fun c -> (Obs.Timeline.state_name c, breakdown_get b c)) Obs.Timeline.all_states

let breakdown_total b =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (breakdown_fields b)

let stalled_cycles b = breakdown_total b - b.issued - b.finished

let mean_residency s =
  if s.entries = 0 then 0.0 else float_of_int s.resident_cycles /. float_of_int s.entries

let m_runs = Obs.Metrics.counter "sim.perf.runs"
let m_cycles = Obs.Metrics.counter "sim.perf.cycles"
let m_instructions = Obs.Metrics.counter "sim.perf.instructions"
let m_desched = Obs.Metrics.counter "sim.perf.desched_events"

type warp_state = {
  cf : Cf.t;
  ready : int array;                       (* per register: cycle its value is ready *)
  ready_base : int array;                  (* same, without bank-conflict serialization *)
  mutable long_latency_until : int list;   (* ready cycles of outstanding LL results *)
  mutable wake : int;                      (* cycle the warp may re-enter the active set *)
}

let unit_index op =
  match Ir.Op.unit_class op with Ir.Op.Alu -> 0 | Ir.Op.Sfu -> 1 | Ir.Op.Mem -> 2 | Ir.Op.Tex -> 3

let run_inner ?(warps = 32) ?(seed = 0x5eed) ?(max_dynamic_per_warp = 2_000)
    ?(max_cycles = 10_000_000) ?mrf_banks ~scheduler ~policy (ctx : Alloc.Context.t) =
  let k = ctx.Alloc.Context.kernel in
  let au = Obs.Audit.is_enabled () in
  let co = Obs.Counters.is_enabled () in
  let tl = Obs.Timeline.is_enabled () in
  let partition = ctx.Alloc.Context.partition in
  (* Counter-track bins: issue count and register-file operand accesses
     per [counter_window]-cycle window (simulated time, so the tracks
     are byte-deterministic for a fixed seed). *)
  let counter_window = 64 in
  let issued_bins = Hashtbl.create 64 in
  let access_bins = Hashtbl.create 64 in
  let bin_bump tbl w n =
    match Hashtbl.find_opt tbl w with
    | Some r -> r := !r + n
    | None -> Hashtbl.add tbl w (ref n)
  in
  let nr = max 1 k.Ir.Kernel.num_regs in
  let states =
    Array.init warps (fun w ->
        {
          cf = Cf.create ~max_dynamic:max_dynamic_per_warp k ~warp:w ~seed;
          ready = Array.make nr 0;
          ready_base = Array.make nr 0;
          long_latency_until = [];
          wake = 0;
        })
  in
  let active_limit = match scheduler with Single_level -> warps | Two_level n -> max 1 n in
  (* Active set as an ordered list of warp ids (round-robin rotates it);
     the rest are pending and re-enter in wake order. *)
  let active = ref (List.init (min active_limit warps) Fun.id) in
  let pending = ref (List.init (max 0 (warps - active_limit)) (fun i -> i + active_limit)) in
  let cycle = ref 0 in
  let instructions = ref 0 in
  let desched_events = ref 0 in
  let entries = ref (List.length !active) in
  let exits = ref 0 in
  let resident_cycles = ref 0 in
  let desched_ll = ref 0 in
  let desched_strand = ref 0 in
  let desched_conflict = ref 0 in
  (* Exact warp-cycle accounting: every cycle classifies every warp
     into one stall cause, so row w sums to the run's cycle count and
     the whole matrix sums to cycles x warps. *)
  let breakdown = Array.make_matrix warps 7 0 in
  let classified = Array.make warps false in
  (* Open timeline interval per warp: (state, start cycle).  Closed
     intervals accumulate newest-first and are emitted at end of run. *)
  let open_iv : (stall_cause * int) option array = Array.make warps None in
  let closed_ivs : Obs.Timeline.interval list array = Array.make warps [] in
  let unit_free = Array.make 4 0 in
  let outstanding_ll st now =
    st.long_latency_until <- List.filter (fun t -> t > now) st.long_latency_until;
    st.long_latency_until <> []
  in
  let warp_done w = Cf.finished states.(w).cf in
  let refill_active () =
    let missing = active_limit - List.length !active in
    if missing > 0 then begin
      let ready_pending, rest =
        List.partition (fun w -> states.(w).wake <= !cycle && not (warp_done w)) !pending
      in
      let take = List.filteri (fun i _ -> i < missing) ready_pending in
      let leftover = List.filteri (fun i _ -> i >= missing) ready_pending in
      entries := !entries + List.length take;
      active := !active @ take;
      pending := leftover @ rest
    end
  in
  let deschedule w ~wake =
    states.(w).wake <- wake;
    active := List.filter (fun x -> x <> w) !active;
    pending := !pending @ [ w ];
    incr desched_events;
    incr exits;
    refill_active ()
  in
  let audit_desched w (i : Ir.Instr.t) cause =
    (match cause with
     | Obs.Audit.Sw_boundary -> incr desched_strand
     | Obs.Audit.Bank_conflict -> incr desched_conflict
     | Obs.Audit.Hw_dependence | Obs.Audit.Scheduler -> incr desched_ll);
    if au then Obs.Audit.emit (Obs.Audit.Desched { warp = w; instr = i.Ir.Instr.id; cause })
  in
  (* A dependence whose base latency has elapsed is only still blocked
     by banked-MRF conflict serialization. *)
  let base_blocked st now blocked_regs =
    List.exists (fun r -> st.ready_base.(r) > now) blocked_regs
  in
  let try_issue w =
    let st = states.(w) in
    match Cf.peek st.cf with
    | None -> `Finished
    | Some i ->
      let now = !cycle in
      (match policy with
       | At_strand_boundaries
         when Strand.Partition.starts_strand partition i.Ir.Instr.id && outstanding_ll st now ->
         audit_desched w i Obs.Audit.Sw_boundary;
         `Deschedule (List.fold_left max now st.long_latency_until)
       | At_strand_boundaries | On_dependence ->
         let blocked_regs = List.filter (fun r -> st.ready.(r) > now) i.Ir.Instr.srcs in
         if blocked_regs <> [] then begin
           let wait = List.fold_left (fun acc r -> max acc st.ready.(r)) now blocked_regs in
           let blocked_on_ll =
             List.exists (fun r -> List.exists (fun t -> t = st.ready.(r)) st.long_latency_until)
               blocked_regs
           in
           match policy, scheduler with
           | On_dependence, Two_level _ when blocked_on_ll ->
             audit_desched w i
               (if base_blocked st now blocked_regs then Obs.Audit.Hw_dependence
                else Obs.Audit.Bank_conflict);
             `Deschedule wait
           | (On_dependence | At_strand_boundaries), _ -> `Stall
         end
         else if unit_free.(unit_index i.Ir.Instr.op) > now then `Stall
         else begin
           (* Banked-MRF refinement: same-bank source operands take
              extra serialized fetch cycles. *)
           let conflict_extra =
             match mrf_banks with
             | None -> 0
             | Some banks ->
               (* Re-reading one register is a broadcast, not a
                  conflict: count distinct registers per bank. *)
               let counts = Hashtbl.create 4 in
               List.iter
                 (fun r ->
                   let bank = r mod banks in
                   Hashtbl.replace counts bank
                     (1 + Option.value ~default:0 (Hashtbl.find_opt counts bank)))
                 (List.sort_uniq compare i.Ir.Instr.srcs);
               Hashtbl.fold (fun _ n acc -> max acc (n - 1)) counts 0
           in
           if co then begin
             let win = now / counter_window in
             bin_bump issued_bins win 1;
             bin_bump access_bins win
               (List.length i.Ir.Instr.srcs + if Option.is_some i.Ir.Instr.dst then 1 else 0)
           end;
           unit_free.(unit_index i.Ir.Instr.op) <- now + Ir.Op.issue_cycles i.Ir.Instr.op;
           Option.iter
             (fun d ->
               st.ready_base.(d) <- now + Ir.Op.latency i.Ir.Instr.op;
               st.ready.(d) <- st.ready_base.(d) + conflict_extra;
               if Ir.Instr.is_long_latency i then
                 st.long_latency_until <- st.ready.(d) :: st.long_latency_until)
             i.Ir.Instr.dst;
           Cf.advance st.cf;
           incr instructions;
           `Issued
         end)
  in
  (* Side-effect-free mirror of [try_issue] against start-of-cycle
     state: which cause keeps this active warp from issuing right now?
     [issue_taken] threads the round-robin arbitration through the
     active-order walk, so exactly the warp the scan will issue is
     classified [Issued] (earlier warps either stall or deschedule and
     the scan stops at the first issuer). *)
  let probe_active issue_taken w =
    let st = states.(w) in
    match Cf.peek st.cf with
    | None -> Finished
    | Some i ->
      let now = !cycle in
      let holds_at_strand =
        match policy with
        | At_strand_boundaries ->
          Strand.Partition.starts_strand partition i.Ir.Instr.id && outstanding_ll st now
        | On_dependence -> false
      in
      if holds_at_strand then Wait_long_latency
      else begin
        let blocked_regs = List.filter (fun r -> st.ready.(r) > now) i.Ir.Instr.srcs in
        if blocked_regs <> [] then begin
          if not (base_blocked st now blocked_regs) then Bank_conflict_serialization
          else if
            List.exists (fun r -> List.exists (fun t -> t = st.ready.(r)) st.long_latency_until)
              blocked_regs
          then Wait_long_latency
          else Wait_short_latency
        end
        else if unit_free.(unit_index i.Ir.Instr.op) > now then No_issue_slot
        else if !issue_taken then No_issue_slot
        else begin
          issue_taken := true;
          Issued
        end
      end
  in
  let classify w cause =
    classified.(w) <- true;
    let ci = cause_index cause in
    breakdown.(w).(ci) <- breakdown.(w).(ci) + 1;
    if tl then begin
      match open_iv.(w) with
      | Some (s, _) when s = cause -> ()
      | Some (s, start) ->
        closed_ivs.(w) <-
          { Obs.Timeline.warp = w; state = s; start; stop = !cycle } :: closed_ivs.(w);
        open_iv.(w) <- Some (cause, !cycle)
      | None -> open_iv.(w) <- Some (cause, !cycle)
    end
  in
  let classify_cycle () =
    Array.fill classified 0 warps false;
    let issue_taken = ref false in
    List.iter
      (fun w ->
        incr resident_cycles;
        classify w (probe_active issue_taken w))
      !active;
    List.iter
      (fun w -> classify w (if warp_done w then Finished else Descheduled_pending))
      !pending;
    (* Finished warps leave both lists; they still owe this cycle. *)
    for w = 0 to warps - 1 do
      if not classified.(w) then classify w Finished
    done
  in
  let all_done () = Array.for_all (fun st -> Cf.finished st.cf) states in
  while (not (all_done ())) && !cycle < max_cycles do
    refill_active ();
    if co && !cycle mod counter_window = 0 then
      Obs.Counters.sample "perf.active_warps" ~at:(float_of_int !cycle)
        (float_of_int (List.length !active));
    classify_cycle ();
    (* Round-robin over a snapshot of the active set until one warp
       issues; membership changes (deschedules, refills) apply to
       [active] directly and survive the scan. *)
    let rec attempt = function
      | [] -> ()
      | w :: rest ->
        if not (List.mem w !active) then attempt rest
        else begin
          match try_issue w with
          | `Issued -> active := List.filter (fun x -> x <> w) !active @ [ w ]
          | `Stall -> attempt rest
          | `Finished ->
            active := List.filter (fun x -> x <> w) !active;
            incr exits;
            refill_active ();
            attempt rest
          | `Deschedule wake ->
            deschedule w ~wake;
            attempt rest
        end
    in
    attempt !active;
    incr cycle
  done;
  if tl then
    for w = 0 to warps - 1 do
      (match open_iv.(w) with
       | Some (s, start) when !cycle > start ->
         closed_ivs.(w) <-
           { Obs.Timeline.warp = w; state = s; start; stop = !cycle } :: closed_ivs.(w)
       | _ -> ());
      List.iter Obs.Timeline.emit (List.rev closed_ivs.(w))
    done;
  if co then
    List.iter
      (fun (name, tbl) ->
        Hashtbl.fold (fun w r acc -> (w, !r) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        |> List.iter (fun (w, v) ->
               Obs.Counters.sample name
                 ~at:(float_of_int (w * counter_window))
                 (float_of_int v)))
      [ ("perf.issued", issued_bins); ("perf.rf_accesses", access_bins) ];
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:!cycle m_cycles;
  Obs.Metrics.incr ~by:!instructions m_instructions;
  Obs.Metrics.incr ~by:!desched_events m_desched;
  let totals = Array.make 7 0 in
  Array.iter (Array.iteri (fun i n -> totals.(i) <- totals.(i) + n)) breakdown;
  {
    cycles = !cycle;
    instructions = !instructions;
    ipc = (if !cycle = 0 then 0.0 else float_of_int !instructions /. float_of_int !cycle);
    desched_events = !desched_events;
    stalls = breakdown_of_array totals;
    per_warp = Array.init warps (fun w -> { warp = w; breakdown = breakdown_of_array breakdown.(w) });
    sched =
      {
        entries = !entries;
        exits = !exits;
        resident_cycles = !resident_cycles;
        desched_long_latency = !desched_ll;
        desched_strand_boundary = !desched_strand;
        desched_bank_conflict = !desched_conflict;
      };
  }

let run ?warps ?seed ?max_dynamic_per_warp ?max_cycles ?mrf_banks ~scheduler ~policy ctx =
  Obs.Span.with_span "simulate.perf" (fun () ->
      run_inner ?warps ?seed ?max_dynamic_per_warp ?max_cycles ?mrf_banks ~scheduler ~policy ctx)
