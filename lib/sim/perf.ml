type scheduler = Single_level | Two_level of int

type policy = On_dependence | At_strand_boundaries

type stall_cause = Obs.Timeline.state =
  | Issued
  | Wait_long_latency
  | Wait_short_latency
  | Bank_conflict_serialization
  | Descheduled_pending
  | No_issue_slot
  | Finished

type stall_breakdown = {
  issued : int;
  wait_long_latency : int;
  wait_short_latency : int;
  bank_conflict_serialization : int;
  descheduled_pending : int;
  no_issue_slot : int;
  finished : int;
}

type warp_stats = { warp : int; breakdown : stall_breakdown }

type sched_stats = {
  entries : int;
  exits : int;
  resident_cycles : int;
  desched_long_latency : int;
  desched_strand_boundary : int;
  desched_bank_conflict : int;
}

type result = {
  cycles : int;
  instructions : int;
  ipc : float;
  desched_events : int;
  stalls : stall_breakdown;
  per_warp : warp_stats array;
  sched : sched_stats;
}

let cause_index = function
  | Issued -> 0
  | Wait_long_latency -> 1
  | Wait_short_latency -> 2
  | Bank_conflict_serialization -> 3
  | Descheduled_pending -> 4
  | No_issue_slot -> 5
  | Finished -> 6

let cause_of_index = function
  | 0 -> Issued
  | 1 -> Wait_long_latency
  | 2 -> Wait_short_latency
  | 3 -> Bank_conflict_serialization
  | 4 -> Descheduled_pending
  | 5 -> No_issue_slot
  | _ -> Finished

let breakdown_of_array a =
  {
    issued = a.(0);
    wait_long_latency = a.(1);
    wait_short_latency = a.(2);
    bank_conflict_serialization = a.(3);
    descheduled_pending = a.(4);
    no_issue_slot = a.(5);
    finished = a.(6);
  }

(* Row [w] of the scratch's flat [warps x 7] stall matrix. *)
let breakdown_of_row flat w =
  let b = w * 7 in
  {
    issued = flat.(b);
    wait_long_latency = flat.(b + 1);
    wait_short_latency = flat.(b + 2);
    bank_conflict_serialization = flat.(b + 3);
    descheduled_pending = flat.(b + 4);
    no_issue_slot = flat.(b + 5);
    finished = flat.(b + 6);
  }

let breakdown_get b = function
  | Issued -> b.issued
  | Wait_long_latency -> b.wait_long_latency
  | Wait_short_latency -> b.wait_short_latency
  | Bank_conflict_serialization -> b.bank_conflict_serialization
  | Descheduled_pending -> b.descheduled_pending
  | No_issue_slot -> b.no_issue_slot
  | Finished -> b.finished

let breakdown_fields b =
  List.map (fun c -> (Obs.Timeline.state_name c, breakdown_get b c)) Obs.Timeline.all_states

let breakdown_total b =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (breakdown_fields b)

let stalled_cycles b = breakdown_total b - b.issued - b.finished

let mean_residency s =
  if s.entries = 0 then 0.0 else float_of_int s.resident_cycles /. float_of_int s.entries

let m_runs = Obs.Metrics.counter "sim.perf.runs"
let m_cycles = Obs.Metrics.counter "sim.perf.cycles"
let m_instructions = Obs.Metrics.counter "sim.perf.instructions"
let m_desched = Obs.Metrics.counter "sim.perf.desched_events"

let run_inner ?(warps = 32) ?(seed = 0x5eed) ?(max_dynamic_per_warp = 2_000)
    ?(max_cycles = 10_000_000) ?mrf_banks ?scratch ~scheduler ~policy (ctx : Alloc.Context.t) =
  let s = match scratch with Some s -> s | None -> Scratch.domain_local () in
  let k = ctx.Alloc.Context.kernel in
  let dec = Scratch.dec_for s ctx in
  let au = Obs.Audit.is_enabled () in
  let co = Obs.Counters.is_enabled () in
  let tl = Obs.Timeline.is_enabled () in
  (* Counter-track bins: issue count and register-file operand accesses
     per [counter_window]-cycle window (simulated time, so the tracks
     are byte-deterministic for a fixed seed). *)
  let counter_window = 64 in
  let issued_bins = if co then Hashtbl.create 64 else Hashtbl.create 0 in
  let access_bins = if co then Hashtbl.create 64 else Hashtbl.create 0 in
  let bin_bump tbl w n =
    match Hashtbl.find_opt tbl w with
    | Some r -> r := !r + n
    | None -> Hashtbl.add tbl w (ref n)
  in
  let nr = max 1 k.Ir.Kernel.num_regs in
  let ni = dec.Dec.num_instrs in
  Scratch.ensure_warps s ~warps ~num_regs:nr;
  let cfs =
    Array.init warps (fun w ->
        Scratch.cf s w ~max_dynamic:max_dynamic_per_warp k ~warp:w ~seed)
  in
  for w = 0 to warps - 1 do
    Array.fill s.Scratch.ready.(w) 0 nr 0;
    Array.fill s.Scratch.ready_base.(w) 0 nr 0;
    s.Scratch.ll_len.(w) <- 0;
    s.Scratch.wake.(w) <- 0;
    s.Scratch.in_active.(w) <- false;
    s.Scratch.stall_until.(w) <- 0
  done;
  Array.fill s.Scratch.unit_free 0 4 0;
  (* Banked-MRF conflict serialization is a static property of each
     instruction's distinct operands: resolve it into a table now so
     the issue path reads one int. *)
  let banks = match mrf_banks with None -> 0 | Some b -> b in
  if banks <> 0 then begin
    Scratch.ensure_banks s ~banks ~num_instrs:ni;
    for id = 0 to ni - 1 do
      s.Scratch.conflict_extra.(id) <-
        Dec.conflict_extra dec ~banks ~bank_counts:s.Scratch.bank_counts id
    done
  end;
  let active_limit = match scheduler with Single_level -> warps | Two_level n -> max 1 n in
  let at_strand = policy = At_strand_boundaries in
  let two_level = match scheduler with Two_level _ -> true | Single_level -> false in
  (* Active set as an ordered prefix of [s.active] (round-robin rotates
     it); the rest sit in [s.pending] and re-enter in wake order. *)
  let active = s.Scratch.active in
  let pending = s.Scratch.pending in
  let in_active = s.Scratch.in_active in
  let init_active = if active_limit < warps then active_limit else warps in
  for i = 0 to init_active - 1 do
    active.(i) <- i;
    in_active.(i) <- true
  done;
  for i = 0 to warps - init_active - 1 do
    pending.(i) <- init_active + i
  done;
  let active_len = ref init_active in
  let pending_len = ref (warps - init_active) in
  let cycle = ref 0 in
  let instructions = ref 0 in
  let desched_events = ref 0 in
  let entries = ref init_active in
  let exits = ref 0 in
  let resident_cycles = ref 0 in
  let desched_ll = ref 0 in
  let desched_strand = ref 0 in
  let desched_conflict = ref 0 in
  (* Exact warp-cycle accounting: every cycle classifies every warp
     into one stall cause, so row w sums to the run's cycle count and
     the whole matrix sums to cycles x warps.  Active warps classify
     per cycle; warps outside the active set have a constant state for
     the whole stint (a pending warp's PC never moves, so its
     done-ness and cause are fixed between queue transitions), so they
     accumulate one [span_state]/[span_start] span instead, flushed
     into the same matrix at the next transition or at end of run. *)
  let breakdown = s.Scratch.breakdown in
  Array.fill breakdown 0 (warps * 7) 0;
  let span_state = s.Scratch.span_state in
  let span_start = s.Scratch.span_start in
  for w = 0 to warps - 1 do
    if in_active.(w) then span_state.(w) <- -1
    else begin
      span_state.(w) <-
        cause_index (if Cf.finished cfs.(w) then Finished else Descheduled_pending);
      span_start.(w) <- 0
    end
  done;
  (* Open timeline interval per warp: (state, start cycle).  Closed
     intervals accumulate newest-first and are emitted at end of run. *)
  let open_iv : (stall_cause * int) option array =
    if tl then Array.make warps None else [||]
  in
  let closed_ivs : Obs.Timeline.interval list array =
    if tl then Array.make warps [] else [||]
  in
  let unit_free = s.Scratch.unit_free in
  (* Outstanding long-latency ready cycles, per warp: a compacting
     int buffer + count.  Compaction (dropping entries <= now) is
     observably neutral — membership is only ever tested against ready
     cycles > now, emptiness and wake maxima are defined on entries
     > now — so the mutating paths compact opportunistically while
     [ll_any_pure] keeps the start-of-cycle probe genuinely read-only. *)
  (* All loop helpers take every variable as an argument: a [let rec]
     that closes over locals of an enclosing per-call function would
     allocate a closure on each call. *)
  let rec ll_keep buf n now i m =
    if i >= n then m
    else begin
      let t = buf.(i) in
      if t > now then begin
        buf.(m) <- t;
        ll_keep buf n now (i + 1) (m + 1)
      end
      else ll_keep buf n now (i + 1) m
    end
  in
  let ll_compact w now =
    s.Scratch.ll_len.(w) <- ll_keep s.Scratch.ll.(w) s.Scratch.ll_len.(w) now 0 0
  in
  let ll_add w v now =
    ll_compact w now;
    let buf = s.Scratch.ll.(w) in
    let n = s.Scratch.ll_len.(w) in
    let buf =
      if n < Array.length buf then buf
      else begin
        let nb = Array.make (2 * Array.length buf) 0 in
        Array.blit buf 0 nb 0 n;
        s.Scratch.ll.(w) <- nb;
        nb
      end
    in
    buf.(n) <- v;
    s.Scratch.ll_len.(w) <- n + 1
  in
  let rec ll_any_from buf n now i = i < n && (buf.(i) > now || ll_any_from buf n now (i + 1)) in
  let ll_any_pure w now = ll_any_from s.Scratch.ll.(w) s.Scratch.ll_len.(w) now 0 in
  let rec ll_mem_from buf n v i = i < n && (buf.(i) = v || ll_mem_from buf n v (i + 1)) in
  let ll_mem w v = ll_mem_from s.Scratch.ll.(w) s.Scratch.ll_len.(w) v 0 in
  let rec ll_max_from buf n acc i =
    if i >= n then acc
    else ll_max_from buf n (if buf.(i) > acc then buf.(i) else acc) (i + 1)
  in
  let ll_max w acc = ll_max_from s.Scratch.ll.(w) s.Scratch.ll_len.(w) acc 0 in
  let warp_done w = Cf.finished cfs.(w) in
  (* Close warp [w]'s constant-state span at cycle [stop]: credit the
     whole stint to its stall matrix row in one add, and feed the
     timeline the state change exactly where per-cycle classification
     would have (identical consecutive states merge into one interval
     either way). *)
  let span_flush w stop =
    let si = span_state.(w) in
    if si >= 0 then begin
      let start = span_start.(w) in
      if stop > start then begin
        let ci = (w * 7) + si in
        breakdown.(ci) <- breakdown.(ci) + (stop - start);
        if tl then begin
          let cause = cause_of_index si in
          match open_iv.(w) with
          | Some (st, _) when st = cause -> ()
          | Some (st, s0) ->
            closed_ivs.(w) <-
              { Obs.Timeline.warp = w; state = st; start = s0; stop = start }
              :: closed_ivs.(w);
            open_iv.(w) <- Some (cause, start)
          | None -> open_iv.(w) <- Some (cause, start)
        end
      end
    end
  in
  (* Span end for warps a refill promotes: the start-of-cycle refill
     runs before classification (the promoted warp is classified as
     active this cycle), a mid-walk refill after it (the warp already
     owes this cycle as pending). *)
  let promote_end = ref 0 in
  (* Conservative lower bound on the earliest wake among non-finished
     pending warps: while it sits in the future the partition below
     would find nothing ready and reorder nothing, so the scan is
     skipped entirely. *)
  let wake_min = ref 0 in
  (* Refill partition counters, hoisted so refills allocate nothing. *)
  let nready = ref 0 in
  let nrest = ref 0 in
  let refill_active () =
    let missing = active_limit - !active_len in
    if missing > 0 && !pending_len > 0 && !wake_min <= !cycle then begin
      let now = !cycle in
      nready := 0;
      nrest := 0;
      for i = 0 to !pending_len - 1 do
        let w = pending.(i) in
        if s.Scratch.wake.(w) <= now && not (warp_done w) then begin
          s.Scratch.ready_buf.(!nready) <- w;
          incr nready
        end
        else begin
          s.Scratch.rest_buf.(!nrest) <- w;
          incr nrest
        end
      done;
      let take = if !nready < missing then !nready else missing in
      for j = 0 to take - 1 do
        let w = s.Scratch.ready_buf.(j) in
        span_flush w !promote_end;
        span_state.(w) <- -1;
        active.(!active_len) <- w;
        active_len := !active_len + 1;
        in_active.(w) <- true
      done;
      entries := !entries + take;
      (* New pending order: leftover ready warps first, then the rest —
         the wake-order refill contract. *)
      pending_len := 0;
      wake_min := max_int;
      for j = take to !nready - 1 do
        let w = s.Scratch.ready_buf.(j) in
        pending.(!pending_len) <- w;
        pending_len := !pending_len + 1;
        if s.Scratch.wake.(w) < !wake_min then wake_min := s.Scratch.wake.(w)
      done;
      for j = 0 to !nrest - 1 do
        let w = s.Scratch.rest_buf.(j) in
        pending.(!pending_len) <- w;
        pending_len := !pending_len + 1;
        if s.Scratch.wake.(w) < !wake_min && not (warp_done w) then
          wake_min := s.Scratch.wake.(w)
      done
    end
  in
  let rec index_of arr n w i =
    if i >= n then -1 else if arr.(i) = w then i else index_of arr n w (i + 1)
  in
  let remove_active w =
    let n = !active_len in
    let i = index_of active n w 0 in
    if i >= 0 then begin
      Array.blit active (i + 1) active i (n - i - 1);
      active_len := n - 1;
      in_active.(w) <- false
    end
  in
  let deschedule w ~wake =
    s.Scratch.wake.(w) <- wake;
    if wake < !wake_min then wake_min := wake;
    (* The warp was classified as active for this cycle; its pending
       span starts next cycle (a wake is always in the future, so the
       refill below cannot promote it back within this cycle). *)
    span_state.(w) <- 4 (* Descheduled_pending *);
    span_start.(w) <- !cycle + 1;
    remove_active w;
    pending.(!pending_len) <- w;
    pending_len := !pending_len + 1;
    incr desched_events;
    incr exits;
    refill_active ()
  in
  let audit_desched w id cause =
    (match cause with
     | Obs.Audit.Sw_boundary -> incr desched_strand
     | Obs.Audit.Bank_conflict -> incr desched_conflict
     | Obs.Audit.Hw_dependence | Obs.Audit.Scheduler -> incr desched_ll);
    if au then Obs.Audit.emit (Obs.Audit.Desched { warp = w; instr = id; cause })
  in
  (* One pass over the instruction's predecoded sources, leaving its
     findings in these cells (ints and bools only — the stores never
     allocate): the issue-blocking state both [try_issue] and the
     classification probe branch on. *)
  let scan_wait = ref 0 in
  let scan_blocked = ref false in
  let scan_base = ref false in
  let scan_ll = ref false in
  (* Earliest future ready or ready-base crossing among the blocked
     sources: the first cycle this instruction's blocked classification
     could change. *)
  let scan_next = ref 0 in
  let scan_srcs w id now =
    scan_wait := now;
    scan_blocked := false;
    scan_base := false;
    scan_ll := false;
    scan_next := max_int;
    let ready = s.Scratch.ready.(w) in
    let ready_base = s.Scratch.ready_base.(w) in
    let base = id * Dec.max_srcs in
    for p = 0 to dec.Dec.nsrcs.(id) - 1 do
      let r = dec.Dec.srcs.(base + p) in
      let rr = ready.(r) in
      if rr > now then begin
        scan_blocked := true;
        if rr > !scan_wait then scan_wait := rr;
        if rr < !scan_next then scan_next := rr;
        (* A dependence whose base latency has elapsed is only still
           blocked by banked-MRF conflict serialization. *)
        let rb = ready_base.(r) in
        if rb > now then begin
          scan_base := true;
          if rb < !scan_next then scan_next := rb
        end;
        if ll_mem w rr then scan_ll := true
      end
    done
  in
  (* The issue side effects for instruction [id] of warp [w]: book the
     unit, post the destination's ready cycles, track long-latency
     completion, advance the PC and rotate the issuer to the back of
     the active queue (round-robin). *)
  let issue w id now =
    let extra = if banks = 0 then 0 else s.Scratch.conflict_extra.(id) in
    if co then begin
      let win = now / counter_window in
      bin_bump issued_bins win 1;
      bin_bump access_bins win
        (dec.Dec.nsrcs.(id) + if dec.Dec.dst.(id) >= 0 then 1 else 0)
    end;
    unit_free.(dec.Dec.unit_of.(id)) <- now + dec.Dec.issue_cycles.(id);
    let d = dec.Dec.dst.(id) in
    if d >= 0 then begin
      let rb = now + dec.Dec.latency.(id) in
      s.Scratch.ready_base.(w).(d) <- rb;
      s.Scratch.ready.(w).(d) <- rb + extra;
      if dec.Dec.is_ll.(id) then ll_add w (rb + extra) now
    end;
    Cf.advance cfs.(w);
    incr instructions;
    remove_active w;
    active.(!active_len) <- w;
    active_len := !active_len + 1;
    in_active.(w) <- true
  in
  let classify w cause =
    let ci = (w * 7) + cause_index cause in
    breakdown.(ci) <- breakdown.(ci) + 1;
    if tl then begin
      match open_iv.(w) with
      | Some (st, _) when st = cause -> ()
      | Some (st, start) ->
        closed_ivs.(w) <-
          { Obs.Timeline.warp = w; state = st; start; stop = !cycle } :: closed_ivs.(w);
        open_iv.(w) <- Some (cause, !cycle)
      | None -> open_iv.(w) <- Some (cause, !cycle)
    end
  in
  (* Classification and issue fused into ONE active-order walk per
     cycle.  The attribution stays exact — every warp-cycle classifies
     against start-of-cycle state, exactly as a pure probe pass
     followed by an issue pass would — because the only cross-warp
     state an issue mutates is [unit_free], and a warp reached after
     the issuer classifies [No_issue_slot] either way: its unit is
     booked for at least a full cycle, or the single issue slot is
     gone.  Per-warp effects (ready times, the ll buffer, the PC)
     touch only the issuing warp, which the walk never revisits.
     Warps ahead of the issuer in round-robin order take their
     deschedule side effects as they are classified (the scan stops
     acting, but not classifying, at the first issuer); warps a
     mid-walk refill promotes were already classified as pending and
     wait for the next cycle.  Fusing halves the per-active-warp scan
     work the split walks duplicated. *)
  let issued = ref false in
  let stall_until = s.Scratch.stall_until in
  let stall_cause = s.Scratch.stall_cause in
  let step_active w =
    (* Blocked-cause fast path.  While a warp is dependence-blocked its
       own registers are frozen (it cannot issue) and its blocked
       source set only shrinks as ready cycles pass, so the cached
       cause holds — and [scan_ll] can never flip on, so no deschedule
       is missed — until the earliest crossing recorded at scan time.
       The cache self-invalidates: an issue or a promotion only happens
       at a cycle >= the cached bound, so a stale entry never fires. *)
    if !cycle < stall_until.(w) then classify w (cause_of_index stall_cause.(w))
    else begin
    let id = Cf.peek_id cfs.(w) in
    if id < 0 then begin
      classify w Finished;
      if not !issued then begin
        remove_active w;
        incr exits;
        (* Retired for good: neither queue will see it again, so the
           rest of the run is one Finished span starting next cycle. *)
        span_state.(w) <- 6 (* Finished *);
        span_start.(w) <- !cycle + 1;
        refill_active ()
      end
    end
    else begin
      let now = !cycle in
      if at_strand && dec.Dec.starts_strand.(id) && ll_any_pure w now then begin
        classify w Wait_long_latency;
        if not !issued then begin
          audit_desched w id Obs.Audit.Sw_boundary;
          ll_compact w now;
          deschedule w ~wake:(ll_max w now)
        end
      end
      else begin
        scan_srcs w id now;
        if !scan_blocked then begin
          let ci =
            if not !scan_base then 3 (* Bank_conflict_serialization *)
            else if !scan_ll then 1 (* Wait_long_latency *)
            else 2 (* Wait_short_latency *)
          in
          classify w (cause_of_index ci);
          if (not at_strand) && two_level && !scan_ll then begin
            (* Deschedule candidate.  Post-issue the scan has stopped
               acting for this cycle, and the deschedule must happen on
               a later pre-issue walk — so this case is never cached. *)
            if not !issued then begin
              audit_desched w id
                (if !scan_base then Obs.Audit.Hw_dependence else Obs.Audit.Bank_conflict);
              deschedule w ~wake:!scan_wait
            end
          end
          else begin
            stall_cause.(w) <- ci;
            stall_until.(w) <- !scan_next
          end
        end
        else if unit_free.(dec.Dec.unit_of.(id)) > now then classify w No_issue_slot
        else if !issued then classify w No_issue_slot
        else begin
          classify w Issued;
          issued := true;
          issue w id now
        end
      end
    end
    end
  in
  let scan = s.Scratch.scan in
  let classify_and_issue () =
    issued := false;
    (* Walk a snapshot: membership changes (deschedules, refills)
       apply to the live queue directly and survive the scan.  Warps
       outside the snapshot are covered by their open spans — pending
       and retired warps owe this cycle at their constant state, and a
       mid-walk promotion closes the span at the next cycle boundary
       ([promote_end]), so every warp-cycle lands in the matrix exactly
       once. *)
    let n = !active_len in
    Array.blit active 0 scan 0 n;
    for i = 0 to n - 1 do
      incr resident_cycles;
      step_active scan.(i)
    done
  in
  let rec all_done_from w = w >= warps || (Cf.finished cfs.(w) && all_done_from (w + 1)) in
  while (not (all_done_from 0)) && !cycle < max_cycles do
    promote_end := !cycle;
    refill_active ();
    if co && !cycle mod counter_window = 0 then
      Obs.Counters.sample "perf.active_warps" ~at:(float_of_int !cycle)
        (float_of_int !active_len);
    promote_end := !cycle + 1;
    classify_and_issue ();
    incr cycle
  done;
  (* Close the spans still open — descheduled and retired warps owe
     every cycle through the end of the run. *)
  for w = 0 to warps - 1 do
    span_flush w !cycle
  done;
  if tl then
    for w = 0 to warps - 1 do
      (match open_iv.(w) with
       | Some (st, start) when !cycle > start ->
         closed_ivs.(w) <-
           { Obs.Timeline.warp = w; state = st; start; stop = !cycle } :: closed_ivs.(w)
       | _ -> ());
      List.iter Obs.Timeline.emit (List.rev closed_ivs.(w))
    done;
  if co then
    List.iter
      (fun (name, tbl) ->
        Hashtbl.fold (fun w r acc -> (w, !r) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        |> List.iter (fun (w, v) ->
               Obs.Counters.sample name
                 ~at:(float_of_int (w * counter_window))
                 (float_of_int v)))
      [ ("perf.issued", issued_bins); ("perf.rf_accesses", access_bins) ];
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:!cycle m_cycles;
  Obs.Metrics.incr ~by:!instructions m_instructions;
  Obs.Metrics.incr ~by:!desched_events m_desched;
  let totals = Array.make 7 0 in
  for w = 0 to warps - 1 do
    for c = 0 to 6 do
      totals.(c) <- totals.(c) + breakdown.((w * 7) + c)
    done
  done;
  {
    cycles = !cycle;
    instructions = !instructions;
    ipc = (if !cycle = 0 then 0.0 else float_of_int !instructions /. float_of_int !cycle);
    desched_events = !desched_events;
    stalls = breakdown_of_array totals;
    per_warp = Array.init warps (fun w -> { warp = w; breakdown = breakdown_of_row breakdown w });
    sched =
      {
        entries = !entries;
        exits = !exits;
        resident_cycles = !resident_cycles;
        desched_long_latency = !desched_ll;
        desched_strand_boundary = !desched_strand;
        desched_bank_conflict = !desched_conflict;
      };
  }

let run ?warps ?seed ?max_dynamic_per_warp ?max_cycles ?mrf_banks ?scratch ~scheduler ~policy
    ctx =
  Obs.Span.with_span "simulate.perf" (fun () ->
      run_inner ?warps ?seed ?max_dynamic_per_warp ?max_cycles ?mrf_banks ?scratch ~scheduler
        ~policy ctx)
