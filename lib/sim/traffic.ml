type hw_options = {
  rfc_entries : int;
  with_lrf : bool;
  flush_on_backward_branch : bool;
  never_flush : bool;
}

let hw_defaults ~rfc_entries =
  { rfc_entries; with_lrf = false; flush_on_backward_branch = false; never_flush = false }

type scheme =
  | Baseline
  | Sw of { config : Alloc.Config.t; placement : Alloc.Placement.t }
  | Hw of hw_options

type result = {
  counts : Energy.Counts.t;
  per_strand : Energy.Counts.t array;
  dynamic_instrs : int;
  desched_events : int;
  capped_warps : int;
}

let m_runs = Obs.Metrics.counter "sim.traffic.runs"
let m_dynamic = Obs.Metrics.counter "sim.traffic.dynamic_instrs"
let m_desched = Obs.Metrics.counter "sim.traffic.desched_events"
let m_capped = Obs.Metrics.counter "sim.traffic.capped_warps"

let audit_level = function
  | Energy.Model.Mrf -> Obs.Audit.Mrf
  | Energy.Model.Orf -> Obs.Audit.Orf
  | Energy.Model.Lrf -> Obs.Audit.Lrf
  | Energy.Model.Rfc -> Obs.Audit.Rfc

(* Dynamic-instruction window width for the counter tracks. *)
let counter_window = 32

let run_inner ?(warps = 32) ?(seed = 0x5eed) ?max_dynamic_per_warp ?(long_latency_shadow = 50)
    ?(attribution = false) ?scratch (ctx : Alloc.Context.t) scheme =
  let s = match scratch with Some s -> s | None -> Scratch.domain_local () in
  let k = ctx.Alloc.Context.kernel in
  let dec = Scratch.dec_for s ctx in
  let partition = ctx.Alloc.Context.partition in
  let num_strands = max 1 (Strand.Partition.num_strands partition) in
  let per_strand = Array.init num_strands (fun _ -> Energy.Counts.create ()) in
  if attribution then
    Array.iter
      (fun c -> Energy.Counts.enable_attribution c ~instrs:(Ir.Kernel.instr_count k))
      per_strand;
  let desched_events = ref 0 in
  let dynamic_instrs = ref 0 in
  let capped_warps = ref 0 in
  (* Audit enablement is sampled once per run: the sink never changes
     mid-run, and the hot path must not pay for a closure per access.
     Counter sampling follows the same discipline. *)
  let au = Obs.Audit.is_enabled () in
  let co = Obs.Counters.is_enabled () in
  (* Per-level accesses per window of warp-local dynamic instructions,
     summed across warps; window index is the simulated timestamp. *)
  let level_bins = Array.init 3 (fun _ -> Hashtbl.create (if co then 32 else 0)) in
  let bin_bump tbl w n =
    if n <> 0 then
      match Hashtbl.find_opt tbl w with
      | Some r -> r := !r + n
      | None -> Hashtbl.add tbl w (ref n)
  in
  let level_total c l = Energy.Counts.reads c l + Energy.Counts.writes c l in
  let nr = max 1 k.Ir.Kernel.num_regs in
  let max_dynamic = match max_dynamic_per_warp with Some m -> m | None -> 100_000 in
  Scratch.ensure_warps s ~warps ~num_regs:nr;
  Scratch.ensure_outstanding s nr;
  (* All loop helpers take every variable as an argument: a [let rec]
     closing over locals of an enclosing per-call function would
     allocate a closure on each call. *)
  let rec src_mem srcs base p n r = p < n && (srcs.(base + p) = r || src_mem srcs base (p + 1) n r) in
  (* Liveness of [r] just before instruction [id] executes. *)
  let live_before_id id r =
    src_mem dec.Dec.srcs (id * Dec.max_srcs) 0 dec.Dec.nsrcs.(id) r
    || (dec.Dec.dst.(id) <> r
        && Analysis.Liveness.live_after_instr ctx.Alloc.Context.liveness ~instr_id:id r)
  in
  (* Per-warp outstanding long-latency writes — a flat (register, issue
     index) buffer in the scratch, compacted as entries resolve after a
     fixed warp-local instruction distance.  Entry order is immaterial:
     the observables are membership and non-emptiness. *)
  let rec out_keep reg at n now i m =
    if i >= n then m
    else if now - at.(i) < long_latency_shadow then begin
      reg.(m) <- reg.(i);
      at.(m) <- at.(i);
      out_keep reg at n now (i + 1) (m + 1)
    end
    else out_keep reg at n now (i + 1) m
  in
  let o_expire now =
    s.Scratch.out_len <- out_keep s.Scratch.out_reg s.Scratch.out_at s.Scratch.out_len now 0 0
  in
  let rec out_drop reg at n r i m =
    if i >= n then m
    else if reg.(i) = r then out_drop reg at n r (i + 1) m
    else begin
      reg.(m) <- reg.(i);
      at.(m) <- at.(i);
      out_drop reg at n r (i + 1) (m + 1)
    end
  in
  let o_add r now =
    o_expire now;
    let reg = s.Scratch.out_reg in
    let at = s.Scratch.out_at in
    let m = out_drop reg at s.Scratch.out_len r 0 0 in
    reg.(m) <- r;
    at.(m) <- now;
    s.Scratch.out_len <- m + 1
  in
  let rec out_mem reg n r i = i < n && (reg.(i) = r || out_mem reg n r (i + 1)) in
  let o_blocks r now =
    o_expire now;
    out_mem s.Scratch.out_reg s.Scratch.out_len r 0
  in
  let rec any_blocks srcs base p n now =
    p < n && (o_blocks srcs.(base + p) now || any_blocks srcs base (p + 1) n now)
  in
  let o_any now =
    o_expire now;
    s.Scratch.out_len > 0
  in
  (* Precomputed static facts for the hardware scheme. *)
  let shared_consumer =
    let a = Array.make (Ir.Kernel.instr_count k) false in
    List.iter
      (fun (inst : Analysis.Duchain.instance) ->
        if
          List.exists
            (fun (r : Analysis.Duchain.read) ->
              Ir.Op.is_shared_datapath (Ir.Kernel.instr k r.Analysis.Duchain.read_instr).Ir.Instr.op)
            inst.Analysis.Duchain.reads
        then a.(inst.Analysis.Duchain.def) <- true)
      (Analysis.Duchain.instances ctx.Alloc.Context.duchain);
    a
  in
  let backward_block_last_instr =
    let s = Hashtbl.create 8 in
    Array.iter
      (fun (b : Ir.Block.t) ->
        if Ir.Terminator.is_backward b.Ir.Block.term ~at:b.Ir.Block.label then
          Option.iter (fun id -> Hashtbl.add s id ()) (Ir.Block.last_id b))
      k.Ir.Kernel.blocks;
    s
  in
  let run_warp warp =
    let cf = Scratch.cf s warp ~max_dynamic k ~warp ~seed in
    s.Scratch.out_len <- 0;
    let rfc, hw_lrf =
      match scheme with
      | Hw opts ->
        ( Some (Machine.Tagged_cache.create ~entries:opts.rfc_entries),
          if opts.with_lrf then Some (Machine.Tagged_cache.create ~entries:1) else None )
      | Baseline | Sw _ -> (None, None)
    in
    (* Every Energy.Counts write below is mirrored by an audit placement
       event (guarded on [au] so the common disabled path stays a plain
       counter bump): summing Place events per level therefore
       reproduces the Energy.Counts write totals exactly. *)
    let emit_place level ~instr =
      Obs.Audit.emit (Obs.Audit.Place { warp; instr; level = audit_level level })
    in
    let place c level dp ~instr =
      Energy.Counts.bump_write c level dp ~pc:instr ~n:1;
      if au then emit_place level ~instr
    in
    let desched ~instr cause =
      incr desched_events;
      if au then Obs.Audit.emit (Obs.Audit.Desched { warp; instr; cause })
    in
    let evict ~instr level ~writeback =
      if au then
        Obs.Audit.emit (Obs.Audit.Evict { warp; instr; level = audit_level level; writeback })
    in
    (* Writeback one evicted RFC value if still live at the eviction point. *)
    let writeback_rfc_evict c ~liveness_check ~instr reg =
      if liveness_check reg then begin
        Energy.Counts.bump_read c Energy.Model.Rfc Energy.Model.Private ~pc:instr ~n:1;
        evict ~instr Energy.Model.Rfc ~writeback:true;
        place c Energy.Model.Mrf Energy.Model.Private ~instr
      end
      else evict ~instr Energy.Model.Rfc ~writeback:false
    in
    let insert_rfc c cache ~liveness_check ~instr reg =
      Option.iter
        (writeback_rfc_evict c ~liveness_check ~instr)
        (Machine.Tagged_cache.insert cache reg);
      place c Energy.Model.Rfc Energy.Model.Private ~instr
    in
    let flush_caches c instr =
      let liveness_check = live_before_id instr in
      Option.iter
        (fun lrf ->
          List.iter
            (fun r ->
              if liveness_check r then begin
                Energy.Counts.bump_read c Energy.Model.Lrf Energy.Model.Private ~pc:instr ~n:1;
                evict ~instr Energy.Model.Lrf ~writeback:true;
                place c Energy.Model.Mrf Energy.Model.Private ~instr
              end
              else evict ~instr Energy.Model.Lrf ~writeback:false)
            (Machine.Tagged_cache.flush lrf))
        hw_lrf;
      Option.iter
        (fun cache ->
          List.iter
            (fun r ->
              if liveness_check r then begin
                Energy.Counts.bump_read c Energy.Model.Rfc Energy.Model.Private ~pc:instr ~n:1;
                evict ~instr Energy.Model.Rfc ~writeback:true;
                place c Energy.Model.Mrf Energy.Model.Private ~instr
              end
              else evict ~instr Energy.Model.Rfc ~writeback:false)
            (Machine.Tagged_cache.flush cache))
        rfc
    in
    (* Audit Fill events for the Sw scheme, walked without a per-step
       closure. *)
    let rec emit_fills id = function
      | [] -> ()
      | (pos, entry) :: tl ->
        emit_place Energy.Model.Orf ~instr:id;
        Obs.Audit.emit (Obs.Audit.Fill { warp; instr = id; pos; entry });
        emit_fills id tl
    in
    let rec count_fills = function [] -> 0 | _ :: tl -> 1 + count_fills tl in
    let rec step () =
      let id = Cf.peek_id cf in
      if id < 0 then begin
        if Cf.hit_cap cf then incr capped_warps
      end
      else begin
        let now = Cf.dynamic_count cf in
        let c = per_strand.(Strand.Partition.strand_of_instr partition id) in
        let consumer_dp =
          if dec.Dec.shared_dp.(id) then Energy.Model.Shared else Energy.Model.Private
        in
        let ns = dec.Dec.nsrcs.(id) in
        let d = dec.Dec.dst.(id) in
        (* Per-window counter tracks are deltas over this instruction's
           aggregate counts — exact for every scheme, including cache
           evictions charged to the instruction that triggered them. *)
        let b_mrf = if co then level_total c Energy.Model.Mrf else 0 in
        let b_orf = if co then level_total c Energy.Model.Orf else 0 in
        let b_lrf = if co then level_total c Energy.Model.Lrf else 0 in
        (match scheme with
         | Baseline ->
           Energy.Counts.bump_read c Energy.Model.Mrf consumer_dp ~pc:id ~n:ns;
           if d >= 0 then begin
             Energy.Counts.bump_write c Energy.Model.Mrf consumer_dp ~pc:id ~n:1;
             if au then emit_place Energy.Model.Mrf ~instr:id
           end
         | Sw { placement; _ } ->
           (* Compiler-scheduled deschedule point. *)
           if dec.Dec.starts_strand.(id) && o_any now then begin
             desched ~instr:id Obs.Audit.Sw_boundary;
             s.Scratch.out_len <- 0
           end;
           for pos = 0 to ns - 1 do
             match Alloc.Placement.src placement ~instr:id ~pos with
             | Alloc.Placement.From_mrf ->
               Energy.Counts.bump_read c Energy.Model.Mrf consumer_dp ~pc:id ~n:1
             | Alloc.Placement.From_orf _ ->
               Energy.Counts.bump_read c Energy.Model.Orf consumer_dp ~pc:id ~n:1
             | Alloc.Placement.From_lrf _ ->
               Energy.Counts.bump_read c Energy.Model.Lrf Energy.Model.Private ~pc:id ~n:1
           done;
           let fills = Alloc.Placement.fills_of placement ~instr:id in
           (match fills with
            | [] -> ()
            | _ ->
              Energy.Counts.bump_write c Energy.Model.Orf consumer_dp ~pc:id
                ~n:(count_fills fills);
              if au then emit_fills id fills);
           (match Alloc.Placement.dest placement ~instr:id with
            | Some dest when d >= 0 ->
              if dest.Alloc.Placement.to_mrf then begin
                Energy.Counts.bump_write c Energy.Model.Mrf consumer_dp ~pc:id ~n:1;
                if au then emit_place Energy.Model.Mrf ~instr:id
              end;
              if Option.is_some dest.Alloc.Placement.to_orf then begin
                Energy.Counts.bump_write c Energy.Model.Orf consumer_dp ~pc:id ~n:1;
                if au then emit_place Energy.Model.Orf ~instr:id
              end;
              if Option.is_some dest.Alloc.Placement.to_lrf then begin
                Energy.Counts.bump_write c Energy.Model.Lrf Energy.Model.Private ~pc:id ~n:1;
                if au then emit_place Energy.Model.Lrf ~instr:id
              end;
              if dec.Dec.is_ll.(id) then o_add d now
            | _ -> ())
         | Hw opts ->
           let cache = Option.get rfc in
           (* Deschedule on an unresolved long-latency dependence. *)
           if any_blocks dec.Dec.srcs (id * Dec.max_srcs) 0 ns now then begin
             desched ~instr:id Obs.Audit.Hw_dependence;
             if not opts.never_flush then flush_caches c id;
             s.Scratch.out_len <- 0
           end;
           for pos = 0 to ns - 1 do
             let r = dec.Dec.srcs.((id * Dec.max_srcs) + pos) in
             let lrf_hit =
               consumer_dp = Energy.Model.Private
               && (match hw_lrf with
                   | Some lrf -> Machine.Tagged_cache.contains lrf r
                   | None -> false)
             in
             if lrf_hit then
               Energy.Counts.bump_read c Energy.Model.Lrf Energy.Model.Private ~pc:id ~n:1
             else if Machine.Tagged_cache.contains cache r then
               Energy.Counts.bump_read c Energy.Model.Rfc consumer_dp ~pc:id ~n:1
             else begin
               Energy.Counts.bump_rfc_probe c ~pc:id ~n:1;
               Energy.Counts.bump_read c Energy.Model.Mrf consumer_dp ~pc:id ~n:1
             end
           done;
           if d >= 0 then begin
             let liveness_check r =
               Analysis.Liveness.live_after_instr ctx.Alloc.Context.liveness ~instr_id:id r
             in
             if dec.Dec.is_ll.(id) then begin
               (* Long-latency results bypass the hierarchy (Sec. 2.2). *)
               place c Energy.Model.Mrf consumer_dp ~instr:id;
               Machine.Tagged_cache.remove cache d;
               Option.iter (fun lrf -> Machine.Tagged_cache.remove lrf d) hw_lrf;
               o_add d now
             end
             else begin
               match hw_lrf with
               | Some lrf when consumer_dp = Energy.Model.Private && not shared_consumer.(id)
                 ->
                 (* LRF insert; evicted value cascades into the RFC. *)
                 Option.iter
                   (fun evicted ->
                     if liveness_check evicted then begin
                       Energy.Counts.bump_read c Energy.Model.Lrf Energy.Model.Private ~pc:id
                         ~n:1;
                       evict ~instr:id Energy.Model.Lrf ~writeback:true;
                       insert_rfc c cache ~liveness_check ~instr:id evicted
                     end
                     else evict ~instr:id Energy.Model.Lrf ~writeback:false)
                   (Machine.Tagged_cache.insert lrf d);
                 place c Energy.Model.Lrf Energy.Model.Private ~instr:id;
                 Machine.Tagged_cache.remove cache d
               | Some _ | None ->
                 insert_rfc c cache ~liveness_check ~instr:id d;
                 Option.iter (fun lrf -> Machine.Tagged_cache.remove lrf d) hw_lrf
             end
           end;
           if opts.flush_on_backward_branch && Hashtbl.mem backward_block_last_instr id then
             flush_caches c id);
        if co then begin
          let w = now / counter_window in
          bin_bump level_bins.(0) w (level_total c Energy.Model.Mrf - b_mrf);
          bin_bump level_bins.(1) w (level_total c Energy.Model.Orf - b_orf);
          bin_bump level_bins.(2) w (level_total c Energy.Model.Lrf - b_lrf)
        end;
        Cf.advance cf;
        step ()
      end
    in
    step ();
    dynamic_instrs := !dynamic_instrs + Cf.dynamic_count cf
  in
  for w = 0 to warps - 1 do
    run_warp w
  done;
  (* Emit the window bins, sorted, as counter samples stamped with the
     warp-local dynamic-instruction index at the window start. *)
  if co then
    List.iteri
      (fun li name ->
        Hashtbl.fold (fun w r acc -> (w, !r) :: acc) level_bins.(li) []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        |> List.iter (fun (w, v) ->
               Obs.Counters.sample name
                 ~at:(float_of_int (w * counter_window))
                 (float_of_int v)))
      [ "traffic.mrf_accesses"; "traffic.orf_accesses"; "traffic.lrf_accesses" ];
  let counts = Energy.Counts.create () in
  Array.iter (fun c -> Energy.Counts.merge_into ~dst:counts c) per_strand;
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:!dynamic_instrs m_dynamic;
  Obs.Metrics.incr ~by:!desched_events m_desched;
  Obs.Metrics.incr ~by:!capped_warps m_capped;
  {
    counts;
    per_strand;
    dynamic_instrs = !dynamic_instrs;
    desched_events = !desched_events;
    capped_warps = !capped_warps;
  }

let run ?warps ?seed ?max_dynamic_per_warp ?long_latency_shadow ?attribution ?scratch ctx
    scheme =
  Obs.Span.with_span "simulate" (fun () ->
      run_inner ?warps ?seed ?max_dynamic_per_warp ?long_latency_shadow ?attribution ?scratch
        ctx scheme)
