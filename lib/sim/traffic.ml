type hw_options = {
  rfc_entries : int;
  with_lrf : bool;
  flush_on_backward_branch : bool;
  never_flush : bool;
}

let hw_defaults ~rfc_entries =
  { rfc_entries; with_lrf = false; flush_on_backward_branch = false; never_flush = false }

type scheme =
  | Baseline
  | Sw of { config : Alloc.Config.t; placement : Alloc.Placement.t }
  | Hw of hw_options

type result = {
  counts : Energy.Counts.t;
  per_strand : Energy.Counts.t array;
  dynamic_instrs : int;
  desched_events : int;
  capped_warps : int;
}

let m_runs = Obs.Metrics.counter "sim.traffic.runs"
let m_dynamic = Obs.Metrics.counter "sim.traffic.dynamic_instrs"
let m_desched = Obs.Metrics.counter "sim.traffic.desched_events"
let m_capped = Obs.Metrics.counter "sim.traffic.capped_warps"

let audit_level = function
  | Energy.Model.Mrf -> Obs.Audit.Mrf
  | Energy.Model.Orf -> Obs.Audit.Orf
  | Energy.Model.Lrf -> Obs.Audit.Lrf
  | Energy.Model.Rfc -> Obs.Audit.Rfc

let datapath_of_op op =
  if Ir.Op.is_shared_datapath op then Energy.Model.Shared else Energy.Model.Private

(* Liveness of [r] just before instruction [i] executes. *)
let live_before (ctx : Alloc.Context.t) (i : Ir.Instr.t) r =
  List.exists (Ir.Reg.equal r) i.Ir.Instr.srcs
  || (i.Ir.Instr.dst <> Some r
      && Analysis.Liveness.live_after_instr ctx.Alloc.Context.liveness ~instr_id:i.Ir.Instr.id r)

(* Per-warp outstanding long-latency writes, resolved after a fixed
   warp-local instruction distance (see interface). *)
module Outstanding = struct
  type t = {
    shadow : int;
    mutable pending : (Ir.Reg.t * int) list;  (* reg, warp-local issue index *)
  }

  let create ~shadow = { shadow; pending = [] }

  let expire t ~now =
    t.pending <- List.filter (fun (_, issued) -> now - issued < t.shadow) t.pending

  let add t r ~now =
    expire t ~now;
    t.pending <- (r, now) :: List.filter (fun (x, _) -> not (Ir.Reg.equal x r)) t.pending

  let blocks_on t r ~now =
    expire t ~now;
    List.exists (fun (x, _) -> Ir.Reg.equal x r) t.pending

  let any t ~now =
    expire t ~now;
    t.pending <> []

  let clear t = t.pending <- []
end

(* Dynamic-instruction window width for the counter tracks. *)
let counter_window = 32

let run_inner ?(warps = 32) ?(seed = 0x5eed) ?max_dynamic_per_warp ?(long_latency_shadow = 50)
    ?(attribution = false) (ctx : Alloc.Context.t) scheme =
  let k = ctx.Alloc.Context.kernel in
  let partition = ctx.Alloc.Context.partition in
  let num_strands = max 1 (Strand.Partition.num_strands partition) in
  let per_strand = Array.init num_strands (fun _ -> Energy.Counts.create ()) in
  if attribution then
    Array.iter
      (fun c -> Energy.Counts.enable_attribution c ~instrs:(Ir.Kernel.instr_count k))
      per_strand;
  let desched_events = ref 0 in
  let dynamic_instrs = ref 0 in
  let capped_warps = ref 0 in
  (* Audit enablement is sampled once per run: the sink never changes
     mid-run, and the hot path must not pay for a closure per access.
     Counter sampling follows the same discipline. *)
  let au = Obs.Audit.is_enabled () in
  let co = Obs.Counters.is_enabled () in
  (* Per-level accesses per window of warp-local dynamic instructions,
     summed across warps; window index is the simulated timestamp. *)
  let level_bins = Array.init 3 (fun _ -> Hashtbl.create 32) in
  let bin_bump tbl w n =
    if n <> 0 then
      match Hashtbl.find_opt tbl w with
      | Some r -> r := !r + n
      | None -> Hashtbl.add tbl w (ref n)
  in
  let level_total c l = Energy.Counts.reads c l + Energy.Counts.writes c l in
  (* Precomputed static facts for the hardware scheme. *)
  let shared_consumer =
    let a = Array.make (Ir.Kernel.instr_count k) false in
    List.iter
      (fun (inst : Analysis.Duchain.instance) ->
        if
          List.exists
            (fun (r : Analysis.Duchain.read) ->
              Ir.Op.is_shared_datapath (Ir.Kernel.instr k r.Analysis.Duchain.read_instr).Ir.Instr.op)
            inst.Analysis.Duchain.reads
        then a.(inst.Analysis.Duchain.def) <- true)
      (Analysis.Duchain.instances ctx.Alloc.Context.duchain);
    a
  in
  let backward_block_last_instr =
    let s = Hashtbl.create 8 in
    Array.iter
      (fun (b : Ir.Block.t) ->
        if Ir.Terminator.is_backward b.Ir.Block.term ~at:b.Ir.Block.label then
          Option.iter (fun id -> Hashtbl.add s id ()) (Ir.Block.last_id b))
      k.Ir.Kernel.blocks;
    s
  in
  let run_warp warp =
    let cf = Cf.create ?max_dynamic:max_dynamic_per_warp k ~warp ~seed in
    let outstanding = Outstanding.create ~shadow:long_latency_shadow in
    let rfc, hw_lrf =
      match scheme with
      | Hw opts ->
        ( Some (Machine.Tagged_cache.create ~entries:opts.rfc_entries),
          if opts.with_lrf then Some (Machine.Tagged_cache.create ~entries:1) else None )
      | Baseline | Sw _ -> (None, None)
    in
    let counts_for (i : Ir.Instr.t) =
      per_strand.(Strand.Partition.strand_of_instr partition i.Ir.Instr.id)
    in
    (* Every Energy.Counts.add_write below is mirrored by an audit
       placement event (guarded on [au] so the common disabled path
       keeps the seed's direct calls): summing Place events per level
       therefore reproduces the Energy.Counts write totals exactly. *)
    let emit_place level ~instr =
      Obs.Audit.emit (Obs.Audit.Place { warp; instr; level = audit_level level })
    in
    let place c level dp ~instr =
      Energy.Counts.add_write c level dp ~pc:instr ();
      if au then emit_place level ~instr
    in
    let desched ~instr cause =
      incr desched_events;
      if au then Obs.Audit.emit (Obs.Audit.Desched { warp; instr; cause })
    in
    let evict ~instr level ~writeback =
      if au then
        Obs.Audit.emit (Obs.Audit.Evict { warp; instr; level = audit_level level; writeback })
    in
    (* Writeback one evicted RFC value if still live at the eviction point. *)
    let writeback_rfc_evict c ~liveness_check ~instr reg =
      if liveness_check reg then begin
        Energy.Counts.add_read c Energy.Model.Rfc Energy.Model.Private ~pc:instr ();
        evict ~instr Energy.Model.Rfc ~writeback:true;
        place c Energy.Model.Mrf Energy.Model.Private ~instr
      end
      else evict ~instr Energy.Model.Rfc ~writeback:false
    in
    let insert_rfc c cache ~liveness_check ~instr reg =
      Option.iter
        (writeback_rfc_evict c ~liveness_check ~instr)
        (Machine.Tagged_cache.insert cache reg);
      place c Energy.Model.Rfc Energy.Model.Private ~instr
    in
    let flush_caches c (i : Ir.Instr.t) =
      let instr = i.Ir.Instr.id in
      let liveness_check = live_before ctx i in
      Option.iter
        (fun lrf ->
          List.iter
            (fun r ->
              if liveness_check r then begin
                Energy.Counts.add_read c Energy.Model.Lrf Energy.Model.Private ~pc:instr ();
                evict ~instr Energy.Model.Lrf ~writeback:true;
                place c Energy.Model.Mrf Energy.Model.Private ~instr
              end
              else evict ~instr Energy.Model.Lrf ~writeback:false)
            (Machine.Tagged_cache.flush lrf))
        hw_lrf;
      Option.iter
        (fun cache ->
          List.iter
            (fun r ->
              if liveness_check r then begin
                Energy.Counts.add_read c Energy.Model.Rfc Energy.Model.Private ~pc:instr ();
                evict ~instr Energy.Model.Rfc ~writeback:true;
                place c Energy.Model.Mrf Energy.Model.Private ~instr
              end
              else evict ~instr Energy.Model.Rfc ~writeback:false)
            (Machine.Tagged_cache.flush cache))
        rfc
    in
    let rec step () =
      match Cf.peek cf with
      | None -> if Cf.hit_cap cf then incr capped_warps
      | Some i ->
        let id = i.Ir.Instr.id in
        let now = Cf.dynamic_count cf in
        let c = counts_for i in
        let consumer_dp = datapath_of_op i.Ir.Instr.op in
        (* Per-window counter tracks are deltas over this instruction's
           aggregate counts — exact for every scheme, including cache
           evictions charged to the instruction that triggered them. *)
        let b_mrf = if co then level_total c Energy.Model.Mrf else 0 in
        let b_orf = if co then level_total c Energy.Model.Orf else 0 in
        let b_lrf = if co then level_total c Energy.Model.Lrf else 0 in
        (match scheme with
         | Baseline ->
           List.iter
             (fun _ -> Energy.Counts.add_read c Energy.Model.Mrf consumer_dp ~pc:id ())
             i.Ir.Instr.srcs;
           if Option.is_some i.Ir.Instr.dst then begin
             Energy.Counts.add_write c Energy.Model.Mrf consumer_dp ~pc:id ();
             if au then emit_place Energy.Model.Mrf ~instr:id
           end
         | Sw { placement; _ } ->
           (* Compiler-scheduled deschedule point. *)
           if Strand.Partition.starts_strand partition id && Outstanding.any outstanding ~now
           then begin
             desched ~instr:id Obs.Audit.Sw_boundary;
             Outstanding.clear outstanding
           end;
           List.iteri
             (fun pos _ ->
               match Alloc.Placement.src placement ~instr:id ~pos with
               | Alloc.Placement.From_mrf ->
                 Energy.Counts.add_read c Energy.Model.Mrf consumer_dp ~pc:id ()
               | Alloc.Placement.From_orf _ ->
                 Energy.Counts.add_read c Energy.Model.Orf consumer_dp ~pc:id ()
               | Alloc.Placement.From_lrf _ ->
                 Energy.Counts.add_read c Energy.Model.Lrf Energy.Model.Private ~pc:id ())
             i.Ir.Instr.srcs;
           List.iter
             (fun (pos, entry) ->
               Energy.Counts.add_write c Energy.Model.Orf consumer_dp ~pc:id ();
               if au then begin
                 emit_place Energy.Model.Orf ~instr:id;
                 Obs.Audit.emit (Obs.Audit.Fill { warp; instr = id; pos; entry })
               end)
             (Alloc.Placement.fills_of placement ~instr:id);
           (match i.Ir.Instr.dst, Alloc.Placement.dest placement ~instr:id with
            | Some d, Some dest ->
              if dest.Alloc.Placement.to_mrf then begin
                Energy.Counts.add_write c Energy.Model.Mrf consumer_dp ~pc:id ();
                if au then emit_place Energy.Model.Mrf ~instr:id
              end;
              if Option.is_some dest.Alloc.Placement.to_orf then begin
                Energy.Counts.add_write c Energy.Model.Orf consumer_dp ~pc:id ();
                if au then emit_place Energy.Model.Orf ~instr:id
              end;
              if Option.is_some dest.Alloc.Placement.to_lrf then begin
                Energy.Counts.add_write c Energy.Model.Lrf Energy.Model.Private ~pc:id ();
                if au then emit_place Energy.Model.Lrf ~instr:id
              end;
              if Ir.Instr.is_long_latency i then Outstanding.add outstanding d ~now
            | _, _ -> ())
         | Hw opts ->
           let cache = Option.get rfc in
           (* Deschedule on an unresolved long-latency dependence. *)
           let blocks =
             List.exists (fun r -> Outstanding.blocks_on outstanding r ~now) i.Ir.Instr.srcs
           in
           if blocks then begin
             desched ~instr:id Obs.Audit.Hw_dependence;
             if not opts.never_flush then flush_caches c i;
             Outstanding.clear outstanding
           end;
           List.iter
             (fun r ->
               let lrf_hit =
                 consumer_dp = Energy.Model.Private
                 && (match hw_lrf with
                     | Some lrf -> Machine.Tagged_cache.contains lrf r
                     | None -> false)
               in
               if lrf_hit then
                 Energy.Counts.add_read c Energy.Model.Lrf Energy.Model.Private ~pc:id ()
               else if Machine.Tagged_cache.contains cache r then
                 Energy.Counts.add_read c Energy.Model.Rfc consumer_dp ~pc:id ()
               else begin
                 Energy.Counts.add_rfc_probe c ~pc:id ();
                 Energy.Counts.add_read c Energy.Model.Mrf consumer_dp ~pc:id ()
               end)
             i.Ir.Instr.srcs;
           (match i.Ir.Instr.dst with
            | None -> ()
            | Some d ->
              let liveness_check r =
                Analysis.Liveness.live_after_instr ctx.Alloc.Context.liveness ~instr_id:id r
              in
              if Ir.Instr.is_long_latency i then begin
                (* Long-latency results bypass the hierarchy (Sec. 2.2). *)
                place c Energy.Model.Mrf consumer_dp ~instr:id;
                Machine.Tagged_cache.remove cache d;
                Option.iter (fun lrf -> Machine.Tagged_cache.remove lrf d) hw_lrf;
                Outstanding.add outstanding d ~now
              end
              else begin
                match hw_lrf with
                | Some lrf
                  when consumer_dp = Energy.Model.Private && not shared_consumer.(id) ->
                  (* LRF insert; evicted value cascades into the RFC. *)
                  Option.iter
                    (fun evicted ->
                      if liveness_check evicted then begin
                        Energy.Counts.add_read c Energy.Model.Lrf Energy.Model.Private ~pc:id ();
                        evict ~instr:id Energy.Model.Lrf ~writeback:true;
                        insert_rfc c cache ~liveness_check ~instr:id evicted
                      end
                      else evict ~instr:id Energy.Model.Lrf ~writeback:false)
                    (Machine.Tagged_cache.insert lrf d);
                  place c Energy.Model.Lrf Energy.Model.Private ~instr:id;
                  Machine.Tagged_cache.remove cache d
                | Some _ | None ->
                  insert_rfc c cache ~liveness_check ~instr:id d;
                  Option.iter (fun lrf -> Machine.Tagged_cache.remove lrf d) hw_lrf
              end);
           if opts.flush_on_backward_branch && Hashtbl.mem backward_block_last_instr id then
             flush_caches c i);
        if co then begin
          let w = now / counter_window in
          bin_bump level_bins.(0) w (level_total c Energy.Model.Mrf - b_mrf);
          bin_bump level_bins.(1) w (level_total c Energy.Model.Orf - b_orf);
          bin_bump level_bins.(2) w (level_total c Energy.Model.Lrf - b_lrf)
        end;
        Cf.advance cf;
        step ()
    in
    step ();
    dynamic_instrs := !dynamic_instrs + Cf.dynamic_count cf
  in
  for w = 0 to warps - 1 do
    run_warp w
  done;
  (* Emit the window bins, sorted, as counter samples stamped with the
     warp-local dynamic-instruction index at the window start. *)
  if co then
    List.iteri
      (fun li name ->
        Hashtbl.fold (fun w r acc -> (w, !r) :: acc) level_bins.(li) []
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        |> List.iter (fun (w, v) ->
               Obs.Counters.sample name
                 ~at:(float_of_int (w * counter_window))
                 (float_of_int v)))
      [ "traffic.mrf_accesses"; "traffic.orf_accesses"; "traffic.lrf_accesses" ];
  let counts = Energy.Counts.create () in
  Array.iter (fun c -> Energy.Counts.merge_into ~dst:counts c) per_strand;
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:!dynamic_instrs m_dynamic;
  Obs.Metrics.incr ~by:!desched_events m_desched;
  Obs.Metrics.incr ~by:!capped_warps m_capped;
  {
    counts;
    per_strand;
    dynamic_instrs = !dynamic_instrs;
    desched_events = !desched_events;
    capped_warps = !capped_warps;
  }

let run ?warps ?seed ?max_dynamic_per_warp ?long_latency_shadow ?attribution ctx scheme =
  Obs.Span.with_span "simulate" (fun () ->
      run_inner ?warps ?seed ?max_dynamic_per_warp ?long_latency_shadow ?attribution ctx
        scheme)
