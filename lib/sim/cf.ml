(* State is flat mutable ints so [advance]/[peek_id] allocate nothing:
   the timing loop calls them once per warp-instruction.  [block] < 0
   encodes the terminal state ([capped] distinguishes cap from [Ret]);
   [cur_id] tracks the instruction id at (block, index) incrementally —
   ids are dense in layout order, so within a block it just counts up. *)
type t = {
  mutable kernel : Ir.Kernel.t;
  mutable warp : int;
  mutable seed : int;
  mutable max_dynamic : int;
  mutable trip_counts : int array;    (* per block: consecutive taken count of its Loop branch *)
  mutable visit_counts : int array;   (* per block: terminator resolutions so far *)
  mutable block : int;                (* current block, or -1 when done *)
  mutable index : int;                (* instruction index within the block *)
  mutable cur_id : int;               (* id of the current instruction, -1 when done *)
  mutable capped : bool;
  mutable executed : int;
}

let stop t ~capped =
  t.block <- -1;
  t.index <- 0;
  t.cur_id <- -1;
  t.capped <- capped

(* Land on the first block at or after [block] that has instructions,
   following fallthrough/jump chains of empty blocks. *)
let rec settle t block steps =
  if steps > Ir.Kernel.block_count t.kernel * 2 then stop t ~capped:true
  else begin
    let b = t.kernel.Ir.Kernel.blocks.(block) in
    if Array.length b.Ir.Block.instrs > 0 then begin
      t.block <- block;
      t.index <- 0;
      t.cur_id <- b.Ir.Block.instrs.(0).Ir.Instr.id
    end
    else resolve_terminator t block (steps + 1)
  end

and resolve_terminator t block steps =
  let b = t.kernel.Ir.Kernel.blocks.(block) in
  t.visit_counts.(block) <- t.visit_counts.(block) + 1;
  match b.Ir.Block.term with
  | Ir.Terminator.Fallthrough -> fall_through t block steps
  | Ir.Terminator.Jump l -> settle t l steps
  | Ir.Terminator.Ret -> stop t ~capped:false
  | Ir.Terminator.Branch { target; behavior } ->
    let taken =
      match behavior with
      | Ir.Terminator.Always_taken -> true
      | Ir.Terminator.Never_taken -> false
      | Ir.Terminator.Loop n ->
        if t.trip_counts.(block) < n - 1 then begin
          t.trip_counts.(block) <- t.trip_counts.(block) + 1;
          true
        end
        else begin
          t.trip_counts.(block) <- 0;
          false
        end
      | Ir.Terminator.Taken_with_prob p ->
        let h =
          Util.Prng.hash2 (Util.Prng.hash2 t.seed t.warp)
            (Util.Prng.hash2 block t.visit_counts.(block))
        in
        float_of_int (h land 0xFFFFFF) /. 16777216.0 < p
    in
    if taken then settle t target steps else fall_through t block steps

and fall_through t block steps =
  if block + 1 < Ir.Kernel.block_count t.kernel then settle t (block + 1) steps
  else stop t ~capped:false

let reset t ?(max_dynamic = 100_000) kernel ~warp ~seed =
  let nb = Ir.Kernel.block_count kernel in
  t.kernel <- kernel;
  t.warp <- warp;
  t.seed <- seed;
  t.max_dynamic <- max_dynamic;
  if Array.length t.trip_counts < nb then begin
    t.trip_counts <- Array.make nb 0;
    t.visit_counts <- Array.make nb 0
  end
  else begin
    Array.fill t.trip_counts 0 nb 0;
    Array.fill t.visit_counts 0 nb 0
  end;
  t.executed <- 0;
  stop t ~capped:false;
  settle t 0 0

let create ?(max_dynamic = 100_000) kernel ~warp ~seed =
  let t =
    {
      kernel;
      warp;
      seed;
      max_dynamic;
      trip_counts = [||];
      visit_counts = [||];
      block = -1;
      index = 0;
      cur_id = -1;
      capped = false;
      executed = 0;
    }
  in
  reset t ~max_dynamic kernel ~warp ~seed;
  t

let peek_id t = t.cur_id

let peek t =
  if t.block < 0 then None
  else Some t.kernel.Ir.Kernel.blocks.(t.block).Ir.Block.instrs.(t.index)

let advance t =
  if t.block >= 0 then begin
    t.executed <- t.executed + 1;
    if t.executed >= t.max_dynamic then stop t ~capped:true
    else begin
      let b = t.kernel.Ir.Kernel.blocks.(t.block) in
      if t.index + 1 < Array.length b.Ir.Block.instrs then begin
        t.index <- t.index + 1;
        t.cur_id <- t.cur_id + 1
      end
      else resolve_terminator t t.block 0
    end
  end

let finished t = t.block < 0
let dynamic_count t = t.executed
let hit_cap t = t.block < 0 && t.capped
