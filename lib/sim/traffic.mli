(** Register-file traffic accounting.

    Executes every warp's dynamic instruction stream and counts
    accesses to each level of the register-file hierarchy under a
    given scheme:

    - [Baseline]: the single-level register file every figure is
      normalized to — every operand is an MRF access.
    - [Sw]: the compiler-managed hierarchy; counts follow the
      {!Alloc.Placement.t} annotations (dest levels, source levels,
      read-operand fills).  No writeback traffic exists by
      construction: persistent values were written to the MRF when
      produced (Sec. 3.1).
    - [Hw]: the hardware register-file cache baseline (Sec. 2.2),
      optionally with a hardware LRF in front (Sec. 6.2): FIFO
      replacement, write-allocation, eviction writebacks and
      deschedule flushes with static-liveness elision, and tag
      energy the software scheme does not pay.

    Traffic is timing-independent per warp except for the hardware
    scheme's deschedule points: a long-latency value's consumer
    deschedules (and flushes) the warp only if it executes within
    [long_latency_shadow] warp-local instructions of the load — the
    DRAM latency divided by the warp's issue share under the two-level
    scheduler. *)

type hw_options = {
  rfc_entries : int;
  with_lrf : bool;   (** three-level hardware hierarchy *)
  flush_on_backward_branch : bool;  (** Sec. 7 ablation; default [false] *)
  never_flush : bool;  (** Sec. 7 idealization: deschedules do not flush *)
}

val hw_defaults : rfc_entries:int -> hw_options

type scheme =
  | Baseline
  | Sw of { config : Alloc.Config.t; placement : Alloc.Placement.t }
  | Hw of hw_options

type result = {
  counts : Energy.Counts.t;
  per_strand : Energy.Counts.t array;  (** indexed by strand id *)
  dynamic_instrs : int;
  desched_events : int;
  capped_warps : int;  (** warps stopped by the dynamic-length cap *)
}

val run :
  ?warps:int ->
  ?seed:int ->
  ?max_dynamic_per_warp:int ->
  ?long_latency_shadow:int ->
  ?attribution:bool ->
  ?scratch:Scratch.t ->
  Alloc.Context.t ->
  scheme ->
  result
(** [warps] defaults to 32 (Table 2's machine-resident warps);
    [long_latency_shadow] defaults to 50 (400 DRAM cycles divided by a
    warp's 1-in-8 issue share under the two-level scheduler).

    [scratch] (default: this domain's {!Scratch.domain_local}) supplies
    the reusable walker state and outstanding-operation buffers; results
    are identical whatever scratch is passed.

    [attribution] (default [false]) enables the per-instruction
    attribution tables of {!Energy.Counts} on [per_strand] and the
    merged [counts], charging every access to the static instruction
    that caused it (cache evictions and flushes charge the instruction
    that triggered them).

    When {!Obs.Counters} is enabled, the run additionally emits
    [traffic.mrf_accesses] / [traffic.orf_accesses] /
    [traffic.lrf_accesses] counter tracks: per-level accesses summed
    over windows of 32 warp-local dynamic instructions, accumulated
    across warps, stamped with the window-start instruction index. *)
