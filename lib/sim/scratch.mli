(** Reusable simulation buffers.

    {!Perf.run} and {!Traffic.run} keep all per-run mutable state — warp
    scoreboards, scheduler queues, stall matrices, outstanding-operation
    buffers, the {!Dec} predecode — in a scratch so sweeps that simulate
    the same kernels under many configurations reuse memory instead of
    reallocating per run.  After a warm-up run at the largest
    configuration, a simulation's steady-state cycle loop allocates
    zero minor words (recorders off) and a whole run allocates only its
    result record.

    A scratch is single-owner mutable state: never share one between
    concurrently running simulations.  {!domain_local} returns this
    domain's scratch — the default used by the simulators when the
    caller passes none, which makes buffer reuse automatic under
    {!Util.Pool} fan-out (each worker domain gets its own).

    The record fields are an implementation detail of [Sim]; outside
    code should treat the type as abstract and only [create] or
    [domain_local] one. *)

type t = {
  mutable dec_ctx : Alloc.Context.t option;
  mutable dec : Dec.t option;
  mutable cfs : Cf.t option array;
  mutable ready : int array array;
  mutable ready_base : int array array;
  mutable ll : int array array;
  mutable ll_len : int array;
  mutable wake : int array;
  mutable active : int array;
  mutable pending : int array;
  mutable in_active : bool array;
  mutable scan : int array;
  mutable ready_buf : int array;
  mutable rest_buf : int array;
  mutable breakdown : int array;
  mutable span_state : int array;
  mutable span_start : int array;
  mutable stall_until : int array;
  mutable stall_cause : int array;
  mutable bank_counts : int array;
  mutable conflict_extra : int array;
  unit_free : int array;
  mutable out_reg : int array;
  mutable out_at : int array;
  mutable out_len : int;
}

val create : unit -> t

val domain_local : unit -> t
(** This domain's scratch (one per domain, created on first use). *)

val dec_for : t -> Alloc.Context.t -> Dec.t
(** Predecode of the context's kernel, cached by context identity. *)

(**/**)

(* Growth/reset helpers for the simulators. *)

val ensure_warps : t -> warps:int -> num_regs:int -> unit
val ensure_banks : t -> banks:int -> num_instrs:int -> unit
val ensure_outstanding : t -> int -> unit
val cf : t -> int -> max_dynamic:int -> Ir.Kernel.t -> warp:int -> seed:int -> Cf.t
